//! Ablation of the middleware's own machinery — the components whose sum
//! is the paper's 1.4% overhead:
//!
//! * adaptive tactic **selection** (covering-set search over descriptors),
//! * **schema validation** per document,
//! * **wire codec** (document encode/decode),
//! * **channel framing** round-trip dispatch,
//! * dynamic (registry) vs static (hard-coded) **tactic dispatch**.
//!
//! Also measures the padding ablation: RND with and without length
//! bucketing.

use criterion::{criterion_group, criterion_main, Criterion};
use datablinder_core::cloud::CloudEngine;
use datablinder_core::metadata::validate_document;
use datablinder_core::registry::TacticRegistry;
use datablinder_core::wire::{decode_document, encode_document};
use datablinder_fhir::{example_observation, observation_schema};
use datablinder_netsim::{Channel, CloudService, LatencyModel, NetError};
use datablinder_primitives::keys::SymmetricKey;
use datablinder_sse::rnd::RndCipher;
use datablinder_workload::clients::bench_schema;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_selection(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation");
    let registry = TacticRegistry::with_builtins();
    let schema = observation_schema();
    g.bench_function("tactic_selection_per_field", |b| {
        let annotation = schema.fields["value"].annotation.as_ref().unwrap();
        b.iter(|| registry.select("value", annotation).unwrap());
    });
    g.bench_function("tactic_selection_whole_schema", |b| {
        b.iter(|| {
            for (field, annotation) in schema.sensitive_fields() {
                registry.select(field, annotation).unwrap();
            }
        });
    });

    let doc = example_observation();
    g.bench_function("schema_validation", |b| {
        b.iter(|| validate_document(&schema, &doc).unwrap());
    });

    g.bench_function("wire_document_roundtrip", |b| {
        b.iter(|| decode_document(&encode_document(&doc)).unwrap());
    });

    // Channel framing dispatch without any handler work.
    struct Null;
    impl CloudService for Null {
        fn handle(&self, _route: &str, payload: &[u8]) -> Result<Vec<u8>, NetError> {
            Ok(payload.to_vec())
        }
    }
    let null_channel = Channel::connect(Null, LatencyModel::instant());
    let payload = encode_document(&doc);
    g.bench_function("channel_framing_roundtrip", |b| {
        b.iter(|| null_channel.call("echo/echo", &payload).unwrap());
    });

    // Full cloud engine dispatch on an unknown-free route (doc/count).
    let engine_channel = Channel::connect(CloudEngine::new(), LatencyModel::instant());
    g.bench_function("cloud_engine_dispatch", |b| {
        let count_payload = datablinder_core::cloud::with_collection("c", b"");
        b.iter(|| engine_channel.call("doc/count", &count_payload).unwrap());
    });
    g.finish();
}

fn bench_registration(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_setup");
    g.sample_size(10);
    // Schema registration end-to-end (selection + instantiation + index
    // preparation). Uses the benchmark schema: no Sophos, so no RSA keygen
    // noise; Paillier keygen dominates by design.
    g.bench_function("register_schema_with_keygen", |b| {
        b.iter(|| {
            let channel = Channel::connect(CloudEngine::new(), LatencyModel::instant());
            let mut rng = StdRng::seed_from_u64(1);
            let kms = datablinder_kms::Kms::generate(&mut rng);
            let gw = datablinder_core::gateway::GatewayEngine::new("abl", kms, channel, 1);
            gw.register_schema(bench_schema()).unwrap();
        });
    });
    g.finish();
}

fn bench_padding(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_padding");
    let mut rng = StdRng::seed_from_u64(2);
    let key = SymmetricKey::from_bytes(&[9u8; 32]);
    let padded = RndCipher::new(&key).unwrap();
    let unpadded = RndCipher::with_bucket(&key, 0).unwrap();
    let short = b"x";
    g.bench_function("rnd_padded_1B", |b| b.iter(|| padded.encrypt(&mut rng, short)));
    g.bench_function("rnd_unpadded_1B", |b| b.iter(|| unpadded.encrypt(&mut rng, short)));
    // Report the storage ratio once.
    let cp = padded.encrypt(&mut rng, short).len();
    let cu = unpadded.encrypt(&mut rng, short).len();
    println!("\n[padding] 1-byte plaintext: padded {cp} B vs unpadded {cu} B ciphertext");
    g.finish();
}

criterion_group!(benches, bench_selection, bench_registration, bench_padding);
criterion_main!(benches);
