//! Micro-benchmarks of the cryptographic substrate: the building blocks
//! whose cost ratios explain every number in Figure 5.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use datablinder_bigint::{prime, BigUint};
use datablinder_ope::{Ope, OpeParams};
use datablinder_ore::{ClwwOre, LewiWuOre};
use datablinder_paillier::Keypair;
use datablinder_primitives::aes::Aes;
use datablinder_primitives::gcm::AesGcm;
use datablinder_primitives::hmac::hmac_sha256;
use datablinder_primitives::keys::SymmetricKey;
use datablinder_primitives::sha256;
use rand::SeedableRng;

fn bench_hash_and_mac(c: &mut Criterion) {
    let mut g = c.benchmark_group("primitives");
    for size in [64usize, 1024] {
        let data = vec![0xABu8; size];
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_with_input(BenchmarkId::new("sha256", size), &data, |b, d| {
            b.iter(|| sha256::digest(d));
        });
        g.bench_with_input(BenchmarkId::new("hmac_sha256", size), &data, |b, d| {
            b.iter(|| hmac_sha256(b"key", d));
        });
    }
    let aes = Aes::new(&[7u8; 16]).unwrap();
    g.bench_function("aes128_block", |b| {
        let mut block = [0u8; 16];
        b.iter(|| aes.encrypt_block(&mut block));
    });
    let gcm = AesGcm::new(&SymmetricKey::from_bytes(&[7u8; 32])).unwrap();
    let payload = vec![0u8; 256];
    g.bench_function("aes256_gcm_seal_256B", |b| {
        b.iter(|| gcm.seal(&[1u8; 12], b"aad", &payload));
    });
    g.finish();
}

fn bench_bigint(c: &mut Criterion) {
    let mut g = c.benchmark_group("bigint");
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    for bits in [512usize, 1024] {
        let a = BigUint::random_bits(&mut rng, bits);
        let b = BigUint::random_bits(&mut rng, bits);
        let mut m = BigUint::random_bits(&mut rng, bits);
        m.set_bit(0, true); // odd modulus for Montgomery
        m.set_bit(bits - 1, true);
        g.bench_with_input(BenchmarkId::new("mul", bits), &(a.clone(), b.clone()), |bench, (x, y)| {
            bench.iter(|| x * y);
        });
        g.bench_with_input(BenchmarkId::new("modpow", bits), &(a, b, m), |bench, (x, e, m)| {
            bench.iter(|| x.modpow(e, m));
        });
    }
    g.sample_size(10);
    g.bench_function("gen_prime_128", |b| {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        b.iter(|| prime::gen_prime(&mut rng, 128));
    });
    g.finish();
}

fn bench_schemes(c: &mut Criterion) {
    let mut g = c.benchmark_group("schemes");
    g.sample_size(20);
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);

    // Paillier: the dominant tactic cost in the evaluation.
    let kp = Keypair::generate(&mut rng, 512);
    g.bench_function("paillier512_encrypt", |b| {
        b.iter(|| kp.public().encrypt_u64(&mut rng, 1234));
    });
    let c1 = kp.public().encrypt_u64(&mut rng, 1);
    let c2 = kp.public().encrypt_u64(&mut rng, 2);
    g.bench_function("paillier512_add", |b| {
        b.iter(|| kp.public().add(&c1, &c2));
    });
    g.bench_function("paillier512_decrypt", |b| {
        b.iter(|| kp.decrypt(&c1).unwrap());
    });

    // OPE vs ORE: the two range tactics.
    let ope = Ope::new(SymmetricKey::from_bytes(&[1u8; 32]), OpeParams::default());
    g.bench_function("ope_encrypt", |b| {
        let mut x = 0u64;
        b.iter(|| {
            x = x.wrapping_add(0x9E37_79B9);
            ope.encrypt(x)
        });
    });
    let clww = ClwwOre::new(SymmetricKey::from_bytes(&[2u8; 32]));
    g.bench_function("ore_clww_encrypt", |b| {
        b.iter(|| clww.encrypt(123_456_789));
    });
    let lw = LewiWuOre::new(SymmetricKey::from_bytes(&[3u8; 32]));
    g.bench_function("ore_lewiwu_encrypt_right", |b| {
        b.iter(|| lw.encrypt_right(123_456_789));
    });
    let left = lw.encrypt_left(1);
    let right = lw.encrypt_right(2);
    g.bench_function("ore_lewiwu_compare", |b| {
        b.iter(|| LewiWuOre::compare_left_right(&left, &right));
    });
    g.finish();
}

criterion_group!(benches, bench_hash_and_mac, bench_bigint, bench_schemes);
criterion_main!(benches);
