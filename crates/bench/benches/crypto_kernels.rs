//! Criterion micro-benchmarks of the amortized modular-arithmetic kernels
//! introduced by the crypto rework — the statistical companion to the
//! machine-readable `fig_crypto` baseline.
//!
//! ```sh
//! cargo bench -p datablinder-bench --bench crypto_kernels
//! ```
//!
//! Pairs every amortized kernel with the path it replaced:
//! per-call-context [`BigUint::modpow`] vs a held [`MontgomeryCtx`],
//! plain `c^λ mod n²` decryption vs CRT, per-call obfuscators vs the
//! [`RandomizerPool`], and the homomorphic batch-sum throughput the
//! gateway aggregate path sees.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use datablinder_bigint::{BigUint, CrtCtx, MontgomeryCtx};
use datablinder_paillier::{Keypair, RandomizerPool};
use rand::SeedableRng;

fn bench_modpow_ctx(c: &mut Criterion) {
    let mut g = c.benchmark_group("modpow");
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    for bits in [512usize, 1024] {
        let mut m = BigUint::random_bits(&mut rng, bits);
        m.set_bit(0, true);
        m.set_bit(bits - 1, true);
        let base = BigUint::random_below(&mut rng, &m);
        let exp = BigUint::random_bits(&mut rng, bits);
        let ctx = MontgomeryCtx::new(&m);
        g.bench_with_input(BenchmarkId::new("per_call_ctx", bits), &bits, |b, _| {
            b.iter(|| base.modpow(&exp, &m));
        });
        g.bench_with_input(BenchmarkId::new("cached_ctx", bits), &bits, |b, _| {
            b.iter(|| ctx.modpow(&base, &exp));
        });
    }
    g.finish();
}

fn bench_crt_ctx(c: &mut Criterion) {
    let mut g = c.benchmark_group("crt_ctx");
    let mut rng = rand::rngs::StdRng::seed_from_u64(2);
    let bits = 512usize;
    let mut p = BigUint::random_bits(&mut rng, bits);
    p.set_bit(0, true);
    p.set_bit(bits - 1, true);
    let mut q = BigUint::random_bits(&mut rng, bits);
    q.set_bit(0, true);
    q.set_bit(bits - 1, true);
    let n = &p * &q;
    let crt = CrtCtx::new(&p, &q).expect("random odd values are coprime with overwhelming probability");
    let full = MontgomeryCtx::new(&n);
    let base = BigUint::random_below(&mut rng, &n);
    let e = BigUint::random_bits(&mut rng, 2 * bits);
    let e1 = &e % &p;
    let e2 = &e % &q;
    g.bench_function("full_width_modpow", |b| {
        b.iter(|| full.modpow(&base, &e));
    });
    g.bench_function("two_half_width_modpow", |b| {
        b.iter(|| crt.modpow(&base, &e1, &e2));
    });
    g.finish();
}

fn bench_paillier_amortized(c: &mut Criterion) {
    let mut g = c.benchmark_group("paillier_amortized");
    g.sample_size(10);
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    let kp = Keypair::generate(&mut rng, 512);
    let pk = kp.public().clone();
    let m = BigUint::from(123_456_789u64);

    g.bench_function("encrypt_cached_ctx", |b| {
        b.iter(|| pk.encrypt(&mut rng, &m).unwrap());
    });
    let pool = RandomizerPool::new(pk.clone(), 4096);
    pool.refill(&mut rng);
    g.bench_function("encrypt_pooled", |b| {
        b.iter(|| {
            let obf = pool.take(&mut rng);
            pk.encrypt_with(&m, &obf).unwrap()
        });
    });

    let ct = pk.encrypt(&mut rng, &m).unwrap();
    g.bench_function("decrypt_plain", |b| {
        b.iter(|| kp.decrypt_plain(&ct).unwrap());
    });
    g.bench_function("decrypt_crt", |b| {
        b.iter(|| kp.decrypt(&ct).unwrap());
    });

    let batch = 64u64;
    g.throughput(Throughput::Elements(batch));
    g.bench_function("batch_sum_64", |b| {
        let sum_pool = RandomizerPool::new(pk.clone(), batch as usize);
        b.iter(|| {
            sum_pool.refill(&mut rng);
            let mut acc = pk.encrypt_with(&BigUint::zero(), &sum_pool.take(&mut rng)).unwrap();
            for v in 1..batch {
                let c = pk.encrypt_with(&BigUint::from(v), &sum_pool.take(&mut rng)).unwrap();
                acc = pk.add(&acc, &c);
            }
            kp.decrypt(&acc).unwrap()
        });
    });
    g.finish();
}

criterion_group!(benches, bench_modpow_ctx, bench_crt_ctx, bench_paillier_amortized);
criterion_main!(benches);
