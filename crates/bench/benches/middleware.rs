//! The middleware-overhead ablation: isolates the cost DataBlinder adds
//! over hard-coded tactics (the paper's 1.4% claim) per operation class,
//! without the load generator's noise.
//!
//! Each benchmark performs one full operation (client + cloud, in-process
//! instant channel) in both the hard-coded (S_B) and middleware (S_C)
//! styles; comparing the two groups gives the dispatch/validation/policy
//! overhead directly.

use criterion::{criterion_group, criterion_main, Criterion};
use datablinder_core::cloud::CloudEngine;
use datablinder_fhir::ObservationGenerator;
use datablinder_netsim::{Channel, LatencyModel};
use datablinder_workload::clients::{BenchClient, HardcodedClient, MiddlewareClient};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_insert(c: &mut Criterion) {
    let mut g = c.benchmark_group("middleware_overhead_insert");
    g.sample_size(20);
    let mut rng = StdRng::seed_from_u64(1);
    let mut generator = ObservationGenerator::new(32);

    let channel = Channel::connect(CloudEngine::new(), LatencyModel::instant());
    let mut hard = HardcodedClient::new(channel, 0, 512);
    g.bench_function("hardcoded", |b| {
        b.iter(|| hard.insert(&generator.generate(&mut rng)).unwrap());
    });

    let channel = Channel::connect(CloudEngine::new(), LatencyModel::instant());
    let mut middleware = MiddlewareClient::new(channel, 0);
    g.bench_function("datablinder", |b| {
        b.iter(|| middleware.insert(&generator.generate(&mut rng)).unwrap());
    });
    g.finish();
}

fn bench_search(c: &mut Criterion) {
    let mut g = c.benchmark_group("middleware_overhead_search");
    g.sample_size(20);
    let mut rng = StdRng::seed_from_u64(2);
    let mut generator = ObservationGenerator::new(16);

    let channel = Channel::connect(CloudEngine::new(), LatencyModel::instant());
    let mut hard = HardcodedClient::new(channel, 0, 512);
    let channel = Channel::connect(CloudEngine::new(), LatencyModel::instant());
    let mut middleware = MiddlewareClient::new(channel, 0);
    let mut subjects = Vec::new();
    for _ in 0..200 {
        let doc = generator.generate(&mut rng);
        subjects.push(doc.get("subject").unwrap().as_str().unwrap().to_string());
        hard.insert(&doc).unwrap();
        middleware.insert(&doc).unwrap();
    }

    let mut i = 0usize;
    g.bench_function("hardcoded", |b| {
        b.iter(|| {
            i = (i + 1) % subjects.len();
            hard.search_subject(&subjects[i]).unwrap()
        });
    });
    let mut j = 0usize;
    g.bench_function("datablinder", |b| {
        b.iter(|| {
            j = (j + 1) % subjects.len();
            middleware.search_subject(&subjects[j]).unwrap()
        });
    });
    g.finish();
}

fn bench_aggregate(c: &mut Criterion) {
    let mut g = c.benchmark_group("middleware_overhead_aggregate");
    g.sample_size(10);
    let mut rng = StdRng::seed_from_u64(3);
    let mut generator = ObservationGenerator::new(16);

    let channel = Channel::connect(CloudEngine::new(), LatencyModel::instant());
    let mut hard = HardcodedClient::new(channel, 0, 512);
    let channel = Channel::connect(CloudEngine::new(), LatencyModel::instant());
    let mut middleware = MiddlewareClient::new(channel, 0);
    for _ in 0..200 {
        let doc = generator.generate(&mut rng);
        hard.insert(&doc).unwrap();
        middleware.insert(&doc).unwrap();
    }

    g.bench_function("hardcoded", |b| b.iter(|| hard.average_value().unwrap()));
    g.bench_function("datablinder", |b| b.iter(|| middleware.average_value().unwrap()));
    g.finish();
}

criterion_group!(benches, bench_insert, bench_search, bench_aggregate);
criterion_main!(benches);
