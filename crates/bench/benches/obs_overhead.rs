//! Observability overhead: what carrying instrumentation costs the hot
//! path, in three configurations of the same gateway workload.
//!
//! * `baseline` — gateway without any recorder installed (construction
//!   default: a disabled [`Recorder`]).
//! * `disabled_recorder` — an explicitly installed recorder with
//!   recording switched off: every instrumentation point short-circuits
//!   after one relaxed atomic load. This is the configuration every
//!   production deployment runs, and the claim under test is that it is
//!   indistinguishable from `baseline` (within a few percent).
//! * `enabled_recorder` — full recording: counters, histograms, spans
//!   and the leakage ledger all active. This bounds the worst case.
//!
//! After the Criterion groups a wall-clock summary prints mean
//! nanoseconds per operation and the relative overhead of each
//! configuration against the baseline, for insert and equality-search
//! separately.

use std::sync::Arc;
use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use datablinder_core::cloud::CloudEngine;
use datablinder_core::gateway::GatewayEngine;
use datablinder_core::model::{FieldAnnotation, FieldOp, FieldType, ProtectionClass, Schema};
use datablinder_docstore::{Document, Value};
use datablinder_kms::Kms;
use datablinder_netsim::{Channel, LatencyModel};
use datablinder_obs::Recorder;
use rand::rngs::StdRng;
use rand::SeedableRng;

const SEED: u64 = 0x0B5;
const PRIME_DOCS: usize = 100;
const OWNERS: usize = 10;
const MEASURE_OPS: usize = 400;

/// Recorder configurations under comparison.
#[derive(Clone, Copy)]
enum Config {
    Baseline,
    Disabled,
    Enabled,
}

impl Config {
    fn label(self) -> &'static str {
        match self {
            Config::Baseline => "baseline",
            Config::Disabled => "disabled_recorder",
            Config::Enabled => "enabled_recorder",
        }
    }
}

fn schema() -> Schema {
    Schema::new("notes").sensitive_field(
        "owner",
        FieldType::Text,
        true,
        FieldAnnotation::new(ProtectionClass::C2, vec![FieldOp::Insert, FieldOp::Equality]),
    )
}

/// A primed gateway over an instant in-process channel, with the given
/// recorder configuration installed.
fn gateway(config: Config) -> GatewayEngine {
    let channel = Channel::from_arc(Arc::new(CloudEngine::new()), LatencyModel::instant());
    let mut rng = StdRng::seed_from_u64(SEED);
    let mut gw = GatewayEngine::new("bench", Kms::generate(&mut rng), channel, SEED);
    match config {
        Config::Baseline => {}
        Config::Disabled => {
            let r = Recorder::new();
            r.set_enabled(false);
            gw.set_recorder(r);
        }
        Config::Enabled => gw.set_recorder(Recorder::new()),
    }
    gw.register_schema(schema()).unwrap();
    for i in 0..PRIME_DOCS {
        gw.insert("notes", &doc(i)).unwrap();
    }
    gw
}

fn doc(i: usize) -> Document {
    Document::new("x").with("owner", Value::from(format!("o{}", i % OWNERS)))
}

/// Mean nanoseconds per insert over `MEASURE_OPS` fresh documents.
fn measure_insert(config: Config) -> f64 {
    let gw = gateway(config);
    let t0 = Instant::now();
    for i in 0..MEASURE_OPS {
        gw.insert("notes", &doc(PRIME_DOCS + i)).unwrap();
    }
    t0.elapsed().as_nanos() as f64 / MEASURE_OPS as f64
}

/// Mean nanoseconds per equality search over `MEASURE_OPS` queries.
fn measure_query(config: Config) -> f64 {
    let gw = gateway(config);
    let t0 = Instant::now();
    for i in 0..MEASURE_OPS {
        let hits = gw.find_equal("notes", "owner", &Value::from(format!("o{}", i % OWNERS))).unwrap();
        assert!(!hits.is_empty());
    }
    t0.elapsed().as_nanos() as f64 / MEASURE_OPS as f64
}

fn bench_obs_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs_overhead_insert");
    group.sample_size(10);
    for config in [Config::Baseline, Config::Disabled, Config::Enabled] {
        group.bench_function(config.label(), |b| {
            let gw = gateway(config);
            let mut i = PRIME_DOCS;
            b.iter(|| {
                i += 1;
                gw.insert("notes", &doc(i)).unwrap()
            });
        });
    }
    group.finish();

    let mut group = c.benchmark_group("obs_overhead_find_equal");
    group.sample_size(10);
    for config in [Config::Baseline, Config::Disabled, Config::Enabled] {
        group.bench_function(config.label(), |b| {
            let gw = gateway(config);
            let mut i = 0usize;
            b.iter(|| {
                i += 1;
                gw.find_equal("notes", "owner", &Value::from(format!("o{}", i % OWNERS))).unwrap()
            });
        });
    }
    group.finish();

    print_summary();
}

/// Wall-clock summary: per-config mean ns/op and overhead vs. baseline.
fn print_summary() {
    println!("\n== observability overhead (mean ns/op, {MEASURE_OPS} ops) ==");
    println!("{:<22} {:>14} {:>14} {:>10}", "config", "insert", "find_equal", "vs base");
    let base_insert = measure_insert(Config::Baseline);
    let base_query = measure_query(Config::Baseline);
    println!("{:<22} {:>14.0} {:>14.0} {:>10}", "baseline", base_insert, base_query, "-");
    for config in [Config::Disabled, Config::Enabled] {
        let ins = measure_insert(config);
        let q = measure_query(config);
        let rel = 100.0 * (ins + q - base_insert - base_query) / (base_insert + base_query);
        println!("{:<22} {:>14.0} {:>14.0} {:>+9.1}%", config.label(), ins, q, rel);
    }
    println!("(disabled_recorder is the production configuration: one atomic load per probe)");
}

criterion_group!(benches, bench_obs_overhead);
criterion_main!(benches);
