//! Crash-recovery cost: WAL replay throughput and time-to-first-query as
//! the journal grows.
//!
//! A durable [`CloudEngine`] is loaded with 1k / 10k / 100k journaled
//! mutations (no snapshot, so every record stays in the WAL tail), then
//! each group member measures a cold [`CloudEngine::open_durable`] — the
//! full recovery path: frame scan, CRC checks, decode, re-dispatch. The
//! wall-clock summary adds records/s and time-to-first-query (recovery
//! plus one `doc/count`), the figure an operator actually waits on after
//! a cloud-node restart. A final member measures recovery with a snapshot
//! covering the same state, isolating what log compaction buys.

use std::path::{Path, PathBuf};
use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use datablinder_core::cloud::{with_collection, CloudEngine};
use datablinder_core::durability::DurabilityOptions;
use datablinder_core::wire::encode_document;
use datablinder_docstore::{Document, Value};
use datablinder_netsim::CloudService;

const SIZES: [usize; 3] = [1_000, 10_000, 100_000];

fn bench_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("datablinder-recovery-bench-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Journals `n` document inserts into a fresh durable engine at `dir`.
/// `snapshot_every: None` keeps every mutation in the WAL tail so a reopen
/// replays all of them.
fn build_wal(dir: &Path, n: usize) {
    let engine =
        CloudEngine::open_durable_with(dir, DurabilityOptions { snapshot_every: None, ..DurabilityOptions::default() })
            .unwrap();
    for i in 0..n {
        let doc = Document::new(format!("{i:032x}")).with("n", Value::from(i as i64));
        engine.handle("doc/insert", &with_collection("bench", &encode_document(&doc))).unwrap();
    }
    assert_eq!(engine.wal_seq(), n as u64);
}

fn bench_recovery(c: &mut Criterion) {
    let mut g = c.benchmark_group("wal_replay");
    g.sample_size(10);
    for n in SIZES {
        let dir = bench_dir(&format!("replay-{n}"));
        build_wal(&dir, n);
        g.bench_function(format!("{n}_mutations"), |b| {
            b.iter(|| {
                let engine = CloudEngine::open_durable(&dir).unwrap();
                assert_eq!(engine.recovery_report().replayed, n as u64);
                engine
            });
        });
        let _ = std::fs::remove_dir_all(&dir);
    }

    // Snapshot-compacted counterpart at the largest size: same state, the
    // log folded into one materialized image.
    let n = *SIZES.last().unwrap();
    let dir = bench_dir("snapshot");
    build_wal(&dir, n);
    CloudEngine::open_durable(&dir).unwrap().snapshot_now().unwrap();
    g.bench_function(format!("{n}_mutations_snapshotted"), |b| {
        b.iter(|| {
            let engine = CloudEngine::open_durable(&dir).unwrap();
            assert!(engine.recovery_report().snapshot_restored);
            assert_eq!(engine.recovery_report().replayed, 0);
            engine
        });
    });
    let _ = std::fs::remove_dir_all(&dir);
    g.finish();

    // Wall-clock summary, outside Criterion's sampling.
    for n in SIZES {
        let dir = bench_dir(&format!("summary-{n}"));
        build_wal(&dir, n);
        let start = Instant::now();
        let engine = CloudEngine::open_durable(&dir).unwrap();
        let replay = start.elapsed();
        engine.handle("doc/count", &with_collection("bench", &[])).unwrap();
        let first_query = start.elapsed();
        eprintln!(
            "wal_replay/{n}: {:.0} records/s, replay {:?}, time-to-first-query {:?}",
            n as f64 / replay.as_secs_f64(),
            replay,
            first_query,
        );
        drop(engine);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

criterion_group!(benches, bench_recovery);
criterion_main!(benches);
