//! Resilience overhead: throughput and tail latency of equality search
//! through the retrying channel as the injected fault rate rises.
//!
//! Each group member runs the same gateway workload (200 documents, 20
//! owners) over a [`FaultyService`] at 0%, 1% and 5% per-message fault
//! rates (half drops, half detected corruption), with retries absorbing
//! every fault. Comparing members isolates what faults + retries cost the
//! application. A wall-clock summary (throughput + p50/p99) is printed per
//! rate after the Criterion groups, histogram-style like the report
//! harnesses.

use std::sync::Arc;
use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, Criterion};
use datablinder_core::cloud::CloudEngine;
use datablinder_core::gateway::GatewayEngine;
use datablinder_core::model::{FieldAnnotation, FieldOp, FieldType, ProtectionClass, Schema};
use datablinder_docstore::{Document, Value};
use datablinder_kms::Kms;
use datablinder_netsim::{
    Channel, FaultPlan, FaultyService, LatencyModel, ResilienceConfig, ResilientChannel, RetryPolicy, RouteFaults,
};
use datablinder_obs::histogram::LatencyHistogram;
use rand::rngs::StdRng;
use rand::SeedableRng;

const DOCS: usize = 200;
const OWNERS: usize = 20;
const RATES: [(&str, f64); 3] = [("faults_0pct", 0.0), ("faults_1pct", 0.01), ("faults_5pct", 0.05)];

fn schema() -> Schema {
    Schema::new("notes").sensitive_field(
        "owner",
        FieldType::Text,
        true,
        FieldAnnotation::new(ProtectionClass::C2, vec![FieldOp::Insert, FieldOp::Equality]),
    )
}

/// A loaded gateway whose channel faults at `rate` per message.
fn gateway_at(rate: f64, seed: u64) -> GatewayEngine {
    let faults = RouteFaults::none().with_drop(rate / 2.0).with_corrupt(rate / 2.0);
    let svc = Arc::new(FaultyService::new(CloudEngine::new(), FaultPlan::uniform(faults), seed));
    let channel = Channel::from_arc(svc, LatencyModel::instant());
    let config = ResilienceConfig {
        retry: RetryPolicy { max_attempts: 16, ..RetryPolicy::default() },
        deadline: Some(Duration::from_millis(10)),
        seed,
        ..ResilienceConfig::default()
    };
    let mut rng = StdRng::seed_from_u64(seed);
    let gw =
        GatewayEngine::with_resilience("bench", Kms::generate(&mut rng), ResilientChannel::new(channel, config), seed);
    gw.register_schema(schema()).unwrap();
    for i in 0..DOCS {
        gw.insert("notes", &Document::new("x").with("owner", Value::from(format!("o{}", i % OWNERS)))).unwrap();
    }
    gw
}

fn bench_search_under_faults(c: &mut Criterion) {
    let mut g = c.benchmark_group("resilience_search");
    g.sample_size(20);
    for (label, rate) in RATES {
        let gw = gateway_at(rate, 0xBE6C);
        let mut i = 0usize;
        g.bench_function(label, |b| {
            b.iter(|| {
                i = (i + 1) % OWNERS;
                gw.find_equal("notes", "owner", &Value::from(format!("o{i}"))).unwrap()
            });
        });
    }
    g.finish();

    // Wall-clock tail summary, outside Criterion's sampling.
    for (label, rate) in RATES {
        let gw = gateway_at(rate, 0xBE6C);
        let mut h = LatencyHistogram::new();
        let start = Instant::now();
        for i in 0..500usize {
            let t = Instant::now();
            gw.find_equal("notes", "owner", &Value::from(format!("o{}", i % OWNERS))).unwrap();
            h.record(t.elapsed());
        }
        let elapsed = start.elapsed().as_secs_f64();
        let m = gw.channel().metrics().snapshot();
        eprintln!(
            "resilience_search/{label}: {:.0} ops/s, p50 {:?}, p99 {:?}, attempts/round_trips {}/{}",
            h.count() as f64 / elapsed,
            h.percentile(0.50),
            h.percentile(0.99),
            m.attempts,
            m.round_trips,
        );
    }
}

criterion_group!(benches, bench_search_under_faults);
criterion_main!(benches);
