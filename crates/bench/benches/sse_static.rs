//! Benchmarks of the *static* SSE constructions (2Lev, BIEX-2Lev,
//! BIEX-ZMF): setup cost, query cost and the read-vs-space trade-off the
//! paper contrasts in Table 2 ("read and space efficiency, e.g. BIEX-2Lev
//! and BIEX-ZMF").

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use datablinder_kvstore::KvStore;
use datablinder_primitives::keys::SymmetricKey;
use datablinder_sse::biex::{Biex2LevClient, Biex2LevServer, BiexQuery, BiexZmfClient, BiexZmfServer};
use datablinder_sse::inverted::InvertedIndex;
use datablinder_sse::twolev::{TwoLevClient, TwoLevServer};
use datablinder_sse::DocId;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Synthetic corpus: `docs` documents, each with 3 keywords drawn from a
/// Zipf-flavored pool so common keywords get long postings lists.
fn corpus(docs: usize) -> InvertedIndex {
    let mut idx = InvertedIndex::new();
    for d in 0..docs {
        let mut id = [0u8; 16];
        id[..8].copy_from_slice(&(d as u64).to_be_bytes());
        let id = DocId(id);
        // keyword pools of decreasing popularity
        idx.add(format!("common-{}", d % 4).as_bytes(), id);
        idx.add(format!("mid-{}", d % 32).as_bytes(), id);
        idx.add(format!("rare-{}", d % 256).as_bytes(), id);
    }
    idx
}

fn bench_twolev(c: &mut Criterion) {
    let mut g = c.benchmark_group("twolev");
    g.sample_size(10);
    for docs in [1_000usize, 4_000] {
        let idx = corpus(docs);
        g.bench_with_input(BenchmarkId::new("setup", docs), &idx, |b, idx| {
            b.iter(|| {
                let client = TwoLevClient::new(&SymmetricKey::from_bytes(&[1u8; 32]));
                let server = TwoLevServer::new(KvStore::new(), b"2lev:");
                let mut rng = StdRng::seed_from_u64(1);
                client.setup(&mut rng, idx, &server).unwrap();
            });
        });

        let client = TwoLevClient::new(&SymmetricKey::from_bytes(&[1u8; 32]));
        let server = TwoLevServer::new(KvStore::new(), b"2lev:");
        let mut rng = StdRng::seed_from_u64(1);
        client.setup(&mut rng, &idx, &server).unwrap();
        g.bench_with_input(BenchmarkId::new("search_long_list", docs), &(), |b, _| {
            b.iter(|| {
                let token = client.search_token(b"common-1");
                let buckets = server.search(&token).unwrap();
                client.resolve(b"common-1", &buckets).unwrap()
            });
        });
    }
    g.finish();
}

fn bench_biex_variants(c: &mut Criterion) {
    let mut g = c.benchmark_group("biex_read_vs_space");
    g.sample_size(10);
    let idx = corpus(1_000);

    // BIEX-2Lev: heavy setup (pair materialization), light queries.
    let c2 = Biex2LevClient::new(&SymmetricKey::from_bytes(&[1u8; 32]));
    let s2 = Biex2LevServer::new(KvStore::new(), b"biex:");
    let mut rng = StdRng::seed_from_u64(2);
    c2.setup(&mut rng, &idx, &s2).unwrap();

    // BIEX-ZMF: light setup (one filter per keyword), heavier queries.
    let cz = BiexZmfClient::new(&SymmetricKey::from_bytes(&[2u8; 32]));
    let sz = BiexZmfServer::new(KvStore::new(), b"zmf:");
    cz.setup(&mut rng, &idx, &sz).unwrap();

    let query = BiexQuery::conjunction(vec![b"common-1".to_vec(), b"mid-1".to_vec()]);

    g.bench_function("2lev_conjunction", |b| {
        b.iter(|| {
            let t = c2.search_token(&query);
            let resp = s2.search(&t).unwrap();
            c2.resolve(&query, &resp).unwrap()
        });
    });
    g.bench_function("zmf_conjunction", |b| {
        b.iter(|| {
            let t = cz.search_token(&query);
            let resp = sz.search(&t).unwrap();
            cz.resolve(&query, &resp).unwrap()
        });
    });
    // Storage footprint comparison, printed once for the record.
    println!(
        "\n[storage] biex-2lev pair entries: {} | biex-zmf filters: {} ({} bytes)",
        s2.pair_count(),
        sz.filter_count(),
        sz.filter_bytes()
    );
    g.finish();
}

criterion_group!(benches, bench_twolev, bench_biex_variants);
criterion_main!(benches);
