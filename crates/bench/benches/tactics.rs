//! Per-tactic operation benchmarks through the SPI adapters — the
//! per-operation cost model behind the tactic descriptors' `PerfMetrics`
//! ranks (Fig. 1 "performance metrics").

use criterion::{criterion_group, criterion_main, Criterion};
use datablinder_core::spi::{CloudTactic, GatewayTactic};
use datablinder_core::tactics::{self, TacticContext};
use datablinder_docstore::Value;
use datablinder_kms::Kms;
use datablinder_kvstore::KvStore;
use datablinder_sse::DocId;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn ctx(scope: &str) -> TacticContext {
    let mut rng = StdRng::seed_from_u64(1);
    TacticContext {
        application: "bench".into(),
        schema: "obs".into(),
        scope: scope.into(),
        kms: Kms::generate(&mut rng),
    }
}

fn bench_protect(c: &mut Criterion) {
    let mut g = c.benchmark_group("tactic_protect");
    g.sample_size(30);
    let mut rng = StdRng::seed_from_u64(2);
    let value = Value::from("final");
    let numeric = Value::from(6.3f64);
    let id = DocId([1; 16]);

    let mut rnd = tactics::rnd::RndTactic::build(&ctx("f")).unwrap();
    g.bench_function("rnd", |b| b.iter(|| rnd.protect(&mut rng, "f", &value, id).unwrap()));

    let mut det = tactics::det::DetTactic::build(&ctx("f")).unwrap();
    g.bench_function("det", |b| b.iter(|| det.protect(&mut rng, "f", &value, id).unwrap()));

    let mut mitra = tactics::mitra::MitraTactic::build(&ctx("f")).unwrap();
    g.bench_function("mitra", |b| b.iter(|| mitra.protect(&mut rng, "f", &value, id).unwrap()));

    let mut sophos = tactics::sophos::SophosTactic::build(&ctx("f"), &mut rng).unwrap();
    g.bench_function("sophos", |b| b.iter(|| sophos.protect(&mut rng, "f", &value, id).unwrap()));

    let mut ope = tactics::ope::OpeTactic::build(&ctx("f")).unwrap();
    g.bench_function("ope", |b| b.iter(|| ope.protect(&mut rng, "f", &numeric, id).unwrap()));

    let mut ore = tactics::ore::OreTactic::build(&ctx("f")).unwrap();
    g.bench_function("ore", |b| b.iter(|| ore.protect(&mut rng, "f", &numeric, id).unwrap()));

    let mut paillier = tactics::paillier::PaillierTactic::build(&ctx("f"), &mut rng).unwrap();
    g.bench_function("paillier", |b| b.iter(|| paillier.protect(&mut rng, "f", &numeric, id).unwrap()));

    let mut biex = tactics::biex::BiexTactic::build(&ctx("__bool__"), tactics::biex::BiexVariant::TwoLev).unwrap();
    let literals = vec![
        ("status".to_string(), Value::from("final")),
        ("code".to_string(), Value::from("glucose")),
        ("value".to_string(), Value::from("high")),
    ];
    g.bench_function("biex_2lev_document", |b| b.iter(|| biex.protect_document(&mut rng, &literals, id).unwrap()));
    g.finish();
}

fn bench_search_round(c: &mut Criterion) {
    // Full client->cloud->client round per tactic, in-process (no channel),
    // over an index preloaded with 1000 postings for the queried keyword.
    let mut g = c.benchmark_group("tactic_search_1000");
    g.sample_size(20);
    let mut rng = StdRng::seed_from_u64(3);
    let value = Value::from("needle");

    // Mitra.
    let mut mitra = tactics::mitra::MitraTactic::build(&ctx("f")).unwrap();
    let mitra_cloud = tactics::mitra::MitraCloud::new(KvStore::new());
    for i in 0..1000u32 {
        let mut idb = [0u8; 16];
        idb[..4].copy_from_slice(&i.to_be_bytes());
        let p = mitra.protect(&mut rng, "f", &value, DocId(idb)).unwrap();
        for call in &p.index_calls {
            let parts: Vec<&str> = call.route.split('/').collect();
            mitra_cloud.handle(parts[2], parts[3], &call.payload).unwrap();
        }
    }
    g.bench_function("mitra", |b| {
        b.iter(|| {
            let calls = mitra.eq_query("f", &value).unwrap();
            let parts: Vec<&str> = calls[0].route.split('/').collect();
            let resp = mitra_cloud.handle(parts[2], parts[3], &calls[0].payload).unwrap();
            mitra.eq_resolve("f", &value, &[resp]).unwrap()
        })
    });

    // Sophos: the cloud-side trapdoor-permutation walk makes searches much
    // costlier than Mitra's plain multi-get — the trade for statelessness
    // of updates.
    let mut sophos = tactics::sophos::SophosTactic::build(&ctx("f"), &mut rng).unwrap();
    let sophos_cloud = tactics::sophos::SophosCloud::new(KvStore::new());
    for i in 0..1000u32 {
        let mut idb = [0u8; 16];
        idb[..4].copy_from_slice(&i.to_be_bytes());
        let p = sophos.protect(&mut rng, "f", &value, DocId(idb)).unwrap();
        for call in &p.index_calls {
            let parts: Vec<&str> = call.route.split('/').collect();
            sophos_cloud.handle(parts[2], parts[3], &call.payload).unwrap();
        }
    }
    g.bench_function("sophos", |b| {
        b.iter(|| {
            let calls = sophos.eq_query("f", &value).unwrap();
            let parts: Vec<&str> = calls[0].route.split('/').collect();
            let resp = sophos_cloud.handle(parts[2], parts[3], &calls[0].payload).unwrap();
            sophos.eq_resolve("f", &value, &[resp]).unwrap()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_protect, bench_search_round);
criterion_main!(benches);
