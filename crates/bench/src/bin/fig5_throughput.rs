//! Regenerates **Figure 5**: per-operation and overall throughput for the
//! three scenarios (S_A no protection, S_B hard-coded tactics, S_C
//! DataBlinder), plus the paper's two headline numbers (~44% tactic cost,
//! ~1.4% middleware overhead).
//!
//! ```sh
//! cargo run --release -p datablinder-bench --bin fig5_throughput
//! cargo run --release -p datablinder-bench --bin fig5_throughput -- --full      # paper scale
//! cargo run --release -p datablinder-bench --bin fig5_throughput -- --observe   # + S_C obs snapshot
//! cargo run --release -p datablinder-bench --bin fig5_throughput -- --shared-gateway --net instant
//! ```
//!
//! With `--observe` the middleware scenario runs through an enabled
//! recorder and the run ends with its observability snapshot: aligned
//! text tables on stdout and the machine-readable JSON document on a
//! trailing line (pipe-friendly: `... --observe | tail -1 > snapshot.json`).
//!
//! With `--shared-gateway` the binary instead runs ONE gateway engine
//! shared by every worker thread at 1/2/4/… workers (powers of two up to
//! `--workers`), prints the throughput scaling table, and ends with the
//! top rung's observability snapshot — per-shard contention counters and
//! pool gauges included — as a trailing JSON line.
//!
//! With `--cluster` it instead runs the replicated-cluster node-count
//! ladder (1/2/3/5 nodes, R = min(3, N), W = ⌊R/2⌋+1, one node killed and
//! rejoined mid-run where the quorum tolerates it), prints the per-rung
//! quorum-write/read throughput table, and writes `BENCH_cluster.json`
//! (path via `--out`):
//!
//! ```sh
//! cargo run --release -p datablinder-bench --bin fig5_throughput -- --cluster --requests 500
//! ```
//!
//! With `--tcp` it runs the shared-gateway closed loop over a real
//! loopback socket — an in-process `datablinder-cloudd`-style server on
//! an ephemeral port, the gateway connecting through the pipelining
//! `TcpChannel` — and writes `BENCH_tcp.json` (path via `--out`):
//!
//! ```sh
//! cargo run --release -p datablinder-bench --bin fig5_throughput -- --tcp --net instant --requests 500
//! ```

use datablinder_bench::{
    render_cluster_json, render_tcp_json, run_all_scenarios, run_cluster, run_cluster_obs_overhead, run_shared_gateway,
    run_tcp, EvalConfig,
};
use datablinder_workload::report::{render_figure5, render_snapshot, render_snapshot_json};

fn main() {
    let cfg = EvalConfig::from_args();
    if cfg.tcp {
        let run = run_tcp(cfg);
        println!(
            "\ntcp loopback: {} requests, {} workers sharing one gateway and one socket\n",
            cfg.requests, cfg.workers
        );
        println!("completed   ops/s      p50        p99        round-trips  retries  MB out/in");
        println!(
            "{:<9}  {:>7.1}  {:>9.2?}  {:>9.2?}  {:>11}  {:>7}  {:.2}/{:.2}",
            run.report.completed,
            run.report.throughput(),
            run.report.overall.percentile(0.50),
            run.report.overall.percentile(0.99),
            run.round_trips,
            run.retries,
            run.bytes_sent as f64 / 1e6,
            run.bytes_received as f64 / 1e6
        );
        assert_eq!(run.report.failed, 0, "tcp rung: failed requests");
        let json = render_tcp_json(&run);
        std::fs::write(cfg.tcp_out, &json).expect("write BENCH_tcp.json");
        eprintln!("wrote {}", cfg.tcp_out);
        println!("\n{json}");
        return;
    }
    if cfg.cluster {
        let rungs = run_cluster(cfg);
        println!("\ncluster ladder: {} quorum writes + reads per rung\n", cfg.requests.max(2));
        println!("nodes  R  W   writes/s     reads/s   kills  rejoins  repairs");
        for r in &rungs {
            println!(
                "{:<5}  {}  {}  {:>9.1}  {:>10.1}   {:>5}  {:>7}  {:>7}",
                r.nodes,
                r.replication,
                r.write_quorum,
                r.quorum_write_per_s,
                r.quorum_read_per_s,
                r.kills,
                r.rejoins,
                r.read_repairs
            );
        }
        let overhead = run_cluster_obs_overhead(cfg);
        println!(
            "\nobservability overhead (top rung, write-only): {:.1}/s off, {:.1}/s on ({:+.2}%)",
            overhead.obs_disabled_write_per_s,
            overhead.obs_enabled_write_per_s,
            overhead.overhead_pct()
        );
        let json = render_cluster_json(&rungs, &overhead);
        std::fs::write(cfg.cluster_out, &json).expect("write BENCH_cluster.json");
        eprintln!("wrote {}", cfg.cluster_out);
        println!("\n{json}");
        return;
    }
    if cfg.shared_gateway {
        let reports = run_shared_gateway(cfg);
        println!(
            "\nshared gateway: {} requests per rung, {} patients, mixed insert/search/aggregate\n",
            cfg.requests, cfg.patient_pool
        );
        println!("workers  throughput    speedup");
        let base = reports[0].throughput();
        for r in &reports {
            let speedup = if base > 0.0 { r.throughput() / base } else { 0.0 };
            println!("{:<8} {:>8.1}/s   {:>5.2}x", r.label, r.throughput(), speedup);
        }
        for r in &reports {
            assert_eq!(r.failed, 0, "{}: failed requests", r.label);
        }
        let top = reports.last().expect("at least one rung");
        println!("\n{}", render_snapshot(top));
        println!("{}", render_snapshot_json(top));
        return;
    }
    let (sa, sb, sc) = run_all_scenarios(cfg);
    println!(
        "\nworkload: {} requests x 3 scenarios, {} workers, {} patients, mixed insert/search/aggregate\n",
        cfg.requests, cfg.workers, cfg.patient_pool
    );
    println!("{}", render_figure5(&[&sa, &sb, &sc]));
    for r in [&sa, &sb, &sc] {
        assert_eq!(r.failed, 0, "{}: failed requests", r.label);
    }
    if cfg.observe {
        println!("{}", render_snapshot(&sc));
        println!("{}", render_snapshot_json(&sc));
    }
}
