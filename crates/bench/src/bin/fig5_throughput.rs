//! Regenerates **Figure 5**: per-operation and overall throughput for the
//! three scenarios (S_A no protection, S_B hard-coded tactics, S_C
//! DataBlinder), plus the paper's two headline numbers (~44% tactic cost,
//! ~1.4% middleware overhead).
//!
//! ```sh
//! cargo run --release -p datablinder-bench --bin fig5_throughput
//! cargo run --release -p datablinder-bench --bin fig5_throughput -- --full      # paper scale
//! cargo run --release -p datablinder-bench --bin fig5_throughput -- --observe   # + S_C obs snapshot
//! ```
//!
//! With `--observe` the middleware scenario runs through an enabled
//! recorder and the run ends with its observability snapshot: aligned
//! text tables on stdout and the machine-readable JSON document on a
//! trailing line (pipe-friendly: `... --observe | tail -1 > snapshot.json`).

use datablinder_bench::{run_all_scenarios, EvalConfig};
use datablinder_workload::report::{render_figure5, render_snapshot, render_snapshot_json};

fn main() {
    let cfg = EvalConfig::from_args();
    let (sa, sb, sc) = run_all_scenarios(cfg);
    println!(
        "\nworkload: {} requests x 3 scenarios, {} workers, {} patients, mixed insert/search/aggregate\n",
        cfg.requests, cfg.workers, cfg.patient_pool
    );
    println!("{}", render_figure5(&[&sa, &sb, &sc]));
    for r in [&sa, &sb, &sc] {
        assert_eq!(r.failed, 0, "{}: failed requests", r.label);
    }
    if cfg.observe {
        println!("{}", render_snapshot(&sc));
        println!("{}", render_snapshot_json(&sc));
    }
}
