//! Crypto-kernel baseline: old-vs-new cost of the modular-arithmetic hot
//! paths, emitted as `BENCH_crypto.json` for CI trend tracking.
//!
//! ```sh
//! cargo run --release -p datablinder-bench --bin fig_crypto
//! cargo run --release -p datablinder-bench --bin fig_crypto -- --quick
//! cargo run --release -p datablinder-bench --bin fig_crypto -- --bits 1024 --out /tmp/BENCH_crypto.json
//! ```
//!
//! Four comparisons, each pinning one amortization introduced by the
//! kernel rework:
//!
//! * `modpow_per_call_ctx` vs `modpow_cached_ctx` — square-and-multiply
//!   through [`BigUint::modpow`] (rebuilds the Montgomery domain per call)
//!   against a long-lived [`MontgomeryCtx`];
//! * `encrypt_legacy` vs `encrypt_cached_ctx` vs `encrypt_pooled` — the
//!   pre-rework Paillier encrypt (per-call `r^n mod n²` with no cached
//!   context), the cached-context encrypt, and completion from a
//!   [`RandomizerPool`] obfuscator;
//! * `decrypt_plain` vs `decrypt_crt` — full-width `c^λ mod n²` against
//!   the two half-width CRT exponentiations;
//! * `batch_sum` — the gateway aggregate path end to end: pooled
//!   encryption of a batch, cloud-side homomorphic sum, one CRT decrypt.
//!
//! Plus four symmetric rungs pinning the batched hot path:
//!
//! * `ghash_bitloop` vs `ghash_tables` — the 128-round `gf_mul` loop
//!   against the per-key multiplication table;
//! * `ctr_legacy` vs `ctr_scalar` vs `ctr_batched` — byte-wise AES per
//!   block, scalar T-table loop, and the 8-block batched keystream;
//! * `seal_scalar_per_field` vs `seal_batched_per_field` — the pre-rework
//!   AEAD pipeline per field against one `seal_many` call over the batch;
//! * `hmac_oneshot` vs `hmac_ctx_reuse` — per-call key preparation
//!   against reused ipad/opad midstates.
//!
//! The JSON document carries raw `ns_per_op` per kernel plus derived
//! speedups and five booleans (`crt_not_slower`, `cached_encrypt_faster`,
//! `ghash_tables_faster`, `ctr_batched_faster`, `seal_batched_faster`)
//! that `scripts/verify.sh` asserts on.

use std::time::Instant;

use datablinder_bigint::{BigUint, MontgomeryCtx};
use datablinder_paillier::{Keypair, RandomizerPool};
use rand::SeedableRng;

struct Args {
    quick: bool,
    bits: usize,
    out: String,
}

fn parse_args() -> Args {
    let mut args = Args { quick: false, bits: 512, out: "BENCH_crypto.json".to_string() };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => args.quick = true,
            "--bits" => args.bits = it.next().and_then(|v| v.parse().ok()).expect("--bits N"),
            "--out" => args.out = it.next().expect("--out PATH"),
            other => panic!("unknown flag {other}"),
        }
    }
    if args.quick {
        args.bits = args.bits.min(256);
    }
    args
}

/// One timed round: average ns/op over `iters` calls.
fn round_ns(iters: u64, f: &mut dyn FnMut()) -> f64 {
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

/// Races competing kernels: round-robins `rounds` timed rounds across all
/// of them and keeps each kernel's *minimum* round. Interleaving plus
/// min-of-rounds cancels clock drift and transient load, which on small
/// shared machines otherwise dwarfs few-percent deltas.
fn race(iters: u64, rounds: u64, fns: &mut [&mut dyn FnMut()]) -> Vec<f64> {
    for f in fns.iter_mut() {
        f(); // warmup
    }
    let mut best = vec![f64::INFINITY; fns.len()];
    for _ in 0..rounds {
        for (i, f) in fns.iter_mut().enumerate() {
            best[i] = best[i].min(round_ns(iters, *f));
        }
    }
    best
}

struct Kernel {
    name: &'static str,
    iters: u64,
    ns_per_op: f64,
}

fn main() {
    let args = parse_args();
    let (iters, rounds): (u64, u64) = if args.quick { (5, 3) } else { (10, 6) };
    let reps = iters * rounds;
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xC0FFEE);
    let mut kernels: Vec<Kernel> = Vec::new();
    let push = |kernels: &mut Vec<Kernel>, name: &'static str, iters: u64, ns: f64| {
        println!("{name:<24} {ns:>12.0} ns/op  ({iters} iters, min of rounds)");
        kernels.push(Kernel { name, iters, ns_per_op: ns });
    };

    // --- modpow: per-call context vs cached context -----------------------
    let mut m = BigUint::random_bits(&mut rng, args.bits);
    m.set_bit(0, true);
    m.set_bit(args.bits - 1, true);
    let base = BigUint::random_below(&mut rng, &m);
    let exp = BigUint::random_bits(&mut rng, args.bits);
    let ctx = MontgomeryCtx::new(&m);
    let timings = race(
        iters,
        rounds,
        &mut [
            &mut || {
                std::hint::black_box(base.modpow(&exp, &m));
            },
            &mut || {
                std::hint::black_box(ctx.modpow(&base, &exp));
            },
        ],
    );
    let (ns_old, ns_new) = (timings[0], timings[1]);
    push(&mut kernels, "modpow_per_call_ctx", reps, ns_old);
    push(&mut kernels, "modpow_cached_ctx", reps, ns_new);
    let speedup_modpow = ns_old / ns_new;

    // --- Paillier encrypt: legacy vs cached ctx vs pooled -----------------
    let kp = Keypair::generate(&mut rng, args.bits);
    let pk = kp.public().clone();
    let n = pk.modulus().clone();
    let n2 = pk.modulus_squared().clone();
    let m_plain = BigUint::from(123_456_789u64);
    // The legacy path, reproduced exactly: fresh unit r, r^n mod n² with no
    // cached context, then a division-based modular multiply.
    let mut rng_legacy = rand::rngs::StdRng::seed_from_u64(1);
    let mut rng_enc = rand::rngs::StdRng::seed_from_u64(1);
    let mut rng_pool = rand::rngs::StdRng::seed_from_u64(1);
    let pool = RandomizerPool::new(pk.clone(), ((iters + 1) * rounds) as usize * 2);
    pool.refill(&mut rng);
    let timings = race(
        iters,
        rounds,
        &mut [
            &mut || {
                let r = loop {
                    let r = BigUint::random_below(&mut rng_legacy, &n);
                    if !r.is_zero() && r.gcd(&n).is_one() {
                        break r;
                    }
                };
                let rn = r.modpow(&n, &n2);
                let gm = &(&m_plain * &n) + &BigUint::one();
                std::hint::black_box(gm.modmul(&rn, &n2));
            },
            &mut || {
                std::hint::black_box(pk.encrypt(&mut rng_enc, &m_plain).unwrap());
            },
            &mut || {
                let obf = pool.take(&mut rng_pool);
                std::hint::black_box(pk.encrypt_with(&m_plain, &obf).unwrap());
            },
        ],
    );
    let (ns_legacy, ns_cached, ns_pooled) = (timings[0], timings[1], timings[2]);
    push(&mut kernels, "encrypt_legacy", reps, ns_legacy);
    push(&mut kernels, "encrypt_cached_ctx", reps, ns_cached);
    push(&mut kernels, "encrypt_pooled", reps, ns_pooled);
    assert_eq!(pool.stats().misses, 0, "pool sized to cover the whole run");
    let speedup_encrypt = ns_legacy / ns_cached;
    let speedup_encrypt_pooled = ns_legacy / ns_pooled;

    // --- decrypt: plain λ path vs CRT ------------------------------------
    let ct = pk.encrypt(&mut rng, &m_plain).unwrap();
    let timings = race(
        iters,
        rounds,
        &mut [
            &mut || {
                std::hint::black_box(kp.decrypt_plain(&ct).unwrap());
            },
            &mut || {
                std::hint::black_box(kp.decrypt(&ct).unwrap());
            },
        ],
    );
    let (ns_plain, ns_crt) = (timings[0], timings[1]);
    push(&mut kernels, "decrypt_plain", reps, ns_plain);
    push(&mut kernels, "decrypt_crt", reps, ns_crt);
    assert_eq!(kp.decrypt(&ct).unwrap(), kp.decrypt_plain(&ct).unwrap(), "CRT and plain decrypt must agree");
    let speedup_decrypt = ns_plain / ns_crt;

    // --- batch sum: the gateway aggregate path end to end -----------------
    let batch: u64 = if args.quick { 16 } else { 64 };
    let sum_pool = RandomizerPool::new(pk.clone(), batch as usize);
    let timings = race(
        iters.max(3),
        rounds.min(3),
        &mut [&mut || {
            sum_pool.refill(&mut rng);
            let mut acc = pk.encrypt_with(&BigUint::zero(), &sum_pool.take(&mut rng)).unwrap();
            for v in 1..batch {
                let c = pk.encrypt_with(&BigUint::from(v), &sum_pool.take(&mut rng)).unwrap();
                acc = pk.add(&acc, &c);
            }
            let sum = kp.decrypt(&acc).unwrap();
            assert_eq!(sum, BigUint::from(batch * (batch - 1) / 2));
        }],
    );
    let ns_batch_per_element = timings[0] / batch as f64;
    push(&mut kernels, "batch_sum_per_element", iters.max(3) * rounds.min(3), ns_batch_per_element);
    let batch_sum_per_sec = 1e9 / ns_batch_per_element;

    // --- symmetric hot path: GHASH tables, batched CTR, batch seal, HMAC --
    use datablinder_primitives::aes::Aes;
    use datablinder_primitives::ctr::{counter_block, ctr_xor, ctr_xor_scalar, increment_counter};
    use datablinder_primitives::gcm::{AesGcm, NONCE_LEN};
    use datablinder_primitives::hmac::{hmac_sha256, HmacCtx};

    let sym_key = datablinder_primitives::keys::SymmetricKey::from_bytes(&[0x5Au8; 32]);
    let gcm = AesGcm::new(&sym_key).unwrap();
    let aes = Aes::new(&sym_key.as_bytes()[..16]).unwrap();

    // GHASH over a 4 KiB message: per-key multiplication table vs the
    // 128-round bit-loop it replaced.
    let ghash_msg = vec![0xA7u8; 4096];
    let timings = race(
        iters,
        rounds,
        &mut [
            &mut || {
                std::hint::black_box(gcm.ghash_ref(b"", &ghash_msg));
            },
            &mut || {
                std::hint::black_box(gcm.ghash(b"", &ghash_msg));
            },
        ],
    );
    let (ns_ghash_bitloop, ns_ghash_tables) = (timings[0], timings[1]);
    push(&mut kernels, "ghash_bitloop", reps, ns_ghash_bitloop);
    push(&mut kernels, "ghash_tables", reps, ns_ghash_tables);
    let speedup_ghash = ns_ghash_bitloop / ns_ghash_tables;
    let mib = |bytes: f64, ns: f64| bytes / (1024.0 * 1024.0) / (ns / 1e9);
    let ghash_tables_mib_s = mib(ghash_msg.len() as f64, ns_ghash_tables);
    let ghash_bitloop_mib_s = mib(ghash_msg.len() as f64, ns_ghash_bitloop);

    // CTR keystream over 64 KiB: the pre-rework per-block loop (byte-wise
    // AES, byte-wise XOR), the scalar loop over the T-table AES, and the
    // 8-block batched path.
    let mut buf_legacy = vec![0x3Cu8; 64 * 1024];
    let mut buf_scalar = buf_legacy.clone();
    let mut buf_batched = buf_legacy.clone();
    let iv = [0u8; 16];
    let timings = race(
        iters,
        rounds,
        &mut [
            &mut || {
                // Legacy CTR, reproduced exactly: one byte-wise block
                // encryption and a byte XOR per 16-byte chunk.
                let mut counter = iv;
                for chunk in buf_legacy.chunks_mut(16) {
                    let mut ks = counter;
                    aes.encrypt_block_ref(&mut ks);
                    for (b, k) in chunk.iter_mut().zip(ks.iter()) {
                        *b ^= k;
                    }
                    increment_counter(&mut counter);
                }
                std::hint::black_box(&buf_legacy);
            },
            &mut || {
                ctr_xor_scalar(&aes, &iv, &mut buf_scalar);
                std::hint::black_box(&buf_scalar);
            },
            &mut || {
                ctr_xor(&aes, &iv, &mut buf_batched);
                std::hint::black_box(&buf_batched);
            },
        ],
    );
    let (ns_ctr_legacy, ns_ctr_scalar, ns_ctr_batched) = (timings[0], timings[1], timings[2]);
    push(&mut kernels, "ctr_legacy", reps, ns_ctr_legacy);
    push(&mut kernels, "ctr_scalar", reps, ns_ctr_scalar);
    push(&mut kernels, "ctr_batched", reps, ns_ctr_batched);
    let speedup_ctr = ns_ctr_legacy / ns_ctr_batched;
    let ctr_batched_mib_s = mib((64 * 1024) as f64, ns_ctr_batched);
    let ctr_scalar_mib_s = mib((64 * 1024) as f64, ns_ctr_scalar);

    // AEAD seal of a 64-field batch (64-byte fields): the pre-rework
    // scalar pipeline per field vs one `seal_many` call.
    let fields: u64 = 64;
    let field_bytes = vec![0x11u8; 64];
    let nonces: Vec<[u8; NONCE_LEN]> =
        (0..fields).map(|i| counter_block(&[7u8; 12], i as u32)[..NONCE_LEN].try_into().unwrap()).collect();
    let seal_items: Vec<(&[u8; NONCE_LEN], &[u8])> = nonces.iter().map(|n| (n, field_bytes.as_slice())).collect();
    let timings = race(
        iters,
        rounds,
        &mut [
            &mut || {
                for n in &nonces {
                    std::hint::black_box(gcm.seal_scalar(n, b"bench", &field_bytes));
                }
            },
            &mut || {
                std::hint::black_box(gcm.seal_many(b"bench", &seal_items));
            },
        ],
    );
    let (ns_seal_scalar_batch, ns_seal_many_batch) = (timings[0], timings[1]);
    let ns_seal_scalar = ns_seal_scalar_batch / fields as f64;
    let ns_seal_batched = ns_seal_many_batch / fields as f64;
    push(&mut kernels, "seal_scalar_per_field", reps, ns_seal_scalar);
    push(&mut kernels, "seal_batched_per_field", reps, ns_seal_batched);
    let speedup_seal = ns_seal_scalar / ns_seal_batched;
    let seal_scalar_ops_s = 1e9 / ns_seal_scalar;
    let seal_batched_ops_s = 1e9 / ns_seal_batched;

    // HMAC-SHA256 of a 64-byte message: one-shot (key prep per call) vs a
    // reused context (ipad/opad midstates prepared once).
    let hmac_key = [0x77u8; 32];
    let hmac_msg = [0x42u8; 64];
    let hmac_ctx = HmacCtx::new(&hmac_key);
    let hmac_iters = iters * 50;
    let timings = race(
        hmac_iters,
        rounds,
        &mut [
            &mut || {
                std::hint::black_box(hmac_sha256(&hmac_key, &hmac_msg));
            },
            &mut || {
                std::hint::black_box(hmac_ctx.mac(&hmac_msg));
            },
        ],
    );
    let (ns_hmac_oneshot, ns_hmac_ctx) = (timings[0], timings[1]);
    push(&mut kernels, "hmac_oneshot", hmac_iters * rounds, ns_hmac_oneshot);
    push(&mut kernels, "hmac_ctx_reuse", hmac_iters * rounds, ns_hmac_ctx);
    let speedup_hmac = ns_hmac_oneshot / ns_hmac_ctx;
    let hmac_oneshot_ops_s = 1e9 / ns_hmac_oneshot;
    let hmac_ctx_ops_s = 1e9 / ns_hmac_ctx;

    let crt_not_slower = ns_crt <= ns_plain;
    // The shipped encryption path completes from a pooled obfuscator over
    // the cached context; the per-call-context path is what it replaced.
    let cached_encrypt_faster = ns_pooled < ns_legacy && ns_cached < ns_legacy * 1.10;
    // Never-regress gates for the symmetric rework. The GHASH table is a
    // ≥5x algorithmic win (16 table steps vs 128 shift-xor rounds per
    // block); the other two only have to beat the paths they replaced.
    let ghash_tables_faster = speedup_ghash >= 5.0;
    // Batched CTR must beat the pre-rework byte-wise path outright and not
    // regress against the scalar T-table loop (same 10% guard band the
    // encrypt gate uses — AES dominates both, so their gap is small).
    let ctr_batched_faster = ns_ctr_batched < ns_ctr_legacy && ns_ctr_batched < ns_ctr_scalar * 1.10;
    let seal_batched_faster = ns_seal_batched < ns_seal_scalar;

    let mut json = String::new();
    json.push('{');
    json.push_str("\"bench\":\"crypto_kernels\",");
    json.push_str(&format!("\"quick\":{},", args.quick));
    json.push_str(&format!("\"modulus_bits\":{},", args.bits));
    json.push_str("\"kernels\":[");
    for (i, k) in kernels.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        json.push_str(&format!("{{\"name\":\"{}\",\"iters\":{},\"ns_per_op\":{:.1}}}", k.name, k.iters, k.ns_per_op));
    }
    json.push_str("],");
    json.push_str(&format!("\"speedup_modpow_cached\":{speedup_modpow:.2},"));
    json.push_str(&format!("\"speedup_encrypt_cached\":{speedup_encrypt:.2},"));
    json.push_str(&format!("\"speedup_encrypt_pooled\":{speedup_encrypt_pooled:.2},"));
    json.push_str(&format!("\"speedup_decrypt_crt\":{speedup_decrypt:.2},"));
    json.push_str(&format!("\"batch_sum_elements_per_sec\":{batch_sum_per_sec:.0},"));
    json.push_str(&format!("\"ghash_tables_mib_per_sec\":{ghash_tables_mib_s:.1},"));
    json.push_str(&format!("\"ghash_bitloop_mib_per_sec\":{ghash_bitloop_mib_s:.1},"));
    json.push_str(&format!("\"speedup_ghash_tables\":{speedup_ghash:.2},"));
    json.push_str(&format!("\"ctr_batched_mib_per_sec\":{ctr_batched_mib_s:.1},"));
    json.push_str(&format!("\"ctr_scalar_mib_per_sec\":{ctr_scalar_mib_s:.1},"));
    json.push_str(&format!("\"speedup_ctr_batched\":{speedup_ctr:.2},"));
    json.push_str(&format!("\"seal_scalar_ops_per_sec\":{seal_scalar_ops_s:.0},"));
    json.push_str(&format!("\"seal_batched_ops_per_sec\":{seal_batched_ops_s:.0},"));
    json.push_str(&format!("\"speedup_seal_batched\":{speedup_seal:.2},"));
    json.push_str(&format!("\"hmac_oneshot_ops_per_sec\":{hmac_oneshot_ops_s:.0},"));
    json.push_str(&format!("\"hmac_ctx_ops_per_sec\":{hmac_ctx_ops_s:.0},"));
    json.push_str(&format!("\"speedup_hmac_ctx\":{speedup_hmac:.2},"));
    json.push_str(&format!("\"crt_not_slower\":{crt_not_slower},"));
    json.push_str(&format!("\"cached_encrypt_faster\":{cached_encrypt_faster},"));
    json.push_str(&format!("\"ghash_tables_faster\":{ghash_tables_faster},"));
    json.push_str(&format!("\"ctr_batched_faster\":{ctr_batched_faster},"));
    json.push_str(&format!("\"seal_batched_faster\":{seal_batched_faster}"));
    json.push('}');

    std::fs::write(&args.out, &json).expect("write BENCH_crypto.json");
    println!(
        "\nspeedups: modpow cached {speedup_modpow:.2}x, encrypt cached {speedup_encrypt:.2}x, encrypt pooled {speedup_encrypt_pooled:.2}x, CRT decrypt {speedup_decrypt:.2}x"
    );
    println!("batch sum: {batch_sum_per_sec:.0} elements/s");
    println!(
        "symmetric: GHASH tables {speedup_ghash:.2}x ({ghash_tables_mib_s:.0} MiB/s), CTR batched {speedup_ctr:.2}x ({ctr_batched_mib_s:.0} MiB/s), seal batched {speedup_seal:.2}x ({seal_batched_ops_s:.0} ops/s), HMAC ctx {speedup_hmac:.2}x"
    );
    println!("wrote {}", args.out);
    println!("{json}");
}
