//! Regenerates **Table 1**: the Service Provider Interface matrix — which
//! gateway and cloud interfaces each high-level operation requires.
//!
//! The rows are the high-level operations of the data-access model; the
//! columns map to the `datablinder_core::spi` trait surface (see the
//! module docs of `spi` for the exact method mapping).
//!
//! ```sh
//! cargo run -p datablinder-bench --bin table1_spi
//! ```

/// (operation, gateway interfaces, cloud interfaces) — Table 1 verbatim.
const TABLE1: &[(&str, &str, &str)] = &[
    ("Insert", "Insertion, DocIDGen, SecureEnc", "Insertion"),
    ("Update", "Update, DocIDGen, Retrieval, SecureEnc", "Update, Retrieval"),
    ("Delete", "Deletion", "Deletion"),
    ("Read", "Retrieval, SecureEnc", "Retrieval"),
    ("Equality Search", "EqQuery, EqResolution, <Read>", "EqQuery"),
    ("Boolean Search", "BoolQuery, BoolResolution, <Read>", "BoolQuery"),
    ("Aggregate", "<Query>, AggFunctionResolution", "AggFunction"),
];

/// SPI methods exercised by this reproduction, per operation — checked
/// against the trait surface so the table cannot silently drift.
fn implemented_gateway_methods(op: &str) -> Vec<&'static str> {
    match op {
        "Insert" => vec!["GatewayTactic::protect", "DocIdGen::generate"],
        "Update" => vec!["GatewayTactic::protect", "GatewayTactic::delete", "GatewayTactic::recover"],
        "Delete" => vec!["GatewayTactic::delete", "GatewayTactic::delete_document"],
        "Read" => vec!["GatewayTactic::recover"],
        "Equality Search" => vec!["GatewayTactic::eq_query", "GatewayTactic::eq_resolve"],
        "Boolean Search" => vec!["GatewayTactic::bool_query", "GatewayTactic::bool_resolve"],
        "Aggregate" => vec!["GatewayTactic::agg_query", "GatewayTactic::agg_resolve"],
        _ => vec![],
    }
}

fn main() {
    println!("Table 1 — Service Provider Interface (SPI)");
    println!("{:-<100}", "");
    println!("{:<17} {:<42} {:<20}", "", "Gateway Interfaces", "Cloud Interfaces");
    println!("{:-<100}", "");
    for (op, gw, cloud) in TABLE1 {
        println!("{op:<17} {gw:<42} {cloud:<20}");
    }
    println!("{:-<100}", "");
    println!("\nSPI trait methods in this reproduction (datablinder_core::spi):\n");
    for (op, _, _) in TABLE1 {
        println!("{op:<17} -> {}", implemented_gateway_methods(op).join(", "));
    }
    println!(
        "\ncloud interfaces dispatch through CloudTactic::handle(scope, op, payload)\n\
         on routes tactic/<name>/<scope>/<op>; document-level interfaces ride doc/* routes."
    );
}
