//! Regenerates **Table 2**: the tactic inventory — scheme, protection
//! class, leakage, SPI interface counts — from *live registry
//! introspection*, so the table is guaranteed to match the running code.
//!
//! ```sh
//! cargo run -p datablinder-bench --bin table2_tactics
//! ```

use datablinder_core::model::{AggFn, FieldOp};
use datablinder_core::registry::TacticRegistry;

/// The paper's Table 2 rows for comparison: (operation, scheme name,
/// class, leakage, gateway ifaces, cloud ifaces, challenge).
const PAPER: &[(&str, &str, &str, &str, u8, u8, &str)] = &[
    ("Equality Search", "det", "4", "Equalities", 9, 6, "-"),
    ("Equality Search", "mitra", "2", "Identifiers", 7, 5, "Local storage"),
    ("Equality Search", "sophos", "2", "Identifiers", 6, 4, "Key management"),
    ("Equality Search", "rnd", "1", "Structure", 6, 4, "Inefficiency"),
    ("Boolean Search", "biex-2lev", "3", "Predicate", 8, 5, "Storage impl. complexity"),
    ("Boolean Search", "biex-zmf", "3", "Predicate", 8, 5, "Storage impl. complexity"),
    ("Range Query", "ope", "5", "Order", 3, 3, "-"),
    ("Range Query", "ore", "5", "Order", 3, 3, "-"),
    ("Sum", "paillier", "-", "-", 3, 3, "Key management"),
    ("Average", "paillier", "-", "-", 3, 3, "Key management"),
];

fn primary_op(registry: &TacticRegistry, name: &str) -> &'static str {
    let d = registry.descriptor(name).expect("registered");
    if d.serves_agg.contains(&AggFn::Avg) {
        "Sum/Average"
    } else if d.serves_op(FieldOp::Range) {
        "Range Query"
    } else if d.serves_op(FieldOp::Boolean) && name.starts_with("biex") {
        "Boolean Search"
    } else {
        "Equality Search"
    }
}

fn main() {
    let registry = TacticRegistry::with_builtins();

    println!("Table 2 — implemented & integrated cryptographic constructions (live registry)");
    println!("{:-<105}", "");
    println!(
        "{:<16} {:<12} {:<8} {:<12} {:>8} {:>7}  {:<20} Family",
        "Operation", "Scheme", "Class", "Leakage", "GW SPI", "Cloud", "State"
    );
    println!("{:-<105}", "");
    for d in registry.descriptors() {
        let class = if d.serves_agg.is_empty() { format!("{}", d.protection_class() as u8) } else { "-".into() };
        let leakage = if d.serves_agg.is_empty() { d.worst_leakage().to_string() } else { "-".into() };
        println!(
            "{:<16} {:<12} {:<8} {:<12} {:>8} {:>7}  {:<20} {}",
            primary_op(&registry, &d.name),
            d.name,
            class,
            leakage,
            d.gateway_interfaces,
            d.cloud_interfaces,
            if d.gateway_state { "gateway state" } else { "stateless" },
            d.family,
        );
    }
    println!("{:-<105}", "");

    // Cross-check against the published table.
    println!("\ncross-check vs the paper's Table 2:");
    let mut mismatches = 0;
    for (_, name, class, leakage, gw, cloud, challenge) in PAPER {
        let Some(d) = registry.descriptor(name) else {
            println!("  MISSING {name}");
            mismatches += 1;
            continue;
        };
        let got_class = if d.serves_agg.is_empty() { format!("{}", d.protection_class() as u8) } else { "-".into() };
        let got_leak = if d.serves_agg.is_empty() { d.worst_leakage().to_string() } else { "-".into() };
        let class_ok = got_class == *class;
        // Leakage names differ slightly ("Predicate" vs "Predicates").
        let leak_ok = got_leak.starts_with(leakage.trim_end_matches('s')) || got_leak == *leakage;
        let iface_ok = d.gateway_interfaces == *gw && d.cloud_interfaces == *cloud;
        let status = if class_ok && leak_ok && iface_ok { "ok" } else { "MISMATCH" };
        if status != "ok" {
            mismatches += 1;
        }
        println!(
            "  {name:<12} class {got_class} (paper {class}), leakage {got_leak} (paper {leakage}), \
             SPI {}/{} (paper {gw}/{cloud}), challenge: {challenge}  [{status}]",
            d.gateway_interfaces, d.cloud_interfaces
        );
    }
    if mismatches == 0 {
        println!("\nall rows match the published table");
    } else {
        println!("\n{mismatches} mismatching row(s)");
        std::process::exit(1);
    }
}
