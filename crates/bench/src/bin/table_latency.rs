//! Regenerates the **§5.2 latency table**: overall average and 50th/75th/
//! 99th percentile latency for S_A / S_B / S_C.
//!
//! ```sh
//! cargo run --release -p datablinder-bench --bin table_latency
//! ```

use datablinder_bench::{run_all_scenarios, EvalConfig};
use datablinder_workload::report::render_latency_table;

fn main() {
    let cfg = EvalConfig::from_args();
    let (sa, sb, sc) = run_all_scenarios(cfg);
    println!();
    println!("{}", render_latency_table(&[&sa, &sb, &sc]));
    println!(
        "note: the paper observed that \"the execution of aggregate protocols, namely the\n\
         Paillier PHE, had a considerable impact on these numbers\" — compare:\n"
    );
    for r in [&sa, &sb, &sc] {
        println!(
            "  {}: aggregate p99 = {:?}, search p99 = {:?}, insert p99 = {:?}",
            r.label,
            r.aggregate.percentile(0.99),
            r.search.percentile(0.99),
            r.insert.percentile(0.99),
        );
    }
}
