//! Shared harness code for the evaluation binaries.
//!
//! One binary per table/figure of the paper (see DESIGN.md §3):
//!
//! * `fig5_throughput` — Figure 5 (S_A/S_B/S_C throughput comparison),
//! * `table_latency` — the §5.2 latency percentile table,
//! * `table1_spi` — Table 1 (SPI interface matrix),
//! * `table2_tactics` — Table 2 (tactic inventory from live registry
//!   introspection).

#![warn(missing_docs)]
use datablinder_core::cloud::CloudEngine;
use datablinder_netsim::{Channel, LatencyModel};
use datablinder_obs::Recorder;
use datablinder_workload::clients::{HardcodedClient, MiddlewareClient, PlainClient};
use datablinder_workload::runner::{run_scenario, run_scenario_observed, ScenarioReport, ScenarioSpec};

/// Workload sizing for the Figure-5 / latency-table runs.
#[derive(Debug, Clone, Copy)]
pub struct EvalConfig {
    /// Concurrent workers.
    pub workers: usize,
    /// Total requests per scenario.
    pub requests: usize,
    /// Distinct patients (search-result sizes).
    pub patient_pool: usize,
    /// Paillier modulus bits for the hard-coded client (the middleware
    /// client always uses its registry default, 512).
    pub paillier_bits: usize,
    /// Channel latency model (`instant`, `lan`, `metro`, `wan`). The
    /// paper's deployment crossed a real network (private OpenStack to a
    /// public cloud provider); `metro` with real sleeping is the default
    /// so round trips cost wall-clock time like they did there.
    pub net: &'static str,
    /// Run S_C through an enabled [`Recorder`] so its report carries a
    /// populated observability snapshot (per-route gateway counters,
    /// channel metrics, leakage ledger). Off by default: recording costs
    /// a little, and the headline S_B→S_C comparison should not pay it.
    pub observe: bool,
}

impl Default for EvalConfig {
    fn default() -> Self {
        EvalConfig { workers: 8, requests: 4_000, patient_pool: 64, paillier_bits: 512, net: "metro", observe: false }
    }
}

impl EvalConfig {
    /// Parses `--workers N --requests N --observe --full` style CLI
    /// arguments.
    pub fn from_args() -> Self {
        let mut cfg = EvalConfig::default();
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--workers" => {
                    cfg.workers = args.next().and_then(|v| v.parse().ok()).unwrap_or(cfg.workers);
                }
                "--requests" => {
                    cfg.requests = args.next().and_then(|v| v.parse().ok()).unwrap_or(cfg.requests);
                }
                "--patients" => {
                    cfg.patient_pool = args.next().and_then(|v| v.parse().ok()).unwrap_or(cfg.patient_pool);
                }
                "--net" => {
                    cfg.net = match args.next().as_deref() {
                        Some("instant") => "instant",
                        Some("lan") => "lan",
                        Some("wan") => "wan",
                        _ => "metro",
                    };
                }
                "--observe" => cfg.observe = true,
                // The paper's full scale: ~151k requests, 1000 users.
                "--full" => {
                    cfg.workers = 64;
                    cfg.requests = 151_000;
                    cfg.patient_pool = 1000;
                }
                other => eprintln!("ignoring unknown argument {other}"),
            }
        }
        cfg
    }

    fn spec(&self) -> ScenarioSpec {
        ScenarioSpec {
            workers: self.workers,
            requests: self.requests,
            patient_pool: self.patient_pool,
            ..ScenarioSpec::default()
        }
    }
}

/// Runs the three §5.2 scenarios against fresh cloud engines and returns
/// `(S_A, S_B, S_C)` reports.
pub fn run_all_scenarios(cfg: EvalConfig) -> (ScenarioReport, ScenarioReport, ScenarioReport) {
    // All scenarios share one latency model; each worker gets its own
    // channel handle to one shared per-scenario cloud engine.
    let spec = cfg.spec();
    let model = match cfg.net {
        "instant" => LatencyModel::instant(),
        "lan" => LatencyModel { real_sleep: true, ..LatencyModel::lan() },
        "wan" => LatencyModel { real_sleep: true, ..LatencyModel::wan() },
        _ => LatencyModel { real_sleep: true, ..LatencyModel::metro() },
    };

    eprintln!("running S_A (no middleware, no tactics): {} requests / {} workers", cfg.requests, cfg.workers);
    let cloud_a = Channel::connect(CloudEngine::new(), model);
    let sa = run_scenario("S_A", spec, |w| Box::new(PlainClient::new(cloud_a.clone(), w as u64)));

    eprintln!("running S_B (hard-coded tactics)");
    let cloud_b = Channel::connect(CloudEngine::new(), model);
    let sb =
        run_scenario("S_B", spec, |w| Box::new(HardcodedClient::new(cloud_b.clone(), w as u64, cfg.paillier_bits)));

    eprintln!("running S_C (DataBlinder middleware)");
    let cloud_c = Channel::connect(CloudEngine::new(), model);
    let sc = if cfg.observe {
        let recorder = Recorder::new();
        let rec = recorder.clone();
        run_scenario_observed(
            "S_C",
            spec,
            move |w| Box::new(MiddlewareClient::new_observed(cloud_c.clone(), w as u64, rec.clone())),
            recorder,
        )
    } else {
        run_scenario("S_C", spec, |w| Box::new(MiddlewareClient::new(cloud_c.clone(), w as u64)))
    };

    (sa, sb, sc)
}
