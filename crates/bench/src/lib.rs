//! Shared harness code for the evaluation binaries.
//!
//! One binary per table/figure of the paper (see DESIGN.md §3):
//!
//! * `fig5_throughput` — Figure 5 (S_A/S_B/S_C throughput comparison),
//! * `table_latency` — the §5.2 latency percentile table,
//! * `table1_spi` — Table 1 (SPI interface matrix),
//! * `table2_tactics` — Table 2 (tactic inventory from live registry
//!   introspection).

#![warn(missing_docs)]
use std::sync::Arc;

use datablinder_core::cloud::CloudEngine;
use datablinder_core::pool::WorkerPool;
use datablinder_docstore::Document;
use datablinder_fhir::ObservationGenerator;
use datablinder_netsim::{
    Channel, CloudServer, CloudService, LatencyModel, ResilienceConfig, ResilientChannel, ServerConfig, TcpChannel,
    TcpConfig,
};
use datablinder_obs::Recorder;
use datablinder_workload::clients::{
    shared_gateway, shared_gateway_over, HardcodedClient, MiddlewareClient, PlainClient, SHARED_SCHEMA,
};
use datablinder_workload::runner::{
    run_scenario, run_scenario_observed, run_shared_scenario, ScenarioReport, ScenarioSpec,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Workload sizing for the Figure-5 / latency-table runs.
#[derive(Debug, Clone, Copy)]
pub struct EvalConfig {
    /// Concurrent workers.
    pub workers: usize,
    /// Total requests per scenario.
    pub requests: usize,
    /// Distinct patients (search-result sizes).
    pub patient_pool: usize,
    /// Paillier modulus bits for the hard-coded client (the middleware
    /// client always uses its registry default, 512).
    pub paillier_bits: usize,
    /// Channel latency model (`instant`, `lan`, `metro`, `wan`). The
    /// paper's deployment crossed a real network (private OpenStack to a
    /// public cloud provider); `metro` with real sleeping is the default
    /// so round trips cost wall-clock time like they did there.
    pub net: &'static str,
    /// Run S_C through an enabled [`Recorder`] so its report carries a
    /// populated observability snapshot (per-route gateway counters,
    /// channel metrics, leakage ledger). Off by default: recording costs
    /// a little, and the headline S_B→S_C comparison should not pay it.
    pub observe: bool,
    /// Run the shared-gateway scaling ladder instead of the three-scenario
    /// comparison: ONE gateway engine serves every worker, at 1, 2, 4, …
    /// workers up to [`EvalConfig::workers`]. See [`run_shared_gateway`].
    pub shared_gateway: bool,
    /// Run the replicated-cluster node-count ladder instead: quorum-write
    /// and quorum-read throughput at 1/2/3/5 nodes, with a node killed and
    /// rejoined mid-run on the multi-node rungs. See [`run_cluster`].
    pub cluster: bool,
    /// Output path for the cluster ladder's `BENCH_cluster.json`.
    pub cluster_out: &'static str,
    /// Run the loopback-TCP rung instead: ONE shared gateway speaking the
    /// framed wire protocol over a real socket to an in-process
    /// [`CloudServer`] — the repo's first honest end-to-end latency
    /// numbers. See [`run_tcp`].
    pub tcp: bool,
    /// Output path for the TCP rung's `BENCH_tcp.json`.
    pub tcp_out: &'static str,
}

impl Default for EvalConfig {
    fn default() -> Self {
        EvalConfig {
            workers: 8,
            requests: 4_000,
            patient_pool: 64,
            paillier_bits: 512,
            net: "metro",
            observe: false,
            shared_gateway: false,
            cluster: false,
            cluster_out: "BENCH_cluster.json",
            tcp: false,
            tcp_out: "BENCH_tcp.json",
        }
    }
}

impl EvalConfig {
    /// Parses `--workers N --requests N --observe --full` style CLI
    /// arguments.
    pub fn from_args() -> Self {
        let mut cfg = EvalConfig::default();
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--workers" => {
                    cfg.workers = args.next().and_then(|v| v.parse().ok()).unwrap_or(cfg.workers);
                }
                "--requests" => {
                    cfg.requests = args.next().and_then(|v| v.parse().ok()).unwrap_or(cfg.requests);
                }
                "--patients" => {
                    cfg.patient_pool = args.next().and_then(|v| v.parse().ok()).unwrap_or(cfg.patient_pool);
                }
                "--net" => {
                    cfg.net = match args.next().as_deref() {
                        Some("instant") => "instant",
                        Some("lan") => "lan",
                        Some("wan") => "wan",
                        _ => "metro",
                    };
                }
                "--observe" => cfg.observe = true,
                "--shared-gateway" => cfg.shared_gateway = true,
                "--cluster" => cfg.cluster = true,
                "--tcp" => cfg.tcp = true,
                "--out" => {
                    if let Some(path) = args.next() {
                        let leaked: &'static str = Box::leak(path.into_boxed_str());
                        cfg.cluster_out = leaked;
                        cfg.tcp_out = leaked;
                    }
                }
                // The paper's full scale: ~151k requests, 1000 users.
                "--full" => {
                    cfg.workers = 64;
                    cfg.requests = 151_000;
                    cfg.patient_pool = 1000;
                }
                other => eprintln!("ignoring unknown argument {other}"),
            }
        }
        cfg
    }

    fn spec(&self) -> ScenarioSpec {
        ScenarioSpec {
            workers: self.workers,
            requests: self.requests,
            patient_pool: self.patient_pool,
            ..ScenarioSpec::default()
        }
    }

    fn latency_model(&self) -> LatencyModel {
        match self.net {
            "instant" => LatencyModel::instant(),
            "lan" => LatencyModel { real_sleep: true, ..LatencyModel::lan() },
            "wan" => LatencyModel { real_sleep: true, ..LatencyModel::wan() },
            _ => LatencyModel { real_sleep: true, ..LatencyModel::metro() },
        }
    }
}

/// Runs the three §5.2 scenarios against fresh cloud engines and returns
/// `(S_A, S_B, S_C)` reports.
pub fn run_all_scenarios(cfg: EvalConfig) -> (ScenarioReport, ScenarioReport, ScenarioReport) {
    // All scenarios share one latency model; each worker gets its own
    // channel handle to one shared per-scenario cloud engine.
    let spec = cfg.spec();
    let model = cfg.latency_model();

    eprintln!("running S_A (no middleware, no tactics): {} requests / {} workers", cfg.requests, cfg.workers);
    let cloud_a = Channel::connect(CloudEngine::new(), model);
    let sa = run_scenario("S_A", spec, |w| Box::new(PlainClient::new(cloud_a.clone(), w as u64)));

    eprintln!("running S_B (hard-coded tactics)");
    let cloud_b = Channel::connect(CloudEngine::new(), model);
    let sb =
        run_scenario("S_B", spec, |w| Box::new(HardcodedClient::new(cloud_b.clone(), w as u64, cfg.paillier_bits)));

    eprintln!("running S_C (DataBlinder middleware)");
    let cloud_c = Channel::connect(CloudEngine::new(), model);
    let sc = if cfg.observe {
        let recorder = Recorder::new();
        let rec = recorder.clone();
        run_scenario_observed(
            "S_C",
            spec,
            move |w| Box::new(MiddlewareClient::new_observed(cloud_c.clone(), w as u64, rec.clone())),
            recorder,
        )
    } else {
        run_scenario("S_C", spec, |w| Box::new(MiddlewareClient::new(cloud_c.clone(), w as u64)))
    };

    (sa, sb, sc)
}

/// Static labels for the shared-gateway scaling rungs (scenario labels are
/// `&'static str` throughout the runner).
fn rung_label(workers: usize) -> &'static str {
    match workers {
        1 => "Gx1",
        2 => "Gx2",
        4 => "Gx4",
        8 => "Gx8",
        16 => "Gx16",
        32 => "Gx32",
        64 => "Gx64",
        _ => "GxN",
    }
}

/// Powers of two up to and including `max` (so the default `--workers 8`
/// gives the 1/2/4/8 ladder).
fn ladder(max: usize) -> Vec<usize> {
    let mut rungs = Vec::new();
    let mut w = 1usize;
    while w <= max.max(1) {
        rungs.push(w);
        w *= 2;
    }
    rungs
}

/// Runs the shared-gateway scaling ladder: at each worker count (powers of
/// two up to `cfg.workers`), ONE [`GatewayEngine`] instance — with a
/// worker pool attached for parallel batch encryption — serves every
/// worker thread over ONE shared [`CloudEngine`]. Each rung's report
/// carries a snapshot from the run's shared recorder, taken *after*
/// [`CloudEngine::publish_shard_metrics`], so per-shard contention
/// counters (`cloud.kv.shard.N.contention`, `cloud.dedup.shard.N.contention`)
/// and the pool gauges are present in the JSON document the binary prints.
///
/// This is the deployment shape the `&self` engine routes exist for; the
/// three-scenario comparison in [`run_all_scenarios`] instead builds one
/// engine per worker.
///
/// [`GatewayEngine`]: datablinder_core::gateway::GatewayEngine
pub fn run_shared_gateway(cfg: EvalConfig) -> Vec<ScenarioReport> {
    let model = cfg.latency_model();
    let mut reports = Vec::new();
    for workers in ladder(cfg.workers) {
        eprintln!("running shared gateway: {} requests / {} workers on one engine", cfg.requests, workers);
        let recorder = Recorder::new();
        let mut cloud = CloudEngine::new();
        cloud.set_recorder(recorder.clone());
        let cloud = Arc::new(cloud);
        let channel = Channel::from_arc(cloud.clone(), model);
        let pool = Arc::new(WorkerPool::new(workers.min(4)));
        let engine = shared_gateway(channel, recorder.clone(), Some(pool));

        // Prime through the batch path so the run also exercises the
        // worker pool (the closed-loop mix inserts one document at a
        // time and would otherwise never fan out).
        let mut rng = StdRng::seed_from_u64(0x51AB);
        let mut gen = ObservationGenerator::new(cfg.patient_pool);
        let batch: Vec<Document> = (0..16).map(|_| gen.generate(&mut rng)).collect();
        engine.insert_many(SHARED_SCHEMA, &batch).expect("priming batch inserts");

        let spec =
            ScenarioSpec { workers, requests: cfg.requests, patient_pool: cfg.patient_pool, ..ScenarioSpec::default() };
        let mut report = run_shared_scenario(rung_label(workers), spec, &engine, recorder.clone());
        cloud.publish_shard_metrics();
        report.snapshot = recorder.snapshot();
        reports.push(report);
    }
    reports
}

/// The loopback-TCP rung: the shared-gateway closed loop, but every hop
/// crosses a real socket.
#[derive(Debug)]
pub struct TcpRunReport {
    /// The closed-loop scenario report (same shape as a shared-gateway rung).
    pub report: ScenarioReport,
    /// Worker threads that shared the one gateway (and its one socket).
    pub workers: usize,
    /// Wire round trips the gateway's channel completed.
    pub round_trips: u64,
    /// Requests the resilience layer re-sent after a transport failure
    /// (should be zero on loopback).
    pub retries: u64,
    /// Bytes written to the socket (frame overhead included).
    pub bytes_sent: u64,
    /// Bytes read back from the socket.
    pub bytes_received: u64,
    /// Requests the server's workers answered, priming traffic included.
    pub served: u64,
}

/// Runs the same closed-loop mix as one [`run_shared_gateway`] rung, but
/// over a real kernel socket: an in-process [`CloudServer`] bound to an
/// ephemeral loopback port serves the shared [`CloudEngine`], and the ONE
/// shared gateway reaches it through a pipelining [`TcpChannel`] wrapped
/// in the same [`ResilientChannel`] the simulated path uses. Identical
/// seeds and schema to [`run_shared_gateway`] — the only variable is the
/// wire.
pub fn run_tcp(cfg: EvalConfig) -> TcpRunReport {
    eprintln!("running tcp loopback: {} requests / {} workers over one socket", cfg.requests, cfg.workers);
    let recorder = Recorder::new();
    let mut cloud = CloudEngine::new();
    cloud.set_recorder(recorder.clone());
    let cloud = Arc::new(cloud);
    let service: Arc<dyn CloudService> = cloud.clone();
    let server = CloudServer::bind(
        "127.0.0.1:0",
        service,
        ServerConfig { workers: cfg.workers.max(2), ..ServerConfig::default() },
    )
    .expect("bind loopback cloud server");
    let tcp = Arc::new(TcpChannel::connect(server.local_addr(), TcpConfig::default()).expect("connect loopback"));
    let resilient = ResilientChannel::over(tcp, ResilienceConfig { seed: 0xC0DE, ..ResilienceConfig::default() });
    let pool = Arc::new(WorkerPool::new(cfg.workers.min(4)));
    let engine = shared_gateway_over(resilient, recorder.clone(), Some(pool));

    // Same priming batch as the shared-gateway ladder: exercises the
    // worker pool's parallel encryption and the pipelined multi-frame
    // insert path before timing starts.
    let mut rng = StdRng::seed_from_u64(0x51AB);
    let mut gen = ObservationGenerator::new(cfg.patient_pool);
    let batch: Vec<Document> = (0..16).map(|_| gen.generate(&mut rng)).collect();
    engine.insert_many(SHARED_SCHEMA, &batch).expect("priming batch inserts");

    let spec = ScenarioSpec {
        workers: cfg.workers,
        requests: cfg.requests,
        patient_pool: cfg.patient_pool,
        ..ScenarioSpec::default()
    };
    let mut report = run_shared_scenario("tcp-loopback", spec, &engine, recorder.clone());
    cloud.publish_shard_metrics();
    report.snapshot = recorder.snapshot();

    let metrics = engine.channel().metrics();
    TcpRunReport {
        workers: cfg.workers,
        round_trips: metrics.round_trips(),
        retries: metrics.retries(),
        bytes_sent: metrics.bytes_sent(),
        bytes_received: metrics.bytes_received(),
        served: server.served(),
        report,
    }
}

/// Renders `BENCH_tcp.json`: the rung's throughput (`ops_per_s`, what CI
/// greps for) plus the wire-level counters only a real socket produces.
pub fn render_tcp_json(run: &TcpRunReport) -> String {
    format!(
        "{{\"bench\":\"tcp\",\"label\":\"{}\",\"workers\":{},\"completed\":{},\"failed\":{},\
         \"ops_per_s\":{:.1},\"p50_us\":{:.1},\"p99_us\":{:.1},\"round_trips\":{},\"retries\":{},\
         \"bytes_sent\":{},\"bytes_received\":{},\"served\":{}}}",
        run.report.label,
        run.workers,
        run.report.completed,
        run.report.failed,
        run.report.throughput(),
        run.report.overall.percentile(0.50).as_secs_f64() * 1e6,
        run.report.overall.percentile(0.99).as_secs_f64() * 1e6,
        run.round_trips,
        run.retries,
        run.bytes_sent,
        run.bytes_received,
        run.served
    )
}

/// One rung of the replicated-cluster node-count ladder.
#[derive(Debug, Clone)]
pub struct ClusterRungReport {
    /// Cluster size (N).
    pub nodes: usize,
    /// Replicas per key (R).
    pub replication: usize,
    /// Durable acks per write (W).
    pub write_quorum: usize,
    /// Quorum writes per second (each write fans out to R replicas and
    /// waits for W durable acks).
    pub quorum_write_per_s: f64,
    /// Quorum reads per second (each read probes the key's live replicas
    /// and answers by majority).
    pub quorum_read_per_s: f64,
    /// Nodes killed mid-run.
    pub kills: u64,
    /// Nodes rejoined mid-run.
    pub rejoins: u64,
    /// Replicas healed by read repair after the rejoin.
    pub read_repairs: u64,
    /// Wall-clock milliseconds the mid-run rejoin spent resyncing state
    /// from its peers (0 on rungs without a kill/rejoin).
    pub resync_ms: f64,
    /// Anti-entropy passes until the quiesced cluster converged (every
    /// live replica reporting byte-identical per-shard Merkle state).
    pub anti_entropy_rounds: u64,
    /// Bytes shipped by anti-entropy repairs while converging.
    pub anti_entropy_repaired_bytes: u64,
}

impl ClusterRungReport {
    /// The rung as one JSON object (no serde in the bench path).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"nodes\":{},\"replication\":{},\"write_quorum\":{},\"quorum_write_per_s\":{:.1},\
             \"quorum_read_per_s\":{:.1},\"kills\":{},\"rejoins\":{},\"read_repairs\":{},\
             \"resync_ms\":{:.2},\"anti_entropy_rounds\":{},\"anti_entropy_repaired_bytes\":{}}}",
            self.nodes,
            self.replication,
            self.write_quorum,
            self.quorum_write_per_s,
            self.quorum_read_per_s,
            self.kills,
            self.rejoins,
            self.read_repairs,
            self.resync_ms,
            self.anti_entropy_rounds,
            self.anti_entropy_repaired_bytes
        )
    }
}

/// Observability cost on the top cluster rung: the identical write-only
/// workload with recording off (the default) and fully on (enabled
/// recorder, every write rooted in a trace, per-node recorders federated).
#[derive(Debug, Clone, Copy)]
pub struct ObsOverheadReport {
    /// Quorum writes per second with the disabled (default) recorder.
    pub obs_disabled_write_per_s: f64,
    /// Quorum writes per second with tracing and metrics fully enabled.
    pub obs_enabled_write_per_s: f64,
}

impl ObsOverheadReport {
    /// The enabled path's slowdown relative to disabled, in percent
    /// (negative when enabled happened to measure faster).
    pub fn overhead_pct(&self) -> f64 {
        if self.obs_disabled_write_per_s <= 0.0 {
            return 0.0;
        }
        (self.obs_disabled_write_per_s / self.obs_enabled_write_per_s.max(f64::EPSILON) - 1.0) * 100.0
    }
}

/// Renders the full `BENCH_cluster.json` document: every rung plus the
/// top rung's headline throughputs at top level (what CI greps for).
pub fn render_cluster_json(rungs: &[ClusterRungReport], overhead: &ObsOverheadReport) -> String {
    let items: Vec<String> = rungs.iter().map(ClusterRungReport::to_json).collect();
    let top = rungs.last().expect("at least one rung");
    format!(
        "{{\"bench\":\"cluster\",\"rungs\":[{}],\"quorum_write_per_s\":{:.1},\"quorum_read_per_s\":{:.1},\
         \"resync_ms\":{:.2},\"anti_entropy_rounds\":{},\"obs_disabled_write_per_s\":{:.1},\
         \"obs_enabled_write_per_s\":{:.1},\"obs_overhead_pct\":{:.2}}}",
        items.join(","),
        top.quorum_write_per_s,
        top.quorum_read_per_s,
        top.resync_ms,
        top.anti_entropy_rounds,
        overhead.obs_disabled_write_per_s,
        overhead.obs_enabled_write_per_s,
        overhead.overhead_pct()
    )
}

/// Measures the observability tax on the top rung (5 nodes, R=3, W=2):
/// `cfg.requests` quorum writes against an un-instrumented cluster, then
/// the same writes against one with an enabled recorder where every write
/// opens a root trace — so the measured path includes span guards, traced
/// envelopes on every replica channel, per-node apply spans and federation
/// bookkeeping.
pub fn run_cluster_obs_overhead(cfg: EvalConfig) -> ObsOverheadReport {
    use datablinder_core::cluster::{ClusterCloud, ClusterConfig};

    let requests = cfg.requests.max(2);
    let rate = |instrument: bool| -> f64 {
        use datablinder_core::cloud::with_collection;
        use datablinder_core::wire::encode_document;
        use datablinder_docstore::Value;
        use datablinder_netsim::CloudService;

        let mut cluster = ClusterCloud::new(ClusterConfig::volatile(5, 3, 2, 0xBE7C)).expect("valid config");
        let obs = instrument.then(|| {
            let recorder = Recorder::new();
            cluster.set_recorder(recorder.clone());
            recorder
        });
        let payloads: Vec<Vec<u8>> = (0..requests)
            .map(|i| {
                let id = format!("{i:032x}");
                let doc = Document::new(id).with("value", Value::from(i as i64));
                with_collection("bench", &encode_document(&doc))
            })
            .collect();
        let started = std::time::Instant::now();
        for payload in &payloads {
            let _root = obs.as_ref().map(|r| r.span_root("workload.insert"));
            cluster.handle("doc/insert", payload).expect("quorum write");
        }
        requests as f64 / started.elapsed().as_secs_f64().max(f64::EPSILON)
    };
    eprintln!("measuring observability overhead: {requests} writes, recorder off vs on");
    ObsOverheadReport { obs_disabled_write_per_s: rate(false), obs_enabled_write_per_s: rate(true) }
}

/// Runs the replicated-cluster ladder: at 1, 2, 3 and 5 nodes (R = min(3,
/// N), W = ⌊R/2⌋+1), a [`ClusterCloud`] takes `cfg.requests` quorum writes
/// followed by `cfg.requests` quorum reads over the inserted keys. On
/// rungs where the quorum tolerates it, one node is killed halfway through
/// the writes and rejoined before the reads — so the reported throughput
/// includes failover and the read-repair traffic that heals the rejoined
/// (volatile, therefore empty) node.
///
/// [`ClusterCloud`]: datablinder_core::cluster::ClusterCloud
pub fn run_cluster(cfg: EvalConfig) -> Vec<ClusterRungReport> {
    use datablinder_core::cloud::with_collection;
    use datablinder_core::cluster::{ClusterCloud, ClusterConfig};
    use datablinder_core::wire::encode_document;
    use datablinder_docstore::Value;
    use datablinder_netsim::CloudService;

    let requests = cfg.requests.max(2);
    let mut rungs = Vec::new();
    for nodes in [1usize, 2, 3, 5] {
        let replication = nodes.min(3);
        let write_quorum = replication / 2 + 1;
        // A kill mid-run must leave every quorum satisfiable: a key whose
        // replica set includes the dead node has R−1 live replicas left,
        // which must still reach W (the ring never re-routes).
        let survivable = replication > write_quorum;
        eprintln!(
            "running cluster rung: {nodes} nodes, R={replication}, W={write_quorum}, {requests} writes + reads{}",
            if survivable { ", one kill/rejoin mid-run" } else { "" }
        );
        let cluster = ClusterCloud::new(ClusterConfig::volatile(nodes, replication, write_quorum, 0xBE7C))
            .expect("valid rung config");

        let payloads: Vec<(String, Vec<u8>)> = (0..requests)
            .map(|i| {
                let id = format!("{i:032x}");
                let doc = Document::new(id.clone()).with("value", Value::from(i as i64));
                (id, with_collection("bench", &encode_document(&doc)))
            })
            .collect();
        let started = std::time::Instant::now();
        for (i, (_, payload)) in payloads.iter().enumerate() {
            if survivable && i == requests / 2 {
                cluster.kill_node(nodes - 1);
            }
            cluster.handle("doc/insert", payload).expect("quorum write");
        }
        let write_secs = started.elapsed().as_secs_f64();
        let resync_ms = if survivable {
            let started = std::time::Instant::now();
            cluster.rejoin_node(nodes - 1).expect("rejoin");
            started.elapsed().as_secs_f64() * 1_000.0
        } else {
            0.0
        };
        let started = std::time::Instant::now();
        for (id, _) in &payloads {
            cluster.handle("doc/get", &with_collection("bench", id.as_bytes())).expect("quorum read");
        }
        let read_secs = started.elapsed().as_secs_f64();
        // Quiesced convergence: how many Merkle-diff passes until every
        // live replica reports identical per-shard state. One clean pass
        // is the floor (the pass that observes convergence).
        let mut anti_entropy_rounds = 1u64;
        while !cluster.run_anti_entropy().converged() {
            anti_entropy_rounds += 1;
            assert!(anti_entropy_rounds < 32, "anti-entropy must converge on a quiet cluster");
        }
        rungs.push(ClusterRungReport {
            nodes,
            replication,
            write_quorum,
            quorum_write_per_s: requests as f64 / write_secs.max(f64::EPSILON),
            quorum_read_per_s: requests as f64 / read_secs.max(f64::EPSILON),
            kills: cluster.kills(),
            rejoins: cluster.rejoins(),
            read_repairs: cluster.read_repairs(),
            resync_ms,
            anti_entropy_rounds,
            anti_entropy_repaired_bytes: cluster.anti_entropy_repaired_bytes(),
        });
    }
    rungs
}
