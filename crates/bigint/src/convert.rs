//! Conversions: byte-string encodings, decimal/hex parsing and formatting,
//! and uniform random sampling.

use rand::Rng;

use crate::uint::BigUint;
use crate::BigIntError;

impl BigUint {
    /// Parses a decimal string.
    ///
    /// # Errors
    ///
    /// Returns [`BigIntError::ParseError`] on empty input or non-digit bytes.
    pub fn from_dec_str(s: &str) -> Result<BigUint, BigIntError> {
        if s.is_empty() {
            return Err(BigIntError::ParseError(s.into()));
        }
        let mut out = BigUint::zero();
        for c in s.bytes() {
            let d = match c {
                b'0'..=b'9' => (c - b'0') as u64,
                _ => return Err(BigIntError::ParseError(s.into())),
            };
            out = out.mul_u64(10);
            out.add_assign_u64(d);
        }
        Ok(out)
    }

    /// Parses a hexadecimal string (no `0x` prefix, case-insensitive).
    ///
    /// # Errors
    ///
    /// Returns [`BigIntError::ParseError`] on empty input or non-hex bytes.
    pub fn from_hex_str(s: &str) -> Result<BigUint, BigIntError> {
        if s.is_empty() {
            return Err(BigIntError::ParseError(s.into()));
        }
        let mut out = BigUint::zero();
        for c in s.bytes() {
            let d = match c {
                b'0'..=b'9' => (c - b'0') as u64,
                b'a'..=b'f' => (c - b'a' + 10) as u64,
                b'A'..=b'F' => (c - b'A' + 10) as u64,
                _ => return Err(BigIntError::ParseError(s.into())),
            };
            out = &out << 4;
            out.add_assign_u64(d);
        }
        Ok(out)
    }

    /// Big-endian byte encoding with no leading zero bytes (empty for zero).
    pub fn to_bytes_be(&self) -> Vec<u8> {
        if self.is_zero() {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(self.limbs.len() * 8);
        for &l in self.limbs.iter().rev() {
            out.extend_from_slice(&l.to_be_bytes());
        }
        let skip = out.iter().take_while(|&&b| b == 0).count();
        out.drain(..skip);
        out
    }

    /// Builds from big-endian bytes. Leading zero bytes are accepted.
    pub fn from_bytes_be(bytes: &[u8]) -> BigUint {
        let mut out = BigUint::zero();
        for &b in bytes {
            out = &out << 8;
            out.add_assign_u64(b as u64);
        }
        out
    }

    /// Fixed-width big-endian encoding, left-padded with zeros.
    ///
    /// # Panics
    ///
    /// Panics if the value does not fit in `width` bytes.
    pub fn to_bytes_be_padded(&self, width: usize) -> Vec<u8> {
        let raw = self.to_bytes_be();
        assert!(raw.len() <= width, "value needs {} bytes but width is {width}", raw.len());
        let mut out = vec![0u8; width - raw.len()];
        out.extend_from_slice(&raw);
        out
    }

    /// Uniform random integer in `[0, bound)`, by rejection sampling.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn random_below<R: Rng + ?Sized>(rng: &mut R, bound: &BigUint) -> BigUint {
        assert!(!bound.is_zero(), "random_below with zero bound");
        let bits = bound.bits();
        loop {
            let candidate = Self::random_bits(rng, bits);
            if &candidate < bound {
                return candidate;
            }
        }
    }

    /// Random integer with at most `bits` bits (uniform over `[0, 2^bits)`).
    pub fn random_bits<R: Rng + ?Sized>(rng: &mut R, bits: usize) -> BigUint {
        let limbs = bits.div_ceil(64);
        let mut v: Vec<u64> = (0..limbs).map(|_| rng.gen()).collect();
        let rem = bits % 64;
        if rem != 0 {
            if let Some(top) = v.last_mut() {
                *top &= (1u64 << rem) - 1;
            }
        }
        BigUint::from_limbs(v)
    }
}

impl std::str::FromStr for BigUint {
    type Err = BigIntError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        BigUint::from_dec_str(s)
    }
}

impl std::fmt::Display for BigUint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        // Peel off 19 decimal digits at a time (largest power of 10 in u64).
        const CHUNK: u64 = 10_000_000_000_000_000_000;
        let mut digits = Vec::new();
        let mut cur = self.clone();
        while !cur.is_zero() {
            let (q, r) = cur.divrem_u64(CHUNK);
            digits.push(r);
            cur = q;
        }
        let mut s = digits.pop().unwrap().to_string();
        for d in digits.iter().rev() {
            s.push_str(&format!("{d:019}"));
        }
        f.pad_integral(true, "", &s)
    }
}

impl std::fmt::Debug for BigUint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{self}")
    }
}

impl std::fmt::LowerHex for BigUint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        let mut s = format!("{:x}", self.limbs.last().unwrap());
        for l in self.limbs.iter().rev().skip(1) {
            s.push_str(&format!("{l:016x}"));
        }
        f.pad_integral(true, "0x", &s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn dec_roundtrip() {
        for s in [
            "0",
            "1",
            "18446744073709551616",
            "340282366920938463463374607431768211456",
            "999999999999999999999999999999",
        ] {
            let v = BigUint::from_dec_str(s).unwrap();
            assert_eq!(v.to_string(), s);
        }
    }

    #[test]
    fn dec_parse_errors() {
        assert!(BigUint::from_dec_str("").is_err());
        assert!(BigUint::from_dec_str("12a").is_err());
        assert!(BigUint::from_dec_str("-5").is_err());
    }

    #[test]
    fn hex_roundtrip() {
        let v = BigUint::from_hex_str("deadBEEFcafebabe1234567890").unwrap();
        assert_eq!(format!("{v:x}"), "deadbeefcafebabe1234567890");
        assert!(BigUint::from_hex_str("xyz").is_err());
    }

    #[test]
    fn bytes_roundtrip() {
        let v = BigUint::from_dec_str("123456789012345678901234567890").unwrap();
        let bytes = v.to_bytes_be();
        assert_eq!(BigUint::from_bytes_be(&bytes), v);
        assert_eq!(BigUint::from_bytes_be(&[]), BigUint::zero());
        assert_eq!(BigUint::zero().to_bytes_be(), Vec::<u8>::new());
        // leading zeros accepted
        let mut padded = vec![0u8, 0u8];
        padded.extend_from_slice(&bytes);
        assert_eq!(BigUint::from_bytes_be(&padded), v);
    }

    #[test]
    fn padded_bytes() {
        let v = BigUint::from(0x1234u64);
        assert_eq!(v.to_bytes_be_padded(4), vec![0, 0, 0x12, 0x34]);
    }

    #[test]
    #[should_panic(expected = "width")]
    fn padded_bytes_too_small() {
        BigUint::from(0x123456u64).to_bytes_be_padded(2);
    }

    #[test]
    fn random_below_in_range() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let bound = BigUint::from_dec_str("1000000000000000000000000").unwrap();
        for _ in 0..100 {
            let v = BigUint::random_below(&mut rng, &bound);
            assert!(v < bound);
        }
    }

    #[test]
    fn random_bits_bounded() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        for bits in [1usize, 5, 64, 65, 130] {
            let v = BigUint::random_bits(&mut rng, bits);
            assert!(v.bits() <= bits);
        }
    }

    #[test]
    fn display_zero_and_padding_chunks() {
        assert_eq!(BigUint::zero().to_string(), "0");
        // A value whose low chunk needs zero padding.
        let v = BigUint::from_dec_str("10000000000000000000000000001").unwrap();
        assert_eq!(v.to_string(), "10000000000000000000000000001");
    }
}
