//! Division: Knuth Algorithm D (TAOCP Vol. 2, §4.3.1) plus single-limb
//! fast paths, and the `Div`/`Rem` operator impls.

use std::ops::{Div, Rem};

use crate::uint::BigUint;

impl BigUint {
    /// Simultaneous quotient and remainder: `(self / rhs, self % rhs)`.
    ///
    /// # Panics
    ///
    /// Panics if `rhs` is zero.
    ///
    /// ```
    /// use datablinder_bigint::BigUint;
    /// let (q, r) = BigUint::from(1000u64).divrem(&BigUint::from(7u64));
    /// assert_eq!(q, BigUint::from(142u64));
    /// assert_eq!(r, BigUint::from(6u64));
    /// ```
    pub fn divrem(&self, rhs: &BigUint) -> (BigUint, BigUint) {
        assert!(!rhs.is_zero(), "division by zero");
        if self < rhs {
            return (BigUint::zero(), self.clone());
        }
        if rhs.limbs.len() == 1 {
            let (q, r) = self.divrem_u64(rhs.limbs[0]);
            return (q, BigUint::from(r));
        }
        divrem_knuth(self, rhs)
    }

    /// Quotient and remainder by a single limb.
    ///
    /// # Panics
    ///
    /// Panics if `rhs` is zero.
    pub fn divrem_u64(&self, rhs: u64) -> (BigUint, u64) {
        assert!(rhs != 0, "division by zero");
        let mut q = vec![0u64; self.limbs.len()];
        let mut rem: u128 = 0;
        for i in (0..self.limbs.len()).rev() {
            let cur = (rem << 64) | self.limbs[i] as u128;
            q[i] = (cur / rhs as u128) as u64;
            rem = cur % rhs as u128;
        }
        (BigUint::from_limbs(q), rem as u64)
    }

    /// `self mod m`, convenience over [`BigUint::divrem`].
    pub fn rem_of(&self, m: &BigUint) -> BigUint {
        self.divrem(m).1
    }
}

/// Knuth Algorithm D for multi-limb divisors.
fn divrem_knuth(u: &BigUint, v: &BigUint) -> (BigUint, BigUint) {
    let n = v.limbs.len();
    let m = u.limbs.len() - n;

    // D1: normalize so the divisor's top limb has its high bit set.
    let shift = v.limbs[n - 1].leading_zeros() as usize;
    let vn = (v << shift).limbs;
    let mut un = (u << shift).limbs;
    un.resize(u.limbs.len() + 1, 0); // one extra high limb for D3 estimates

    let mut q = vec![0u64; m + 1];
    let b = 1u128 << 64;

    // D2..D7: main loop over quotient digits, most significant first.
    for j in (0..=m).rev() {
        // D3: estimate q̂ from the top two dividend limbs.
        let top = ((un[j + n] as u128) << 64) | un[j + n - 1] as u128;
        let mut qhat = top / vn[n - 1] as u128;
        let mut rhat = top % vn[n - 1] as u128;
        while qhat >= b || qhat * vn[n - 2] as u128 > (rhat << 64) + un[j + n - 2] as u128 {
            qhat -= 1;
            rhat += vn[n - 1] as u128;
            if rhat >= b {
                break;
            }
        }

        // D4: multiply-and-subtract q̂·v from the current window of u.
        let mut borrow: i128 = 0;
        let mut carry: u128 = 0;
        for i in 0..n {
            let p = qhat * vn[i] as u128 + carry;
            carry = p >> 64;
            let t = un[i + j] as i128 - (p as u64) as i128 + borrow;
            un[i + j] = t as u64;
            borrow = t >> 64; // arithmetic shift: 0 or -1
        }
        let t = un[j + n] as i128 - carry as i128 + borrow;
        un[j + n] = t as u64;

        // D5/D6: if we overshot (negative result), add v back once.
        if t < 0 {
            qhat -= 1;
            let mut carry = 0u128;
            for i in 0..n {
                let s = un[i + j] as u128 + vn[i] as u128 + carry;
                un[i + j] = s as u64;
                carry = s >> 64;
            }
            un[j + n] = (un[j + n] as u128 + carry) as u64;
        }
        q[j] = qhat as u64;
    }

    // D8: denormalize the remainder.
    let rem = BigUint::from_limbs(un[..n].to_vec());
    (BigUint::from_limbs(q), &rem >> shift)
}

impl Div<&BigUint> for &BigUint {
    type Output = BigUint;
    fn div(self, rhs: &BigUint) -> BigUint {
        self.divrem(rhs).0
    }
}

impl Rem<&BigUint> for &BigUint {
    type Output = BigUint;
    fn rem(self, rhs: &BigUint) -> BigUint {
        self.divrem(rhs).1
    }
}

impl Div for BigUint {
    type Output = BigUint;
    fn div(self, rhs: BigUint) -> BigUint {
        &self / &rhs
    }
}

impl Rem for BigUint {
    type Output = BigUint;
    fn rem(self, rhs: BigUint) -> BigUint {
        &self % &rhs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn big(v: u128) -> BigUint {
        BigUint::from(v)
    }

    #[test]
    fn small_divisions() {
        assert_eq!(big(100).divrem(&big(7)), (big(14), big(2)));
        assert_eq!(big(7).divrem(&big(100)), (big(0), big(7)));
        assert_eq!(big(100).divrem(&big(100)), (big(1), big(0)));
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_by_zero_panics() {
        let _ = big(5).divrem(&BigUint::zero());
    }

    #[test]
    fn u128_oracle() {
        let cases: &[(u128, u128)] = &[
            (u128::MAX, 3),
            (u128::MAX, u64::MAX as u128),
            (u128::MAX, u64::MAX as u128 + 1),
            (u128::MAX - 1, u128::MAX),
            (0x1234_5678_9ABC_DEF0_1234_5678_9ABC_DEF0, 0xFFFF_FFFF_FFFF),
            ((u64::MAX as u128) << 64, (1u128 << 64) | 1),
        ];
        for &(a, b) in cases {
            let (q, r) = big(a).divrem(&big(b));
            assert_eq!(q.to_u128(), Some(a / b), "q of {a}/{b}");
            assert_eq!(r.to_u128(), Some(a % b), "r of {a}/{b}");
        }
    }

    #[test]
    fn reconstruction_large() {
        // (q * v + r) == u and r < v, for multi-limb operands.
        let u = BigUint::from_limbs((1..40u64).map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15)).collect());
        let v = BigUint::from_limbs((1..7u64).map(|i| i.wrapping_mul(0xC2B2_AE3D_27D4_EB4F) | 1).collect());
        let (q, r) = u.divrem(&v);
        assert!(r < v);
        assert_eq!(&(&q * &v) + &r, u);
    }

    #[test]
    fn divrem_u64_matches() {
        let u = BigUint::from_limbs(vec![0xDEAD_BEEF, 0xCAFE_BABE, 0x1234]);
        let (q, r) = u.divrem_u64(12345);
        assert_eq!(&q.mul_u64(12345) + &BigUint::from(r), u);
    }

    #[test]
    fn knuth_add_back_case() {
        // A divisor crafted so the qhat estimate overshoots (exercises D6).
        // Classic trigger: u = [0, q̂·v overestimate], v with small second limb.
        let u = BigUint::from_limbs(vec![0, 0, 0x8000_0000_0000_0000]);
        let v = BigUint::from_limbs(vec![1, 0x8000_0000_0000_0000]);
        let (q, r) = u.divrem(&v);
        assert!(r < v);
        assert_eq!(&(&q * &v) + &r, u);
    }
}
