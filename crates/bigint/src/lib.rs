//! Arbitrary-precision unsigned and signed integer arithmetic.
//!
//! This crate is the numeric substrate for the DataBlinder reproduction: the
//! [Paillier](https://en.wikipedia.org/wiki/Paillier_cryptosystem) partially
//! homomorphic cryptosystem and the Sophos trapdoor permutation (RSA) are
//! built on top of it. It deliberately has no dependencies beyond `rand`
//! (for prime generation) and implements:
//!
//! * [`BigUint`] — unsigned big integers with schoolbook + Karatsuba
//!   multiplication and Knuth Algorithm D division,
//! * [`BigInt`] — a thin signed wrapper used by the extended Euclidean
//!   algorithm,
//! * modular arithmetic: [`BigUint::modpow`], [`BigUint::modinv`],
//! * amortized contexts: [`MontgomeryCtx`] (cached Montgomery domain for
//!   one odd modulus, allocation-free CIOS kernels) and [`CrtCtx`]
//!   (two-prime residue systems for RSA/Paillier-style CRT),
//! * primality testing (Miller–Rabin) and random prime generation in
//!   [`prime`].
//!
//! # Examples
//!
//! ```
//! use datablinder_bigint::BigUint;
//!
//! let a = BigUint::from(123456789u64);
//! let b = BigUint::from(987654321u64);
//! let m = BigUint::from(1000000007u64);
//! let c = a.modpow(&b, &m);
//! assert_eq!(c, BigUint::from(652541198u64));
//! ```
//!
//! # Security note
//!
//! The implementation is value-correct but **not constant time**; it exists
//! to reproduce functionality and performance shape of the paper, not to
//! protect real keys.

#![warn(missing_docs)]
mod convert;
mod div;
mod modular;
pub mod prime;
mod signed;
mod uint;

pub use modular::{CrtCtx, MontgomeryCtx};
pub use signed::{BigInt, Sign};
pub use uint::BigUint;

/// Errors produced by this crate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BigIntError {
    /// Division or reduction by zero was attempted.
    DivisionByZero,
    /// A modular inverse was requested for a non-invertible element.
    NotInvertible,
    /// A string could not be parsed as an integer in the requested radix.
    ParseError(String),
}

impl std::fmt::Display for BigIntError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BigIntError::DivisionByZero => write!(f, "division by zero"),
            BigIntError::NotInvertible => write!(f, "element is not invertible modulo the given modulus"),
            BigIntError::ParseError(s) => write!(f, "invalid integer literal: {s}"),
        }
    }
}

impl std::error::Error for BigIntError {}
