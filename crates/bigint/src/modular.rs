//! Modular arithmetic: exponentiation (with Montgomery multiplication for
//! odd moduli), inverses, GCD, and amortized contexts.
//!
//! Two context types let hot callers pay precomputation once:
//!
//! * [`MontgomeryCtx`] — a long-lived Montgomery domain for one odd
//!   modulus. Its kernels are CIOS (coarsely integrated operand scanning)
//!   over fixed-width limb buffers: one multiply-and-reduce pass, no
//!   intermediate `Vec` growth and no division. [`MontgomeryCtx::modpow`]
//!   allocates its window table and scratch once per call and reuses them
//!   across every squaring.
//! * [`CrtCtx`] — a pair of Montgomery domains for coprime odd moduli
//!   `m1`, `m2` plus the precomputed `m1^{-1} mod m2`, so residue-system
//!   exponentiation and recombination (RSA-CRT, Paillier-CRT) avoid ever
//!   touching the full-width modulus.

use crate::signed::BigInt;
use crate::uint::BigUint;
use crate::BigIntError;

impl BigUint {
    /// Greatest common divisor (binary GCD).
    ///
    /// ```
    /// use datablinder_bigint::BigUint;
    /// let g = BigUint::from(48u64).gcd(&BigUint::from(18u64));
    /// assert_eq!(g, BigUint::from(6u64));
    /// ```
    pub fn gcd(&self, other: &BigUint) -> BigUint {
        let mut a = self.clone();
        let mut b = other.clone();
        if a.is_zero() {
            return b;
        }
        if b.is_zero() {
            return a;
        }
        let az = a.trailing_zeros().unwrap();
        let bz = b.trailing_zeros().unwrap();
        let common = az.min(bz);
        a = &a >> az;
        b = &b >> bz;
        loop {
            if a > b {
                std::mem::swap(&mut a, &mut b);
            }
            b = &b - &a;
            if b.is_zero() {
                return &a << common;
            }
            b = &b >> b.trailing_zeros().unwrap();
        }
    }

    /// Least common multiple.
    pub fn lcm(&self, other: &BigUint) -> BigUint {
        if self.is_zero() || other.is_zero() {
            return BigUint::zero();
        }
        &(self / &self.gcd(other)) * other
    }

    /// Modular addition: `(self + rhs) mod m`.
    pub fn modadd(&self, rhs: &BigUint, m: &BigUint) -> BigUint {
        (self % m).modadd_reduced(&(rhs % m), m)
    }

    /// Modular addition fast path for operands already reduced mod `m`:
    /// one add and at most one subtract, no division.
    ///
    /// Callers must guarantee `self < m` and `rhs < m` (checked only in
    /// debug builds).
    pub fn modadd_reduced(&self, rhs: &BigUint, m: &BigUint) -> BigUint {
        debug_assert!(self < m && rhs < m, "modadd_reduced operands must be reduced");
        let s = self + rhs;
        if &s >= m {
            &s - m
        } else {
            s
        }
    }

    /// Modular subtraction: `(self - rhs) mod m`, wrapping correctly.
    pub fn modsub(&self, rhs: &BigUint, m: &BigUint) -> BigUint {
        (self % m).modsub_reduced(&(rhs % m), m)
    }

    /// Modular subtraction fast path for operands already reduced mod `m`.
    ///
    /// Callers must guarantee `self < m` and `rhs < m` (checked only in
    /// debug builds).
    pub fn modsub_reduced(&self, rhs: &BigUint, m: &BigUint) -> BigUint {
        debug_assert!(self < m && rhs < m, "modsub_reduced operands must be reduced");
        if self >= rhs {
            self - rhs
        } else {
            &(self + m) - rhs
        }
    }

    /// Modular multiplication: `(self * rhs) mod m`.
    pub fn modmul(&self, rhs: &BigUint, m: &BigUint) -> BigUint {
        &(self * rhs) % m
    }

    /// Modular exponentiation `self^exp mod m`.
    ///
    /// Uses Montgomery multiplication for odd moduli (the common case for
    /// RSA/Paillier) and square-and-multiply with explicit reduction
    /// otherwise. Builds a fresh [`MontgomeryCtx`] per call — hot callers
    /// exponentiating repeatedly under one modulus should hold a context
    /// and use [`BigUint::modpow_ctx`] instead.
    ///
    /// # Panics
    ///
    /// Panics if `m` is zero.
    pub fn modpow(&self, exp: &BigUint, m: &BigUint) -> BigUint {
        assert!(!m.is_zero(), "modpow with zero modulus");
        if m.is_one() {
            return BigUint::zero();
        }
        if exp.is_zero() {
            return BigUint::one();
        }
        if m.is_odd() {
            let ctx = MontgomeryCtx::new(m);
            return ctx.modpow(self, exp);
        }
        // Fallback for even moduli: plain square-and-multiply.
        let mut base = self % m;
        let mut result = BigUint::one();
        let bits = exp.bits();
        for i in 0..bits {
            if exp.bit(i) {
                result = result.modmul(&base, m);
            }
            if i + 1 < bits {
                base = base.modmul(&base, m);
            }
        }
        result
    }

    /// Modular exponentiation through a caller-owned [`MontgomeryCtx`]:
    /// `self^exp mod ctx.modulus()`, skipping the per-call context build
    /// (the `R² mod n` division) that [`BigUint::modpow`] pays.
    pub fn modpow_ctx(&self, exp: &BigUint, ctx: &MontgomeryCtx) -> BigUint {
        ctx.modpow(self, exp)
    }

    /// Modular inverse: finds `x` with `self * x ≡ 1 (mod m)`.
    ///
    /// # Errors
    ///
    /// Returns [`BigIntError::NotInvertible`] when `gcd(self, m) != 1`, and
    /// [`BigIntError::DivisionByZero`] when `m` is zero.
    pub fn modinv(&self, m: &BigUint) -> Result<BigUint, BigIntError> {
        if m.is_zero() {
            return Err(BigIntError::DivisionByZero);
        }
        if m.is_one() {
            return Ok(BigUint::zero());
        }
        let (g, x, _) = BigInt::from(self.clone()).extended_gcd(&BigInt::from(m.clone()));
        if !g.magnitude().is_one() {
            return Err(BigIntError::NotInvertible);
        }
        Ok(x.rem_euclid_by(m))
    }
}

/// Fixed-width limb comparison: `a >= b`, both exactly `k` limbs.
fn ge_fixed(a: &[u64], b: &[u64]) -> bool {
    for i in (0..a.len()).rev() {
        if a[i] != b[i] {
            return a[i] > b[i];
        }
    }
    true
}

/// Fixed-width in-place subtraction `a -= b`, returning the final borrow
/// (for CIOS results the borrow cancels against the overflow limb).
fn sub_fixed(a: &mut [u64], b: &[u64]) -> u64 {
    let mut borrow = 0u64;
    for i in 0..a.len() {
        let (x, b1) = a[i].overflowing_sub(b[i]);
        let (x, b2) = x.overflowing_sub(borrow);
        a[i] = x;
        borrow = (b1 as u64) + (b2 as u64);
    }
    borrow
}

/// Montgomery-form modular arithmetic context for an odd modulus.
///
/// Precomputes `n' = -n^{-1} mod 2^64`, `R² mod n` and `R mod n` (the
/// Montgomery form of 1) so repeated multiplications avoid full divisions.
/// All internal values are fixed-width `k`-limb buffers (`k` = limb count
/// of `n`), letting the CIOS kernel run in place with caller-provided
/// scratch — no per-multiply allocation.
#[derive(Clone, Debug)]
pub struct MontgomeryCtx {
    n: BigUint,
    n_limbs: usize,
    /// -n^{-1} mod 2^64
    n_prime: u64,
    /// R² mod n where R = 2^(64 * n_limbs), padded to `n_limbs`.
    r2: Vec<u64>,
    /// R mod n — the Montgomery form of 1, padded to `n_limbs`.
    one: Vec<u64>,
}

impl MontgomeryCtx {
    /// Creates a context for odd modulus `n`.
    ///
    /// This is the expensive step (one full-width division for `R² mod n`);
    /// hold the context wherever the modulus is long-lived.
    ///
    /// # Panics
    ///
    /// Panics if `n` is even or zero.
    pub fn new(n: &BigUint) -> Self {
        assert!(n.is_odd(), "Montgomery context requires an odd modulus");
        let n_limbs = n.limbs.len();
        // Newton iteration for the inverse of n mod 2^64.
        let n0 = n.limbs[0];
        let mut inv = n0; // correct mod 2^3
        for _ in 0..5 {
            inv = inv.wrapping_mul(2u64.wrapping_sub(n0.wrapping_mul(inv)));
        }
        debug_assert_eq!(n0.wrapping_mul(inv), 1);
        let n_prime = inv.wrapping_neg();
        let r = &BigUint::one() << (64 * n_limbs);
        let r2 = pad(&(&(&r * &r) % n), n_limbs);
        let one = pad(&(&r % n), n_limbs);
        MontgomeryCtx { n: n.clone(), n_limbs, n_prime, r2, one }
    }

    /// The modulus this context reduces by.
    pub fn modulus(&self) -> &BigUint {
        &self.n
    }

    /// CIOS Montgomery multiplication: `out = a * b * R^{-1} mod n`.
    ///
    /// `a`, `b` and `out` are `k`-limb buffers holding values `< n`;
    /// `t` is `k + 2` limbs of scratch. One fused multiply-and-reduce
    /// pass — no intermediate product, no allocation.
    fn mont_mul_into(&self, a: &[u64], b: &[u64], out: &mut [u64], t: &mut [u64]) {
        let k = self.n_limbs;
        debug_assert!(a.len() == k && b.len() == k && out.len() == k && t.len() == k + 2);
        let nl = &self.n.limbs;
        t.fill(0);
        for &ai in a.iter() {
            // t += ai * b
            let mut carry: u128 = 0;
            for j in 0..k {
                let s = t[j] as u128 + ai as u128 * b[j] as u128 + carry;
                t[j] = s as u64;
                carry = s >> 64;
            }
            let s = t[k] as u128 + carry;
            t[k] = s as u64;
            t[k + 1] = (s >> 64) as u64;
            // t += m * n with m killing the low limb, then t >>= 64.
            let m = t[0].wrapping_mul(self.n_prime);
            let s0 = t[0] as u128 + m as u128 * nl[0] as u128;
            debug_assert_eq!(s0 as u64, 0);
            let mut carry = s0 >> 64;
            for j in 1..k {
                let s = t[j] as u128 + m as u128 * nl[j] as u128 + carry;
                t[j - 1] = s as u64;
                carry = s >> 64;
            }
            let s = t[k] as u128 + carry;
            t[k - 1] = s as u64;
            t[k] = t[k + 1] + (s >> 64) as u64;
            t[k + 1] = 0;
        }
        // CIOS leaves a value < 2n: at most one subtraction, whose borrow
        // consumes the overflow limb t[k].
        if t[k] != 0 || ge_fixed(&t[..k], nl) {
            let borrow = sub_fixed(&mut t[..k], nl);
            debug_assert_eq!(borrow, t[k], "CIOS result out of the [0, 2n) range");
        }
        out.copy_from_slice(&t[..k]);
    }

    /// Converts `x` (any width) into a `k`-limb Montgomery-form buffer.
    fn to_mont_into(&self, x: &BigUint, out: &mut [u64], t: &mut [u64]) {
        let reduced = pad(&(x % &self.n), self.n_limbs);
        self.mont_mul_into(&reduced, &self.r2, out, t);
    }

    /// `(a * b) mod n` through the Montgomery domain: two CIOS passes
    /// instead of a full multiply plus division. `a` and `b` must already
    /// be reduced mod `n`.
    pub fn mul_mod(&self, a: &BigUint, b: &BigUint) -> BigUint {
        debug_assert!(a < &self.n && b < &self.n, "mul_mod operands must be reduced");
        if self.n.is_one() {
            return BigUint::zero();
        }
        let k = self.n_limbs;
        let mut t = vec![0u64; k + 2];
        let mut am = vec![0u64; k];
        // a * R (Montgomery form of a) ...
        self.mont_mul_into(&pad(a, k), &self.r2, &mut am, &mut t);
        // ... times b, leaving the domain again: a*R * b * R^{-1} = a*b.
        let mut out = vec![0u64; k];
        self.mont_mul_into(&am, &pad(b, k), &mut out, &mut t);
        BigUint::from_limbs(out)
    }

    /// `base^exp mod n` using a 4-bit fixed window.
    ///
    /// The window table and both scratch buffers are allocated once per
    /// call and reused across every squaring/multiplication, so the cost
    /// per exponent bit is one allocation-free CIOS pass.
    pub fn modpow(&self, base: &BigUint, exp: &BigUint) -> BigUint {
        if self.n.is_one() {
            return BigUint::zero();
        }
        if exp.is_zero() {
            return BigUint::one();
        }
        let k = self.n_limbs;
        let mut t = vec![0u64; k + 2];
        let mut mbase = vec![0u64; k];
        self.to_mont_into(base, &mut mbase, &mut t);

        // Precompute mbase^0..mbase^15 in Montgomery form, flat table.
        let mut table = vec![0u64; 16 * k];
        table[..k].copy_from_slice(&self.one);
        for i in 1..16 {
            let (prev, cur) = table.split_at_mut(i * k);
            self.mont_mul_into(&prev[(i - 1) * k..], &mbase, &mut cur[..k], &mut t);
        }

        let bits = exp.bits();
        let mut acc = self.one.clone();
        let mut tmp = vec![0u64; k];
        let mut i = bits;
        while i > 0 {
            let take = i.min(4);
            for _ in 0..take {
                self.mont_mul_into(&acc, &acc, &mut tmp, &mut t);
                std::mem::swap(&mut acc, &mut tmp);
            }
            i -= take;
            let mut window = 0usize;
            for b in 0..take {
                window = (window << 1) | exp.bit(i + take - 1 - b) as usize;
            }
            if window != 0 {
                self.mont_mul_into(&acc, &table[window * k..(window + 1) * k], &mut tmp, &mut t);
                std::mem::swap(&mut acc, &mut tmp);
            }
        }
        // Leave the Montgomery domain: multiply by the plain value 1.
        tmp.fill(0);
        tmp[0] = 1;
        let mut out = vec![0u64; k];
        self.mont_mul_into(&acc, &tmp, &mut out, &mut t);
        BigUint::from_limbs(out)
    }
}

/// Pads a value to exactly `k` little-endian limbs.
fn pad(x: &BigUint, k: usize) -> Vec<u64> {
    debug_assert!(x.limbs.len() <= k);
    let mut v = x.limbs.clone();
    v.resize(k, 0);
    v
}

/// Residue-system context for a two-prime (or any coprime odd pair)
/// modulus `m1 · m2`: one [`MontgomeryCtx`] per half plus the precomputed
/// Garner coefficient `m1^{-1} mod m2`.
///
/// Exponentiating separately mod `m1` and `m2` and recombining costs
/// roughly a quarter of a full-width exponentiation when `m1` and `m2`
/// are half the width of the product — the classic RSA/Paillier CRT
/// speedup.
#[derive(Clone, Debug)]
pub struct CrtCtx {
    ctx1: MontgomeryCtx,
    ctx2: MontgomeryCtx,
    /// Garner coefficient: `m1^{-1} mod m2`.
    m1_inv_mod_m2: BigUint,
    /// `m1 * m2`, the recombined modulus.
    modulus: BigUint,
}

impl CrtCtx {
    /// Builds a context for coprime odd moduli `m1`, `m2`.
    ///
    /// # Errors
    ///
    /// [`BigIntError::NotInvertible`] when the moduli are not coprime.
    ///
    /// # Panics
    ///
    /// Panics if either modulus is even or zero (Montgomery requirement).
    pub fn new(m1: &BigUint, m2: &BigUint) -> Result<CrtCtx, BigIntError> {
        let m1_inv_mod_m2 = m1.modinv(m2)?;
        Ok(CrtCtx { ctx1: MontgomeryCtx::new(m1), ctx2: MontgomeryCtx::new(m2), m1_inv_mod_m2, modulus: m1 * m2 })
    }

    /// The recombined modulus `m1 · m2`.
    pub fn modulus(&self) -> &BigUint {
        &self.modulus
    }

    /// The Montgomery context for `m1`.
    pub fn ctx1(&self) -> &MontgomeryCtx {
        &self.ctx1
    }

    /// The Montgomery context for `m2`.
    pub fn ctx2(&self) -> &MontgomeryCtx {
        &self.ctx2
    }

    /// Exponentiates in both residues: `(base^e1 mod m1, base^e2 mod m2)`.
    ///
    /// The exponents are per-residue so callers can apply Fermat/Carmichael
    /// reductions (`e mod p-1`, …) the context cannot know about.
    pub fn modpow2(&self, base: &BigUint, e1: &BigUint, e2: &BigUint) -> (BigUint, BigUint) {
        (self.ctx1.modpow(base, e1), self.ctx2.modpow(base, e2))
    }

    /// Garner recombination: the unique `x < m1·m2` with `x ≡ x1 (mod m1)`
    /// and `x ≡ x2 (mod m2)`. `x1` and `x2` must be reduced residues.
    pub fn combine(&self, x1: &BigUint, x2: &BigUint) -> BigUint {
        debug_assert!(x1 < self.ctx1.modulus() && x2 < self.ctx2.modulus());
        let m2 = self.ctx2.modulus();
        let h = (x1 % m2).modsub_reduced_from(x2, m2);
        let h = self.ctx2.mul_mod(&h, &self.m1_inv_mod_m2);
        x1 + &(self.ctx1.modulus() * &h)
    }

    /// Full CRT exponentiation: `combine(base^e1 mod m1, base^e2 mod m2)`.
    pub fn modpow(&self, base: &BigUint, e1: &BigUint, e2: &BigUint) -> BigUint {
        let (x1, x2) = self.modpow2(base, e1, e2);
        self.combine(&x1, &x2)
    }
}

impl BigUint {
    /// `rhs - self mod m` with both operands reduced — helper for Garner
    /// recombination where the subtrahend is the receiver.
    fn modsub_reduced_from(&self, rhs: &BigUint, m: &BigUint) -> BigUint {
        rhs.modsub_reduced(self, m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn big(v: u128) -> BigUint {
        BigUint::from(v)
    }

    #[test]
    fn gcd_basics() {
        assert_eq!(big(0).gcd(&big(5)), big(5));
        assert_eq!(big(5).gcd(&big(0)), big(5));
        assert_eq!(big(12).gcd(&big(18)), big(6));
        assert_eq!(big(17).gcd(&big(31)), big(1));
        assert_eq!(big(1 << 20).gcd(&big(1 << 13)), big(1 << 13));
    }

    #[test]
    fn lcm_basics() {
        assert_eq!(big(4).lcm(&big(6)), big(12));
        assert_eq!(big(0).lcm(&big(6)), big(0));
    }

    #[test]
    fn modpow_small_oracle() {
        // Oracle: u128 exponentiation by squaring.
        fn oracle(mut b: u128, mut e: u128, m: u128) -> u128 {
            let mut r = 1u128 % m;
            b %= m;
            while e > 0 {
                if e & 1 == 1 {
                    r = r * b % m;
                }
                b = b * b % m;
                e >>= 1;
            }
            r
        }
        let cases = [
            (2u128, 10u128, 1000u128),
            (7, 128, 13),
            (123456789, 987654321, 1000000007),
            (5, 0, 7),
            (0, 5, 7),
            (6, 3, 9),               // non-coprime base
            (3, 100, 2u128.pow(32)), // even modulus path
        ];
        for (b, e, m) in cases {
            assert_eq!(big(b).modpow(&big(e), &big(m)).to_u128(), Some(oracle(b, e, m)), "case {b}^{e} mod {m}");
        }
    }

    #[test]
    fn modpow_mod_one_is_zero() {
        assert_eq!(big(5).modpow(&big(3), &big(1)), BigUint::zero());
        let ctx = MontgomeryCtx::new(&BigUint::one());
        assert_eq!(ctx.modpow(&big(5), &big(3)), BigUint::zero());
        assert_eq!(ctx.modpow(&big(5), &BigUint::zero()), BigUint::zero());
    }

    #[test]
    fn montgomery_matches_plain() {
        // Odd multi-limb modulus; compare against the even-modulus fallback
        // by computing with modmul chain.
        let m = BigUint::from_limbs(vec![0xFFFF_FFFF_FFFF_FFC5, 0xFFFF_FFFF_FFFF_FFFF, 1]);
        let base = BigUint::from_limbs(vec![0x1234_5678_9ABC_DEF0, 0x0FED_CBA9_8765_4321]);
        let exp = big(65537);
        let fast = base.modpow(&exp, &m);
        // slow square-and-multiply
        let mut slow = BigUint::one();
        let mut b = &base % &m;
        for i in 0..exp.bits() {
            if exp.bit(i) {
                slow = slow.modmul(&b, &m);
            }
            b = b.modmul(&b, &m);
        }
        assert_eq!(fast, slow);
    }

    #[test]
    fn cached_ctx_matches_per_call() {
        let m = BigUint::from_limbs(vec![0xFFFF_FFFF_FFFF_FFC5, 0xFFFF_FFFF_FFFF_FFFF, 1]);
        let ctx = MontgomeryCtx::new(&m);
        for (b, e) in [(3u64, 5u64), (0, 9), (12345, 0), (u64::MAX, 65537)] {
            let base = BigUint::from(b);
            let exp = BigUint::from(e);
            assert_eq!(base.modpow_ctx(&exp, &ctx), base.modpow(&exp, &m), "{b}^{e}");
        }
        // Bases at and above the modulus reduce correctly.
        let over = &m + &big(7);
        assert_eq!(over.modpow_ctx(&big(3), &ctx), big(7).modpow(&big(3), &m));
        let top = &m - &BigUint::one();
        assert_eq!(top.modpow_ctx(&big(2), &ctx), BigUint::one(), "(n-1)^2 ≡ 1 mod n");
    }

    #[test]
    fn mul_mod_matches_modmul() {
        let m = BigUint::from_limbs(vec![0xFFFF_FFFF_FFFF_FFC5, 0xFFFF_FFFF_FFFF_FFFF, 1]);
        let ctx = MontgomeryCtx::new(&m);
        let a = &m - &big(12345);
        let b = &m - &big(1);
        assert_eq!(ctx.mul_mod(&a, &b), a.modmul(&b, &m));
        assert_eq!(ctx.mul_mod(&BigUint::zero(), &b), BigUint::zero());
        assert_eq!(ctx.mul_mod(&BigUint::one(), &b), b);
    }

    #[test]
    fn crt_ctx_matches_direct_modpow() {
        let m1 = big(1000003);
        let m2 = big(1000033);
        let crt = CrtCtx::new(&m1, &m2).unwrap();
        let n = &m1 * &m2;
        assert_eq!(crt.modulus(), &n);
        let base = big(987654321);
        let e = big(65537);
        // Same exponent on both halves == plain exponentiation mod m1*m2.
        assert_eq!(crt.modpow(&base, &e, &e), base.modpow(&e, &n));
    }

    #[test]
    fn crt_combine_recovers_residues() {
        let m1 = big(101);
        let m2 = big(103);
        let crt = CrtCtx::new(&m1, &m2).unwrap();
        for x in [0u128, 1, 100, 5000, 10402] {
            let x1 = &big(x) % &m1;
            let x2 = &big(x) % &m2;
            assert_eq!(crt.combine(&x1, &x2), big(x), "x={x}");
        }
    }

    #[test]
    fn crt_rejects_non_coprime() {
        assert!(CrtCtx::new(&big(15), &big(21)).is_err());
    }

    #[test]
    fn modinv_roundtrip() {
        let m = big(1000000007);
        for a in [2u128, 3, 999999999, 123456] {
            let inv = big(a).modinv(&m).unwrap();
            assert_eq!(big(a).modmul(&inv, &m), BigUint::one(), "a={a}");
        }
    }

    #[test]
    fn modinv_not_invertible() {
        assert_eq!(big(6).modinv(&big(9)), Err(BigIntError::NotInvertible));
        assert_eq!(big(5).modinv(&BigUint::zero()), Err(BigIntError::DivisionByZero));
    }

    #[test]
    fn modsub_wraps() {
        assert_eq!(big(3).modsub(&big(5), &big(7)), big(5));
        assert_eq!(big(5).modsub(&big(3), &big(7)), big(2));
        // Unreduced inputs still work through the general entry points.
        assert_eq!(big(10).modsub(&big(26), &big(7)), big(5));
        assert_eq!(big(12).modadd(&big(9), &big(7)), big(0));
    }

    #[test]
    fn reduced_fast_paths_match_general() {
        let m = big(1000000007);
        for (a, b) in [(0u128, 0u128), (1, 999999999), (1000000006, 1000000006), (123, 456)] {
            assert_eq!(big(a).modadd_reduced(&big(b), &m), big(a).modadd(&big(b), &m), "add {a}+{b}");
            assert_eq!(big(a).modsub_reduced(&big(b), &m), big(a).modsub(&big(b), &m), "sub {a}-{b}");
        }
    }

    #[test]
    fn fermat_little_theorem() {
        // a^(p-1) ≡ 1 mod p for prime p, a not divisible by p.
        let p = big(2147483647); // Mersenne prime 2^31-1
        for a in [2u128, 3, 7, 1234567] {
            assert_eq!(big(a).modpow(&(&p - &BigUint::one()), &p), BigUint::one());
        }
    }
}
