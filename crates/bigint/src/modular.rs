//! Modular arithmetic: exponentiation (with Montgomery multiplication for
//! odd moduli), inverses, and GCD.

use crate::signed::BigInt;
use crate::uint::BigUint;
use crate::BigIntError;

impl BigUint {
    /// Greatest common divisor (binary GCD).
    ///
    /// ```
    /// use datablinder_bigint::BigUint;
    /// let g = BigUint::from(48u64).gcd(&BigUint::from(18u64));
    /// assert_eq!(g, BigUint::from(6u64));
    /// ```
    pub fn gcd(&self, other: &BigUint) -> BigUint {
        let mut a = self.clone();
        let mut b = other.clone();
        if a.is_zero() {
            return b;
        }
        if b.is_zero() {
            return a;
        }
        let az = a.trailing_zeros().unwrap();
        let bz = b.trailing_zeros().unwrap();
        let common = az.min(bz);
        a = &a >> az;
        b = &b >> bz;
        loop {
            if a > b {
                std::mem::swap(&mut a, &mut b);
            }
            b = &b - &a;
            if b.is_zero() {
                return &a << common;
            }
            b = &b >> b.trailing_zeros().unwrap();
        }
    }

    /// Least common multiple.
    pub fn lcm(&self, other: &BigUint) -> BigUint {
        if self.is_zero() || other.is_zero() {
            return BigUint::zero();
        }
        &(self / &self.gcd(other)) * other
    }

    /// Modular addition: `(self + rhs) mod m`.
    pub fn modadd(&self, rhs: &BigUint, m: &BigUint) -> BigUint {
        &(&(self % m) + &(rhs % m)) % m
    }

    /// Modular subtraction: `(self - rhs) mod m`, wrapping correctly.
    pub fn modsub(&self, rhs: &BigUint, m: &BigUint) -> BigUint {
        let a = self % m;
        let b = rhs % m;
        if a >= b {
            &a - &b
        } else {
            &(&a + m) - &b
        }
    }

    /// Modular multiplication: `(self * rhs) mod m`.
    pub fn modmul(&self, rhs: &BigUint, m: &BigUint) -> BigUint {
        &(self * rhs) % m
    }

    /// Modular exponentiation `self^exp mod m`.
    ///
    /// Uses Montgomery multiplication for odd moduli (the common case for
    /// RSA/Paillier) and square-and-multiply with explicit reduction
    /// otherwise.
    ///
    /// # Panics
    ///
    /// Panics if `m` is zero.
    pub fn modpow(&self, exp: &BigUint, m: &BigUint) -> BigUint {
        assert!(!m.is_zero(), "modpow with zero modulus");
        if m.is_one() {
            return BigUint::zero();
        }
        if exp.is_zero() {
            return BigUint::one();
        }
        if m.is_odd() {
            let ctx = MontgomeryCtx::new(m);
            return ctx.modpow(self, exp);
        }
        // Fallback for even moduli: plain square-and-multiply.
        let mut base = self % m;
        let mut result = BigUint::one();
        for i in 0..exp.bits() {
            if exp.bit(i) {
                result = result.modmul(&base, m);
            }
            if i + 1 < exp.bits() {
                base = base.modmul(&base, m);
            }
        }
        result
    }

    /// Modular inverse: finds `x` with `self * x ≡ 1 (mod m)`.
    ///
    /// # Errors
    ///
    /// Returns [`BigIntError::NotInvertible`] when `gcd(self, m) != 1`, and
    /// [`BigIntError::DivisionByZero`] when `m` is zero.
    pub fn modinv(&self, m: &BigUint) -> Result<BigUint, BigIntError> {
        if m.is_zero() {
            return Err(BigIntError::DivisionByZero);
        }
        if m.is_one() {
            return Ok(BigUint::zero());
        }
        let (g, x, _) = BigInt::from(self.clone()).extended_gcd(&BigInt::from(m.clone()));
        if !g.magnitude().is_one() {
            return Err(BigIntError::NotInvertible);
        }
        Ok(x.rem_euclid_by(m))
    }
}

/// Montgomery-form modular arithmetic context for an odd modulus.
///
/// Precomputes `n' = -n^{-1} mod 2^64` and `R^2 mod n` so repeated
/// multiplications avoid full divisions.
pub struct MontgomeryCtx {
    n: BigUint,
    n_limbs: usize,
    /// -n^{-1} mod 2^64
    n_prime: u64,
    /// R^2 mod n where R = 2^(64 * n_limbs)
    r2: BigUint,
}

impl MontgomeryCtx {
    /// Creates a context for odd modulus `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is even or zero.
    pub fn new(n: &BigUint) -> Self {
        assert!(n.is_odd(), "Montgomery context requires an odd modulus");
        let n_limbs = n.limbs.len();
        // Newton iteration for the inverse of n mod 2^64.
        let n0 = n.limbs[0];
        let mut inv = n0; // correct mod 2^3
        for _ in 0..5 {
            inv = inv.wrapping_mul(2u64.wrapping_sub(n0.wrapping_mul(inv)));
        }
        debug_assert_eq!(n0.wrapping_mul(inv), 1);
        let n_prime = inv.wrapping_neg();
        let r = &BigUint::one() << (64 * n_limbs);
        let r2 = &(&r * &r) % n;
        MontgomeryCtx { n: n.clone(), n_limbs, n_prime, r2 }
    }

    /// Montgomery reduction of `t` (up to 2n_limbs wide): returns `t * R^{-1} mod n`.
    fn redc(&self, t: &BigUint) -> BigUint {
        let k = self.n_limbs;
        let mut a = t.limbs.clone();
        a.resize(2 * k + 1, 0);
        for i in 0..k {
            let m = a[i].wrapping_mul(self.n_prime);
            // a += m * n << (64*i)
            let mut carry: u128 = 0;
            for j in 0..k {
                let s = a[i + j] as u128 + m as u128 * self.n.limbs[j] as u128 + carry;
                a[i + j] = s as u64;
                carry = s >> 64;
            }
            let mut idx = i + k;
            while carry != 0 {
                let s = a[idx] as u128 + carry;
                a[idx] = s as u64;
                carry = s >> 64;
                idx += 1;
            }
        }
        let mut out = BigUint::from_limbs(a[k..].to_vec());
        if out >= self.n {
            out = &out - &self.n;
        }
        out
    }

    /// Converts into Montgomery form.
    fn to_mont(&self, x: &BigUint) -> BigUint {
        self.redc(&(&(x % &self.n) * &self.r2))
    }

    /// Multiplies two Montgomery-form values.
    fn mont_mul(&self, a: &BigUint, b: &BigUint) -> BigUint {
        self.redc(&(a * b))
    }

    /// `base^exp mod n` using a 4-bit fixed window.
    pub fn modpow(&self, base: &BigUint, exp: &BigUint) -> BigUint {
        if exp.is_zero() {
            return BigUint::one();
        }
        let mone = self.redc(&self.r2); // R mod n = Montgomery form of 1
        let mbase = self.to_mont(base);

        // Precompute mbase^0..mbase^15 in Montgomery form.
        let mut table = Vec::with_capacity(16);
        table.push(mone.clone());
        for i in 1..16 {
            let prev: &BigUint = &table[i - 1];
            table.push(self.mont_mul(prev, &mbase));
        }

        let bits = exp.bits();
        let mut acc = mone;
        let mut i = bits;
        while i > 0 {
            let take = i.min(4);
            for _ in 0..take {
                acc = self.mont_mul(&acc, &acc);
            }
            i -= take;
            let mut window = 0usize;
            for b in 0..take {
                window = (window << 1) | exp.bit(i + take - 1 - b) as usize;
            }
            if window != 0 {
                acc = self.mont_mul(&acc, &table[window]);
            }
        }
        self.redc(&acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn big(v: u128) -> BigUint {
        BigUint::from(v)
    }

    #[test]
    fn gcd_basics() {
        assert_eq!(big(0).gcd(&big(5)), big(5));
        assert_eq!(big(5).gcd(&big(0)), big(5));
        assert_eq!(big(12).gcd(&big(18)), big(6));
        assert_eq!(big(17).gcd(&big(31)), big(1));
        assert_eq!(big(1 << 20).gcd(&big(1 << 13)), big(1 << 13));
    }

    #[test]
    fn lcm_basics() {
        assert_eq!(big(4).lcm(&big(6)), big(12));
        assert_eq!(big(0).lcm(&big(6)), big(0));
    }

    #[test]
    fn modpow_small_oracle() {
        // Oracle: u128 exponentiation by squaring.
        fn oracle(mut b: u128, mut e: u128, m: u128) -> u128 {
            let mut r = 1u128 % m;
            b %= m;
            while e > 0 {
                if e & 1 == 1 {
                    r = r * b % m;
                }
                b = b * b % m;
                e >>= 1;
            }
            r
        }
        let cases = [
            (2u128, 10u128, 1000u128),
            (7, 128, 13),
            (123456789, 987654321, 1000000007),
            (5, 0, 7),
            (0, 5, 7),
            (6, 3, 9),               // non-coprime base
            (3, 100, 2u128.pow(32)), // even modulus path
        ];
        for (b, e, m) in cases {
            assert_eq!(big(b).modpow(&big(e), &big(m)).to_u128(), Some(oracle(b, e, m)), "case {b}^{e} mod {m}");
        }
    }

    #[test]
    fn modpow_mod_one_is_zero() {
        assert_eq!(big(5).modpow(&big(3), &big(1)), BigUint::zero());
    }

    #[test]
    fn montgomery_matches_plain() {
        // Odd multi-limb modulus; compare against the even-modulus fallback
        // by computing with modmul chain.
        let m = BigUint::from_limbs(vec![0xFFFF_FFFF_FFFF_FFC5, 0xFFFF_FFFF_FFFF_FFFF, 1]);
        let base = BigUint::from_limbs(vec![0x1234_5678_9ABC_DEF0, 0x0FED_CBA9_8765_4321]);
        let exp = big(65537);
        let fast = base.modpow(&exp, &m);
        // slow square-and-multiply
        let mut slow = BigUint::one();
        let mut b = &base % &m;
        for i in 0..exp.bits() {
            if exp.bit(i) {
                slow = slow.modmul(&b, &m);
            }
            b = b.modmul(&b, &m);
        }
        assert_eq!(fast, slow);
    }

    #[test]
    fn modinv_roundtrip() {
        let m = big(1000000007);
        for a in [2u128, 3, 999999999, 123456] {
            let inv = big(a).modinv(&m).unwrap();
            assert_eq!(big(a).modmul(&inv, &m), BigUint::one(), "a={a}");
        }
    }

    #[test]
    fn modinv_not_invertible() {
        assert_eq!(big(6).modinv(&big(9)), Err(BigIntError::NotInvertible));
        assert_eq!(big(5).modinv(&BigUint::zero()), Err(BigIntError::DivisionByZero));
    }

    #[test]
    fn modsub_wraps() {
        assert_eq!(big(3).modsub(&big(5), &big(7)), big(5));
        assert_eq!(big(5).modsub(&big(3), &big(7)), big(2));
    }

    #[test]
    fn fermat_little_theorem() {
        // a^(p-1) ≡ 1 mod p for prime p, a not divisible by p.
        let p = big(2147483647); // Mersenne prime 2^31-1
        for a in [2u128, 3, 7, 1234567] {
            assert_eq!(big(a).modpow(&(&p - &BigUint::one()), &p), BigUint::one());
        }
    }
}
