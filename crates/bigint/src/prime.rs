//! Primality testing and random prime generation.
//!
//! Uses trial division by small primes followed by Miller–Rabin with random
//! bases (plus the deterministic witness set for 64-bit inputs).

use rand::Rng;

use crate::modular::MontgomeryCtx;
use crate::uint::BigUint;

/// Small primes used for fast trial division before Miller–Rabin.
const SMALL_PRIMES: [u64; 46] = [
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67, 71, 73, 79, 83, 89, 97, 101, 103, 107, 109,
    113, 127, 131, 137, 139, 149, 151, 157, 163, 167, 173, 179, 181, 191, 193, 197, 199,
];

/// Number of random Miller–Rabin rounds for multi-precision candidates.
/// 40 rounds gives error probability below 2^-80.
const MR_ROUNDS: usize = 40;

/// Tests `n` for primality.
///
/// Deterministic and exact for `n < 2^64`; probabilistic (error < 2^-80)
/// above that.
///
/// # Examples
///
/// ```
/// use datablinder_bigint::{BigUint, prime};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// assert!(prime::is_prime(&BigUint::from(65537u64), &mut rng));
/// assert!(!prime::is_prime(&BigUint::from(65539u64 * 3), &mut rng));
/// ```
pub fn is_prime<R: Rng + ?Sized>(n: &BigUint, rng: &mut R) -> bool {
    if let Some(v) = n.to_u64() {
        return is_prime_u64(v);
    }
    for &p in &SMALL_PRIMES {
        if n.divrem_u64(p).1 == 0 {
            return false; // n > 2^64, so n != p
        }
    }
    let (d, s) = decompose(n);
    let n_minus_1 = n.sub_u64(1);
    let two = BigUint::from(2u64);
    let upper = &n_minus_1 - &BigUint::one(); // sample witnesses in [2, n-2]
                                              // One Montgomery context amortized across all 40 witness rounds; `n` is
                                              // odd here (even values were rejected by trial division above).
    let ctx = MontgomeryCtx::new(n);
    for _ in 0..MR_ROUNDS {
        let a = &BigUint::random_below(rng, &(&upper - &two)) + &two;
        if !miller_rabin_round(&ctx, &n_minus_1, &d, s, &a) {
            return false;
        }
    }
    true
}

/// Exact primality for `u64` using the deterministic witness set
/// {2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37}.
pub fn is_prime_u64(n: u64) -> bool {
    if n < 2 {
        return false;
    }
    for &p in &SMALL_PRIMES {
        if n == p {
            return true;
        }
        if n.is_multiple_of(p) {
            return false;
        }
    }
    let mut d = n - 1;
    let mut s = 0u32;
    while d.is_multiple_of(2) {
        d /= 2;
        s += 1;
    }
    'witness: for &a in &[2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        let mut x = modpow_u64(a % n, d, n);
        if x == 1 || x == n - 1 {
            continue;
        }
        for _ in 1..s {
            x = mulmod_u64(x, x, n);
            if x == n - 1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

fn mulmod_u64(a: u64, b: u64, m: u64) -> u64 {
    (a as u128 * b as u128 % m as u128) as u64
}

fn modpow_u64(mut b: u64, mut e: u64, m: u64) -> u64 {
    let mut r = 1u64 % m;
    b %= m;
    while e > 0 {
        if e & 1 == 1 {
            r = mulmod_u64(r, b, m);
        }
        b = mulmod_u64(b, b, m);
        e >>= 1;
    }
    r
}

/// Writes `n - 1 = d * 2^s` with `d` odd.
fn decompose(n: &BigUint) -> (BigUint, usize) {
    let n_minus_1 = n.sub_u64(1);
    let s = n_minus_1.trailing_zeros().expect("n > 1");
    (&n_minus_1 >> s, s)
}

/// One Miller–Rabin round with witness `a`; `true` means "probably prime".
/// Takes the candidate's cached Montgomery context so the per-witness
/// exponentiation skips the context build.
fn miller_rabin_round(ctx: &MontgomeryCtx, n_minus_1: &BigUint, d: &BigUint, s: usize, a: &BigUint) -> bool {
    let mut x = ctx.modpow(a, d);
    if x.is_one() || &x == n_minus_1 {
        return true;
    }
    for _ in 1..s {
        x = ctx.mul_mod(&x, &x);
        if &x == n_minus_1 {
            return true;
        }
    }
    false
}

/// Generates a random prime with exactly `bits` bits.
///
/// The top two bits are forced to 1 (so that products of two such primes
/// have exactly `2*bits` bits, as RSA/Paillier key generation expects) and
/// the low bit is forced to 1.
///
/// # Panics
///
/// Panics if `bits < 4`.
pub fn gen_prime<R: Rng + ?Sized>(rng: &mut R, bits: usize) -> BigUint {
    assert!(bits >= 4, "prime size must be at least 4 bits");
    loop {
        let mut candidate = BigUint::random_bits(rng, bits);
        candidate.set_bit(bits - 1, true);
        candidate.set_bit(bits - 2, true);
        candidate.set_bit(0, true);
        if is_prime(&candidate, rng) {
            return candidate;
        }
    }
}

/// Generates a "safe-ish" prime pair `(p, q)` of `bits` bits each with
/// `p != q`, suitable for RSA/Paillier moduli in tests and benchmarks.
pub fn gen_prime_pair<R: Rng + ?Sized>(rng: &mut R, bits: usize) -> (BigUint, BigUint) {
    let p = gen_prime(rng, bits);
    loop {
        let q = gen_prime(rng, bits);
        if q != p {
            return (p, q);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(0xDB11)
    }

    #[test]
    fn small_primes_classified() {
        let primes: Vec<u64> = (0..100).filter(|&n| is_prime_u64(n)).collect();
        assert_eq!(
            primes,
            vec![2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67, 71, 73, 79, 83, 89, 97]
        );
    }

    #[test]
    fn u64_edge_cases() {
        assert!(!is_prime_u64(0));
        assert!(!is_prime_u64(1));
        assert!(is_prime_u64(2));
        assert!(is_prime_u64(18446744073709551557)); // largest prime < 2^64
        assert!(!is_prime_u64(18446744073709551555));
        // strong pseudoprime to several bases; MR with full witness set catches it
        assert!(!is_prime_u64(3215031751));
    }

    #[test]
    fn carmichael_numbers_rejected() {
        for n in [561u64, 1105, 1729, 2465, 2821, 6601, 8911] {
            assert!(!is_prime_u64(n), "{n} is Carmichael, not prime");
        }
    }

    #[test]
    fn multiprecision_known_prime() {
        let mut r = rng();
        // 2^89 - 1 is a Mersenne prime.
        let m89 = &(&BigUint::one() << 89) - &BigUint::one();
        assert!(is_prime(&m89, &mut r));
        // 2^87 - 1 = 3 * ... is composite.
        let m87 = &(&BigUint::one() << 87) - &BigUint::one();
        assert!(!is_prime(&m87, &mut r));
    }

    #[test]
    fn generated_primes_have_exact_bits() {
        let mut r = rng();
        for bits in [16usize, 32, 64, 128] {
            let p = gen_prime(&mut r, bits);
            assert_eq!(p.bits(), bits, "requested {bits} bits");
            assert!(p.is_odd());
            assert!(is_prime(&p, &mut r));
        }
    }

    #[test]
    fn prime_pair_distinct() {
        let mut r = rng();
        let (p, q) = gen_prime_pair(&mut r, 32);
        assert_ne!(p, q);
        // product has exactly 64 bits thanks to the forced top-two bits
        assert_eq!((&p * &q).bits(), 64);
    }
}
