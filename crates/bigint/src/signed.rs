//! A minimal signed big integer used for the extended Euclidean algorithm
//! and anywhere intermediate values may go negative.

use std::cmp::Ordering;
use std::ops::{Add, Mul, Neg, Sub};

use crate::uint::BigUint;

/// Sign of a [`BigInt`]. Zero is canonically [`Sign::Plus`] with zero magnitude.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Sign {
    /// Non-negative.
    Plus,
    /// Strictly negative.
    Minus,
}

/// A signed arbitrary-precision integer: sign + magnitude over [`BigUint`].
///
/// # Examples
///
/// ```
/// use datablinder_bigint::{BigInt, BigUint};
///
/// let a = BigInt::from(5i64);
/// let b = BigInt::from(-8i64);
/// assert_eq!(&a + &b, BigInt::from(-3i64));
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BigInt {
    sign: Sign,
    mag: BigUint,
}

impl BigInt {
    /// The value `0`.
    pub fn zero() -> Self {
        BigInt { sign: Sign::Plus, mag: BigUint::zero() }
    }

    /// The value `1`.
    pub fn one() -> Self {
        BigInt { sign: Sign::Plus, mag: BigUint::one() }
    }

    /// Builds from a sign and magnitude, normalizing `-0` to `+0`.
    pub fn from_sign_magnitude(sign: Sign, mag: BigUint) -> Self {
        if mag.is_zero() {
            BigInt::zero()
        } else {
            BigInt { sign, mag }
        }
    }

    /// The sign of the value.
    pub fn sign(&self) -> Sign {
        self.sign
    }

    /// The absolute value.
    pub fn magnitude(&self) -> &BigUint {
        &self.mag
    }

    /// Consumes `self`, returning the magnitude.
    pub fn into_magnitude(self) -> BigUint {
        self.mag
    }

    /// Returns `true` if the value is zero.
    pub fn is_zero(&self) -> bool {
        self.mag.is_zero()
    }

    /// Returns `true` if the value is strictly negative.
    pub fn is_negative(&self) -> bool {
        self.sign == Sign::Minus
    }

    /// Extended Euclidean algorithm.
    ///
    /// Returns `(g, x, y)` with `g = gcd(|self|, |other|)` and
    /// `self*x + other*y = g`.
    pub fn extended_gcd(&self, other: &BigInt) -> (BigInt, BigInt, BigInt) {
        let mut old_r = self.clone();
        let mut r = other.clone();
        let mut old_s = BigInt::one();
        let mut s = BigInt::zero();
        let mut old_t = BigInt::zero();
        let mut t = BigInt::one();
        while !r.is_zero() {
            let q = old_r.div_floor_abs(&r);
            let new_r = &old_r - &(&q * &r);
            old_r = std::mem::replace(&mut r, new_r);
            let new_s = &old_s - &(&q * &s);
            old_s = std::mem::replace(&mut s, new_s);
            let new_t = &old_t - &(&q * &t);
            old_t = std::mem::replace(&mut t, new_t);
        }
        if old_r.is_negative() {
            old_r = -old_r;
            old_s = -old_s;
            old_t = -old_t;
        }
        (old_r, old_s, old_t)
    }

    /// Truncating division (quotient of magnitudes with sign rule), which is
    /// what the textbook extended-GCD loop expects.
    fn div_floor_abs(&self, other: &BigInt) -> BigInt {
        let q = &self.mag / &other.mag;
        let sign = if self.sign == other.sign { Sign::Plus } else { Sign::Minus };
        BigInt::from_sign_magnitude(sign, q)
    }

    /// The least non-negative residue of `self` modulo `m`.
    ///
    /// ```
    /// use datablinder_bigint::{BigInt, BigUint};
    /// let x = BigInt::from(-3i64);
    /// assert_eq!(x.rem_euclid_by(&BigUint::from(7u64)), BigUint::from(4u64));
    /// ```
    pub fn rem_euclid_by(&self, m: &BigUint) -> BigUint {
        let r = &self.mag % m;
        if self.sign == Sign::Minus && !r.is_zero() {
            m - &r
        } else {
            r
        }
    }
}

impl From<BigUint> for BigInt {
    fn from(mag: BigUint) -> Self {
        BigInt::from_sign_magnitude(Sign::Plus, mag)
    }
}

impl From<i64> for BigInt {
    fn from(v: i64) -> Self {
        if v < 0 {
            BigInt::from_sign_magnitude(Sign::Minus, BigUint::from(v.unsigned_abs()))
        } else {
            BigInt::from_sign_magnitude(Sign::Plus, BigUint::from(v as u64))
        }
    }
}

impl Neg for BigInt {
    type Output = BigInt;
    fn neg(self) -> BigInt {
        let sign = match self.sign {
            Sign::Plus => Sign::Minus,
            Sign::Minus => Sign::Plus,
        };
        BigInt::from_sign_magnitude(sign, self.mag)
    }
}

impl Add<&BigInt> for &BigInt {
    type Output = BigInt;
    fn add(self, rhs: &BigInt) -> BigInt {
        if self.sign == rhs.sign {
            BigInt::from_sign_magnitude(self.sign, &self.mag + &rhs.mag)
        } else {
            match self.mag.cmp(&rhs.mag) {
                Ordering::Equal => BigInt::zero(),
                Ordering::Greater => BigInt::from_sign_magnitude(self.sign, &self.mag - &rhs.mag),
                Ordering::Less => BigInt::from_sign_magnitude(rhs.sign, &rhs.mag - &self.mag),
            }
        }
    }
}

impl Sub<&BigInt> for &BigInt {
    type Output = BigInt;
    fn sub(self, rhs: &BigInt) -> BigInt {
        self + &(-rhs.clone())
    }
}

impl Mul<&BigInt> for &BigInt {
    type Output = BigInt;
    fn mul(self, rhs: &BigInt) -> BigInt {
        let sign = if self.sign == rhs.sign { Sign::Plus } else { Sign::Minus };
        BigInt::from_sign_magnitude(sign, &self.mag * &rhs.mag)
    }
}

impl PartialOrd for BigInt {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigInt {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self.sign, other.sign) {
            (Sign::Plus, Sign::Minus) => Ordering::Greater,
            (Sign::Minus, Sign::Plus) => Ordering::Less,
            (Sign::Plus, Sign::Plus) => self.mag.cmp(&other.mag),
            (Sign::Minus, Sign::Minus) => other.mag.cmp(&self.mag),
        }
    }
}

impl std::fmt::Debug for BigInt {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_negative() {
            write!(f, "-{:?}", self.mag)
        } else {
            write!(f, "{:?}", self.mag)
        }
    }
}

impl std::fmt::Display for BigInt {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_negative() {
            write!(f, "-{}", self.mag)
        } else {
            write!(f, "{}", self.mag)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn int(v: i64) -> BigInt {
        BigInt::from(v)
    }

    #[test]
    fn signed_add_sub() {
        assert_eq!(&int(5) + &int(-8), int(-3));
        assert_eq!(&int(-5) + &int(8), int(3));
        assert_eq!(&int(-5) + &int(-8), int(-13));
        assert_eq!(&int(5) - &int(8), int(-3));
        assert_eq!(&int(5) - &int(-8), int(13));
    }

    #[test]
    fn neg_zero_is_plus_zero() {
        let z = -BigInt::zero();
        assert_eq!(z.sign(), Sign::Plus);
        assert!(z.is_zero());
    }

    #[test]
    fn mul_signs() {
        assert_eq!(&int(3) * &int(-4), int(-12));
        assert_eq!(&int(-3) * &int(-4), int(12));
    }

    #[test]
    fn extended_gcd_bezout() {
        let cases = [(240i64, 46i64), (17, 31), (0, 5), (5, 0), (-240, 46), (12, 18)];
        for (a, b) in cases {
            let (g, x, y) = int(a).extended_gcd(&int(b));
            let lhs = &(&int(a) * &x) + &(&int(b) * &y);
            assert_eq!(lhs, g, "bezout failed for ({a},{b})");
            let expected = gcd_i64(a.unsigned_abs(), b.unsigned_abs());
            assert_eq!(g, BigInt::from(BigUint::from(expected)), "gcd value for ({a},{b})");
        }
    }

    fn gcd_i64(mut a: u64, mut b: u64) -> u64 {
        while b != 0 {
            let t = a % b;
            a = b;
            b = t;
        }
        a
    }

    #[test]
    fn rem_euclid_negative() {
        let m = BigUint::from(7u64);
        assert_eq!(int(-3).rem_euclid_by(&m), BigUint::from(4u64));
        assert_eq!(int(-7).rem_euclid_by(&m), BigUint::zero());
        assert_eq!(int(10).rem_euclid_by(&m), BigUint::from(3u64));
    }

    #[test]
    fn ordering_across_signs() {
        assert!(int(-5) < int(3));
        assert!(int(-5) < int(-3));
        assert!(int(5) > int(3));
    }
}
