//! The [`BigUint`] type: representation, comparison, addition, subtraction,
//! multiplication and bit operations.

use std::cmp::Ordering;
use std::ops::{Add, AddAssign, Mul, MulAssign, Shl, Shr, Sub, SubAssign};

/// Number of bits in one limb.
pub(crate) const LIMB_BITS: usize = 64;

/// An arbitrary-precision unsigned integer.
///
/// Stored as little-endian `u64` limbs with no trailing zero limbs
/// (the canonical representation of zero is an empty limb vector).
///
/// # Examples
///
/// ```
/// use datablinder_bigint::BigUint;
///
/// let a = BigUint::from(7u64);
/// let b = &a * &a;
/// assert_eq!(b, BigUint::from(49u64));
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BigUint {
    pub(crate) limbs: Vec<u64>,
}

impl BigUint {
    /// The value `0`.
    pub fn zero() -> Self {
        BigUint { limbs: Vec::new() }
    }

    /// The value `1`.
    pub fn one() -> Self {
        BigUint { limbs: vec![1] }
    }

    /// Returns `true` if `self == 0`.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// Returns `true` if `self == 1`.
    pub fn is_one(&self) -> bool {
        self.limbs.len() == 1 && self.limbs[0] == 1
    }

    /// Returns `true` if the integer is even. Zero counts as even.
    pub fn is_even(&self) -> bool {
        self.limbs.first().is_none_or(|l| l & 1 == 0)
    }

    /// Returns `true` if the integer is odd.
    pub fn is_odd(&self) -> bool {
        !self.is_even()
    }

    /// Constructs from little-endian limbs, normalizing trailing zeros.
    pub(crate) fn from_limbs(mut limbs: Vec<u64>) -> Self {
        while limbs.last() == Some(&0) {
            limbs.pop();
        }
        BigUint { limbs }
    }

    /// Drops trailing zero limbs in place.
    pub(crate) fn normalize(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    /// Number of significant bits (`0` for zero).
    ///
    /// ```
    /// use datablinder_bigint::BigUint;
    /// assert_eq!(BigUint::from(255u64).bits(), 8);
    /// assert_eq!(BigUint::zero().bits(), 0);
    /// ```
    pub fn bits(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(&top) => (self.limbs.len() - 1) * LIMB_BITS + (LIMB_BITS - top.leading_zeros() as usize),
        }
    }

    /// Value of bit `i` (little-endian bit order).
    pub fn bit(&self, i: usize) -> bool {
        let limb = i / LIMB_BITS;
        let off = i % LIMB_BITS;
        self.limbs.get(limb).is_some_and(|l| (l >> off) & 1 == 1)
    }

    /// Sets bit `i` to `value`, growing the representation as needed.
    pub fn set_bit(&mut self, i: usize, value: bool) {
        let limb = i / LIMB_BITS;
        let off = i % LIMB_BITS;
        if value {
            if self.limbs.len() <= limb {
                self.limbs.resize(limb + 1, 0);
            }
            self.limbs[limb] |= 1 << off;
        } else if let Some(l) = self.limbs.get_mut(limb) {
            *l &= !(1 << off);
            self.normalize();
        }
    }

    /// Number of trailing zero bits; `None` for zero.
    pub fn trailing_zeros(&self) -> Option<usize> {
        for (i, &l) in self.limbs.iter().enumerate() {
            if l != 0 {
                return Some(i * LIMB_BITS + l.trailing_zeros() as usize);
            }
        }
        None
    }

    /// Interprets the value as `u64` if it fits.
    pub fn to_u64(&self) -> Option<u64> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0]),
            _ => None,
        }
    }

    /// Interprets the value as `u128` if it fits.
    pub fn to_u128(&self) -> Option<u128> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0] as u128),
            2 => Some((self.limbs[1] as u128) << 64 | self.limbs[0] as u128),
            _ => None,
        }
    }

    /// Addition with a single limb.
    pub fn add_u64(&self, rhs: u64) -> BigUint {
        let mut out = self.clone();
        out.add_assign_u64(rhs);
        out
    }

    pub(crate) fn add_assign_u64(&mut self, rhs: u64) {
        let mut carry = rhs;
        for l in self.limbs.iter_mut() {
            if carry == 0 {
                return;
            }
            let (s, c) = l.overflowing_add(carry);
            *l = s;
            carry = c as u64;
        }
        if carry != 0 {
            self.limbs.push(carry);
        }
    }

    /// Subtraction of a single limb.
    ///
    /// # Panics
    ///
    /// Panics if `rhs > self`.
    pub fn sub_u64(&self, rhs: u64) -> BigUint {
        self - &BigUint::from(rhs)
    }

    /// Multiplication by a single limb.
    pub fn mul_u64(&self, rhs: u64) -> BigUint {
        if rhs == 0 || self.is_zero() {
            return BigUint::zero();
        }
        let mut out = Vec::with_capacity(self.limbs.len() + 1);
        let mut carry: u128 = 0;
        for &l in &self.limbs {
            let prod = l as u128 * rhs as u128 + carry;
            out.push(prod as u64);
            carry = prod >> 64;
        }
        if carry != 0 {
            out.push(carry as u64);
        }
        BigUint::from_limbs(out)
    }

    /// `self^2`, slightly cheaper than `self * self` for large values.
    pub fn square(&self) -> BigUint {
        // Karatsuba already kicks in through `mul`; a dedicated squaring
        // routine saves ~25% on the schoolbook base case.
        self * self
    }

    /// `self % 2^k`, i.e. keeps the low `k` bits.
    pub fn low_bits(&self, k: usize) -> BigUint {
        let full = k / LIMB_BITS;
        let rem = k % LIMB_BITS;
        if full >= self.limbs.len() {
            return self.clone();
        }
        let mut limbs = self.limbs[..full].to_vec();
        if rem > 0 {
            let mask = (1u64 << rem) - 1;
            limbs.push(self.limbs[full] & mask);
        }
        BigUint::from_limbs(limbs)
    }
}

impl From<u64> for BigUint {
    fn from(v: u64) -> Self {
        if v == 0 {
            BigUint::zero()
        } else {
            BigUint { limbs: vec![v] }
        }
    }
}

impl From<u32> for BigUint {
    fn from(v: u32) -> Self {
        BigUint::from(v as u64)
    }
}

impl From<u128> for BigUint {
    fn from(v: u128) -> Self {
        BigUint::from_limbs(vec![v as u64, (v >> 64) as u64])
    }
}

impl Ord for BigUint {
    fn cmp(&self, other: &Self) -> Ordering {
        match self.limbs.len().cmp(&other.limbs.len()) {
            Ordering::Equal => {
                for (a, b) in self.limbs.iter().rev().zip(other.limbs.iter().rev()) {
                    match a.cmp(b) {
                        Ordering::Equal => continue,
                        ord => return ord,
                    }
                }
                Ordering::Equal
            }
            ord => ord,
        }
    }
}

impl PartialOrd for BigUint {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

// ---------------------------------------------------------------- addition

#[allow(clippy::needless_range_loop)] // index-driven carry chains read clearer
fn add_limbs(a: &[u64], b: &[u64]) -> Vec<u64> {
    let (long, short) = if a.len() >= b.len() { (a, b) } else { (b, a) };
    let mut out = Vec::with_capacity(long.len() + 1);
    let mut carry = 0u64;
    for i in 0..long.len() {
        let s = short.get(i).copied().unwrap_or(0);
        let (x, c1) = long[i].overflowing_add(s);
        let (x, c2) = x.overflowing_add(carry);
        out.push(x);
        carry = (c1 as u64) + (c2 as u64);
    }
    if carry != 0 {
        out.push(carry);
    }
    out
}

/// `a - b`, requires `a >= b`.
#[allow(clippy::needless_range_loop)]
fn sub_limbs(a: &[u64], b: &[u64]) -> Vec<u64> {
    debug_assert!(a.len() >= b.len());
    let mut out = Vec::with_capacity(a.len());
    let mut borrow = 0u64;
    for i in 0..a.len() {
        let s = b.get(i).copied().unwrap_or(0);
        let (x, b1) = a[i].overflowing_sub(s);
        let (x, b2) = x.overflowing_sub(borrow);
        out.push(x);
        borrow = (b1 as u64) + (b2 as u64);
    }
    assert_eq!(borrow, 0, "subtraction underflow: rhs > lhs");
    out
}

impl Add<&BigUint> for &BigUint {
    type Output = BigUint;
    fn add(self, rhs: &BigUint) -> BigUint {
        BigUint::from_limbs(add_limbs(&self.limbs, &rhs.limbs))
    }
}

impl Add for BigUint {
    type Output = BigUint;
    fn add(self, rhs: BigUint) -> BigUint {
        &self + &rhs
    }
}

impl AddAssign<&BigUint> for BigUint {
    fn add_assign(&mut self, rhs: &BigUint) {
        *self = &*self + rhs;
    }
}

impl Sub<&BigUint> for &BigUint {
    type Output = BigUint;
    /// # Panics
    /// Panics if `rhs > self` (unsigned underflow).
    fn sub(self, rhs: &BigUint) -> BigUint {
        assert!(self >= rhs, "BigUint subtraction underflow");
        BigUint::from_limbs(sub_limbs(&self.limbs, &rhs.limbs))
    }
}

impl Sub for BigUint {
    type Output = BigUint;
    fn sub(self, rhs: BigUint) -> BigUint {
        &self - &rhs
    }
}

impl SubAssign<&BigUint> for BigUint {
    fn sub_assign(&mut self, rhs: &BigUint) {
        *self = &*self - rhs;
    }
}

// ----------------------------------------------------------- multiplication

/// Schoolbook threshold below which Karatsuba is not worth the splits.
const KARATSUBA_THRESHOLD: usize = 32;

fn mul_schoolbook(a: &[u64], b: &[u64]) -> Vec<u64> {
    if a.is_empty() || b.is_empty() {
        return Vec::new();
    }
    let mut out = vec![0u64; a.len() + b.len()];
    for (i, &ai) in a.iter().enumerate() {
        if ai == 0 {
            continue;
        }
        let mut carry: u128 = 0;
        for (j, &bj) in b.iter().enumerate() {
            let t = ai as u128 * bj as u128 + out[i + j] as u128 + carry;
            out[i + j] = t as u64;
            carry = t >> 64;
        }
        let mut k = i + b.len();
        while carry != 0 {
            let t = out[k] as u128 + carry;
            out[k] = t as u64;
            carry = t >> 64;
            k += 1;
        }
    }
    out
}

fn mul_karatsuba(a: &[u64], b: &[u64]) -> Vec<u64> {
    if a.len().min(b.len()) < KARATSUBA_THRESHOLD {
        return mul_schoolbook(a, b);
    }
    let half = a.len().max(b.len()) / 2;
    let (a0, a1) = a.split_at(half.min(a.len()));
    let (b0, b1) = b.split_at(half.min(b.len()));
    let a0 = BigUint::from_limbs(a0.to_vec());
    let a1 = BigUint::from_limbs(a1.to_vec());
    let b0 = BigUint::from_limbs(b0.to_vec());
    let b1 = BigUint::from_limbs(b1.to_vec());

    let z0 = BigUint::from_limbs(mul_karatsuba(&a0.limbs, &b0.limbs));
    let z2 = BigUint::from_limbs(mul_karatsuba(&a1.limbs, &b1.limbs));
    let sa = &a0 + &a1;
    let sb = &b0 + &b1;
    let z1 = BigUint::from_limbs(mul_karatsuba(&sa.limbs, &sb.limbs));
    let z1 = &(&z1 - &z0) - &z2; // (a0+a1)(b0+b1) - z0 - z2

    // result = z0 + z1 << (64*half) + z2 << (128*half)
    let mut out = z0.limbs;
    add_shifted(&mut out, &z1.limbs, half);
    add_shifted(&mut out, &z2.limbs, 2 * half);
    out
}

/// `acc += v << (64*shift_limbs)` in place.
fn add_shifted(acc: &mut Vec<u64>, v: &[u64], shift_limbs: usize) {
    if v.is_empty() {
        return;
    }
    if acc.len() < shift_limbs + v.len() {
        acc.resize(shift_limbs + v.len(), 0);
    }
    let mut carry = 0u64;
    for (i, &vi) in v.iter().enumerate() {
        let idx = shift_limbs + i;
        let (x, c1) = acc[idx].overflowing_add(vi);
        let (x, c2) = x.overflowing_add(carry);
        acc[idx] = x;
        carry = (c1 as u64) + (c2 as u64);
    }
    let mut k = shift_limbs + v.len();
    while carry != 0 {
        if k == acc.len() {
            acc.push(0);
        }
        let (x, c) = acc[k].overflowing_add(carry);
        acc[k] = x;
        carry = c as u64;
        k += 1;
    }
}

impl Mul<&BigUint> for &BigUint {
    type Output = BigUint;
    fn mul(self, rhs: &BigUint) -> BigUint {
        BigUint::from_limbs(mul_karatsuba(&self.limbs, &rhs.limbs))
    }
}

impl Mul for BigUint {
    type Output = BigUint;
    fn mul(self, rhs: BigUint) -> BigUint {
        &self * &rhs
    }
}

impl MulAssign<&BigUint> for BigUint {
    fn mul_assign(&mut self, rhs: &BigUint) {
        *self = &*self * rhs;
    }
}

// ------------------------------------------------------------------ shifts

impl Shl<usize> for &BigUint {
    type Output = BigUint;
    fn shl(self, bits: usize) -> BigUint {
        if self.is_zero() {
            return BigUint::zero();
        }
        let limb_shift = bits / LIMB_BITS;
        let bit_shift = bits % LIMB_BITS;
        let mut out = vec![0u64; limb_shift];
        if bit_shift == 0 {
            out.extend_from_slice(&self.limbs);
        } else {
            let mut carry = 0u64;
            for &l in &self.limbs {
                out.push((l << bit_shift) | carry);
                carry = l >> (LIMB_BITS - bit_shift);
            }
            if carry != 0 {
                out.push(carry);
            }
        }
        BigUint::from_limbs(out)
    }
}

impl Shr<usize> for &BigUint {
    type Output = BigUint;
    fn shr(self, bits: usize) -> BigUint {
        let limb_shift = bits / LIMB_BITS;
        if limb_shift >= self.limbs.len() {
            return BigUint::zero();
        }
        let bit_shift = bits % LIMB_BITS;
        let src = &self.limbs[limb_shift..];
        if bit_shift == 0 {
            return BigUint::from_limbs(src.to_vec());
        }
        let mut out = Vec::with_capacity(src.len());
        for i in 0..src.len() {
            let lo = src[i] >> bit_shift;
            let hi = src.get(i + 1).map_or(0, |&n| n << (LIMB_BITS - bit_shift));
            out.push(lo | hi);
        }
        BigUint::from_limbs(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_and_one() {
        assert!(BigUint::zero().is_zero());
        assert!(BigUint::one().is_one());
        assert!(BigUint::zero().is_even());
        assert!(BigUint::one().is_odd());
        assert_eq!(BigUint::default(), BigUint::zero());
    }

    #[test]
    fn add_with_carry_chain() {
        let a = BigUint::from(u64::MAX);
        let b = BigUint::one();
        let c = &a + &b;
        assert_eq!(c.limbs, vec![0, 1]);
        assert_eq!(c.bits(), 65);
    }

    #[test]
    fn sub_borrow_chain() {
        let a = BigUint::from_limbs(vec![0, 1]); // 2^64
        let b = BigUint::one();
        assert_eq!(&a - &b, BigUint::from(u64::MAX));
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        let _ = &BigUint::one() - &BigUint::from(2u64);
    }

    #[test]
    fn mul_matches_u128() {
        for (a, b) in [(0u64, 5u64), (3, 0), (u64::MAX, u64::MAX), (12345, 67890)] {
            let expect = a as u128 * b as u128;
            let got = &BigUint::from(a) * &BigUint::from(b);
            assert_eq!(got.to_u128(), Some(expect));
        }
    }

    #[test]
    fn karatsuba_matches_schoolbook() {
        // Construct operands large enough to trigger Karatsuba.
        let a: Vec<u64> = (0..100).map(|i| (i as u64).wrapping_mul(0x9E3779B97F4A7C15).rotate_left(i as u32)).collect();
        let b: Vec<u64> = (0..90).map(|i| (i as u64).wrapping_mul(0xC2B2AE3D27D4EB4F) ^ 0xdead_beef).collect();
        let kara = mul_karatsuba(&a, &b);
        let school = mul_schoolbook(&a, &b);
        assert_eq!(BigUint::from_limbs(kara), BigUint::from_limbs(school));
    }

    #[test]
    fn shifts_roundtrip() {
        let a = BigUint::from(0xDEAD_BEEF_u64);
        for s in [0usize, 1, 7, 63, 64, 65, 127, 200] {
            let shifted = &a << s;
            assert_eq!(&shifted >> s, a, "shift {s}");
        }
    }

    #[test]
    fn shr_discards_low_bits() {
        let a = BigUint::from(0b1011u64);
        assert_eq!(&a >> 2, BigUint::from(0b10u64));
        assert_eq!(&a >> 4, BigUint::zero());
    }

    #[test]
    fn ordering() {
        let a = BigUint::from(5u64);
        let b = BigUint::from_limbs(vec![0, 1]);
        assert!(a < b);
        assert!(b > a);
        assert_eq!(a.cmp(&a), Ordering::Equal);
    }

    #[test]
    fn bits_and_bit_access() {
        let mut a = BigUint::zero();
        a.set_bit(130, true);
        assert_eq!(a.bits(), 131);
        assert!(a.bit(130));
        assert!(!a.bit(129));
        a.set_bit(130, false);
        assert!(a.is_zero());
    }

    #[test]
    fn trailing_zeros() {
        assert_eq!(BigUint::zero().trailing_zeros(), None);
        assert_eq!(BigUint::from(8u64).trailing_zeros(), Some(3));
        let big = &BigUint::one() << 200;
        assert_eq!(big.trailing_zeros(), Some(200));
    }

    #[test]
    fn low_bits_masks() {
        let a = BigUint::from(0xFFFF_FFFF_FFFF_FFFFu64);
        assert_eq!(a.low_bits(4), BigUint::from(0xFu64));
        assert_eq!(a.low_bits(64), a);
        assert_eq!(a.low_bits(100), a);
    }

    #[test]
    fn mul_u64_carry() {
        let a = BigUint::from(u64::MAX);
        assert_eq!(a.mul_u64(u64::MAX).to_u128(), Some(u64::MAX as u128 * u64::MAX as u128));
    }

    #[test]
    fn add_u64_growth() {
        let mut a = BigUint::from(u64::MAX);
        a.add_assign_u64(1);
        assert_eq!(a.limbs, vec![0, 1]);
    }
}
