//! Differential tests of the amortized modular-arithmetic kernels against
//! a trivially-correct square-and-multiply oracle.
//!
//! The cached-context kernels ([`MontgomeryCtx`], [`CrtCtx`]) replace the
//! per-call paths on every hot route; these tests pin them to the naive
//! division-based implementation over seeded random inputs — multi-limb
//! odd moduli, boundary exponents and `n - 1` bases included — so a kernel
//! regression cannot hide behind matching-but-wrong fast paths.

use datablinder_bigint::{BigUint, CrtCtx, MontgomeryCtx};
use rand::SeedableRng;

/// Trivially-correct oracle: left-to-right square-and-multiply with
/// division-based reduction after every step.
fn oracle_modpow(base: &BigUint, exp: &BigUint, m: &BigUint) -> BigUint {
    if m.is_one() {
        return BigUint::zero();
    }
    let mut acc = BigUint::one();
    let b = base % m;
    for i in (0..exp.bits()).rev() {
        acc = acc.modmul(&acc, m);
        if exp.bit(i) {
            acc = acc.modmul(&b, m);
        }
    }
    acc
}

fn random_odd(rng: &mut rand::rngs::StdRng, bits: usize) -> BigUint {
    let mut m = BigUint::random_bits(rng, bits);
    m.set_bit(0, true);
    m.set_bit(bits - 1, true);
    m
}

#[test]
fn cached_ctx_modpow_matches_oracle_across_widths() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xD1FF);
    // Single-limb through many-limb moduli, crossing every width class the
    // CIOS kernel handles differently.
    for bits in [16usize, 63, 64, 65, 128, 192, 256, 320, 512] {
        let m = random_odd(&mut rng, bits);
        let ctx = MontgomeryCtx::new(&m);
        for _ in 0..8 {
            let base = BigUint::random_below(&mut rng, &m);
            let exp = BigUint::random_bits(&mut rng, bits);
            let expect = oracle_modpow(&base, &exp, &m);
            assert_eq!(ctx.modpow(&base, &exp), expect, "cached ctx, {bits}-bit modulus");
            assert_eq!(base.modpow(&exp, &m), expect, "per-call path, {bits}-bit modulus");
            assert_eq!(base.modpow_ctx(&exp, &ctx), expect, "modpow_ctx entry point, {bits}-bit modulus");
        }
    }
}

#[test]
fn boundary_operands_match_oracle() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xB0DD);
    for bits in [64usize, 128, 256] {
        let m = random_odd(&mut rng, bits);
        let ctx = MontgomeryCtx::new(&m);
        let n_minus_1 = &m - &BigUint::one();
        let cases: &[(&BigUint, BigUint)] = &[
            (&n_minus_1, BigUint::random_bits(&mut rng, bits)), // base n-1
            (&n_minus_1, n_minus_1.clone()),                    // both n-1
            (&n_minus_1, BigUint::zero()),                      // exp 0
            (&n_minus_1, BigUint::one()),                       // exp 1
        ];
        for (base, exp) in cases {
            assert_eq!(ctx.modpow(base, exp), oracle_modpow(base, exp, &m), "{bits}-bit boundary case");
        }
        // Zero base.
        let exp = BigUint::random_bits(&mut rng, bits);
        assert_eq!(ctx.modpow(&BigUint::zero(), &exp), BigUint::zero());
    }
}

#[test]
fn mul_mod_matches_division_based_modmul() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0x3A7);
    for bits in [64usize, 127, 256, 512] {
        let m = random_odd(&mut rng, bits);
        let ctx = MontgomeryCtx::new(&m);
        for _ in 0..16 {
            let a = BigUint::random_below(&mut rng, &m);
            let b = BigUint::random_below(&mut rng, &m);
            assert_eq!(ctx.mul_mod(&a, &b), a.modmul(&b, &m), "{bits}-bit mul_mod");
        }
        let n_minus_1 = &m - &BigUint::one();
        assert_eq!(ctx.mul_mod(&n_minus_1, &n_minus_1), n_minus_1.modmul(&n_minus_1, &m));
    }
}

#[test]
fn crt_modpow_matches_direct_full_width() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xC27);
    for bits in [64usize, 128, 256] {
        // Random odd moduli are coprime with overwhelming probability;
        // retry the rare failures so the test stays deterministic per seed.
        let (m1, m2, crt) = loop {
            let m1 = random_odd(&mut rng, bits);
            let m2 = random_odd(&mut rng, bits);
            if let Ok(crt) = CrtCtx::new(&m1, &m2) {
                break (m1, m2, crt);
            }
        };
        let n = &m1 * &m2;
        for _ in 0..6 {
            let base = BigUint::random_below(&mut rng, &n);
            let e = BigUint::random_bits(&mut rng, bits);
            let x1 = oracle_modpow(&base, &e, &m1);
            let x2 = oracle_modpow(&base, &e, &m2);
            let combined = crt.combine(&x1, &x2);
            assert_eq!(&combined % &m1, x1, "{bits}-bit combine residue 1");
            assert_eq!(&combined % &m2, x2, "{bits}-bit combine residue 2");
            // With equal exponents the recombined value IS base^e mod m1·m2.
            assert_eq!(crt.modpow(&base, &e, &e), oracle_modpow(&base, &e, &n), "{bits}-bit full recombination");
            // modpow2 halves must equal the oracle residues.
            let (r1, r2) = crt.modpow2(&base, &e, &e);
            assert_eq!(r1, x1);
            assert_eq!(r2, x2);
        }
    }
}

#[test]
fn reduced_fast_paths_match_general_modadd_modsub() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xADD);
    for bits in [64usize, 256] {
        let m = random_odd(&mut rng, bits);
        for _ in 0..32 {
            let a = BigUint::random_below(&mut rng, &m);
            let b = BigUint::random_below(&mut rng, &m);
            assert_eq!(a.modadd_reduced(&b, &m), a.modadd(&b, &m));
            assert_eq!(a.modsub_reduced(&b, &m), a.modsub(&b, &m));
        }
    }
}
