//! Property-based tests: BigUint arithmetic must agree with a `u128`
//! oracle on small values and satisfy ring axioms on large ones.

use datablinder_bigint::{BigInt, BigUint};
use proptest::prelude::*;

fn big(v: u128) -> BigUint {
    BigUint::from(v)
}

/// Strategy producing a BigUint of up to 6 limbs from raw parts.
fn arb_biguint() -> impl Strategy<Value = BigUint> {
    proptest::collection::vec(any::<u64>(), 0..6).prop_map(|limbs| {
        let mut v = BigUint::zero();
        for (i, l) in limbs.into_iter().enumerate() {
            v = &v + &(&BigUint::from(l) << (64 * i));
        }
        v
    })
}

proptest! {
    #[test]
    fn add_matches_u128(a in 0u128..(1 << 126), b in 0u128..(1 << 126)) {
        prop_assert_eq!((&big(a) + &big(b)).to_u128(), Some(a + b));
    }

    #[test]
    fn sub_matches_u128(a: u128, b: u128) {
        let (hi, lo) = if a >= b { (a, b) } else { (b, a) };
        prop_assert_eq!((&big(hi) - &big(lo)).to_u128(), Some(hi - lo));
    }

    #[test]
    fn mul_matches_u128(a in 0u128..(1 << 64), b in 0u128..(1 << 64)) {
        prop_assert_eq!((&big(a) * &big(b)).to_u128(), Some(a * b));
    }

    #[test]
    fn divrem_matches_u128(a: u128, b in 1u128..u128::MAX) {
        let (q, r) = big(a).divrem(&big(b));
        prop_assert_eq!(q.to_u128(), Some(a / b));
        prop_assert_eq!(r.to_u128(), Some(a % b));
    }

    #[test]
    fn div_reconstruction(a in arb_biguint(), b in arb_biguint()) {
        prop_assume!(!b.is_zero());
        let (q, r) = a.divrem(&b);
        prop_assert!(r < b);
        prop_assert_eq!(&(&q * &b) + &r, a);
    }

    #[test]
    fn mul_commutes_and_associates(a in arb_biguint(), b in arb_biguint(), c in arb_biguint()) {
        prop_assert_eq!(&a * &b, &b * &a);
        prop_assert_eq!(&(&a * &b) * &c, &a * &(&b * &c));
    }

    #[test]
    fn distributivity(a in arb_biguint(), b in arb_biguint(), c in arb_biguint()) {
        prop_assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
    }

    #[test]
    fn shift_is_mul_by_power_of_two(a in arb_biguint(), s in 0usize..130) {
        let pow = &BigUint::one() << s;
        prop_assert_eq!(&a << s, &a * &pow);
    }

    #[test]
    fn dec_string_roundtrip(a in arb_biguint()) {
        let s = a.to_string();
        prop_assert_eq!(BigUint::from_dec_str(&s).unwrap(), a);
    }

    #[test]
    fn bytes_roundtrip(a in arb_biguint()) {
        prop_assert_eq!(BigUint::from_bytes_be(&a.to_bytes_be()), a);
    }

    #[test]
    fn modpow_fermat(p in prop::sample::select(vec![1000000007u64, 2147483647, 65537, 104729]), a in arb_biguint()) {
        let p = BigUint::from(p);
        prop_assume!(!(&a % &p).is_zero());
        let e = &p - &BigUint::one();
        prop_assert_eq!(a.modpow(&e, &p), BigUint::one());
    }

    #[test]
    fn modinv_is_inverse(m in prop::sample::select(vec![1000000007u64, 2147483647, 998244353]), a in arb_biguint()) {
        let m = BigUint::from(m);
        prop_assume!(!(&a % &m).is_zero());
        let inv = a.modinv(&m).unwrap();
        prop_assert_eq!(a.modmul(&inv, &m), BigUint::one());
    }

    #[test]
    fn extended_gcd_bezout(a in arb_biguint(), b in arb_biguint()) {
        let ia = BigInt::from(a.clone());
        let ib = BigInt::from(b.clone());
        let (g, x, y) = ia.extended_gcd(&ib);
        let lhs = &(&ia * &x) + &(&ib * &y);
        prop_assert_eq!(&lhs, &g);
        prop_assert_eq!(g.magnitude(), &a.gcd(&b));
    }

    #[test]
    fn gcd_divides_both(a in arb_biguint(), b in arb_biguint()) {
        let g = a.gcd(&b);
        if !g.is_zero() {
            prop_assert!((&a % &g).is_zero());
            prop_assert!((&b % &g).is_zero());
        } else {
            prop_assert!(a.is_zero() && b.is_zero());
        }
    }
}
