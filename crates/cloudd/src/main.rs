//! `datablinder-cloudd` — the cloud side of the middleware as a real
//! process: a [`CloudEngine`] served over the framed TCP wire protocol
//! (`datablinder_netsim::tcp`). Gateways connect with a `TcpChannel`
//! (usually wrapped in a `ResilientChannel`) and speak exactly the bytes
//! they would over the in-process simulated channel.
//!
//! ```text
//! datablinder-cloudd [--listen ADDR] [--workers N] [--durable DIR] [--max-frame BYTES]
//! datablinder-cloudd --smoke ADDR        # client mode: one sys/ping round trip
//! ```
//!
//! `--listen` defaults to `127.0.0.1:0` (kernel-picked ephemeral port; the
//! daemon prints `LISTENING <addr>` so scripts can parse the actual port —
//! the port-in-use-safe pattern `scripts/verify.sh` relies on).

use std::sync::Arc;
use std::time::Duration;

use datablinder_core::cloud::CloudEngine;
use datablinder_netsim::tcp::PING_ROUTE;
use datablinder_netsim::{CloudServer, CloudService, ServerConfig, TcpChannel, TcpConfig, Transport};

struct Options {
    listen: String,
    workers: usize,
    durable: Option<String>,
    max_frame: u32,
    smoke: Option<String>,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        listen: "127.0.0.1:0".to_string(),
        workers: 8,
        durable: None,
        max_frame: datablinder_netsim::tcp::DEFAULT_MAX_FRAME,
        smoke: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| args.next().ok_or(format!("{name} needs a value"));
        match arg.as_str() {
            "--listen" => opts.listen = value("--listen")?,
            "--workers" => {
                opts.workers = value("--workers")?.parse().map_err(|e| format!("--workers: {e}"))?;
            }
            "--durable" => opts.durable = Some(value("--durable")?),
            "--max-frame" => {
                opts.max_frame = value("--max-frame")?.parse().map_err(|e| format!("--max-frame: {e}"))?;
            }
            "--smoke" => opts.smoke = Some(value("--smoke")?),
            "--help" | "-h" => {
                println!(
                    "datablinder-cloudd [--listen ADDR] [--workers N] [--durable DIR] \
                     [--max-frame BYTES] | --smoke ADDR"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(opts)
}

/// One `sys/ping` round trip against a running daemon.
fn smoke(addr: &str) -> Result<(), String> {
    let ch = TcpChannel::connect(addr, TcpConfig::default()).map_err(|e| format!("resolve {addr}: {e}"))?;
    let payload = b"cloudd-smoke";
    let echoed = ch
        .call_with_deadline(PING_ROUTE, payload, Some(Duration::from_secs(5)))
        .map_err(|e| format!("ping {addr}: {e}"))?;
    if echoed != payload {
        return Err(format!("ping echoed {} bytes, wanted {}", echoed.len(), payload.len()));
    }
    println!("PONG {addr} ({} bytes round-tripped)", ch.metrics().bytes_received());
    Ok(())
}

fn run() -> Result<(), String> {
    let opts = parse_args()?;

    if let Some(addr) = &opts.smoke {
        return smoke(addr);
    }

    let engine = match &opts.durable {
        Some(dir) => CloudEngine::open_durable(std::path::Path::new(dir))
            .map_err(|e| format!("open durable store {dir}: {e}"))?,
        None => CloudEngine::new(),
    };
    let service: Arc<dyn CloudService> = Arc::new(engine);
    let config = ServerConfig { workers: opts.workers.max(1), max_frame: opts.max_frame };
    let server =
        CloudServer::bind(opts.listen.as_str(), service, config).map_err(|e| format!("bind {}: {e}", opts.listen))?;

    // Parsed by scripts: the kernel-assigned port when --listen used :0.
    println!("LISTENING {}", server.local_addr());
    use std::io::Write;
    let _ = std::io::stdout().flush();

    loop {
        std::thread::park();
    }
}

fn main() {
    if let Err(e) = run() {
        eprintln!("datablinder-cloudd: {e}");
        std::process::exit(1);
    }
}
