//! The cloud engine: the untrusted-zone half of the middleware (Fig. 4,
//! right side). Dispatches channel requests to the document store, the KV
//! substrate and the cloud halves of the tactics. Sees only ciphertexts,
//! tokens and opaque index entries.

use std::collections::{HashMap, VecDeque};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use datablinder_docstore::{DocStore, Filter, Value};
use datablinder_kvstore::{crc32, KvStore, LogRecord};
use datablinder_netsim::{CloudService, NetError};
use datablinder_obs::Recorder;
use datablinder_sse::encoding::{Reader, Writer};
use datablinder_sse::DocId;
use parking_lot::Mutex;

use crate::cloudproto::{
    is_write_route, BlobList, ChunkRequest, ChunkResponse, DigestRequest, FindIdsDnf, FindIdsEq, FindIdsRange,
    Idempotent, RangeSelect, SyncEntries, TransferBegin, TransferInfo, WalTailRequest, ENTRY_DOC, ENTRY_INDEX,
    ENTRY_KV, IDEM_ROUTE,
};
use crate::durability::{self, Durability, DurabilityOptions, JournalOutcome, RecoveryReport, WalRecord};
use crate::error::CoreError;
use crate::spi::CloudTactic;
use crate::sync::{DigestCache, DigestWork, MutationScope, Selector};
use crate::tactics;
use crate::tactics::encode_ids;
use crate::wire::{decode_document, encode_document, encode_documents};

/// Default capacity of the idempotency dedup cache: entries only need to
/// outlive the retry window of their request, so a small FIFO bounded well
/// above `max_attempts × in-flight writes` suffices.
pub const DEFAULT_DEDUP_CAPACITY: usize = 1024;

/// Dedup-cache shard count for full-capacity caches. Tokens from one
/// gateway spread uniformly (seed-mixed prefix + sequence), so N-way
/// sharding divides lock hold times under concurrent writers.
const DEDUP_SHARDS: usize = 8;

/// Recorded outcome of a deduplicated request: the request fingerprint plus
/// the first execution's result.
type DedupOutcome = (u64, Result<Vec<u8>, CoreError>);

/// FIFO-bounded map from idempotency token to the recorded outcome of the
/// first execution. The request fingerprint guards against token collisions
/// (two gateways seeding the same token stream must not read each other's
/// cached outcomes for *different* requests).
struct DedupCache {
    capacity: usize,
    entries: HashMap<[u8; 16], DedupOutcome>,
    order: VecDeque<[u8; 16]>,
}

impl DedupCache {
    fn new(capacity: usize) -> Self {
        DedupCache { capacity: capacity.max(1), entries: HashMap::new(), order: VecDeque::new() }
    }

    fn get(&self, token: &[u8; 16], fingerprint: u64) -> Option<Result<Vec<u8>, CoreError>> {
        match self.entries.get(token) {
            Some((fp, outcome)) if *fp == fingerprint => Some(outcome.clone()),
            _ => None,
        }
    }

    fn put(&mut self, token: [u8; 16], fingerprint: u64, outcome: Result<Vec<u8>, CoreError>) {
        if self.entries.insert(token, (fingerprint, outcome)).is_none() {
            self.order.push_back(token);
            if self.order.len() > self.capacity {
                if let Some(evicted) = self.order.pop_front() {
                    self.entries.remove(&evicted);
                }
            }
        }
    }
}

/// The dedup cache sharded by token hash: one mutex per shard, so
/// concurrent writers with distinct tokens rarely contend. Tiny caches
/// (tests, tight bounds) stay single-sharded to keep FIFO eviction
/// meaningful.
struct ShardedDedup {
    shards: Vec<Mutex<DedupCache>>,
    contention: Vec<AtomicU64>,
}

impl ShardedDedup {
    fn new(capacity: usize) -> Self {
        let n = if capacity >= DEDUP_SHARDS * 8 { DEDUP_SHARDS } else { 1 };
        let per_shard = capacity.max(1).div_ceil(n);
        ShardedDedup {
            shards: (0..n).map(|_| Mutex::new(DedupCache::new(per_shard))).collect(),
            contention: (0..n).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    fn shard_of(&self, token: &[u8; 16]) -> usize {
        // FNV-1a over the token; shard count is small so modulo is fine.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in token {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        (h % self.shards.len() as u64) as usize
    }

    /// Locks one shard, counting the acquisition as contended when the
    /// uncontended fast path fails.
    fn lock_shard(&self, idx: usize) -> parking_lot::MutexGuard<'_, DedupCache> {
        match self.shards[idx].try_lock() {
            Some(guard) => guard,
            None => {
                self.contention[idx].fetch_add(1, Ordering::Relaxed);
                self.shards[idx].lock()
            }
        }
    }

    /// Contended acquisitions per shard since construction.
    fn contention(&self) -> Vec<u64> {
        self.contention.iter().map(|c| c.load(Ordering::Relaxed)).collect()
    }
}

fn request_fingerprint(route: &str, payload: &[u8]) -> u64 {
    let mut h = datablinder_primitives::sha256::Sha256::new();
    h.update(&(route.len() as u32).to_be_bytes());
    h.update(route.as_bytes());
    h.update(payload);
    u64::from_be_bytes(h.finalize()[..8].try_into().unwrap())
}

/// The cloud-side engine. Construct, then wrap into a
/// [`datablinder_netsim::Channel`].
pub struct CloudEngine {
    docs: DocStore,
    kv: KvStore,
    tactics: HashMap<&'static str, Arc<dyn CloudTactic>>,
    dedup: ShardedDedup,
    dedup_hits: AtomicU64,
    durability: Option<Durability>,
    recovery: RecoveryReport,
    /// Pinned snapshot bodies for in-flight `sync/begin`..`sync/end`
    /// transfers, keyed by transfer token — chunk requests at any offset
    /// read one immutable body, which is what makes transfers resumable.
    transfers: Mutex<HashMap<[u8; 16], Arc<Vec<u8>>>>,
    /// Incremental Merkle digest state (see [`DigestCache`]); populated on
    /// the first `sync/digest` request, dirty-tracked by every write.
    digests: Mutex<Option<DigestCache>>,
    /// Observability recorder (disabled by default; see
    /// [`CloudEngine::set_recorder`]).
    obs: Recorder,
}

impl CloudEngine {
    /// Creates an engine with every built-in cloud tactic registered.
    pub fn new() -> Self {
        CloudEngine::with_dedup_capacity(DEFAULT_DEDUP_CAPACITY)
    }

    /// Like [`CloudEngine::new`] with an explicit idempotency-cache bound.
    pub fn with_dedup_capacity(capacity: usize) -> Self {
        let docs = DocStore::new();
        let kv = KvStore::new();
        let mut engine = CloudEngine {
            docs: docs.clone(),
            kv: kv.clone(),
            tactics: HashMap::new(),
            dedup: ShardedDedup::new(capacity),
            dedup_hits: AtomicU64::new(0),
            durability: None,
            recovery: RecoveryReport::default(),
            transfers: Mutex::new(HashMap::new()),
            digests: Mutex::new(None),
            obs: Recorder::default(),
        };
        engine.register(Arc::new(tactics::mitra::MitraCloud::new(kv.clone())));
        engine.register(Arc::new(tactics::sophos::SophosCloud::new(kv.clone())));
        engine.register(Arc::new(tactics::ore::OreCloud::new(kv.clone())));
        engine.register(Arc::new(tactics::paillier::PaillierCloud::new(kv.clone(), docs.clone())));
        engine.register(Arc::new(tactics::biex::BiexCloud::new(kv.clone(), tactics::biex::BiexVariant::TwoLev)));
        engine.register(Arc::new(tactics::biex::BiexCloud::new(kv, tactics::biex::BiexVariant::Zmf)));
        engine
    }

    /// Opens a crash-consistent engine backed by `dir`: restores the
    /// snapshot (if any), rolls the WAL tail forward, truncates a torn
    /// tail, and journals every subsequent mutation before applying it.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures and on-disk corruption
    /// ([`CoreError::Storage`]).
    pub fn open_durable(dir: &Path) -> Result<Self, CoreError> {
        CloudEngine::open_durable_with(dir, DurabilityOptions::default())
    }

    /// Like [`CloudEngine::open_durable`] with explicit snapshot cadence,
    /// dedup bound and (for tests) a crash injector.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures and on-disk corruption.
    pub fn open_durable_with(dir: &Path, opts: DurabilityOptions) -> Result<Self, CoreError> {
        CloudEngine::open_durable_observed(dir, opts, Recorder::default())
    }

    /// Like [`CloudEngine::open_durable_with`] with an observability
    /// [`Recorder`] installed *before* recovery, so the replay itself is
    /// measured: `cloud.recovery.replayed` counts rolled-forward WAL
    /// records and the `cloud.recovery.latency` histogram captures the
    /// time from open to the engine being query-ready (time to first
    /// query after a crash).
    ///
    /// # Errors
    ///
    /// As [`CloudEngine::open_durable_with`].
    pub fn open_durable_observed(dir: &Path, opts: DurabilityOptions, recorder: Recorder) -> Result<Self, CoreError> {
        let started = recorder.start();
        std::fs::create_dir_all(dir).map_err(datablinder_kvstore::KvError::from)?;
        let mut engine = CloudEngine::with_dedup_capacity(opts.dedup_capacity.unwrap_or(DEFAULT_DEDUP_CAPACITY));
        engine.obs = recorder;
        let engine = engine;
        // Replay journaled mutations through the normal dispatcher so
        // every tactic index rebuilds exactly as it was built live, and
        // replayed idempotency envelopes repopulate the dedup cache (a
        // gateway retry that bridges the crash gets the recorded outcome).
        // Application-level errors are part of the recorded history (e.g.
        // a rolled-forward duplicate insert), not recovery failures.
        let (report, seq) = durability::recover_into(dir, &engine.kv, &engine.docs, |rec| {
            let _ = engine.dispatch(&rec.route, &rec.payload);
        })?;
        let wal_backlog = report.replayed;
        let mut engine = engine;
        engine.recovery = report;
        engine.durability = Some(Durability::attach(dir, seq, wal_backlog, opts.snapshot_every, opts.crash)?);
        engine.obs.count("cloud.recovery.replayed", engine.recovery.replayed);
        if engine.recovery.snapshot_restored {
            engine.obs.count("cloud.recovery.snapshots_restored", 1);
        }
        if let Some(t0) = started {
            engine.obs.observe("cloud.recovery.latency", t0.elapsed());
        }
        Ok(engine)
    }

    /// What the last [`CloudEngine::open_durable`] recovery found on disk
    /// (all-default for volatile engines).
    pub fn recovery_report(&self) -> &RecoveryReport {
        &self.recovery
    }

    /// Whether this engine journals mutations to disk.
    pub fn is_durable(&self) -> bool {
        self.durability.is_some()
    }

    /// Whether the crash injector has fired (the simulated machine is
    /// down; always `false` for volatile engines).
    pub fn crashed(&self) -> bool {
        self.durability.as_ref().is_some_and(Durability::crashed)
    }

    /// Last durable WAL sequence number (0 for volatile engines).
    pub fn wal_seq(&self) -> u64 {
        self.durability.as_ref().map_or(0, Durability::seq)
    }

    /// Records journaled since the last snapshot (0 for volatile engines).
    pub fn wal_since_snapshot(&self) -> u64 {
        self.durability.as_ref().map_or(0, Durability::since_snapshot)
    }

    /// WAL group flushes performed (0 for volatile engines or when a
    /// crash injector forces the synchronous per-record path). Each group
    /// commit covers one or more records, so under concurrent writers this
    /// is strictly less than `wal_seq` when batching is effective.
    pub fn wal_group_commits(&self) -> u64 {
        self.durability.as_ref().map_or(0, Durability::group_commits)
    }

    /// Forces a snapshot, compacting the WAL.
    ///
    /// # Errors
    ///
    /// [`CoreError::UnsupportedOperation`] on a volatile engine; I/O
    /// failures otherwise.
    pub fn snapshot_now(&self) -> Result<(), CoreError> {
        match &self.durability {
            Some(d) => {
                d.snapshot(&self.kv, &self.docs)?;
                self.obs.count("cloud.snapshot.compactions", 1);
                Ok(())
            }
            None => Err(CoreError::UnsupportedOperation("snapshot on volatile engine".into())),
        }
    }

    /// Idempotent envelopes answered from the dedup cache instead of
    /// re-executing (i.e. duplicate deliveries absorbed).
    pub fn dedup_hits(&self) -> u64 {
        self.dedup_hits.load(Ordering::Relaxed)
    }

    /// Registers a cloud tactic handler (SPI extension point).
    pub fn register(&mut self, tactic: Arc<dyn CloudTactic>) {
        self.tactics.insert(tactic.name(), tactic);
    }

    /// Attaches an observability [`Recorder`]: per-tactic index-op
    /// counters, dedup-cache hits and WAL/snapshot activity record into
    /// it. The default recorder is disabled (one atomic load per call).
    pub fn set_recorder(&mut self, recorder: Recorder) {
        self.obs = recorder;
    }

    /// The observability recorder (disabled unless
    /// [`CloudEngine::set_recorder`] installed an enabled one).
    pub fn recorder(&self) -> &Recorder {
        &self.obs
    }

    /// Publishes per-shard lock-contention gauges into the recorder:
    /// `cloud.kv.shard.<i>.contention` (KV substrate, where all tactic
    /// index state lives) and `cloud.dedup.shard.<i>.contention`
    /// (idempotency cache). Cumulative counts of acquisitions that missed
    /// the uncontended fast path; call before snapshotting so the hot
    /// shards of a run are visible.
    pub fn publish_shard_metrics(&self) {
        if !self.obs.is_enabled() {
            return;
        }
        for (i, c) in self.kv.shard_contention().iter().enumerate() {
            self.obs.gauge_set(&format!("cloud.kv.shard.{i}.contention"), *c as i64);
        }
        for (i, c) in self.dedup.contention().iter().enumerate() {
            self.obs.gauge_set(&format!("cloud.dedup.shard.{i}.contention"), *c as i64);
        }
        if let Some(d) = &self.durability {
            self.obs.gauge_set("cloud.wal.group_commits", d.group_commits() as i64);
        }
    }

    /// The underlying document store (inspection/tests).
    pub fn docs(&self) -> &DocStore {
        &self.docs
    }

    /// The underlying KV store (inspection/tests).
    pub fn kv(&self) -> &KvStore {
        &self.kv
    }

    pub(crate) fn dispatch(&self, route: &str, payload: &[u8]) -> Result<Vec<u8>, CoreError> {
        let parts: Vec<&str> = route.split('/').collect();
        match parts.as_slice() {
            ["doc", op] => self.handle_doc(op, payload),
            [r] if *r == IDEM_ROUTE => {
                // Idempotent write envelope: execute once, record the
                // outcome, and answer retries/duplicates from the record so
                // a redelivered insert never double-applies index entries.
                let req = Idempotent::decode(payload)?;
                if req.route == IDEM_ROUTE {
                    return Err(CoreError::UnsupportedOperation("nested idem".into()));
                }
                let fingerprint = request_fingerprint(&req.route, &req.payload);
                let shard = self.dedup.shard_of(&req.token);
                if let Some(outcome) = self.dedup.lock_shard(shard).get(&req.token, fingerprint) {
                    self.dedup_hits.fetch_add(1, Ordering::Relaxed);
                    self.obs.count("cloud.dedup.hits", 1);
                    return outcome;
                }
                let outcome = self.dispatch(&req.route, &req.payload);
                self.dedup.lock_shard(shard).put(req.token, fingerprint, outcome.clone());
                outcome
            }
            ["batch"] => {
                // Executes a list of (route, payload) calls in one round
                // trip; responses are returned in order. Amortizes channel
                // latency for multi-call operations (batched inserts).
                let mut r = Reader::new(payload);
                let items = r.list()?;
                if items.len() % 2 != 0 {
                    return Err(CoreError::Wire("batch item count"));
                }
                let mut w = Writer::new();
                let mut responses = Vec::with_capacity(items.len() / 2);
                for pair in items.chunks(2) {
                    let route = std::str::from_utf8(&pair[0]).map_err(|_| CoreError::Wire("utf8 route"))?;
                    if route == "batch" {
                        return Err(CoreError::UnsupportedOperation("nested batch".into()));
                    }
                    responses.push(self.dispatch(route, &pair[1])?);
                }
                w.list(&responses);
                Ok(w.finish())
            }
            ["kv", "del_prefix"] => {
                let n = self.kv.del_prefix(payload) as u64;
                if n > 0 {
                    // A prefix can straddle scoped and broadcast keys;
                    // invalidate everything rather than under-mark.
                    self.note(&MutationScope::All);
                }
                Ok(n.to_be_bytes().to_vec())
            }
            ["kv", "bulk_put"] => {
                let mut r = Reader::new(payload);
                let pairs = r.list()?;
                if pairs.len() % 2 != 0 {
                    return Err(CoreError::Wire("bulk_put pair count"));
                }
                for kv in pairs.chunks(2) {
                    self.kv.set(&kv[0], &kv[1]);
                    self.note(&MutationScope::KvKey(kv[0].clone()));
                }
                Ok(Vec::new())
            }
            ["obs", "snapshot"] => {
                // Metrics federation: export this node's recorder snapshot
                // so a cluster coordinator can merge per-node observability
                // into one cluster-wide view.
                Ok(self.obs.snapshot().to_json().into_bytes())
            }
            ["tactic", name, scope, op] => {
                let tactic = self
                    .tactics
                    .get(name)
                    .ok_or_else(|| CoreError::UnsupportedOperation(format!("unknown cloud tactic {name}")))?;
                self.obs.count(&format!("cloud.tactic.{name}.ops"), 1);
                let out = tactic.handle(scope, op, payload);
                if out.is_ok() {
                    // Mirror the write-route classification: setups touch
                    // broadcast state, scoped writes touch their scope key.
                    match *op {
                        "setup" => self.note(&MutationScope::Broadcast),
                        "update" | "insert" | "delete" => {
                            self.note(&MutationScope::Routing(format!("tactic/{name}/{scope}").into_bytes()));
                        }
                        _ => {}
                    }
                }
                out
            }
            ["sync", op] => self.handle_sync(op, payload),
            _ => Err(CoreError::UnsupportedOperation(format!("unknown route {route}"))),
        }
    }

    /// Marks the digest cache dirty for a mutation's scope (no-op until the
    /// first `sync/digest` request builds the cache).
    fn note(&self, scope: &MutationScope) {
        DigestCache::note(&mut self.digests.lock(), scope);
    }

    /// Cluster-synchronization routes: snapshot streaming (`begin`/`chunk`/
    /// `end`), WAL tails, Merkle digests, range exports, and the two
    /// journaled apply ops (`put`, `retire`). See
    /// [`sync`](crate::sync) for the state model.
    fn handle_sync(&self, op: &str, payload: &[u8]) -> Result<Vec<u8>, CoreError> {
        match op {
            "begin" => {
                let req = TransferBegin::decode(payload)?;
                let body = {
                    let mut transfers = self.transfers.lock();
                    match transfers.get(&req.token) {
                        Some(body) => body.clone(),
                        None => {
                            let body = match &self.durability {
                                Some(d) => d.snapshot_body()?.unwrap_or_default(),
                                None => Vec::new(),
                            };
                            let body = Arc::new(body);
                            transfers.insert(req.token, body.clone());
                            body
                        }
                    }
                };
                let snapshot_seq = if body.is_empty() { 0 } else { durability::snapshot_body_seq(&body)? };
                self.obs.count("cloud.sync.transfers", 1);
                Ok(TransferInfo { total_len: body.len() as u64, snapshot_seq, crc: crc32(&body) }.encode())
            }
            "chunk" => {
                let req = ChunkRequest::decode(payload)?;
                let body = self
                    .transfers
                    .lock()
                    .get(&req.token)
                    .cloned()
                    .ok_or_else(|| CoreError::Storage("sync: unknown transfer token".into()))?;
                let start = (req.offset as usize).min(body.len());
                let end = start.saturating_add(req.max_len as usize).min(body.len());
                let data = body[start..end].to_vec();
                self.obs.count("cloud.sync.chunk_bytes", data.len() as u64);
                Ok(ChunkResponse { offset: req.offset, crc: crc32(&data), data }.encode())
            }
            "end" => {
                let req = TransferBegin::decode(payload)?;
                self.transfers.lock().remove(&req.token);
                Ok(Vec::new())
            }
            "tail" => {
                let req = WalTailRequest::decode(payload)?;
                let records = match &self.durability {
                    Some(d) => d.wal_tail(req.from_seq)?,
                    None => Vec::new(),
                };
                Ok(BlobList { items: records.iter().map(WalRecord::encode).collect() }.encode())
            }
            "digest" => {
                let req = DigestRequest::decode(payload)?;
                if req.boundaries.is_empty() {
                    return Err(CoreError::Wire("digest boundaries"));
                }
                let mut slot = self.digests.lock();
                let (resp, work) = DigestCache::respond(&mut slot, &self.kv, &self.docs, req.seed, &req.boundaries);
                drop(slot);
                match work {
                    DigestWork::Cached => self.obs.count("cloud.sync.digest.cached", 1),
                    DigestWork::Partial(n) => {
                        self.obs.count("cloud.sync.digest.partial", 1);
                        self.obs.count("cloud.sync.digest.leaves_rehashed", n);
                    }
                    DigestWork::Full => self.obs.count("cloud.sync.digest.full", 1),
                }
                Ok(resp.encode())
            }
            "entries" => {
                let req = RangeSelect::decode(payload)?;
                let sel = Selector::Ranges { ranges: &req.ranges, include_broadcast: req.include_broadcast };
                let entries = crate::sync::export_entries(&self.kv, &self.docs, req.seed, &sel);
                Ok(SyncEntries { entries: entries.into_iter().map(|(e, _)| e).collect() }.encode())
            }
            "put" => self.apply_sync_entries(payload),
            "retire" => {
                let req = RangeSelect::decode(payload)?;
                // Drop scoped state in the given ranges (after a handoff the
                // old owner no longer serves them; a node must never answer
                // a scatter from state it retired). Broadcast state — setup
                // keys, index definitions — is never retired.
                let sel = Selector::Ranges { ranges: &req.ranges, include_broadcast: false };
                let entries = crate::sync::export_entries(&self.kv, &self.docs, req.seed, &sel);
                let mut removed = 0u64;
                for (e, _) in entries {
                    match e.kind {
                        ENTRY_KV => {
                            self.kv.del(&e.key);
                            removed += 1;
                        }
                        ENTRY_DOC => {
                            let (collection, id) = split_doc_key(&e.key)?;
                            if self.docs.collection(&collection).delete(&id).is_ok() {
                                removed += 1;
                            }
                        }
                        _ => {}
                    }
                }
                if removed > 0 {
                    self.note(&MutationScope::All);
                }
                Ok(removed.to_be_bytes().to_vec())
            }
            other => Err(CoreError::UnsupportedOperation(format!("sync op {other}"))),
        }
    }

    /// Applies a batch of [`SyncEntries`]: each entry *replaces* this
    /// node's state for its key with the canonical bytes — KV slots are
    /// rebuilt from their record list (empty list = delete), docs are
    /// upserted (empty value = delete), index definitions union in.
    /// Deterministic and idempotent, so it replays safely from the WAL and
    /// through the idempotent-envelope dedup path.
    fn apply_sync_entries(&self, payload: &[u8]) -> Result<Vec<u8>, CoreError> {
        let req = SyncEntries::decode(payload)?;
        let mut applied = 0u64;
        for e in &req.entries {
            match e.kind {
                ENTRY_KV => {
                    self.kv.del(&e.key);
                    for body in BlobList::decode(&e.value)?.items {
                        self.kv.apply_record(&LogRecord::from_body(&body)?);
                    }
                    self.note(&MutationScope::KvKey(e.key.clone()));
                }
                ENTRY_DOC => {
                    let (collection, id) = split_doc_key(&e.key)?;
                    let coll = self.docs.collection(&collection);
                    if e.value.is_empty() {
                        let _ = coll.delete(&id);
                    } else {
                        let doc = decode_document(&e.value)?;
                        if coll.get(&id).is_some() {
                            coll.update(doc)?;
                        } else {
                            coll.insert(doc)?;
                        }
                    }
                    self.note(&MutationScope::Routing(e.key.clone()));
                }
                ENTRY_INDEX => {
                    let name = std::str::from_utf8(&e.key).map_err(|_| CoreError::Wire("utf8 collection"))?;
                    let coll = self.docs.collection(name);
                    for field in BlobList::decode(&e.value)?.items {
                        let field = String::from_utf8(field).map_err(|_| CoreError::Wire("utf8 index field"))?;
                        coll.create_index(&field);
                    }
                    self.note(&MutationScope::Broadcast);
                }
                _ => return Err(CoreError::Wire("unknown entry kind")),
            }
            applied += 1;
        }
        Ok(applied.to_be_bytes().to_vec())
    }

    fn handle_doc(&self, op: &str, payload: &[u8]) -> Result<Vec<u8>, CoreError> {
        match op {
            "insert" => {
                let (collection, rest) = split_collection(payload)?;
                let doc = decode_document(rest)?;
                let key = crate::sync::doc_key(&collection, doc.id().as_bytes());
                self.docs.collection(&collection).insert(doc)?;
                self.note(&MutationScope::Routing(key));
                Ok(Vec::new())
            }
            "update" => {
                let (collection, rest) = split_collection(payload)?;
                let doc = decode_document(rest)?;
                let key = crate::sync::doc_key(&collection, doc.id().as_bytes());
                self.docs.collection(&collection).update(doc)?;
                self.note(&MutationScope::Routing(key));
                Ok(Vec::new())
            }
            "get" => {
                let (collection, rest) = split_collection(payload)?;
                let id = std::str::from_utf8(rest).map_err(|_| CoreError::Wire("utf8 id"))?;
                let doc =
                    self.docs.collection(&collection).get(id).ok_or_else(|| CoreError::NotFound(id.to_string()))?;
                Ok(encode_document(&doc))
            }
            "get_many" => {
                let (collection, rest) = split_collection(payload)?;
                let mut r = Reader::new(rest);
                let ids = r.list()?;
                r.finish()?;
                let coll = self.docs.collection(&collection);
                let docs: Vec<_> =
                    ids.iter().filter_map(|id| std::str::from_utf8(id).ok().and_then(|s| coll.get(s))).collect();
                Ok(encode_documents(&docs))
            }
            "delete" => {
                let (collection, rest) = split_collection(payload)?;
                let id = std::str::from_utf8(rest).map_err(|_| CoreError::Wire("utf8 id"))?;
                self.docs.collection(&collection).delete(id)?;
                self.note(&MutationScope::Routing(crate::sync::doc_key(&collection, id.as_bytes())));
                Ok(Vec::new())
            }
            "count" => {
                let (collection, _) = split_collection(payload)?;
                let n = self.docs.collection(&collection).len() as u64;
                Ok(n.to_be_bytes().to_vec())
            }
            "extreme" => {
                // Min/max over a stored order-preserving field: the cloud
                // picks the extreme *ciphertext* (byte order = plaintext
                // order for OPE shadow fields) and returns the document id.
                let (collection, rest) = split_collection(payload)?;
                if rest.is_empty() {
                    return Err(CoreError::Wire("extreme payload"));
                }
                let want_max = rest[0] == 1;
                let field = std::str::from_utf8(&rest[1..]).map_err(|_| CoreError::Wire("utf8 field"))?;
                let docs = self.docs.collection(&collection).find(&Filter::Exists(field.to_string()));
                let best = docs
                    .iter()
                    .filter_map(|d| d.get(field).and_then(Value::as_bytes).map(|b| (b.to_vec(), d.id().to_string())))
                    .reduce(|a, b| {
                        let a_wins = if want_max { a.0 >= b.0 } else { a.0 <= b.0 };
                        if a_wins {
                            a
                        } else {
                            b
                        }
                    });
                match best {
                    None => Ok(Vec::new()),
                    Some((_, id)) => Ok(id.into_bytes()),
                }
            }
            "list_ids" => {
                let (collection, _) = split_collection(payload)?;
                let mut ids = self.docs.collection(&collection).ids();
                ids.sort();
                let mut w = Writer::new();
                w.list(&ids.into_iter().map(String::into_bytes).collect::<Vec<_>>());
                Ok(w.finish())
            }
            "ensure_index" => {
                let (collection, rest) = split_collection(payload)?;
                let field = std::str::from_utf8(rest).map_err(|_| CoreError::Wire("utf8 field"))?;
                self.docs.collection(&collection).create_index(field);
                self.note(&MutationScope::Broadcast);
                Ok(Vec::new())
            }
            "find_ids_eq" => {
                let req = FindIdsEq::decode(payload)?;
                let hits = self.docs.collection(&req.collection).find(&Filter::eq(req.field, req.value));
                Ok(ids_of(&hits))
            }
            "find_ids_range" => {
                let req = FindIdsRange::decode(payload)?;
                let hits = self.docs.collection(&req.collection).find(&Filter::between(req.field, req.lo, req.hi));
                Ok(ids_of(&hits))
            }
            "find_ids_dnf" => {
                let req = FindIdsDnf::decode(payload)?;
                let filter = Filter::or(
                    req.dnf
                        .into_iter()
                        .map(|conj| Filter::and(conj.into_iter().map(|(f, v)| Filter::eq(f, v)).collect()))
                        .collect(),
                );
                let hits = self.docs.collection(&req.collection).find(&filter);
                Ok(ids_of(&hits))
            }
            "agg_plain" => {
                // Plaintext aggregate for the S_A baseline: avg/sum over a
                // numeric field, like a database would compute natively.
                let (collection, rest) = split_collection(payload)?;
                let field = std::str::from_utf8(rest).map_err(|_| CoreError::Wire("utf8 field"))?;
                let docs = self.docs.collection(&collection).find(&Filter::Exists(field.to_string()));
                let mut sum = 0.0f64;
                let mut count = 0u64;
                for d in &docs {
                    if let Some(v) = d.get(field).and_then(Value::as_f64) {
                        sum += v;
                        count += 1;
                    }
                }
                let mut out = sum.to_be_bytes().to_vec();
                out.extend_from_slice(&count.to_be_bytes());
                Ok(out)
            }
            "agg_plain_ids" => {
                // Like `agg_plain` restricted to an explicit id set — the
                // cluster partitions a collection across replicas and asks
                // each node to aggregate only the documents it owns.
                let (collection, rest) = split_collection(payload)?;
                let mut r = Reader::new(rest);
                let field = String::from_utf8(r.bytes()?).map_err(|_| CoreError::Wire("utf8 field"))?;
                let ids = r.list()?;
                r.finish()?;
                let coll = self.docs.collection(&collection);
                let mut sum = 0.0f64;
                let mut count = 0u64;
                for id in &ids {
                    let Some(doc) = std::str::from_utf8(id).ok().and_then(|s| coll.get(s)) else {
                        continue;
                    };
                    if let Some(v) = doc.get(&field).and_then(Value::as_f64) {
                        sum += v;
                        count += 1;
                    }
                }
                let mut out = sum.to_be_bytes().to_vec();
                out.extend_from_slice(&count.to_be_bytes());
                Ok(out)
            }
            other => Err(CoreError::UnsupportedOperation(format!("doc op {other}"))),
        }
    }
}

impl Default for CloudEngine {
    fn default() -> Self {
        CloudEngine::new()
    }
}

impl CloudService for CloudEngine {
    fn handle(&self, route: &str, payload: &[u8]) -> Result<Vec<u8>, NetError> {
        if route == datablinder_obs::trace::TRACED_ROUTE {
            // Traced envelope: adopt the caller's trace context and recurse
            // on the inner route, so the crash check, journal and dedup all
            // see the real operation — the envelope never reaches the WAL.
            let (ctx, inner_route, inner_payload) = datablinder_obs::trace::decode_traced(payload)
                .map_err(|e| NetError::Remote(format!("trace envelope: {e}")))?;
            let _scope = ctx.enter();
            let mut guard = self.obs.quiet_span("cloud.apply");
            guard.set_detail(inner_route);
            let out = self.handle(inner_route, inner_payload);
            if let Err(e) = &out {
                guard.fail();
                guard.set_detail(&e.to_string());
            }
            return out;
        }
        let Some(d) = &self.durability else {
            return self.dispatch(route, payload).map_err(|e| NetError::Remote(e.to_string()));
        };
        if d.crashed() {
            // The simulated machine is down: everything times out until a
            // restart harness rebuilds the engine from disk.
            return Err(NetError::Timeout);
        }
        if !is_write_route(route) {
            return self.dispatch(route, payload).map_err(|e| NetError::Remote(e.to_string()));
        }
        // Journal-before-apply. The journaling sits here rather than in
        // `dispatch` so nested batch/idem sub-calls are covered by their
        // enclosing envelope's single WAL record, not re-journaled. The
        // journal call blocks on the group-commit flush, so the span around
        // it is the per-operation WAL fsync latency.
        let flush = {
            let mut guard = self.obs.quiet_span("cloud.wal.flush");
            let outcome = d.journal(route, payload);
            if outcome.is_err() {
                guard.fail();
            }
            outcome
        };
        match flush {
            Ok(JournalOutcome::Written) => {
                self.obs.count("cloud.wal.appends", 1);
                self.obs.count("cloud.wal.bytes", (route.len() + payload.len()) as u64);
            }
            // The crash point fired at this write: whatever reached disk
            // (nothing, a torn prefix, or a full never-applied frame), the
            // caller sees a retryable timeout and recovery sorts it out.
            Ok(JournalOutcome::Died) => return Err(NetError::Timeout),
            Err(e) => return Err(NetError::Remote(format!("wal: {e}"))),
        }
        let out = self.dispatch(route, payload).map_err(|e| NetError::Remote(e.to_string()));
        if d.snapshot_due() {
            if let Err(e) = d.snapshot(&self.kv, &self.docs) {
                return Err(NetError::Remote(format!("snapshot: {e}")));
            }
            self.obs.count("cloud.snapshot.compactions", 1);
        }
        out
    }
}

/// Encodes a `(collection, rest)` payload.
pub fn with_collection(collection: &str, rest: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + collection.len() + rest.len());
    out.extend_from_slice(&(collection.len() as u32).to_be_bytes());
    out.extend_from_slice(collection.as_bytes());
    out.extend_from_slice(rest);
    out
}

/// Splits a doc entry key (collection ‖ 0x00 ‖ id) back into its parts.
pub(crate) fn split_doc_key(key: &[u8]) -> Result<(String, String), CoreError> {
    let sep = key.iter().position(|&b| b == 0).ok_or(CoreError::Wire("doc key separator"))?;
    let collection = String::from_utf8(key[..sep].to_vec()).map_err(|_| CoreError::Wire("utf8 collection"))?;
    let id = String::from_utf8(key[sep + 1..].to_vec()).map_err(|_| CoreError::Wire("utf8 id"))?;
    Ok((collection, id))
}

pub(crate) fn split_collection(payload: &[u8]) -> Result<(String, &[u8]), CoreError> {
    if payload.len() < 4 {
        return Err(CoreError::Wire("collection header"));
    }
    let len = u32::from_be_bytes(payload[..4].try_into().unwrap()) as usize;
    if payload.len() < 4 + len {
        return Err(CoreError::Wire("collection name"));
    }
    let name = String::from_utf8(payload[4..4 + len].to_vec()).map_err(|_| CoreError::Wire("utf8 collection"))?;
    Ok((name, &payload[4 + len..]))
}

/// Extracts and encodes the DocIds of documents whose ids are DocId-hex.
fn ids_of(docs: &[datablinder_docstore::Document]) -> Vec<u8> {
    let mut ids: Vec<DocId> = docs.iter().filter_map(|d| DocId::from_hex(d.id())).collect();
    ids.sort();
    encode_ids(&ids)
}

/// Encodes a `get_many` request body.
pub fn get_many_payload(collection: &str, ids: &[DocId]) -> Vec<u8> {
    let mut w = Writer::new();
    w.list(&ids.iter().map(|id| id.to_hex().into_bytes()).collect::<Vec<_>>());
    with_collection(collection, &w.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use datablinder_docstore::Document;

    fn engine() -> CloudEngine {
        CloudEngine::new()
    }

    fn doc(idx: u8, status: &str) -> (DocId, Vec<u8>) {
        let id = DocId([idx; 16]);
        let d = Document::new(id.to_hex()).with("status", Value::from(status));
        (id, with_collection("obs", &encode_document(&d)))
    }

    #[test]
    fn doc_crud_over_routes() {
        let e = engine();
        let (id, payload) = doc(1, "final");
        e.dispatch("doc/insert", &payload).unwrap();
        // Duplicate insert fails.
        assert!(e.dispatch("doc/insert", &payload).is_err());

        let get = with_collection("obs", id.to_hex().as_bytes());
        let fetched = decode_document(&e.dispatch("doc/get", &get).unwrap()).unwrap();
        assert_eq!(fetched.get("status"), Some(&Value::from("final")));

        let count = e.dispatch("doc/count", &with_collection("obs", b"")).unwrap();
        assert_eq!(u64::from_be_bytes(count.try_into().unwrap()), 1);

        e.dispatch("doc/delete", &get).unwrap();
        assert!(e.dispatch("doc/get", &get).is_err());
    }

    #[test]
    fn find_ids_routes() {
        let e = engine();
        for (i, s) in [(1u8, "final"), (2, "draft"), (3, "final")] {
            let (_, payload) = doc(i, s);
            e.dispatch("doc/insert", &payload).unwrap();
        }
        let req = FindIdsEq { collection: "obs".into(), field: "status".into(), value: Value::from("final") };
        let out = e.dispatch("doc/find_ids_eq", &req.encode()).unwrap();
        let ids = crate::tactics::decode_ids(&out).unwrap();
        assert_eq!(ids, vec![DocId([1; 16]), DocId([3; 16])]);

        let req = FindIdsDnf { collection: "obs".into(), dnf: vec![vec![("status".into(), Value::from("draft"))]] };
        let out = e.dispatch("doc/find_ids_dnf", &req.encode()).unwrap();
        assert_eq!(crate::tactics::decode_ids(&out).unwrap(), vec![DocId([2; 16])]);
    }

    #[test]
    fn get_many_skips_missing() {
        let e = engine();
        let (id, payload) = doc(1, "x");
        e.dispatch("doc/insert", &payload).unwrap();
        let req = get_many_payload("obs", &[id, DocId([9; 16])]);
        let docs = crate::wire::decode_documents(&e.dispatch("doc/get_many", &req).unwrap()).unwrap();
        assert_eq!(docs.len(), 1);
    }

    #[test]
    fn kv_bulk_put() {
        let e = engine();
        let mut w = Writer::new();
        w.list(&[b"k1".to_vec(), b"v1".to_vec(), b"k2".to_vec(), b"v2".to_vec()]);
        e.dispatch("kv/bulk_put", &w.finish()).unwrap();
        assert_eq!(e.kv().get(b"k1"), Some(b"v1".to_vec()));
        assert_eq!(e.kv().get(b"k2"), Some(b"v2".to_vec()));
        // Odd pair count rejected.
        let mut w = Writer::new();
        w.list(&[b"k".to_vec()]);
        assert!(e.dispatch("kv/bulk_put", &w.finish()).is_err());
    }

    #[test]
    fn batch_route_executes_in_order_and_rejects_nesting() {
        let e = engine();
        let (_, ins) = doc(1, "final");
        let mut w = Writer::new();
        w.list(&[b"doc/insert".to_vec(), ins, b"doc/count".to_vec(), with_collection("obs", b"")]);
        let out = e.dispatch("batch", &w.finish()).unwrap();
        let mut r = datablinder_sse::encoding::Reader::new(&out);
        let responses = r.list().unwrap();
        assert_eq!(responses.len(), 2);
        assert_eq!(u64::from_be_bytes(responses[1].clone().try_into().unwrap()), 1);

        // Nested batches are rejected.
        let mut inner = Writer::new();
        inner.list(&[b"doc/count".to_vec(), with_collection("obs", b"")]);
        let mut outer = Writer::new();
        outer.list(&[b"batch".to_vec(), inner.finish()]);
        assert!(e.dispatch("batch", &outer.finish()).is_err());

        // Odd item count rejected.
        let mut odd = Writer::new();
        odd.list(&[b"doc/count".to_vec()]);
        assert!(e.dispatch("batch", &odd.finish()).is_err());
    }

    #[test]
    fn kv_del_prefix_route() {
        let e = engine();
        e.kv().set(b"t/mitra/s/one", b"1");
        e.kv().set(b"t/mitra/s/two", b"2");
        e.kv().set(b"t/mitra/other/x", b"3");
        let out = e.dispatch("kv/del_prefix", b"t/mitra/s/").unwrap();
        assert_eq!(u64::from_be_bytes(out.try_into().unwrap()), 2);
        assert!(e.kv().get(b"t/mitra/s/one").is_none());
        assert!(e.kv().get(b"t/mitra/other/x").is_some());
    }

    #[test]
    fn unknown_routes_rejected() {
        let e = engine();
        assert!(e.dispatch("nope", &[]).is_err());
        assert!(e.dispatch("doc/nope", &with_collection("c", b"")).is_err());
        assert!(e.dispatch("tactic/unknown/s/op", &[]).is_err());
    }

    fn idem(token: u8, route: &str, payload: &[u8]) -> Vec<u8> {
        Idempotent { token: [token; 16], route: route.into(), payload: payload.to_vec() }.encode()
    }

    #[test]
    fn idem_replay_returns_recorded_outcome_without_reexecuting() {
        let e = engine();
        let (_, ins) = doc(1, "final");
        let env = idem(7, "doc/insert", &ins);
        e.dispatch("idem", &env).unwrap();
        // Replaying the same envelope (duplicate delivery / gateway retry)
        // is answered from the cache — a bare re-insert would error.
        e.dispatch("idem", &env).unwrap();
        e.dispatch("idem", &env).unwrap();
        assert_eq!(e.dedup_hits(), 2);
        let count = e.dispatch("doc/count", &with_collection("obs", b"")).unwrap();
        assert_eq!(u64::from_be_bytes(count.try_into().unwrap()), 1, "executed exactly once");
    }

    #[test]
    fn idem_records_errors_too() {
        let e = engine();
        let (_, ins) = doc(1, "final");
        e.dispatch("doc/insert", &ins).unwrap();
        // This envelope's execution fails (duplicate document id)...
        let env = idem(8, "doc/insert", &ins);
        let first = e.dispatch("idem", &env).unwrap_err();
        // ...and the retry sees the *same* recorded error, not a fresh one.
        let second = e.dispatch("idem", &env).unwrap_err();
        assert_eq!(first, second);
        assert_eq!(e.dedup_hits(), 1);
    }

    #[test]
    fn idem_token_collision_with_different_request_reexecutes() {
        let e = engine();
        let (_, ins1) = doc(1, "final");
        let (_, ins2) = doc(2, "draft");
        // Same token, different request: the fingerprint guard must treat
        // this as a distinct request, not serve the cached outcome.
        e.dispatch("idem", &idem(7, "doc/insert", &ins1)).unwrap();
        e.dispatch("idem", &idem(7, "doc/insert", &ins2)).unwrap();
        assert_eq!(e.dedup_hits(), 0);
        let count = e.dispatch("doc/count", &with_collection("obs", b"")).unwrap();
        assert_eq!(u64::from_be_bytes(count.try_into().unwrap()), 2);
    }

    #[test]
    fn idem_cache_is_bounded_fifo() {
        let e = CloudEngine::with_dedup_capacity(2);
        let (_, ins1) = doc(1, "a");
        let (_, ins2) = doc(2, "b");
        let (_, ins3) = doc(3, "c");
        let env1 = idem(1, "doc/insert", &ins1);
        e.dispatch("idem", &env1).unwrap();
        e.dispatch("idem", &idem(2, "doc/insert", &ins2)).unwrap();
        e.dispatch("idem", &idem(3, "doc/insert", &ins3)).unwrap();
        // Token 1 was evicted: the replay re-executes and hits the duplicate
        // document error instead of the cached Ok.
        assert!(e.dispatch("idem", &env1).is_err());
        assert_eq!(e.dedup_hits(), 0);
    }

    #[test]
    fn idem_rejects_nesting_and_garbage() {
        let e = engine();
        let inner = idem(1, "doc/count", &with_collection("obs", b""));
        assert!(e.dispatch("idem", &idem(2, "idem", &inner)).is_err());
        assert!(e.dispatch("idem", &[0; 5]).is_err());
    }

    #[test]
    fn sharded_dedup_still_deduplicates_across_tokens() {
        let e = engine(); // full capacity → 8 shards
        for t in 0..32u8 {
            let (_, ins) = doc(t, "x");
            let env = idem(t, "doc/insert", &ins);
            e.dispatch("idem", &env).unwrap();
            e.dispatch("idem", &env).unwrap(); // duplicate delivery
        }
        assert_eq!(e.dedup_hits(), 32);
        let count = e.dispatch("doc/count", &with_collection("obs", b"")).unwrap();
        assert_eq!(u64::from_be_bytes(count.try_into().unwrap()), 32);
    }

    #[test]
    fn publish_shard_metrics_emits_per_shard_gauges() {
        let mut e = engine();
        let recorder = Recorder::new();
        e.set_recorder(recorder.clone());
        e.kv().set(b"k", b"v");
        e.publish_shard_metrics();
        let snap = recorder.snapshot();
        assert!(snap.gauges.iter().any(|(name, _)| name == "cloud.kv.shard.0.contention"));
        assert!(snap.gauges.iter().any(|(name, _)| name == "cloud.dedup.shard.7.contention"));
    }

    #[test]
    fn agg_plain_computes() {
        let e = engine();
        for (i, v) in [(1u8, 10.0f64), (2, 20.0)] {
            let id = DocId([i; 16]);
            let d = Document::new(id.to_hex()).with("value", Value::from(v));
            e.dispatch("doc/insert", &with_collection("obs", &encode_document(&d))).unwrap();
        }
        let out = e.dispatch("doc/agg_plain", &with_collection("obs", b"value")).unwrap();
        let sum = f64::from_be_bytes(out[..8].try_into().unwrap());
        let count = u64::from_be_bytes(out[8..].try_into().unwrap());
        assert_eq!(sum, 30.0);
        assert_eq!(count, 2);
    }
}
