//! Request/response payload codecs for the document-level cloud routes —
//! shared by gateway tactic adapters and the cloud engine.

use datablinder_docstore::Value;

use crate::error::CoreError;
use crate::wire::{decode_value, encode_value};

/// `doc/find_ids_eq`: equality projection query over one stored field.
#[derive(Debug, Clone, PartialEq)]
pub struct FindIdsEq {
    /// Target collection.
    pub collection: String,
    /// Stored (shadow) field name.
    pub field: String,
    /// Stored value to match (ciphertext bytes for DET).
    pub value: Value,
}

impl FindIdsEq {
    /// Serializes.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        put_str(&mut out, &self.collection);
        put_str(&mut out, &self.field);
        encode_value(&self.value, &mut out);
        out
    }

    /// Deserializes.
    ///
    /// # Errors
    ///
    /// [`CoreError::Wire`] on malformed input.
    pub fn decode(mut buf: &[u8]) -> Result<Self, CoreError> {
        let buf = &mut buf;
        let collection = take_str(buf)?;
        let field = take_str(buf)?;
        let value = decode_value(buf)?;
        ensure_empty(buf)?;
        Ok(FindIdsEq { collection, field, value })
    }
}

/// `doc/find_ids_range`: inclusive range projection query.
#[derive(Debug, Clone, PartialEq)]
pub struct FindIdsRange {
    /// Target collection.
    pub collection: String,
    /// Stored (shadow) field name.
    pub field: String,
    /// Inclusive lower bound.
    pub lo: Value,
    /// Inclusive upper bound.
    pub hi: Value,
}

impl FindIdsRange {
    /// Serializes.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        put_str(&mut out, &self.collection);
        put_str(&mut out, &self.field);
        encode_value(&self.lo, &mut out);
        encode_value(&self.hi, &mut out);
        out
    }

    /// Deserializes.
    ///
    /// # Errors
    ///
    /// [`CoreError::Wire`] on malformed input.
    pub fn decode(mut buf: &[u8]) -> Result<Self, CoreError> {
        let buf = &mut buf;
        let collection = take_str(buf)?;
        let field = take_str(buf)?;
        let lo = decode_value(buf)?;
        let hi = decode_value(buf)?;
        ensure_empty(buf)?;
        Ok(FindIdsRange { collection, field, lo, hi })
    }
}

/// `doc/find_ids_dnf`: boolean projection query in DNF over stored fields.
#[derive(Debug, Clone, PartialEq)]
pub struct FindIdsDnf {
    /// Target collection.
    pub collection: String,
    /// Disjunction of conjunctions of `(stored field, stored value)`.
    pub dnf: Vec<Vec<(String, Value)>>,
}

impl FindIdsDnf {
    /// Serializes.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        put_str(&mut out, &self.collection);
        out.extend_from_slice(&(self.dnf.len() as u32).to_be_bytes());
        for conj in &self.dnf {
            out.extend_from_slice(&(conj.len() as u32).to_be_bytes());
            for (f, v) in conj {
                put_str(&mut out, f);
                encode_value(v, &mut out);
            }
        }
        out
    }

    /// Deserializes.
    ///
    /// # Errors
    ///
    /// [`CoreError::Wire`] on malformed input.
    pub fn decode(mut buf: &[u8]) -> Result<Self, CoreError> {
        let buf = &mut buf;
        let collection = take_str(buf)?;
        let nconj = take_count(buf)?;
        let mut dnf = Vec::with_capacity(nconj);
        for _ in 0..nconj {
            let nlit = take_count(buf)?;
            let mut conj = Vec::with_capacity(nlit);
            for _ in 0..nlit {
                let f = take_str(buf)?;
                let v = decode_value(buf)?;
                conj.push((f, v));
            }
            dnf.push(conj);
        }
        ensure_empty(buf)?;
        Ok(FindIdsDnf { collection, dnf })
    }
}

/// `agg/paillier/.../sum`: homomorphic sum over a stored ciphertext field.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PaillierSum {
    /// Target collection.
    pub collection: String,
    /// Stored (shadow) field with Paillier ciphertexts.
    pub field: String,
    /// Restrict to these document ids (hex); empty = whole collection.
    pub ids: Vec<String>,
}

impl PaillierSum {
    /// Serializes.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        put_str(&mut out, &self.collection);
        put_str(&mut out, &self.field);
        out.extend_from_slice(&(self.ids.len() as u32).to_be_bytes());
        for id in &self.ids {
            put_str(&mut out, id);
        }
        out
    }

    /// Deserializes.
    ///
    /// # Errors
    ///
    /// [`CoreError::Wire`] on malformed input.
    pub fn decode(mut buf: &[u8]) -> Result<Self, CoreError> {
        let buf = &mut buf;
        let collection = take_str(buf)?;
        let field = take_str(buf)?;
        let n = take_count(buf)?;
        let mut ids = Vec::with_capacity(n);
        for _ in 0..n {
            ids.push(take_str(buf)?);
        }
        ensure_empty(buf)?;
        Ok(PaillierSum { collection, field, ids })
    }
}

/// Response to a sum: accumulator ciphertext + number of contributing docs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PaillierSumResponse {
    /// The homomorphic accumulator (empty when count is zero).
    pub ciphertext: Vec<u8>,
    /// Contributing document count.
    pub count: u64,
}

impl PaillierSumResponse {
    /// Serializes.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&self.count.to_be_bytes());
        out.extend_from_slice(&self.ciphertext);
        out
    }

    /// Deserializes.
    ///
    /// # Errors
    ///
    /// [`CoreError::Wire`] on malformed input.
    pub fn decode(mut buf: &[u8]) -> Result<Self, CoreError> {
        let count = u64::from_be_bytes(take_array(&mut buf, "sum response")?);
        Ok(PaillierSumResponse { count, ciphertext: buf.to_vec() })
    }
}

/// Route for idempotent write envelopes (see [`Idempotent`]).
pub const IDEM_ROUTE: &str = "idem";

/// An idempotent envelope around a chain-advancing write.
///
/// The gateway wraps every write route in one of these before sending it, so
/// a retried delivery (response lost, duplicate delivery) replays the
/// *envelope*, and the cloud's dedup cache returns the recorded outcome
/// instead of re-executing — an SSE insert that re-executes would double-add
/// index entries while the gateway's chain counter advanced only once, both a
/// correctness bug and extra leakage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Idempotent {
    /// Unique per *logical* request; identical across its retries.
    pub token: [u8; 16],
    /// The wrapped route.
    pub route: String,
    /// The wrapped payload.
    pub payload: Vec<u8>,
}

impl Idempotent {
    /// Serializes.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + 8 + self.route.len() + self.payload.len());
        out.extend_from_slice(&self.token);
        put_str(&mut out, &self.route);
        out.extend_from_slice(&(self.payload.len() as u32).to_be_bytes());
        out.extend_from_slice(&self.payload);
        out
    }

    /// Deserializes.
    ///
    /// # Errors
    ///
    /// [`CoreError::Wire`] on malformed input.
    pub fn decode(mut buf: &[u8]) -> Result<Self, CoreError> {
        let buf = &mut buf;
        let token = take_array(buf, "idem token")?;
        let route = take_str(buf)?;
        let len = take_count(buf)?;
        let payload = take_bytes(buf, len, "idem payload")?.to_vec();
        ensure_empty(buf)?;
        Ok(Idempotent { token, route, payload })
    }
}

/// Whether `route` mutates cloud state, i.e. must be wrapped in an
/// [`Idempotent`] envelope before it may be retried.
///
/// Reads (`doc/get`, `*/search`, `doc/count`, …) are naturally idempotent
/// and retry bare; a conservative unknown-route default of `true` means a
/// future write route degrades to "deduplicated" rather than
/// "double-applied".
pub fn is_write_route(route: &str) -> bool {
    if let Some(op) = route.strip_prefix("doc/") {
        return matches!(op, "insert" | "update" | "delete" | "ensure_index");
    }
    if route.starts_with("tactic/") {
        // tactic/<name>/<schema>:<scope>/<op> — classify by the op suffix.
        return matches!(route.rsplit('/').next(), Some("update" | "insert" | "delete" | "setup") | None);
    }
    // kv/*, batch and idem envelopes mutate; unknown routes are assumed to
    // mutate too — degrading to "needlessly deduplicated" is safer than
    // "double-applied".
    true
}

// ----------------------------------------------------------------- helpers

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_be_bytes());
    out.extend_from_slice(s.as_bytes());
}

/// Splits the leading `N` bytes off the cursor. The slice-pattern split is
/// the *only* length check — there is no index arithmetic left to get
/// wrong, so truncated input can error but never panic.
fn take_array<const N: usize>(buf: &mut &[u8], what: &'static str) -> Result<[u8; N], CoreError> {
    let (head, rest) = buf.split_first_chunk::<N>().ok_or(CoreError::Wire(what))?;
    let out = *head;
    *buf = rest;
    Ok(out)
}

/// Splits `len` bytes off the cursor, checked, zero-copy.
fn take_bytes<'a>(buf: &mut &'a [u8], len: usize, what: &'static str) -> Result<&'a [u8], CoreError> {
    let (head, rest) = buf.split_at_checked(len).ok_or(CoreError::Wire(what))?;
    *buf = rest;
    Ok(head)
}

fn take_str(buf: &mut &[u8]) -> Result<String, CoreError> {
    let len = u32::from_be_bytes(take_array(buf, "truncated string")?) as usize;
    let body = take_bytes(buf, len, "truncated string body")?;
    String::from_utf8(body.to_vec()).map_err(|_| CoreError::Wire("utf8"))
}

fn take_count(buf: &mut &[u8]) -> Result<usize, CoreError> {
    let n = u32::from_be_bytes(take_array(buf, "truncated count")?) as usize;
    if n > buf.len() {
        return Err(CoreError::Wire("count exceeds buffer"));
    }
    Ok(n)
}

fn ensure_empty(buf: &&[u8]) -> Result<(), CoreError> {
    if buf.is_empty() {
        Ok(())
    } else {
        Err(CoreError::Wire("trailing bytes"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn find_ids_eq_roundtrip() {
        let r = FindIdsEq { collection: "obs".into(), field: "status__det".into(), value: Value::Bytes(vec![1, 2, 3]) };
        assert_eq!(FindIdsEq::decode(&r.encode()).unwrap(), r);
        assert!(FindIdsEq::decode(&[1]).is_err());
    }

    #[test]
    fn find_ids_range_roundtrip() {
        let r = FindIdsRange {
            collection: "obs".into(),
            field: "eff__ope".into(),
            lo: Value::Bytes(vec![0; 16]),
            hi: Value::Bytes(vec![255; 16]),
        };
        assert_eq!(FindIdsRange::decode(&r.encode()).unwrap(), r);
    }

    #[test]
    fn find_ids_dnf_roundtrip() {
        let r = FindIdsDnf {
            collection: "obs".into(),
            dnf: vec![
                vec![("a".into(), Value::from(1i64)), ("b".into(), Value::from("x"))],
                vec![("c".into(), Value::Bytes(vec![9]))],
            ],
        };
        assert_eq!(FindIdsDnf::decode(&r.encode()).unwrap(), r);
        // Empty DNF is legal (matches nothing).
        let e = FindIdsDnf { collection: "obs".into(), dnf: vec![] };
        assert_eq!(FindIdsDnf::decode(&e.encode()).unwrap(), e);
    }

    #[test]
    fn idempotent_roundtrip() {
        let env = Idempotent { token: [7; 16], route: "doc/insert".into(), payload: vec![1, 2, 3] };
        assert_eq!(Idempotent::decode(&env.encode()).unwrap(), env);
        assert!(Idempotent::decode(&[0; 10]).is_err());
        let mut truncated = env.encode();
        truncated.pop();
        assert!(Idempotent::decode(&truncated).is_err());
    }

    #[test]
    fn write_route_classification() {
        for write in [
            "doc/insert",
            "doc/update",
            "doc/delete",
            "doc/ensure_index",
            "kv/bulk_put",
            "kv/del_prefix",
            "batch",
            "idem",
            "tactic/mitra/notes:owner/insert",
            "tactic/sophos/notes:owner/update",
            "tactic/ore/notes:eff/delete",
            "tactic/paillier/notes:value/setup",
            "something/new",
        ] {
            assert!(is_write_route(write), "{write} should be a write");
        }
        for read in [
            "doc/get",
            "doc/get_many",
            "doc/count",
            "doc/extreme",
            "doc/list_ids",
            "doc/find_ids_eq",
            "doc/find_ids_range",
            "doc/find_ids_dnf",
            "doc/agg_plain",
            "tactic/mitra/notes:owner/search",
            "tactic/biex2lev/notes:flags/base_search",
            "tactic/ore/notes:eff/range",
            "tactic/paillier/notes:value/sum",
        ] {
            assert!(!is_write_route(read), "{read} should be a read");
        }
    }

    #[test]
    fn paillier_sum_roundtrip() {
        let r =
            PaillierSum { collection: "obs".into(), field: "value__phe".into(), ids: vec!["aa".into(), "bb".into()] };
        assert_eq!(PaillierSum::decode(&r.encode()).unwrap(), r);
        let resp = PaillierSumResponse { ciphertext: vec![1, 2, 3], count: 7 };
        assert_eq!(PaillierSumResponse::decode(&resp.encode()).unwrap(), resp);
        assert!(PaillierSumResponse::decode(&[1, 2]).is_err());
    }
}
