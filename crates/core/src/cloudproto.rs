//! Request/response payload codecs for the document-level cloud routes —
//! shared by gateway tactic adapters and the cloud engine.

use datablinder_docstore::Value;

use crate::error::CoreError;
use crate::wire::{decode_value, encode_value};

/// `doc/find_ids_eq`: equality projection query over one stored field.
#[derive(Debug, Clone, PartialEq)]
pub struct FindIdsEq {
    /// Target collection.
    pub collection: String,
    /// Stored (shadow) field name.
    pub field: String,
    /// Stored value to match (ciphertext bytes for DET).
    pub value: Value,
}

impl FindIdsEq {
    /// Serializes.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        put_str(&mut out, &self.collection);
        put_str(&mut out, &self.field);
        encode_value(&self.value, &mut out);
        out
    }

    /// Deserializes.
    ///
    /// # Errors
    ///
    /// [`CoreError::Wire`] on malformed input.
    pub fn decode(mut buf: &[u8]) -> Result<Self, CoreError> {
        let buf = &mut buf;
        let collection = take_str(buf)?;
        let field = take_str(buf)?;
        let value = decode_value(buf)?;
        ensure_empty(buf)?;
        Ok(FindIdsEq { collection, field, value })
    }
}

/// `doc/find_ids_range`: inclusive range projection query.
#[derive(Debug, Clone, PartialEq)]
pub struct FindIdsRange {
    /// Target collection.
    pub collection: String,
    /// Stored (shadow) field name.
    pub field: String,
    /// Inclusive lower bound.
    pub lo: Value,
    /// Inclusive upper bound.
    pub hi: Value,
}

impl FindIdsRange {
    /// Serializes.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        put_str(&mut out, &self.collection);
        put_str(&mut out, &self.field);
        encode_value(&self.lo, &mut out);
        encode_value(&self.hi, &mut out);
        out
    }

    /// Deserializes.
    ///
    /// # Errors
    ///
    /// [`CoreError::Wire`] on malformed input.
    pub fn decode(mut buf: &[u8]) -> Result<Self, CoreError> {
        let buf = &mut buf;
        let collection = take_str(buf)?;
        let field = take_str(buf)?;
        let lo = decode_value(buf)?;
        let hi = decode_value(buf)?;
        ensure_empty(buf)?;
        Ok(FindIdsRange { collection, field, lo, hi })
    }
}

/// `doc/find_ids_dnf`: boolean projection query in DNF over stored fields.
#[derive(Debug, Clone, PartialEq)]
pub struct FindIdsDnf {
    /// Target collection.
    pub collection: String,
    /// Disjunction of conjunctions of `(stored field, stored value)`.
    pub dnf: Vec<Vec<(String, Value)>>,
}

impl FindIdsDnf {
    /// Serializes.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        put_str(&mut out, &self.collection);
        out.extend_from_slice(&(self.dnf.len() as u32).to_be_bytes());
        for conj in &self.dnf {
            out.extend_from_slice(&(conj.len() as u32).to_be_bytes());
            for (f, v) in conj {
                put_str(&mut out, f);
                encode_value(v, &mut out);
            }
        }
        out
    }

    /// Deserializes.
    ///
    /// # Errors
    ///
    /// [`CoreError::Wire`] on malformed input.
    pub fn decode(mut buf: &[u8]) -> Result<Self, CoreError> {
        let buf = &mut buf;
        let collection = take_str(buf)?;
        let nconj = take_count(buf)?;
        let mut dnf = Vec::with_capacity(nconj);
        for _ in 0..nconj {
            let nlit = take_count(buf)?;
            let mut conj = Vec::with_capacity(nlit);
            for _ in 0..nlit {
                let f = take_str(buf)?;
                let v = decode_value(buf)?;
                conj.push((f, v));
            }
            dnf.push(conj);
        }
        ensure_empty(buf)?;
        Ok(FindIdsDnf { collection, dnf })
    }
}

/// `agg/paillier/.../sum`: homomorphic sum over a stored ciphertext field.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PaillierSum {
    /// Target collection.
    pub collection: String,
    /// Stored (shadow) field with Paillier ciphertexts.
    pub field: String,
    /// Restrict to these document ids (hex); empty = whole collection.
    pub ids: Vec<String>,
}

impl PaillierSum {
    /// Serializes.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        put_str(&mut out, &self.collection);
        put_str(&mut out, &self.field);
        out.extend_from_slice(&(self.ids.len() as u32).to_be_bytes());
        for id in &self.ids {
            put_str(&mut out, id);
        }
        out
    }

    /// Deserializes.
    ///
    /// # Errors
    ///
    /// [`CoreError::Wire`] on malformed input.
    pub fn decode(mut buf: &[u8]) -> Result<Self, CoreError> {
        let buf = &mut buf;
        let collection = take_str(buf)?;
        let field = take_str(buf)?;
        let n = take_count(buf)?;
        let mut ids = Vec::with_capacity(n);
        for _ in 0..n {
            ids.push(take_str(buf)?);
        }
        ensure_empty(buf)?;
        Ok(PaillierSum { collection, field, ids })
    }
}

/// Response to a sum: accumulator ciphertext + number of contributing docs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PaillierSumResponse {
    /// The homomorphic accumulator (empty when count is zero).
    pub ciphertext: Vec<u8>,
    /// Contributing document count.
    pub count: u64,
}

impl PaillierSumResponse {
    /// Serializes.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&self.count.to_be_bytes());
        out.extend_from_slice(&self.ciphertext);
        out
    }

    /// Deserializes.
    ///
    /// # Errors
    ///
    /// [`CoreError::Wire`] on malformed input.
    pub fn decode(mut buf: &[u8]) -> Result<Self, CoreError> {
        let count = u64::from_be_bytes(take_array(&mut buf, "sum response")?);
        Ok(PaillierSumResponse { count, ciphertext: buf.to_vec() })
    }
}

/// Route for idempotent write envelopes (see [`Idempotent`]).
pub const IDEM_ROUTE: &str = "idem";

/// An idempotent envelope around a chain-advancing write.
///
/// The gateway wraps every write route in one of these before sending it, so
/// a retried delivery (response lost, duplicate delivery) replays the
/// *envelope*, and the cloud's dedup cache returns the recorded outcome
/// instead of re-executing — an SSE insert that re-executes would double-add
/// index entries while the gateway's chain counter advanced only once, both a
/// correctness bug and extra leakage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Idempotent {
    /// Unique per *logical* request; identical across its retries.
    pub token: [u8; 16],
    /// The wrapped route.
    pub route: String,
    /// The wrapped payload.
    pub payload: Vec<u8>,
}

impl Idempotent {
    /// Serializes.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + 8 + self.route.len() + self.payload.len());
        out.extend_from_slice(&self.token);
        put_str(&mut out, &self.route);
        out.extend_from_slice(&(self.payload.len() as u32).to_be_bytes());
        out.extend_from_slice(&self.payload);
        out
    }

    /// Deserializes.
    ///
    /// # Errors
    ///
    /// [`CoreError::Wire`] on malformed input.
    pub fn decode(mut buf: &[u8]) -> Result<Self, CoreError> {
        let buf = &mut buf;
        let token = take_array(buf, "idem token")?;
        let route = take_str(buf)?;
        let len = take_count(buf)?;
        let payload = take_bytes(buf, len, "idem payload")?.to_vec();
        ensure_empty(buf)?;
        Ok(Idempotent { token, route, payload })
    }
}

/// [`SyncEntry`] kind: one replicated document (`key` = collection ‖ 0x00 ‖
/// id, `value` = encoded document; empty value = tombstone/delete).
pub const ENTRY_DOC: u8 = b'd';
/// [`SyncEntry`] kind: one KV key's canonical state (`value` = length-
/// prefixed [`LogRecord`](datablinder_kvstore::LogRecord) bodies that
/// rebuild the slot from empty; an empty list = delete the slot).
pub const ENTRY_KV: u8 = b'k';
/// [`SyncEntry`] kind: a collection's indexed-field set (`key` = collection
/// name, `value` = length-prefixed field names). Repair is additive union —
/// `doc/ensure_index` never removes an index.
pub const ENTRY_INDEX: u8 = b'i';

/// One exported unit of replicated cloud state, the common currency of
/// snapshot-filtered resync, membership key handoff and anti-entropy
/// repair. Entries are self-describing (`kind` + entry key + canonical
/// value bytes), so "what do you hold for this key?" and "make your state
/// for this key exactly these bytes" are the same message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SyncEntry {
    /// One of [`ENTRY_DOC`], [`ENTRY_KV`], [`ENTRY_INDEX`].
    pub kind: u8,
    /// Entry key within the kind's namespace.
    pub key: Vec<u8>,
    /// Canonical value bytes (kind-specific encoding).
    pub value: Vec<u8>,
}

impl SyncEntry {
    /// Serializes into `out`.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.push(self.kind);
        out.extend_from_slice(&(self.key.len() as u32).to_be_bytes());
        out.extend_from_slice(&self.key);
        out.extend_from_slice(&(self.value.len() as u32).to_be_bytes());
        out.extend_from_slice(&self.value);
    }

    fn take(buf: &mut &[u8]) -> Result<Self, CoreError> {
        let [kind] = take_array::<1>(buf, "entry kind")?;
        if !matches!(kind, ENTRY_DOC | ENTRY_KV | ENTRY_INDEX) {
            return Err(CoreError::Wire("unknown entry kind"));
        }
        let klen = take_count(buf)?;
        let key = take_bytes(buf, klen, "entry key")?.to_vec();
        let vlen = take_count(buf)?;
        let value = take_bytes(buf, vlen, "entry value")?.to_vec();
        Ok(SyncEntry { kind, key, value })
    }
}

/// A batch of [`SyncEntry`]s: the `sync/entries` response and the
/// `sync/put` (apply) payload.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SyncEntries {
    /// The entries, sorted by `(kind, key)` when produced by an export.
    pub entries: Vec<SyncEntry>,
}

impl SyncEntries {
    /// Serializes.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&(self.entries.len() as u32).to_be_bytes());
        for e in &self.entries {
            e.encode_into(&mut out);
        }
        out
    }

    /// Deserializes.
    ///
    /// # Errors
    ///
    /// [`CoreError::Wire`] on malformed input.
    pub fn decode(mut buf: &[u8]) -> Result<Self, CoreError> {
        let buf = &mut buf;
        let n = take_count(buf)?;
        let mut entries = Vec::with_capacity(n);
        for _ in 0..n {
            entries.push(SyncEntry::take(buf)?);
        }
        ensure_empty(buf)?;
        Ok(SyncEntries { entries })
    }
}

/// `sync/entries` and `sync/retire`: selects the slice of a node's state
/// whose routing hash falls in one of the given ring ranges. Ranges are
/// `(lo, hi]` half-open intervals on the hash circle; `lo >= hi` wraps
/// through `u64::MAX`. `seed` pins the hash function — a donor whose ring
/// seed differs would silently select the wrong keys, so it is part of the
/// request and validated by the server.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RangeSelect {
    /// Ring hash seed the ranges were computed under.
    pub seed: u64,
    /// `(lo_exclusive, hi_inclusive]` hash intervals, wrapping when `lo >= hi`.
    pub ranges: Vec<(u64, u64)>,
    /// Also select broadcast-domain state (setup keys, index definitions…).
    pub include_broadcast: bool,
}

impl RangeSelect {
    /// Serializes.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&self.seed.to_be_bytes());
        out.push(self.include_broadcast as u8);
        out.extend_from_slice(&(self.ranges.len() as u32).to_be_bytes());
        for (lo, hi) in &self.ranges {
            out.extend_from_slice(&lo.to_be_bytes());
            out.extend_from_slice(&hi.to_be_bytes());
        }
        out
    }

    /// Deserializes.
    ///
    /// # Errors
    ///
    /// [`CoreError::Wire`] on malformed input.
    pub fn decode(mut buf: &[u8]) -> Result<Self, CoreError> {
        let buf = &mut buf;
        let seed = u64::from_be_bytes(take_array(buf, "select seed")?);
        let [flag] = take_array::<1>(buf, "select flag")?;
        if flag > 1 {
            return Err(CoreError::Wire("select flag"));
        }
        let n = take_count(buf)?;
        let mut ranges = Vec::with_capacity(n);
        for _ in 0..n {
            let lo = u64::from_be_bytes(take_array(buf, "range lo")?);
            let hi = u64::from_be_bytes(take_array(buf, "range hi")?);
            ranges.push((lo, hi));
        }
        ensure_empty(buf)?;
        Ok(RangeSelect { seed, ranges, include_broadcast: flag == 1 })
    }
}

/// `sync/begin`: opens a snapshot transfer. The token names the transfer
/// for subsequent [`ChunkRequest`]s and lets a retried begin re-pin the
/// same cached body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransferBegin {
    /// Unique per transfer attempt; identical across its chunk requests.
    pub token: [u8; 16],
}

impl TransferBegin {
    /// Serializes.
    pub fn encode(&self) -> Vec<u8> {
        self.token.to_vec()
    }

    /// Deserializes.
    ///
    /// # Errors
    ///
    /// [`CoreError::Wire`] on malformed input.
    pub fn decode(mut buf: &[u8]) -> Result<Self, CoreError> {
        let buf = &mut buf;
        let token = take_array(buf, "transfer token")?;
        ensure_empty(buf)?;
        Ok(TransferBegin { token })
    }
}

/// `sync/begin` response: the pinned snapshot body's size, the WAL seq it
/// compacts up to, and a whole-body CRC the receiver checks after
/// reassembly. `total_len == 0` means the donor has no snapshot (nothing
/// compacted yet) — the receiver goes straight to the WAL tail.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransferInfo {
    /// Snapshot body length in bytes (0 = no snapshot).
    pub total_len: u64,
    /// WAL sequence the snapshot covers through.
    pub snapshot_seq: u64,
    /// CRC32 of the whole body.
    pub crc: u32,
}

impl TransferInfo {
    /// Serializes.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(20);
        out.extend_from_slice(&self.total_len.to_be_bytes());
        out.extend_from_slice(&self.snapshot_seq.to_be_bytes());
        out.extend_from_slice(&self.crc.to_be_bytes());
        out
    }

    /// Deserializes.
    ///
    /// # Errors
    ///
    /// [`CoreError::Wire`] on malformed input.
    pub fn decode(mut buf: &[u8]) -> Result<Self, CoreError> {
        let buf = &mut buf;
        let total_len = u64::from_be_bytes(take_array(buf, "transfer len")?);
        let snapshot_seq = u64::from_be_bytes(take_array(buf, "transfer seq")?);
        let crc = u32::from_be_bytes(take_array(buf, "transfer crc")?);
        ensure_empty(buf)?;
        Ok(TransferInfo { total_len, snapshot_seq, crc })
    }
}

/// `sync/chunk`: requests one slice of a pinned snapshot body. Offsets are
/// caller-chosen, so a receiver that lost a response simply re-requests the
/// same offset — the transfer is resumable at chunk granularity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkRequest {
    /// Transfer token from [`TransferBegin`].
    pub token: [u8; 16],
    /// Byte offset into the pinned body.
    pub offset: u64,
    /// Maximum bytes to return.
    pub max_len: u32,
}

impl ChunkRequest {
    /// Serializes.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(28);
        out.extend_from_slice(&self.token);
        out.extend_from_slice(&self.offset.to_be_bytes());
        out.extend_from_slice(&self.max_len.to_be_bytes());
        out
    }

    /// Deserializes.
    ///
    /// # Errors
    ///
    /// [`CoreError::Wire`] on malformed input.
    pub fn decode(mut buf: &[u8]) -> Result<Self, CoreError> {
        let buf = &mut buf;
        let token = take_array(buf, "chunk token")?;
        let offset = u64::from_be_bytes(take_array(buf, "chunk offset")?);
        let max_len = u32::from_be_bytes(take_array(buf, "chunk max")?);
        ensure_empty(buf)?;
        Ok(ChunkRequest { token, offset, max_len })
    }
}

/// `sync/chunk` response: the requested slice plus its own CRC32, so a
/// corrupted hop is detected per chunk, not only at the end.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkResponse {
    /// Echoed offset of this slice.
    pub offset: u64,
    /// CRC32 of `data`.
    pub crc: u32,
    /// The slice (shorter than `max_len` at the tail; empty past the end).
    pub data: Vec<u8>,
}

impl ChunkResponse {
    /// Serializes.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + self.data.len());
        out.extend_from_slice(&self.offset.to_be_bytes());
        out.extend_from_slice(&self.crc.to_be_bytes());
        out.extend_from_slice(&(self.data.len() as u32).to_be_bytes());
        out.extend_from_slice(&self.data);
        out
    }

    /// Deserializes.
    ///
    /// # Errors
    ///
    /// [`CoreError::Wire`] on malformed input.
    pub fn decode(mut buf: &[u8]) -> Result<Self, CoreError> {
        let buf = &mut buf;
        let offset = u64::from_be_bytes(take_array(buf, "chunk offset")?);
        let crc = u32::from_be_bytes(take_array(buf, "chunk crc")?);
        let len = take_count(buf)?;
        let data = take_bytes(buf, len, "chunk data")?.to_vec();
        ensure_empty(buf)?;
        Ok(ChunkResponse { offset, crc, data })
    }
}

/// `sync/tail`: asks a donor for every WAL record with `seq > from_seq` —
/// the tail above a shipped snapshot. The response is a [`BlobList`] of
/// encoded [`WalRecord`](crate::durability::WalRecord)s.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalTailRequest {
    /// Replay records strictly above this sequence number.
    pub from_seq: u64,
}

impl WalTailRequest {
    /// Serializes.
    pub fn encode(&self) -> Vec<u8> {
        self.from_seq.to_be_bytes().to_vec()
    }

    /// Deserializes.
    ///
    /// # Errors
    ///
    /// [`CoreError::Wire`] on malformed input.
    pub fn decode(mut buf: &[u8]) -> Result<Self, CoreError> {
        let buf = &mut buf;
        let from_seq = u64::from_be_bytes(take_array(buf, "tail seq")?);
        ensure_empty(buf)?;
        Ok(WalTailRequest { from_seq })
    }
}

/// A length-prefixed list of opaque byte blobs (WAL tail responses).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BlobList {
    /// The blobs, in order.
    pub items: Vec<Vec<u8>>,
}

impl BlobList {
    /// Serializes.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&(self.items.len() as u32).to_be_bytes());
        for item in &self.items {
            out.extend_from_slice(&(item.len() as u32).to_be_bytes());
            out.extend_from_slice(item);
        }
        out
    }

    /// Deserializes.
    ///
    /// # Errors
    ///
    /// [`CoreError::Wire`] on malformed input.
    pub fn decode(mut buf: &[u8]) -> Result<Self, CoreError> {
        let buf = &mut buf;
        let n = take_count(buf)?;
        let mut items = Vec::with_capacity(n);
        for _ in 0..n {
            let len = take_count(buf)?;
            items.push(take_bytes(buf, len, "blob body")?.to_vec());
        }
        ensure_empty(buf)?;
        Ok(BlobList { items })
    }
}

/// `sync/digest`: asks a node for its Merkle digests under the given ring
/// layout. Boundaries are the sorted vnode hash points; leaf `j` covers
/// `(boundaries[j-1], boundaries[j]]` with leaf 0 wrapping — the same
/// intervals the ring uses for ownership, so "per-shard root" and "ring
/// leaf digest" are the same thing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DigestRequest {
    /// Ring hash seed.
    pub seed: u64,
    /// Sorted vnode hash points defining the leaf intervals.
    pub boundaries: Vec<u64>,
}

impl DigestRequest {
    /// Serializes.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(12 + self.boundaries.len() * 8);
        out.extend_from_slice(&self.seed.to_be_bytes());
        out.extend_from_slice(&(self.boundaries.len() as u32).to_be_bytes());
        for b in &self.boundaries {
            out.extend_from_slice(&b.to_be_bytes());
        }
        out
    }

    /// Deserializes.
    ///
    /// # Errors
    ///
    /// [`CoreError::Wire`] on malformed input.
    pub fn decode(mut buf: &[u8]) -> Result<Self, CoreError> {
        let buf = &mut buf;
        let seed = u64::from_be_bytes(take_array(buf, "digest seed")?);
        let n = take_count(buf)?;
        let mut boundaries = Vec::with_capacity(n);
        for _ in 0..n {
            boundaries.push(u64::from_be_bytes(take_array(buf, "digest boundary")?));
        }
        ensure_empty(buf)?;
        Ok(DigestRequest { seed, boundaries })
    }
}

/// `sync/digest` response: one 32-byte digest per ring leaf, one for the
/// broadcast domain (state every node must replicate), and the Merkle root
/// over the leaves — two nodes with equal roots need no further exchange.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DigestResponse {
    /// Per-leaf digests, index-aligned with the request boundaries.
    pub leaves: Vec<[u8; 32]>,
    /// Digest over broadcast-domain state.
    pub broadcast: [u8; 32],
    /// Merkle root over `leaves`.
    pub root: [u8; 32],
}

impl DigestResponse {
    /// Serializes.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(68 + self.leaves.len() * 32);
        out.extend_from_slice(&(self.leaves.len() as u32).to_be_bytes());
        for leaf in &self.leaves {
            out.extend_from_slice(leaf);
        }
        out.extend_from_slice(&self.broadcast);
        out.extend_from_slice(&self.root);
        out
    }

    /// Deserializes.
    ///
    /// # Errors
    ///
    /// [`CoreError::Wire`] on malformed input.
    pub fn decode(mut buf: &[u8]) -> Result<Self, CoreError> {
        let buf = &mut buf;
        let n = take_count(buf)?;
        let mut leaves = Vec::with_capacity(n);
        for _ in 0..n {
            leaves.push(take_array(buf, "leaf digest")?);
        }
        let broadcast = take_array(buf, "broadcast digest")?;
        let root = take_array(buf, "merkle root")?;
        ensure_empty(buf)?;
        Ok(DigestResponse { leaves, broadcast, root })
    }
}

/// Whether `route` mutates cloud state, i.e. must be wrapped in an
/// [`Idempotent`] envelope before it may be retried.
///
/// Reads (`doc/get`, `*/search`, `doc/count`, …) are naturally idempotent
/// and retry bare; a conservative unknown-route default of `true` means a
/// future write route degrades to "deduplicated" rather than
/// "double-applied".
pub fn is_write_route(route: &str) -> bool {
    if let Some(op) = route.strip_prefix("doc/") {
        return matches!(op, "insert" | "update" | "delete" | "ensure_index");
    }
    if route.starts_with("tactic/") {
        // tactic/<name>/<schema>:<scope>/<op> — classify by the op suffix.
        return matches!(route.rsplit('/').next(), Some("update" | "insert" | "delete" | "setup") | None);
    }
    if let Some(op) = route.strip_prefix("sync/") {
        // Snapshot streaming, WAL tails, digests and range exports are
        // reads and retry bare; only the two applying ops mutate.
        return matches!(op, "put" | "retire");
    }
    if route.starts_with("obs/") {
        // Observability routes (snapshot export, traced envelopes) never
        // mutate cloud state. The envelope's *inner* route is classified
        // after the service unwraps it, before any journal decision.
        return false;
    }
    // kv/*, batch and idem envelopes mutate; unknown routes are assumed to
    // mutate too — degrading to "needlessly deduplicated" is safer than
    // "double-applied".
    true
}

// ----------------------------------------------------------------- helpers

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_be_bytes());
    out.extend_from_slice(s.as_bytes());
}

/// Splits the leading `N` bytes off the cursor. The slice-pattern split is
/// the *only* length check — there is no index arithmetic left to get
/// wrong, so truncated input can error but never panic.
fn take_array<const N: usize>(buf: &mut &[u8], what: &'static str) -> Result<[u8; N], CoreError> {
    let (head, rest) = buf.split_first_chunk::<N>().ok_or(CoreError::Wire(what))?;
    let out = *head;
    *buf = rest;
    Ok(out)
}

/// Splits `len` bytes off the cursor, checked, zero-copy.
fn take_bytes<'a>(buf: &mut &'a [u8], len: usize, what: &'static str) -> Result<&'a [u8], CoreError> {
    let (head, rest) = buf.split_at_checked(len).ok_or(CoreError::Wire(what))?;
    *buf = rest;
    Ok(head)
}

fn take_str(buf: &mut &[u8]) -> Result<String, CoreError> {
    let len = u32::from_be_bytes(take_array(buf, "truncated string")?) as usize;
    let body = take_bytes(buf, len, "truncated string body")?;
    String::from_utf8(body.to_vec()).map_err(|_| CoreError::Wire("utf8"))
}

fn take_count(buf: &mut &[u8]) -> Result<usize, CoreError> {
    let n = u32::from_be_bytes(take_array(buf, "truncated count")?) as usize;
    if n > buf.len() {
        return Err(CoreError::Wire("count exceeds buffer"));
    }
    Ok(n)
}

fn ensure_empty(buf: &&[u8]) -> Result<(), CoreError> {
    if buf.is_empty() {
        Ok(())
    } else {
        Err(CoreError::Wire("trailing bytes"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn find_ids_eq_roundtrip() {
        let r = FindIdsEq { collection: "obs".into(), field: "status__det".into(), value: Value::Bytes(vec![1, 2, 3]) };
        assert_eq!(FindIdsEq::decode(&r.encode()).unwrap(), r);
        assert!(FindIdsEq::decode(&[1]).is_err());
    }

    #[test]
    fn find_ids_range_roundtrip() {
        let r = FindIdsRange {
            collection: "obs".into(),
            field: "eff__ope".into(),
            lo: Value::Bytes(vec![0; 16]),
            hi: Value::Bytes(vec![255; 16]),
        };
        assert_eq!(FindIdsRange::decode(&r.encode()).unwrap(), r);
    }

    #[test]
    fn find_ids_dnf_roundtrip() {
        let r = FindIdsDnf {
            collection: "obs".into(),
            dnf: vec![
                vec![("a".into(), Value::from(1i64)), ("b".into(), Value::from("x"))],
                vec![("c".into(), Value::Bytes(vec![9]))],
            ],
        };
        assert_eq!(FindIdsDnf::decode(&r.encode()).unwrap(), r);
        // Empty DNF is legal (matches nothing).
        let e = FindIdsDnf { collection: "obs".into(), dnf: vec![] };
        assert_eq!(FindIdsDnf::decode(&e.encode()).unwrap(), e);
    }

    #[test]
    fn idempotent_roundtrip() {
        let env = Idempotent { token: [7; 16], route: "doc/insert".into(), payload: vec![1, 2, 3] };
        assert_eq!(Idempotent::decode(&env.encode()).unwrap(), env);
        assert!(Idempotent::decode(&[0; 10]).is_err());
        let mut truncated = env.encode();
        truncated.pop();
        assert!(Idempotent::decode(&truncated).is_err());
    }

    #[test]
    fn write_route_classification() {
        for write in [
            "doc/insert",
            "doc/update",
            "doc/delete",
            "doc/ensure_index",
            "kv/bulk_put",
            "kv/del_prefix",
            "batch",
            "idem",
            "tactic/mitra/notes:owner/insert",
            "tactic/sophos/notes:owner/update",
            "tactic/ore/notes:eff/delete",
            "tactic/paillier/notes:value/setup",
            "sync/put",
            "sync/retire",
            "something/new",
        ] {
            assert!(is_write_route(write), "{write} should be a write");
        }
        for read in [
            "doc/get",
            "doc/get_many",
            "doc/count",
            "doc/extreme",
            "doc/list_ids",
            "doc/find_ids_eq",
            "doc/find_ids_range",
            "doc/find_ids_dnf",
            "doc/agg_plain",
            "tactic/mitra/notes:owner/search",
            "tactic/biex2lev/notes:flags/base_search",
            "tactic/ore/notes:eff/range",
            "tactic/paillier/notes:value/sum",
            "sync/begin",
            "sync/chunk",
            "sync/end",
            "sync/tail",
            "sync/digest",
            "sync/entries",
            "obs/snapshot",
            "obs/traced",
        ] {
            assert!(!is_write_route(read), "{read} should be a read");
        }
    }

    #[test]
    fn paillier_sum_roundtrip() {
        let r =
            PaillierSum { collection: "obs".into(), field: "value__phe".into(), ids: vec!["aa".into(), "bb".into()] };
        assert_eq!(PaillierSum::decode(&r.encode()).unwrap(), r);
        let resp = PaillierSumResponse { ciphertext: vec![1, 2, 3], count: 7 };
        assert_eq!(PaillierSumResponse::decode(&resp.encode()).unwrap(), resp);
        assert!(PaillierSumResponse::decode(&[1, 2]).is_err());
    }
}
