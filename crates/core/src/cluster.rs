//! ClusterCloud: N replicated [`CloudEngine`] nodes behind one
//! [`CloudService`] facade, with elastic membership.
//!
//! The gateway keeps talking to a single channel; behind it a consistent-hash
//! ring (virtual nodes, deterministic seed) places every write on R replicas,
//! a write is acknowledged once W of them have durably journaled it, and
//! reads either probe a key's replica set (with read repair when replicas
//! diverge) or scatter-gather across the cluster for collection-wide queries.
//! Node failures come from [`NodeFailureInjector`] events or from observing a
//! node's crash injector fire. Quorums that cannot be met surface as typed
//! [`NetError::Unavailable`] errors — never hangs.
//!
//! Membership is *elastic*:
//!
//! * A rejoining durable node streams each live peer's compacted snapshot
//!   (chunked, CRC-framed, resumable) plus the WAL tail above the snapshot
//!   sequence — so a peer that compacted its WAL no longer leaves a resync
//!   gap. A transfer torn by a crash leaves the node down; the next rejoin
//!   restarts cleanly from disk.
//! * [`ClusterCloud::add_node`] / [`ClusterCloud::remove_node`] recompute
//!   vnode ownership and hand off exactly the key ranges that changed
//!   owners before the new ring serves quorums. Operations arriving during
//!   the transfer window fail fast with a typed
//!   [`NetError::Unavailable`] instead of reading a half-moved ring.
//! * A background anti-entropy pass ([`ClusterCloud::run_anti_entropy`],
//!   optionally ticked every [`ClusterConfig::anti_entropy_every`] ops)
//!   compares per-leaf Merkle digests pairwise across replicas and repairs
//!   divergent keys through the idempotent `sync/put` envelope.
//!
//! # Examples
//!
//! ```
//! use datablinder_core::cluster::{ClusterCloud, ClusterConfig};
//! use datablinder_core::cloud::with_collection;
//! use datablinder_core::wire::encode_document;
//! use datablinder_docstore::{Document, Value};
//! use datablinder_netsim::CloudService;
//!
//! let cluster = ClusterCloud::new(ClusterConfig::volatile(3, 2, 2, 7)).unwrap();
//! let doc = Document::new("00ff").with("status", Value::from("ok"));
//! cluster.handle("doc/insert", &with_collection("notes", &encode_document(&doc))).unwrap();
//! // Grow the cluster: the new node pulls the ranges it now owns before serving.
//! let added = cluster.add_node().unwrap();
//! assert_eq!(added, 3);
//! let got = cluster.handle("doc/get", &with_collection("notes", b"00ff")).unwrap();
//! assert_eq!(got, encode_document(&doc));
//! ```

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use datablinder_docstore::{DocStore, Value};
use datablinder_kvstore::{crc32, read_frames, KvStore};
use datablinder_netsim::{
    BreakerConfig, Channel, CloudService, CrashInjector, LatencyModel, NetError, NodeEvent, NodeFailureInjector,
    NodeFailurePlan, ResilienceConfig, ResilientChannel, RetryPolicy,
};
use datablinder_obs::{ClusterSnapshot, Recorder, Snapshot};
use datablinder_primitives::sha256::Sha256;
use datablinder_sse::encoding::{Reader, Writer};
use datablinder_sse::DocId;
use parking_lot::{Mutex, RwLock};

use crate::cloud::{split_collection, with_collection, CloudEngine};
use crate::cloudproto::{
    is_write_route, BlobList, ChunkRequest, ChunkResponse, DigestRequest, DigestResponse, Idempotent, PaillierSum,
    PaillierSumResponse, RangeSelect, SyncEntries, SyncEntry, TransferBegin, TransferInfo, WalTailRequest, ENTRY_DOC,
    ENTRY_INDEX, ENTRY_KV, IDEM_ROUTE,
};
use crate::durability::{apply_snapshot, snapshot_path, wal_path, DurabilityOptions, WalRecord};
use crate::error::CoreError;
use crate::sync::{doc_key, empty_bucket_digest, export_entries, hash_bytes, mix64, Selector};
use crate::tactics::{decode_ids, encode_ids};
use crate::wire::{decode_document, decode_documents, encode_documents};

/// Default virtual nodes per physical node: enough to spread keys evenly
/// for single-digit cluster sizes without making replica lookups slow.
pub const DEFAULT_VNODES: usize = 16;

/// How long a rejoining node's channel clock is advanced so an open circuit
/// breaker admits its half-open probe immediately.
const REJOIN_COOLDOWN: Duration = Duration::from_millis(50);

/// Snapshot stream chunk size: small enough that a mid-stream crash point
/// exercises the resumable framing, large enough to amortize per-call cost.
const SYNC_CHUNK_LEN: u32 = 16 * 1024;

/// Entries per idempotent `sync/put` envelope during a fill.
const SYNC_PUT_BATCH: usize = 32;

/// Shape of a [`ClusterCloud`]: node count, replication/quorum levels and
/// per-node durability.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Initial physical node count (N); membership may grow or shrink later.
    pub nodes: usize,
    /// Replicas per key (R ≤ N).
    pub replication: usize,
    /// Durable acks required before a write succeeds (W ≤ R).
    pub write_quorum: usize,
    /// Virtual nodes per physical node on the hash ring.
    pub vnodes: usize,
    /// Seed for ring placement and per-node channel jitter; equal seeds
    /// give equal key placement.
    pub seed: u64,
    /// Per-call deadline on every gateway→node hop (`None` = unbounded).
    pub node_deadline: Option<Duration>,
    /// Base directory for per-node durability (`node<i>` subdirectories);
    /// `None` runs every node volatile.
    pub data_dir: Option<PathBuf>,
    /// Per-node auto-snapshot cadence (see
    /// [`DurabilityOptions::snapshot_every`]).
    pub snapshot_every: Option<u64>,
    /// Per-node idempotency dedup-cache bound.
    pub dedup_capacity: Option<usize>,
    /// Run one background anti-entropy pass every this many handled ops
    /// (`None` or `Some(0)` disables the cadence; explicit
    /// [`ClusterCloud::run_anti_entropy`] calls always work).
    pub anti_entropy_every: Option<u64>,
}

impl ClusterConfig {
    /// A volatile cluster: `nodes` nodes, `replication`-way replication,
    /// `write_quorum` acks per write.
    pub fn volatile(nodes: usize, replication: usize, write_quorum: usize, seed: u64) -> Self {
        ClusterConfig {
            nodes,
            replication,
            write_quorum,
            vnodes: DEFAULT_VNODES,
            seed,
            node_deadline: None,
            data_dir: None,
            snapshot_every: None,
            dedup_capacity: None,
            anti_entropy_every: None,
        }
    }

    /// Builder: back every node with a WAL + snapshot under
    /// `dir/node<i>`.
    pub fn durable(mut self, dir: impl Into<PathBuf>) -> Self {
        self.data_dir = Some(dir.into());
        self
    }

    /// Builder: run a background anti-entropy pass every `every` ops.
    pub fn anti_entropy(mut self, every: u64) -> Self {
        self.anti_entropy_every = Some(every);
        self
    }

    fn validate(&self) -> Result<(), CoreError> {
        if self.nodes == 0 {
            return Err(CoreError::UnsupportedOperation("cluster needs at least one node".into()));
        }
        if self.replication == 0 || self.replication > self.nodes {
            return Err(CoreError::UnsupportedOperation(format!(
                "replication {} must be in 1..={}",
                self.replication, self.nodes
            )));
        }
        if self.write_quorum == 0 || self.write_quorum > self.replication {
            return Err(CoreError::UnsupportedOperation(format!(
                "write quorum {} must be in 1..={}",
                self.write_quorum, self.replication
            )));
        }
        Ok(())
    }
}

// ------------------------------------------------------------------- ring

/// The consistent-hash ring over the current member slots: `(hash, slot)`
/// points sorted by hash. A member's vnode points depend only on its slot
/// id and the seed, so adding or removing a member moves the minimal set of
/// key ranges.
#[derive(Debug)]
struct Ring {
    points: Vec<(u64, usize)>,
    replication: usize,
    seed: u64,
}

impl Ring {
    fn new(members: &[usize], vnodes: usize, replication: usize, seed: u64) -> Self {
        let vnodes = vnodes.max(1);
        let mut points = Vec::with_capacity(members.len() * vnodes);
        for &n in members {
            for v in 0..vnodes {
                let point = mix64(seed ^ (((n as u64) << 20) | v as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
                points.push((point, n));
            }
        }
        points.sort_unstable();
        Ring { points, replication, seed }
    }

    /// The first `replication` distinct nodes clockwise from the key's hash.
    fn replicas(&self, key: &[u8]) -> Vec<usize> {
        self.replicas_at(hash_bytes(self.seed, key))
    }

    /// Replica set of an already-hashed position.
    fn replicas_at(&self, h: u64) -> Vec<usize> {
        let start = self.points.partition_point(|&(p, _)| p < h) % self.points.len();
        self.owners_from(start)
    }

    fn owners_from(&self, start: usize) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.replication);
        for i in 0..self.points.len() {
            let (_, node) = self.points[(start + i) % self.points.len()];
            if !out.contains(&node) {
                out.push(node);
                if out.len() == self.replication {
                    break;
                }
            }
        }
        out
    }

    /// The sorted vnode hash points — the Merkle leaf boundaries every
    /// digest request carries, so replicas bucket identically.
    fn boundaries(&self) -> Vec<u64> {
        self.points.iter().map(|&(p, _)| p).collect()
    }

    /// The `(lo, hi]` hash interval of leaf `j` (wraps for leaf 0).
    fn leaf_range(&self, j: usize) -> (u64, u64) {
        let n = self.points.len();
        (self.points[(j + n - 1) % n].0, self.points[j].0)
    }

    /// The nodes owning leaf `j` — the distinct-node walk starting at its
    /// boundary point, identical to [`Ring::replicas_at`] for any hash
    /// inside the leaf.
    fn leaf_owners(&self, j: usize) -> Vec<usize> {
        self.owners_from(j)
    }

    /// Every hash range `node` owns (`owned == true`) or does not own,
    /// merged into maximal `(lo, hi]` intervals. A node owning the whole
    /// circle collapses to one `(p, p)` interval, which range checks treat
    /// as everything.
    fn ranges_of(&self, node: usize, owned: bool) -> Vec<(u64, u64)> {
        let mut segs = Vec::new();
        for j in 0..self.points.len() {
            if self.owners_from(j).contains(&node) == owned {
                segs.push(self.leaf_range(j));
            }
        }
        merge_segments(segs)
    }
}

/// Merges adjacent ring segments (given in leaf order) into maximal
/// intervals, folding the wraparound join between the last and first.
fn merge_segments(segs: Vec<(u64, u64)>) -> Vec<(u64, u64)> {
    let mut out: Vec<(u64, u64)> = Vec::new();
    for seg in segs {
        match out.last_mut() {
            Some(last) if last.1 == seg.0 => last.1 = seg.1,
            _ => out.push(seg),
        }
    }
    if out.len() > 1 {
        let first = out[0];
        if out.last().expect("non-empty").1 == first.0 {
            let last = out.pop().expect("non-empty");
            out[0] = (last.0, first.1);
        }
    }
    out
}

/// The hash ranges `node` owns under `new` but not under `old`: exactly the
/// key ranges it must pull before the new ring serves. Computed over the
/// union of both rings' boundary points, so every returned interval has
/// constant ownership in both rings.
fn gained_ranges(old: &Ring, new: &Ring, node: usize) -> Vec<(u64, u64)> {
    let mut bounds: Vec<u64> = old.boundaries();
    bounds.extend(new.boundaries());
    bounds.sort_unstable();
    bounds.dedup();
    let n = bounds.len();
    let mut segs = Vec::new();
    for j in 0..n {
        let hi = bounds[j];
        let lo = bounds[(j + n - 1) % n];
        if new.replicas_at(hi).contains(&node) && !old.replicas_at(hi).contains(&node) {
            segs.push((lo, hi));
        }
    }
    merge_segments(segs)
}

/// The hash ranges `node` owned under `old` but no longer owns under `new`:
/// what it retires after a handoff.
fn lost_ranges(old: &Ring, new: &Ring, node: usize) -> Vec<(u64, u64)> {
    gained_ranges(new, old, node)
}

// ------------------------------------------------------------------- nodes

/// One cluster member: an optional engine (present while the node is up)
/// plus its durable home on disk.
struct NodeState {
    dir: Option<PathBuf>,
    engine: RwLock<Option<CloudEngine>>,
    alive: AtomicBool,
    /// The node's own recorder, labeled `node{slot}`. It outlives engine
    /// rebuilds (kill/rejoin), so per-node counters survive restarts, and
    /// it is what `obs/snapshot` federation reads.
    obs: Recorder,
}

impl NodeState {
    fn is_alive(&self) -> bool {
        self.alive.load(Ordering::SeqCst)
    }

    /// Calls the engine regardless of the `alive` flag — the resync path
    /// replays into a node that is not yet serving.
    fn engine_call(&self, route: &str, payload: &[u8]) -> Result<Vec<u8>, NetError> {
        match &*self.engine.read() {
            Some(engine) => engine.handle(route, payload),
            None => Err(NetError::Timeout),
        }
    }
}

impl CloudService for NodeState {
    fn handle(&self, route: &str, payload: &[u8]) -> Result<Vec<u8>, NetError> {
        if !self.is_alive() {
            return Err(NetError::Timeout);
        }
        self.engine_call(route, payload)
    }
}

/// The live view of the cluster: the ring, the member slots it covers, and
/// the per-slot node state. Slots are never reused — a removed member's
/// slot stays allocated (dead) so surviving slot ids keep their meaning —
/// and the whole view swaps atomically under the topology lock during a
/// membership change.
struct Topology {
    ring: Ring,
    members: Vec<usize>,
    nodes: Vec<Arc<NodeState>>,
    channels: Vec<ResilientChannel>,
    node_ops: Vec<String>,
    node_errors: Vec<String>,
}

impl Topology {
    fn alive(&self, i: usize) -> bool {
        self.nodes[i].is_alive()
    }
}

// ------------------------------------------------------------------ target

/// Where a write lands: one key's replica set, or every node.
enum WriteTarget {
    Key(Vec<u8>),
    Broadcast,
}

/// The id prefix of an [`crate::wire::encode_document`] body (the id is its
/// first length-prefixed field — by design, so routing never decodes the
/// whole document).
fn encoded_doc_id(rest: &[u8]) -> Result<&[u8], CoreError> {
    let Some(header) = rest.get(..4) else {
        return Err(CoreError::Wire("doc id header"));
    };
    let len = u32::from_be_bytes(header.try_into().expect("4-byte slice")) as usize;
    rest.get(4..4 + len).ok_or(CoreError::Wire("doc id body"))
}

/// Derives the idempotency token of batch item `idx` from the enclosing
/// envelope's token: deterministic, so a retried batch re-derives the same
/// per-item tokens and every replica's dedup cache absorbs the replay even
/// when the retry reaches a different subset of nodes.
fn sub_token(token: &[u8; 16], idx: u64) -> [u8; 16] {
    let mut h = Sha256::new();
    h.update(token);
    h.update(&idx.to_be_bytes());
    h.finalize()[..16].try_into().expect("16-byte prefix")
}

/// The dedup/digest identity of a sync entry: `kind ‖ key`.
fn entry_key(e: &SyncEntry) -> Vec<u8> {
    let mut k = Vec::with_capacity(1 + e.key.len());
    k.push(e.kind);
    k.extend_from_slice(&e.key);
    k
}

fn remote(e: CoreError) -> NetError {
    NetError::Remote(e.to_string())
}

fn is_not_found(err: &NetError) -> bool {
    matches!(err, NetError::Remote(m) if m.starts_with("document not found"))
}

/// Whether a peer's WAL no longer starts at record 1 because a snapshot
/// compacted it — the condition under which a *failed* snapshot pull can
/// leave a resync gap.
fn peer_wal_compacted(dir: &Path) -> bool {
    if !snapshot_path(dir).exists() {
        return false;
    }
    let Ok(scan) = read_frames(&wal_path(dir)) else { return true };
    scan.frames.first().and_then(|b| WalRecord::decode(b).ok()).is_none_or(|r| r.seq > 1)
}

/// Why a state pull from one peer failed.
enum PullFailure {
    /// The peer went away or served a corrupt stream; other peers may still
    /// cover the same ranges.
    Peer,
    /// The pulling node itself failed to apply state; the whole resync
    /// aborts and the node stays down.
    Local(CoreError),
}

/// The outcome of one anti-entropy pass.
#[derive(Debug, Default, Clone, Copy)]
pub struct AntiEntropyRound {
    /// Keys whose replicas disagreed (distinct values, or present/absent).
    pub divergent_keys: u64,
    /// Repair writes issued (one per lagging replica per divergent key).
    pub repairs: u64,
    /// Bytes of key+value shipped in repair writes.
    pub repaired_bytes: u64,
    /// Out-of-place leaves retired from nodes that do not own them.
    pub strays_retired: u64,
}

impl AntiEntropyRound {
    /// Whether the pass found nothing to fix — replicas were already
    /// converged.
    pub fn converged(&self) -> bool {
        self.divergent_keys == 0 && self.strays_retired == 0
    }
}

/// Majority vote over the replica versions of one key. Present beats
/// absent on ties (an acked write survives a minority of missed deletes),
/// then the lexicographically smallest value wins so repair is
/// deterministic. Index definitions are additive: the union of advertised
/// fields wins.
fn vote_winner(kind: u8, key: &[u8], values: &[Option<&[u8]>]) -> Option<SyncEntry> {
    if kind == ENTRY_INDEX {
        let mut fields: BTreeSet<Vec<u8>> = BTreeSet::new();
        for v in values.iter().flatten() {
            if let Ok(list) = BlobList::decode(v) {
                fields.extend(list.items);
            }
        }
        if fields.is_empty() {
            return None;
        }
        let value = BlobList { items: fields.into_iter().collect() }.encode();
        return Some(SyncEntry { kind, key: key.to_vec(), value });
    }
    let mut counts: BTreeMap<Option<&[u8]>, usize> = BTreeMap::new();
    for v in values {
        *counts.entry(*v).or_default() += 1;
    }
    let (winner, _) = counts
        .iter()
        .max_by(|(va, ca), (vb, cb)| {
            ca.cmp(cb).then(va.is_some().cmp(&vb.is_some())).then_with(|| match (va, vb) {
                (Some(a), Some(b)) => b.cmp(a),
                _ => std::cmp::Ordering::Equal,
            })
        })
        .expect("at least one version");
    winner.map(|v| SyncEntry { kind, key: key.to_vec(), value: v.to_vec() })
}

/// The entry that erases a key on replicas holding a minority leftover
/// (`None` for index definitions, which only ever grow).
fn tombstone(kind: u8, key: &[u8]) -> Option<SyncEntry> {
    match kind {
        ENTRY_DOC => Some(SyncEntry { kind, key: key.to_vec(), value: Vec::new() }),
        ENTRY_KV => Some(SyncEntry { kind, key: key.to_vec(), value: BlobList { items: Vec::new() }.encode() }),
        _ => None,
    }
}

// ----------------------------------------------------------------- cluster

/// N replicated cloud nodes behind one [`CloudService`] facade.
///
/// Construct with [`ClusterCloud::new`], optionally attach a
/// [`NodeFailurePlan`] and a [`Recorder`], then wrap in a
/// [`Channel`](datablinder_netsim::Channel) via `Channel::from_arc`.
pub struct ClusterCloud {
    cfg: ClusterConfig,
    topo: RwLock<Topology>,
    injector: Option<Arc<NodeFailureInjector>>,
    /// Crash injectors to arm on a node's *next* (re)join (tests: crash a
    /// node again while it is resyncing or joining).
    rejoin_crash: Mutex<HashMap<usize, Arc<CrashInjector>>>,
    /// Serializes membership transitions (kill/rejoin/add/remove/resync) so
    /// an op that drains several injector events applies them atomically.
    membership: Mutex<()>,
    obs: Recorder,
    ops: AtomicU64,
    transfer_seq: AtomicU64,
    kills: AtomicU64,
    rejoins: AtomicU64,
    adds: AtomicU64,
    removes: AtomicU64,
    read_repairs: AtomicU64,
    resync_replayed: AtomicU64,
    resync_filled: AtomicU64,
    resync_wal_gaps: AtomicU64,
    ae_rounds: AtomicU64,
    ae_divergent: AtomicU64,
    ae_repaired_bytes: AtomicU64,
}

impl ClusterCloud {
    /// Builds the cluster, opening every node (durably when
    /// [`ClusterConfig::data_dir`] is set).
    ///
    /// # Errors
    ///
    /// [`CoreError::UnsupportedOperation`] on an invalid config; I/O and
    /// recovery failures from durable node opens.
    pub fn new(cfg: ClusterConfig) -> Result<Self, CoreError> {
        cfg.validate()?;
        let members: Vec<usize> = (0..cfg.nodes).collect();
        let ring = Ring::new(&members, cfg.vnodes, cfg.replication, cfg.seed);
        let mut nodes = Vec::with_capacity(cfg.nodes);
        let mut channels = Vec::with_capacity(cfg.nodes);
        for i in 0..cfg.nodes {
            let dir = cfg.data_dir.as_ref().map(|base| base.join(format!("node{i}")));
            let mut engine = match &dir {
                Some(d) => CloudEngine::open_durable_with(
                    d,
                    DurabilityOptions {
                        snapshot_every: cfg.snapshot_every,
                        dedup_capacity: cfg.dedup_capacity,
                        crash: None,
                    },
                )?,
                None => CloudEngine::new(),
            };
            let obs = node_recorder(i);
            engine.set_recorder(obs.clone());
            let node =
                Arc::new(NodeState { dir, engine: RwLock::new(Some(engine)), alive: AtomicBool::new(true), obs });
            channels.push(make_channel(&cfg, &node, i));
            nodes.push(node);
        }
        let node_ops = (0..cfg.nodes).map(|i| format!("cluster.node.{i}.ops")).collect();
        let node_errors = (0..cfg.nodes).map(|i| format!("cluster.node.{i}.errors")).collect();
        let topo = Topology { ring, members, nodes, channels, node_ops, node_errors };
        Ok(ClusterCloud {
            cfg,
            topo: RwLock::new(topo),
            injector: None,
            rejoin_crash: Mutex::new(HashMap::new()),
            membership: Mutex::new(()),
            obs: Recorder::default(),
            ops: AtomicU64::new(0),
            transfer_seq: AtomicU64::new(0),
            kills: AtomicU64::new(0),
            rejoins: AtomicU64::new(0),
            adds: AtomicU64::new(0),
            removes: AtomicU64::new(0),
            read_repairs: AtomicU64::new(0),
            resync_replayed: AtomicU64::new(0),
            resync_filled: AtomicU64::new(0),
            resync_wal_gaps: AtomicU64::new(0),
            ae_rounds: AtomicU64::new(0),
            ae_divergent: AtomicU64::new(0),
            ae_repaired_bytes: AtomicU64::new(0),
        })
    }

    /// Arms a deterministic kill/rejoin/add/remove schedule, ticked once
    /// per handled cluster operation.
    pub fn set_failure_plan(&mut self, plan: NodeFailurePlan) {
        self.injector = Some(Arc::new(NodeFailureInjector::new(plan)));
    }

    /// The armed failure injector, if any (inspect progress from tests).
    pub fn failure_injector(&self) -> Option<&Arc<NodeFailureInjector>> {
        self.injector.as_ref()
    }

    /// Arms a crash injector for slot `idx`'s *next* rejoin or join: the
    /// node's engine (re)opens with it, so the snapshot pull or tail replay
    /// itself can die mid-transfer (satellite: durability under membership
    /// change).
    pub fn arm_rejoin_crash(&self, idx: usize, injector: Arc<CrashInjector>) {
        self.rejoin_crash.lock().insert(idx, injector);
    }

    /// Attaches an observability recorder for cluster-level counters,
    /// quorum-latency histograms and per-node op/error counts. Also wires
    /// the whole cluster for tracing and federation: the coordinator's
    /// node channels record their retry/breaker spans here, and every
    /// member's own recorder is switched to the same enabled state so
    /// [`ClusterCloud::snapshot`] has per-node data to merge.
    pub fn set_recorder(&mut self, recorder: Recorder) {
        self.obs = recorder;
        if self.obs.label().is_none() {
            self.obs.set_label("cluster");
        }
        let mut topo = self.topo.write();
        self.obs.gauge_set("cluster.nodes", topo.members.len() as i64);
        self.obs.gauge_set("cluster.ring.vnodes", topo.ring.points.len() as i64);
        for &i in &topo.members {
            self.obs.gauge_set(&format!("cluster.node.{i}.alive"), i64::from(topo.alive(i)));
        }
        for channel in &mut topo.channels {
            channel.set_recorder(self.obs.clone());
        }
        for node in &topo.nodes {
            node.obs.set_enabled(self.obs.is_enabled());
        }
    }

    /// Federates observability across the cluster: the coordinator's own
    /// snapshot plus every live member's, pulled over the node channels via
    /// the `obs/snapshot` route and merged into one [`ClusterSnapshot`].
    /// Dead or unreachable members are skipped (their slots reappear after
    /// a rejoin, counters intact — node recorders outlive engine rebuilds).
    pub fn snapshot(&self) -> ClusterSnapshot {
        let topo = self.topo.read();
        let mut nodes = vec![self.obs.snapshot()];
        for &m in &topo.members {
            if !topo.alive(m) {
                continue;
            }
            let Ok(resp) = topo.channels[m].call("obs/snapshot", b"") else { continue };
            let Ok(text) = String::from_utf8(resp) else { continue };
            if let Ok(snap) = Snapshot::from_json(&text) {
                nodes.push(snap);
            }
        }
        ClusterSnapshot::federate(nodes)
    }

    /// The cluster's configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.cfg
    }

    /// The current member slots, in slot order.
    pub fn members(&self) -> Vec<usize> {
        self.topo.read().members.clone()
    }

    /// Whether node `idx` is currently serving.
    pub fn node_alive(&self, idx: usize) -> bool {
        self.topo.read().nodes[idx].is_alive()
    }

    /// Runs `f` against node `idx`'s engine (`None` while the node is down).
    pub fn with_node_engine<T>(&self, idx: usize, f: impl FnOnce(&CloudEngine) -> T) -> Option<T> {
        let topo = self.topo.read();
        let guard = topo.nodes[idx].engine.read();
        guard.as_ref().map(f)
    }

    /// The replica set of one document key, in ring (preference) order.
    pub fn doc_replicas(&self, collection: &str, id: &str) -> Vec<usize> {
        self.topo.read().ring.replicas(&doc_key(collection, id.as_bytes()))
    }

    /// Nodes killed so far (events + observed crash injectors).
    pub fn kills(&self) -> u64 {
        self.kills.load(Ordering::Relaxed)
    }

    /// Successful rejoins so far.
    pub fn rejoins(&self) -> u64 {
        self.rejoins.load(Ordering::Relaxed)
    }

    /// Members added so far.
    pub fn nodes_added(&self) -> u64 {
        self.adds.load(Ordering::Relaxed)
    }

    /// Members removed so far.
    pub fn nodes_removed(&self) -> u64 {
        self.removes.load(Ordering::Relaxed)
    }

    /// Divergent or missing replicas repaired by reads.
    pub fn read_repairs(&self) -> u64 {
        self.read_repairs.load(Ordering::Relaxed)
    }

    /// WAL tail records replayed into rejoining nodes from their peers.
    pub fn resync_replayed(&self) -> u64 {
        self.resync_replayed.load(Ordering::Relaxed)
    }

    /// Entries installed into rejoining nodes from shipped peer snapshots.
    pub fn resync_filled(&self) -> u64 {
        self.resync_filled.load(Ordering::Relaxed)
    }

    /// Resyncs that could not cover a peer's compacted history: the peer
    /// had compacted its WAL *and* its snapshot pull failed. Snapshot
    /// shipping keeps this at zero in healthy clusters; anti-entropy closes
    /// any remaining gap.
    pub fn resync_wal_gaps(&self) -> u64 {
        self.resync_wal_gaps.load(Ordering::Relaxed)
    }

    /// Anti-entropy passes completed.
    pub fn anti_entropy_rounds(&self) -> u64 {
        self.ae_rounds.load(Ordering::Relaxed)
    }

    /// Divergent keys found across all anti-entropy passes.
    pub fn anti_entropy_divergent(&self) -> u64 {
        self.ae_divergent.load(Ordering::Relaxed)
    }

    /// Bytes shipped in anti-entropy repair writes.
    pub fn anti_entropy_repaired_bytes(&self) -> u64 {
        self.ae_repaired_bytes.load(Ordering::Relaxed)
    }

    /// Marks node `idx` down and drops its engine (disk state stays).
    pub fn kill_node(&self, idx: usize) {
        let _guard = self.membership.lock();
        let topo = self.topo.read();
        if idx < topo.nodes.len() {
            self.kill_in(&topo, idx);
        }
    }

    /// Restarts node `idx` from its own disk, resyncs it from live peers
    /// (snapshot stream + WAL tail) and marks it serving. Returns the
    /// number of replayed tail records.
    ///
    /// # Errors
    ///
    /// Recovery/I-O failures, [`CoreError::UnsupportedOperation`] for a
    /// slot that is not a member, or [`CoreError::Storage`] when the node
    /// dies again mid-resync (it stays down; a later rejoin retries).
    pub fn rejoin_node(&self, idx: usize) -> Result<u64, CoreError> {
        let _guard = self.membership.lock();
        let topo = self.topo.read();
        if !topo.members.contains(&idx) {
            return Err(CoreError::UnsupportedOperation(format!("node {idx} is not a cluster member")));
        }
        self.rejoin_in(&topo, idx)
    }

    fn kill_in(&self, topo: &Topology, idx: usize) {
        let node = &topo.nodes[idx];
        if !node.is_alive() && node.engine.read().is_none() {
            return;
        }
        node.alive.store(false, Ordering::SeqCst);
        // Dropping the engine models the process dying: in-memory state is
        // gone; `journal` only acks flushed records, so every acknowledged
        // write is already on disk.
        *node.engine.write() = None;
        self.kills.fetch_add(1, Ordering::Relaxed);
        self.obs.count("cluster.kill", 1);
        self.obs.gauge_set(&format!("cluster.node.{idx}.alive"), 0);
    }

    fn rejoin_in(&self, topo: &Topology, idx: usize) -> Result<u64, CoreError> {
        let node = &topo.nodes[idx];
        let mut engine = match &node.dir {
            Some(dir) => {
                let crash = self.rejoin_crash.lock().remove(&idx);
                CloudEngine::open_durable_with(
                    dir,
                    DurabilityOptions {
                        snapshot_every: self.cfg.snapshot_every,
                        dedup_capacity: self.cfg.dedup_capacity,
                        crash,
                    },
                )?
            }
            None => CloudEngine::new(),
        };
        // Re-attach the slot's long-lived recorder so counters and spans
        // accumulated before the crash stay in the same federated view.
        engine.set_recorder(node.obs.clone());
        *node.engine.write() = Some(engine);
        match self.resync_in(topo, idx) {
            Ok((filled, replayed)) => {
                node.alive.store(true, Ordering::SeqCst);
                // Let an open breaker admit the next call as its half-open
                // probe instead of fast-failing through the cooldown.
                topo.channels[idx].advance(REJOIN_COOLDOWN);
                self.rejoins.fetch_add(1, Ordering::Relaxed);
                self.obs.count("cluster.rejoin", 1);
                self.obs.count("cluster.resync.replayed", replayed);
                self.obs.count("cluster.resync.filled", filled);
                self.obs.gauge_set(&format!("cluster.node.{idx}.alive"), 1);
                Ok(replayed)
            }
            Err(e) => {
                // Died again mid-resync: stay down, disk keeps whatever the
                // crash point left (recovery truncates a torn tail on the
                // next rejoin).
                *node.engine.write() = None;
                Err(e)
            }
        }
    }
}

/// A per-node recorder, labeled by slot. Starts disabled (near-zero cost)
/// until [`ClusterCloud::set_recorder`] turns cluster observability on.
fn node_recorder(slot: usize) -> Recorder {
    let obs = Recorder::disabled();
    obs.set_label(&format!("node{slot}"));
    obs
}

fn make_channel(cfg: &ClusterConfig, node: &Arc<NodeState>, slot: usize) -> ResilientChannel {
    let channel = Channel::from_arc(node.clone(), LatencyModel::instant());
    ResilientChannel::new(
        channel,
        ResilienceConfig {
            retry: RetryPolicy {
                max_attempts: 2,
                base_backoff: Duration::from_micros(100),
                max_backoff: Duration::from_millis(5),
                jitter: 0.5,
                retry_remote: false,
            },
            breaker: BreakerConfig { failure_threshold: 4, cooldown: REJOIN_COOLDOWN },
            deadline: cfg.node_deadline,
            seed: cfg.seed ^ 0xC10D_5EED ^ ((slot as u64) << 48),
        },
    )
}

// ------------------------------------------------- resync and membership

impl ClusterCloud {
    /// Brings a reopened node back to its owed state: pull every live
    /// durable peer's snapshot + WAL tail (fill-missing semantics — local
    /// state wins ties, the anti-entropy majority arbitrates divergence),
    /// then retire whatever the node holds outside its owned ranges.
    fn resync_in(&self, topo: &Topology, idx: usize) -> Result<(u64, u64), CoreError> {
        // Background work: detach from whatever client operation triggered
        // the rejoin so the resync gets its own root trace.
        let mut root = self.obs.span_root("cluster.resync");
        root.set_detail(&format!("node{idx}"));
        let out = self.resync_body(topo, idx);
        if let Err(e) = &out {
            root.fail();
            root.set_detail(&e.to_string());
        }
        out
    }

    fn resync_body(&self, topo: &Topology, idx: usize) -> Result<(u64, u64), CoreError> {
        let node = &topo.nodes[idx];
        let owned = topo.ring.ranges_of(idx, true);
        let unowned = topo.ring.ranges_of(idx, false);
        let mut filled = 0u64;
        let mut replayed = 0u64;
        if let Some(own_dir) = &node.dir {
            // Records this node already journaled itself are the "already
            // durable" watermark: the tail replay skips them.
            let mut seen: HashSet<[u8; 16]> = HashSet::new();
            if let Ok(scan) = read_frames(&wal_path(own_dir)) {
                for body in &scan.frames {
                    if let Ok(rec) = WalRecord::decode(body) {
                        seen.insert(rec.id);
                    }
                }
            }
            for &peer in &topo.members {
                if peer == idx || !topo.alive(peer) {
                    continue;
                }
                let Some(peer_dir) = &topo.nodes[peer].dir else { continue };
                match self.pull_peer_state(topo, idx, peer, &owned, &mut seen) {
                    Ok((f, r)) => {
                        filled += f;
                        replayed += r;
                    }
                    Err(PullFailure::Peer) => {
                        self.obs.count("cluster.resync.peer_failed", 1);
                        if peer_wal_compacted(peer_dir) {
                            // Snapshot shipping normally closes the
                            // compaction gap; only a failed pull from a
                            // compacted peer can leave one open.
                            self.resync_wal_gaps.fetch_add(1, Ordering::Relaxed);
                            self.obs.count("cluster.resync.wal_gap", 1);
                        }
                    }
                    Err(PullFailure::Local(e)) => return Err(e),
                }
            }
        } else {
            // Volatile node: no WAL on either side — refill owned ranges
            // directly from live peers' exported entries.
            let sel = RangeSelect { seed: self.cfg.seed, ranges: owned.clone(), include_broadcast: true };
            let payload = sel.encode();
            for &peer in &topo.members {
                if peer == idx || !topo.alive(peer) {
                    continue;
                }
                let Ok(resp) = topo.channels[peer].call("sync/entries", &payload) else {
                    self.obs.count("cluster.resync.peer_failed", 1);
                    continue;
                };
                let Ok(entries) = SyncEntries::decode(&resp) else {
                    self.obs.count("cluster.resync.peer_failed", 1);
                    continue;
                };
                filled += self.fill_missing(node, &entries.entries, &[peer as u8])?;
            }
        }
        if !unowned.is_empty() {
            let sel = RangeSelect { seed: self.cfg.seed, ranges: unowned, include_broadcast: false };
            node.engine_call("sync/retire", &sel.encode())
                .map_err(|e| CoreError::Storage(format!("node {idx} failed retiring unowned ranges: {e}")))?;
        }
        self.resync_replayed.fetch_add(replayed, Ordering::Relaxed);
        self.resync_filled.fetch_add(filled, Ordering::Relaxed);
        Ok((filled, replayed))
    }

    /// Pulls one peer's state into node `idx`: stream its pinned snapshot,
    /// install the owned subset the node is missing, then replay the
    /// peer's WAL tail above the snapshot sequence — eliminating the gap a
    /// compacted WAL used to leave.
    fn pull_peer_state(
        &self,
        topo: &Topology,
        idx: usize,
        peer: usize,
        owned: &[(u64, u64)],
        seen: &mut HashSet<[u8; 16]>,
    ) -> Result<(u64, u64), PullFailure> {
        let node = &topo.nodes[idx];
        let token = self.transfer_token();
        let body = self.stream_snapshot(topo, peer, token)?;
        let mut filled = 0u64;
        let mut snapshot_seq = 0u64;
        if !body.is_empty() {
            let kv = KvStore::new();
            let docs = DocStore::new();
            snapshot_seq = apply_snapshot(&kv, &docs, &body).map_err(|_| PullFailure::Peer)?;
            let sel = Selector::Ranges { ranges: owned, include_broadcast: true };
            let entries: Vec<SyncEntry> =
                export_entries(&kv, &docs, self.cfg.seed, &sel).into_iter().map(|(e, _)| e).collect();
            filled = self.fill_missing(node, &entries, &token).map_err(PullFailure::Local)?;
        }
        let tail = topo.channels[peer]
            .call("sync/tail", &WalTailRequest { from_seq: snapshot_seq }.encode())
            .map_err(|_| PullFailure::Peer)?;
        let list = BlobList::decode(&tail).map_err(|_| PullFailure::Peer)?;
        let mut replayed = 0u64;
        for item in &list.items {
            let Ok(rec) = WalRecord::decode(item) else { continue };
            // Sync-apply records are a peer's own resync history, not
            // client writes: every acked client write is carried as a
            // normal record by at least W original ackers.
            if seen.contains(&rec.id)
                || rec.route.starts_with("sync/")
                || !targets_node(topo, &rec.route, &rec.payload, idx)
            {
                continue;
            }
            seen.insert(rec.id);
            match node.engine_call(&rec.route, &rec.payload) {
                // Application errors are recorded history (e.g. a
                // duplicate insert whose first application was compacted
                // out of our own WAL) — not resync failures.
                Ok(_) | Err(NetError::Remote(_)) => replayed += 1,
                Err(_) => {
                    return Err(PullFailure::Local(CoreError::Storage(format!("node {idx} crashed during resync"))));
                }
            }
        }
        Ok((filled, replayed))
    }

    /// Streams a peer's pinned snapshot body in CRC-framed chunks, resuming
    /// each chunk once on a torn frame, and verifies the whole-body CRC
    /// advertised at `sync/begin`.
    fn stream_snapshot(&self, topo: &Topology, peer: usize, token: [u8; 16]) -> Result<Vec<u8>, PullFailure> {
        let begin =
            topo.channels[peer].call("sync/begin", &TransferBegin { token }.encode()).map_err(|_| PullFailure::Peer)?;
        let info = TransferInfo::decode(&begin).map_err(|_| PullFailure::Peer)?;
        let mut body = Vec::with_capacity(info.total_len as usize);
        while (body.len() as u64) < info.total_len {
            let req = ChunkRequest { token, offset: body.len() as u64, max_len: SYNC_CHUNK_LEN };
            let chunk = self.fetch_chunk(topo, peer, &req)?;
            body.extend_from_slice(&chunk);
        }
        let _ = topo.channels[peer].call("sync/end", &TransferBegin { token }.encode());
        if crc32(&body) != info.crc {
            return Err(PullFailure::Peer);
        }
        Ok(body)
    }

    /// One chunk fetch with one resume retry: the transfer stays pinned
    /// peer-side, so the retry picks back up at the same offset.
    fn fetch_chunk(&self, topo: &Topology, peer: usize, req: &ChunkRequest) -> Result<Vec<u8>, PullFailure> {
        let mut attempts = 0;
        loop {
            attempts += 1;
            let outcome = topo.channels[peer]
                .call("sync/chunk", &req.encode())
                .map_err(|_| ())
                .and_then(|resp| ChunkResponse::decode(&resp).map_err(|_| ()))
                .and_then(|c| {
                    if c.offset != req.offset || c.data.is_empty() || crc32(&c.data) != c.crc {
                        Err(())
                    } else {
                        Ok(c.data)
                    }
                });
            match outcome {
                Ok(data) => return Ok(data),
                Err(()) if attempts == 1 => self.obs.count("cluster.resync.chunk_retry", 1),
                Err(()) => return Err(PullFailure::Peer),
            }
        }
    }

    /// Installs the subset of `entries` the node does not already hold:
    /// local keys keep their local value (the anti-entropy majority vote
    /// arbitrates divergence later), missing keys are applied through the
    /// idempotent `sync/put` envelope so a torn fill replays exactly once.
    fn fill_missing(&self, node: &NodeState, entries: &[SyncEntry], salt: &[u8]) -> Result<u64, CoreError> {
        if entries.is_empty() {
            return Ok(0);
        }
        let whole = RangeSelect { seed: self.cfg.seed, ranges: vec![(0, 0)], include_broadcast: true };
        let have: HashSet<Vec<u8>> = node
            .engine_call("sync/entries", &whole.encode())
            .ok()
            .and_then(|resp| SyncEntries::decode(&resp).ok())
            .map(|local| local.entries.iter().map(entry_key).collect())
            .unwrap_or_default();
        let missing: Vec<&SyncEntry> = entries.iter().filter(|e| !have.contains(&entry_key(e))).collect();
        let mut applied = 0u64;
        for (batch_idx, batch) in missing.chunks(SYNC_PUT_BATCH).enumerate() {
            let put = SyncEntries { entries: batch.iter().map(|&e| e.clone()).collect() };
            let payload = put.encode();
            let mut h = Sha256::new();
            h.update(b"cluster-fill");
            h.update(salt);
            h.update(&(batch_idx as u64).to_be_bytes());
            h.update(&payload);
            let token: [u8; 16] = h.finalize()[..16].try_into().expect("16-byte prefix");
            let env = Idempotent { token, route: "sync/put".into(), payload };
            match node.engine_call(IDEM_ROUTE, &env.encode()) {
                Ok(_) => applied += batch.len() as u64,
                Err(NetError::Remote(m)) => {
                    return Err(CoreError::Storage(format!("sync/put rejected during fill: {m}")));
                }
                Err(_) => return Err(CoreError::Storage("node crashed applying synced entries".into())),
            }
        }
        Ok(applied)
    }

    fn transfer_token(&self) -> [u8; 16] {
        let mut h = Sha256::new();
        h.update(b"cluster-transfer");
        h.update(&self.cfg.seed.to_be_bytes());
        h.update(&self.transfer_seq.fetch_add(1, Ordering::Relaxed).to_be_bytes());
        h.finalize()[..16].try_into().expect("16-byte prefix")
    }

    /// Adds a member on a fresh slot: the new node pulls exactly the key
    /// ranges it gains from the current owners *before* the new ring
    /// serves, then the members that lost those ranges retire them.
    /// Returns the new slot id.
    ///
    /// Operations racing the change observe a typed
    /// [`NetError::Unavailable`] while the topology lock is write-held.
    ///
    /// # Errors
    ///
    /// I/O failures opening the node, or [`CoreError::Storage`] when the
    /// handoff pull dies: the ring stays unchanged and the slot is not
    /// installed (its partial on-disk state is recovered and reused by the
    /// next attempt).
    pub fn add_node(&self) -> Result<usize, CoreError> {
        let _guard = self.membership.lock();
        let mut topo = self.topo.write();
        let slot = topo.nodes.len();
        let dir = self.cfg.data_dir.as_ref().map(|base| base.join(format!("node{slot}")));
        let crash = self.rejoin_crash.lock().remove(&slot);
        let mut engine = match &dir {
            Some(d) => CloudEngine::open_durable_with(
                d,
                DurabilityOptions {
                    snapshot_every: self.cfg.snapshot_every,
                    dedup_capacity: self.cfg.dedup_capacity,
                    crash,
                },
            )?,
            None => CloudEngine::new(),
        };
        let obs = node_recorder(slot);
        obs.set_enabled(self.obs.is_enabled());
        engine.set_recorder(obs.clone());
        let node = Arc::new(NodeState { dir, engine: RwLock::new(Some(engine)), alive: AtomicBool::new(false), obs });
        let mut new_members = topo.members.clone();
        new_members.push(slot);
        let new_ring = Ring::new(&new_members, self.cfg.vnodes, self.cfg.replication, self.cfg.seed);
        let gained = gained_ranges(&topo.ring, &new_ring, slot);
        self.pull_ranges_into(&topo, &node, None, &gained, true)?;
        for m in topo.members.clone() {
            let lost = lost_ranges(&topo.ring, &new_ring, m);
            if lost.is_empty() || !topo.alive(m) {
                continue;
            }
            let sel = RangeSelect { seed: self.cfg.seed, ranges: lost, include_broadcast: false };
            if topo.nodes[m].engine_call("sync/retire", &sel.encode()).is_err() {
                self.kill_in(&topo, m);
            }
        }
        node.alive.store(true, Ordering::SeqCst);
        topo.channels.push(make_channel(&self.cfg, &node, slot).with_recorder(self.obs.clone()));
        topo.node_ops.push(format!("cluster.node.{slot}.ops"));
        topo.node_errors.push(format!("cluster.node.{slot}.errors"));
        topo.nodes.push(node);
        topo.members = new_members;
        topo.ring = new_ring;
        self.adds.fetch_add(1, Ordering::Relaxed);
        self.obs.count("cluster.node_added", 1);
        self.obs.gauge_set("cluster.nodes", topo.members.len() as i64);
        self.obs.gauge_set("cluster.ring.vnodes", topo.ring.points.len() as i64);
        self.obs.gauge_set(&format!("cluster.node.{slot}.alive"), 1);
        Ok(slot)
    }

    /// Removes member `idx`: every remaining live member first pulls the
    /// ranges it inherits (the leaving node is still a source), then the
    /// slot is decommissioned and the ring forgets it.
    ///
    /// # Errors
    ///
    /// [`CoreError::UnsupportedOperation`] for a non-member or when the
    /// removal would leave fewer members than the replication factor;
    /// [`CoreError::Storage`] when a handoff pull dies (the ring stays
    /// unchanged).
    pub fn remove_node(&self, idx: usize) -> Result<(), CoreError> {
        let _guard = self.membership.lock();
        let mut topo = self.topo.write();
        if !topo.members.contains(&idx) {
            return Err(CoreError::UnsupportedOperation(format!("node {idx} is not a cluster member")));
        }
        if topo.members.len() <= self.cfg.replication {
            return Err(CoreError::UnsupportedOperation(format!(
                "removing node {idx} would leave {} members with {}-way replication",
                topo.members.len() - 1,
                self.cfg.replication
            )));
        }
        let new_members: Vec<usize> = topo.members.iter().copied().filter(|&m| m != idx).collect();
        let new_ring = Ring::new(&new_members, self.cfg.vnodes, self.cfg.replication, self.cfg.seed);
        for &g in &new_members {
            if !topo.alive(g) {
                // A dead member inherits its new ranges on rejoin, when its
                // resync consults the post-removal ring.
                continue;
            }
            let gained = gained_ranges(&topo.ring, &new_ring, g);
            if gained.is_empty() {
                continue;
            }
            if let Err(e) = self.pull_ranges_into(&topo, &topo.nodes[g], Some(g), &gained, false) {
                self.kill_in(&topo, g);
                return Err(e);
            }
        }
        // Decommission: the slot stays allocated (dead) so surviving slot
        // ids keep their meaning; only the ring forgets it.
        let node = &topo.nodes[idx];
        node.alive.store(false, Ordering::SeqCst);
        *node.engine.write() = None;
        self.obs.gauge_set(&format!("cluster.node.{idx}.alive"), 0);
        topo.members = new_members;
        topo.ring = new_ring;
        self.removes.fetch_add(1, Ordering::Relaxed);
        self.obs.count("cluster.node_removed", 1);
        self.obs.gauge_set("cluster.nodes", topo.members.len() as i64);
        self.obs.gauge_set("cluster.ring.vnodes", topo.ring.points.len() as i64);
        Ok(())
    }

    /// Pulls `ranges` into `target` from every live member (minus
    /// `exclude`, the target's own slot when it is already a member).
    /// Peer failures skip that peer — another replica covers the range —
    /// but at least one peer must source the handoff.
    fn pull_ranges_into(
        &self,
        topo: &Topology,
        target: &NodeState,
        exclude: Option<usize>,
        ranges: &[(u64, u64)],
        include_broadcast: bool,
    ) -> Result<(), CoreError> {
        if ranges.is_empty() {
            return Ok(());
        }
        let salt = self.transfer_token();
        let sel = RangeSelect { seed: self.cfg.seed, ranges: ranges.to_vec(), include_broadcast };
        let payload = sel.encode();
        let mut sourced = false;
        for &peer in &topo.members {
            if Some(peer) == exclude || !topo.alive(peer) {
                continue;
            }
            let resp = match topo.channels[peer].call("sync/entries", &payload) {
                Ok(r) => r,
                Err(_) => {
                    self.obs.count("cluster.handoff.peer_failed", 1);
                    continue;
                }
            };
            let Ok(entries) = SyncEntries::decode(&resp) else {
                self.obs.count("cluster.handoff.peer_failed", 1);
                continue;
            };
            self.fill_missing(target, &entries.entries, &salt)?;
            sourced = true;
        }
        if !sourced {
            return Err(CoreError::Storage("no live peer could source the handoff ranges".into()));
        }
        Ok(())
    }
}

// ------------------------------------------------------------ anti-entropy

impl ClusterCloud {
    /// One anti-entropy pass: every live member reports its per-leaf
    /// Merkle digests over the ring's vnode boundaries, divergent leaves
    /// and the broadcast pseudo-leaf are diffed pairwise down to keys, and
    /// lagging replicas are repaired through the idempotent `sync/put`
    /// path. Leaves reported non-empty by a non-owner are retired as
    /// strays. Returns what the pass found and fixed.
    pub fn run_anti_entropy(&self) -> AntiEntropyRound {
        let _guard = self.membership.lock();
        let topo = self.topo.read();
        self.anti_entropy_in(&topo)
    }

    fn anti_entropy_in(&self, topo: &Topology) -> AntiEntropyRound {
        // Background repair gets its own root trace, detached from the
        // client operation whose tick triggered it.
        let _root = self.obs.span_root("cluster.antientropy.round");
        let mut round = AntiEntropyRound::default();
        let boundaries = topo.ring.boundaries();
        let req = DigestRequest { seed: self.cfg.seed, boundaries: boundaries.clone() }.encode();
        let mut digests: BTreeMap<usize, DigestResponse> = BTreeMap::new();
        for &m in &topo.members {
            if !topo.alive(m) {
                continue;
            }
            match topo.channels[m].call("sync/digest", &req) {
                Ok(resp) => {
                    if let Ok(d) = DigestResponse::decode(&resp) {
                        if d.leaves.len() == boundaries.len() {
                            digests.insert(m, d);
                        }
                    }
                }
                Err(NetError::Remote(_)) => {}
                Err(_) => self.note_node_failure(topo, m),
            }
        }
        // Broadcast state lives on every member: one pseudo-leaf covers it.
        let bcast: BTreeSet<&[u8; 32]> = digests.values().map(|d| &d.broadcast).collect();
        if bcast.len() > 1 {
            let group: Vec<usize> = digests.keys().copied().collect();
            self.repair_group(topo, &group, &[], true, &mut round);
        }
        let empty = empty_bucket_digest();
        for j in 0..boundaries.len() {
            let owners = topo.ring.leaf_owners(j);
            let present: Vec<usize> = owners.iter().copied().filter(|o| digests.contains_key(o)).collect();
            let leaf: BTreeSet<&[u8; 32]> = present.iter().map(|o| &digests[o].leaves[j]).collect();
            if leaf.len() > 1 {
                self.repair_group(topo, &present, &[topo.ring.leaf_range(j)], false, &mut round);
            }
            for (&m, d) in &digests {
                if !owners.contains(&m) && d.leaves[j] != empty {
                    // Stray state outside the node's owned ranges (e.g.
                    // left by a membership change it slept through).
                    let sel = RangeSelect {
                        seed: self.cfg.seed,
                        ranges: vec![topo.ring.leaf_range(j)],
                        include_broadcast: false,
                    };
                    if topo.channels[m].call("sync/retire", &sel.encode()).is_ok() {
                        round.strays_retired += 1;
                    }
                }
            }
        }
        self.ae_rounds.fetch_add(1, Ordering::Relaxed);
        self.ae_divergent.fetch_add(round.divergent_keys, Ordering::Relaxed);
        self.ae_repaired_bytes.fetch_add(round.repaired_bytes, Ordering::Relaxed);
        self.obs.count("cluster.antientropy.rounds", 1);
        self.obs.count("cluster.antientropy.divergent_keys", round.divergent_keys);
        self.obs.count("cluster.antientropy.bytes_repaired", round.repaired_bytes);
        round
    }

    /// Diffs one leaf (or the broadcast pseudo-leaf) down to keys across
    /// `group` and repairs every lagging member toward the majority vote.
    fn repair_group(
        &self,
        topo: &Topology,
        group: &[usize],
        ranges: &[(u64, u64)],
        broadcast: bool,
        round: &mut AntiEntropyRound,
    ) {
        let sel = RangeSelect { seed: self.cfg.seed, ranges: ranges.to_vec(), include_broadcast: broadcast };
        let payload = sel.encode();
        let mut responders: Vec<usize> = Vec::new();
        let mut versions: BTreeMap<Vec<u8>, BTreeMap<usize, SyncEntry>> = BTreeMap::new();
        for &m in group {
            let Ok(resp) = topo.channels[m].call("sync/entries", &payload) else { continue };
            let Ok(entries) = SyncEntries::decode(&resp) else { continue };
            responders.push(m);
            for e in entries.entries {
                versions.entry(entry_key(&e)).or_default().insert(m, e);
            }
        }
        if responders.len() < 2 {
            return;
        }
        for (key, holders) in versions {
            let any = holders.values().next().expect("non-empty holder set");
            let (kind, raw_key) = (any.kind, any.key.clone());
            let values: Vec<Option<&[u8]>> =
                responders.iter().map(|m| holders.get(m).map(|e| e.value.as_slice())).collect();
            let distinct: BTreeSet<&Option<&[u8]>> = values.iter().collect();
            if distinct.len() <= 1 {
                continue;
            }
            round.divergent_keys += 1;
            let winner = vote_winner(kind, &raw_key, &values);
            for (i, &m) in responders.iter().enumerate() {
                let target = winner.as_ref().map(|e| e.value.as_slice());
                if values[i] == target {
                    continue;
                }
                let entry = match &winner {
                    Some(e) => e.clone(),
                    None => match tombstone(kind, &raw_key) {
                        Some(t) => t,
                        None => continue,
                    },
                };
                let put = SyncEntries { entries: vec![entry.clone()] }.encode();
                let mut h = Sha256::new();
                h.update(b"anti-entropy");
                h.update(&key);
                h.update(&entry.value);
                let token: [u8; 16] = h.finalize()[..16].try_into().expect("16-byte prefix");
                let env = Idempotent { token, route: "sync/put".into(), payload: put };
                // A failed repair is retried by the next pass.
                if topo.channels[m].call(IDEM_ROUTE, &env.encode()).is_ok() {
                    round.repairs += 1;
                    round.repaired_bytes += (raw_key.len() + entry.value.len()) as u64;
                }
            }
        }
    }

    /// Whether every live member currently reports byte-identical Merkle
    /// state: owners of each leaf agree on its digest, non-owners report
    /// the empty-bucket digest, and the broadcast pseudo-leaf matches
    /// everywhere.
    pub fn replica_digests_converged(&self) -> bool {
        let _guard = self.membership.lock();
        let topo = self.topo.read();
        let boundaries = topo.ring.boundaries();
        let req = DigestRequest { seed: self.cfg.seed, boundaries: boundaries.clone() }.encode();
        let mut digests: BTreeMap<usize, DigestResponse> = BTreeMap::new();
        for &m in &topo.members {
            if !topo.alive(m) {
                continue;
            }
            let Ok(resp) = topo.channels[m].call("sync/digest", &req) else { return false };
            let Ok(d) = DigestResponse::decode(&resp) else { return false };
            if d.leaves.len() != boundaries.len() {
                return false;
            }
            digests.insert(m, d);
        }
        if digests.is_empty() {
            return true;
        }
        let bcast: BTreeSet<&[u8; 32]> = digests.values().map(|d| &d.broadcast).collect();
        if bcast.len() > 1 {
            return false;
        }
        let empty = empty_bucket_digest();
        for j in 0..boundaries.len() {
            let owners = topo.ring.leaf_owners(j);
            let mut leaf: BTreeSet<&[u8; 32]> = BTreeSet::new();
            for (&m, d) in &digests {
                if owners.contains(&m) {
                    leaf.insert(&d.leaves[j]);
                } else if d.leaves[j] != empty {
                    return false;
                }
            }
            if leaf.len() > 1 {
                return false;
            }
        }
        true
    }

    /// Write-holds the topology while `f` runs — exactly the transfer
    /// window an `add_node`/`remove_node` handoff opens. Concurrent
    /// operations observe a typed [`NetError::Unavailable`] instead of a
    /// half-moved ring. Maintenance/test hook.
    pub fn with_membership_frozen<T>(&self, f: impl FnOnce() -> T) -> T {
        let _guard = self.membership.lock();
        let _topo = self.topo.write();
        f()
    }

    /// Ticks the background anti-entropy cadence, running one pass when it
    /// comes due. Runs *before* the caller takes the topology read lock.
    fn maybe_anti_entropy(&self) {
        let Some(every) = self.cfg.anti_entropy_every else { return };
        if every == 0 {
            return;
        }
        let n = self.ops.fetch_add(1, Ordering::Relaxed) + 1;
        if n.is_multiple_of(every) {
            self.run_anti_entropy();
        }
    }

    /// Drains pending membership events before handling an operation.
    fn pump_events(&self) {
        let Some(injector) = &self.injector else { return };
        let events = {
            let _guard = self.membership.lock();
            injector.on_op()
        };
        for event in events {
            match event {
                NodeEvent::Kill(i) => self.kill_node(i),
                NodeEvent::Rejoin(i) => {
                    // A failed rejoin (crash mid-resync) leaves the node
                    // down; only a later rejoin event retries it.
                    let _ = self.rejoin_node(i);
                }
                NodeEvent::AddNode => {
                    let _ = self.add_node();
                }
                NodeEvent::RemoveNode(i) => {
                    let _ = self.remove_node(i);
                }
            }
        }
    }

    /// A node that answered with a transport error may have crashed for
    /// good (its crash injector fired): observe that and mark it down so
    /// later operations skip it instead of burning retries. Must not take
    /// the membership lock — it runs while the caller holds the topology
    /// read lock, concurrently with membership changes waiting on write.
    fn note_node_failure(&self, topo: &Topology, idx: usize) {
        self.obs.count(&topo.node_errors[idx], 1);
        let crashed = topo.nodes[idx].engine.read().as_ref().is_some_and(CloudEngine::crashed);
        if crashed {
            self.kill_in(topo, idx);
        }
    }
}

/// Whether a journaled `(route, payload)` belongs on node `idx` under the
/// given topology. Sync-apply records never transfer between nodes.
fn targets_node(topo: &Topology, route: &str, payload: &[u8], idx: usize) -> bool {
    if route == IDEM_ROUTE {
        let Ok(env) = Idempotent::decode(payload) else { return true };
        if env.route.starts_with("sync/") {
            return false;
        }
        return match write_target(&env.route, &env.payload) {
            Ok(WriteTarget::Key(k)) => topo.ring.replicas(&k).contains(&idx),
            _ => true,
        };
    }
    if route.starts_with("sync/") {
        return false;
    }
    match write_target(route, payload) {
        Ok(WriteTarget::Key(k)) => topo.ring.replicas(&k).contains(&idx),
        _ => true,
    }
}

/// Where a write route lands: one key's replica set, or every node.
fn write_target(route: &str, payload: &[u8]) -> Result<WriteTarget, CoreError> {
    if let Some(op) = route.strip_prefix("doc/") {
        let (collection, rest) = split_collection(payload)?;
        return Ok(match op {
            "insert" | "update" => WriteTarget::Key(doc_key(&collection, encoded_doc_id(rest)?)),
            "delete" => WriteTarget::Key(doc_key(&collection, rest)),
            // ensure_index and future doc-level writes shape every
            // replica's view of the collection.
            _ => WriteTarget::Broadcast,
        });
    }
    let parts: Vec<&str> = route.split('/').collect();
    if let ["tactic", name, scope, op] = parts[..] {
        // Index mutations cluster on the scope so its search route reads
        // the same replicas the updates wrote; setup broadcasts (every
        // node may need the scope's public parameters).
        return Ok(if op == "setup" {
            WriteTarget::Broadcast
        } else {
            WriteTarget::Key(format!("tactic/{name}/{scope}").into_bytes())
        });
    }
    // kv/* and unknown write routes touch shared substrate state.
    Ok(WriteTarget::Broadcast)
}

// ------------------------------------------------------ writes and reads

impl ClusterCloud {
    /// Sends one write to its replica set and succeeds once W replicas
    /// durably acked. Replicas are tried in ring order (deterministic);
    /// down nodes count as missing acks.
    fn quorum_write(
        &self,
        topo: &Topology,
        target: &WriteTarget,
        route: &str,
        payload: &[u8],
    ) -> Result<Vec<u8>, NetError> {
        let replicas: Vec<usize> = match target {
            WriteTarget::Key(k) => topo.ring.replicas(k),
            WriteTarget::Broadcast => topo.members.clone(),
        };
        let quorum = self.cfg.write_quorum.min(replicas.len()).max(1);
        let mut span = self.obs.quiet_span("cluster.quorum_write");
        span.set_detail(route);
        let started = self.obs.start();
        let mut acks = 0usize;
        let mut first: Option<Vec<u8>> = None;
        let mut app_err: Option<NetError> = None;
        for &i in &replicas {
            if !topo.alive(i) {
                continue;
            }
            self.obs.count(&topo.node_ops[i], 1);
            match topo.channels[i].call(route, payload) {
                Ok(resp) => {
                    acks += 1;
                    if first.is_none() {
                        first = Some(resp);
                    }
                }
                Err(NetError::Remote(m)) => app_err = Some(NetError::Remote(m)),
                Err(_) => self.note_node_failure(topo, i),
            }
        }
        if let Some(t0) = started {
            self.obs.observe("cluster.write.quorum_latency", t0.elapsed());
        }
        if acks >= quorum {
            self.obs.count("cluster.write.quorum_ok", 1);
            return Ok(first.unwrap_or_default());
        }
        if let Some(e) = app_err {
            // Deterministic engines fail identically on every replica: the
            // application error *is* the answer, not an availability issue.
            span.fail();
            span.set_detail(&e.to_string());
            return Err(e);
        }
        self.obs.count("cluster.write.quorum_fail", 1);
        let message = format!("write quorum not met: {acks}/{quorum} acks for {route}");
        span.fail();
        span.set_detail(&message);
        Err(NetError::Unavailable(message))
    }

    /// Decomposes a sealed batch: every write item becomes its own quorum
    /// write under a token derived from the envelope's (so cross-replica
    /// retries dedup), reads run through the clustered read paths, and
    /// responses keep the original order. Like the single-node engine, the
    /// batch aborts on the first failing item.
    fn handle_batch(&self, topo: &Topology, env: &Idempotent) -> Result<Vec<u8>, NetError> {
        let mut r = Reader::new(&env.payload);
        let items = r.list().map_err(|e| remote(e.into()))?;
        if items.len() % 2 != 0 {
            return Err(remote(CoreError::Wire("batch item count")));
        }
        let mut responses = Vec::with_capacity(items.len() / 2);
        for (idx, pair) in items.chunks(2).enumerate() {
            let route = std::str::from_utf8(&pair[0]).map_err(|_| remote(CoreError::Wire("utf8 route")))?;
            if route == "batch" || route == IDEM_ROUTE {
                return Err(remote(CoreError::UnsupportedOperation("nested batch".into())));
            }
            let resp = if is_write_route(route) {
                let target = write_target(route, &pair[1]).map_err(remote)?;
                let sub = Idempotent {
                    token: sub_token(&env.token, idx as u64),
                    route: route.to_string(),
                    payload: pair[1].to_vec(),
                };
                self.quorum_write(topo, &target, IDEM_ROUTE, &sub.encode())?
            } else {
                self.clustered_read(topo, route, &pair[1])?
            };
            responses.push(resp);
        }
        let mut w = Writer::new();
        w.list(&responses);
        Ok(w.finish())
    }

    fn clustered_read(&self, topo: &Topology, route: &str, payload: &[u8]) -> Result<Vec<u8>, NetError> {
        match route {
            "doc/get" => self.read_doc(topo, payload),
            "doc/get_many" => self.read_get_many(topo, payload),
            "doc/count" => {
                let (collection, _) = split_collection(payload).map_err(remote)?;
                let ids = self.union_ids(topo, &collection)?;
                Ok((ids.len() as u64).to_be_bytes().to_vec())
            }
            "doc/list_ids" => {
                let (collection, _) = split_collection(payload).map_err(remote)?;
                let ids = self.union_ids(topo, &collection)?;
                let mut w = Writer::new();
                w.list(&ids.into_iter().map(String::into_bytes).collect::<Vec<_>>());
                Ok(w.finish())
            }
            "doc/find_ids_eq" | "doc/find_ids_range" | "doc/find_ids_dnf" => {
                let mut union: BTreeSet<DocId> = BTreeSet::new();
                for resp in self.scatter(topo, route, payload)? {
                    union.extend(decode_ids(&resp).map_err(remote)?);
                }
                Ok(encode_ids(&union.into_iter().collect::<Vec<_>>()))
            }
            "doc/extreme" => self.read_extreme(topo, payload),
            "doc/agg_plain" => self.read_agg_plain(topo, payload),
            _ => self.read_tactic(topo, route, payload),
        }
    }

    /// Probes every live replica of the document, answers with the majority
    /// value (lexicographically smallest on ties, so the answer is
    /// deterministic) and repairs divergent or missing replicas in place.
    fn read_doc(&self, topo: &Topology, payload: &[u8]) -> Result<Vec<u8>, NetError> {
        let (collection, id) = split_collection(payload).map_err(remote)?;
        let replicas = topo.ring.replicas(&doc_key(&collection, id));
        let mut results: Vec<(usize, Result<Vec<u8>, NetError>)> = Vec::with_capacity(replicas.len());
        for &i in &replicas {
            if !topo.alive(i) {
                continue;
            }
            self.obs.count(&topo.node_ops[i], 1);
            let outcome = topo.channels[i].call("doc/get", payload);
            if matches!(&outcome, Err(e) if !is_not_found(e) && !matches!(e, NetError::Remote(_))) {
                self.note_node_failure(topo, i);
            }
            results.push((i, outcome));
        }
        let mut counts: BTreeMap<&[u8], usize> = BTreeMap::new();
        for (_, outcome) in &results {
            if let Ok(body) = outcome {
                *counts.entry(body.as_slice()).or_default() += 1;
            }
        }
        let Some(winner) = counts.iter().max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(a.0))).map(|(body, _)| body.to_vec())
        else {
            // No replica produced the document.
            if let Some((_, Err(e))) = results.iter().find(|(_, o)| matches!(o, Err(e) if is_not_found(e))) {
                return Err(e.clone());
            }
            if let Some((_, Err(NetError::Remote(m)))) =
                results.iter().find(|(_, o)| matches!(o, Err(NetError::Remote(_))))
            {
                return Err(NetError::Remote(m.clone()));
            }
            return Err(NetError::Unavailable(format!("no live replica answered doc/get in {collection}")));
        };
        for (i, outcome) in &results {
            let repair_route = match outcome {
                Ok(body) if *body != winner => "doc/update",
                Err(e) if is_not_found(e) => "doc/insert",
                _ => continue,
            };
            if topo.channels[*i].call(repair_route, &with_collection(&collection, &winner)).is_ok() {
                self.read_repairs.fetch_add(1, Ordering::Relaxed);
                self.obs.count("cluster.read_repair", 1);
            }
        }
        Ok(winner)
    }

    /// Scatter-gathers `get_many`: every live node contributes the subset
    /// it holds; the union is reassembled in request order.
    fn read_get_many(&self, topo: &Topology, payload: &[u8]) -> Result<Vec<u8>, NetError> {
        let (_, rest) = split_collection(payload).map_err(remote)?;
        let mut r = Reader::new(rest);
        let requested = r.list().map_err(|e| remote(e.into()))?;
        let mut found: HashMap<String, datablinder_docstore::Document> = HashMap::new();
        for resp in self.scatter(topo, "doc/get_many", payload)? {
            for doc in decode_documents(&resp).map_err(remote)? {
                found.entry(doc.id().to_string()).or_insert(doc);
            }
        }
        let docs: Vec<_> =
            requested.iter().filter_map(|id| std::str::from_utf8(id).ok()).filter_map(|id| found.remove(id)).collect();
        Ok(encode_documents(&docs))
    }

    /// Scatter-gathers `extreme`: each node nominates its local extreme,
    /// the cluster fetches the candidates and compares their stored bytes
    /// (ties break toward the smaller id, so the answer is deterministic).
    fn read_extreme(&self, topo: &Topology, payload: &[u8]) -> Result<Vec<u8>, NetError> {
        let (collection, rest) = split_collection(payload).map_err(remote)?;
        if rest.is_empty() {
            return Err(remote(CoreError::Wire("extreme payload")));
        }
        let want_max = rest[0] == 1;
        let field = std::str::from_utf8(&rest[1..]).map_err(|_| remote(CoreError::Wire("utf8 field")))?;
        let mut candidates: BTreeSet<String> = BTreeSet::new();
        for resp in self.scatter(topo, "doc/extreme", payload)? {
            if !resp.is_empty() {
                candidates.insert(String::from_utf8(resp).map_err(|_| remote(CoreError::Wire("utf8 id")))?);
            }
        }
        let mut best: Option<(Vec<u8>, String)> = None;
        for id in candidates {
            let body = match self.read_doc(topo, &with_collection(&collection, id.as_bytes())) {
                Ok(body) => body,
                // The candidate vanished between the scatter and the fetch.
                Err(e) if is_not_found(&e) => continue,
                Err(e) => return Err(e),
            };
            let doc = decode_document(&body).map_err(remote)?;
            let Some(bytes) = doc.get(field).and_then(Value::as_bytes).map(<[u8]>::to_vec) else {
                continue;
            };
            best = Some(match best {
                None => (bytes, id),
                Some(prev) => {
                    let challenger = (bytes, id);
                    let challenger_wins = match challenger.0.cmp(&prev.0) {
                        std::cmp::Ordering::Equal => challenger.1 < prev.1,
                        std::cmp::Ordering::Greater => want_max,
                        std::cmp::Ordering::Less => !want_max,
                    };
                    if challenger_wins {
                        challenger
                    } else {
                        prev
                    }
                }
            });
        }
        Ok(best.map(|(_, id)| id.into_bytes()).unwrap_or_default())
    }

    /// Distributes a plaintext aggregate: every document is assigned to its
    /// first live replica, each node aggregates only its assignment via
    /// `doc/agg_plain_ids`, and the partial sums/counts are combined here.
    fn read_agg_plain(&self, topo: &Topology, payload: &[u8]) -> Result<Vec<u8>, NetError> {
        let (collection, rest) = split_collection(payload).map_err(remote)?;
        let field = std::str::from_utf8(rest).map_err(|_| remote(CoreError::Wire("utf8 field")))?;
        let per_node = self.partition_ids(topo, &collection, self.union_ids(topo, &collection)?)?;
        let mut sum = 0.0f64;
        let mut count = 0u64;
        for (node, ids) in per_node {
            let mut w = Writer::new();
            w.bytes(field.as_bytes());
            w.list(&ids.into_iter().map(String::into_bytes).collect::<Vec<_>>());
            let resp = match topo.channels[node].call("doc/agg_plain_ids", &with_collection(&collection, &w.finish())) {
                Ok(resp) => resp,
                Err(NetError::Remote(m)) => return Err(NetError::Remote(m)),
                Err(_) => {
                    self.note_node_failure(topo, node);
                    return Err(NetError::Unavailable(format!("aggregate partition on node {node} unreachable")));
                }
            };
            if resp.len() < 16 {
                return Err(remote(CoreError::Wire("agg response")));
            }
            sum += f64::from_be_bytes(resp[..8].try_into().expect("8-byte slice"));
            count += u64::from_be_bytes(resp[8..16].try_into().expect("8-byte slice"));
        }
        let mut out = sum.to_be_bytes().to_vec();
        out.extend_from_slice(&count.to_be_bytes());
        Ok(out)
    }

    fn read_tactic(&self, topo: &Topology, route: &str, payload: &[u8]) -> Result<Vec<u8>, NetError> {
        let parts: Vec<&str> = route.split('/').collect();
        if let ["tactic", name, scope, op] = parts[..] {
            if name == "paillier" && op == "sum" {
                return self.read_paillier_sum(topo, scope, route, payload);
            }
            // Index reads go to the replicas its writes clustered on, in
            // ring order, failing over past dead nodes.
            let key = format!("tactic/{name}/{scope}").into_bytes();
            let replicas = topo.ring.replicas(&key);
            return self.first_live_of(topo, &replicas, route, payload);
        }
        // Unknown read route: any live node (replicated state or none).
        self.first_live_of(topo, &topo.members.clone(), route, payload)
    }

    /// Distributes a Paillier sum: each partition node folds its own
    /// documents under the scope's public key, and one of them multiplies
    /// the partial ciphertexts together (`combine`) — the cluster never
    /// needs the secret key, preserving the tactic's security model.
    fn read_paillier_sum(
        &self,
        topo: &Topology,
        scope: &str,
        route: &str,
        payload: &[u8],
    ) -> Result<Vec<u8>, NetError> {
        let req = PaillierSum::decode(payload).map_err(remote)?;
        let ids = if req.ids.is_empty() { self.union_ids(topo, &req.collection)? } else { req.ids.clone() };
        if ids.is_empty() {
            return Ok(PaillierSumResponse { ciphertext: Vec::new(), count: 0 }.encode());
        }
        let per_node = self.partition_ids(topo, &req.collection, ids)?;
        let mut partials = Vec::with_capacity(per_node.len());
        let mut combine_at = None;
        for (node, ids) in per_node {
            let sub = PaillierSum { collection: req.collection.clone(), field: req.field.clone(), ids };
            match topo.channels[node].call(route, &sub.encode()) {
                Ok(resp) => {
                    combine_at.get_or_insert(node);
                    partials.push(resp);
                }
                Err(NetError::Remote(m)) => return Err(NetError::Remote(m)),
                Err(_) => {
                    self.note_node_failure(topo, node);
                    return Err(NetError::Unavailable(format!("paillier partition on node {node} unreachable")));
                }
            }
        }
        if partials.len() == 1 {
            return Ok(partials.pop().expect("one partial"));
        }
        let mut w = Writer::new();
        w.list(&partials);
        let combine_route = format!("tactic/paillier/{scope}/combine");
        // Any node that served a partial holds the scope key.
        let at = combine_at.expect("at least one partition");
        match topo.channels[at].call(&combine_route, &w.finish()) {
            Ok(resp) => Ok(resp),
            Err(NetError::Remote(m)) => Err(NetError::Remote(m)),
            Err(_) => Err(NetError::Unavailable(format!("paillier combine on node {at} unreachable"))),
        }
    }

    /// Fans a read out to every live node. Fails with
    /// [`NetError::Unavailable`] when the unreachable set is large enough
    /// that some key could have *no* live replica (the union might miss
    /// documents) and propagates application errors conservatively.
    fn scatter(&self, topo: &Topology, route: &str, payload: &[u8]) -> Result<Vec<Vec<u8>>, NetError> {
        let mut out = Vec::with_capacity(topo.members.len());
        let mut unreachable = 0usize;
        let mut app_err: Option<NetError> = None;
        for &i in &topo.members {
            if !topo.alive(i) {
                unreachable += 1;
                continue;
            }
            self.obs.count(&topo.node_ops[i], 1);
            match topo.channels[i].call(route, payload) {
                Ok(resp) => out.push(resp),
                Err(NetError::Remote(m)) => app_err = Some(NetError::Remote(m)),
                Err(_) => {
                    unreachable += 1;
                    self.note_node_failure(topo, i);
                }
            }
        }
        if unreachable >= self.cfg.replication {
            return Err(NetError::Unavailable(format!(
                "{unreachable} of {} nodes unreachable with {}-way replication: scatter result would be partial",
                topo.members.len(),
                self.cfg.replication
            )));
        }
        if let Some(e) = app_err {
            return Err(e);
        }
        Ok(out)
    }

    /// Tries `candidates` in order; the first node that answers (success or
    /// application error) decides.
    fn first_live_of(
        &self,
        topo: &Topology,
        candidates: &[usize],
        route: &str,
        payload: &[u8],
    ) -> Result<Vec<u8>, NetError> {
        for &i in candidates {
            if !topo.alive(i) {
                continue;
            }
            self.obs.count(&topo.node_ops[i], 1);
            match topo.channels[i].call(route, payload) {
                Ok(resp) => return Ok(resp),
                Err(NetError::Remote(m)) => return Err(NetError::Remote(m)),
                Err(_) => self.note_node_failure(topo, i),
            }
        }
        Err(NetError::Unavailable(format!("no live replica for {route}")))
    }

    /// The distinct document ids of a collection across all live nodes.
    fn union_ids(&self, topo: &Topology, collection: &str) -> Result<Vec<String>, NetError> {
        let payload = with_collection(collection, &[]);
        let mut union: BTreeSet<String> = BTreeSet::new();
        for resp in self.scatter(topo, "doc/list_ids", &payload)? {
            let mut r = Reader::new(&resp);
            for id in r.list().map_err(|e| remote(e.into()))? {
                union.insert(String::from_utf8(id).map_err(|_| remote(CoreError::Wire("utf8 id")))?);
            }
        }
        Ok(union.into_iter().collect())
    }

    /// Assigns each document id to the first live node of its replica set.
    fn partition_ids(
        &self,
        topo: &Topology,
        collection: &str,
        ids: Vec<String>,
    ) -> Result<BTreeMap<usize, Vec<String>>, NetError> {
        let mut per_node: BTreeMap<usize, Vec<String>> = BTreeMap::new();
        for id in ids {
            let replicas = topo.ring.replicas(&doc_key(collection, id.as_bytes()));
            let Some(&live) = replicas.iter().find(|&&r| topo.alive(r)) else {
                return Err(NetError::Unavailable(format!("every replica of document {id} is down")));
            };
            per_node.entry(live).or_default().push(id);
        }
        Ok(per_node)
    }
}

impl CloudService for ClusterCloud {
    fn handle(&self, route: &str, payload: &[u8]) -> Result<Vec<u8>, NetError> {
        if route == datablinder_obs::trace::TRACED_ROUTE {
            // Adopt the gateway's trace context before fanning out, so the
            // per-replica channel spans hang off the caller's tree.
            let (ctx, inner_route, inner_payload) = datablinder_obs::trace::decode_traced(payload)
                .map_err(|e| NetError::Remote(format!("trace envelope: {e}")))?;
            let _scope = ctx.enter();
            return self.handle(inner_route, inner_payload);
        }
        if route == "obs/snapshot" {
            // Metric scraping must not perturb the deterministic failure
            // schedule or op counters: answer before any event pump.
            return Ok(self.snapshot().to_json().into_bytes());
        }
        self.pump_events();
        self.maybe_anti_entropy();
        self.obs.count("cluster.ops", 1);
        // A membership change write-holds the topology: fail fast with a
        // typed error instead of reading a half-moved ring.
        let Some(topo) = self.topo.try_read() else {
            return Err(NetError::Unavailable("cluster membership change in progress".into()));
        };
        let topo = &*topo;
        if route == IDEM_ROUTE {
            let env = Idempotent::decode(payload).map_err(remote)?;
            if env.route == "batch" {
                return self.handle_batch(topo, &env);
            }
            let target = write_target(&env.route, &env.payload).map_err(remote)?;
            // The whole envelope replicates: every replica dedups on the
            // same token, so a retry that lands on a different replica
            // subset cannot double-apply.
            return self.quorum_write(topo, &target, IDEM_ROUTE, payload);
        }
        if route == "batch" {
            // A bare batch (no envelope) still decomposes; its item tokens
            // derive from the batch content so retries stay idempotent.
            let mut h = Sha256::new();
            h.update(payload);
            let token: [u8; 16] = h.finalize()[..16].try_into().expect("16-byte prefix");
            let env = Idempotent { token, route: "batch".into(), payload: payload.to_vec() };
            return self.handle_batch(topo, &env);
        }
        if is_write_route(route) {
            let target = write_target(route, payload).map_err(remote)?;
            return self.quorum_write(topo, &target, route, payload);
        }
        self.clustered_read(topo, route, payload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sync::{in_any_range, in_range};
    use crate::wire::encode_document;
    use datablinder_docstore::Document;

    fn insert_payload(collection: &str, idx: u8) -> Vec<u8> {
        let id = DocId([idx; 16]);
        let doc = Document::new(id.to_hex()).with("v", Value::from(i64::from(idx)));
        with_collection(collection, &encode_document(&doc))
    }

    #[test]
    fn ring_is_deterministic_and_distinct() {
        let a = Ring::new(&[0, 1, 2, 3, 4], 16, 3, 42);
        let b = Ring::new(&[0, 1, 2, 3, 4], 16, 3, 42);
        for key in [b"alpha".as_slice(), b"beta", b"gamma", b""] {
            let reps = a.replicas(key);
            assert_eq!(reps, b.replicas(key), "same seed, same placement");
            assert_eq!(reps.len(), 3);
            let distinct: BTreeSet<_> = reps.iter().collect();
            assert_eq!(distinct.len(), 3, "replicas are distinct nodes");
        }
        let c = Ring::new(&[0, 1, 2, 3, 4], 16, 3, 43);
        let moved = (0u32..64).filter(|i| a.replicas(&i.to_be_bytes()) != c.replicas(&i.to_be_bytes())).count();
        assert!(moved > 0, "a different seed moves keys");
    }

    #[test]
    fn ring_spreads_keys_across_nodes() {
        let ring = Ring::new(&[0, 1, 2, 3], 16, 1, 7);
        let mut hits = [0usize; 4];
        for i in 0u32..256 {
            hits[ring.replicas(&i.to_be_bytes())[0]] += 1;
        }
        for (node, &h) in hits.iter().enumerate() {
            assert!(h > 0, "node {node} owns no keys: {hits:?}");
        }
    }

    #[test]
    fn adding_a_member_moves_keys_only_toward_it() {
        let old = Ring::new(&[0, 1, 2], 16, 2, 42);
        let new = Ring::new(&[0, 1, 2, 3], 16, 2, 42);
        let mut moved = 0usize;
        for i in 0u32..512 {
            let key = i.to_be_bytes();
            let before = old.replicas(&key);
            let after = new.replicas(&key);
            if before != after {
                moved += 1;
                assert!(
                    after.contains(&3),
                    "a changed replica set must involve the new member: {before:?} -> {after:?}"
                );
            }
        }
        assert!(moved > 0, "the new member takes over some keys");
        assert!(moved < 512, "membership change must not reshuffle everything");
    }

    #[test]
    fn gained_and_lost_ranges_match_ownership_diff() {
        let old = Ring::new(&[0, 1, 2], 16, 2, 42);
        let new = Ring::new(&[0, 1, 2, 3], 16, 2, 42);
        for node in 0..4usize {
            let gained = gained_ranges(&old, &new, node);
            let lost = lost_ranges(&old, &new, node);
            for i in 0u32..512 {
                let h = hash_bytes(42, &i.to_be_bytes());
                let owns_old = old.replicas_at(h).contains(&node);
                let owns_new = new.replicas_at(h).contains(&node);
                assert_eq!(
                    in_any_range(h, &gained),
                    owns_new && !owns_old,
                    "gained ranges of node {node} disagree at hash {h:#x}"
                );
                assert_eq!(
                    in_any_range(h, &lost),
                    owns_old && !owns_new,
                    "lost ranges of node {node} disagree at hash {h:#x}"
                );
            }
        }
    }

    #[test]
    fn owned_and_unowned_ranges_partition_the_circle() {
        let ring = Ring::new(&[0, 1, 2, 3, 4], 16, 3, 9);
        for node in 0..5usize {
            let owned = ring.ranges_of(node, true);
            let unowned = ring.ranges_of(node, false);
            for i in 0u32..512 {
                let h = hash_bytes(9, &i.to_be_bytes());
                let owns = ring.replicas_at(h).contains(&node);
                assert_eq!(in_any_range(h, &owned), owns);
                assert_eq!(in_any_range(h, &unowned), !owns);
            }
        }
    }

    #[test]
    fn leaf_owners_agree_with_replica_lookup() {
        let ring = Ring::new(&[0, 1, 2, 3], 16, 2, 77);
        let boundaries = ring.boundaries();
        for i in 0u32..256 {
            let h = hash_bytes(77, &i.to_be_bytes());
            let j = crate::sync::leaf_of(h, &boundaries);
            assert_eq!(ring.leaf_owners(j), ring.replicas_at(h));
            assert!(in_range(h, ring.leaf_range(j)), "hash falls inside its leaf's range");
        }
    }

    #[test]
    fn write_replicates_and_survives_replica_loss() {
        let cluster = ClusterCloud::new(ClusterConfig::volatile(5, 3, 2, 9)).unwrap();
        cluster.handle("doc/insert", &insert_payload("notes", 1)).unwrap();
        let id = DocId([1; 16]).to_hex();
        let replicas = cluster.doc_replicas("notes", &id);
        assert_eq!(replicas.len(), 3);
        for &r in &replicas {
            let held = cluster.with_node_engine(r, |e| e.docs().collection("notes").get(&id).is_some()).unwrap();
            assert!(held, "replica {r} holds the document");
        }
        // Killing R-1 replicas leaves the read answerable.
        cluster.kill_node(replicas[0]);
        cluster.kill_node(replicas[1]);
        let got = cluster.handle("doc/get", &with_collection("notes", id.as_bytes())).unwrap();
        assert!(!got.is_empty());
    }

    #[test]
    fn unmet_quorum_is_typed_unavailable_not_a_hang() {
        let cluster = ClusterCloud::new(ClusterConfig::volatile(3, 3, 3, 5)).unwrap();
        cluster.kill_node(0);
        let err = cluster.handle("doc/insert", &insert_payload("notes", 2)).unwrap_err();
        assert!(matches!(err, NetError::Unavailable(_)), "got {err:?}");
    }

    #[test]
    fn read_repair_heals_a_stale_replica() {
        let cluster = ClusterCloud::new(ClusterConfig::volatile(3, 2, 1, 11)).unwrap();
        cluster.handle("doc/insert", &insert_payload("notes", 3)).unwrap();
        let id = DocId([3; 16]).to_hex();
        let replicas = cluster.doc_replicas("notes", &id);
        // Erase the document on one replica behind the cluster's back.
        cluster.with_node_engine(replicas[1], |e| e.docs().collection("notes").delete(&id).unwrap()).unwrap();
        cluster.handle("doc/get", &with_collection("notes", id.as_bytes())).unwrap();
        assert_eq!(cluster.read_repairs(), 1);
        let healed =
            cluster.with_node_engine(replicas[1], |e| e.docs().collection("notes").get(&id).is_some()).unwrap();
        assert!(healed, "read repair reinserted the lost replica");
    }

    #[test]
    fn batch_sub_tokens_are_deterministic_and_distinct() {
        let t = [7u8; 16];
        assert_eq!(sub_token(&t, 0), sub_token(&t, 0));
        assert_ne!(sub_token(&t, 0), sub_token(&t, 1));
        assert_ne!(sub_token(&t, 0), sub_token(&[8u8; 16], 0));
    }

    #[test]
    fn scatter_reads_union_across_partitions() {
        let cluster = ClusterCloud::new(ClusterConfig::volatile(4, 1, 1, 13)).unwrap();
        for i in 1..=6u8 {
            cluster.handle("doc/insert", &insert_payload("notes", i)).unwrap();
        }
        // With R=1 every doc lives on exactly one node, so the count only
        // comes out right if the read really unions all partitions.
        let count = cluster.handle("doc/count", &with_collection("notes", &[])).unwrap();
        assert_eq!(u64::from_be_bytes(count[..8].try_into().unwrap()), 6);
        let ids = cluster.handle("doc/list_ids", &with_collection("notes", &[])).unwrap();
        let mut r = Reader::new(&ids);
        assert_eq!(r.list().unwrap().len(), 6);
    }

    #[test]
    fn add_node_hands_off_gained_ranges_before_serving() {
        let cluster = ClusterCloud::new(ClusterConfig::volatile(3, 2, 2, 21)).unwrap();
        for i in 1..=20u8 {
            cluster.handle("doc/insert", &insert_payload("notes", i)).unwrap();
        }
        let slot = cluster.add_node().unwrap();
        assert_eq!(slot, 3);
        assert_eq!(cluster.members(), vec![0, 1, 2, 3]);
        assert_eq!(cluster.nodes_added(), 1);
        // Every document is still fully replicated on its (new) replica set.
        for i in 1..=20u8 {
            let id = DocId([i; 16]).to_hex();
            for r in cluster.doc_replicas("notes", &id) {
                let held = cluster.with_node_engine(r, |e| e.docs().collection("notes").get(&id).is_some()).unwrap();
                assert!(held, "replica {r} of doc {i} holds it after the handoff");
            }
            let got = cluster.handle("doc/get", &with_collection("notes", id.as_bytes())).unwrap();
            assert!(!got.is_empty());
        }
        // The handoff itself must have given the new node some keys.
        let on_new = cluster.with_node_engine(slot, |e| e.docs().collection("notes").len()).unwrap();
        assert!(on_new > 0, "the new member took over part of the keyspace");
    }

    #[test]
    fn remove_node_hands_off_and_refuses_below_replication() {
        let cluster = ClusterCloud::new(ClusterConfig::volatile(4, 2, 2, 23)).unwrap();
        for i in 1..=20u8 {
            cluster.handle("doc/insert", &insert_payload("notes", i)).unwrap();
        }
        cluster.remove_node(1).unwrap();
        assert_eq!(cluster.members(), vec![0, 2, 3]);
        assert_eq!(cluster.nodes_removed(), 1);
        assert!(!cluster.node_alive(1));
        for i in 1..=20u8 {
            let id = DocId([i; 16]).to_hex();
            let replicas = cluster.doc_replicas("notes", &id);
            assert!(!replicas.contains(&1), "the ring forgot the removed member");
            for r in replicas {
                let held = cluster.with_node_engine(r, |e| e.docs().collection("notes").get(&id).is_some()).unwrap();
                assert!(held, "replica {r} of doc {i} holds it after the removal");
            }
        }
        // A second removal would leave 2 members with 2-way replication: ok.
        cluster.remove_node(2).unwrap();
        // A third would leave 1 member below the replication factor.
        let err = cluster.remove_node(3).unwrap_err();
        assert!(matches!(err, CoreError::UnsupportedOperation(_)), "got {err:?}");
        // Removing a non-member is typed, not a panic.
        let err = cluster.remove_node(1).unwrap_err();
        assert!(matches!(err, CoreError::UnsupportedOperation(_)), "got {err:?}");
    }

    #[test]
    fn anti_entropy_heals_a_tampered_replica_without_reads() {
        let cluster = ClusterCloud::new(ClusterConfig::volatile(3, 2, 2, 31)).unwrap();
        for i in 1..=8u8 {
            cluster.handle("doc/insert", &insert_payload("notes", i)).unwrap();
        }
        let id = DocId([5; 16]).to_hex();
        let replicas = cluster.doc_replicas("notes", &id);
        // Tamper before any digest request so the digest cache never saw
        // the pre-tamper state (behind-the-back writes bypass its
        // invalidation hooks by construction).
        cluster.with_node_engine(replicas[0], |e| e.docs().collection("notes").delete(&id).unwrap()).unwrap();
        assert!(!cluster.replica_digests_converged(), "tampering must show up in the digests");
        let round = cluster.run_anti_entropy();
        assert!(round.divergent_keys >= 1, "the tampered key is divergent: {round:?}");
        assert!(round.repairs >= 1, "the lagging replica got repaired: {round:?}");
        let mut rounds = 0;
        while !cluster.run_anti_entropy().converged() {
            rounds += 1;
            assert!(rounds < 8, "anti-entropy must converge");
        }
        assert!(cluster.replica_digests_converged());
        let healed =
            cluster.with_node_engine(replicas[0], |e| e.docs().collection("notes").get(&id).is_some()).unwrap();
        assert!(healed, "anti-entropy restored the majority value");
        assert_eq!(cluster.read_repairs(), 0, "no read repair was involved");
    }

    #[test]
    fn anti_entropy_cadence_ticks_with_ops() {
        let cluster = ClusterCloud::new(ClusterConfig::volatile(3, 2, 2, 37).anti_entropy(4)).unwrap();
        for i in 1..=8u8 {
            cluster.handle("doc/insert", &insert_payload("notes", i)).unwrap();
        }
        assert_eq!(cluster.anti_entropy_rounds(), 2, "8 ops at a cadence of 4");
    }

    #[test]
    fn merged_ranges_round_trip_through_wrap() {
        assert_eq!(merge_segments(vec![(10, 20), (20, 30)]), vec![(10, 30)]);
        assert_eq!(merge_segments(vec![(90, 5), (5, 10), (40, 50)]), vec![(90, 10), (40, 50)]);
        // Trailing segment meets the leading one across the wrap point.
        assert_eq!(merge_segments(vec![(90, 10), (80, 90)]), vec![(80, 10)]);
        // Everything owned collapses to a full-circle (p, p) interval.
        let all = merge_segments(vec![(30, 10), (10, 20), (20, 30)]);
        assert_eq!(all, vec![(30, 30)]);
        assert!(in_range(123, all[0]));
    }
}
