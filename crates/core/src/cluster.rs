//! ClusterCloud: N replicated [`CloudEngine`] nodes behind one
//! [`CloudService`] facade.
//!
//! The gateway keeps talking to a single channel; behind it a consistent-hash
//! ring (virtual nodes, deterministic seed) places every write on R replicas,
//! a write is acknowledged once W of them have durably journaled it, and
//! reads either probe a key's replica set (with read repair when replicas
//! diverge) or scatter-gather across the cluster for collection-wide queries.
//! Node failures come from [`NodeFailureInjector`] events or from observing a
//! node's crash injector fire; a rejoining durable node replays the WALs of
//! its live peers to catch up before it serves again. Quorums that cannot be
//! met surface as typed [`NetError::Unavailable`] errors — never hangs.
//!
//! Ring membership is *fixed* at construction: killing a node marks it
//! unavailable but never rebalances the ring, so key placement stays
//! deterministic across failures (the price is reduced write fan-in, paid for
//! by the quorum rule).
//!
//! # Examples
//!
//! ```
//! use datablinder_core::cluster::{ClusterCloud, ClusterConfig};
//! use datablinder_core::cloud::with_collection;
//! use datablinder_core::wire::encode_document;
//! use datablinder_docstore::{Document, Value};
//! use datablinder_netsim::CloudService;
//!
//! let cluster = ClusterCloud::new(ClusterConfig::volatile(3, 2, 2, 7)).unwrap();
//! let doc = Document::new("00ff").with("status", Value::from("ok"));
//! cluster.handle("doc/insert", &with_collection("notes", &encode_document(&doc))).unwrap();
//! let got = cluster.handle("doc/get", &with_collection("notes", b"00ff")).unwrap();
//! assert_eq!(got, encode_document(&doc));
//! ```

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use datablinder_docstore::Value;
use datablinder_kvstore::read_frames;
use datablinder_netsim::{
    BreakerConfig, Channel, CloudService, CrashInjector, LatencyModel, NetError, NodeEvent, NodeFailureInjector,
    NodeFailurePlan, ResilienceConfig, ResilientChannel, RetryPolicy,
};
use datablinder_obs::Recorder;
use datablinder_sse::encoding::{Reader, Writer};
use datablinder_sse::DocId;
use parking_lot::{Mutex, RwLock};

use crate::cloud::{split_collection, with_collection, CloudEngine};
use crate::cloudproto::{is_write_route, Idempotent, PaillierSum, PaillierSumResponse, IDEM_ROUTE};
use crate::durability::{snapshot_path, wal_path, DurabilityOptions, WalRecord};
use crate::error::CoreError;
use crate::tactics::{decode_ids, encode_ids};
use crate::wire::{decode_document, decode_documents, encode_documents};

/// Default virtual nodes per physical node: enough to spread keys evenly
/// for single-digit cluster sizes without making replica lookups slow.
pub const DEFAULT_VNODES: usize = 16;

/// How long a rejoining node's channel clock is advanced so an open circuit
/// breaker admits its half-open probe immediately.
const REJOIN_COOLDOWN: Duration = Duration::from_millis(50);

/// Shape of a [`ClusterCloud`]: node count, replication/quorum levels and
/// per-node durability.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Physical node count (N).
    pub nodes: usize,
    /// Replicas per key (R ≤ N).
    pub replication: usize,
    /// Durable acks required before a write succeeds (W ≤ R).
    pub write_quorum: usize,
    /// Virtual nodes per physical node on the hash ring.
    pub vnodes: usize,
    /// Seed for ring placement and per-node channel jitter; equal seeds
    /// give equal key placement.
    pub seed: u64,
    /// Per-call deadline on every gateway→node hop (`None` = unbounded).
    pub node_deadline: Option<Duration>,
    /// Base directory for per-node durability (`node<i>` subdirectories);
    /// `None` runs every node volatile.
    pub data_dir: Option<PathBuf>,
    /// Per-node auto-snapshot cadence (see
    /// [`DurabilityOptions::snapshot_every`]).
    pub snapshot_every: Option<u64>,
    /// Per-node idempotency dedup-cache bound.
    pub dedup_capacity: Option<usize>,
}

impl ClusterConfig {
    /// A volatile cluster: `nodes` nodes, `replication`-way replication,
    /// `write_quorum` acks per write.
    pub fn volatile(nodes: usize, replication: usize, write_quorum: usize, seed: u64) -> Self {
        ClusterConfig {
            nodes,
            replication,
            write_quorum,
            vnodes: DEFAULT_VNODES,
            seed,
            node_deadline: None,
            data_dir: None,
            snapshot_every: None,
            dedup_capacity: None,
        }
    }

    /// Builder: back every node with a WAL + snapshot under
    /// `dir/node<i>`.
    pub fn durable(mut self, dir: impl Into<PathBuf>) -> Self {
        self.data_dir = Some(dir.into());
        self
    }

    fn validate(&self) -> Result<(), CoreError> {
        if self.nodes == 0 {
            return Err(CoreError::UnsupportedOperation("cluster needs at least one node".into()));
        }
        if self.replication == 0 || self.replication > self.nodes {
            return Err(CoreError::UnsupportedOperation(format!(
                "replication {} must be in 1..={}",
                self.replication, self.nodes
            )));
        }
        if self.write_quorum == 0 || self.write_quorum > self.replication {
            return Err(CoreError::UnsupportedOperation(format!(
                "write quorum {} must be in 1..={}",
                self.write_quorum, self.replication
            )));
        }
        Ok(())
    }
}

// ------------------------------------------------------------------- ring

fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn hash_bytes(seed: u64, bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ seed;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    mix64(h)
}

/// The consistent-hash ring: `(hash, node)` points sorted by hash, fixed at
/// construction.
#[derive(Debug)]
struct Ring {
    points: Vec<(u64, usize)>,
    replication: usize,
    seed: u64,
}

impl Ring {
    fn new(nodes: usize, vnodes: usize, replication: usize, seed: u64) -> Self {
        let vnodes = vnodes.max(1);
        let mut points = Vec::with_capacity(nodes * vnodes);
        for n in 0..nodes {
            for v in 0..vnodes {
                let point = mix64(seed ^ (((n as u64) << 20) | v as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
                points.push((point, n));
            }
        }
        points.sort_unstable();
        Ring { points, replication, seed }
    }

    /// The first `replication` distinct nodes clockwise from the key's hash.
    fn replicas(&self, key: &[u8]) -> Vec<usize> {
        let h = hash_bytes(self.seed, key);
        let start = self.points.partition_point(|&(p, _)| p < h);
        let mut out = Vec::with_capacity(self.replication);
        for i in 0..self.points.len() {
            let (_, node) = self.points[(start + i) % self.points.len()];
            if !out.contains(&node) {
                out.push(node);
                if out.len() == self.replication {
                    break;
                }
            }
        }
        out
    }
}

// ------------------------------------------------------------------- nodes

/// One cluster member: an optional engine (present while the node is up)
/// plus its durable home on disk.
struct NodeState {
    dir: Option<PathBuf>,
    engine: RwLock<Option<CloudEngine>>,
    alive: AtomicBool,
}

impl NodeState {
    fn is_alive(&self) -> bool {
        self.alive.load(Ordering::SeqCst)
    }

    /// Calls the engine regardless of the `alive` flag — the resync path
    /// replays into a node that is not yet serving.
    fn engine_call(&self, route: &str, payload: &[u8]) -> Result<Vec<u8>, NetError> {
        match &*self.engine.read() {
            Some(engine) => engine.handle(route, payload),
            None => Err(NetError::Timeout),
        }
    }
}

impl CloudService for NodeState {
    fn handle(&self, route: &str, payload: &[u8]) -> Result<Vec<u8>, NetError> {
        if !self.is_alive() {
            return Err(NetError::Timeout);
        }
        self.engine_call(route, payload)
    }
}

// ------------------------------------------------------------------ target

/// Where a write lands: one key's replica set, or every node.
enum WriteTarget {
    Key(Vec<u8>),
    Broadcast,
}

/// The routing key for one document: `collection \0 id`.
fn doc_key(collection: &str, id: &[u8]) -> Vec<u8> {
    let mut k = Vec::with_capacity(collection.len() + 1 + id.len());
    k.extend_from_slice(collection.as_bytes());
    k.push(0);
    k.extend_from_slice(id);
    k
}

/// The id prefix of an [`crate::wire::encode_document`] body (the id is its
/// first length-prefixed field — by design, so routing never decodes the
/// whole document).
fn encoded_doc_id(rest: &[u8]) -> Result<&[u8], CoreError> {
    let Some(header) = rest.get(..4) else {
        return Err(CoreError::Wire("doc id header"));
    };
    let len = u32::from_be_bytes(header.try_into().expect("4-byte slice")) as usize;
    rest.get(4..4 + len).ok_or(CoreError::Wire("doc id body"))
}

/// Derives the idempotency token of batch item `idx` from the enclosing
/// envelope's token: deterministic, so a retried batch re-derives the same
/// per-item tokens and every replica's dedup cache absorbs the replay even
/// when the retry reaches a different subset of nodes.
fn sub_token(token: &[u8; 16], idx: u64) -> [u8; 16] {
    let mut h = datablinder_primitives::sha256::Sha256::new();
    h.update(token);
    h.update(&idx.to_be_bytes());
    h.finalize()[..16].try_into().expect("16-byte prefix")
}

fn remote(e: CoreError) -> NetError {
    NetError::Remote(e.to_string())
}

fn is_not_found(err: &NetError) -> bool {
    matches!(err, NetError::Remote(m) if m.starts_with("document not found"))
}

// ----------------------------------------------------------------- cluster

/// N replicated cloud nodes behind one [`CloudService`] facade.
///
/// Construct with [`ClusterCloud::new`], optionally attach a
/// [`NodeFailurePlan`] and a [`Recorder`], then wrap in a
/// [`Channel`](datablinder_netsim::Channel) via `Channel::from_arc`.
pub struct ClusterCloud {
    cfg: ClusterConfig,
    ring: Ring,
    nodes: Vec<Arc<NodeState>>,
    channels: Vec<ResilientChannel>,
    injector: Option<Arc<NodeFailureInjector>>,
    /// Crash injectors to arm on a node's *next* rejoin (tests: crash a
    /// node again while it is resyncing).
    rejoin_crash: Mutex<HashMap<usize, Arc<CrashInjector>>>,
    /// Serializes membership transitions (kill/rejoin/resync) so an op that
    /// drains several injector events applies them atomically.
    membership: Mutex<()>,
    obs: Recorder,
    node_ops: Vec<String>,
    node_errors: Vec<String>,
    kills: AtomicU64,
    rejoins: AtomicU64,
    read_repairs: AtomicU64,
    resync_replayed: AtomicU64,
    resync_wal_gaps: AtomicU64,
}

impl ClusterCloud {
    /// Builds the cluster, opening every node (durably when
    /// [`ClusterConfig::data_dir`] is set).
    ///
    /// # Errors
    ///
    /// [`CoreError::UnsupportedOperation`] on an invalid config; I/O and
    /// recovery failures from durable node opens.
    pub fn new(cfg: ClusterConfig) -> Result<Self, CoreError> {
        cfg.validate()?;
        let ring = Ring::new(cfg.nodes, cfg.vnodes, cfg.replication, cfg.seed);
        let mut nodes = Vec::with_capacity(cfg.nodes);
        let mut channels = Vec::with_capacity(cfg.nodes);
        for i in 0..cfg.nodes {
            let dir = cfg.data_dir.as_ref().map(|base| base.join(format!("node{i}")));
            let engine = match &dir {
                Some(d) => CloudEngine::open_durable_with(
                    d,
                    DurabilityOptions {
                        snapshot_every: cfg.snapshot_every,
                        dedup_capacity: cfg.dedup_capacity,
                        crash: None,
                    },
                )?,
                None => CloudEngine::new(),
            };
            let node = Arc::new(NodeState { dir, engine: RwLock::new(Some(engine)), alive: AtomicBool::new(true) });
            let channel = Channel::from_arc(node.clone(), LatencyModel::instant());
            channels.push(ResilientChannel::new(
                channel,
                ResilienceConfig {
                    retry: RetryPolicy {
                        max_attempts: 2,
                        base_backoff: Duration::from_micros(100),
                        max_backoff: Duration::from_millis(5),
                        jitter: 0.5,
                        retry_remote: false,
                    },
                    breaker: BreakerConfig { failure_threshold: 4, cooldown: REJOIN_COOLDOWN },
                    deadline: cfg.node_deadline,
                    seed: cfg.seed ^ 0xC10D_5EED ^ ((i as u64) << 48),
                },
            ));
            nodes.push(node);
        }
        let node_ops = (0..cfg.nodes).map(|i| format!("cluster.node.{i}.ops")).collect();
        let node_errors = (0..cfg.nodes).map(|i| format!("cluster.node.{i}.errors")).collect();
        Ok(ClusterCloud {
            cfg,
            ring,
            nodes,
            channels,
            injector: None,
            rejoin_crash: Mutex::new(HashMap::new()),
            membership: Mutex::new(()),
            obs: Recorder::default(),
            node_ops,
            node_errors,
            kills: AtomicU64::new(0),
            rejoins: AtomicU64::new(0),
            read_repairs: AtomicU64::new(0),
            resync_replayed: AtomicU64::new(0),
            resync_wal_gaps: AtomicU64::new(0),
        })
    }

    /// Arms a deterministic kill/rejoin schedule, ticked once per handled
    /// cluster operation.
    pub fn set_failure_plan(&mut self, plan: NodeFailurePlan) {
        self.injector = Some(Arc::new(NodeFailureInjector::new(plan)));
    }

    /// The armed failure injector, if any (inspect progress from tests).
    pub fn failure_injector(&self) -> Option<&Arc<NodeFailureInjector>> {
        self.injector.as_ref()
    }

    /// Arms a crash injector for node `idx`'s *next* rejoin: the node's
    /// engine reopens with it, so the resync replay itself can die mid-WAL
    /// (satellite: durability under membership change).
    pub fn arm_rejoin_crash(&self, idx: usize, injector: Arc<CrashInjector>) {
        self.rejoin_crash.lock().insert(idx, injector);
    }

    /// Attaches an observability recorder for cluster-level counters,
    /// quorum-latency histograms and per-node op/error counts.
    pub fn set_recorder(&mut self, recorder: Recorder) {
        self.obs = recorder;
        self.obs.gauge_set("cluster.nodes", self.cfg.nodes as i64);
        self.obs.gauge_set("cluster.ring.vnodes", self.ring.points.len() as i64);
        for i in 0..self.cfg.nodes {
            self.obs.gauge_set(&format!("cluster.node.{i}.alive"), 1);
        }
    }

    /// The cluster's configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.cfg
    }

    /// Whether node `idx` is currently serving.
    pub fn node_alive(&self, idx: usize) -> bool {
        self.nodes[idx].is_alive()
    }

    /// Runs `f` against node `idx`'s engine (`None` while the node is down).
    pub fn with_node_engine<T>(&self, idx: usize, f: impl FnOnce(&CloudEngine) -> T) -> Option<T> {
        self.nodes[idx].engine.read().as_ref().map(f)
    }

    /// The replica set of one document key, in ring (preference) order.
    pub fn doc_replicas(&self, collection: &str, id: &str) -> Vec<usize> {
        self.ring.replicas(&doc_key(collection, id.as_bytes()))
    }

    /// Nodes killed so far (events + observed crash injectors).
    pub fn kills(&self) -> u64 {
        self.kills.load(Ordering::Relaxed)
    }

    /// Successful rejoins so far.
    pub fn rejoins(&self) -> u64 {
        self.rejoins.load(Ordering::Relaxed)
    }

    /// Divergent or missing replicas repaired by reads.
    pub fn read_repairs(&self) -> u64 {
        self.read_repairs.load(Ordering::Relaxed)
    }

    /// WAL records replayed into rejoining nodes from their peers.
    pub fn resync_replayed(&self) -> u64 {
        self.resync_replayed.load(Ordering::Relaxed)
    }

    /// Resyncs that observed a peer WAL already compacted by a snapshot —
    /// records before the compaction point cannot be replayed from that
    /// peer (a documented limitation; read repair closes the gap lazily).
    pub fn resync_wal_gaps(&self) -> u64 {
        self.resync_wal_gaps.load(Ordering::Relaxed)
    }

    /// Marks node `idx` down and drops its engine (disk state stays).
    pub fn kill_node(&self, idx: usize) {
        let _guard = self.membership.lock();
        self.kill_locked(idx);
    }

    /// Restarts node `idx` from its own disk, resyncs it from live peers'
    /// WALs and marks it serving. Returns the number of replayed records.
    ///
    /// # Errors
    ///
    /// Recovery/I-O failures, or [`CoreError::Storage`] when the node dies
    /// again mid-resync (it stays down; a later rejoin retries).
    pub fn rejoin_node(&self, idx: usize) -> Result<u64, CoreError> {
        let _guard = self.membership.lock();
        self.rejoin_locked(idx)
    }

    fn kill_locked(&self, idx: usize) {
        let node = &self.nodes[idx];
        if !node.is_alive() && node.engine.read().is_none() {
            return;
        }
        node.alive.store(false, Ordering::SeqCst);
        // Dropping the engine models the process dying: in-memory state is
        // gone; `journal` only acks flushed records, so every acknowledged
        // write is already on disk.
        *node.engine.write() = None;
        self.kills.fetch_add(1, Ordering::Relaxed);
        self.obs.count("cluster.kill", 1);
        self.obs.gauge_set(&format!("cluster.node.{idx}.alive"), 0);
    }

    fn rejoin_locked(&self, idx: usize) -> Result<u64, CoreError> {
        let node = &self.nodes[idx];
        let engine = match &node.dir {
            Some(dir) => {
                let crash = self.rejoin_crash.lock().remove(&idx);
                CloudEngine::open_durable_with(
                    dir,
                    DurabilityOptions {
                        snapshot_every: self.cfg.snapshot_every,
                        dedup_capacity: self.cfg.dedup_capacity,
                        crash,
                    },
                )?
            }
            None => CloudEngine::new(),
        };
        *node.engine.write() = Some(engine);
        match self.resync_locked(idx) {
            Ok(replayed) => {
                node.alive.store(true, Ordering::SeqCst);
                // Let an open breaker admit the next call as its half-open
                // probe instead of fast-failing through the cooldown.
                self.channels[idx].advance(REJOIN_COOLDOWN);
                self.rejoins.fetch_add(1, Ordering::Relaxed);
                self.obs.count("cluster.rejoin", 1);
                self.obs.count("cluster.resync.replayed", replayed);
                self.obs.gauge_set(&format!("cluster.node.{idx}.alive"), 1);
                Ok(replayed)
            }
            Err(e) => {
                // Died again mid-resync: stay down, disk keeps whatever the
                // crash point left (recovery truncates a torn tail on the
                // next rejoin).
                *node.engine.write() = None;
                Err(e)
            }
        }
    }

    /// Replays live durable peers' WALs into the freshly reopened node:
    /// records the node already journaled itself are skipped (its own WAL
    /// ids are the "last durable seq" watermark), records for keys it does
    /// not replicate are skipped, and cross-peer duplicates are folded by
    /// record id. Replay preserves each peer's order; cross-peer order is
    /// by peer index (peers hold disjoint missed suffixes in practice).
    fn resync_locked(&self, idx: usize) -> Result<u64, CoreError> {
        let node = &self.nodes[idx];
        let Some(own_dir) = &node.dir else {
            // A volatile node has no WAL to resync from or into; it returns
            // empty and read repair refills it lazily.
            return Ok(0);
        };
        let mut seen: HashSet<[u8; 16]> = HashSet::new();
        if let Ok(scan) = read_frames(&wal_path(own_dir)) {
            for body in &scan.frames {
                if let Ok(rec) = WalRecord::decode(body) {
                    seen.insert(rec.id);
                }
            }
        }
        let mut replayed = 0u64;
        for (peer, state) in self.nodes.iter().enumerate() {
            if peer == idx || !state.is_alive() {
                continue;
            }
            let Some(peer_dir) = &state.dir else { continue };
            let Ok(scan) = read_frames(&wal_path(peer_dir)) else { continue };
            let records: Vec<WalRecord> = scan.frames.iter().filter_map(|b| WalRecord::decode(b).ok()).collect();
            if snapshot_path(peer_dir).exists() && records.first().is_none_or(|r| r.seq > 1) {
                // The peer compacted: records before its snapshot point are
                // no longer individually replayable.
                self.resync_wal_gaps.fetch_add(1, Ordering::Relaxed);
                self.obs.count("cluster.resync.wal_gap", 1);
            }
            for rec in records {
                if seen.contains(&rec.id) || !self.targets_node(&rec.route, &rec.payload, idx) {
                    continue;
                }
                seen.insert(rec.id);
                match node.engine_call(&rec.route, &rec.payload) {
                    // Application errors are recorded history (e.g. a
                    // duplicate insert whose first application was
                    // snapshot-compacted out of our own WAL) — not resync
                    // failures.
                    Ok(_) | Err(NetError::Remote(_)) => replayed += 1,
                    Err(_) => {
                        return Err(CoreError::Storage(format!("node {idx} crashed during resync")));
                    }
                }
            }
        }
        self.resync_replayed.fetch_add(replayed, Ordering::Relaxed);
        Ok(replayed)
    }

    /// Whether a journaled `(route, payload)` belongs on node `idx`.
    fn targets_node(&self, route: &str, payload: &[u8], idx: usize) -> bool {
        if route == IDEM_ROUTE {
            let Ok(env) = Idempotent::decode(payload) else { return true };
            return match self.write_target(&env.route, &env.payload) {
                Ok(WriteTarget::Key(k)) => self.ring.replicas(&k).contains(&idx),
                _ => true,
            };
        }
        match self.write_target(route, payload) {
            Ok(WriteTarget::Key(k)) => self.ring.replicas(&k).contains(&idx),
            _ => true,
        }
    }

    /// Drains pending membership events before handling an operation.
    fn pump_events(&self) {
        let Some(injector) = &self.injector else { return };
        let events = {
            let _guard = self.membership.lock();
            injector.on_op()
        };
        for event in events {
            match event {
                NodeEvent::Kill(i) if i < self.nodes.len() => self.kill_node(i),
                NodeEvent::Rejoin(i) if i < self.nodes.len() => {
                    // A failed rejoin (crash mid-resync) leaves the node
                    // down; only a later rejoin event retries it.
                    let _ = self.rejoin_node(i);
                }
                _ => {}
            }
        }
    }

    /// A node that answered with a transport error may have crashed for
    /// good (its crash injector fired): observe that and mark it down so
    /// later operations skip it instead of burning retries.
    fn note_node_failure(&self, idx: usize) {
        self.obs.count(&self.node_errors[idx], 1);
        let crashed = self.nodes[idx].engine.read().as_ref().is_some_and(CloudEngine::crashed);
        if crashed {
            self.kill_node(idx);
        }
    }

    // ------------------------------------------------------------- writes

    fn write_target(&self, route: &str, payload: &[u8]) -> Result<WriteTarget, CoreError> {
        if let Some(op) = route.strip_prefix("doc/") {
            let (collection, rest) = split_collection(payload)?;
            return Ok(match op {
                "insert" | "update" => WriteTarget::Key(doc_key(&collection, encoded_doc_id(rest)?)),
                "delete" => WriteTarget::Key(doc_key(&collection, rest)),
                // ensure_index and future doc-level writes shape every
                // replica's view of the collection.
                _ => WriteTarget::Broadcast,
            });
        }
        let parts: Vec<&str> = route.split('/').collect();
        if let ["tactic", name, scope, op] = parts[..] {
            // Index mutations cluster on the scope so its search route
            // reads the same replicas the updates wrote; setup broadcasts
            // (every node may need the scope's public parameters).
            return Ok(if op == "setup" {
                WriteTarget::Broadcast
            } else {
                WriteTarget::Key(format!("tactic/{name}/{scope}").into_bytes())
            });
        }
        // kv/* and unknown write routes touch shared substrate state.
        Ok(WriteTarget::Broadcast)
    }

    /// Sends one write to its replica set and succeeds once W replicas
    /// durably acked. Replicas are tried in ring order (deterministic);
    /// down nodes count as missing acks.
    fn quorum_write(&self, target: &WriteTarget, route: &str, payload: &[u8]) -> Result<Vec<u8>, NetError> {
        let replicas: Vec<usize> = match target {
            WriteTarget::Key(k) => self.ring.replicas(k),
            WriteTarget::Broadcast => (0..self.cfg.nodes).collect(),
        };
        let quorum = self.cfg.write_quorum.min(replicas.len()).max(1);
        let started = self.obs.start();
        let mut acks = 0usize;
        let mut first: Option<Vec<u8>> = None;
        let mut app_err: Option<NetError> = None;
        for &i in &replicas {
            if !self.nodes[i].is_alive() {
                continue;
            }
            self.obs.count(&self.node_ops[i], 1);
            match self.channels[i].call(route, payload) {
                Ok(resp) => {
                    acks += 1;
                    if first.is_none() {
                        first = Some(resp);
                    }
                }
                Err(NetError::Remote(m)) => app_err = Some(NetError::Remote(m)),
                Err(_) => self.note_node_failure(i),
            }
        }
        if let Some(t0) = started {
            self.obs.observe("cluster.write.quorum_latency", t0.elapsed());
        }
        if acks >= quorum {
            self.obs.count("cluster.write.quorum_ok", 1);
            return Ok(first.unwrap_or_default());
        }
        if let Some(e) = app_err {
            // Deterministic engines fail identically on every replica: the
            // application error *is* the answer, not an availability issue.
            return Err(e);
        }
        self.obs.count("cluster.write.quorum_fail", 1);
        Err(NetError::Unavailable(format!("write quorum not met: {acks}/{quorum} acks for {route}")))
    }

    /// Decomposes a sealed batch: every write item becomes its own quorum
    /// write under a token derived from the envelope's (so cross-replica
    /// retries dedup), reads run through the clustered read paths, and
    /// responses keep the original order. Like the single-node engine, the
    /// batch aborts on the first failing item.
    fn handle_batch(&self, env: &Idempotent) -> Result<Vec<u8>, NetError> {
        let mut r = Reader::new(&env.payload);
        let items = r.list().map_err(|e| remote(e.into()))?;
        if items.len() % 2 != 0 {
            return Err(remote(CoreError::Wire("batch item count")));
        }
        let mut responses = Vec::with_capacity(items.len() / 2);
        for (idx, pair) in items.chunks(2).enumerate() {
            let route = std::str::from_utf8(&pair[0]).map_err(|_| remote(CoreError::Wire("utf8 route")))?;
            if route == "batch" || route == IDEM_ROUTE {
                return Err(remote(CoreError::UnsupportedOperation("nested batch".into())));
            }
            let resp = if is_write_route(route) {
                let target = self.write_target(route, &pair[1]).map_err(remote)?;
                let sub = Idempotent {
                    token: sub_token(&env.token, idx as u64),
                    route: route.to_string(),
                    payload: pair[1].to_vec(),
                };
                self.quorum_write(&target, IDEM_ROUTE, &sub.encode())?
            } else {
                self.clustered_read(route, &pair[1])?
            };
            responses.push(resp);
        }
        let mut w = Writer::new();
        w.list(&responses);
        Ok(w.finish())
    }

    // -------------------------------------------------------------- reads

    fn clustered_read(&self, route: &str, payload: &[u8]) -> Result<Vec<u8>, NetError> {
        match route {
            "doc/get" => self.read_doc(payload),
            "doc/get_many" => self.read_get_many(payload),
            "doc/count" => {
                let (collection, _) = split_collection(payload).map_err(remote)?;
                let ids = self.union_ids(&collection)?;
                Ok((ids.len() as u64).to_be_bytes().to_vec())
            }
            "doc/list_ids" => {
                let (collection, _) = split_collection(payload).map_err(remote)?;
                let ids = self.union_ids(&collection)?;
                let mut w = Writer::new();
                w.list(&ids.into_iter().map(String::into_bytes).collect::<Vec<_>>());
                Ok(w.finish())
            }
            "doc/find_ids_eq" | "doc/find_ids_range" | "doc/find_ids_dnf" => {
                let mut union: BTreeSet<DocId> = BTreeSet::new();
                for resp in self.scatter(route, payload)? {
                    union.extend(decode_ids(&resp).map_err(remote)?);
                }
                Ok(encode_ids(&union.into_iter().collect::<Vec<_>>()))
            }
            "doc/extreme" => self.read_extreme(payload),
            "doc/agg_plain" => self.read_agg_plain(payload),
            _ => self.read_tactic(route, payload),
        }
    }

    /// Probes every live replica of the document, answers with the majority
    /// value (lexicographically smallest on ties, so the answer is
    /// deterministic) and repairs divergent or missing replicas in place.
    fn read_doc(&self, payload: &[u8]) -> Result<Vec<u8>, NetError> {
        let (collection, id) = split_collection(payload).map_err(remote)?;
        let replicas = self.ring.replicas(&doc_key(&collection, id));
        let mut results: Vec<(usize, Result<Vec<u8>, NetError>)> = Vec::with_capacity(replicas.len());
        for &i in &replicas {
            if !self.nodes[i].is_alive() {
                continue;
            }
            self.obs.count(&self.node_ops[i], 1);
            let outcome = self.channels[i].call("doc/get", payload);
            if matches!(&outcome, Err(e) if !is_not_found(e) && !matches!(e, NetError::Remote(_))) {
                self.note_node_failure(i);
            }
            results.push((i, outcome));
        }
        let mut counts: BTreeMap<&[u8], usize> = BTreeMap::new();
        for (_, outcome) in &results {
            if let Ok(body) = outcome {
                *counts.entry(body.as_slice()).or_default() += 1;
            }
        }
        let Some(winner) = counts.iter().max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(a.0))).map(|(body, _)| body.to_vec())
        else {
            // No replica produced the document.
            if let Some((_, Err(e))) = results.iter().find(|(_, o)| matches!(o, Err(e) if is_not_found(e))) {
                return Err(e.clone());
            }
            if let Some((_, Err(NetError::Remote(m)))) =
                results.iter().find(|(_, o)| matches!(o, Err(NetError::Remote(_))))
            {
                return Err(NetError::Remote(m.clone()));
            }
            return Err(NetError::Unavailable(format!("no live replica answered doc/get in {collection}")));
        };
        for (i, outcome) in &results {
            let repair_route = match outcome {
                Ok(body) if *body != winner => "doc/update",
                Err(e) if is_not_found(e) => "doc/insert",
                _ => continue,
            };
            if self.channels[*i].call(repair_route, &with_collection(&collection, &winner)).is_ok() {
                self.read_repairs.fetch_add(1, Ordering::Relaxed);
                self.obs.count("cluster.read_repair", 1);
            }
        }
        Ok(winner)
    }

    /// Scatter-gathers `get_many`: every live node contributes the subset
    /// it holds; the union is reassembled in request order.
    fn read_get_many(&self, payload: &[u8]) -> Result<Vec<u8>, NetError> {
        let (_, rest) = split_collection(payload).map_err(remote)?;
        let mut r = Reader::new(rest);
        let requested = r.list().map_err(|e| remote(e.into()))?;
        let mut found: HashMap<String, datablinder_docstore::Document> = HashMap::new();
        for resp in self.scatter("doc/get_many", payload)? {
            for doc in decode_documents(&resp).map_err(remote)? {
                found.entry(doc.id().to_string()).or_insert(doc);
            }
        }
        let docs: Vec<_> =
            requested.iter().filter_map(|id| std::str::from_utf8(id).ok()).filter_map(|id| found.remove(id)).collect();
        Ok(encode_documents(&docs))
    }

    /// Scatter-gathers `extreme`: each node nominates its local extreme,
    /// the cluster fetches the candidates and compares their stored bytes
    /// (ties break toward the smaller id, so the answer is deterministic).
    fn read_extreme(&self, payload: &[u8]) -> Result<Vec<u8>, NetError> {
        let (collection, rest) = split_collection(payload).map_err(remote)?;
        if rest.is_empty() {
            return Err(remote(CoreError::Wire("extreme payload")));
        }
        let want_max = rest[0] == 1;
        let field = std::str::from_utf8(&rest[1..]).map_err(|_| remote(CoreError::Wire("utf8 field")))?;
        let mut candidates: BTreeSet<String> = BTreeSet::new();
        for resp in self.scatter("doc/extreme", payload)? {
            if !resp.is_empty() {
                candidates.insert(String::from_utf8(resp).map_err(|_| remote(CoreError::Wire("utf8 id")))?);
            }
        }
        let mut best: Option<(Vec<u8>, String)> = None;
        for id in candidates {
            let body = match self.read_doc(&with_collection(&collection, id.as_bytes())) {
                Ok(body) => body,
                // The candidate vanished between the scatter and the fetch.
                Err(e) if is_not_found(&e) => continue,
                Err(e) => return Err(e),
            };
            let doc = decode_document(&body).map_err(remote)?;
            let Some(bytes) = doc.get(field).and_then(Value::as_bytes).map(<[u8]>::to_vec) else {
                continue;
            };
            best = Some(match best {
                None => (bytes, id),
                Some(prev) => {
                    let challenger = (bytes, id);
                    let challenger_wins = match challenger.0.cmp(&prev.0) {
                        std::cmp::Ordering::Equal => challenger.1 < prev.1,
                        std::cmp::Ordering::Greater => want_max,
                        std::cmp::Ordering::Less => !want_max,
                    };
                    if challenger_wins {
                        challenger
                    } else {
                        prev
                    }
                }
            });
        }
        Ok(best.map(|(_, id)| id.into_bytes()).unwrap_or_default())
    }

    /// Distributes a plaintext aggregate: every document is assigned to its
    /// first live replica, each node aggregates only its assignment via
    /// `doc/agg_plain_ids`, and the partial sums/counts are combined here.
    fn read_agg_plain(&self, payload: &[u8]) -> Result<Vec<u8>, NetError> {
        let (collection, rest) = split_collection(payload).map_err(remote)?;
        let field = std::str::from_utf8(rest).map_err(|_| remote(CoreError::Wire("utf8 field")))?;
        let per_node = self.partition_ids(&collection, self.union_ids(&collection)?)?;
        let mut sum = 0.0f64;
        let mut count = 0u64;
        for (node, ids) in per_node {
            let mut w = Writer::new();
            w.bytes(field.as_bytes());
            w.list(&ids.into_iter().map(String::into_bytes).collect::<Vec<_>>());
            let resp = match self.channels[node].call("doc/agg_plain_ids", &with_collection(&collection, &w.finish())) {
                Ok(resp) => resp,
                Err(NetError::Remote(m)) => return Err(NetError::Remote(m)),
                Err(_) => {
                    self.note_node_failure(node);
                    return Err(NetError::Unavailable(format!("aggregate partition on node {node} unreachable")));
                }
            };
            if resp.len() < 16 {
                return Err(remote(CoreError::Wire("agg response")));
            }
            sum += f64::from_be_bytes(resp[..8].try_into().expect("8-byte slice"));
            count += u64::from_be_bytes(resp[8..16].try_into().expect("8-byte slice"));
        }
        let mut out = sum.to_be_bytes().to_vec();
        out.extend_from_slice(&count.to_be_bytes());
        Ok(out)
    }

    fn read_tactic(&self, route: &str, payload: &[u8]) -> Result<Vec<u8>, NetError> {
        let parts: Vec<&str> = route.split('/').collect();
        if let ["tactic", name, scope, op] = parts[..] {
            if name == "paillier" && op == "sum" {
                return self.read_paillier_sum(scope, route, payload);
            }
            // Index reads go to the replicas its writes clustered on, in
            // ring order, failing over past dead nodes.
            let key = format!("tactic/{name}/{scope}").into_bytes();
            let replicas = self.ring.replicas(&key);
            return self.first_live_of(&replicas, route, payload);
        }
        // Unknown read route: any live node (replicated state or none).
        let all: Vec<usize> = (0..self.cfg.nodes).collect();
        self.first_live_of(&all, route, payload)
    }

    /// Distributes a Paillier sum: each partition node folds its own
    /// documents under the scope's public key, and one of them multiplies
    /// the partial ciphertexts together (`combine`) — the cluster never
    /// needs the secret key, preserving the tactic's security model.
    fn read_paillier_sum(&self, scope: &str, route: &str, payload: &[u8]) -> Result<Vec<u8>, NetError> {
        let req = PaillierSum::decode(payload).map_err(remote)?;
        let ids = if req.ids.is_empty() { self.union_ids(&req.collection)? } else { req.ids.clone() };
        if ids.is_empty() {
            return Ok(PaillierSumResponse { ciphertext: Vec::new(), count: 0 }.encode());
        }
        let per_node = self.partition_ids(&req.collection, ids)?;
        let mut partials = Vec::with_capacity(per_node.len());
        let mut combine_at = None;
        for (node, ids) in per_node {
            let sub = PaillierSum { collection: req.collection.clone(), field: req.field.clone(), ids };
            match self.channels[node].call(route, &sub.encode()) {
                Ok(resp) => {
                    combine_at.get_or_insert(node);
                    partials.push(resp);
                }
                Err(NetError::Remote(m)) => return Err(NetError::Remote(m)),
                Err(_) => {
                    self.note_node_failure(node);
                    return Err(NetError::Unavailable(format!("paillier partition on node {node} unreachable")));
                }
            }
        }
        if partials.len() == 1 {
            return Ok(partials.pop().expect("one partial"));
        }
        let mut w = Writer::new();
        w.list(&partials);
        let combine_route = format!("tactic/paillier/{scope}/combine");
        // Any node that served a partial holds the scope key.
        let at = combine_at.expect("at least one partition");
        match self.channels[at].call(&combine_route, &w.finish()) {
            Ok(resp) => Ok(resp),
            Err(NetError::Remote(m)) => Err(NetError::Remote(m)),
            Err(_) => Err(NetError::Unavailable(format!("paillier combine on node {at} unreachable"))),
        }
    }

    // ------------------------------------------------------------ helpers

    /// Fans a read out to every live node. Fails with
    /// [`NetError::Unavailable`] when the unreachable set is large enough
    /// that some key could have *no* live replica (the union might miss
    /// documents) and propagates application errors conservatively.
    fn scatter(&self, route: &str, payload: &[u8]) -> Result<Vec<Vec<u8>>, NetError> {
        let mut out = Vec::with_capacity(self.cfg.nodes);
        let mut unreachable = 0usize;
        let mut app_err: Option<NetError> = None;
        for i in 0..self.cfg.nodes {
            if !self.nodes[i].is_alive() {
                unreachable += 1;
                continue;
            }
            self.obs.count(&self.node_ops[i], 1);
            match self.channels[i].call(route, payload) {
                Ok(resp) => out.push(resp),
                Err(NetError::Remote(m)) => app_err = Some(NetError::Remote(m)),
                Err(_) => {
                    unreachable += 1;
                    self.note_node_failure(i);
                }
            }
        }
        if unreachable >= self.cfg.replication {
            return Err(NetError::Unavailable(format!(
                "{unreachable} of {} nodes unreachable with {}-way replication: scatter result would be partial",
                self.cfg.nodes, self.cfg.replication
            )));
        }
        if let Some(e) = app_err {
            return Err(e);
        }
        Ok(out)
    }

    /// Tries `candidates` in order; the first node that answers (success or
    /// application error) decides.
    fn first_live_of(&self, candidates: &[usize], route: &str, payload: &[u8]) -> Result<Vec<u8>, NetError> {
        for &i in candidates {
            if !self.nodes[i].is_alive() {
                continue;
            }
            self.obs.count(&self.node_ops[i], 1);
            match self.channels[i].call(route, payload) {
                Ok(resp) => return Ok(resp),
                Err(NetError::Remote(m)) => return Err(NetError::Remote(m)),
                Err(_) => self.note_node_failure(i),
            }
        }
        Err(NetError::Unavailable(format!("no live replica for {route}")))
    }

    /// The distinct document ids of a collection across all live nodes.
    fn union_ids(&self, collection: &str) -> Result<Vec<String>, NetError> {
        let payload = with_collection(collection, &[]);
        let mut union: BTreeSet<String> = BTreeSet::new();
        for resp in self.scatter("doc/list_ids", &payload)? {
            let mut r = Reader::new(&resp);
            for id in r.list().map_err(|e| remote(e.into()))? {
                union.insert(String::from_utf8(id).map_err(|_| remote(CoreError::Wire("utf8 id")))?);
            }
        }
        Ok(union.into_iter().collect())
    }

    /// Assigns each document id to the first live node of its replica set.
    fn partition_ids(&self, collection: &str, ids: Vec<String>) -> Result<BTreeMap<usize, Vec<String>>, NetError> {
        let mut per_node: BTreeMap<usize, Vec<String>> = BTreeMap::new();
        for id in ids {
            let replicas = self.ring.replicas(&doc_key(collection, id.as_bytes()));
            let Some(&live) = replicas.iter().find(|&&r| self.nodes[r].is_alive()) else {
                return Err(NetError::Unavailable(format!("every replica of document {id} is down")));
            };
            per_node.entry(live).or_default().push(id);
        }
        Ok(per_node)
    }
}

impl CloudService for ClusterCloud {
    fn handle(&self, route: &str, payload: &[u8]) -> Result<Vec<u8>, NetError> {
        self.pump_events();
        self.obs.count("cluster.ops", 1);
        if route == IDEM_ROUTE {
            let env = Idempotent::decode(payload).map_err(remote)?;
            if env.route == "batch" {
                return self.handle_batch(&env);
            }
            let target = self.write_target(&env.route, &env.payload).map_err(remote)?;
            // The whole envelope replicates: every replica dedups on the
            // same token, so a retry that lands on a different replica
            // subset cannot double-apply.
            return self.quorum_write(&target, IDEM_ROUTE, payload);
        }
        if route == "batch" {
            // A bare batch (no envelope) still decomposes; its item tokens
            // derive from the batch content so retries stay idempotent.
            let mut h = datablinder_primitives::sha256::Sha256::new();
            h.update(payload);
            let token: [u8; 16] = h.finalize()[..16].try_into().expect("16-byte prefix");
            let env = Idempotent { token, route: "batch".into(), payload: payload.to_vec() };
            return self.handle_batch(&env);
        }
        if is_write_route(route) {
            let target = self.write_target(route, payload).map_err(remote)?;
            return self.quorum_write(&target, route, payload);
        }
        self.clustered_read(route, payload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::encode_document;
    use datablinder_docstore::Document;

    fn insert_payload(collection: &str, idx: u8) -> Vec<u8> {
        let id = DocId([idx; 16]);
        let doc = Document::new(id.to_hex()).with("v", Value::from(i64::from(idx)));
        with_collection(collection, &encode_document(&doc))
    }

    #[test]
    fn ring_is_deterministic_and_distinct() {
        let a = Ring::new(5, 16, 3, 42);
        let b = Ring::new(5, 16, 3, 42);
        for key in [b"alpha".as_slice(), b"beta", b"gamma", b""] {
            let reps = a.replicas(key);
            assert_eq!(reps, b.replicas(key), "same seed, same placement");
            assert_eq!(reps.len(), 3);
            let distinct: BTreeSet<_> = reps.iter().collect();
            assert_eq!(distinct.len(), 3, "replicas are distinct nodes");
        }
        let c = Ring::new(5, 16, 3, 43);
        let moved = (0u32..64).filter(|i| a.replicas(&i.to_be_bytes()) != c.replicas(&i.to_be_bytes())).count();
        assert!(moved > 0, "a different seed moves keys");
    }

    #[test]
    fn ring_spreads_keys_across_nodes() {
        let ring = Ring::new(4, 16, 1, 7);
        let mut hits = [0usize; 4];
        for i in 0u32..256 {
            hits[ring.replicas(&i.to_be_bytes())[0]] += 1;
        }
        for (node, &h) in hits.iter().enumerate() {
            assert!(h > 0, "node {node} owns no keys: {hits:?}");
        }
    }

    #[test]
    fn write_replicates_and_survives_replica_loss() {
        let cluster = ClusterCloud::new(ClusterConfig::volatile(5, 3, 2, 9)).unwrap();
        cluster.handle("doc/insert", &insert_payload("notes", 1)).unwrap();
        let id = DocId([1; 16]).to_hex();
        let replicas = cluster.doc_replicas("notes", &id);
        assert_eq!(replicas.len(), 3);
        for &r in &replicas {
            let held = cluster.with_node_engine(r, |e| e.docs().collection("notes").get(&id).is_some()).unwrap();
            assert!(held, "replica {r} holds the document");
        }
        // Killing R-1 replicas leaves the read answerable.
        cluster.kill_node(replicas[0]);
        cluster.kill_node(replicas[1]);
        let got = cluster.handle("doc/get", &with_collection("notes", id.as_bytes())).unwrap();
        assert!(!got.is_empty());
    }

    #[test]
    fn unmet_quorum_is_typed_unavailable_not_a_hang() {
        let cluster = ClusterCloud::new(ClusterConfig::volatile(3, 3, 3, 5)).unwrap();
        cluster.kill_node(0);
        let err = cluster.handle("doc/insert", &insert_payload("notes", 2)).unwrap_err();
        assert!(matches!(err, NetError::Unavailable(_)), "got {err:?}");
    }

    #[test]
    fn read_repair_heals_a_stale_replica() {
        let cluster = ClusterCloud::new(ClusterConfig::volatile(3, 2, 1, 11)).unwrap();
        cluster.handle("doc/insert", &insert_payload("notes", 3)).unwrap();
        let id = DocId([3; 16]).to_hex();
        let replicas = cluster.doc_replicas("notes", &id);
        // Erase the document on one replica behind the cluster's back.
        cluster.with_node_engine(replicas[1], |e| e.docs().collection("notes").delete(&id).unwrap()).unwrap();
        cluster.handle("doc/get", &with_collection("notes", id.as_bytes())).unwrap();
        assert_eq!(cluster.read_repairs(), 1);
        let healed =
            cluster.with_node_engine(replicas[1], |e| e.docs().collection("notes").get(&id).is_some()).unwrap();
        assert!(healed, "read repair reinserted the lost replica");
    }

    #[test]
    fn batch_sub_tokens_are_deterministic_and_distinct() {
        let t = [7u8; 16];
        assert_eq!(sub_token(&t, 0), sub_token(&t, 0));
        assert_ne!(sub_token(&t, 0), sub_token(&t, 1));
        assert_ne!(sub_token(&t, 0), sub_token(&[8u8; 16], 0));
    }

    #[test]
    fn scatter_reads_union_across_partitions() {
        let cluster = ClusterCloud::new(ClusterConfig::volatile(4, 1, 1, 13)).unwrap();
        for i in 1..=6u8 {
            cluster.handle("doc/insert", &insert_payload("notes", i)).unwrap();
        }
        // With R=1 every doc lives on exactly one node, so the count only
        // comes out right if the read really unions all partitions.
        let count = cluster.handle("doc/count", &with_collection("notes", &[])).unwrap();
        assert_eq!(u64::from_be_bytes(count[..8].try_into().unwrap()), 6);
        let ids = cluster.handle("doc/list_ids", &with_collection("notes", &[])).unwrap();
        let mut r = Reader::new(&ids);
        assert_eq!(r.list().unwrap().len(), 6);
    }
}
