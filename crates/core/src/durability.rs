//! Crash consistency for the untrusted zone: a unified cloud WAL +
//! snapshot mechanism, and the restart harness that rebuilds a
//! [`CloudEngine`](crate::cloud::CloudEngine) from disk mid-workload.
//!
//! The paper deploys the resource subsystem on real stores (MongoDB, Redis
//! in "semi-persistent durability mode") that restart and recover; the
//! in-memory `CloudEngine` reproduced here previously evaporated on crash,
//! and a single document insert fans out to several tactic indexes with no
//! atomicity if the cloud dies mid-fan-out. This module closes that gap:
//!
//! * **WAL** (`wal.bin`) — every mutating route is journaled *before* it
//!   is applied, as a [`WalRecord`] carrying a monotonically increasing
//!   sequence number and the PR-1 idempotency fingerprint as its record
//!   id. Frames reuse `kvstore::log`'s CRC-checked framing, so a torn
//!   append is truncated on recovery and mid-file corruption is detected
//!   at its offset.
//! * **Snapshots** (`snapshot.bin`) — a single CRC frame holding the full
//!   KV state (as replayable `LogRecord`s), every DocStore collection
//!   (documents + secondary-index fields) and the WAL high-water sequence
//!   number. Written to a temp file and atomically renamed, then the WAL
//!   is truncated — the snapshot *compacts* the log.
//! * **Recovery** — startup restores the snapshot, replays the WAL tail
//!   (skipping records at or below the snapshot's sequence, so a crash
//!   between snapshot rename and WAL truncation never double-applies),
//!   truncates any torn tail, and resumes appending. Replaying journaled
//!   idempotency envelopes also repopulates the dedup cache, so gateway
//!   retries that bridge a crash are answered from the recorded outcome
//!   instead of re-executing.
//!
//! [`RestartableCloud`] packages the protocol as a [`CloudService`]: when
//! the active incarnation's crash injector fires, the next call rebuilds
//! the engine from disk, invisibly to the gateway beyond a retryable
//! timeout.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use datablinder_docstore::DocStore;
use datablinder_kvstore::{frame_bytes, read_frames, FrameWriter, KvError, KvStore, LogRecord};
use datablinder_netsim::{CloudService, CrashInjector, CrashVerdict, NetError};
use datablinder_sse::encoding::{Reader, Writer};
use parking_lot::{Mutex, RwLock};

use crate::cloud::CloudEngine;
use crate::cloudproto::{Idempotent, IDEM_ROUTE};
use crate::error::CoreError;
use crate::wire::{decode_document, encode_document};

/// WAL file name inside a durability directory.
pub const WAL_FILE: &str = "wal.bin";
/// Snapshot file name inside a durability directory.
pub const SNAPSHOT_FILE: &str = "snapshot.bin";
/// Snapshot format magic + version.
const SNAP_MAGIC: &[u8] = b"DBSNAP1";

/// Path of the WAL inside `dir`.
pub fn wal_path(dir: &Path) -> PathBuf {
    dir.join(WAL_FILE)
}

/// Path of the snapshot inside `dir`.
pub fn snapshot_path(dir: &Path) -> PathBuf {
    dir.join(SNAPSHOT_FILE)
}

// -------------------------------------------------------------- WAL record

/// One journaled cloud mutation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    /// Monotonically increasing sequence number (1-based; the snapshot
    /// stores the high-water mark so replay can skip covered records).
    pub seq: u64,
    /// Record id: the idempotency token for [`IDEM_ROUTE`] envelopes,
    /// otherwise the first 16 bytes of the request fingerprint
    /// (SHA-256 over route and payload) — the PR-1 dedup identity.
    pub id: [u8; 16],
    /// The journaled route.
    pub route: String,
    /// The journaled payload.
    pub payload: Vec<u8>,
}

impl WalRecord {
    /// Builds a record for `(route, payload)` at sequence `seq`, deriving
    /// the record id.
    pub fn new(seq: u64, route: &str, payload: &[u8]) -> Self {
        let id = if route == IDEM_ROUTE {
            match Idempotent::decode(payload) {
                Ok(env) => env.token,
                Err(_) => fingerprint_id(route, payload),
            }
        } else {
            fingerprint_id(route, payload)
        };
        WalRecord { seq, id, route: route.to_string(), payload: payload.to_vec() }
    }

    /// Serializes the record body (frame-less; the WAL wraps it in a CRC
    /// frame).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.u64(self.seq);
        w.bytes(&self.id);
        w.bytes(self.route.as_bytes());
        w.bytes(&self.payload);
        w.finish()
    }

    /// Deserializes a record body.
    ///
    /// # Errors
    ///
    /// [`CoreError::Storage`] on malformed bodies — inside a CRC-valid
    /// frame that is corruption, not truncation.
    pub fn decode(body: &[u8]) -> Result<Self, CoreError> {
        let mut r = Reader::new(body);
        let parse = |r: &mut Reader| -> Result<WalRecord, datablinder_sse::SseError> {
            let seq = r.u64()?;
            let id = r.array::<16>()?;
            let route = r.bytes()?;
            let payload = r.bytes()?;
            Ok(WalRecord {
                seq,
                id,
                route: String::from_utf8(route).map_err(|_| datablinder_sse::SseError::Malformed("utf8 route"))?,
                payload,
            })
        };
        let rec = parse(&mut r).map_err(|e| CoreError::Storage(format!("wal record: {e}")))?;
        r.finish().map_err(|e| CoreError::Storage(format!("wal record trailing: {e}")))?;
        Ok(rec)
    }
}

fn fingerprint_id(route: &str, payload: &[u8]) -> [u8; 16] {
    let mut h = datablinder_primitives::sha256::Sha256::new();
    h.update(&(route.len() as u32).to_be_bytes());
    h.update(route.as_bytes());
    h.update(payload);
    h.finalize()[..16].try_into().unwrap()
}

// ------------------------------------------------------------- options

/// Tuning knobs for [`CloudEngine::open_durable_with`].
#[derive(Clone, Default)]
pub struct DurabilityOptions {
    /// Auto-snapshot after this many journaled records (`None` = only on
    /// explicit [`CloudEngine::snapshot_now`] calls).
    pub snapshot_every: Option<u64>,
    /// Idempotency dedup-cache bound (`None` = the engine default).
    pub dedup_capacity: Option<usize>,
    /// Deterministic crash injection for the write path (tests). The
    /// injector is consulted on every WAL append; once it fires, the
    /// engine answers every call with [`NetError::Timeout`] until a
    /// restart harness rebuilds it from disk.
    pub crash: Option<Arc<CrashInjector>>,
}

// ----------------------------------------------------------- WAL machinery

/// Sequence assignment + the pending group-commit buffer. Held only for
/// short enqueue/drain critical sections — never across disk I/O.
struct WalQueue {
    /// Encoded frames awaiting the next group flush (empty when the crash
    /// injector forces the synchronous path).
    pending: Vec<u8>,
    /// Last assigned sequence number.
    seq: u64,
    /// Records journaled since the last snapshot.
    since_snapshot: u64,
}

/// The journal + snapshot state attached to a durable [`CloudEngine`].
///
/// # Group commit
///
/// The WAL keeps a single serialized append point (`io`), but concurrent
/// writers no longer serialize on the disk flush itself: each `journal`
/// call enqueues its encoded frame under the short `queue` lock, then
/// whoever wins `io.try_lock()` becomes the *leader* and flushes the whole
/// pending buffer in one write — absorbing every record enqueued while the
/// previous flush was in flight. Followers spin on `durable_seq` until the
/// leader publishes their record as durable (no condvar: flushes on this
/// path are microseconds, and the spin yields the thread each miss).
/// Lock order where both are held: `io` → `queue` (enqueueing takes only
/// `queue`).
///
/// With a crash injector armed, group commit is **bypassed** — every record
/// goes through the original synchronous per-record path under both locks,
/// so the injector's byte-exact crash points (torn prefix at append N)
/// keep their meaning.
pub(crate) struct Durability {
    dir: PathBuf,
    snapshot_every: Option<u64>,
    injector: Option<Arc<CrashInjector>>,
    queue: Mutex<WalQueue>,
    io: Mutex<FrameWriter>,
    /// Highest sequence number known flushed to disk.
    durable_seq: AtomicU64,
    /// Group flushes performed (each covering ≥ 1 record).
    group_commits: AtomicU64,
    /// Set when a leader's flush failed; followers abort instead of
    /// spinning on a sequence that will never become durable.
    io_failed: std::sync::atomic::AtomicBool,
}

/// What [`Durability::journal`] concluded about one write.
pub(crate) enum JournalOutcome {
    /// The record is durable; apply it.
    Written,
    /// The crash point fired at this write; the machine is down and the
    /// mutation must NOT be applied (whether the frame reached disk in
    /// full, in part, or not at all).
    Died,
}

impl Durability {
    pub(crate) fn attach(
        dir: &Path,
        seq: u64,
        since_snapshot: u64,
        snapshot_every: Option<u64>,
        injector: Option<Arc<CrashInjector>>,
    ) -> Result<Self, CoreError> {
        // Flush every frame: the WAL *is* the durability story, so a frame
        // buffered in userspace at crash time would break the acknowledged
        // = durable invariant the recovery protocol relies on. (The group
        // path flushes whole batches via `append_raw`.)
        let writer = FrameWriter::with_flush_every(&wal_path(dir), 1)?;
        Ok(Durability {
            dir: dir.to_path_buf(),
            snapshot_every,
            injector,
            queue: Mutex::new(WalQueue { pending: Vec::new(), seq, since_snapshot }),
            io: Mutex::new(writer),
            durable_seq: AtomicU64::new(seq),
            group_commits: AtomicU64::new(0),
            io_failed: std::sync::atomic::AtomicBool::new(false),
        })
    }

    /// Whether the crash injector has fired (the simulated machine is down).
    pub(crate) fn crashed(&self) -> bool {
        self.injector.as_ref().is_some_and(|i| i.crashed())
    }

    /// Journals one mutation ahead of its application. Returns only after
    /// the record (and, on the group path, every record enqueued before
    /// it) is flushed to disk.
    pub(crate) fn journal(&self, route: &str, payload: &[u8]) -> Result<JournalOutcome, CoreError> {
        if let Some(inj) = &self.injector {
            // Synchronous bypass: crash points are defined per append, so
            // batching would change which bytes hit disk at the Nth write.
            let mut io = self.io.lock();
            let mut q = self.queue.lock();
            let rec = WalRecord::new(q.seq + 1, route, payload);
            let body = rec.encode();
            let frame = frame_bytes(&body);
            match inj.on_append(frame.len()) {
                CrashVerdict::Proceed => {}
                CrashVerdict::Refuse => return Ok(JournalOutcome::Died),
                CrashVerdict::Torn(n) => {
                    // The "kill -9 mid-write": a prefix of the frame hits
                    // disk, recovery must truncate it away.
                    io.append_raw(&frame[..n])?;
                    return Ok(JournalOutcome::Died);
                }
                CrashVerdict::DieAfterAppend => {
                    // Journaled in full but never applied: recovery must
                    // roll this record forward.
                    io.append_raw(&frame)?;
                    return Ok(JournalOutcome::Died);
                }
            }
            io.append(&body)?;
            q.seq = rec.seq;
            q.since_snapshot += 1;
            self.durable_seq.fetch_max(rec.seq, Ordering::AcqRel);
            return Ok(JournalOutcome::Written);
        }

        // Group commit: enqueue under the short queue lock...
        let seq = {
            let mut q = self.queue.lock();
            let rec = WalRecord::new(q.seq + 1, route, payload);
            q.pending.extend_from_slice(&frame_bytes(&rec.encode()));
            q.seq = rec.seq;
            q.since_snapshot += 1;
            rec.seq
        };
        // ...then wait for a leader (possibly this thread) to flush it.
        self.commit_until(seq)?;
        Ok(JournalOutcome::Written)
    }

    /// Waits until every record up to `seq` is durable, flushing pending
    /// batches whenever this thread wins the io lock.
    fn commit_until(&self, seq: u64) -> Result<(), CoreError> {
        while self.durable_seq.load(Ordering::Acquire) < seq {
            if self.io_failed.load(Ordering::Acquire) {
                return Err(CoreError::Storage("wal: a group flush failed".into()));
            }
            let Some(mut io) = self.io.try_lock() else {
                // A leader is flushing; its release publishes durable_seq.
                std::thread::yield_now();
                continue;
            };
            let (buf, high) = {
                let mut q = self.queue.lock();
                (std::mem::take(&mut q.pending), q.seq)
            };
            if !buf.is_empty() {
                if let Err(e) = io.append_raw(&buf) {
                    self.io_failed.store(true, Ordering::Release);
                    return Err(e.into());
                }
                self.group_commits.fetch_add(1, Ordering::Relaxed);
            }
            // Everything assigned up to `high` was either in `buf` or
            // flushed by a previous io holder — it is durable now.
            self.durable_seq.fetch_max(high, Ordering::AcqRel);
        }
        Ok(())
    }

    /// Whether the auto-snapshot cadence is due.
    pub(crate) fn snapshot_due(&self) -> bool {
        match self.snapshot_every {
            Some(n) => self.queue.lock().since_snapshot >= n,
            None => false,
        }
    }

    /// Writes a snapshot of `(kv, docs)` and compacts the WAL. Both locks
    /// are held throughout, so no record can slip between the capture and
    /// the truncation.
    pub(crate) fn snapshot(&self, kv: &KvStore, docs: &DocStore) -> Result<(), CoreError> {
        let mut io = self.io.lock();
        let mut q = self.queue.lock();
        if !q.pending.is_empty() {
            let buf = std::mem::take(&mut q.pending);
            io.append_raw(&buf)?;
            self.group_commits.fetch_add(1, Ordering::Relaxed);
        }
        io.flush()?;
        self.durable_seq.fetch_max(q.seq, Ordering::AcqRel);
        let body = encode_snapshot(kv, docs, q.seq);
        let tmp = self.dir.join("snapshot.tmp");
        std::fs::write(&tmp, frame_bytes(&body)).map_err(KvError::from)?;
        // Atomic cutover: a crash before the rename leaves the old
        // snapshot + full WAL; after it, the new snapshot's high-water seq
        // makes any not-yet-truncated WAL prefix a no-op on replay.
        std::fs::rename(&tmp, snapshot_path(&self.dir)).map_err(KvError::from)?;
        let wal = std::fs::OpenOptions::new().write(true).open(wal_path(&self.dir)).map_err(KvError::from)?;
        wal.set_len(0).map_err(KvError::from)?;
        q.since_snapshot = 0;
        Ok(())
    }

    pub(crate) fn seq(&self) -> u64 {
        self.queue.lock().seq
    }

    pub(crate) fn since_snapshot(&self) -> u64 {
        self.queue.lock().since_snapshot
    }

    /// Group flushes performed so far (each covering one or more records).
    pub(crate) fn group_commits(&self) -> u64 {
        self.group_commits.load(Ordering::Relaxed)
    }

    /// The current on-disk snapshot body (the bytes inside its CRC frame),
    /// or `None` when nothing has been compacted yet — what a donor pins
    /// and streams to a resyncing peer. Read under the io lock so a
    /// concurrent compaction's rename-and-truncate cutover can't be
    /// half-observed.
    pub(crate) fn snapshot_body(&self) -> Result<Option<Vec<u8>>, CoreError> {
        let _io = self.io.lock();
        let path = snapshot_path(&self.dir);
        if !path.exists() {
            return Ok(None);
        }
        let scan = read_frames(&path)?;
        match scan.frames.into_iter().next() {
            Some(body) => Ok(Some(body)),
            None => Err(CoreError::Storage("snapshot: no complete frame".into())),
        }
    }

    /// Every WAL record with `seq > from_seq`, in order — the tail a donor
    /// ships above its snapshot. Pending group-commit bytes are flushed
    /// first, so the tail reflects every record this node has acknowledged.
    pub(crate) fn wal_tail(&self, from_seq: u64) -> Result<Vec<WalRecord>, CoreError> {
        let mut io = self.io.lock();
        {
            let mut q = self.queue.lock();
            if !q.pending.is_empty() {
                let buf = std::mem::take(&mut q.pending);
                io.append_raw(&buf)?;
                self.group_commits.fetch_add(1, Ordering::Relaxed);
            }
            io.flush()?;
            self.durable_seq.fetch_max(q.seq, Ordering::AcqRel);
        }
        // Still under the io lock: no append or compaction can interleave
        // with the file read below.
        let scan = read_frames(&wal_path(&self.dir))?;
        let mut out = Vec::new();
        for body in &scan.frames {
            let rec = WalRecord::decode(body)?;
            if rec.seq > from_seq {
                out.push(rec);
            }
        }
        Ok(out)
    }
}

// ------------------------------------------------------------- snapshots

/// Encodes the full cloud state as a snapshot body (one CRC frame on disk).
fn encode_snapshot(kv: &KvStore, docs: &DocStore, seq: u64) -> Vec<u8> {
    let mut w = Writer::new();
    w.bytes(SNAP_MAGIC);
    w.u64(seq);
    // KV section: the store's own replayable record dump.
    let kv_records: Vec<Vec<u8>> = kv.export_records().iter().map(LogRecord::to_bytes).collect();
    w.list(&kv_records);
    // Document section: per collection, name + indexed fields + documents.
    let mut collections = docs.collection_names();
    collections.sort();
    let blobs: Vec<Vec<u8>> = collections
        .iter()
        .map(|name| {
            let coll = docs.collection(name);
            let mut cw = Writer::new();
            cw.bytes(name.as_bytes());
            cw.list(&coll.indexed_fields().into_iter().map(String::into_bytes).collect::<Vec<_>>());
            let mut ids = coll.ids();
            ids.sort();
            cw.list(&ids.iter().filter_map(|id| coll.get(id)).map(|d| encode_document(&d)).collect::<Vec<_>>());
            cw.finish()
        })
        .collect();
    w.list(&blobs);
    w.finish()
}

/// Reads just the high-water sequence number out of a snapshot body
/// (magic + seq header) without restoring it.
pub(crate) fn snapshot_body_seq(body: &[u8]) -> Result<u64, CoreError> {
    let mut r = Reader::new(body);
    let bad = |e: datablinder_sse::SseError| CoreError::Storage(format!("snapshot: {e}"));
    let magic = r.bytes().map_err(bad)?;
    if magic != SNAP_MAGIC {
        return Err(CoreError::Storage("snapshot: bad magic".into()));
    }
    r.u64().map_err(bad)
}

/// Restores a snapshot body into `(kv, docs)`; returns the snapshot's
/// high-water sequence number.
pub(crate) fn apply_snapshot(kv: &KvStore, docs: &DocStore, body: &[u8]) -> Result<u64, CoreError> {
    let mut r = Reader::new(body);
    let bad = |e: datablinder_sse::SseError| CoreError::Storage(format!("snapshot: {e}"));
    let magic = r.bytes().map_err(bad)?;
    if magic != SNAP_MAGIC {
        return Err(CoreError::Storage("snapshot: bad magic".into()));
    }
    let seq = r.u64().map_err(bad)?;
    for rec_body in r.list().map_err(bad)? {
        kv.apply_record(&LogRecord::from_body(&rec_body)?);
    }
    for blob in r.list().map_err(bad)? {
        let mut cr = Reader::new(&blob);
        let name = String::from_utf8(cr.bytes().map_err(bad)?)
            .map_err(|_| CoreError::Storage("snapshot: utf8 collection".into()))?;
        let coll = docs.collection(&name);
        for field in cr.list().map_err(bad)? {
            let field =
                String::from_utf8(field).map_err(|_| CoreError::Storage("snapshot: utf8 index field".into()))?;
            coll.create_index(&field);
        }
        for doc in cr.list().map_err(bad)? {
            coll.insert(decode_document(&doc)?)?;
        }
        cr.finish().map_err(bad)?;
    }
    r.finish().map_err(bad)?;
    Ok(seq)
}

/// What recovery found on disk (returned by
/// [`CloudEngine::open_durable_with`] via [`CloudEngine::recovery_report`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Whether a snapshot was restored.
    pub snapshot_restored: bool,
    /// High-water sequence number of the restored snapshot.
    pub snapshot_seq: u64,
    /// WAL tail records replayed (rolled forward) after the snapshot.
    pub replayed: u64,
    /// Whether a torn WAL tail was truncated.
    pub torn_tail: bool,
}

/// Restores `(kv, docs)` from `dir` and replays the WAL tail through
/// `apply`; truncates any torn tail; returns the recovery report and the
/// final sequence number.
pub(crate) fn recover_into(
    dir: &Path,
    kv: &KvStore,
    docs: &DocStore,
    mut apply: impl FnMut(&WalRecord),
) -> Result<(RecoveryReport, u64), CoreError> {
    let mut report = RecoveryReport::default();
    let mut high = 0u64;
    let snap = snapshot_path(dir);
    if snap.exists() {
        let scan = read_frames(&snap)?;
        let body = scan.frames.first().ok_or_else(|| CoreError::Storage("snapshot: no complete frame".into()))?;
        high = apply_snapshot(kv, docs, body)?;
        report.snapshot_restored = true;
        report.snapshot_seq = high;
    }
    let wal = wal_path(dir);
    if wal.exists() {
        let scan = read_frames(&wal)?;
        for body in &scan.frames {
            let rec = WalRecord::decode(body)?;
            if rec.seq <= high {
                continue; // covered by the snapshot (rename-before-truncate crash window)
            }
            apply(&rec);
            high = rec.seq;
            report.replayed += 1;
        }
        if scan.torn_tail {
            report.torn_tail = true;
            let f = std::fs::OpenOptions::new().write(true).open(&wal).map_err(KvError::from)?;
            f.set_len(scan.valid_len).map_err(KvError::from)?;
        }
    }
    Ok((report, high))
}

// ------------------------------------------------------- restart harness

/// A [`CloudService`] that owns a durable [`CloudEngine`] and *restarts*
/// it from disk when its crash injector fires — the simulated
/// "supervisor brings the cloud VM back up" loop. The crashing call and
/// any call racing the outage surface as retryable [`NetError::Timeout`];
/// the first call after the crash rebuilds the engine via snapshot + WAL
/// replay (without the injector — one planned crash per harness) and then
/// serves normally, so a gateway's retry policy bridges the whole outage.
pub struct RestartableCloud {
    dir: PathBuf,
    opts: DurabilityOptions,
    engine: RwLock<Option<CloudEngine>>,
    restarts: AtomicU64,
}

impl RestartableCloud {
    /// Opens (or recovers) a durable engine in `dir`, armed with
    /// `opts.crash` for its first incarnation.
    ///
    /// # Errors
    ///
    /// Propagates recovery failures.
    pub fn open(dir: &Path, opts: DurabilityOptions) -> Result<Self, CoreError> {
        let engine = CloudEngine::open_durable_with(dir, opts.clone())?;
        Ok(RestartableCloud {
            dir: dir.to_path_buf(),
            opts,
            engine: RwLock::new(Some(engine)),
            restarts: AtomicU64::new(0),
        })
    }

    /// Number of times the engine was rebuilt from disk.
    pub fn restarts(&self) -> u64 {
        self.restarts.load(Ordering::SeqCst)
    }

    /// Runs `f` against the live engine (`None` while the cloud is down
    /// and not yet rebuilt).
    pub fn with_engine<R>(&self, f: impl FnOnce(&CloudEngine) -> R) -> Option<R> {
        self.engine.read().as_ref().map(f)
    }
}

impl CloudService for RestartableCloud {
    fn handle(&self, route: &str, payload: &[u8]) -> Result<Vec<u8>, NetError> {
        {
            let guard = self.engine.read();
            if let Some(engine) = guard.as_ref() {
                if !engine.crashed() {
                    return engine.handle(route, payload);
                }
            }
        }
        let mut guard = self.engine.write();
        let dead = match guard.as_ref() {
            None => true,
            Some(engine) => engine.crashed(),
        };
        if dead {
            // Drop the dead incarnation first so its WAL handle is closed
            // before the new one re-reads and truncates the file.
            *guard = None;
            let mut opts = self.opts.clone();
            opts.crash = None;
            match CloudEngine::open_durable_with(&self.dir, opts) {
                Ok(engine) => {
                    *guard = Some(engine);
                    self.restarts.fetch_add(1, Ordering::SeqCst);
                }
                Err(e) => return Err(NetError::Remote(format!("cloud recovery failed: {e}"))),
            }
        }
        guard.as_ref().expect("engine rebuilt above").handle(route, payload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wal_record_roundtrip_and_fingerprint_id() {
        let rec = WalRecord::new(7, "doc/insert", b"payload");
        assert_eq!(WalRecord::decode(&rec.encode()).unwrap(), rec);
        // Same request, same id; different request, different id.
        assert_eq!(rec.id, WalRecord::new(9, "doc/insert", b"payload").id);
        assert_ne!(rec.id, WalRecord::new(7, "doc/insert", b"other").id);
    }

    #[test]
    fn wal_record_id_is_idem_token_for_envelopes() {
        let env = Idempotent { token: [0xAB; 16], route: "doc/insert".into(), payload: vec![1, 2, 3] };
        let rec = WalRecord::new(1, IDEM_ROUTE, &env.encode());
        assert_eq!(rec.id, [0xAB; 16]);
    }

    #[test]
    fn snapshot_roundtrip_restores_kv_and_docs() {
        use datablinder_docstore::{Document, Value};
        let kv = KvStore::new();
        kv.set(b"k", b"v");
        kv.hset(b"h", b"f", b"x").unwrap();
        kv.sadd(b"s", b"m").unwrap();
        kv.incr_by(b"c", 9).unwrap();
        let docs = DocStore::new();
        let coll = docs.collection("obs");
        coll.create_index("status__det");
        coll.insert(Document::new("a1").with("status__det", Value::from("final"))).unwrap();

        let body = encode_snapshot(&kv, &docs, 42);
        let (kv2, docs2) = (KvStore::new(), DocStore::new());
        let seq = apply_snapshot(&kv2, &docs2, &body).unwrap();
        assert_eq!(seq, 42);
        assert_eq!(kv2.get(b"k"), Some(b"v".to_vec()));
        assert_eq!(kv2.hget(b"h", b"f"), Some(b"x".to_vec()));
        assert!(kv2.sismember(b"s", b"m"));
        assert_eq!(kv2.counter(b"c"), 9);
        let coll2 = docs2.collection("obs");
        assert_eq!(coll2.len(), 1);
        assert_eq!(coll2.indexed_fields(), vec!["status__det".to_string()]);
        assert!(coll2.get("a1").is_some());
        // Determinism: equal state encodes byte-identically.
        assert_eq!(body, encode_snapshot(&kv2, &docs2, 42));
    }

    #[test]
    fn snapshot_rejects_garbage() {
        let (kv, docs) = (KvStore::new(), DocStore::new());
        assert!(apply_snapshot(&kv, &docs, b"not a snapshot").is_err());
        let mut w = Writer::new();
        w.bytes(b"WRONGMAG");
        assert!(apply_snapshot(&kv, &docs, &w.finish()).is_err());
    }
}
