//! The middleware error type.

use datablinder_netsim::NetError;

use crate::model::{FieldOp, ProtectionClass};

/// Errors surfaced by the DataBlinder middleware.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// No admissible tactic combination exists for an annotation.
    PolicyUnsatisfiable {
        /// The field that cannot be served.
        field: String,
        /// Its requested class.
        class: ProtectionClass,
        /// The operation no tactic can serve within the class.
        op: FieldOp,
    },
    /// A document does not conform to its schema.
    SchemaViolation(String),
    /// The schema is not registered.
    UnknownSchema(String),
    /// The field is not part of the schema or lacks the needed annotation.
    UnsupportedOperation(String),
    /// A document id was not found.
    NotFound(String),
    /// Wire (de)serialization failure.
    Wire(&'static str),
    /// Failure crossing the gateway↔cloud channel. Kept structured so
    /// callers can distinguish transient transport faults (worth retrying at
    /// a higher level or surfacing as "try again") from remote failures.
    Net(NetError),
    /// An SSE tactic failed.
    Sse(String),
    /// A cryptographic primitive failed.
    Crypto(String),
    /// Cloud-side storage failed.
    Storage(String),
    /// Key management failure.
    Kms(String),
}

impl std::fmt::Display for CoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreError::PolicyUnsatisfiable { field, class, op } => {
                write!(f, "no tactic can serve op {op} on field {field} within protection class {class}")
            }
            CoreError::SchemaViolation(msg) => write!(f, "schema violation: {msg}"),
            CoreError::UnknownSchema(name) => write!(f, "unknown schema: {name}"),
            CoreError::UnsupportedOperation(msg) => write!(f, "unsupported operation: {msg}"),
            CoreError::NotFound(id) => write!(f, "document not found: {id}"),
            CoreError::Wire(what) => write!(f, "wire format error: {what}"),
            CoreError::Net(e) => write!(f, "channel error: {e}"),
            CoreError::Sse(e) => write!(f, "tactic error: {e}"),
            CoreError::Crypto(e) => write!(f, "crypto error: {e}"),
            CoreError::Storage(e) => write!(f, "storage error: {e}"),
            CoreError::Kms(e) => write!(f, "kms error: {e}"),
        }
    }
}

impl CoreError {
    /// Whether this failure is a transient transport condition that already
    /// exhausted the channel's retries — the caller may back off and try the
    /// whole operation again, nothing is known to be half-applied.
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            CoreError::Net(
                NetError::Timeout | NetError::CircuitOpen | NetError::Unavailable(_) | NetError::Disconnected(_)
            )
        )
    }
}

impl std::error::Error for CoreError {}

impl From<datablinder_sse::SseError> for CoreError {
    fn from(e: datablinder_sse::SseError) -> Self {
        CoreError::Sse(e.to_string())
    }
}

impl From<datablinder_primitives::CryptoError> for CoreError {
    fn from(e: datablinder_primitives::CryptoError) -> Self {
        CoreError::Crypto(e.to_string())
    }
}

impl From<NetError> for CoreError {
    fn from(e: NetError) -> Self {
        CoreError::Net(e)
    }
}

impl From<datablinder_docstore::DocStoreError> for CoreError {
    fn from(e: datablinder_docstore::DocStoreError) -> Self {
        CoreError::Storage(e.to_string())
    }
}

impl From<datablinder_kvstore::KvError> for CoreError {
    fn from(e: datablinder_kvstore::KvError) -> Self {
        CoreError::Storage(e.to_string())
    }
}

impl From<datablinder_kms::KmsError> for CoreError {
    fn from(e: datablinder_kms::KmsError) -> Self {
        CoreError::Kms(e.to_string())
    }
}

impl From<datablinder_paillier::PaillierError> for CoreError {
    fn from(e: datablinder_paillier::PaillierError) -> Self {
        CoreError::Crypto(e.to_string())
    }
}
