//! The gateway engine: the trusted-zone half of the middleware
//! (Fig. 4, left side). Exposes the *Entities* interface applications use
//! (CRUD + search + aggregates), enforces schemas and protection policies,
//! selects tactics adaptively, and drives the cloud over the channel.
//!
//! # Concurrency model
//!
//! One `GatewayEngine` serves many threads: every CRUD/query route takes
//! `&self`, with interior mutability confined to fine-grained locks —
//! `plans` and `tactics` behind `RwLock`s (read-mostly after schema
//! registration), each tactic instance behind its own `Mutex` (stateful SSE
//! chains serialize per instance, *not* per gateway), and the seeded RNG
//! behind a `Mutex` that is held only long enough to fork a per-operation
//! child RNG. Lock order, where more than one is held: `registry` → `rng`;
//! a tactic-instance lock is never held across a channel call that could
//! re-enter the engine. See DESIGN.md §12.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use datablinder_docstore::{Document, Value};
use datablinder_kms::Kms;
use datablinder_kvstore::KvStore;
use datablinder_netsim::{Channel, NetError, ResilienceConfig, ResilientChannel, Transport};
use datablinder_obs::Recorder;
use datablinder_sse::DocId;
use parking_lot::{Mutex, RwLock, RwLockReadGuard};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::cloud::{get_many_payload, with_collection};
use crate::cloudproto::{is_write_route, Idempotent, IDEM_ROUTE};
use crate::error::CoreError;
use crate::metadata::{validate_document, SchemaStore};
use crate::model::{AggFn, FieldOp, Schema, TacticOp};
use crate::pool::WorkerPool;
use crate::registry::{Selection, TacticRegistry};
use crate::spi::{CloudCall, DnfLiterals, DocIdGen, GatewayTactic, ProtectItem, ProtectedField, RandomDocIdGen};
use crate::tactics::{decode_ids, TacticContext};
use crate::wire::{decode_document, decode_documents, encode_document};

/// Scope name of the shared cross-field boolean tactic instance.
const BOOL_SCOPE: &str = "__bool__";

/// A tactic instance shared across threads: stateful SSE chains serialize
/// on the per-instance mutex, so two threads indexing *different* fields
/// proceed in parallel.
type SharedTactic = Arc<Mutex<Box<dyn GatewayTactic>>>;

/// SplitMix64 finalizer: spreads a seed into a well-mixed token prefix so
/// gateways with nearby seeds still mint far-apart token ranges.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Per-field execution plan derived from selection.
#[derive(Debug, Clone)]
struct FieldPlan {
    selection: Selection,
    /// Tactic serving equality queries, if any.
    eq_tactic: Option<String>,
    /// Tactic serving range queries, if any.
    range_tactic: Option<String>,
    /// Whether the field participates in the shared boolean index.
    boolean: bool,
}

/// Per-schema execution plan.
struct SchemaPlan {
    schema: Schema,
    fields: HashMap<String, FieldPlan>,
    /// Name of the shared boolean tactic (e.g. `biex-2lev`), if any field
    /// requested boolean search served by a cross-field tactic.
    bool_tactic: Option<String>,
}

/// Key prefix of journaled write groups in the gateway's journal store.
const JOURNAL_PREFIX: &[u8] = b"gwj/";

fn journal_key(seq: u64) -> Vec<u8> {
    format!("gwj/{seq:016x}").into_bytes()
}

/// The gateway's small write journal: multi-call write groups (index
/// updates + the document write) are recorded here in their pre-minted
/// on-wire form before anything ships, and cleared once every call is
/// acknowledged. A gateway that dies mid-group finds the entry on restart
/// and rolls it forward ([`GatewayEngine::recover_pending`]).
struct WriteJournal {
    kv: KvStore,
    seq: AtomicU64,
}

/// Result of [`GatewayEngine::recover_pending`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PendingWriteReport {
    /// Journal entries found pending.
    pub entries: usize,
    /// Entries whose every call completed on replay (the cloud's dedup
    /// cache absorbs the already-applied prefix).
    pub rolled_forward: usize,
    /// Entries aborted by an application-level error; their groups did
    /// not complete and are reported in `failures`.
    pub failed: usize,
    /// One message per failed entry.
    pub failures: Vec<String>,
}

/// Result of [`GatewayEngine::fsck`]: index↔store consistency findings.
#[derive(Debug, Clone, Default)]
pub struct FsckReport {
    /// Stored documents decrypted and cross-checked.
    pub docs_checked: usize,
    /// Searches issued (one per field × tactic × distinct value).
    pub searches_run: usize,
    /// Stored documents a registered search tactic failed to return.
    pub missing_index_entries: Vec<String>,
    /// Search results that should not exist: ids absent from the store
    /// (orphan index entries) or stored under a different value.
    pub orphan_results: Vec<String>,
}

impl FsckReport {
    /// No missing index entries and no orphan results.
    pub fn is_clean(&self) -> bool {
        self.missing_index_entries.is_empty() && self.orphan_results.is_empty()
    }
}

/// The DataBlinder gateway.
///
/// Every CRUD/query route takes `&self`, so one engine (behind an `Arc`)
/// serves many threads concurrently — the shape of the paper's Fig. 5
/// multi-client evaluation with a *shared* middleware instance.
///
/// # Examples
///
/// See `examples/quickstart.rs` for the end-to-end flow.
pub struct GatewayEngine {
    application: String,
    kms: Kms,
    registry: RwLock<TacticRegistry>,
    channel: ResilientChannel,
    schema_store: SchemaStore,
    plans: RwLock<HashMap<String, Arc<SchemaPlan>>>,
    /// Tactic instances keyed by `schema / scope / tactic`.
    tactics: RwLock<HashMap<String, SharedTactic>>,
    idgen: Mutex<Box<dyn DocIdGen>>,
    rng: Mutex<StdRng>,
    /// Seed-derived prefix of idempotency tokens minted by this gateway.
    idem_prefix: u64,
    /// Monotonic suffix of idempotency tokens (one per logical write).
    idem_seq: AtomicU64,
    /// Crash journal for multi-call write groups, if enabled.
    journal: Option<WriteJournal>,
    /// Worker pool parallelizing `insert_many` field encryption, if set.
    pool: Option<Arc<WorkerPool>>,
    /// Observability recorder (disabled by default; see
    /// [`GatewayEngine::set_recorder`]).
    obs: Recorder,
}

impl GatewayEngine {
    /// Creates a gateway with the built-in registry and a seeded RNG
    /// (deterministic runs for benchmarks; use [`GatewayEngine::with_registry`]
    /// for custom setups). The channel is wrapped in a [`ResilientChannel`]
    /// with [`ResilienceConfig::default`]; use
    /// [`GatewayEngine::with_resilience`] to tune retries/deadlines/breaker.
    pub fn new(application: &str, kms: Kms, channel: Channel, seed: u64) -> Self {
        Self::with_registry(application, kms, channel, seed, TacticRegistry::with_builtins())
    }

    /// Creates a gateway with a custom registry.
    pub fn with_registry(application: &str, kms: Kms, channel: Channel, seed: u64, registry: TacticRegistry) -> Self {
        Self::with_registry_resilient(
            application,
            kms,
            ResilientChannel::new(channel, ResilienceConfig { seed, ..ResilienceConfig::default() }),
            seed,
            registry,
        )
    }

    /// Creates a gateway over a pre-configured [`ResilientChannel`]
    /// (explicit retry policy, deadline and breaker tuning).
    pub fn with_resilience(application: &str, kms: Kms, channel: ResilientChannel, seed: u64) -> Self {
        Self::with_registry_resilient(application, kms, channel, seed, TacticRegistry::with_builtins())
    }

    /// Creates a gateway with both a custom registry and a pre-configured
    /// [`ResilientChannel`].
    pub fn with_registry_resilient(
        application: &str,
        kms: Kms,
        channel: ResilientChannel,
        seed: u64,
        registry: TacticRegistry,
    ) -> Self {
        GatewayEngine {
            application: application.to_string(),
            kms,
            registry: RwLock::new(registry),
            channel,
            schema_store: SchemaStore::new(KvStore::new()),
            plans: RwLock::new(HashMap::new()),
            tactics: RwLock::new(HashMap::new()),
            idgen: Mutex::new(Box::new(RandomDocIdGen::new(StdRng::seed_from_u64(seed ^ 0x1D)))),
            rng: Mutex::new(StdRng::seed_from_u64(seed)),
            idem_prefix: mix64(seed ^ 0x1DE4_70CE_7057_EA15),
            idem_seq: AtomicU64::new(0),
            journal: None,
            pool: None,
            obs: Recorder::default(),
        }
    }

    /// Attaches an observability [`Recorder`]: gateway routes, per-tactic
    /// latencies and the leakage audit ledger record into it, and a clone
    /// is forwarded to the resilient channel so retries/breaker activity
    /// land in the same domain. The default recorder is disabled, so an
    /// un-instrumented gateway pays one atomic load per operation.
    pub fn set_recorder(&mut self, recorder: Recorder) {
        self.channel.set_recorder(recorder.clone());
        if recorder.label().is_none() {
            recorder.set_label("gateway");
        }
        self.obs = recorder;
    }

    /// Attaches a [`WorkerPool`]: [`GatewayEngine::insert_many`] then
    /// parallelizes its per-field tactic encryption (Paillier
    /// exponentiation, OPE traversal, SSE token PRFs) across the pool
    /// before the single batched round trip. Results are byte-identical to
    /// the sequential path — see
    /// [`GatewayEngine::protect_documents_batch`]'s determinism notes.
    pub fn set_worker_pool(&mut self, pool: Arc<WorkerPool>) {
        self.pool = Some(pool);
    }

    /// The attached worker pool, if any.
    pub fn worker_pool(&self) -> Option<&Arc<WorkerPool>> {
        self.pool.as_ref()
    }

    /// The observability recorder (disabled unless
    /// [`GatewayEngine::set_recorder`] installed an enabled one).
    pub fn recorder(&self) -> &Recorder {
        &self.obs
    }

    /// Folds the recorder's measured per-tactic EWMAs (`tactic.<name>.<op>`)
    /// back into the registry as a [`MeasuredPerfMetrics`] override, so
    /// subsequent [`GatewayEngine::register_schema`] selections rank
    /// admissible tactics by observed latency instead of static cost ranks
    /// — the measurement-driven half of the §5.1 adaptive selection loop.
    ///
    /// [`MeasuredPerfMetrics`]: crate::registry::MeasuredPerfMetrics
    pub fn adopt_measurements(&self) {
        let m = crate::registry::MeasuredPerfMetrics::from_snapshot(&self.obs.snapshot());
        self.registry.write().set_measurements(m);
    }

    /// The tactic registry (inspection, custom registration). Returns a
    /// read guard; drop it before calling engine routes that may register
    /// tactics.
    pub fn registry(&self) -> RwLockReadGuard<'_, TacticRegistry> {
        self.registry.read()
    }

    /// The gateway↔cloud transport (metrics inspection).
    pub fn channel(&self) -> &dyn Transport {
        self.channel.transport()
    }

    /// The resilience wrapper around the channel (breaker state, policy).
    pub fn resilient_channel(&self) -> &ResilientChannel {
        &self.channel
    }

    /// The selection for a registered field (the §5.1 table row).
    pub fn selection(&self, schema: &str, field: &str) -> Option<Selection> {
        self.plans.read().get(schema)?.fields.get(field).map(|p| p.selection.clone())
    }

    // ------------------------------------------------------ Schema interface

    /// Registers a schema: validates that every annotation is satisfiable,
    /// derives the execution plan, instantiates tactics and prepares
    /// cloud-side indexes.
    ///
    /// # Errors
    ///
    /// [`CoreError::PolicyUnsatisfiable`] when an annotation cannot be
    /// served; channel errors during index preparation.
    pub fn register_schema(&self, schema: Schema) -> Result<(), CoreError> {
        let mut fields = HashMap::new();
        let mut bool_tactic: Option<String> = None;

        {
            let registry = self.registry.read();
            for (field, annotation) in schema.sensitive_fields() {
                let selection = registry.select(field, annotation)?;
                let eq_tactic = annotation
                    .ops
                    .contains(&FieldOp::Equality)
                    .then(|| {
                        selection
                            .search_tactics
                            .iter()
                            .find(|n| registry.descriptor(n).is_some_and(|d| d.serves_op(FieldOp::Equality)))
                            .cloned()
                    })
                    .flatten();
                let range_tactic = annotation
                    .ops
                    .contains(&FieldOp::Range)
                    .then(|| {
                        selection
                            .search_tactics
                            .iter()
                            .find(|n| registry.descriptor(n).is_some_and(|d| d.serves_op(FieldOp::Range)))
                            .cloned()
                    })
                    .flatten();
                let boolean = selection.search_tactics.iter().any(|n| n.starts_with("biex"));
                if boolean {
                    let name = selection.search_tactics.iter().find(|n| n.starts_with("biex")).unwrap().clone();
                    match &bool_tactic {
                        None => bool_tactic = Some(name),
                        Some(existing) if *existing == name => {}
                        Some(existing) => {
                            return Err(CoreError::SchemaViolation(format!(
                                "conflicting boolean tactics {existing} and {name} in one schema"
                            )));
                        }
                    }
                }
                fields.insert(field.clone(), FieldPlan { selection, eq_tactic, range_tactic, boolean });
            }
        }

        // Instantiate tactics: per-field instances plus one shared boolean
        // instance, loading implementations at runtime (strategy pattern).
        for (field, plan) in &fields {
            for tactic in plan.selection.all_tactics() {
                if tactic.starts_with("biex") {
                    continue; // shared instance below
                }
                self.ensure_tactic(&schema.name, field, &tactic)?;
            }
        }
        if let Some(bt) = &bool_tactic {
            self.ensure_tactic(&schema.name, BOOL_SCOPE, bt)?;
        }

        // Cloud-side secondary indexes for legacy-friendly shadow fields.
        let mut index_calls = Vec::new();
        for (field, plan) in &fields {
            for tactic in &plan.selection.search_tactics {
                match tactic.as_str() {
                    "det" => index_calls.push(format!("{field}__det")),
                    "ope" => index_calls.push(format!("{field}__ope")),
                    _ => {}
                }
            }
            if plan.selection.payload == "det" && !index_calls.contains(&format!("{field}__det")) {
                index_calls.push(format!("{field}__det"));
            }
        }
        for shadow in index_calls {
            self.call(&CloudCall::new("doc/ensure_index", with_collection(&schema.name, shadow.as_bytes())))?;
        }

        self.schema_store.put(&schema);
        self.plans.write().insert(schema.name.clone(), Arc::new(SchemaPlan { schema, fields, bool_tactic }));
        Ok(())
    }

    fn ensure_tactic(&self, schema: &str, scope: &str, tactic: &str) -> Result<(), CoreError> {
        let key = Self::tactic_key(schema, scope, tactic);
        if self.tactics.read().contains_key(&key) {
            return Ok(());
        }
        let ctx = TacticContext {
            application: self.application.clone(),
            schema: schema.to_string(),
            scope: scope.to_string(),
            kms: self.kms.clone(),
        };
        // Build outside the tactics write lock (lock order registry → rng);
        // a racing builder's instance is discarded by `or_insert_with`.
        let mut instance = {
            let registry = self.registry.read();
            let mut rng = self.rng.lock();
            registry.build_gateway(tactic, &ctx, &mut *rng)?
        };
        instance.attach_recorder(&self.obs);
        self.tactics.write().entry(key).or_insert_with(|| Arc::new(Mutex::new(instance)));
        Ok(())
    }

    fn tactic_key(schema: &str, scope: &str, tactic: &str) -> String {
        format!("{schema}/{scope}/{tactic}")
    }

    /// The shared handle of one tactic instance.
    fn tactic(&self, schema: &str, scope: &str, tactic: &str) -> Result<SharedTactic, CoreError> {
        self.tactics.read().get(&Self::tactic_key(schema, scope, tactic)).cloned().ok_or_else(|| {
            CoreError::UnsupportedOperation(format!("tactic {tactic} not instantiated for {schema}/{scope}"))
        })
    }

    /// Forks a per-operation child RNG off the engine's seeded stream. The
    /// engine lock is held only for the fork, so tactic work never
    /// serializes on the RNG.
    fn fork_rng(&self) -> StdRng {
        StdRng::from_rng(&mut *self.rng.lock()).expect("rng fork")
    }

    /// Pre-mints the on-wire form of one call. Chain-advancing writes must
    /// not re-execute when the channel retries them (SSE chains would
    /// double-advance): they get a fresh idempotency envelope the cloud
    /// deduplicates. Reads are naturally idempotent and pass through bare.
    fn seal_call(&self, call: &CloudCall) -> (String, Vec<u8>) {
        if is_write_route(&call.route) && call.route != IDEM_ROUTE {
            let env =
                Idempotent { token: self.next_idem_token(), route: call.route.clone(), payload: call.payload.clone() };
            (IDEM_ROUTE.to_string(), env.encode())
        } else {
            (call.route.clone(), call.payload.clone())
        }
    }

    fn call(&self, call: &CloudCall) -> Result<Vec<u8>, CoreError> {
        let (route, payload) = self.seal_call(call);
        Ok(self.channel.call(&route, &payload)?)
    }

    /// Sends a multi-call write group (index updates + the document write)
    /// atomically with respect to gateway crashes: the whole group is
    /// journaled in its sealed on-wire form before anything ships, and the
    /// entry is cleared only after every call is acknowledged. A gateway
    /// that dies mid-fan-out replays the entry on restart; the cloud's
    /// dedup cache absorbs the already-applied prefix (same tokens, same
    /// bytes), so the group completes exactly once — a document is never
    /// left queryable-but-half-indexed.
    fn send_write_group(&self, group: &[CloudCall]) -> Result<(), CoreError> {
        let sealed: Vec<(String, Vec<u8>)> = group.iter().map(|c| self.seal_call(c)).collect();
        let key = self.journal.as_ref().map(|j| {
            let key = journal_key(j.seq.fetch_add(1, Ordering::Relaxed));
            let mut w = datablinder_sse::encoding::Writer::new();
            let items: Vec<Vec<u8>> = sealed.iter().flat_map(|(r, p)| [r.clone().into_bytes(), p.clone()]).collect();
            w.list(&items);
            j.kv.set(&key, &w.finish());
            self.obs.count("gateway.journal.writes", 1);
            key
        });
        for (route, payload) in &sealed {
            // Any failure leaves the journal entry pending, for
            // recover_pending to roll forward or report.
            self.channel.call(route, payload)?;
        }
        if let (Some(j), Some(key)) = (&self.journal, &key) {
            j.kv.del(key);
        }
        Ok(())
    }

    /// Attaches a write journal backed by `kv` (pair with
    /// [`KvStore::open_semi_durable`] so the journal itself survives the
    /// crash). Existing pending entries are preserved — call
    /// [`GatewayEngine::recover_pending`] to process them — and the entry
    /// sequence continues after the highest one found.
    pub fn enable_write_journal(&mut self, kv: KvStore) {
        let next = kv
            .keys_with_prefix(JOURNAL_PREFIX)
            .iter()
            .filter_map(|k| {
                std::str::from_utf8(&k[JOURNAL_PREFIX.len()..]).ok().and_then(|s| u64::from_str_radix(s, 16).ok())
            })
            .max()
            .map_or(0, |m| m + 1);
        self.journal = Some(WriteJournal { kv, seq: AtomicU64::new(next) });
    }

    /// Number of journaled write groups not yet acknowledged.
    pub fn pending_writes(&self) -> usize {
        self.journal.as_ref().map_or(0, |j| j.kv.keys_with_prefix(JOURNAL_PREFIX).len())
    }

    /// Replays every pending journaled write group, oldest first. Calls
    /// already applied before the crash are answered from the cloud's
    /// dedup cache; the rest execute now, rolling the group forward. A
    /// group the cloud rejects with an application error is reported
    /// failed and dropped (its document write never completed, so nothing
    /// half-indexed is queryable).
    ///
    /// # Errors
    ///
    /// Transport failures propagate and leave the remaining entries
    /// pending — call again once the cloud is reachable.
    pub fn recover_pending(&self) -> Result<PendingWriteReport, CoreError> {
        let Some(journal) = &self.journal else {
            return Ok(PendingWriteReport::default());
        };
        let kv = journal.kv.clone();
        let mut report = PendingWriteReport::default();
        for key in kv.keys_with_prefix(JOURNAL_PREFIX) {
            let Some(blob) = kv.get(&key) else { continue };
            let mut r = datablinder_sse::encoding::Reader::new(&blob);
            let items = r.list().map_err(|e| CoreError::Sse(e.to_string()))?;
            if items.len() % 2 != 0 {
                return Err(CoreError::Wire("journal entry arity"));
            }
            let mut failure: Option<String> = None;
            for pair in items.chunks(2) {
                let route = std::str::from_utf8(&pair[0]).map_err(|_| CoreError::Wire("utf8 route"))?;
                match self.channel.call(route, &pair[1]) {
                    Ok(_) => {}
                    Err(NetError::Remote(e)) => {
                        failure = Some(e);
                        break;
                    }
                    Err(e) => return Err(e.into()),
                }
            }
            report.entries += 1;
            match failure {
                None => report.rolled_forward += 1,
                Some(e) => {
                    report.failed += 1;
                    report.failures.push(e);
                }
            }
            kv.del(&key);
        }
        self.obs.count("gateway.journal.rolled_forward", report.rolled_forward as u64);
        self.obs.count("gateway.journal.failed", report.failed as u64);
        Ok(report)
    }

    /// Mints a fresh idempotency token: seed-derived prefix plus a
    /// monotonically increasing sequence number. Unique per logical write
    /// from this gateway instance; retries of one write reuse one token.
    fn next_idem_token(&self) -> [u8; 16] {
        let seq = self.idem_seq.fetch_add(1, Ordering::Relaxed);
        let mut token = [0u8; 16];
        token[..8].copy_from_slice(&self.idem_prefix.to_be_bytes());
        token[8..].copy_from_slice(&seq.to_be_bytes());
        token
    }

    fn plan(&self, schema: &str) -> Result<Arc<SchemaPlan>, CoreError> {
        self.plans.read().get(schema).cloned().ok_or_else(|| CoreError::UnknownSchema(schema.to_string()))
    }

    /// Times a route: `<route>.count`, `<route>.errors`, `<route>.latency`
    /// and one span per call. The guard opens (or roots) a trace context,
    /// so everything the closure touches — channel attempts, replica
    /// applies, WAL flushes — lands in one reconstructable trace tree. With
    /// a disabled recorder this is one atomic load plus the closure.
    fn observed<T>(&self, route: &str, f: impl FnOnce(&Self) -> Result<T, CoreError>) -> Result<T, CoreError> {
        let mut span = self.obs.span(route);
        let result = f(self);
        if let Err(e) = &result {
            span.fail();
            span.set_detail(&e.to_string());
        }
        result
    }

    /// Records one leakage-audit cell: the level `tactic` actually leaked
    /// for `op` on `field` (from its registered [`OpProfile`] — the ground
    /// truth of what the cloud observed) against the ceiling the field's
    /// protection class declares. Boolean-capable tactics answering
    /// equality through their boolean machinery fall back to the
    /// `BoolQuery` profile.
    ///
    /// [`OpProfile`]: crate::model::OpProfile
    fn audit_leakage(&self, schema_name: &str, field: &str, op: TacticOp, op_name: &str, tactic: &str) {
        if !self.obs.is_enabled() {
            return;
        }
        let Ok(plan) = self.plan(schema_name) else { return };
        let Some(declared) =
            plan.schema.sensitive_fields().find(|(f, _)| f.as_str() == field).map(|(_, a)| a.class.max_leakage())
        else {
            return;
        };
        let observed = self
            .registry
            .read()
            .descriptor(tactic)
            .and_then(|d| {
                d.operations
                    .iter()
                    .find(|p| p.op == op)
                    .or_else(|| {
                        (op == TacticOp::EqQuery)
                            .then(|| d.operations.iter().find(|p| p.op == TacticOp::BoolQuery))
                            .flatten()
                    })
                    .map(|p| p.leakage)
            })
            .unwrap_or(declared);
        self.obs.ledger().record(field, op_name, tactic, observed as u8, declared as u8);
    }

    // ---------------------------------------------------- Entities interface

    /// Inserts an application document: validates, mints an id, protects
    /// every sensitive field, runs the index updates and stores the
    /// protected document.
    ///
    /// # Errors
    ///
    /// Schema violations, tactic failures, channel failures.
    pub fn insert(&self, schema_name: &str, doc: &Document) -> Result<DocId, CoreError> {
        self.observed("gateway.insert", |g| {
            let id = g.idgen.lock().generate();
            g.insert_with_id(schema_name, doc, id)?;
            Ok(id)
        })
    }

    fn insert_with_id(&self, schema_name: &str, doc: &Document, id: DocId) -> Result<(), CoreError> {
        {
            let plan = self.plan(schema_name)?;
            validate_document(&plan.schema, doc)?;
        }
        let (cloud_doc, index_calls) = self.protect_document_calls(schema_name, doc, id)?;
        // Index updates, then the document itself, as one journaled write
        // group: an insert interrupted across its tactic indexes is rolled
        // forward on recovery instead of staying half-applied.
        let mut group = index_calls;
        group.push(CloudCall::new("doc/insert", with_collection(schema_name, &encode_document(&cloud_doc))));
        self.send_write_group(&group)
    }

    /// Inserts a batch of documents in (at most) two channel round trips:
    /// one batched call for all index updates and inserts. Semantically
    /// identical to repeated [`GatewayEngine::insert`]; amortizes channel
    /// latency for bulk loads (initial cloud migration). With a worker
    /// pool attached ([`GatewayEngine::set_worker_pool`]) the CPU-heavy
    /// per-field encryption runs in parallel, with byte-identical output.
    ///
    /// # Partial-failure guarantee
    ///
    /// The batch executes cloud-side in submission order and aborts on the
    /// first failing sub-call. Because each document's index calls precede
    /// its `doc/insert`, a mid-batch failure leaves every *stored* document
    /// fully indexed and every unstored document absent from queries —
    /// never a queryable-but-half-indexed document. Documents after the
    /// failing one are not applied at all. The whole batch travels in one
    /// idempotency envelope, so channel-level retries cannot re-run the
    /// already-applied prefix either.
    ///
    /// The gateway's local index state (e.g. chain counters) advances for
    /// the whole batch before the call ships, so an abort leaves it ahead of
    /// the cloud for the unapplied tail. That is safe: index chains tolerate
    /// gaps on read (a missing entry resolves as "update lost"), so later
    /// searches stay exact over what was actually stored.
    ///
    /// # Errors
    ///
    /// Validates *all* documents first (nothing is sent if any fails);
    /// then as [`GatewayEngine::insert`].
    pub fn insert_many(&self, schema_name: &str, docs: &[Document]) -> Result<Vec<DocId>, CoreError> {
        self.observed("gateway.insert_many", |g| {
            {
                let plan = g.plan(schema_name)?;
                for doc in docs {
                    validate_document(&plan.schema, doc)?;
                }
            }
            let ids: Vec<DocId> = {
                let mut idgen = g.idgen.lock();
                docs.iter().map(|_| idgen.generate()).collect()
            };
            let protected: Vec<(Document, Vec<CloudCall>)> = match &g.pool {
                Some(pool) if docs.len() > 1 => g.protect_documents_batch(schema_name, docs, &ids, pool)?,
                _ => docs
                    .iter()
                    .zip(&ids)
                    .map(|(doc, id)| g.protect_document_calls(schema_name, doc, *id))
                    .collect::<Result<_, _>>()?,
            };
            let mut batch: Vec<CloudCall> = Vec::new();
            for (cloud_doc, index_calls) in protected {
                batch.extend(index_calls);
                batch.push(CloudCall::new("doc/insert", with_collection(schema_name, &encode_document(&cloud_doc))));
            }
            g.call_batch(&batch)?;
            Ok(ids)
        })
    }

    /// Initial cloud migration: inserts a corpus like
    /// [`GatewayEngine::insert_many`], but builds the boolean tactic's
    /// *static* base index over the whole corpus (the Clusion-style
    /// setup-time structures) instead of per-document dynamic chains.
    /// Subsequent [`GatewayEngine::insert`]s layer the dynamic overlay on
    /// top; queries merge both transparently.
    ///
    /// # Errors
    ///
    /// As [`GatewayEngine::insert_many`].
    pub fn migrate(&self, schema_name: &str, docs: &[Document]) -> Result<Vec<DocId>, CoreError> {
        self.observed("gateway.migrate", |g| {
            let plan = g.plan(schema_name)?;
            for doc in docs {
                validate_document(&plan.schema, doc)?;
            }
            let bool_fields: Vec<String> =
                plan.fields.iter().filter(|(_, fp)| fp.boolean).map(|(f, _)| f.clone()).collect();
            let bool_tactic = plan.bool_tactic.clone();

            let mut ids = Vec::with_capacity(docs.len());
            let mut batch: Vec<CloudCall> = Vec::new();
            let mut entries: Vec<(Vec<(String, Value)>, DocId)> = Vec::new();
            for doc in docs {
                let id = g.idgen.lock().generate();
                // Per-field tactics as usual; collect boolean literals for the
                // bulk build instead of letting protect_document chain them.
                let literals: Vec<(String, Value)> =
                    bool_fields.iter().filter_map(|f| doc.get(f).map(|v| (f.clone(), v.clone()))).collect();
                let (cloud_doc, index_calls) = g.protect_document_calls_inner(schema_name, doc, id, false)?;
                batch.extend(index_calls);
                batch.push(CloudCall::new("doc/insert", with_collection(schema_name, &encode_document(&cloud_doc))));
                if !literals.is_empty() {
                    entries.push((literals, id));
                }
                ids.push(id);
            }
            if let (Some(bt), false) = (&bool_tactic, entries.is_empty()) {
                let mut rng = g.fork_rng();
                let t = g.tactic(schema_name, BOOL_SCOPE, bt)?;
                let calls = t.lock().bulk_index(&mut rng, &entries)?;
                if let Some(calls) = calls {
                    batch.extend(calls);
                }
            }
            g.call_batch(&batch)?;
            Ok(ids)
        })
    }

    /// Executes calls through the cloud's `batch` route (one round trip).
    fn call_batch(&self, calls: &[CloudCall]) -> Result<Vec<Vec<u8>>, CoreError> {
        if calls.is_empty() {
            return Ok(Vec::new());
        }
        let mut w = datablinder_sse::encoding::Writer::new();
        let items: Vec<Vec<u8>> =
            calls.iter().flat_map(|c| [c.route.clone().into_bytes(), c.payload.clone()]).collect();
        w.list(&items);
        let out = self.call(&CloudCall::new("batch", w.finish()))?;
        let mut r = datablinder_sse::encoding::Reader::new(&out);
        let responses = r.list().map_err(|e| CoreError::Sse(e.to_string()))?;
        if responses.len() != calls.len() {
            return Err(CoreError::Wire("batch response arity"));
        }
        Ok(responses)
    }

    /// Computes one document's protected form + index calls (shared by
    /// single and batched insert).
    fn protect_document_calls(
        &self,
        schema_name: &str,
        doc: &Document,
        id: DocId,
    ) -> Result<(Document, Vec<CloudCall>), CoreError> {
        self.protect_document_calls_inner(schema_name, doc, id, true)
    }

    /// As [`GatewayEngine::protect_document_calls`]; `index_boolean`
    /// controls whether the shared boolean tactic chains the document
    /// (false during bulk migration, which static-indexes instead).
    fn protect_document_calls_inner(
        &self,
        schema_name: &str,
        doc: &Document,
        id: DocId,
        index_boolean: bool,
    ) -> Result<(Document, Vec<CloudCall>), CoreError> {
        let plan = self.plan(schema_name)?;
        let mut cloud_doc = Document::new(id.to_hex());
        let mut index_calls: Vec<CloudCall> = Vec::new();
        let mut bool_literals: Vec<(String, Value)> = Vec::new();

        let work = plan_field_work(&plan, doc, &mut cloud_doc);

        for w in &work {
            if w.boolean {
                bool_literals.push((w.field.clone(), w.value.clone()));
            }
            for tactic in &w.tactics {
                let started = self.obs.start();
                let mut rng = self.fork_rng();
                let t = self.tactic(schema_name, &w.field, tactic)?;
                let protected = t.lock().protect(&mut rng, &w.field, &w.value, id)?;
                for (f, v) in protected.stored {
                    cloud_doc.set(f, v);
                }
                index_calls.extend(protected.index_calls);
                if let Some(t0) = started {
                    self.obs.ewma_observe(&format!("tactic.{tactic}.update"), t0.elapsed());
                }
                self.audit_leakage(schema_name, &w.field, TacticOp::Update, "insert", tactic);
            }
        }
        if let (true, Some(bt), false) = (index_boolean, &plan.bool_tactic, bool_literals.is_empty()) {
            let mut rng = self.fork_rng();
            let t = self.tactic(schema_name, BOOL_SCOPE, bt)?;
            let calls = t.lock().protect_document(&mut rng, &bool_literals, id)?;
            if let Some(calls) = calls {
                index_calls.extend(calls);
            }
        }
        Ok((cloud_doc, index_calls))
    }

    /// Parallel counterpart of repeated
    /// [`GatewayEngine::protect_document_calls`] over a batch, used by
    /// [`GatewayEngine::insert_many`] when a worker pool is attached.
    ///
    /// # Determinism
    ///
    /// The output is byte-identical to the sequential path:
    ///
    /// * Per-operation RNGs are **pre-forked on the submitting thread** in
    ///   the exact order the sequential path would fork them (doc-major,
    ///   document field order, tactic order, boolean fork last per doc), so
    ///   every `(doc, field, tactic)` application sees the same child RNG.
    /// * Work is partitioned **per tactic instance**; each partition
    ///   processes its items in document order, so stateful chains (Mitra
    ///   counters, Sophos chains) advance exactly as sequentially. Distinct
    ///   instances share no state, so partitions compose in any schedule.
    /// * Results are reassembled doc-major in the sequential application
    ///   order before the batch is encoded.
    ///
    /// On failure nothing ships (same abort-atomicity as sequential); the
    /// error returned is the sequentially-first one, though later items may
    /// already have advanced local chain state — the same tolerated
    /// run-ahead the batch abort path documents.
    fn protect_documents_batch(
        &self,
        schema_name: &str,
        docs: &[Document],
        ids: &[DocId],
        pool: &WorkerPool,
    ) -> Result<Vec<(Document, Vec<CloudCall>)>, CoreError> {
        struct Item {
            doc: usize,
            ord: usize,
            field: String,
            value: Value,
            tactic: String,
            id: DocId,
            rng: StdRng,
        }
        enum Out {
            Field {
                doc: usize,
                ord: usize,
                field: String,
                tactic: String,
                took: Duration,
                result: Result<ProtectedField, CoreError>,
            },
            Boolean {
                doc: usize,
                result: Result<Option<Vec<CloudCall>>, CoreError>,
            },
        }

        let plan = self.plan(schema_name)?;
        let timing = self.obs.is_enabled();

        // Plan every doc's work and pre-fork RNGs in sequential fork order.
        let mut skeletons: Vec<Document> = Vec::with_capacity(docs.len());
        let mut partitions: HashMap<String, (String, String, Vec<Item>)> = HashMap::new();
        // (doc index, boolean literals, doc id, forked rng) per document.
        type BoolItem = (usize, Vec<(String, Value)>, DocId, StdRng);
        let mut bool_items: Vec<BoolItem> = Vec::new();
        {
            let mut rng = self.rng.lock();
            for (di, doc) in docs.iter().enumerate() {
                let mut cloud_doc = Document::new(ids[di].to_hex());
                let work = plan_field_work(&plan, doc, &mut cloud_doc);
                let mut ord = 0usize;
                let mut bool_literals: Vec<(String, Value)> = Vec::new();
                for w in &work {
                    if w.boolean {
                        bool_literals.push((w.field.clone(), w.value.clone()));
                    }
                    for tactic in &w.tactics {
                        let forked = StdRng::from_rng(&mut *rng).expect("rng fork");
                        let key = Self::tactic_key(schema_name, &w.field, tactic);
                        partitions.entry(key).or_insert_with(|| (w.field.clone(), tactic.clone(), Vec::new())).2.push(
                            Item {
                                doc: di,
                                ord,
                                field: w.field.clone(),
                                value: w.value.clone(),
                                tactic: tactic.clone(),
                                id: ids[di],
                                rng: forked,
                            },
                        );
                        ord += 1;
                    }
                }
                if let (Some(_), false) = (&plan.bool_tactic, bool_literals.is_empty()) {
                    let forked = StdRng::from_rng(&mut *rng).expect("rng fork");
                    bool_items.push((di, bool_literals, ids[di], forked));
                }
                skeletons.push(cloud_doc);
            }
        }

        // One job per tactic instance + one for the shared boolean tactic.
        let mut jobs: Vec<Box<dyn FnOnce() -> Vec<Out> + Send>> = Vec::new();
        for (_, (scope, tactic_name, items)) in partitions {
            let t = self.tactic(schema_name, &scope, &tactic_name)?;
            jobs.push(Box::new(move || {
                let mut guard = t.lock();
                // One `protect_many` call per partition: the tactic sees the
                // whole contiguous batch and can amortize cipher contexts
                // (batch seal, shared HMAC midstates). Items keep their own
                // pre-forked RNGs, so outputs stay byte-identical to the
                // sequential path.
                let mut items = items;
                let t0 = timing.then(std::time::Instant::now);
                let mut pitems: Vec<ProtectItem<'_>> = items
                    .iter_mut()
                    .map(|it| ProtectItem { rng: &mut it.rng, field: &it.field, value: &it.value, id: it.id })
                    .collect();
                let results = guard.protect_many(&mut pitems);
                drop(pitems);
                // Per-item latency is the amortized share of the batch call
                // (individual attribution is meaningless inside one batch).
                let per_item = t0.map_or(Duration::ZERO, |t0| {
                    t0.elapsed().checked_div(items.len().max(1) as u32).unwrap_or(Duration::ZERO)
                });
                items
                    .into_iter()
                    .zip(results)
                    .map(|(it, result)| Out::Field {
                        doc: it.doc,
                        ord: it.ord,
                        field: it.field,
                        tactic: it.tactic,
                        took: per_item,
                        result,
                    })
                    .collect()
            }));
        }
        if !bool_items.is_empty() {
            let bt = plan.bool_tactic.clone().expect("bool items imply a bool tactic");
            let t = self.tactic(schema_name, BOOL_SCOPE, &bt)?;
            jobs.push(Box::new(move || {
                let mut guard = t.lock();
                bool_items
                    .into_iter()
                    .map(|(di, literals, id, mut rng)| Out::Boolean {
                        doc: di,
                        result: guard.protect_document(&mut rng, &literals, id),
                    })
                    .collect()
            }));
        }

        self.obs.count("gateway.pool.jobs", jobs.len() as u64);
        // Queue depth at submission = the whole fan-out; the gauge captures
        // the high-water mark of this batch (it drains to 0 by return).
        self.obs.gauge_set("gateway.pool.queue_depth", jobs.len() as i64);
        let outputs = pool.run_ordered(jobs);
        self.obs.gauge_set("gateway.pool.queue_depth", pool.queue_depth());

        // Reassemble doc-major in sequential application order; the
        // sequentially-first error wins.
        let mut flat: Vec<Out> = outputs.into_iter().flatten().collect();
        flat.sort_by_key(|o| match o {
            Out::Field { doc, ord, .. } => (*doc, *ord),
            Out::Boolean { doc, .. } => (*doc, usize::MAX),
        });
        let mut out: Vec<(Document, Vec<CloudCall>)> = skeletons.into_iter().map(|d| (d, Vec::new())).collect();
        for o in flat {
            match o {
                Out::Field { doc, field, tactic, took, result, .. } => {
                    let protected = result?;
                    let (cloud_doc, index_calls) = &mut out[doc];
                    for (f, v) in protected.stored {
                        cloud_doc.set(f, v);
                    }
                    index_calls.extend(protected.index_calls);
                    if timing {
                        self.obs.ewma_observe(&format!("tactic.{tactic}.update"), took);
                    }
                    self.audit_leakage(schema_name, &field, TacticOp::Update, "insert", &tactic);
                }
                Out::Boolean { doc, result } => {
                    if let Some(calls) = result? {
                        out[doc].1.extend(calls);
                    }
                }
            }
        }
        Ok(out)
    }

    /// Fetches and decrypts a document.
    ///
    /// # Errors
    ///
    /// [`CoreError::NotFound`], decryption failures.
    pub fn get(&self, schema_name: &str, id: DocId) -> Result<Document, CoreError> {
        self.observed("gateway.get", |g| {
            g.plan(schema_name)?;
            let stored = g.fetch_raw(schema_name, id)?;
            g.recover_document(schema_name, &stored)
        })
    }

    fn fetch_raw(&self, schema_name: &str, id: DocId) -> Result<Document, CoreError> {
        let payload = with_collection(schema_name, id.to_hex().as_bytes());
        let bytes = self.call(&CloudCall::new("doc/get", payload))?;
        decode_document(&bytes)
    }

    /// Decrypts a stored cloud document back into application form.
    ///
    /// Shadow fields are recognized as `<sensitive-base>__<suffix>`;
    /// consequently a *plaintext* field named `<sensitive field>__x` would
    /// be mistaken for a shadow field. Avoid such names (the schema is
    /// under application control, so this is a naming convention, not an
    /// attack surface).
    fn recover_document(&self, schema_name: &str, stored: &Document) -> Result<Document, CoreError> {
        let plan = self.plan(schema_name)?;
        let mut out = Document::new(stored.id());
        for (field, value) in stored.iter() {
            if let Some((base, _)) = field.rsplit_once("__") {
                if plan.fields.contains_key(base) {
                    continue; // shadow field, handled below
                }
            }
            out.set(field.clone(), value.clone());
        }
        for (field, fp) in &plan.fields {
            let payload_tactic = self.tactic(schema_name, field, &fp.selection.payload)?;
            let recovered = payload_tactic.lock().recover(field, stored)?;
            if let Some(v) = recovered {
                out.set(field.clone(), v);
            }
        }
        Ok(out)
    }

    /// Deletes a document, revoking its index entries.
    ///
    /// # Errors
    ///
    /// [`CoreError::NotFound`], channel failures.
    pub fn delete(&self, schema_name: &str, id: DocId) -> Result<(), CoreError> {
        self.observed("gateway.delete", |g| g.delete_inner(schema_name, id))
    }

    fn delete_inner(&self, schema_name: &str, id: DocId) -> Result<(), CoreError> {
        // Recover plaintext values to produce the revocation tokens.
        let plaintext = self.get(schema_name, id)?;
        let plan = self.plan(schema_name)?;

        struct DeleteWork {
            field: String,
            value: Value,
            tactics: Vec<String>,
            boolean: bool,
        }
        let mut work = Vec::new();
        for (field, fp) in &plan.fields {
            if let Some(value) = plaintext.get(field) {
                work.push(DeleteWork {
                    field: field.clone(),
                    value: value.clone(),
                    tactics: fp.selection.all_tactics().into_iter().filter(|t| !t.starts_with("biex")).collect(),
                    boolean: fp.boolean,
                });
            }
        }
        let bool_tactic = plan.bool_tactic.clone();

        let mut calls = Vec::new();
        let mut bool_literals = Vec::new();
        for w in &work {
            if w.boolean {
                bool_literals.push((w.field.clone(), w.value.clone()));
            }
            for tactic in &w.tactics {
                let t = self.tactic(schema_name, &w.field, tactic)?;
                let revocations = t.lock().delete(&w.field, &w.value, id)?;
                calls.extend(revocations);
            }
        }
        if let (Some(bt), false) = (&bool_tactic, bool_literals.is_empty()) {
            let t = self.tactic(schema_name, BOOL_SCOPE, bt)?;
            let revocations = t.lock().delete_document(&bool_literals, id)?;
            if let Some(c) = revocations {
                calls.extend(c);
            }
        }
        // Revocations + the delete itself as one journaled write group,
        // mirroring insert: an interrupted delete finishes on recovery.
        calls.push(CloudCall::new("doc/delete", with_collection(schema_name, id.to_hex().as_bytes())));
        self.send_write_group(&calls)
    }

    /// Replaces a document (delete + insert under the same id).
    ///
    /// # Errors
    ///
    /// As [`GatewayEngine::delete`] and [`GatewayEngine::insert`].
    pub fn update(&self, schema_name: &str, id: DocId, doc: &Document) -> Result<(), CoreError> {
        self.observed("gateway.update", |g| {
            g.delete_inner(schema_name, id)?;
            g.insert_with_id(schema_name, doc, id)
        })
    }

    /// Equality search on one field, returning decrypted documents.
    ///
    /// # Errors
    ///
    /// [`CoreError::UnsupportedOperation`] if the field's annotation did
    /// not request equality.
    pub fn find_equal(&self, schema_name: &str, field: &str, value: &Value) -> Result<Vec<Document>, CoreError> {
        self.observed("gateway.find_equal", |g| {
            let ids = g.equality_ids(schema_name, field, value)?;
            g.get_many(schema_name, &ids)
        })
    }

    /// Equality search returning raw ids. Shared by
    /// [`GatewayEngine::find_equal`] and [`GatewayEngine::fsck`], which
    /// must see ids that do *not* resolve to stored documents (`get_many`
    /// silently skips them).
    fn equality_ids(&self, schema_name: &str, field: &str, value: &Value) -> Result<Vec<DocId>, CoreError> {
        let plan = self.plan(schema_name)?;
        let fp = plan
            .fields
            .get(field)
            .ok_or_else(|| CoreError::UnsupportedOperation(format!("field {field} is not annotated")))?;
        let (scope, tactic) = match (&fp.eq_tactic, fp.boolean) {
            (Some(t), false) => (field.to_string(), t.clone()),
            (Some(t), true) if t.starts_with("biex") => (BOOL_SCOPE.to_string(), t.clone()),
            (Some(t), true) => (field.to_string(), t.clone()),
            (None, _) => return Err(CoreError::UnsupportedOperation(format!("field {field} has no equality tactic"))),
        };
        let started = self.obs.start();
        let t = self.tactic(schema_name, &scope, &tactic)?;
        let calls = t.lock().eq_query(field, value)?;
        let responses = calls.iter().map(|c| self.call(c)).collect::<Result<Vec<_>, _>>()?;
        let ids = t.lock().eq_resolve(field, value, &responses)?;
        if let Some(t0) = started {
            self.obs.ewma_observe(&format!("tactic.{tactic}.eq_query"), t0.elapsed());
        }
        self.audit_leakage(schema_name, field, TacticOp::EqQuery, "equality", &tactic);
        Ok(ids)
    }

    /// Boolean (DNF) search across fields, returning decrypted documents.
    ///
    /// # Errors
    ///
    /// [`CoreError::UnsupportedOperation`] when the touched fields have no
    /// common boolean capability.
    pub fn find_boolean(&self, schema_name: &str, dnf: &DnfLiterals) -> Result<Vec<Document>, CoreError> {
        self.observed("gateway.find_boolean", |g| {
            let ids = g.boolean_ids(schema_name, dnf)?;
            g.get_many(schema_name, &ids)
        })
    }

    /// Boolean search returning raw ids (see [`GatewayEngine::equality_ids`]).
    fn boolean_ids(&self, schema_name: &str, dnf: &DnfLiterals) -> Result<Vec<DocId>, CoreError> {
        let started = self.obs.start();
        let plan = self.plan(schema_name)?;
        let fields: Vec<String> = dnf.iter().flatten().map(|(f, _)| f.clone()).collect();
        let all_boolean = fields.iter().all(|f| plan.fields.get(f).is_some_and(|p| p.boolean));
        let mut used_tactic = "det".to_string();
        let ids = if all_boolean && plan.bool_tactic.is_some() {
            let bt = plan.bool_tactic.clone().unwrap();
            used_tactic = bt.clone();
            let t = self.tactic(schema_name, BOOL_SCOPE, &bt)?;
            let calls = t.lock().bool_query(dnf)?;
            let responses = calls.iter().map(|c| self.call(c)).collect::<Result<Vec<_>, _>>()?;
            let resolved = t.lock().bool_resolve(dnf, &responses)?;
            resolved
        } else {
            // Legacy-friendly path: every field protected by DET can be
            // boolean-combined cloud-side.
            let all_det = fields
                .iter()
                .all(|f| plan.fields.get(f).is_some_and(|p| p.selection.all_tactics().contains(&"det".to_string())));
            if !all_det {
                return Err(CoreError::UnsupportedOperation(
                    "boolean search requires all fields to share a boolean-capable tactic".into(),
                ));
            }
            // Any DET field adapter can issue the combined query; literals
            // must be rewritten with each field's own key, so collect them
            // per field first.
            let mut rewritten: DnfLiterals = Vec::new();
            for conj in dnf {
                let mut out_conj = Vec::new();
                for (f, v) in conj {
                    let t = self.tactic(schema_name, f, "det")?;
                    let lit = t
                        .lock()
                        .stored_literal(f, v)
                        .ok_or_else(|| CoreError::UnsupportedOperation(format!("{f}: no stored literal")))?;
                    out_conj.push(lit);
                }
                rewritten.push(out_conj);
            }
            let req = crate::cloudproto::FindIdsDnf { collection: schema_name.to_string(), dnf: rewritten };
            let response = self.call(&CloudCall::new("doc/find_ids_dnf", req.encode()))?;
            decode_ids(&response)?
        };
        if let Some(t0) = started {
            self.obs.ewma_observe(&format!("tactic.{used_tactic}.bool_query"), t0.elapsed());
        }
        for field in &fields {
            self.audit_leakage(schema_name, field, TacticOp::BoolQuery, "boolean", &used_tactic);
        }
        Ok(ids)
    }

    /// Range search on one field (inclusive bounds), returning decrypted
    /// documents.
    ///
    /// # Errors
    ///
    /// [`CoreError::UnsupportedOperation`] if the field's annotation did
    /// not request range search.
    pub fn find_range(
        &self,
        schema_name: &str,
        field: &str,
        lo: &Value,
        hi: &Value,
    ) -> Result<Vec<Document>, CoreError> {
        self.observed("gateway.find_range", |g| {
            let ids = g.range_ids(schema_name, field, lo, hi)?;
            g.get_many(schema_name, &ids)
        })
    }

    /// Range search returning raw ids (see [`GatewayEngine::equality_ids`]).
    fn range_ids(&self, schema_name: &str, field: &str, lo: &Value, hi: &Value) -> Result<Vec<DocId>, CoreError> {
        let plan = self.plan(schema_name)?;
        let tactic = plan
            .fields
            .get(field)
            .and_then(|p| p.range_tactic.clone())
            .ok_or_else(|| CoreError::UnsupportedOperation(format!("field {field} has no range tactic")))?;
        let started = self.obs.start();
        let t = self.tactic(schema_name, field, &tactic)?;
        let calls = t.lock().range_query(field, lo, hi)?;
        let responses = calls.iter().map(|c| self.call(c)).collect::<Result<Vec<_>, _>>()?;
        let ids = t.lock().range_resolve(&responses)?;
        if let Some(t0) = started {
            self.obs.ewma_observe(&format!("tactic.{tactic}.range_query"), t0.elapsed());
        }
        self.audit_leakage(schema_name, field, TacticOp::RangeQuery, "range", &tactic);
        Ok(ids)
    }

    /// Cloud-side aggregate over a field, optionally restricted by a
    /// boolean filter evaluated first.
    ///
    /// # Errors
    ///
    /// [`CoreError::UnsupportedOperation`] if the field has no aggregate
    /// tactic.
    pub fn aggregate(
        &self,
        schema_name: &str,
        field: &str,
        agg: AggFn,
        filter: Option<&DnfLiterals>,
    ) -> Result<f64, CoreError> {
        self.observed("gateway.aggregate", |g| {
            let plan = g.plan(schema_name)?;
            let tactic = plan
                .fields
                .get(field)
                .and_then(|p| p.selection.agg_tactics.first().cloned())
                .ok_or_else(|| CoreError::UnsupportedOperation(format!("field {field} has no aggregate tactic")))?;
            let ids: Vec<DocId> = match filter {
                None => Vec::new(),
                Some(dnf) => {
                    let docs = g.find_boolean(schema_name, dnf)?;
                    docs.iter().filter_map(|d| DocId::from_hex(d.id())).collect()
                }
            };
            let started = g.obs.start();
            let t = g.tactic(schema_name, field, &tactic)?;
            let calls = t.lock().agg_query(field, agg, &ids)?;
            let responses = calls.iter().map(|c| g.call(c)).collect::<Result<Vec<_>, _>>()?;
            let out = t.lock().agg_resolve(agg, &responses)?;
            if let Some(t0) = started {
                g.obs.ewma_observe(&format!("tactic.{tactic}.aggregate"), t0.elapsed());
            }
            g.audit_leakage(schema_name, field, TacticOp::Aggregate, "aggregate", &tactic);
            Ok(out)
        })
    }

    /// Returns the document holding the extreme (min or max) value of a
    /// range-annotated field, computed *by the cloud over ciphertexts*
    /// (OPE byte order equals plaintext order — a class-5 capability).
    ///
    /// # Errors
    ///
    /// [`CoreError::UnsupportedOperation`] if the field's range tactic is
    /// not order-preserving at rest (ORE stores no comparable bytes).
    pub fn find_extreme(&self, schema_name: &str, field: &str, maximum: bool) -> Result<Option<Document>, CoreError> {
        self.observed("gateway.find_extreme", |g| {
            let plan = g.plan(schema_name)?;
            let tactic = plan.fields.get(field).and_then(|p| p.range_tactic.clone());
            if tactic.as_deref() != Some("ope") {
                return Err(CoreError::UnsupportedOperation(format!(
                    "min/max needs an order-preserving stored field; {field} has {tactic:?}"
                )));
            }
            let mut rest = vec![maximum as u8];
            rest.extend_from_slice(format!("{field}__ope").as_bytes());
            let out = g.call(&CloudCall::new("doc/extreme", with_collection(schema_name, &rest)))?;
            if out.is_empty() {
                return Ok(None);
            }
            g.audit_leakage(schema_name, field, TacticOp::RangeQuery, "extreme", "ope");
            let id = String::from_utf8(out).map_err(|_| CoreError::Wire("utf8 id"))?;
            let doc_id = DocId::from_hex(&id).ok_or(CoreError::Wire("doc id"))?;
            Ok(Some(g.get(schema_name, doc_id)?))
        })
    }

    /// Number of stored documents.
    ///
    /// # Errors
    ///
    /// Channel failures.
    pub fn count(&self, schema_name: &str) -> Result<u64, CoreError> {
        self.observed("gateway.count", |g| {
            g.plan(schema_name)?;
            let out = g.call(&CloudCall::new("doc/count", with_collection(schema_name, b"")))?;
            out.try_into().map(u64::from_be_bytes).map_err(|_| CoreError::Wire("count response"))
        })
    }

    fn get_many(&self, schema_name: &str, ids: &[DocId]) -> Result<Vec<Document>, CoreError> {
        if ids.is_empty() {
            return Ok(Vec::new());
        }
        let bytes = self.call(&CloudCall::new("doc/get_many", get_many_payload(schema_name, ids)))?;
        let stored = decode_documents(&bytes)?;
        stored.iter().map(|d| self.recover_document(schema_name, d)).collect()
    }

    /// Rotates the payload-encryption key of one field and re-encrypts
    /// every stored document under the new key version — the crypto-agility
    /// maintenance flow (§8 of DESIGN.md; Table 2's "key management"
    /// challenge made operational).
    ///
    /// Returns the new key version.
    ///
    /// # Errors
    ///
    /// Decryption failures on corrupt data; channel failures. On error the
    /// rotation may be partially applied (already re-encrypted documents
    /// stay on the new version, which remains decryptable).
    pub fn rotate_payload_key(&self, schema_name: &str, field: &str) -> Result<u64, CoreError> {
        let plan = self.plan(schema_name)?;
        let fp = plan
            .fields
            .get(field)
            .ok_or_else(|| CoreError::UnsupportedOperation(format!("field {field} is not annotated")))?;
        let payload_tactic = fp.selection.payload.clone();

        // 1. Recover every document's plaintext value under the current key.
        let ids_bytes = self.call(&CloudCall::new("doc/list_ids", with_collection(schema_name, b"")))?;
        let mut r = datablinder_sse::encoding::Reader::new(&ids_bytes);
        let raw_ids = r.list().map_err(|e| CoreError::Sse(e.to_string()))?;
        let mut recovered: Vec<(String, Option<Value>, Document)> = Vec::new();
        {
            let tactic = self.tactic(schema_name, field, &payload_tactic)?;
            for id in &raw_ids {
                let id = String::from_utf8(id.clone()).map_err(|_| CoreError::Wire("utf8 id"))?;
                let stored = decode_document(
                    &self.call(&CloudCall::new("doc/get", with_collection(schema_name, id.as_bytes())))?,
                )?;
                let value = tactic.lock().recover(field, &stored)?;
                recovered.push((id, value, stored));
            }
        }

        // 2. Rotate the KMS scope and rebuild the tactic instance so it
        //    derives the new key version.
        let ctx = TacticContext {
            application: self.application.clone(),
            schema: schema_name.to_string(),
            scope: field.to_string(),
            kms: self.kms.clone(),
        };
        let new_version = self.kms.rotate(&ctx.key_scope(&payload_tactic));
        let mut fresh = {
            let registry = self.registry.read();
            let mut rng = self.rng.lock();
            registry.build_gateway(&payload_tactic, &ctx, &mut *rng)?
        };
        fresh.attach_recorder(&self.obs);
        self.tactics.write().insert(Self::tactic_key(schema_name, field, &payload_tactic), Arc::new(Mutex::new(fresh)));

        // 3. Re-protect each value and update the stored documents.
        for (id, value, mut stored) in recovered {
            let Some(value) = value else { continue };
            let doc_id = DocId::from_hex(&id).ok_or(CoreError::Wire("doc id"))?;
            let mut rng = self.fork_rng();
            let tactic = self.tactic(schema_name, field, &payload_tactic)?;
            let protected = tactic.lock().protect(&mut rng, field, &value, doc_id)?;
            for (f, v) in protected.stored {
                stored.set(f, v);
            }
            // Payload re-encryption produces no index calls; assert the
            // invariant so index-bearing tactics are never rotated this way.
            debug_assert!(protected.index_calls.is_empty());
            self.call(&CloudCall::new("doc/update", with_collection(schema_name, &encode_document(&stored))))?;
        }
        Ok(new_version)
    }

    /// Rotates the key of a *stateful index* tactic (Mitra/Sophos) on one
    /// field and rebuilds the encrypted index from scratch:
    ///
    /// 1. recovers every document's plaintext value (payload tactic),
    /// 2. drops the tactic's cloud scope (`kv/del_prefix`),
    /// 3. rotates the KMS scope and rebuilds the tactic instance (fresh
    ///    chains under the new key),
    /// 4. re-indexes every document in one batched round trip.
    ///
    /// Complements [`GatewayEngine::rotate_payload_key`], which handles the
    /// recoverable-payload tactics.
    ///
    /// # Errors
    ///
    /// [`CoreError::UnsupportedOperation`] if the field's equality tactic
    /// is not a field-scoped index tactic; decryption/channel failures.
    pub fn rotate_index_key(&self, schema_name: &str, field: &str) -> Result<u64, CoreError> {
        let (tactic, payload_tactic) = {
            let plan = self.plan(schema_name)?;
            let fp = plan
                .fields
                .get(field)
                .ok_or_else(|| CoreError::UnsupportedOperation(format!("field {field} is not annotated")))?;
            let tactic =
                fp.eq_tactic.clone().filter(|t| matches!(t.as_str(), "mitra" | "sophos")).ok_or_else(|| {
                    CoreError::UnsupportedOperation(format!("field {field} has no rotatable index tactic"))
                })?;
            (tactic, fp.selection.payload.clone())
        };

        // 1. Recover plaintext values for every stored document.
        let ids_bytes = self.call(&CloudCall::new("doc/list_ids", with_collection(schema_name, b"")))?;
        let mut r = datablinder_sse::encoding::Reader::new(&ids_bytes);
        let raw_ids = r.list().map_err(|e| CoreError::Sse(e.to_string()))?;
        let mut recovered: Vec<(DocId, Value)> = Vec::new();
        {
            let payload = self.tactic(schema_name, field, &payload_tactic)?;
            for id in &raw_ids {
                let id = String::from_utf8(id.clone()).map_err(|_| CoreError::Wire("utf8 id"))?;
                let stored = decode_document(
                    &self.call(&CloudCall::new("doc/get", with_collection(schema_name, id.as_bytes())))?,
                )?;
                if let Some(value) = payload.lock().recover(field, &stored)? {
                    recovered.push((DocId::from_hex(&id).ok_or(CoreError::Wire("doc id"))?, value));
                }
            }
        }

        // 2. Drop the old cloud scope (prefix convention shared with the
        //    cloud tactic handlers: `t/<tactic>/<schema>:<scope>/`).
        let prefix = format!("t/{tactic}/{schema_name}:{field}/");
        self.call(&CloudCall::new("kv/del_prefix", prefix.into_bytes()))?;

        // 3. Rotate the key and rebuild the instance (fresh chains).
        let ctx = TacticContext {
            application: self.application.clone(),
            schema: schema_name.to_string(),
            scope: field.to_string(),
            kms: self.kms.clone(),
        };
        let new_version = self.kms.rotate(&ctx.key_scope(&tactic));
        let mut fresh = {
            let registry = self.registry.read();
            let mut rng = self.rng.lock();
            registry.build_gateway(&tactic, &ctx, &mut *rng)?
        };
        fresh.attach_recorder(&self.obs);
        self.tactics.write().insert(Self::tactic_key(schema_name, field, &tactic), Arc::new(Mutex::new(fresh)));

        // 4. Re-index everything, batched.
        let mut batch = Vec::with_capacity(recovered.len());
        let t = self.tactic(schema_name, field, &tactic)?;
        for (id, value) in &recovered {
            let mut rng = self.fork_rng();
            let protected = t.lock().protect(&mut rng, field, value, *id)?;
            debug_assert!(protected.stored.is_empty(), "index tactics store nothing in documents");
            batch.extend(protected.index_calls);
        }
        self.call_batch(&batch)?;
        Ok(new_version)
    }

    // ------------------------------------------------------------------ fsck

    /// Index↔store consistency check, meant to run after crash recovery:
    /// decrypts every stored document, then issues every supported search
    /// (equality, range, boolean — one per field × tactic × distinct
    /// value) and cross-checks the results. Every stored document must be
    /// reachable through each of its fields' registered search tactics,
    /// and no search may return an id that is not stored with that value
    /// (an orphan index entry).
    ///
    /// # Errors
    ///
    /// Channel/decryption failures; inconsistencies are *reported* in the
    /// [`FsckReport`], not raised as errors.
    pub fn fsck(&self, schema_name: &str) -> Result<FsckReport, CoreError> {
        // (field, eq?, range?, boolean?) snapshot of the plan, sorted for
        // deterministic reports.
        let mut field_plans: Vec<(String, bool, bool, bool)> = {
            let plan = self.plan(schema_name)?;
            let has_bool = plan.bool_tactic.is_some();
            plan.fields
                .iter()
                .map(|(f, fp)| (f.clone(), fp.eq_tactic.is_some(), fp.range_tactic.is_some(), fp.boolean && has_bool))
                .collect()
        };
        field_plans.sort_by(|a, b| a.0.cmp(&b.0));

        // Snapshot the store through the raw id list — NOT get_many, which
        // silently skips missing documents and would hide orphans.
        let ids_bytes = self.call(&CloudCall::new("doc/list_ids", with_collection(schema_name, b"")))?;
        let mut r = datablinder_sse::encoding::Reader::new(&ids_bytes);
        let raw_ids = r.list().map_err(|e| CoreError::Sse(e.to_string()))?;
        let mut stored_ids: Vec<DocId> = Vec::new();
        let mut plaintext: Vec<(DocId, Document)> = Vec::new();
        for id in &raw_ids {
            let hex = std::str::from_utf8(id).map_err(|_| CoreError::Wire("utf8 id"))?;
            let doc_id = DocId::from_hex(hex).ok_or(CoreError::Wire("doc id"))?;
            let stored = self.fetch_raw(schema_name, doc_id)?;
            plaintext.push((doc_id, self.recover_document(schema_name, &stored)?));
            stored_ids.push(doc_id);
        }

        let mut report = FsckReport { docs_checked: plaintext.len(), ..FsckReport::default() };
        for (field, eq, range, boolean) in field_plans {
            if !(eq || range || boolean) {
                continue;
            }
            // Distinct values of this field and the docs expected to hold
            // them (linear grouping: Value is neither Hash nor Ord).
            let mut groups: Vec<(Value, Vec<DocId>)> = Vec::new();
            for (id, doc) in &plaintext {
                if let Some(v) = doc.get(&field) {
                    match groups.iter_mut().find(|(gv, _)| gv == v) {
                        Some((_, ids)) => ids.push(*id),
                        None => groups.push((v.clone(), vec![*id])),
                    }
                }
            }
            for (value, expected) in &groups {
                let check = |kind: &str, got: &[DocId], report: &mut FsckReport| {
                    report.searches_run += 1;
                    for id in expected {
                        if !got.contains(id) {
                            report
                                .missing_index_entries
                                .push(format!("{kind} {field}={value:?}: stored doc {} unreachable", id.to_hex()));
                        }
                    }
                    for id in got {
                        if !expected.contains(id) {
                            let diagnosis = if stored_ids.contains(id) {
                                "stored under a different value"
                            } else {
                                "orphan index entry"
                            };
                            report
                                .orphan_results
                                .push(format!("{kind} {field}={value:?}: returned {} ({diagnosis})", id.to_hex()));
                        }
                    }
                };
                if eq {
                    let got = self.equality_ids(schema_name, &field, value)?;
                    check("eq", &got, &mut report);
                }
                if range {
                    let got = self.range_ids(schema_name, &field, value, value)?;
                    check("range", &got, &mut report);
                }
                if boolean {
                    let dnf = vec![vec![(field.clone(), value.clone())]];
                    let got = self.boolean_ids(schema_name, &dnf)?;
                    check("bool", &got, &mut report);
                }
            }
        }
        Ok(report)
    }

    // ----------------------------------------------- gateway state handling

    /// Exports every stateful tactic's gateway state (Mitra counters,
    /// Sophos chains) for persistence.
    pub fn export_tactic_state(&self) -> Vec<(String, Vec<u8>)> {
        let mut out: Vec<(String, Vec<u8>)> =
            self.tactics.read().iter().filter_map(|(k, t)| t.lock().export_state().map(|s| (k.clone(), s))).collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Restores tactic state exported by
    /// [`GatewayEngine::export_tactic_state`].
    ///
    /// # Errors
    ///
    /// Malformed state blobs; unknown instances are ignored.
    pub fn import_tactic_state(&self, state: &[(String, Vec<u8>)]) -> Result<(), CoreError> {
        let tactics = self.tactics.read();
        for (key, blob) in state {
            if let Some(t) = tactics.get(key) {
                t.lock().import_state(blob)?;
            }
        }
        Ok(())
    }

    /// Persists all tactic state into a gateway-local KV store (pair this
    /// with [`datablinder_kvstore::KvStore::open_semi_durable`] for the
    /// crash-safe variant). This is the paper's §7 observation made
    /// concrete: stateful SSE tactics (Mitra counters, Sophos chains) are
    /// what keeps the gateway from being a stateless cloud-native service.
    pub fn save_state(&self, kv: &KvStore) {
        for (key, blob) in self.export_tactic_state() {
            let mut k = b"gwstate/".to_vec();
            k.extend_from_slice(key.as_bytes());
            kv.set(&k, &blob);
        }
    }

    /// Restores state saved by [`GatewayEngine::save_state`]. Call after
    /// `register_schema` so the tactic instances exist.
    ///
    /// # Errors
    ///
    /// Malformed state blobs.
    pub fn load_state(&self, kv: &KvStore) -> Result<(), CoreError> {
        let entries: Vec<(String, Vec<u8>)> = kv
            .keys_with_prefix(b"gwstate/")
            .into_iter()
            .filter_map(|k| {
                let name = String::from_utf8(k[b"gwstate/".len()..].to_vec()).ok()?;
                let blob = kv.get(&k)?;
                Some((name, blob))
            })
            .collect();
        self.import_tactic_state(&entries)
    }
}

/// One annotated field of a document, with the tactics to apply in order.
struct FieldWork {
    field: String,
    value: Value,
    tactics: Vec<String>,
    boolean: bool,
}

/// Splits a document into protected-field work items (in document field
/// order — the canonical application order) and copies unannotated fields
/// straight into `cloud_doc`.
fn plan_field_work(plan: &SchemaPlan, doc: &Document, cloud_doc: &mut Document) -> Vec<FieldWork> {
    let mut work = Vec::new();
    for (field, value) in doc.iter() {
        match plan.fields.get(field) {
            None => {
                cloud_doc.set(field.clone(), value.clone());
            }
            Some(fp) => {
                let mut tactics: Vec<String> =
                    fp.selection.all_tactics().into_iter().filter(|t| !t.starts_with("biex")).collect();
                if !tactics.contains(&fp.selection.payload) {
                    tactics.push(fp.selection.payload.clone());
                }
                work.push(FieldWork { field: field.clone(), value: value.clone(), tactics, boolean: fp.boolean });
            }
        }
    }
    work
}
