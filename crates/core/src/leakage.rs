//! Empirical leakage auditing.
//!
//! The paper's §3.1 taxonomy (Structure < Identifiers < Predicates <
//! Equalities < Order) is a *design-time* classification. This module
//! makes it *observable*: given the untrusted zone's stores after a
//! workload, it measures what an honest-but-curious cloud could actually
//! compute — equality classes of stored ciphertexts, order correlation,
//! and length distributions — and maps the observations back to the
//! taxonomy. Useful for
//!
//! * regression-testing that a tactic does not leak more than its
//!   descriptor declares (see the tests below and `tests/security.rs`),
//! * the padding ablation: quantifying what RND's length bucketing hides.

use std::collections::HashMap;

use datablinder_docstore::{Collection, Filter, Value};

use crate::model::LeakageLevel;

/// What a snapshot adversary can compute from one stored (shadow) field.
#[derive(Debug, Clone, PartialEq)]
pub struct FieldAudit {
    /// Stored field name audited.
    pub field: String,
    /// Number of documents carrying the field.
    pub population: usize,
    /// Number of distinct ciphertexts.
    pub distinct_ciphertexts: usize,
    /// Size of the largest equality class (1 = all distinct).
    pub largest_equality_class: usize,
    /// Number of distinct ciphertext lengths.
    pub distinct_lengths: usize,
    /// Whether stored byte order is a total order consistent with *some*
    /// strictly increasing map (always true); reported as the fraction of
    /// adjacent stored pairs whose order matches a caller-provided
    /// plaintext order, when given (1.0 = order fully leaked).
    pub order_correlation: Option<f64>,
}

impl FieldAudit {
    /// The lowest taxonomy level consistent with the observations:
    ///
    /// * ciphertext equality classes of size > 1 ⇒ at least `Equalities`;
    /// * order correlation ≈ 1 ⇒ `Order`;
    /// * otherwise the snapshot reveals only sizes ⇒ `Structure`.
    ///
    /// (Identifiers/Predicates are *query-time* leakages; a pure snapshot
    /// cannot exhibit them — which is itself the §2 snapshot-model point.)
    pub fn observed_level(&self) -> LeakageLevel {
        if matches!(self.order_correlation, Some(c) if c > 0.99) {
            LeakageLevel::Order
        } else if self.largest_equality_class > 1 {
            LeakageLevel::Equalities
        } else {
            LeakageLevel::Structure
        }
    }
}

/// Audits one stored field of a cloud collection.
///
/// `plaintext_order`: optionally, the documents' true plaintext values
/// (by document id) so order correlation can be measured — an *auditor's*
/// knowledge, not the adversary's.
pub fn audit_field(collection: &Collection, field: &str, plaintext_order: Option<&HashMap<String, i64>>) -> FieldAudit {
    let docs = collection.find(&Filter::Exists(field.to_string()));
    let mut classes: HashMap<Vec<u8>, usize> = HashMap::new();
    let mut lengths: HashMap<usize, usize> = HashMap::new();
    let mut pairs: Vec<(Vec<u8>, i64)> = Vec::new();
    for d in &docs {
        let bytes = match d.get(field) {
            Some(Value::Bytes(b)) => b.clone(),
            Some(other) => {
                let mut buf = Vec::new();
                crate::wire::encode_value(other, &mut buf);
                buf
            }
            None => continue,
        };
        *classes.entry(bytes.clone()).or_insert(0) += 1;
        *lengths.entry(bytes.len()).or_insert(0) += 1;
        if let Some(order) = plaintext_order {
            if let Some(v) = order.get(d.id()) {
                pairs.push((bytes, *v));
            }
        }
    }

    let order_correlation = plaintext_order.map(|_| {
        if pairs.len() < 2 {
            return 0.0;
        }
        // Fraction of pairs whose ciphertext byte-order agrees with the
        // plaintext order (concordance; 1.0 for OPE, ~0.5 for RND/DET).
        let mut concordant = 0usize;
        let mut total = 0usize;
        for i in 0..pairs.len() {
            for j in i + 1..pairs.len() {
                let (ca, va) = &pairs[i];
                let (cb, vb) = &pairs[j];
                if va == vb {
                    continue;
                }
                total += 1;
                if (ca < cb) == (va < vb) {
                    concordant += 1;
                }
            }
        }
        if total == 0 {
            0.0
        } else {
            concordant as f64 / total as f64
        }
    });

    FieldAudit {
        field: field.to_string(),
        population: docs.len(),
        distinct_ciphertexts: classes.len(),
        largest_equality_class: classes.values().copied().max().unwrap_or(0),
        distinct_lengths: lengths.len(),
        order_correlation,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spi::GatewayTactic;
    use crate::tactics::TacticContext;
    use datablinder_docstore::Document;
    use datablinder_kms::Kms;
    use datablinder_sse::DocId;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ctx() -> TacticContext {
        let mut rng = StdRng::seed_from_u64(1);
        TacticContext {
            application: "audit".into(),
            schema: "c".into(),
            scope: "f".into(),
            kms: Kms::generate(&mut rng),
        }
    }

    /// Stores protections of `values` through a tactic and returns the
    /// collection plus the plaintext order map.
    fn populate(
        tactic: &mut dyn GatewayTactic,
        values: &[i64],
        as_text: bool,
    ) -> (Collection, HashMap<String, i64>, String) {
        let mut rng = StdRng::seed_from_u64(2);
        let coll = Collection::new();
        let mut order = HashMap::new();
        let mut shadow_name = String::new();
        for (i, &v) in values.iter().enumerate() {
            let mut idb = [0u8; 16];
            idb[0] = i as u8;
            let id = DocId(idb);
            let value = if as_text { Value::from(format!("v{v}")) } else { Value::from(v) };
            let p = tactic.protect(&mut rng, "f", &value, id).unwrap();
            let mut doc = Document::new(id.to_hex());
            for (f, stored) in p.stored {
                shadow_name = f.clone();
                doc.set(f, stored);
            }
            coll.insert(doc).unwrap();
            order.insert(id.to_hex(), v);
        }
        (coll, order, shadow_name)
    }

    #[test]
    fn rnd_observes_structure_only() {
        let mut t = crate::tactics::rnd::RndTactic::build(&ctx()).unwrap();
        // Repeated values, different lengths within one padding bucket.
        let (coll, order, shadow) = populate(&mut t, &[5, 5, 5, 7, 7, 9], true);
        let audit = audit_field(&coll, &shadow, Some(&order));
        assert_eq!(audit.population, 6);
        assert_eq!(audit.distinct_ciphertexts, 6, "probabilistic: no equality classes");
        assert_eq!(audit.largest_equality_class, 1);
        assert_eq!(audit.distinct_lengths, 1, "padding hides in-bucket lengths");
        assert_eq!(audit.observed_level(), LeakageLevel::Structure);
    }

    #[test]
    fn det_observes_equalities() {
        let mut t = crate::tactics::det::DetTactic::build(&ctx()).unwrap();
        let (coll, order, shadow) = populate(&mut t, &[5, 5, 5, 7, 9], true);
        let audit = audit_field(&coll, &shadow, Some(&order));
        assert_eq!(audit.distinct_ciphertexts, 3);
        assert_eq!(audit.largest_equality_class, 3, "equal plaintexts visible");
        assert_eq!(audit.observed_level(), LeakageLevel::Equalities);
        // But not order: correlation far from 1.
        assert!(audit.order_correlation.unwrap() < 0.99);
    }

    #[test]
    fn ope_observes_order() {
        let mut t = crate::tactics::ope::OpeTactic::build(&ctx()).unwrap();
        let (coll, order, shadow) = populate(&mut t, &[1, 5, 9, 14, 22, 100, 4000], false);
        let audit = audit_field(&coll, &shadow, Some(&order));
        assert_eq!(audit.order_correlation, Some(1.0), "OPE leaks total order");
        assert_eq!(audit.observed_level(), LeakageLevel::Order);
    }

    #[test]
    fn ore_snapshot_hides_order() {
        // ORE's point vs OPE: the stored (right) ciphertexts alone do not
        // reveal order — only comparisons against query-time left
        // ciphertexts do. ORE stores nothing in the document, so the
        // audited surface is empty; audit its KV entries' shape instead.
        let mut t = crate::tactics::ore::OreTactic::build(&ctx()).unwrap();
        let (coll, _order, shadow) = populate(&mut t, &[1, 2, 3], false);
        assert!(shadow.is_empty(), "ore stores only index entries");
        let audit = audit_field(&coll, "f__ore", None);
        assert_eq!(audit.population, 0);
    }

    #[test]
    fn unpadded_rnd_leaks_lengths_the_ablation() {
        // The padding ablation: with bucketing disabled, length becomes an
        // observable (still Structure in the taxonomy — "things which can
        // be hidden by padding" — but measurably worse).
        use datablinder_primitives::keys::SymmetricKey;
        use datablinder_sse::rnd::RndCipher;
        let mut rng = StdRng::seed_from_u64(3);
        let padded = RndCipher::new(&SymmetricKey::from_bytes(&[1u8; 32])).unwrap();
        let unpadded = RndCipher::with_bucket(&SymmetricKey::from_bytes(&[1u8; 32]), 0).unwrap();
        let coll_p = Collection::new();
        let coll_u = Collection::new();
        for (i, text) in ["a", "bb", "ccc", "dddd"].iter().enumerate() {
            let mut doc_p = Document::new(format!("p{i}"));
            doc_p.set("f", Value::Bytes(padded.encrypt(&mut rng, text.as_bytes())));
            coll_p.insert(doc_p).unwrap();
            let mut doc_u = Document::new(format!("u{i}"));
            doc_u.set("f", Value::Bytes(unpadded.encrypt(&mut rng, text.as_bytes())));
            coll_u.insert(doc_u).unwrap();
        }
        assert_eq!(audit_field(&coll_p, "f", None).distinct_lengths, 1);
        assert_eq!(audit_field(&coll_u, "f", None).distinct_lengths, 4);
    }
}
