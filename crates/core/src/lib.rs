//! DataBlinder middleware core — the primary contribution of
//! *"DataBlinder: A distributed data protection middleware supporting
//! search and computation on encrypted data"* (Middleware Industry '19),
//! reproduced in Rust.
//!
//! A distributed data-access middleware providing **crypto agility** via
//! configurable fine-grained data protection:
//!
//! * [`model`] — the two abstraction models of §3: the data protection
//!   tactic model (leakage profiles + performance metrics per operation)
//!   and the data access model (protection classes C1..C5 + required
//!   operations per field);
//! * [`spi`] — the Service Provider Interfaces of Table 1, split into
//!   gateway and cloud halves;
//! * [`tactics`] — the built-in tactic implementations of Table 2 (DET,
//!   RND, Mitra, Sophos, BIEX-2Lev, BIEX-ZMF, OPE, ORE, Paillier);
//! * [`registry`] — adaptive tactic selection at runtime (strategy
//!   pattern over descriptors);
//! * [`metadata`] — schema persistence and document validation;
//! * [`gateway`] / [`cloud`] — the trusted-zone and untrusted-zone
//!   engines, connected through a `datablinder-netsim` channel;
//! * [`wire`] / [`cloudproto`] — the byte codecs crossing that channel.
//!
//! # Examples
//!
//! ```
//! use datablinder_core::cloud::CloudEngine;
//! use datablinder_core::gateway::GatewayEngine;
//! use datablinder_core::model::*;
//! use datablinder_docstore::{Document, Value};
//! use datablinder_kms::Kms;
//! use datablinder_netsim::{Channel, LatencyModel};
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), datablinder_core::error::CoreError> {
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let channel = Channel::connect(CloudEngine::new(), LatencyModel::instant());
//! let mut gw = GatewayEngine::new("demo", Kms::generate(&mut rng), channel, 42);
//!
//! let schema = Schema::new("notes").sensitive_field(
//!     "author",
//!     FieldType::Text,
//!     true,
//!     FieldAnnotation::new(ProtectionClass::C2, vec![FieldOp::Insert, FieldOp::Equality]),
//! );
//! gw.register_schema(schema)?;
//!
//! let doc = Document::new("ignored").with("author", Value::from("alice"));
//! let id = gw.insert("notes", &doc)?;
//! let hits = gw.find_equal("notes", "author", &Value::from("alice"))?;
//! assert_eq!(hits.len(), 1);
//! assert_eq!(gw.get("notes", id)?.get("author"), Some(&Value::from("alice")));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
pub mod cloud;
pub mod cloudproto;
pub mod cluster;
pub mod durability;
pub mod error;
pub mod gateway;
pub mod leakage;
pub mod metadata;
pub mod model;
pub mod pool;
pub mod registry;
pub mod spi;
pub mod sync;
pub mod tactics;
pub mod wire;

pub use error::CoreError;
