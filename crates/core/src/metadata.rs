//! The data protection metadata subsystem (Fig. 4): persistence of
//! per-application schemas and annotation validation.

use datablinder_docstore::{Document, Value};
use datablinder_kvstore::KvStore;

use crate::error::CoreError;
use crate::model::{FieldType, Schema};
use crate::wire::{decode_schema, encode_schema};

/// Gateway-local schema store over the KV substrate.
#[derive(Clone)]
pub struct SchemaStore {
    kv: KvStore,
}

impl SchemaStore {
    /// Creates a store over a (typically gateway-local) KV store.
    pub fn new(kv: KvStore) -> Self {
        SchemaStore { kv }
    }

    fn key(name: &str) -> Vec<u8> {
        let mut k = b"schema/".to_vec();
        k.extend_from_slice(name.as_bytes());
        k
    }

    /// Persists a schema (idempotent overwrite).
    pub fn put(&self, schema: &Schema) {
        self.kv.set(&Self::key(&schema.name), &encode_schema(schema));
    }

    /// Loads a schema.
    ///
    /// # Errors
    ///
    /// [`CoreError::UnknownSchema`] when absent, [`CoreError::Wire`] on
    /// corrupt records.
    pub fn get(&self, name: &str) -> Result<Schema, CoreError> {
        let bytes = self.kv.get(&Self::key(name)).ok_or_else(|| CoreError::UnknownSchema(name.to_string()))?;
        decode_schema(&bytes)
    }

    /// Names of registered schemas.
    pub fn names(&self) -> Vec<String> {
        self.kv
            .keys_with_prefix(b"schema/")
            .into_iter()
            .filter_map(|k| String::from_utf8(k[b"schema/".len()..].to_vec()).ok())
            .collect()
    }
}

/// Validates an application document against its schema ("the schema
/// management component also validates whether the application documents
/// correspond to the configured schemas", §4.1).
///
/// # Errors
///
/// [`CoreError::SchemaViolation`] listing the first offending field.
pub fn validate_document(schema: &Schema, doc: &Document) -> Result<(), CoreError> {
    for (name, spec) in &schema.fields {
        match doc.get(name) {
            None if spec.required => {
                return Err(CoreError::SchemaViolation(format!("missing required field {name}")));
            }
            None => {}
            Some(value) => {
                let ok = matches!(
                    (spec.field_type, value),
                    (FieldType::Text, Value::Str(_))
                        | (FieldType::Integer, Value::I64(_))
                        | (FieldType::Float, Value::F64(_))
                        | (FieldType::Float, Value::I64(_))
                        | (FieldType::Boolean, Value::Bool(_))
                );
                if !ok {
                    return Err(CoreError::SchemaViolation(format!(
                        "field {name}: expected {:?}, got {}",
                        spec.field_type,
                        value.type_name()
                    )));
                }
            }
        }
    }
    for (name, _) in doc.iter() {
        if !schema.fields.contains_key(name) {
            return Err(CoreError::SchemaViolation(format!("unknown field {name}")));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{FieldAnnotation, FieldOp, ProtectionClass};

    fn schema() -> Schema {
        Schema::new("obs")
            .plain_field("note", FieldType::Text, false)
            .plain_field("count", FieldType::Integer, true)
            .sensitive_field(
                "status",
                FieldType::Text,
                true,
                FieldAnnotation::new(ProtectionClass::C3, vec![FieldOp::Insert, FieldOp::Equality]),
            )
            .plain_field("score", FieldType::Float, false)
    }

    #[test]
    fn store_roundtrip_and_listing() {
        let store = SchemaStore::new(KvStore::new());
        assert!(matches!(store.get("obs"), Err(CoreError::UnknownSchema(_))));
        store.put(&schema());
        assert_eq!(store.get("obs").unwrap(), schema());
        assert_eq!(store.names(), vec!["obs"]);
    }

    #[test]
    fn validation_accepts_conforming_documents() {
        let doc = Document::new("d")
            .with("count", Value::from(5i64))
            .with("status", Value::from("final"))
            .with("score", Value::from(1.5f64));
        validate_document(&schema(), &doc).unwrap();
        // Optional fields may be absent; Float accepts integers.
        let doc = Document::new("d")
            .with("count", Value::from(5i64))
            .with("status", Value::from("final"))
            .with("score", Value::from(2i64));
        validate_document(&schema(), &doc).unwrap();
    }

    #[test]
    fn validation_rejects_violations() {
        // Missing required.
        let doc = Document::new("d").with("status", Value::from("final"));
        assert!(validate_document(&schema(), &doc).is_err());
        // Wrong type.
        let doc = Document::new("d").with("count", Value::from("five")).with("status", Value::from("final"));
        assert!(validate_document(&schema(), &doc).is_err());
        // Unknown field.
        let doc = Document::new("d")
            .with("count", Value::from(1i64))
            .with("status", Value::from("final"))
            .with("mystery", Value::Null);
        assert!(validate_document(&schema(), &doc).is_err());
    }
}
