//! The two conceptual abstraction models of the paper (§3):
//!
//! * the **data protection tactic model** (§3.1, Fig. 1): tactics reified
//!   as a set of operations, each with a leakage profile and performance
//!   metrics — the vocabulary *tactic providers* use;
//! * the **data access model** (§3.2, Fig. 2): per-field protection
//!   classes and required operations — the vocabulary *application
//!   developers* use.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

/// Leakage levels of Fuller et al. (SoK, IEEE S&P 2017), as adopted in
/// §3.1. Ordered from most protective to least: `Structure` leaks only
/// sizes, `Order` leaks numeric/lexicographic order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum LeakageLevel {
    /// Only the size of the data structure (hideable by padding).
    Structure = 1,
    /// Past and future access patterns of identifiers.
    Identifiers = 2,
    /// Query predicate structure (e.g. boolean intersections).
    Predicates = 3,
    /// Which objects share the same value.
    Equalities = 4,
    /// Numeric/lexicographic order of objects.
    Order = 5,
}

impl LeakageLevel {
    /// All levels, most protective first.
    pub const ALL: [LeakageLevel; 5] = [
        LeakageLevel::Structure,
        LeakageLevel::Identifiers,
        LeakageLevel::Predicates,
        LeakageLevel::Equalities,
        LeakageLevel::Order,
    ];
}

impl std::fmt::Display for LeakageLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            LeakageLevel::Structure => "Structure",
            LeakageLevel::Identifiers => "Identifiers",
            LeakageLevel::Predicates => "Predicates",
            LeakageLevel::Equalities => "Equalities",
            LeakageLevel::Order => "Order",
        };
        f.write_str(s)
    }
}

/// Data protection classes C1..C5 of the data access model (§3.2). Each
/// class admits tactics whose worst-case leakage is at most its
/// counterpart leakage level; C1 admits the least leakage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ProtectionClass {
    /// Admits only `Structure` leakage.
    C1 = 1,
    /// Admits up to `Identifiers`.
    C2 = 2,
    /// Admits up to `Predicates`.
    C3 = 3,
    /// Admits up to `Equalities`.
    C4 = 4,
    /// Admits up to `Order`.
    C5 = 5,
}

impl ProtectionClass {
    /// The strongest leakage level this class admits.
    pub fn max_leakage(self) -> LeakageLevel {
        match self {
            ProtectionClass::C1 => LeakageLevel::Structure,
            ProtectionClass::C2 => LeakageLevel::Identifiers,
            ProtectionClass::C3 => LeakageLevel::Predicates,
            ProtectionClass::C4 => LeakageLevel::Equalities,
            ProtectionClass::C5 => LeakageLevel::Order,
        }
    }

    /// Whether a tactic operation with leakage `l` is admissible.
    pub fn admits(self, l: LeakageLevel) -> bool {
        l <= self.max_leakage()
    }
}

impl std::fmt::Display for ProtectionClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "C{}", *self as u8)
    }
}

/// High-level operations of the data access model (Fig. 2) — what clients
/// annotate fields with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum FieldOp {
    /// Insertion (every annotated field needs it).
    Insert,
    /// Equality search.
    Equality,
    /// Boolean (conjunction/disjunction) search, possibly cross-field.
    Boolean,
    /// Range search.
    Range,
}

impl std::fmt::Display for FieldOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            FieldOp::Insert => "I",
            FieldOp::Equality => "EQ",
            FieldOp::Boolean => "BL",
            FieldOp::Range => "RG",
        };
        f.write_str(s)
    }
}

/// Aggregate functions of the data access model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum AggFn {
    /// Cloud-side homomorphic sum.
    Sum,
    /// Cloud-side homomorphic average (sum + count).
    Avg,
    /// Count of documents.
    Count,
}

impl std::fmt::Display for AggFn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            AggFn::Sum => "sum",
            AggFn::Avg => "avg",
            AggFn::Count => "count",
        };
        f.write_str(s)
    }
}

/// Tactic-internal operations (Fig. 1): each carries a leakage profile and
/// performance metrics, on a per-operation basis as §3.1 argues.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum TacticOp {
    /// Setup of cryptographic primitives and data structures.
    Init,
    /// Dynamic add/update/delete of documents.
    Update,
    /// Equality query.
    EqQuery,
    /// Boolean query.
    BoolQuery,
    /// Range/comparison query.
    RangeQuery,
    /// Aggregate computation.
    Aggregate,
}

/// Performance metrics of one tactic operation (Fig. 1's right side).
/// Coarse-grained ranks rather than measured numbers: the registry uses
/// them for tie-breaking during selection; benches measure real numbers.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PerfMetrics {
    /// Relative computational cost rank (1 = cheapest).
    pub compute_rank: u8,
    /// Round trips per operation.
    pub round_trips: u8,
    /// Relative storage blow-up rank (1 = none).
    pub storage_rank: u8,
}

impl PerfMetrics {
    /// Convenience constructor.
    pub const fn new(compute_rank: u8, round_trips: u8, storage_rank: u8) -> Self {
        PerfMetrics { compute_rank, round_trips, storage_rank }
    }
}

/// Descriptor of one tactic operation: leakage + performance (Fig. 1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OpProfile {
    /// The operation.
    pub op: TacticOp,
    /// Its leakage profile.
    pub leakage: LeakageLevel,
    /// Its performance metrics.
    pub metrics: PerfMetrics,
}

/// A full tactic descriptor: the reified data protection tactic model.
///
/// Tactic providers register one of these per tactic; the middleware's
/// selection algorithm consumes only this metadata (crypto agility: no
/// scheme-specific logic in the selector).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TacticDescriptor {
    /// Unique name, e.g. `"mitra"`.
    pub name: String,
    /// Human-readable scheme family, e.g. `"SSE (forward private)"`.
    pub family: String,
    /// Per-operation leakage/performance profiles.
    pub operations: Vec<OpProfile>,
    /// Which high-level field ops this tactic can serve.
    pub serves: Vec<FieldOp>,
    /// Which aggregates this tactic can serve.
    pub serves_agg: Vec<AggFn>,
    /// Number of gateway-side SPI interfaces the implementation uses
    /// (Table 2's "SPI Gateway" column).
    pub gateway_interfaces: u8,
    /// Number of cloud-side SPI interfaces (Table 2's "SPI Cloud" column).
    pub cloud_interfaces: u8,
    /// Whether the scheme keeps state at the gateway (Sophos/Mitra's
    /// "local storage" / stateless-gateway discussion in §7).
    pub gateway_state: bool,
}

impl TacticDescriptor {
    /// Worst-case leakage across all operations — the paper's "a chain is
    /// only as strong as its weakest link" rule collapses a tactic to this.
    pub fn worst_leakage(&self) -> LeakageLevel {
        self.operations.iter().map(|o| o.leakage).max().unwrap_or(LeakageLevel::Structure)
    }

    /// Protection class this tactic can serve (its counterpart class).
    pub fn protection_class(&self) -> ProtectionClass {
        match self.worst_leakage() {
            LeakageLevel::Structure => ProtectionClass::C1,
            LeakageLevel::Identifiers => ProtectionClass::C2,
            LeakageLevel::Predicates => ProtectionClass::C3,
            LeakageLevel::Equalities => ProtectionClass::C4,
            LeakageLevel::Order => ProtectionClass::C5,
        }
    }

    /// Whether the tactic serves a field op.
    pub fn serves_op(&self, op: FieldOp) -> bool {
        self.serves.contains(&op)
    }

    /// Total compute rank (selection tie-breaker: cheaper wins).
    pub fn cost_rank(&self) -> u32 {
        self.operations.iter().map(|o| o.metrics.compute_rank as u32).sum()
    }
}

/// A field annotation in the data access model (Fig. 2 / the §5.1 example).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FieldAnnotation {
    /// Requested protection class.
    pub class: ProtectionClass,
    /// Required operations (`op [...]` in the paper's annotation syntax).
    pub ops: Vec<FieldOp>,
    /// Required aggregates (`agg [...]`).
    pub aggs: Vec<AggFn>,
}

impl FieldAnnotation {
    /// Annotation with operations only.
    pub fn new(class: ProtectionClass, ops: Vec<FieldOp>) -> Self {
        FieldAnnotation { class, ops, aggs: Vec::new() }
    }

    /// Adds aggregates.
    #[must_use]
    pub fn with_aggs(mut self, aggs: Vec<AggFn>) -> Self {
        self.aggs = aggs;
        self
    }
}

/// The expected plaintext type of a field (schema validation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FieldType {
    /// UTF-8 text.
    Text,
    /// Signed integer.
    Integer,
    /// Floating point.
    Float,
    /// Boolean.
    Boolean,
}

/// One field of a schema: type plus (for sensitive fields) the annotation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FieldSpec {
    /// Expected type.
    pub field_type: FieldType,
    /// `Some` marks the field sensitive; `None` stores plaintext.
    pub annotation: Option<FieldAnnotation>,
    /// Whether the field must be present in every document.
    pub required: bool,
}

/// An application schema: named fields with annotations (the *Schema*
/// interface of the deployment view, Fig. 3).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Schema {
    /// Schema (collection) name.
    pub name: String,
    /// Field specifications by name.
    pub fields: BTreeMap<String, FieldSpec>,
}

impl Schema {
    /// Creates an empty schema.
    pub fn new(name: impl Into<String>) -> Self {
        Schema { name: name.into(), fields: BTreeMap::new() }
    }

    /// Adds a plaintext (non-sensitive) field.
    #[must_use]
    pub fn plain_field(mut self, name: &str, field_type: FieldType, required: bool) -> Self {
        self.fields.insert(name.into(), FieldSpec { field_type, annotation: None, required });
        self
    }

    /// Adds a sensitive field with an annotation.
    #[must_use]
    pub fn sensitive_field(
        mut self,
        name: &str,
        field_type: FieldType,
        required: bool,
        annotation: FieldAnnotation,
    ) -> Self {
        self.fields.insert(name.into(), FieldSpec { field_type, annotation: Some(annotation), required });
        self
    }

    /// Names of sensitive fields.
    pub fn sensitive_fields(&self) -> impl Iterator<Item = (&String, &FieldAnnotation)> {
        self.fields.iter().filter_map(|(n, s)| s.annotation.as_ref().map(|a| (n, a)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leakage_total_order() {
        assert!(LeakageLevel::Structure < LeakageLevel::Identifiers);
        assert!(LeakageLevel::Identifiers < LeakageLevel::Predicates);
        assert!(LeakageLevel::Predicates < LeakageLevel::Equalities);
        assert!(LeakageLevel::Equalities < LeakageLevel::Order);
    }

    #[test]
    fn class_admission() {
        assert!(ProtectionClass::C3.admits(LeakageLevel::Predicates));
        assert!(ProtectionClass::C3.admits(LeakageLevel::Structure));
        assert!(!ProtectionClass::C3.admits(LeakageLevel::Equalities));
        assert!(ProtectionClass::C5.admits(LeakageLevel::Order));
        assert!(!ProtectionClass::C1.admits(LeakageLevel::Identifiers));
    }

    #[test]
    fn descriptor_weakest_link() {
        let d = TacticDescriptor {
            name: "x".into(),
            family: "test".into(),
            operations: vec![
                OpProfile { op: TacticOp::Init, leakage: LeakageLevel::Structure, metrics: PerfMetrics::new(1, 1, 1) },
                OpProfile {
                    op: TacticOp::EqQuery,
                    leakage: LeakageLevel::Equalities,
                    metrics: PerfMetrics::new(1, 1, 1),
                },
            ],
            serves: vec![FieldOp::Equality],
            serves_agg: vec![],
            gateway_interfaces: 2,
            cloud_interfaces: 1,
            gateway_state: false,
        };
        assert_eq!(d.worst_leakage(), LeakageLevel::Equalities);
        assert_eq!(d.protection_class(), ProtectionClass::C4);
        assert!(d.serves_op(FieldOp::Equality));
        assert!(!d.serves_op(FieldOp::Range));
        assert_eq!(d.cost_rank(), 2);
    }

    #[test]
    fn schema_builder() {
        let s = Schema::new("obs").plain_field("id", FieldType::Text, true).sensitive_field(
            "status",
            FieldType::Text,
            true,
            FieldAnnotation::new(ProtectionClass::C3, vec![FieldOp::Insert, FieldOp::Equality]),
        );
        assert_eq!(s.fields.len(), 2);
        assert_eq!(s.sensitive_fields().count(), 1);
    }

    #[test]
    fn display_formats() {
        assert_eq!(ProtectionClass::C2.to_string(), "C2");
        assert_eq!(LeakageLevel::Order.to_string(), "Order");
        assert_eq!(FieldOp::Boolean.to_string(), "BL");
        assert_eq!(AggFn::Avg.to_string(), "avg");
    }
}
