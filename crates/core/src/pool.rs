//! A std-only worker pool for CPU-heavy gateway work.
//!
//! `insert_many` spends almost all of its time in per-field tactic
//! encryption (Paillier exponentiation, OPE traversal, SSE token PRFs)
//! before a single batched channel round trip. The pool parallelizes
//! that phase across persistent threads while the caller keeps control
//! of ordering: [`WorkerPool::run_ordered`] returns results in
//! submission order, so the batch the gateway assembles is byte-for-byte
//! identical to the sequential path.
//!
//! No external dependencies: a `Mutex<VecDeque>` + `Condvar` queue and
//! `std::thread` workers. Panics inside a job are caught and re-thrown
//! on the submitting thread, so a poisoned tactic never wedges a worker.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

struct Queue {
    jobs: Mutex<VecDeque<Job>>,
    available: Condvar,
    shutdown: Mutex<bool>,
}

/// A fixed-size pool of persistent worker threads.
///
/// Cloning shares the pool (handles to one set of workers). Dropping the
/// last handle shuts the workers down.
pub struct WorkerPool {
    queue: Arc<Queue>,
    depth: Arc<AtomicI64>,
    workers: Vec<JoinHandle<()>>,
    threads: usize,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool").field("threads", &self.threads).field("queue_depth", &self.queue_depth()).finish()
    }
}

impl WorkerPool {
    /// Spawns a pool with `threads` persistent workers (min 1).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let queue = Arc::new(Queue {
            jobs: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            shutdown: Mutex::new(false),
        });
        let depth = Arc::new(AtomicI64::new(0));
        let workers = (0..threads)
            .map(|i| {
                let queue = Arc::clone(&queue);
                let depth = Arc::clone(&depth);
                std::thread::Builder::new()
                    .name(format!("db-pool-{i}"))
                    .spawn(move || worker_loop(&queue, &depth))
                    .expect("spawn pool worker")
            })
            .collect();
        WorkerPool { queue, depth, workers, threads }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Jobs currently queued but not yet picked up — the pool-queue-depth
    /// gauge (`gateway.pool.queue_depth`).
    pub fn queue_depth(&self) -> i64 {
        self.depth.load(Ordering::Relaxed)
    }

    /// Runs every closure in `jobs` on the pool and returns their results
    /// **in submission order**. The submitting thread blocks until all
    /// jobs finish and also drains jobs itself while waiting, so a pool
    /// of 1 thread plus the caller still makes progress with 2-way
    /// parallelism and the pool can never deadlock on its own feeder.
    ///
    /// # Panics
    ///
    /// Re-raises (as a panic) the first panic any job produced.
    pub fn run_ordered<T, F>(&self, jobs: Vec<F>) -> Vec<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        let n = jobs.len();
        if n == 0 {
            return Vec::new();
        }
        let (tx, rx) = mpsc::channel::<(usize, std::thread::Result<T>)>();
        {
            let mut q = self.queue.jobs.lock().expect("pool queue");
            for (i, job) in jobs.into_iter().enumerate() {
                let tx = tx.clone();
                q.push_back(Box::new(move || {
                    let out = catch_unwind(AssertUnwindSafe(job));
                    // Receiver gone means the submitter already panicked;
                    // nothing useful to do with the result.
                    let _ = tx.send((i, out));
                }));
            }
            self.depth.fetch_add(n as i64, Ordering::Relaxed);
        }
        drop(tx);
        self.queue.available.notify_all();

        // Help drain the queue while waiting: steal jobs one at a time so
        // the caller's core is never idle.
        let mut slots: Vec<Option<std::thread::Result<T>>> = (0..n).map(|_| None).collect();
        let mut done = 0;
        while done < n {
            if let Some(job) = self.try_steal() {
                job();
            }
            match rx.try_recv() {
                Ok((i, r)) => {
                    slots[i] = Some(r);
                    done += 1;
                }
                Err(mpsc::TryRecvError::Empty) => {
                    // Block on the channel only when there is nothing to steal.
                    if self.queue_depth() == 0 {
                        if let Ok((i, r)) = rx.recv() {
                            slots[i] = Some(r);
                            done += 1;
                        }
                    }
                }
                Err(mpsc::TryRecvError::Disconnected) => break,
            }
        }
        slots
            .into_iter()
            .map(|slot| match slot.expect("pool job result missing") {
                Ok(v) => v,
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    }

    fn try_steal(&self) -> Option<Job> {
        let mut q = self.queue.jobs.lock().expect("pool queue");
        let job = q.pop_front();
        if job.is_some() {
            self.depth.fetch_sub(1, Ordering::Relaxed);
        }
        job
    }
}

fn worker_loop(queue: &Queue, depth: &AtomicI64) {
    loop {
        let job = {
            let mut jobs = queue.jobs.lock().expect("pool queue");
            loop {
                if let Some(job) = jobs.pop_front() {
                    depth.fetch_sub(1, Ordering::Relaxed);
                    break Some(job);
                }
                if *queue.shutdown.lock().expect("pool shutdown flag") {
                    break None;
                }
                jobs = queue.available.wait(jobs).expect("pool condvar");
            }
        };
        match job {
            Some(job) => job(),
            None => return,
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        *self.queue.shutdown.lock().expect("pool shutdown flag") = true;
        self.queue.available.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_submission_order() {
        let pool = WorkerPool::new(4);
        let jobs: Vec<_> = (0..64u64)
            .map(|i| {
                move || {
                    // Stagger finish times so out-of-order completion is likely.
                    std::thread::sleep(std::time::Duration::from_micros((64 - i) * 10));
                    i * i
                }
            })
            .collect();
        let out = pool.run_ordered(jobs);
        assert_eq!(out, (0..64u64).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn empty_batch_is_fine() {
        let pool = WorkerPool::new(2);
        let out: Vec<u32> = pool.run_ordered(Vec::<fn() -> u32>::new());
        assert!(out.is_empty());
    }

    #[test]
    fn panic_in_job_propagates_and_pool_survives() {
        let pool = WorkerPool::new(2);
        let boom = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run_ordered(vec![Box::new(|| panic!("job died")) as Box<dyn FnOnce() + Send>]);
        }));
        assert!(boom.is_err());
        // Workers are still alive and useful afterwards.
        let out = pool.run_ordered(vec![Box::new(|| 7u32) as Box<dyn FnOnce() -> u32 + Send>]);
        assert_eq!(out, vec![7]);
    }

    #[test]
    fn queue_depth_settles_to_zero() {
        let pool = WorkerPool::new(2);
        let jobs: Vec<_> = (0..16).map(|i| move || i * 2).collect();
        let _ = pool.run_ordered(jobs);
        assert_eq!(pool.queue_depth(), 0);
    }

    #[test]
    fn concurrent_submitters_share_the_pool() {
        let pool = std::sync::Arc::new(WorkerPool::new(2));
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let pool = std::sync::Arc::clone(&pool);
                s.spawn(move || {
                    let jobs: Vec<_> = (0..8u64).map(|i| move || t * 100 + i).collect();
                    let out = pool.run_ordered(jobs);
                    assert_eq!(out, (0..8u64).map(|i| t * 100 + i).collect::<Vec<_>>());
                });
            }
        });
    }
}
