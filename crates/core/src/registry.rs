//! The tactic registry and the adaptive selection algorithm.
//!
//! Selection is purely metadata-driven (descriptors only — no
//! scheme-specific logic), which is what makes the architecture
//! crypto-agile: registering a new tactic with a descriptor makes it
//! immediately eligible, and deprecating one (e.g. after a new attack on
//! OPE) re-routes future fields to the next-best admissible tactic.

use std::collections::HashMap;

use rand::RngCore;

use crate::error::CoreError;
use crate::model::{FieldAnnotation, FieldOp, TacticDescriptor};
use crate::spi::GatewayTactic;
use crate::tactics::{biex, det, mitra, ope, ore, paillier, rnd, sophos, TacticContext};

/// Factory building a gateway tactic instance for a context.
pub type GatewayFactory =
    Box<dyn Fn(&TacticContext, &mut dyn RngCore) -> Result<Box<dyn GatewayTactic>, CoreError> + Send + Sync>;

/// The outcome of tactic selection for one field (the middle table of
/// §5.1: "Sensitives / Tactic Selection / Reason").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Selection {
    /// Search tactics covering the field's non-insert operations, in
    /// registry priority order. Empty when only insertion is required.
    pub search_tactics: Vec<String>,
    /// Aggregate tactics covering the field's `agg` annotations.
    pub agg_tactics: Vec<String>,
    /// The tactic owning payload encryption (recoverable storage):
    /// `det` when DET is selected, otherwise `rnd`.
    pub payload: String,
    /// Human-readable selection rationale.
    pub reason: String,
}

impl Selection {
    /// Every distinct tactic the field uses (search + agg + payload).
    pub fn all_tactics(&self) -> Vec<String> {
        let mut out = self.search_tactics.clone();
        out.extend(self.agg_tactics.iter().cloned());
        if !out.contains(&self.payload) {
            out.push(self.payload.clone());
        }
        out
    }

    /// The tactics the paper's §5.1 table lists (search + agg; the
    /// implicit RND payload is not listed unless it is the only tactic).
    pub fn listed_tactics(&self) -> Vec<String> {
        let mut out = self.search_tactics.clone();
        out.extend(self.agg_tactics.iter().cloned());
        if out.is_empty() {
            out.push(self.payload.clone());
        }
        out
    }
}

/// Measured per-tactic latencies that override the static
/// [`PerfMetrics`](crate::model::PerfMetrics) cost ranks during selection.
///
/// The static ranks in Table 2 are relative a-priori estimates; a running
/// deployment knows better. Feeding an observability snapshot's
/// `tactic.<name>.<op>` EWMAs back through
/// [`TacticRegistry::set_measurements`] makes subsequent selections rank
/// *measured* tactics by their observed latency (normalised onto the
/// static-rank scale so measured and unmeasured tactics stay comparable)
/// while unmeasured tactics keep their static rank.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MeasuredPerfMetrics {
    nanos: HashMap<String, f64>,
}

impl MeasuredPerfMetrics {
    /// No measurements: selection uses static ranks only.
    pub fn new() -> Self {
        MeasuredPerfMetrics::default()
    }

    /// Records the observed mean latency for one tactic, in nanoseconds.
    pub fn set(&mut self, tactic: &str, nanos: f64) {
        if nanos.is_finite() && nanos > 0.0 {
            self.nanos.insert(tactic.to_string(), nanos);
        }
    }

    /// The observed latency for a tactic, if measured.
    pub fn get(&self, tactic: &str) -> Option<f64> {
        self.nanos.get(tactic).copied()
    }

    /// Whether no tactic has been measured.
    pub fn is_empty(&self) -> bool {
        self.nanos.is_empty()
    }

    /// Extracts per-tactic latencies from an observability snapshot: every
    /// `tactic.<name>.<op>` EWMA contributes, and a tactic measured under
    /// several operations gets the mean of its per-op EWMAs.
    pub fn from_snapshot(snapshot: &datablinder_obs::Snapshot) -> Self {
        let mut sums: HashMap<String, (f64, u32)> = HashMap::new();
        for e in &snapshot.ewmas {
            let Some(rest) = e.name.strip_prefix("tactic.") else { continue };
            let Some((tactic, _op)) = rest.rsplit_once('.') else { continue };
            let entry = sums.entry(tactic.to_string()).or_insert((0.0, 0));
            entry.0 += e.nanos;
            entry.1 += 1;
        }
        let mut m = MeasuredPerfMetrics::new();
        for (tactic, (sum, n)) in sums {
            m.set(&tactic, sum / n as f64);
        }
        m
    }
}

/// The tactic registry: descriptors in priority order plus factories.
pub struct TacticRegistry {
    descriptors: Vec<TacticDescriptor>,
    factories: HashMap<String, GatewayFactory>,
    measurements: MeasuredPerfMetrics,
}

impl TacticRegistry {
    /// An empty registry (for fully custom deployments).
    pub fn empty() -> Self {
        TacticRegistry { descriptors: Vec::new(), factories: HashMap::new(), measurements: MeasuredPerfMetrics::new() }
    }

    /// The registry with every built-in tactic of Table 2, in selection
    /// priority order.
    pub fn with_builtins() -> Self {
        let mut r = TacticRegistry::empty();
        r.register(rnd::descriptor(), Box::new(|ctx, _| Ok(Box::new(rnd::RndTactic::build(ctx)?))));
        r.register(det::descriptor(), Box::new(|ctx, _| Ok(Box::new(det::DetTactic::build(ctx)?))));
        r.register(mitra::descriptor(), Box::new(|ctx, _| Ok(Box::new(mitra::MitraTactic::build(ctx)?))));
        r.register(
            sophos::descriptor(),
            Box::new(|ctx, rng| Ok(Box::new(sophos::SophosTactic::build(ctx, &mut BoxRng(rng))?))),
        );
        r.register(
            biex::descriptor_2lev(),
            Box::new(|ctx, _| Ok(Box::new(biex::BiexTactic::build(ctx, biex::BiexVariant::TwoLev)?))),
        );
        r.register(
            biex::descriptor_zmf(),
            Box::new(|ctx, _| Ok(Box::new(biex::BiexTactic::build(ctx, biex::BiexVariant::Zmf)?))),
        );
        r.register(ope::descriptor(), Box::new(|ctx, _| Ok(Box::new(ope::OpeTactic::build(ctx)?))));
        r.register(ore::descriptor(), Box::new(|ctx, _| Ok(Box::new(ore::OreTactic::build(ctx)?))));
        r.register(
            paillier::descriptor(),
            Box::new(|ctx, rng| Ok(Box::new(paillier::PaillierTactic::build(ctx, &mut BoxRng(rng))?))),
        );
        r
    }

    /// Registers a tactic (the SPI extension point for tactic providers).
    pub fn register(&mut self, descriptor: TacticDescriptor, factory: GatewayFactory) {
        self.factories.insert(descriptor.name.clone(), factory);
        self.descriptors.push(descriptor);
    }

    /// Removes a tactic (crypto agility: deprecating a broken scheme).
    /// Returns whether it existed.
    pub fn deprecate(&mut self, name: &str) -> bool {
        let existed = self.factories.remove(name).is_some();
        self.descriptors.retain(|d| d.name != name);
        existed
    }

    /// All descriptors in priority order.
    pub fn descriptors(&self) -> &[TacticDescriptor] {
        &self.descriptors
    }

    /// Looks up one descriptor.
    pub fn descriptor(&self, name: &str) -> Option<&TacticDescriptor> {
        self.descriptors.iter().find(|d| d.name == name)
    }

    /// Installs measured per-tactic latencies; subsequent [`select`] calls
    /// rank measured tactics by observed latency instead of static cost.
    ///
    /// [`select`]: TacticRegistry::select
    pub fn set_measurements(&mut self, measurements: MeasuredPerfMetrics) {
        self.measurements = measurements;
    }

    /// The measured latencies currently in force.
    pub fn measurements(&self) -> &MeasuredPerfMetrics {
        &self.measurements
    }

    /// The effective selection cost of each admissible tactic, as
    /// `name -> cost`. With no measurements this is the static
    /// `cost_rank()`; with measurements, measured tactics cost
    /// `observed_nanos / unit` where `unit` (nanos per static rank point)
    /// is calibrated over the measured admissible tactics, keeping
    /// measured and unmeasured costs on one scale.
    fn effective_costs(&self, admissible: &[&TacticDescriptor]) -> HashMap<String, f64> {
        let mut measured_nanos = 0.0f64;
        let mut measured_ranks = 0u32;
        for d in admissible {
            if let Some(n) = self.measurements.get(&d.name) {
                measured_nanos += n;
                measured_ranks += d.cost_rank();
            }
        }
        let unit =
            if measured_ranks > 0 && measured_nanos > 0.0 { measured_nanos / measured_ranks as f64 } else { 0.0 };
        admissible
            .iter()
            .map(|d| {
                let cost = match self.measurements.get(&d.name) {
                    Some(n) if unit > 0.0 => n / unit,
                    _ => d.cost_rank() as f64,
                };
                (d.name.clone(), cost)
            })
            .collect()
    }

    /// Builds a gateway tactic instance (runtime loading — the strategy
    /// pattern of §4.2).
    ///
    /// # Errors
    ///
    /// Unknown names or factory failures.
    pub fn build_gateway(
        &self,
        name: &str,
        ctx: &TacticContext,
        rng: &mut dyn RngCore,
    ) -> Result<Box<dyn GatewayTactic>, CoreError> {
        let factory = self
            .factories
            .get(name)
            .ok_or_else(|| CoreError::UnsupportedOperation(format!("unknown tactic {name}")))?;
        factory(ctx, rng)
    }

    /// Selects tactics for a field annotation: the smallest set of
    /// admissible tactics covering all required operations, tie-broken by
    /// total compute-cost rank, then registry order.
    ///
    /// # Errors
    ///
    /// [`CoreError::PolicyUnsatisfiable`] when an operation cannot be
    /// served within the class.
    pub fn select(&self, field: &str, annotation: &FieldAnnotation) -> Result<Selection, CoreError> {
        let admissible: Vec<&TacticDescriptor> =
            self.descriptors.iter().filter(|d| annotation.class.admits(d.worst_leakage())).collect();

        let required: Vec<FieldOp> = annotation.ops.iter().copied().filter(|op| *op != FieldOp::Insert).collect();

        // Check coverage per op first, for a precise error.
        for &op in &required {
            if !admissible.iter().any(|d| d.serves_op(op)) {
                return Err(CoreError::PolicyUnsatisfiable { field: field.to_string(), class: annotation.class, op });
            }
        }

        let costs = self.effective_costs(&admissible);
        let search_tactics = if required.is_empty() { Vec::new() } else { best_cover(&admissible, &required, &costs) };

        // Aggregates: cheapest admissible tactic per function.
        let mut agg_tactics: Vec<String> = Vec::new();
        for &agg in &annotation.aggs {
            let candidate = admissible
                .iter()
                .filter(|d| d.serves_agg.contains(&agg))
                .min_by(|a, b| {
                    let ca = costs.get(&a.name).copied().unwrap_or(f64::MAX);
                    let cb = costs.get(&b.name).copied().unwrap_or(f64::MAX);
                    ca.partial_cmp(&cb).unwrap_or(std::cmp::Ordering::Equal)
                })
                .ok_or(CoreError::PolicyUnsatisfiable {
                    field: field.to_string(),
                    class: annotation.class,
                    // Aggregates surface as Insert coverage failures for
                    // error-reporting purposes; the message names the field.
                    op: FieldOp::Insert,
                })?;
            if !agg_tactics.contains(&candidate.name) {
                agg_tactics.push(candidate.name.clone());
            }
        }

        let payload = if search_tactics.iter().any(|n| n == "det") { "det".to_string() } else { "rnd".to_string() };

        let mut reason = build_reason(&search_tactics, &agg_tactics, annotation);
        let measured: Vec<&String> =
            search_tactics.iter().chain(agg_tactics.iter()).filter(|n| self.measurements.get(n).is_some()).collect();
        if !measured.is_empty() {
            reason.push_str("; measured latencies ranked");
        }
        Ok(Selection { search_tactics, agg_tactics, payload, reason })
    }
}

/// Adapts `&mut dyn RngCore` to a concrete `RngCore` value for factories
/// with generic bounds.
struct BoxRng<'a>(&'a mut dyn RngCore);

impl RngCore for BoxRng<'_> {
    fn next_u32(&mut self) -> u32 {
        self.0.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.0.fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.0.try_fill_bytes(dest)
    }
}

/// Smallest covering set (ops ≤ 3, tactics ≤ ~10: exhaustive subsets of
/// size 1..=3 are cheap), tie-broken by effective cost (static rank, or
/// normalised measured latency) then priority order.
fn best_cover(admissible: &[&TacticDescriptor], required: &[FieldOp], costs: &HashMap<String, f64>) -> Vec<String> {
    let covers = |set: &[&TacticDescriptor]| required.iter().all(|op| set.iter().any(|d| d.serves_op(*op)));
    for size in 1..=3usize {
        let mut best: Option<(f64, Vec<String>)> = None;
        let mut consider = |set: Vec<&TacticDescriptor>| {
            if !covers(&set) {
                return;
            }
            let cost: f64 = set.iter().map(|d| costs.get(&d.name).copied().unwrap_or(f64::MAX)).sum();
            let names: Vec<String> = set.iter().map(|d| d.name.clone()).collect();
            if best.as_ref().is_none_or(|(c, _)| cost < *c) {
                best = Some((cost, names));
            }
        };
        match size {
            1 => {
                for &a in admissible {
                    consider(vec![a]);
                }
            }
            2 => {
                for i in 0..admissible.len() {
                    for j in i + 1..admissible.len() {
                        consider(vec![admissible[i], admissible[j]]);
                    }
                }
            }
            _ => {
                for i in 0..admissible.len() {
                    for j in i + 1..admissible.len() {
                        for k in j + 1..admissible.len() {
                            consider(vec![admissible[i], admissible[j], admissible[k]]);
                        }
                    }
                }
            }
        }
        if let Some((_, names)) = best {
            return names;
        }
    }
    Vec::new() // unreachable: per-op coverage was verified by the caller
}

fn build_reason(search: &[String], aggs: &[String], annotation: &FieldAnnotation) -> String {
    let mut parts = Vec::new();
    if annotation.ops.contains(&FieldOp::Range) {
        parts.push("Range queries".to_string());
    }
    if annotation.ops.contains(&FieldOp::Boolean) && search.iter().any(|n| n.starts_with("biex")) {
        parts.push("Boolean & cross-field".to_string());
    }
    if search.is_empty() && aggs.is_empty() {
        parts.push(format!("{} protection level", annotation.class.max_leakage()));
    }
    if search.iter().any(|n| n == "mitra" || n == "sophos") && !annotation.ops.contains(&FieldOp::Boolean) {
        parts.push("Identifier protection level".to_string());
    }
    if !aggs.is_empty() {
        parts.push("Cloud-side aggregates".to_string());
    }
    if parts.is_empty() {
        parts.push("Equality search".to_string());
    }
    parts.join("; ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{AggFn, ProtectionClass};

    fn annotation(class: ProtectionClass, ops: &[FieldOp]) -> FieldAnnotation {
        FieldAnnotation::new(class, ops.to_vec())
    }

    /// The §5.1 example table, field by field.
    #[test]
    fn selection_matches_paper_table() {
        use FieldOp::*;
        let r = TacticRegistry::with_builtins();

        // status: C3, op [I, EQ, BL] -> BIEX-2Lev
        let s = r.select("status", &annotation(ProtectionClass::C3, &[Insert, Equality, Boolean])).unwrap();
        assert_eq!(s.listed_tactics(), vec!["biex-2lev"]);

        // code: C3, op [I, EQ, BL] -> BIEX-2Lev
        let s = r.select("code", &annotation(ProtectionClass::C3, &[Insert, Equality, Boolean])).unwrap();
        assert_eq!(s.listed_tactics(), vec!["biex-2lev"]);

        // subject: C2, op [I, EQ] -> Mitra
        let s = r.select("subject", &annotation(ProtectionClass::C2, &[Insert, Equality])).unwrap();
        assert_eq!(s.listed_tactics(), vec!["mitra"]);

        // effective: C5, op [I, EQ, BL, RG] -> DET, OPE
        let s = r.select("effective", &annotation(ProtectionClass::C5, &[Insert, Equality, Boolean, Range])).unwrap();
        let mut listed = s.listed_tactics();
        listed.sort();
        assert_eq!(listed, vec!["det", "ope"]);
        assert_eq!(s.payload, "det");

        // issued: same as effective
        let s = r.select("issued", &annotation(ProtectionClass::C5, &[Insert, Equality, Boolean, Range])).unwrap();
        let mut listed = s.listed_tactics();
        listed.sort();
        assert_eq!(listed, vec!["det", "ope"]);

        // performer: C1, op [I] -> RND
        let s = r.select("performer", &annotation(ProtectionClass::C1, &[Insert])).unwrap();
        assert_eq!(s.listed_tactics(), vec!["rnd"]);
        assert_eq!(s.payload, "rnd");

        // value: C3, op [I, EQ, BL], agg [avg] -> BIEX-2Lev, Paillier
        let a = annotation(ProtectionClass::C3, &[Insert, Equality, Boolean]).with_aggs(vec![AggFn::Avg]);
        let s = r.select("value", &a).unwrap();
        assert_eq!(s.listed_tactics(), vec!["biex-2lev", "paillier"]);
    }

    #[test]
    fn policy_unsatisfiable_detected() {
        use FieldOp::*;
        let r = TacticRegistry::with_builtins();
        // Boolean search within C2: no boolean tactic is that strong.
        let err = r.select("f", &annotation(ProtectionClass::C2, &[Insert, Boolean])).unwrap_err();
        assert!(matches!(err, CoreError::PolicyUnsatisfiable { op: FieldOp::Boolean, .. }));
        // Range within C4: OPE/ORE leak order (class 5).
        let err = r.select("f", &annotation(ProtectionClass::C4, &[Insert, Range])).unwrap_err();
        assert!(matches!(err, CoreError::PolicyUnsatisfiable { op: FieldOp::Range, .. }));
        // Equality within C1: even Mitra leaks identifiers.
        let err = r.select("f", &annotation(ProtectionClass::C1, &[Insert, Equality])).unwrap_err();
        assert!(matches!(err, CoreError::PolicyUnsatisfiable { op: FieldOp::Equality, .. }));
    }

    #[test]
    fn higher_class_prefers_cheaper_tactics() {
        use FieldOp::*;
        let r = TacticRegistry::with_builtins();
        // With C4 allowed, DET (cheap) wins over Mitra for equality.
        let s = r.select("f", &annotation(ProtectionClass::C4, &[Insert, Equality])).unwrap();
        assert_eq!(s.search_tactics, vec!["det"]);
        // But at C2, only identifier-level SSE qualifies.
        let s = r.select("f", &annotation(ProtectionClass::C2, &[Insert, Equality])).unwrap();
        assert_eq!(s.search_tactics, vec!["mitra"]);
    }

    #[test]
    fn measured_latencies_invert_static_ranking() {
        use FieldOp::*;
        let mut r = TacticRegistry::with_builtins();
        // Statically, C4 equality prefers DET (cheapest admissible).
        let s = r.select("f", &annotation(ProtectionClass::C4, &[Insert, Equality])).unwrap();
        assert_eq!(s.search_tactics, vec!["det"]);

        // Observed latencies invert the static ranking: DET measured slow
        // (e.g. contended payload-key path), Mitra measured fast.
        let mut m = MeasuredPerfMetrics::new();
        m.set("det", 50_000.0);
        m.set("mitra", 1_000.0);
        r.set_measurements(m);
        let s = r.select("f", &annotation(ProtectionClass::C4, &[Insert, Equality])).unwrap();
        assert_eq!(s.search_tactics, vec!["mitra"], "selection follows observed latency");
        assert!(s.reason.contains("measured latencies"), "reason: {}", s.reason);

        // Clearing measurements restores the static choice.
        r.set_measurements(MeasuredPerfMetrics::new());
        let s = r.select("f", &annotation(ProtectionClass::C4, &[Insert, Equality])).unwrap();
        assert_eq!(s.search_tactics, vec!["det"]);
    }

    #[test]
    fn unmeasured_tactics_keep_static_rank() {
        use FieldOp::*;
        let mut r = TacticRegistry::with_builtins();
        // Only DET is measured, and it performs exactly as its static rank
        // suggests relative to the calibration unit — since it is the only
        // measured tactic, its measured cost equals its static rank, so the
        // static winner is unchanged.
        let mut m = MeasuredPerfMetrics::new();
        m.set("det", 10_000.0);
        r.set_measurements(m);
        let s = r.select("f", &annotation(ProtectionClass::C4, &[Insert, Equality])).unwrap();
        assert_eq!(s.search_tactics, vec!["det"]);
    }

    #[test]
    fn measurements_from_snapshot_average_per_op_ewmas() {
        let rec = datablinder_obs::Recorder::new();
        rec.ewma_observe("tactic.det.eq_query", std::time::Duration::from_nanos(4_000));
        rec.ewma_observe("tactic.det.update", std::time::Duration::from_nanos(2_000));
        rec.ewma_observe("tactic.mitra.eq_query", std::time::Duration::from_nanos(9_000));
        rec.count("gateway.insert.count", 1); // non-EWMA noise ignored
        let m = MeasuredPerfMetrics::from_snapshot(&rec.snapshot());
        assert_eq!(m.get("det"), Some(3_000.0), "mean of the two per-op EWMAs");
        assert_eq!(m.get("mitra"), Some(9_000.0));
        assert_eq!(m.get("ope"), None);
    }

    #[test]
    fn deprecation_reroutes_selection() {
        use FieldOp::*;
        let mut r = TacticRegistry::with_builtins();
        assert!(r.deprecate("mitra"));
        assert!(!r.deprecate("mitra"));
        // Sophos takes over as the class-2 equality tactic.
        let s = r.select("f", &annotation(ProtectionClass::C2, &[Insert, Equality])).unwrap();
        assert_eq!(s.search_tactics, vec!["sophos"]);
    }

    #[test]
    fn custom_tactic_registration_wins_when_cheaper() {
        use crate::model::*;
        use FieldOp::*;
        let mut r = TacticRegistry::with_builtins();
        let custom = TacticDescriptor {
            name: "super-eq".into(),
            family: "test".into(),
            operations: vec![OpProfile {
                op: TacticOp::EqQuery,
                leakage: LeakageLevel::Identifiers,
                metrics: PerfMetrics::new(1, 1, 1),
            }],
            serves: vec![Insert, Equality],
            serves_agg: vec![],
            gateway_interfaces: 2,
            cloud_interfaces: 1,
            gateway_state: false,
        };
        r.register(custom, Box::new(|ctx, _| Ok(Box::new(rnd::RndTactic::build(ctx)?))));
        let s = r.select("f", &annotation(ProtectionClass::C2, &[Insert, Equality])).unwrap();
        assert_eq!(s.search_tactics, vec!["super-eq"]);
    }

    #[test]
    fn build_gateway_unknown_name_errors() {
        let r = TacticRegistry::with_builtins();
        let mut rng = rand::rngs::mock::StepRng::new(0, 1);
        let ctx = TacticContext {
            application: "a".into(),
            schema: "s".into(),
            scope: "f".into(),
            kms: datablinder_kms::Kms::generate(&mut rng),
        };
        assert!(r.build_gateway("nope", &ctx, &mut rng).is_err());
        assert!(r.build_gateway("rnd", &ctx, &mut rng).is_ok());
    }

    #[test]
    fn table2_shape_from_descriptors() {
        // Table 2's class/leakage columns regenerate from the registry.
        let r = TacticRegistry::with_builtins();
        let d = r.descriptor("det").unwrap();
        assert_eq!(d.protection_class(), ProtectionClass::C4);
        let d = r.descriptor("mitra").unwrap();
        assert_eq!(d.protection_class(), ProtectionClass::C2);
        assert_eq!(d.gateway_interfaces, 7);
        assert_eq!(d.cloud_interfaces, 5);
        let d = r.descriptor("sophos").unwrap();
        assert_eq!(d.protection_class(), ProtectionClass::C2);
        let d = r.descriptor("rnd").unwrap();
        assert_eq!(d.protection_class(), ProtectionClass::C1);
        let d = r.descriptor("biex-2lev").unwrap();
        assert_eq!(d.protection_class(), ProtectionClass::C3);
        let d = r.descriptor("ope").unwrap();
        assert_eq!(d.protection_class(), ProtectionClass::C5);
        let d = r.descriptor("ore").unwrap();
        assert_eq!(d.protection_class(), ProtectionClass::C5);
    }
}
