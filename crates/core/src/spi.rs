//! The Service Provider Interfaces (Table 1 of the paper).
//!
//! Tactic developers ("security experts", §4.2) implement these; the
//! middleware loads implementations at runtime through the registry
//! (strategy pattern). Every high-level operation splits into a
//! **gateway** half (trusted zone: key material, token generation,
//! resolution) and a **cloud** half (untrusted zone: storage and
//! computation over opaque data). Gateway halves talk to cloud halves only
//! through serialized [`CloudCall`]s crossing the channel.
//!
//! Mapping to the paper's interface names:
//!
//! | Table 1 gateway interface | Trait method |
//! |---------------------------|--------------|
//! | Insertion, SecureEnc      | [`GatewayTactic::protect`] |
//! | DocIDGen                  | [`DocIdGen::generate`] |
//! | Update                    | [`GatewayTactic::protect`] (re-protection) |
//! | Deletion                  | [`GatewayTactic::delete`] |
//! | Retrieval, SecureEnc      | [`GatewayTactic::recover`] |
//! | EqQuery / EqResolution    | [`GatewayTactic::eq_query`] / [`GatewayTactic::eq_resolve`] |
//! | BoolQuery / BoolResolution| [`GatewayTactic::bool_query`] / [`GatewayTactic::bool_resolve`] |
//! | RangeQuery / resolution   | [`GatewayTactic::range_query`] / [`GatewayTactic::range_resolve`] |
//! | AggFunctionResolution     | [`GatewayTactic::agg_query`] / [`GatewayTactic::agg_resolve`] |
//!
//! Cloud interfaces (Insertion, Update, Retrieval, Deletion, EqQuery,
//! BoolQuery, AggFunction) are routes handled by [`CloudTactic::handle`].

use datablinder_docstore::{Document, Value};
use datablinder_obs::Recorder;
use datablinder_sse::DocId;
use rand::RngCore;

use crate::error::CoreError;
use crate::model::{AggFn, TacticDescriptor};

/// One serialized request against the cloud side.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CloudCall {
    /// Route, e.g. `tactic/mitra/subject/update`.
    pub route: String,
    /// Opaque payload (tokens, ciphertexts).
    pub payload: Vec<u8>,
}

impl CloudCall {
    /// Convenience constructor.
    pub fn new(route: impl Into<String>, payload: Vec<u8>) -> Self {
        CloudCall { route: route.into(), payload }
    }
}

/// The result of protecting one field value for insertion.
#[derive(Debug, Clone, Default)]
pub struct ProtectedField {
    /// Shadow fields to store in the cloud document
    /// (e.g. `status__rnd` → ciphertext bytes).
    pub stored: Vec<(String, Value)>,
    /// Secure-index operations to execute against the cloud.
    pub index_calls: Vec<CloudCall>,
}

/// A boolean query: DNF over `(field, value)` equality literals.
pub type DnfLiterals = Vec<Vec<(String, Value)>>;

/// One unit of work for the batch insertion path
/// ([`GatewayTactic::protect_many`]): the same arguments
/// [`GatewayTactic::protect`] takes, gathered so a tactic can amortize
/// per-key setup (cipher contexts, HMAC midstates) across a batch.
pub struct ProtectItem<'a> {
    /// Per-item randomness source. Each item carries its own RNG so batch
    /// and sequential protection draw identical streams per document.
    pub rng: &'a mut dyn RngCore,
    /// Field name being protected.
    pub field: &'a str,
    /// Plaintext value.
    pub value: &'a Value,
    /// Document id the field belongs to.
    pub id: DocId,
}

/// Gateway-side tactic SPI (Table 1, left column).
///
/// Implementations may keep per-keyword state (Mitra counters, Sophos
/// search tokens) — hence `&mut self` on mutating paths — and can expose
/// it for persistence via [`GatewayTactic::export_state`].
#[allow(unused_variables)]
pub trait GatewayTactic: Send {
    /// The tactic's descriptor (drives selection and Table 2).
    fn descriptor(&self) -> TacticDescriptor;

    /// Called by the engine right after the instance is built, handing it
    /// the gateway's observability [`Recorder`]. Tactics with long-lived
    /// amortized state (e.g. the Paillier randomizer pool) mirror their
    /// counters into it; the default ignores it.
    fn attach_recorder(&mut self, recorder: &Recorder) {}

    /// Protects a field value for insertion: produces stored shadow fields
    /// and secure-index calls. (Insertion + SecureEnc interfaces.)
    ///
    /// # Errors
    ///
    /// Tactic-specific protection failures.
    fn protect(
        &mut self,
        rng: &mut dyn RngCore,
        field: &str,
        value: &Value,
        id: DocId,
    ) -> Result<ProtectedField, CoreError>;

    /// Protects a contiguous batch of field values, one result per item in
    /// order. The contract is *byte-identity with the sequential path*:
    /// item `k`'s result must equal `self.protect(items[k].rng, ...)` —
    /// batching may only change throughput, never output. Tactics with
    /// batch-friendly ciphers (RND's `encrypt_many`, DET's `encrypt_many`)
    /// override this; the default simply loops over [`GatewayTactic::protect`].
    fn protect_many(&mut self, items: &mut [ProtectItem<'_>]) -> Vec<Result<ProtectedField, CoreError>> {
        items.iter_mut().map(|it| self.protect(it.rng, it.field, it.value, it.id)).collect()
    }

    /// Protects a whole document's annotated literals at once — implemented
    /// by *cross-field* tactics (BIEX), which index keyword pairs and thus
    /// need every literal together. Field-scoped tactics keep the default
    /// (`None`: engine falls back to per-field [`GatewayTactic::protect`]).
    ///
    /// # Errors
    ///
    /// Tactic-specific failures.
    fn protect_document(
        &mut self,
        rng: &mut dyn RngCore,
        literals: &[(String, Value)],
        id: DocId,
    ) -> Result<Option<Vec<CloudCall>>, CoreError> {
        Ok(None)
    }

    /// Document-level revocation counterpart of
    /// [`GatewayTactic::protect_document`].
    ///
    /// # Errors
    ///
    /// Tactic-specific failures.
    fn delete_document(
        &mut self,
        literals: &[(String, Value)],
        id: DocId,
    ) -> Result<Option<Vec<CloudCall>>, CoreError> {
        Ok(None)
    }

    /// Bulk-migration indexing: builds setup-time (static) structures over
    /// a whole corpus at once — implemented by tactics with a static base
    /// (BIEX). Default `None`: the engine falls back to per-document
    /// [`GatewayTactic::protect_document`] calls.
    ///
    /// # Errors
    ///
    /// Tactic-specific failures.
    fn bulk_index(
        &mut self,
        rng: &mut dyn RngCore,
        entries: &[(Vec<(String, Value)>, DocId)],
    ) -> Result<Option<Vec<CloudCall>>, CoreError> {
        Ok(None)
    }

    /// Produces index-revocation calls when a document is deleted.
    /// Default: nothing to revoke.
    ///
    /// # Errors
    ///
    /// Tactic-specific failures.
    fn delete(&mut self, field: &str, value: &Value, id: DocId) -> Result<Vec<CloudCall>, CoreError> {
        Ok(Vec::new())
    }

    /// Recovers the plaintext value from a stored cloud document, if this
    /// tactic owns the payload encryption of the field. (Retrieval +
    /// SecureEnc.)
    ///
    /// # Errors
    ///
    /// Decryption failures.
    fn recover(&self, field: &str, stored: &Document) -> Result<Option<Value>, CoreError> {
        Ok(None)
    }

    /// Builds the cloud calls for an equality search. (EqQuery.)
    ///
    /// # Errors
    ///
    /// [`CoreError::UnsupportedOperation`] when the tactic has no equality support.
    fn eq_query(&mut self, field: &str, value: &Value) -> Result<Vec<CloudCall>, CoreError> {
        Err(CoreError::UnsupportedOperation(format!("{}: equality search", self.descriptor().name)))
    }

    /// Resolves equality-search responses into document ids. (EqResolution.)
    ///
    /// # Errors
    ///
    /// Malformed responses.
    fn eq_resolve(&self, field: &str, value: &Value, responses: &[Vec<u8>]) -> Result<Vec<DocId>, CoreError> {
        Err(CoreError::UnsupportedOperation(format!("{}: equality resolution", self.descriptor().name)))
    }

    /// Builds the cloud calls for a boolean (DNF) search. (BoolQuery.)
    ///
    /// # Errors
    ///
    /// [`CoreError::UnsupportedOperation`] by default.
    fn bool_query(&mut self, dnf: &DnfLiterals) -> Result<Vec<CloudCall>, CoreError> {
        Err(CoreError::UnsupportedOperation(format!("{}: boolean search", self.descriptor().name)))
    }

    /// Resolves boolean-search responses. (BoolResolution.)
    ///
    /// # Errors
    ///
    /// Malformed responses.
    fn bool_resolve(&self, dnf: &DnfLiterals, responses: &[Vec<u8>]) -> Result<Vec<DocId>, CoreError> {
        Err(CoreError::UnsupportedOperation(format!("{}: boolean resolution", self.descriptor().name)))
    }

    /// Builds the cloud calls for a range search (inclusive bounds).
    ///
    /// # Errors
    ///
    /// [`CoreError::UnsupportedOperation`] by default.
    fn range_query(&mut self, field: &str, lo: &Value, hi: &Value) -> Result<Vec<CloudCall>, CoreError> {
        Err(CoreError::UnsupportedOperation(format!("{}: range search", self.descriptor().name)))
    }

    /// Resolves range-search responses.
    ///
    /// # Errors
    ///
    /// Malformed responses.
    fn range_resolve(&self, responses: &[Vec<u8>]) -> Result<Vec<DocId>, CoreError> {
        Err(CoreError::UnsupportedOperation(format!("{}: range resolution", self.descriptor().name)))
    }

    /// Builds the cloud calls for an aggregate over the whole collection or
    /// (when `ids` is non-empty) a precomputed id set. (`<Query>` +
    /// AggFunction.)
    ///
    /// # Errors
    ///
    /// [`CoreError::UnsupportedOperation`] by default.
    fn agg_query(&mut self, field: &str, agg: AggFn, ids: &[DocId]) -> Result<Vec<CloudCall>, CoreError> {
        Err(CoreError::UnsupportedOperation(format!("{}: aggregate", self.descriptor().name)))
    }

    /// Resolves aggregate responses into a number. (AggFunctionResolution.)
    ///
    /// # Errors
    ///
    /// Malformed responses.
    fn agg_resolve(&self, agg: AggFn, responses: &[Vec<u8>]) -> Result<f64, CoreError> {
        Err(CoreError::UnsupportedOperation(format!("{}: aggregate resolution", self.descriptor().name)))
    }

    /// For legacy-friendly tactics (DET): the `(shadow field, stored
    /// value)` literal equivalent to `field = value`, letting the engine
    /// compose cross-field boolean filters evaluated by the document store
    /// itself. Default: not available.
    fn stored_literal(&self, field: &str, value: &Value) -> Option<(String, Value)> {
        None
    }

    /// Serializes gateway-local state (Mitra counters, Sophos tokens).
    fn export_state(&self) -> Option<Vec<u8>> {
        None
    }

    /// Restores gateway-local state.
    ///
    /// # Errors
    ///
    /// Malformed state blobs.
    fn import_state(&mut self, state: &[u8]) -> Result<(), CoreError> {
        Ok(())
    }
}

/// Cloud-side tactic SPI (Table 1, right column): a named handler for the
/// tactic's routes. The cloud engine dispatches
/// `tactic/<name>/<scope>/<op>` to the handler registered under `<name>`.
pub trait CloudTactic: Send + Sync {
    /// The tactic name this handler serves.
    fn name(&self) -> &'static str;

    /// Handles one operation for a scope.
    ///
    /// # Errors
    ///
    /// Tactic-specific failures (propagated over the channel).
    fn handle(&self, scope: &str, op: &str, payload: &[u8]) -> Result<Vec<u8>, CoreError>;
}

/// The DocIDGen interface of Table 1: mints fresh document identifiers.
pub trait DocIdGen: Send {
    /// Generates a fresh id.
    fn generate(&mut self) -> DocId;
}

/// Random 128-bit ids (collision probability negligible at any realistic
/// scale).
pub struct RandomDocIdGen<R> {
    rng: R,
}

impl<R: RngCore + Send> RandomDocIdGen<R> {
    /// Wraps an RNG.
    pub fn new(rng: R) -> Self {
        RandomDocIdGen { rng }
    }
}

impl<R: RngCore + Send> DocIdGen for RandomDocIdGen<R> {
    fn generate(&mut self) -> DocId {
        let mut id = [0u8; 16];
        self.rng.fill_bytes(&mut id);
        DocId(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn random_docid_gen_unique() {
        let mut gen = RandomDocIdGen::new(rand::rngs::StdRng::seed_from_u64(1));
        let a = gen.generate();
        let b = gen.generate();
        assert_ne!(a, b);
    }

    #[test]
    fn cloud_call_constructor() {
        let c = CloudCall::new("doc/get", vec![1, 2]);
        assert_eq!(c.route, "doc/get");
        assert_eq!(c.payload, vec![1, 2]);
    }
}
