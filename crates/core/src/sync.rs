//! Replica-state enumeration and digesting for cluster synchronization.
//!
//! Three cluster mechanisms need the same primitive — "give me the slice of
//! a node's state that routes into these hash ranges, in a canonical
//! encoding": snapshot-filtered resync (a rejoining node applies only what
//! it owns), membership key handoff (a new owner pulls exactly the ranges
//! it gained) and Merkle anti-entropy (replicas compare per-leaf digests
//! and repair the keys that diverge). This module owns that primitive:
//!
//! * [`Domain`] classifies every piece of cloud state as *broadcast*
//!   (replicated everywhere: tactic public keys, BIEX base builds, index
//!   definitions, schema metadata) or *scoped* to a routing key (documents,
//!   per-scope tactic state) — mirroring exactly how
//!   [`cluster`](crate::cluster) routes writes, so ownership of stored
//!   state and ownership of the writes that created it always agree;
//! * [`export_entries`] walks a node's KV store + doc store once and emits
//!   canonical [`SyncEntry`]s for a [`Selector`];
//! * [`leaf_digests`] buckets those entries into ring-leaf intervals and
//!   hashes each bucket; [`MerkleTree`] folds leaf digests to a root and
//!   diffs two trees by descending only differing subtrees.
//!
//! The hash ring primitives (`mix64`, `hash_bytes`, leaf intervals) live
//! here too so the ring, the exports and the digests can never disagree on
//! what "the hash of a key" means.

use datablinder_docstore::DocStore;
use datablinder_kvstore::{KvStore, LogRecord};
use datablinder_primitives::sha256::Sha256;

use crate::cloudproto::{BlobList, SyncEntry, ENTRY_DOC, ENTRY_INDEX, ENTRY_KV};

/// Finalizer from SplitMix64: bijective, well-mixed 64→64 bit hash.
pub(crate) fn mix64(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Seeded FNV-1a over `bytes`, finished with [`mix64`] — the cluster's one
/// routing hash. Deterministic across runs and platforms.
pub(crate) fn hash_bytes(seed: u64, bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ seed;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    mix64(h)
}

/// The doc-routing key for `(collection, id)`: collection ‖ 0x00 ‖ id.
/// Doubles as the [`ENTRY_DOC`] entry key, so a doc's sync identity and its
/// ring placement are the same bytes by construction.
pub(crate) fn doc_key(collection: &str, id: &[u8]) -> Vec<u8> {
    let mut key = Vec::with_capacity(collection.len() + 1 + id.len());
    key.extend_from_slice(collection.as_bytes());
    key.push(0);
    key.extend_from_slice(id);
    key
}

/// Which replicas must hold a piece of state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum Domain {
    /// Every node replicates it (setup keys, base builds, index defs).
    Broadcast,
    /// Owned by the ring replicas of this routing key.
    Scoped(Vec<u8>),
}

/// Classifies a KV key into its replication domain, mirroring
/// [`cluster`](crate::cluster)'s write routing: tactic scope state lives
/// under `t/<name>/<scope>/…` and routes by `tactic/<name>/<scope>` (the
/// same routing key scoped tactic *writes* use); `…/__pk__` public keys and
/// `…/b/…` BIEX base builds are written via broadcast routes (`setup`,
/// `kv/bulk_put`) and so replicate everywhere, as does everything outside
/// `t/` (schema metadata, misc engine state).
pub(crate) fn kv_domain(key: &[u8]) -> Domain {
    let Some(rest) = key.strip_prefix(b"t/") else {
        return Domain::Broadcast;
    };
    let Some(name_end) = rest.iter().position(|&b| b == b'/') else {
        return Domain::Broadcast;
    };
    let name = &rest[..name_end];
    let after = &rest[name_end + 1..];
    let scope = match after.iter().position(|&b| b == b'/') {
        // `t/ore/<scope>` — the whole remainder is the scope (one hash slot).
        None => after,
        Some(scope_end) => {
            let suffix = &after[scope_end + 1..];
            if suffix == b"__pk__" || suffix.starts_with(b"b/") {
                return Domain::Broadcast;
            }
            &after[..scope_end]
        }
    };
    let mut routing = Vec::with_capacity(7 + name.len() + 1 + scope.len());
    routing.extend_from_slice(b"tactic/");
    routing.extend_from_slice(name);
    routing.push(b'/');
    routing.extend_from_slice(scope);
    Domain::Scoped(routing)
}

/// Whether hash `h` falls in the half-open ring interval `(lo, hi]`,
/// wrapping through `u64::MAX` when `lo >= hi` (a single-point ring owns
/// the whole circle).
pub(crate) fn in_range(h: u64, (lo, hi): (u64, u64)) -> bool {
    if lo < hi {
        h > lo && h <= hi
    } else {
        h > lo || h <= hi
    }
}

/// Whether `h` falls in any of `ranges`.
pub(crate) fn in_any_range(h: u64, ranges: &[(u64, u64)]) -> bool {
    ranges.iter().any(|&r| in_range(h, r))
}

/// The ring leaf (shard) index owning hash `h` under the sorted vnode
/// `boundaries`: leaf `j` covers `(boundaries[j-1], boundaries[j]]`, leaf 0
/// wraps. Matches the ring's `partition_point` successor walk exactly.
pub(crate) fn leaf_of(h: u64, boundaries: &[u64]) -> usize {
    debug_assert!(!boundaries.is_empty());
    boundaries.partition_point(|&b| b < h) % boundaries.len()
}

/// Which slice of a node's state an export should emit.
pub(crate) enum Selector<'a> {
    /// Everything (digest computation).
    All,
    /// State whose routing hash falls in one of the ring ranges, plus the
    /// broadcast domain when asked (resync pulls, handoff pulls).
    Ranges {
        /// `(lo, hi]` hash intervals, wrapping when `lo >= hi`.
        ranges: &'a [(u64, u64)],
        /// Include broadcast-domain state.
        include_broadcast: bool,
    },
    /// Only state landing in dirty ring leaves (incremental digest
    /// recomputation: clean leaves skip value encoding entirely).
    DirtyLeaves {
        /// Sorted vnode hash points defining the leaves.
        boundaries: &'a [u64],
        /// Per-leaf dirty flags, index-aligned with `boundaries`.
        dirty: &'a [bool],
        /// Re-export the broadcast domain too.
        include_broadcast: bool,
    },
}

impl Selector<'_> {
    fn keep(&self, seed: u64, domain: &Domain) -> bool {
        match self {
            Selector::All => true,
            Selector::Ranges { ranges, include_broadcast } => match domain {
                Domain::Broadcast => *include_broadcast,
                Domain::Scoped(key) => in_any_range(hash_bytes(seed, key), ranges),
            },
            Selector::DirtyLeaves { boundaries, dirty, include_broadcast } => match domain {
                Domain::Broadcast => *include_broadcast,
                Domain::Scoped(key) => dirty[leaf_of(hash_bytes(seed, key), boundaries)],
            },
        }
    }
}

/// Walks the node's stores once and emits the selected state as canonical
/// `(entry, domain)` pairs, sorted by `(kind, key)` — equal state always
/// exports byte-identical entry streams, which is what makes digests
/// comparable across replicas.
///
/// Encodings: docs carry their full encoded document; KV keys carry the
/// [`LogRecord`] bodies that rebuild the slot from empty (a [`BlobList`]),
/// which canonicalizes hashes/sets/counters the same way the snapshot
/// format does; index entries carry the collection's sorted indexed-field
/// names and are only emitted when non-empty (a bare collection with no
/// indexes is not a divergence).
pub(crate) fn export_entries(
    kv: &KvStore,
    docs: &DocStore,
    seed: u64,
    selector: &Selector<'_>,
) -> Vec<(SyncEntry, Domain)> {
    let mut out = Vec::new();
    // KV slots: group the sorted export stream into per-key record lists.
    let records = kv.export_records();
    let mut i = 0;
    while i < records.len() {
        let key = record_key(&records[i]).to_vec();
        let mut items = Vec::new();
        while i < records.len() && record_key(&records[i]) == key.as_slice() {
            items.push(records[i].to_bytes());
            i += 1;
        }
        let domain = kv_domain(&key);
        if selector.keep(seed, &domain) {
            let value = BlobList { items }.encode();
            out.push((SyncEntry { kind: ENTRY_KV, key, value }, domain));
        }
    }
    // Documents + per-collection index definitions.
    let mut names = docs.collection_names();
    names.sort();
    for name in names {
        let coll = docs.collection(&name);
        let mut fields = coll.indexed_fields();
        fields.sort();
        if !fields.is_empty() && selector.keep(seed, &Domain::Broadcast) {
            let value = BlobList { items: fields.into_iter().map(String::into_bytes).collect() }.encode();
            out.push((SyncEntry { kind: ENTRY_INDEX, key: name.clone().into_bytes(), value }, Domain::Broadcast));
        }
        let mut ids = coll.ids();
        ids.sort();
        for id in ids {
            let key = doc_key(&name, id.as_bytes());
            let domain = Domain::Scoped(key.clone());
            if !selector.keep(seed, &domain) {
                continue;
            }
            let Some(doc) = coll.get(&id) else { continue };
            out.push((SyncEntry { kind: ENTRY_DOC, key, value: crate::wire::encode_document(&doc) }, domain));
        }
    }
    out.sort_by(|(a, _), (b, _)| (a.kind, &a.key).cmp(&(b.kind, &b.key)));
    out
}

fn record_key(rec: &LogRecord) -> &[u8] {
    match rec {
        LogRecord::Set { key, .. }
        | LogRecord::Del { key }
        | LogRecord::HSet { key, .. }
        | LogRecord::HDel { key, .. }
        | LogRecord::SAdd { key, .. }
        | LogRecord::SRem { key, .. }
        | LogRecord::Incr { key, .. } => key,
    }
}

/// Digest of one entry bucket: SHA-256 over the canonical entry encodings
/// in `(kind, key)` order. The empty bucket hashes to a fixed value, equal
/// on every node.
fn bucket_digest(entries: &[&SyncEntry]) -> [u8; 32] {
    let mut h = Sha256::new();
    let mut buf = Vec::new();
    for e in entries {
        buf.clear();
        e.encode_into(&mut buf);
        h.update(&buf);
    }
    h.finalize()
}

/// Digest of an empty entry bucket — what a replica must report for every
/// leaf it does not own (anti-entropy flags anything else as stray state).
pub(crate) fn empty_bucket_digest() -> [u8; 32] {
    bucket_digest(&[])
}

/// Buckets an [`export_entries`]`(…, Selector::All)` stream into ring
/// leaves and digests each bucket, plus the broadcast-domain bucket.
/// Returns `(per-leaf digests, broadcast digest)`, index-aligned with
/// `boundaries`.
pub(crate) fn leaf_digests(
    entries: &[(SyncEntry, Domain)],
    seed: u64,
    boundaries: &[u64],
) -> (Vec<[u8; 32]>, [u8; 32]) {
    let mut leaves: Vec<Vec<&SyncEntry>> = vec![Vec::new(); boundaries.len().max(1)];
    let mut broadcast: Vec<&SyncEntry> = Vec::new();
    for (entry, domain) in entries {
        match domain {
            Domain::Broadcast => broadcast.push(entry),
            Domain::Scoped(key) => {
                if boundaries.is_empty() {
                    leaves[0].push(entry);
                } else {
                    leaves[leaf_of(hash_bytes(seed, key), boundaries)].push(entry);
                }
            }
        }
    }
    (leaves.iter().map(|b| bucket_digest(b)).collect(), bucket_digest(&broadcast))
}

/// What a mutation touched, for dirty-tracking the digest cache. Produced
/// by the engine's write paths; granularity mirrors the write-route
/// classification, so every journaled mutation maps to a scope.
#[derive(Debug, Clone)]
pub(crate) enum MutationScope {
    /// Conservative: invalidate everything (prefix deletes, retires).
    All,
    /// Broadcast-domain state changed (setups, index defs, base builds).
    Broadcast,
    /// State with this *routing key* changed (doc key, tactic scope key).
    Routing(Vec<u8>),
    /// The KV slot at this key changed; its domain is derived.
    KvKey(Vec<u8>),
}

/// Per-engine incremental digest state: leaf digests under one ring layout
/// plus dirty bits set by [`DigestCache::note`] on every mutation. A
/// digest request re-hashes only dirty leaves; a layout change (different
/// seed or boundaries, i.e. a membership change) rebuilds from scratch.
#[derive(Debug)]
pub(crate) struct DigestCache {
    seed: u64,
    boundaries: Vec<u64>,
    leaves: Vec<[u8; 32]>,
    broadcast: [u8; 32],
    dirty: Vec<bool>,
    broadcast_dirty: bool,
}

/// How much work one digest request did (for obs counters).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum DigestWork {
    /// Everything clean: answered from cache.
    Cached,
    /// Re-hashed only the dirty leaves.
    Partial(u64),
    /// Cold or relaid-out: full rebuild.
    Full,
}

impl DigestCache {
    /// Marks the leaves a mutation touched as dirty. A `None` slot (no
    /// digest requested yet) has nothing to invalidate.
    pub(crate) fn note(slot: &mut Option<DigestCache>, scope: &MutationScope) {
        let Some(c) = slot else { return };
        match scope {
            MutationScope::All => {
                c.dirty.iter_mut().for_each(|d| *d = true);
                c.broadcast_dirty = true;
            }
            MutationScope::Broadcast => c.broadcast_dirty = true,
            MutationScope::Routing(key) => {
                let j = leaf_of(hash_bytes(c.seed, key), &c.boundaries);
                c.dirty[j] = true;
            }
            MutationScope::KvKey(key) => match kv_domain(key) {
                Domain::Broadcast => c.broadcast_dirty = true,
                Domain::Scoped(routing) => {
                    let j = leaf_of(hash_bytes(c.seed, &routing), &c.boundaries);
                    c.dirty[j] = true;
                }
            },
        }
    }

    /// Answers a digest request from the cache, re-hashing only what's
    /// dirty (or rebuilding on a layout change), and returns the response
    /// plus how much work it took.
    pub(crate) fn respond(
        slot: &mut Option<DigestCache>,
        kv: &KvStore,
        docs: &DocStore,
        seed: u64,
        boundaries: &[u64],
    ) -> (crate::cloudproto::DigestResponse, DigestWork) {
        let work = match slot {
            Some(c) if c.seed == seed && c.boundaries == boundaries => {
                let dirty_count = c.dirty.iter().filter(|&&d| d).count() as u64;
                if dirty_count == 0 && !c.broadcast_dirty {
                    DigestWork::Cached
                } else {
                    let sel =
                        Selector::DirtyLeaves { boundaries, dirty: &c.dirty, include_broadcast: c.broadcast_dirty };
                    let entries = export_entries(kv, docs, seed, &sel);
                    let (leaves, broadcast) = leaf_digests(&entries, seed, boundaries);
                    for (j, leaf) in leaves.iter().enumerate().take(c.dirty.len()) {
                        if c.dirty[j] {
                            c.leaves[j] = *leaf;
                            c.dirty[j] = false;
                        }
                    }
                    if c.broadcast_dirty {
                        c.broadcast = broadcast;
                        c.broadcast_dirty = false;
                    }
                    DigestWork::Partial(dirty_count)
                }
            }
            _ => {
                let entries = export_entries(kv, docs, seed, &Selector::All);
                let (leaves, broadcast) = leaf_digests(&entries, seed, boundaries);
                *slot = Some(DigestCache {
                    seed,
                    boundaries: boundaries.to_vec(),
                    dirty: vec![false; leaves.len()],
                    broadcast_dirty: false,
                    leaves,
                    broadcast,
                });
                DigestWork::Full
            }
        };
        let c = slot.as_ref().expect("cache populated");
        let resp = crate::cloudproto::DigestResponse {
            leaves: c.leaves.clone(),
            broadcast: c.broadcast,
            root: MerkleTree::build(&c.leaves).root(),
        };
        (resp, work)
    }
}

/// A binary Merkle tree over leaf digests. Parents hash their two children
/// (an odd node at the end of a level is promoted unchanged); `diff`
/// descends only subtrees whose hashes differ, so two almost-equal replicas
/// compare in O(log n) node visits per divergent leaf.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MerkleTree {
    /// `levels[0]` = leaves, last level = root (singleton).
    levels: Vec<Vec<[u8; 32]>>,
}

impl MerkleTree {
    /// Builds the tree bottom-up from leaf digests.
    pub fn build(leaves: &[[u8; 32]]) -> Self {
        let mut levels = vec![leaves.to_vec()];
        while levels.last().expect("nonempty").len() > 1 {
            let below = levels.last().expect("nonempty");
            let mut level = Vec::with_capacity(below.len().div_ceil(2));
            for pair in below.chunks(2) {
                match pair {
                    [a, b] => {
                        let mut h = Sha256::new();
                        h.update(a);
                        h.update(b);
                        level.push(h.finalize());
                    }
                    [a] => level.push(*a),
                    _ => unreachable!("chunks(2)"),
                }
            }
            levels.push(level);
        }
        MerkleTree { levels }
    }

    /// The root digest (zero for an empty tree).
    pub fn root(&self) -> [u8; 32] {
        self.levels.last().and_then(|l| l.first()).copied().unwrap_or([0; 32])
    }

    /// Leaf indices at which the two trees differ, found by descending
    /// only differing subtrees. Trees must cover the same leaf count.
    pub fn diff(&self, other: &MerkleTree) -> Vec<usize> {
        let leaves = self.levels.first().map_or(0, Vec::len);
        assert_eq!(leaves, other.levels.first().map_or(0, Vec::len), "tree shape mismatch");
        let mut out = Vec::new();
        if leaves == 0 {
            return out;
        }
        // (level, index) pairs, level counted from the top.
        let top = self.levels.len() - 1;
        let mut stack = vec![(top, 0usize)];
        while let Some((level, idx)) = stack.pop() {
            if self.levels[level][idx] == other.levels[level][idx] {
                continue;
            }
            if level == 0 {
                out.push(idx);
                continue;
            }
            let below = self.levels[level - 1].len();
            let left = idx * 2;
            if left < below {
                stack.push((level - 1, left));
            }
            if left + 1 < below {
                stack.push((level - 1, left + 1));
            }
        }
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use datablinder_docstore::Document;

    use super::*;

    #[test]
    fn kv_domains_mirror_write_routing() {
        // Scoped: per-scope tactic state routes like its writes.
        for (key, routing) in [
            (&b"t/mitra/notes:owner/w/3"[..], &b"tactic/mitra/notes:owner"[..]),
            (b"t/sophos/notes:owner/idx/xyz", b"tactic/sophos/notes:owner"),
            (b"t/ore/notes:eff", b"tactic/ore/notes:eff"),
            (b"t/biex-2lev/notes:flags/x/1", b"tactic/biex-2lev/notes:flags"),
        ] {
            assert_eq!(kv_domain(key), Domain::Scoped(routing.to_vec()), "{}", String::from_utf8_lossy(key));
        }
        // Broadcast: setup keys, base builds, non-tactic state.
        for key in [
            &b"t/sophos/notes:owner/__pk__"[..],
            b"t/paillier/notes:value/__pk__",
            b"t/biex-zmf/notes:flags/b/esk",
            b"meta/schema/notes",
            b"t/weird",
        ] {
            assert_eq!(kv_domain(key), Domain::Broadcast, "{}", String::from_utf8_lossy(key));
        }
    }

    #[test]
    fn ranges_wrap_and_leaves_partition() {
        assert!(in_range(5, (3, 9)));
        assert!(!in_range(3, (3, 9)), "lo is exclusive");
        assert!(in_range(9, (3, 9)), "hi is inclusive");
        assert!(in_range(u64::MAX, (100, 5)), "wrapping range");
        assert!(in_range(2, (100, 5)));
        assert!(!in_range(50, (100, 5)));
        assert!(in_range(7, (42, 42)), "single-point ring owns everything");

        let boundaries = [100u64, 200, 300];
        assert_eq!(leaf_of(150, &boundaries), 1);
        assert_eq!(leaf_of(200, &boundaries), 1, "hi inclusive");
        assert_eq!(leaf_of(201, &boundaries), 2);
        assert_eq!(leaf_of(350, &boundaries), 0, "wraps to leaf 0");
        assert_eq!(leaf_of(50, &boundaries), 0);
        // Every hash lands in exactly the leaf whose range contains it.
        for h in [0u64, 100, 101, 250, 299, 300, 301, u64::MAX] {
            let j = leaf_of(h, &boundaries);
            let lo = boundaries[(j + boundaries.len() - 1) % boundaries.len()];
            assert!(in_range(h, (lo, boundaries[j])), "h={h} leaf={j}");
        }
    }

    #[test]
    fn export_is_canonical_and_selective() {
        let kv = KvStore::new();
        let docs = DocStore::new();
        kv.set(b"t/sophos/n:o/__pk__", b"pk");
        kv.hset(b"t/ore/n:e", b"f1", b"v1").unwrap();
        kv.hset(b"t/ore/n:e", b"f0", b"v0").unwrap();
        let coll = docs.collection("notes");
        coll.create_index("owner__det");
        coll.insert(Document::new("aa").with("x", datablinder_docstore::Value::from(1i64))).unwrap();

        let seed = 42;
        let all = export_entries(&kv, &docs, seed, &Selector::All);
        assert_eq!(all.len(), 4, "pk + ore hash + index def + doc");
        // Deterministic: same state, same bytes.
        let again = export_entries(&kv, &docs, seed, &Selector::All);
        assert_eq!(all, again);
        // Hash fields are canonicalized (sorted) regardless of insert order.
        let kv2 = KvStore::new();
        kv2.hset(b"t/ore/n:e", b"f0", b"v0").unwrap();
        kv2.hset(b"t/ore/n:e", b"f1", b"v1").unwrap();
        kv2.set(b"t/sophos/n:o/__pk__", b"pk");
        let all2 = export_entries(&kv2, &docs, seed, &Selector::All);
        assert_eq!(all, all2);

        // Range selection: only the ore scope's hash range, no broadcast.
        let h = hash_bytes(seed, b"tactic/ore/n:e");
        let sel = [(h.wrapping_sub(1), h)];
        let hits = export_entries(&kv, &docs, seed, &Selector::Ranges { ranges: &sel, include_broadcast: false });
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].0.key, b"t/ore/n:e");
        // Broadcast flag pulls in pk + index definition.
        let hits = export_entries(&kv, &docs, seed, &Selector::Ranges { ranges: &sel, include_broadcast: true });
        assert_eq!(hits.len(), 3);
    }

    #[test]
    fn digest_cache_incremental_matches_full_rebuild() {
        let seed = 11;
        let boundaries: Vec<u64> = (1..=16).map(|i| i * (u64::MAX / 16)).collect();
        let kv = KvStore::new();
        let docs = DocStore::new();
        for i in 0..20 {
            docs.collection("c").insert(Document::new(format!("{i:02x}"))).unwrap();
        }
        kv.set(b"t/sophos/n:o/__pk__", b"pk");

        let mut slot = None;
        let (r1, w1) = DigestCache::respond(&mut slot, &kv, &docs, seed, &boundaries);
        assert_eq!(w1, DigestWork::Full);
        let (r2, w2) = DigestCache::respond(&mut slot, &kv, &docs, seed, &boundaries);
        assert_eq!(w2, DigestWork::Cached);
        assert_eq!(r1, r2);

        // Mutate one doc + the broadcast domain; only those re-hash, and the
        // result matches a from-scratch rebuild.
        docs.collection("c").delete("07").unwrap();
        DigestCache::note(&mut slot, &MutationScope::Routing(doc_key("c", b"07")));
        kv.set(b"t/sophos/n:o/__pk__", b"pk2");
        DigestCache::note(&mut slot, &MutationScope::KvKey(b"t/sophos/n:o/__pk__".to_vec()));
        let (r3, w3) = DigestCache::respond(&mut slot, &kv, &docs, seed, &boundaries);
        assert_eq!(w3, DigestWork::Partial(1));
        let mut fresh = None;
        let (r4, _) = DigestCache::respond(&mut fresh, &kv, &docs, seed, &boundaries);
        assert_eq!(r3, r4, "incremental digest equals full rebuild");
        assert_ne!(r2, r3);

        // A layout change (membership change) rebuilds.
        let wider: Vec<u64> = (1..=8).map(|i| i * (u64::MAX / 8)).collect();
        let (_, w5) = DigestCache::respond(&mut slot, &kv, &docs, seed, &wider);
        assert_eq!(w5, DigestWork::Full);
    }

    #[test]
    fn merkle_diff_finds_exactly_the_divergent_leaves() {
        let mut a: Vec<[u8; 32]> = (0..13u8).map(|i| [i; 32]).collect();
        let t1 = MerkleTree::build(&a);
        assert_eq!(t1.diff(&t1), Vec::<usize>::new());
        a[3] = [99; 32];
        a[12] = [98; 32];
        let t2 = MerkleTree::build(&a);
        assert_ne!(t1.root(), t2.root());
        assert_eq!(t1.diff(&t2), vec![3, 12]);
        assert_eq!(MerkleTree::build(&[]).root(), [0; 32]);
        assert_eq!(MerkleTree::build(&[]).diff(&MerkleTree::build(&[])), Vec::<usize>::new());
    }

    #[test]
    fn leaf_digests_localize_differences() {
        let seed = 7;
        let kv = KvStore::new();
        let docs = DocStore::new();
        for i in 0..32 {
            docs.collection("c").insert(Document::new(format!("{i:02x}"))).unwrap();
        }
        let boundaries: Vec<u64> = (1..=8).map(|i| i * (u64::MAX / 8)).collect();
        let all = export_entries(&kv, &docs, seed, &Selector::All);
        let (leaves, bcast) = leaf_digests(&all, seed, &boundaries);

        // A second identical store digests identically.
        let docs2 = DocStore::new();
        for i in 0..32 {
            docs2.collection("c").insert(Document::new(format!("{i:02x}"))).unwrap();
        }
        let all2 = export_entries(&kv, &docs2, seed, &Selector::All);
        let (leaves2, bcast2) = leaf_digests(&all2, seed, &boundaries);
        assert_eq!(leaves, leaves2);
        assert_eq!(bcast, bcast2);

        // Deleting one doc flips exactly that doc's leaf.
        docs2.collection("c").delete("05").unwrap();
        let all3 = export_entries(&kv, &docs2, seed, &Selector::All);
        let (leaves3, _) = leaf_digests(&all3, seed, &boundaries);
        let changed: Vec<usize> = (0..leaves.len()).filter(|&j| leaves[j] != leaves3[j]).collect();
        let expect = leaf_of(hash_bytes(seed, &doc_key("c", b"05")), &boundaries);
        assert_eq!(changed, vec![expect]);
        assert_eq!(MerkleTree::build(&leaves).diff(&MerkleTree::build(&leaves3)), vec![expect]);
    }
}
