//! The BIEX tactic adapters: boolean (cross-field) search, class 3.
//!
//! The BIEX constructions of the `datablinder-sse` crate are *static*
//! (setup-time index build), but the middleware must serve a live insert
//! workload. The adapter therefore runs a **hybrid**:
//!
//! * a **static base** — the true `Biex2LevClient`/`BiexZmfClient`
//!   encrypted structures, built by [`GatewayTactic::bulk_index`] during
//!   an initial cloud migration and shipped wholesale (`kv/bulk_put`);
//! * a **dynamic overlay** — forward-private update chains (Mitra-style)
//!   for documents inserted after the migration, following the standard
//!   static-to-dynamic transformation of the SSE literature and
//!   preserving each variant's signature trade-off:
//!   *biex-2lev* additionally maintains per-keyword-*pair* chains
//!   (read-efficient precomputed intersections, quadratic index growth
//!   per document), *biex-zmf* keyword chains only (linear storage,
//!   query-side intersection);
//! * **tombstone chains** — deletions append the id to a per-keyword
//!   tombstone chain; resolution subtracts tombstones, which masks
//!   deleted documents in *both* the immutable base and the overlay.
//!
//! A query then fans out to base + overlay + tombstones in one batch of
//! cloud calls and merges at the gateway. See DESIGN.md §5.

use std::collections::HashSet;

use datablinder_docstore::Value;
use datablinder_kvstore::KvStore;
use datablinder_sse::biex::{
    decode_2lev_response, decode_zmf_response, encode_2lev_response, encode_zmf_response, Biex2LevClient,
    Biex2LevServer, Biex2LevToken, BiexQuery, BiexZmfClient, BiexZmfServer, BiexZmfToken,
};
use datablinder_sse::encoding::{Reader, Writer};
use datablinder_sse::mitra::{MitraClient, MitraSearchToken, MitraServer, MitraUpdateToken};
use datablinder_sse::{DocId, UpdateOp};
use rand::RngCore;

use super::TacticContext;
use crate::error::CoreError;
use crate::model::*;
use crate::spi::{CloudCall, CloudTactic, DnfLiterals, GatewayTactic, ProtectedField};
use crate::wire::field_keyword;

/// Which BIEX variant an adapter instance runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BiexVariant {
    /// Read-efficient: precomputed pair intersections.
    TwoLev,
    /// Space-efficient: per-keyword chains / filters.
    Zmf,
}

impl BiexVariant {
    fn name(self) -> &'static str {
        match self {
            BiexVariant::TwoLev => "biex-2lev",
            BiexVariant::Zmf => "biex-zmf",
        }
    }
}

/// Descriptor for BIEX-2Lev (Table 2: class 3, leakage *Predicates*,
/// 8 gateway / 5 cloud interfaces, challenge "storage impl. complexity").
pub fn descriptor_2lev() -> TacticDescriptor {
    TacticDescriptor {
        name: "biex-2lev".into(),
        family: "boolean SSE (read-efficient)".into(),
        operations: vec![
            OpProfile { op: TacticOp::Init, leakage: LeakageLevel::Structure, metrics: PerfMetrics::new(2, 0, 4) },
            OpProfile { op: TacticOp::Update, leakage: LeakageLevel::Structure, metrics: PerfMetrics::new(3, 1, 4) },
            OpProfile { op: TacticOp::EqQuery, leakage: LeakageLevel::Identifiers, metrics: PerfMetrics::new(2, 1, 4) },
            OpProfile {
                op: TacticOp::BoolQuery,
                leakage: LeakageLevel::Predicates,
                metrics: PerfMetrics::new(2, 1, 4),
            },
        ],
        serves: vec![FieldOp::Insert, FieldOp::Equality, FieldOp::Boolean],
        serves_agg: vec![],
        gateway_interfaces: 8,
        cloud_interfaces: 5,
        gateway_state: true,
    }
}

/// Descriptor for BIEX-ZMF (class 3, space-efficient, costlier queries).
pub fn descriptor_zmf() -> TacticDescriptor {
    TacticDescriptor {
        name: "biex-zmf".into(),
        family: "boolean SSE (space-efficient)".into(),
        operations: vec![
            OpProfile { op: TacticOp::Init, leakage: LeakageLevel::Structure, metrics: PerfMetrics::new(2, 0, 2) },
            OpProfile { op: TacticOp::Update, leakage: LeakageLevel::Structure, metrics: PerfMetrics::new(3, 1, 2) },
            OpProfile { op: TacticOp::EqQuery, leakage: LeakageLevel::Identifiers, metrics: PerfMetrics::new(3, 1, 2) },
            OpProfile {
                op: TacticOp::BoolQuery,
                leakage: LeakageLevel::Predicates,
                metrics: PerfMetrics::new(4, 1, 2),
            },
        ],
        serves: vec![FieldOp::Insert, FieldOp::Equality, FieldOp::Boolean],
        serves_agg: vec![],
        gateway_interfaces: 8,
        cloud_interfaces: 5,
        gateway_state: true,
    }
}

/// Separator between the two keywords of a pair chain.
const PAIR_SEP: u8 = 0x1E;
/// Prefix byte of tombstone chains (cannot collide with `field_keyword`
/// outputs, which start with the field-name bytes).
const TOMB_TAG: u8 = 0x07;

fn pair_keyword(a: &[u8], b: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(a.len() + 1 + b.len() + 8);
    out.extend_from_slice(&(a.len() as u64).to_be_bytes());
    out.extend_from_slice(a);
    out.push(PAIR_SEP);
    out.extend_from_slice(b);
    out
}

fn tomb_keyword(k: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(k.len() + 1);
    out.push(TOMB_TAG);
    out.extend_from_slice(k);
    out
}

/// The static base client, per variant.
enum BaseClient {
    TwoLev(Biex2LevClient),
    Zmf(BiexZmfClient),
}

impl BaseClient {
    fn search_token(&self, query: &BiexQuery) -> Vec<u8> {
        match self {
            BaseClient::TwoLev(c) => c.search_token(query).encode(),
            BaseClient::Zmf(c) => c.search_token(query).encode(),
        }
    }

    fn resolve(&self, query: &BiexQuery, response: &[u8]) -> Result<Vec<DocId>, CoreError> {
        Ok(match self {
            BaseClient::TwoLev(c) => c.resolve(query, &decode_2lev_response(response)?)?,
            BaseClient::Zmf(c) => c.resolve(query, &decode_zmf_response(response)?)?,
        })
    }
}

/// Gateway half of a BIEX variant.
pub struct BiexTactic {
    variant: BiexVariant,
    overlay: MitraClient,
    base: BaseClient,
    base_seeded: bool,
    scope: String,
    route_update: String,
    route_search: String,
    route_base_search: String,
}

impl BiexTactic {
    /// Builds from context.
    pub fn build(ctx: &TacticContext, variant: BiexVariant) -> Result<Self, CoreError> {
        let key = ctx.kms.key_for(&ctx.key_scope(variant.name()));
        let base = match variant {
            BiexVariant::TwoLev => BaseClient::TwoLev(Biex2LevClient::new(&key.derive(b"base", 32))),
            BiexVariant::Zmf => BaseClient::Zmf(BiexZmfClient::new(&key.derive(b"base", 32))),
        };
        Ok(BiexTactic {
            variant,
            overlay: MitraClient::new(&key),
            base,
            base_seeded: false,
            scope: format!("{}:{}", ctx.schema, ctx.scope),
            route_update: ctx.route(variant.name(), "update"),
            route_search: ctx.route(variant.name(), "search"),
            route_base_search: ctx.route(variant.name(), "base_search"),
        })
    }

    /// The variant of this instance.
    pub fn variant(&self) -> BiexVariant {
        self.variant
    }

    /// Whether a static base has been installed.
    pub fn has_base(&self) -> bool {
        self.base_seeded
    }

    fn keywords(literals: &[(String, Value)]) -> Vec<Vec<u8>> {
        literals.iter().map(|(f, v)| field_keyword(f, v)).collect()
    }

    fn chain_update(&mut self, keyword: &[u8], id: DocId, op: UpdateOp) -> CloudCall {
        let token = self.overlay.update_token(keyword, id, op);
        CloudCall::new(self.route_update.clone(), token.encode())
    }

    fn chain_search_call(&self, keyword: &[u8]) -> CloudCall {
        CloudCall::new(self.route_search.clone(), self.overlay.search_token(keyword).encode())
    }

    /// Which overlay keywords one conjunction searches, per variant.
    /// Duplicate literals are collapsed (`a AND a` ≡ `a`).
    fn conj_keywords(&self, conj: &[(String, Value)]) -> Vec<Vec<u8>> {
        let mut kws = Self::keywords(conj);
        let mut seen = HashSet::new();
        kws.retain(|k| seen.insert(k.clone()));
        match (self.variant, kws.len()) {
            (_, 0) => Vec::new(),
            (_, 1) => kws,
            // Read-efficient: stream the (k1, ki) pair chains.
            (BiexVariant::TwoLev, _) => kws[1..].iter().map(|ki| pair_keyword(&kws[0], ki)).collect(),
            // Space-efficient: fetch every keyword's postings.
            (BiexVariant::Zmf, _) => kws,
        }
    }

    /// The deduplicated single keywords of a conjunction (base query +
    /// tombstone anchor).
    fn conj_singles(conj: &[(String, Value)]) -> Vec<Vec<u8>> {
        let mut kws = Self::keywords(conj);
        let mut seen = HashSet::new();
        kws.retain(|k| seen.insert(k.clone()));
        kws
    }

    fn resolve_overlay(&self, keyword: &[u8], response: &[u8]) -> Result<Vec<DocId>, CoreError> {
        let mut r = Reader::new(response);
        let values = r.list()?;
        r.finish()?;
        Ok(self.overlay.resolve(keyword, &values)?)
    }
}

impl GatewayTactic for BiexTactic {
    fn attach_recorder(&mut self, recorder: &datablinder_obs::Recorder) {
        // Mirror the base client's cipher-cache hit/miss counters
        // (`primitives.cipher_cache.*`) into the gateway recorder.
        match &mut self.base {
            BaseClient::TwoLev(c) => c.set_recorder(recorder.clone()),
            BaseClient::Zmf(c) => c.set_recorder(recorder.clone()),
        }
    }

    fn descriptor(&self) -> TacticDescriptor {
        match self.variant {
            BiexVariant::TwoLev => descriptor_2lev(),
            BiexVariant::Zmf => descriptor_zmf(),
        }
    }

    /// Per-field protect is a no-op: cross-field tactics index whole
    /// documents via [`GatewayTactic::protect_document`].
    fn protect(
        &mut self,
        _rng: &mut dyn RngCore,
        _field: &str,
        _value: &Value,
        _id: DocId,
    ) -> Result<ProtectedField, CoreError> {
        Ok(ProtectedField::default())
    }

    fn protect_document(
        &mut self,
        _rng: &mut dyn RngCore,
        literals: &[(String, Value)],
        id: DocId,
    ) -> Result<Option<Vec<CloudCall>>, CoreError> {
        let kws = Self::keywords(literals);
        let mut calls = Vec::new();
        for kw in &kws {
            calls.push(self.chain_update(kw, id, UpdateOp::Add));
        }
        if self.variant == BiexVariant::TwoLev {
            for a in &kws {
                for b in &kws {
                    if a != b {
                        calls.push(self.chain_update(&pair_keyword(a, b), id, UpdateOp::Add));
                    }
                }
            }
        }
        Ok(Some(calls))
    }

    /// Bulk migration: builds the *static* base structures over every
    /// document's literals and ships them in one `kv/bulk_put`.
    fn bulk_index(
        &mut self,
        rng: &mut dyn RngCore,
        entries: &[(Vec<(String, Value)>, DocId)],
    ) -> Result<Option<Vec<CloudCall>>, CoreError> {
        use datablinder_sse::inverted::InvertedIndex;
        if self.base_seeded {
            // A second static build over the same prefix would leave stale
            // entries from the first; further corpora go through the
            // dynamic overlay instead.
            return Err(CoreError::UnsupportedOperation(
                "boolean base already seeded; use insert/insert_many for further data".into(),
            ));
        }
        let mut index = InvertedIndex::new();
        for (literals, id) in entries {
            for kw in Self::keywords(literals) {
                index.add(&kw, *id);
            }
        }
        // Stage the encrypted structures locally under the exact prefix the
        // cloud-side handler will read them from.
        let staging = KvStore::new();
        let prefix = format!("t/{}/{}/b/", self.variant.name(), self.scope).into_bytes();
        let mut fork = rand::rngs::StdRng::from_rng(rng).expect("rng fork");
        match &self.base {
            BaseClient::TwoLev(c) => {
                let server = Biex2LevServer::new(staging.clone(), &prefix);
                c.setup(&mut fork, &index, &server)?;
            }
            BaseClient::Zmf(c) => {
                let server = BiexZmfServer::new(staging.clone(), &prefix);
                c.setup(&mut fork, &index, &server)?;
            }
        }
        self.base_seeded = true;
        // Ship every staged pair.
        let mut items = Vec::new();
        for key in staging.keys_with_prefix(b"") {
            let value = staging.get(&key).unwrap_or_default();
            items.push(key);
            items.push(value);
        }
        let mut w = Writer::new();
        w.list(&items);
        Ok(Some(vec![CloudCall::new("kv/bulk_put", w.finish())]))
    }

    fn delete_document(
        &mut self,
        literals: &[(String, Value)],
        id: DocId,
    ) -> Result<Option<Vec<CloudCall>>, CoreError> {
        let kws = Self::keywords(literals);
        let mut calls = Vec::new();
        for kw in &kws {
            // Overlay retraction + tombstone (masks base entries too).
            calls.push(self.chain_update(kw, id, UpdateOp::Delete));
            calls.push(self.chain_update(&tomb_keyword(kw), id, UpdateOp::Add));
        }
        if self.variant == BiexVariant::TwoLev {
            for a in &kws {
                for b in &kws {
                    if a != b {
                        calls.push(self.chain_update(&pair_keyword(a, b), id, UpdateOp::Delete));
                    }
                }
            }
        }
        Ok(Some(calls))
    }

    fn eq_query(&mut self, field: &str, value: &Value) -> Result<Vec<CloudCall>, CoreError> {
        let dnf = vec![vec![(field.to_string(), value.clone())]];
        self.bool_query(&dnf)
    }

    fn eq_resolve(&self, field: &str, value: &Value, responses: &[Vec<u8>]) -> Result<Vec<DocId>, CoreError> {
        let dnf = vec![vec![(field.to_string(), value.clone())]];
        self.bool_resolve(&dnf, responses)
    }

    /// Per conjunction, in order: optional base search, the overlay chain
    /// searches, then the tombstone chain of the first keyword.
    fn bool_query(&mut self, dnf: &DnfLiterals) -> Result<Vec<CloudCall>, CoreError> {
        let mut calls = Vec::new();
        for conj in dnf {
            let singles = Self::conj_singles(conj);
            if singles.is_empty() {
                continue;
            }
            if self.base_seeded {
                let query = BiexQuery::conjunction(singles.clone());
                calls.push(CloudCall::new(self.route_base_search.clone(), self.base.search_token(&query)));
            }
            for kw in self.conj_keywords(conj) {
                calls.push(self.chain_search_call(&kw));
            }
            calls.push(self.chain_search_call(&tomb_keyword(&singles[0])));
        }
        Ok(calls)
    }

    fn bool_resolve(&self, dnf: &DnfLiterals, responses: &[Vec<u8>]) -> Result<Vec<DocId>, CoreError> {
        let mut union: Vec<DocId> = Vec::new();
        let mut cursor = 0usize;
        let take = |cursor: &mut usize| -> Result<&Vec<u8>, CoreError> {
            let r = responses.get(*cursor).ok_or(CoreError::Wire("biex response arity"))?;
            *cursor += 1;
            Ok(r)
        };
        for conj in dnf {
            let singles = Self::conj_singles(conj);
            if singles.is_empty() {
                continue;
            }
            let mut acc: Option<Vec<DocId>> = None;
            if self.base_seeded {
                let query = BiexQuery::conjunction(singles.clone());
                acc = Some(self.base.resolve(&query, take(&mut cursor)?)?);
            }
            let mut overlay_acc: Option<Vec<DocId>> = None;
            for kw in self.conj_keywords(conj) {
                let ids = self.resolve_overlay(&kw, take(&mut cursor)?)?;
                overlay_acc = Some(match overlay_acc {
                    None => ids,
                    Some(prev) => prev.into_iter().filter(|x| ids.contains(x)).collect(),
                });
            }
            let tombstones = self.resolve_overlay(&tomb_keyword(&singles[0]), take(&mut cursor)?)?;
            // conj result = (base ∪ overlay) \ tombstones
            let mut result = acc.unwrap_or_default();
            result.extend(overlay_acc.unwrap_or_default());
            result.retain(|id| !tombstones.contains(id));
            union.extend(result);
        }
        if cursor != responses.len() {
            return Err(CoreError::Wire("biex response arity"));
        }
        union.sort();
        union.dedup();
        Ok(union)
    }

    fn export_state(&self) -> Option<Vec<u8>> {
        let mut w = Writer::new();
        w.bytes(&self.overlay.export_state()).u8(self.base_seeded as u8);
        Some(w.finish())
    }

    fn import_state(&mut self, state: &[u8]) -> Result<(), CoreError> {
        let mut r = Reader::new(state);
        let overlay = r.bytes()?;
        self.overlay.import_state(&overlay)?;
        self.base_seeded = r.u8()? != 0;
        r.finish()?;
        Ok(())
    }
}

use rand::SeedableRng;

/// Cloud half: forward-private chains plus the static base structures,
/// per scope (shared by both variants; the variant name is in the route).
pub struct BiexCloud {
    kv: KvStore,
    variant: BiexVariant,
}

impl BiexCloud {
    /// Creates the handler for a variant over the cloud KV store.
    pub fn new(kv: KvStore, variant: BiexVariant) -> Self {
        BiexCloud { kv, variant }
    }

    fn chain_server(&self, scope: &str) -> MitraServer {
        let mut prefix = format!("t/{}/", self.variant.name()).into_bytes();
        prefix.extend_from_slice(scope.as_bytes());
        prefix.push(b'/');
        MitraServer::new(self.kv.clone(), &prefix)
    }

    fn base_prefix(&self, scope: &str) -> Vec<u8> {
        format!("t/{}/{}/b/", self.variant.name(), scope).into_bytes()
    }
}

impl CloudTactic for BiexCloud {
    fn name(&self) -> &'static str {
        self.variant.name()
    }

    fn handle(&self, scope: &str, op: &str, payload: &[u8]) -> Result<Vec<u8>, CoreError> {
        match op {
            "update" => {
                let token = MitraUpdateToken::decode(payload)?;
                self.chain_server(scope).apply_update(&token);
                Ok(Vec::new())
            }
            "search" => {
                let token = MitraSearchToken::decode(payload)?;
                let values = self.chain_server(scope).search(&token);
                let mut w = Writer::new();
                w.list(&values);
                Ok(w.finish())
            }
            "base_search" => {
                let prefix = self.base_prefix(scope);
                match self.variant {
                    BiexVariant::TwoLev => {
                        let token = Biex2LevToken::decode(payload)?;
                        let server = Biex2LevServer::new(self.kv.clone(), &prefix);
                        Ok(encode_2lev_response(&server.search(&token)?))
                    }
                    BiexVariant::Zmf => {
                        let token = BiexZmfToken::decode(payload)?;
                        let server = BiexZmfServer::new(self.kv.clone(), &prefix);
                        Ok(encode_zmf_response(&server.search(&token)?))
                    }
                }
            }
            other => Err(CoreError::UnsupportedOperation(format!("biex cloud op {other}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(variant: BiexVariant) -> (BiexTactic, BiexCloud, rand::rngs::StdRng) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(13);
        let ctx = TacticContext {
            application: "app".into(),
            schema: "obs".into(),
            scope: "__bool__".into(),
            kms: datablinder_kms::Kms::generate(&mut rng),
        };
        let gw = BiexTactic::build(&ctx, variant).unwrap();
        (gw, BiexCloud::new(KvStore::new(), variant), rng)
    }

    fn run(cloud: &BiexCloud, call: &CloudCall) -> Vec<u8> {
        if call.route == "kv/bulk_put" {
            // Emulate the cloud engine's generic bulk-put route.
            let mut r = Reader::new(&call.payload);
            let items = r.list().unwrap();
            for kv in items.chunks(2) {
                cloud.kv.set(&kv[0], &kv[1]);
            }
            return Vec::new();
        }
        let parts: Vec<&str> = call.route.split('/').collect();
        cloud.handle(parts[2], parts[3], &call.payload).unwrap()
    }

    fn lits(pairs: &[(&str, &str)]) -> Vec<(String, Value)> {
        pairs.iter().map(|(f, v)| (f.to_string(), Value::from(*v))).collect()
    }

    fn insert(
        gw: &mut BiexTactic,
        cloud: &BiexCloud,
        rng: &mut rand::rngs::StdRng,
        literals: &[(String, Value)],
        id: DocId,
    ) {
        let calls = gw.protect_document(rng, literals, id).unwrap().unwrap();
        for c in &calls {
            run(cloud, c);
        }
    }

    fn query(gw: &mut BiexTactic, cloud: &BiexCloud, dnf: &DnfLiterals) -> Vec<DocId> {
        let calls = gw.bool_query(dnf).unwrap();
        let responses: Vec<Vec<u8>> = calls.iter().map(|c| run(cloud, c)).collect();
        gw.bool_resolve(dnf, &responses).unwrap()
    }

    fn scenario(variant: BiexVariant) {
        let (mut gw, cloud, mut rng) = setup(variant);
        // doc1: status=final, code=glucose; doc2: status=final, code=insulin;
        // doc3: status=draft, code=glucose.
        insert(&mut gw, &cloud, &mut rng, &lits(&[("status", "final"), ("code", "glucose")]), DocId([1; 16]));
        insert(&mut gw, &cloud, &mut rng, &lits(&[("status", "final"), ("code", "insulin")]), DocId([2; 16]));
        insert(&mut gw, &cloud, &mut rng, &lits(&[("status", "draft"), ("code", "glucose")]), DocId([3; 16]));

        // Single keyword (equality through the boolean tactic).
        let dnf = vec![lits(&[("status", "final")])];
        assert_eq!(query(&mut gw, &cloud, &dnf), vec![DocId([1; 16]), DocId([2; 16])]);

        // Conjunction across fields.
        let dnf = vec![lits(&[("status", "final"), ("code", "glucose")])];
        assert_eq!(query(&mut gw, &cloud, &dnf), vec![DocId([1; 16])]);

        // Disjunction of conjunctions.
        let dnf = vec![lits(&[("status", "final"), ("code", "glucose")]), lits(&[("status", "draft")])];
        assert_eq!(query(&mut gw, &cloud, &dnf), vec![DocId([1; 16]), DocId([3; 16])]);

        // Empty result.
        let dnf = vec![lits(&[("status", "draft"), ("code", "insulin")])];
        assert_eq!(query(&mut gw, &cloud, &dnf), vec![]);

        // Delete doc1 and requery.
        let calls =
            gw.delete_document(&lits(&[("status", "final"), ("code", "glucose")]), DocId([1; 16])).unwrap().unwrap();
        for c in &calls {
            run(&cloud, c);
        }
        let dnf = vec![lits(&[("status", "final"), ("code", "glucose")])];
        assert_eq!(query(&mut gw, &cloud, &dnf), vec![]);
    }

    #[test]
    fn twolev_boolean_scenario() {
        scenario(BiexVariant::TwoLev);
    }

    #[test]
    fn zmf_boolean_scenario() {
        scenario(BiexVariant::Zmf);
    }

    fn hybrid_scenario(variant: BiexVariant) {
        let (mut gw, cloud, mut rng) = setup(variant);
        // Seed a static base with two documents.
        let entries = vec![
            (lits(&[("status", "final"), ("code", "glucose")]), DocId([1; 16])),
            (lits(&[("status", "final"), ("code", "insulin")]), DocId([2; 16])),
        ];
        let calls = gw.bulk_index(&mut rng, &entries).unwrap().unwrap();
        for c in &calls {
            run(&cloud, c);
        }
        assert!(gw.has_base());

        // Base-only query.
        let dnf = vec![lits(&[("status", "final"), ("code", "glucose")])];
        assert_eq!(query(&mut gw, &cloud, &dnf), vec![DocId([1; 16])]);

        // Dynamic insert after the migration: results merge base + overlay.
        insert(&mut gw, &cloud, &mut rng, &lits(&[("status", "final"), ("code", "glucose")]), DocId([3; 16]));
        let dnf = vec![lits(&[("status", "final"), ("code", "glucose")])];
        assert_eq!(query(&mut gw, &cloud, &dnf), vec![DocId([1; 16]), DocId([3; 16])]);
        let dnf = vec![lits(&[("status", "final")])];
        assert_eq!(query(&mut gw, &cloud, &dnf), vec![DocId([1; 16]), DocId([2; 16]), DocId([3; 16])]);

        // Deleting a *seeded* document masks it via tombstones even though
        // the static base is immutable.
        let calls =
            gw.delete_document(&lits(&[("status", "final"), ("code", "glucose")]), DocId([1; 16])).unwrap().unwrap();
        for c in &calls {
            run(&cloud, c);
        }
        let dnf = vec![lits(&[("status", "final"), ("code", "glucose")])];
        assert_eq!(query(&mut gw, &cloud, &dnf), vec![DocId([3; 16])]);
        // And deleting an overlay document works the same way.
        let calls =
            gw.delete_document(&lits(&[("status", "final"), ("code", "glucose")]), DocId([3; 16])).unwrap().unwrap();
        for c in &calls {
            run(&cloud, c);
        }
        let dnf = vec![lits(&[("status", "final")])];
        assert_eq!(query(&mut gw, &cloud, &dnf), vec![DocId([2; 16])]);
    }

    #[test]
    fn twolev_hybrid_base_plus_overlay() {
        hybrid_scenario(BiexVariant::TwoLev);
    }

    #[test]
    fn zmf_hybrid_base_plus_overlay() {
        hybrid_scenario(BiexVariant::Zmf);
    }

    #[test]
    fn read_vs_space_tradeoff() {
        // Same workload: 2lev issues strictly more index updates (pairs).
        let (mut g1, c1, mut r1) = setup(BiexVariant::TwoLev);
        let (mut g2, c2, mut r2) = setup(BiexVariant::Zmf);
        let l = lits(&[("a", "1"), ("b", "2"), ("c", "3")]);
        let calls1 = g1.protect_document(&mut r1, &l, DocId([1; 16])).unwrap().unwrap();
        let calls2 = g2.protect_document(&mut r2, &l, DocId([1; 16])).unwrap().unwrap();
        assert_eq!(calls1.len(), 3 + 6, "3 singles + 6 ordered pairs");
        assert_eq!(calls2.len(), 3, "singles only");
        // But 2lev conjunction queries need fewer chain fetches
        // (m-1 pairs + 1 tombstone vs m singles + 1 tombstone).
        let dnf = vec![lits(&[("a", "1"), ("b", "2"), ("c", "3")])];
        for c in &calls1 {
            run(&c1, c);
        }
        for c in &calls2 {
            run(&c2, c);
        }
        assert_eq!(g1.bool_query(&dnf).unwrap().len(), 3);
        assert_eq!(g2.bool_query(&dnf).unwrap().len(), 4);
    }

    #[test]
    fn eq_rides_bool_path() {
        let (mut gw, cloud, mut rng) = setup(BiexVariant::TwoLev);
        insert(&mut gw, &cloud, &mut rng, &lits(&[("status", "final")]), DocId([5; 16]));
        let calls = gw.eq_query("status", &Value::from("final")).unwrap();
        let responses: Vec<Vec<u8>> = calls.iter().map(|c| run(&cloud, c)).collect();
        let ids = gw.eq_resolve("status", &Value::from("final"), &responses).unwrap();
        assert_eq!(ids, vec![DocId([5; 16])]);
    }

    #[test]
    fn duplicate_literals_collapse() {
        let (mut gw, cloud, mut rng) = setup(BiexVariant::TwoLev);
        insert(&mut gw, &cloud, &mut rng, &lits(&[("status", "final")]), DocId([1; 16]));
        // "status=final AND status=final" must behave like a single literal.
        let dnf = vec![lits(&[("status", "final"), ("status", "final")])];
        assert_eq!(query(&mut gw, &cloud, &dnf), vec![DocId([1; 16])]);
    }

    #[test]
    fn resolve_arity_enforced() {
        let (gw, _, _) = setup(BiexVariant::TwoLev);
        let dnf = vec![lits(&[("a", "1"), ("b", "2")])];
        assert!(gw.bool_resolve(&dnf, &[]).is_err());
        // Trailing responses also rejected.
        assert!(gw.bool_resolve(&vec![], &[vec![]]).is_err());
    }

    #[test]
    fn state_roundtrip_preserves_base_flag() {
        let (mut gw, cloud, mut rng) = setup(BiexVariant::TwoLev);
        let entries = vec![(lits(&[("s", "v")]), DocId([1; 16]))];
        for c in gw.bulk_index(&mut rng, &entries).unwrap().unwrap() {
            run(&cloud, &c);
        }
        let state = gw.export_state().unwrap();
        let (mut gw2, _, _) = setup(BiexVariant::TwoLev);
        assert!(!gw2.has_base());
        gw2.import_state(&state).unwrap();
        assert!(gw2.has_base());
        // Queries through the restored client still see the base.
        let dnf = vec![lits(&[("s", "v")])];
        assert_eq!(query(&mut gw2, &cloud, &dnf), vec![DocId([1; 16])]);
    }
}
