//! The DET tactic adapter: deterministic encryption, class 4.
//!
//! Legacy-friendly in the CryptDB sense: the cloud document store can
//! index, equality-match and boolean-combine the ciphertexts directly, so
//! equality and boolean search ride the generic `doc/find_ids_*` routes
//! with no tactic-specific cloud component.

use datablinder_docstore::{Document, Value};
use datablinder_sse::det::DetCipher;
use datablinder_sse::DocId;
use rand::RngCore;

use super::{decode_ids, shadow_field, TacticContext};
use crate::cloudproto::{FindIdsDnf, FindIdsEq};
use crate::error::CoreError;
use crate::model::*;
use crate::spi::{CloudCall, DnfLiterals, GatewayTactic, ProtectItem, ProtectedField};
use crate::wire::{canonical_bytes, decode_value};

/// Descriptor for DET (Table 2: class 4, leakage *Equalities*,
/// 9 gateway / 6 cloud interfaces).
pub fn descriptor() -> TacticDescriptor {
    TacticDescriptor {
        name: "det".into(),
        family: "deterministic encryption".into(),
        operations: vec![
            OpProfile { op: TacticOp::Init, leakage: LeakageLevel::Structure, metrics: PerfMetrics::new(1, 0, 1) },
            OpProfile { op: TacticOp::Update, leakage: LeakageLevel::Equalities, metrics: PerfMetrics::new(1, 1, 1) },
            OpProfile { op: TacticOp::EqQuery, leakage: LeakageLevel::Equalities, metrics: PerfMetrics::new(1, 1, 1) },
            OpProfile {
                op: TacticOp::BoolQuery,
                leakage: LeakageLevel::Equalities,
                metrics: PerfMetrics::new(1, 1, 1),
            },
        ],
        serves: vec![FieldOp::Insert, FieldOp::Equality, FieldOp::Boolean],
        serves_agg: vec![],
        gateway_interfaces: 9,
        cloud_interfaces: 6,
        gateway_state: false,
    }
}

/// Gateway half of DET.
pub struct DetTactic {
    cipher: DetCipher,
    collection: String,
}

impl DetTactic {
    /// Builds from context.
    ///
    /// # Errors
    ///
    /// Key-schedule failures.
    pub fn build(ctx: &TacticContext) -> Result<Self, CoreError> {
        let key = ctx.kms.key_for(&ctx.key_scope("det"));
        Ok(DetTactic { cipher: DetCipher::new(&key)?, collection: ctx.schema.clone() })
    }

    /// The stored literal for a plaintext value — used by the engine to
    /// compose cross-field boolean filters over DET fields.
    pub fn stored_literal(&self, field: &str, value: &Value) -> (String, Value) {
        (shadow_field(field, "det"), Value::Bytes(self.cipher.search_token(&canonical_bytes(value))))
    }
}

impl GatewayTactic for DetTactic {
    fn descriptor(&self) -> TacticDescriptor {
        descriptor()
    }

    fn protect(
        &mut self,
        _rng: &mut dyn RngCore,
        field: &str,
        value: &Value,
        _id: DocId,
    ) -> Result<ProtectedField, CoreError> {
        let ct = self.cipher.encrypt(&canonical_bytes(value));
        Ok(ProtectedField { stored: vec![(shadow_field(field, "det"), Value::Bytes(ct))], index_calls: Vec::new() })
    }

    fn protect_many(&mut self, items: &mut [ProtectItem<'_>]) -> Vec<Result<ProtectedField, CoreError>> {
        // DET ignores the per-item RNGs entirely (deterministic), so the
        // batch path is trivially byte-identical to the sequential one.
        let plains: Vec<Vec<u8>> = items.iter().map(|it| canonical_bytes(it.value)).collect();
        let refs: Vec<&[u8]> = plains.iter().map(|p| p.as_slice()).collect();
        let cts = self.cipher.encrypt_many(&refs);
        items
            .iter()
            .zip(cts)
            .map(|(it, ct)| {
                Ok(ProtectedField {
                    stored: vec![(shadow_field(it.field, "det"), Value::Bytes(ct))],
                    index_calls: Vec::new(),
                })
            })
            .collect()
    }

    fn recover(&self, field: &str, stored: &Document) -> Result<Option<Value>, CoreError> {
        let Some(Value::Bytes(ct)) = stored.get(&shadow_field(field, "det")) else {
            return Ok(None);
        };
        let plain = self.cipher.decrypt(ct)?;
        let mut slice = plain.as_slice();
        Ok(Some(decode_value(&mut slice)?))
    }

    fn eq_query(&mut self, field: &str, value: &Value) -> Result<Vec<CloudCall>, CoreError> {
        let (f, v) = self.stored_literal(field, value);
        let req = FindIdsEq { collection: self.collection.clone(), field: f, value: v };
        Ok(vec![CloudCall::new("doc/find_ids_eq", req.encode())])
    }

    fn eq_resolve(&self, _field: &str, _value: &Value, responses: &[Vec<u8>]) -> Result<Vec<DocId>, CoreError> {
        let [response] = responses else {
            return Err(CoreError::Wire("det eq response arity"));
        };
        decode_ids(response)
    }

    fn bool_query(&mut self, dnf: &DnfLiterals) -> Result<Vec<CloudCall>, CoreError> {
        let stored_dnf = dnf.iter().map(|conj| conj.iter().map(|(f, v)| self.stored_literal(f, v)).collect()).collect();
        let req = FindIdsDnf { collection: self.collection.clone(), dnf: stored_dnf };
        Ok(vec![CloudCall::new("doc/find_ids_dnf", req.encode())])
    }

    fn bool_resolve(&self, _dnf: &DnfLiterals, responses: &[Vec<u8>]) -> Result<Vec<DocId>, CoreError> {
        let [response] = responses else {
            return Err(CoreError::Wire("det bool response arity"));
        };
        decode_ids(response)
    }

    fn stored_literal(&self, field: &str, value: &Value) -> Option<(String, Value)> {
        Some(DetTactic::stored_literal(self, field, value))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn ctx() -> TacticContext {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        TacticContext {
            application: "app".into(),
            schema: "obs".into(),
            scope: "effective".into(),
            kms: datablinder_kms::Kms::generate(&mut rng),
        }
    }

    #[test]
    fn protect_deterministic_and_recoverable() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let mut t = DetTactic::build(&ctx()).unwrap();
        let a = t.protect(&mut rng, "effective", &Value::from(1359966610i64), DocId([1; 16])).unwrap();
        let b = t.protect(&mut rng, "effective", &Value::from(1359966610i64), DocId([2; 16])).unwrap();
        assert_eq!(a.stored, b.stored, "determinism enables cloud equality");

        let mut doc = Document::new("x");
        doc.set(a.stored[0].0.clone(), a.stored[0].1.clone());
        assert_eq!(t.recover("effective", &doc).unwrap(), Some(Value::from(1359966610i64)));
    }

    #[test]
    fn protect_many_matches_sequential_protect() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let mut t = DetTactic::build(&ctx()).unwrap();
        let values: Vec<Value> = (0..4).map(|i| Value::from(i as i64 * 1000)).collect();
        let sequential: Vec<_> =
            values.iter().map(|v| t.protect(&mut rng, "effective", v, DocId([1; 16])).unwrap()).collect();
        let mut rngs: Vec<_> = (0..values.len()).map(|i| rand::rngs::StdRng::seed_from_u64(i as u64)).collect();
        let mut items: Vec<ProtectItem<'_>> = rngs
            .iter_mut()
            .zip(&values)
            .map(|(rng, value)| ProtectItem { rng, field: "effective", value, id: DocId([1; 16]) })
            .collect();
        let batched = t.protect_many(&mut items);
        for (s, b) in sequential.iter().zip(&batched) {
            assert_eq!(s.stored, b.as_ref().unwrap().stored);
        }
    }

    #[test]
    fn eq_query_targets_shadow_field() {
        let mut t = DetTactic::build(&ctx()).unwrap();
        let calls = t.eq_query("effective", &Value::from(5i64)).unwrap();
        assert_eq!(calls.len(), 1);
        assert_eq!(calls[0].route, "doc/find_ids_eq");
        let req = FindIdsEq::decode(&calls[0].payload).unwrap();
        assert_eq!(req.field, "effective__det");
        assert_eq!(req.collection, "obs");
    }

    #[test]
    fn bool_query_rewrites_literals() {
        let mut t = DetTactic::build(&ctx()).unwrap();
        let dnf =
            vec![vec![("status".to_string(), Value::from("final")), ("code".to_string(), Value::from("glucose"))]];
        let calls = t.bool_query(&dnf).unwrap();
        let req = FindIdsDnf::decode(&calls[0].payload).unwrap();
        assert_eq!(req.dnf[0][0].0, "status__det");
        assert_eq!(req.dnf[0][1].0, "code__det");
        assert!(matches!(req.dnf[0][0].1, Value::Bytes(_)));
    }

    #[test]
    fn resolve_arity_checked() {
        let t = DetTactic::build(&ctx()).unwrap();
        assert!(t.eq_resolve("f", &Value::Null, &[]).is_err());
        assert!(t.eq_resolve("f", &Value::Null, &[vec![], vec![]]).is_err());
    }
}
