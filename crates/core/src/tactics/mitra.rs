//! The Mitra tactic adapter: forward/backward-private equality search,
//! class 2.

use datablinder_docstore::Value;
use datablinder_kvstore::KvStore;
use datablinder_sse::encoding::{Reader, Writer};
use datablinder_sse::mitra::{MitraClient, MitraSearchToken, MitraServer, MitraUpdateToken};
use datablinder_sse::{DocId, UpdateOp};
use rand::RngCore;

use super::TacticContext;
use crate::error::CoreError;
use crate::model::*;
use crate::spi::{CloudCall, CloudTactic, GatewayTactic, ProtectedField};

/// Descriptor for Mitra (Table 2: class 2, leakage *Identifiers*,
/// 7 gateway / 5 cloud interfaces, challenge "local storage").
pub fn descriptor() -> TacticDescriptor {
    TacticDescriptor {
        name: "mitra".into(),
        family: "SSE (forward & backward private)".into(),
        operations: vec![
            OpProfile { op: TacticOp::Init, leakage: LeakageLevel::Structure, metrics: PerfMetrics::new(1, 0, 2) },
            OpProfile { op: TacticOp::Update, leakage: LeakageLevel::Structure, metrics: PerfMetrics::new(2, 1, 2) },
            OpProfile { op: TacticOp::EqQuery, leakage: LeakageLevel::Identifiers, metrics: PerfMetrics::new(2, 1, 2) },
        ],
        serves: vec![FieldOp::Insert, FieldOp::Equality],
        serves_agg: vec![],
        gateway_interfaces: 7,
        cloud_interfaces: 5,
        gateway_state: true,
    }
}

/// Gateway half of Mitra.
pub struct MitraTactic {
    client: MitraClient,
    route_update: String,
    route_search: String,
}

impl MitraTactic {
    /// Builds from context (restoring exported state is the engine's job
    /// via [`GatewayTactic::import_state`]).
    pub fn build(ctx: &TacticContext) -> Result<Self, CoreError> {
        let key = ctx.kms.key_for(&ctx.key_scope("mitra"));
        Ok(MitraTactic {
            client: MitraClient::new(&key),
            route_update: ctx.route("mitra", "update"),
            route_search: ctx.route("mitra", "search"),
        })
    }

    fn keyword(field: &str, value: &Value) -> Vec<u8> {
        crate::wire::field_keyword(field, value)
    }
}

impl GatewayTactic for MitraTactic {
    fn descriptor(&self) -> TacticDescriptor {
        descriptor()
    }

    fn protect(
        &mut self,
        _rng: &mut dyn RngCore,
        field: &str,
        value: &Value,
        id: DocId,
    ) -> Result<ProtectedField, CoreError> {
        let token = self.client.update_token(&Self::keyword(field, value), id, UpdateOp::Add);
        Ok(ProtectedField {
            stored: Vec::new(),
            index_calls: vec![CloudCall::new(self.route_update.clone(), token.encode())],
        })
    }

    fn delete(&mut self, field: &str, value: &Value, id: DocId) -> Result<Vec<CloudCall>, CoreError> {
        let token = self.client.update_token(&Self::keyword(field, value), id, UpdateOp::Delete);
        Ok(vec![CloudCall::new(self.route_update.clone(), token.encode())])
    }

    fn eq_query(&mut self, field: &str, value: &Value) -> Result<Vec<CloudCall>, CoreError> {
        let token = self.client.search_token(&Self::keyword(field, value));
        Ok(vec![CloudCall::new(self.route_search.clone(), token.encode())])
    }

    fn eq_resolve(&self, field: &str, value: &Value, responses: &[Vec<u8>]) -> Result<Vec<DocId>, CoreError> {
        let [response] = responses else {
            return Err(CoreError::Wire("mitra response arity"));
        };
        let mut r = Reader::new(response);
        let values = r.list()?;
        r.finish()?;
        Ok(self.client.resolve(&Self::keyword(field, value), &values)?)
    }

    fn export_state(&self) -> Option<Vec<u8>> {
        Some(self.client.export_state())
    }

    fn import_state(&mut self, state: &[u8]) -> Result<(), CoreError> {
        self.client.import_state(state)?;
        Ok(())
    }
}

/// Cloud half of Mitra: an opaque encrypted map per scope.
pub struct MitraCloud {
    kv: KvStore,
}

impl MitraCloud {
    /// Creates the handler over the cloud KV store.
    pub fn new(kv: KvStore) -> Self {
        MitraCloud { kv }
    }

    fn server(&self, scope: &str) -> MitraServer {
        let mut prefix = b"t/mitra/".to_vec();
        prefix.extend_from_slice(scope.as_bytes());
        prefix.push(b'/');
        MitraServer::new(self.kv.clone(), &prefix)
    }
}

impl CloudTactic for MitraCloud {
    fn name(&self) -> &'static str {
        "mitra"
    }

    fn handle(&self, scope: &str, op: &str, payload: &[u8]) -> Result<Vec<u8>, CoreError> {
        let server = self.server(scope);
        match op {
            "update" => {
                let token = MitraUpdateToken::decode(payload)?;
                server.apply_update(&token);
                Ok(Vec::new())
            }
            "search" => {
                let token = MitraSearchToken::decode(payload)?;
                let values = server.search(&token);
                let mut w = Writer::new();
                w.list(&values);
                Ok(w.finish())
            }
            other => Err(CoreError::UnsupportedOperation(format!("mitra cloud op {other}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn setup() -> (MitraTactic, MitraCloud) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let ctx = TacticContext {
            application: "app".into(),
            schema: "obs".into(),
            scope: "subject".into(),
            kms: datablinder_kms::Kms::generate(&mut rng),
        };
        (MitraTactic::build(&ctx).unwrap(), MitraCloud::new(KvStore::new()))
    }

    fn run(cloud: &MitraCloud, call: &CloudCall) -> Vec<u8> {
        // route format: tactic/mitra/<scope>/<op>
        let parts: Vec<&str> = call.route.split('/').collect();
        cloud.handle(parts[2], parts[3], &call.payload).unwrap()
    }

    #[test]
    fn insert_search_delete_via_spi() {
        let (mut gw, cloud) = setup();
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let v = Value::from("John Doe");

        for n in 1..=3u8 {
            let p = gw.protect(&mut rng, "subject", &v, DocId([n; 16])).unwrap();
            assert!(p.stored.is_empty(), "mitra stores nothing in the document");
            assert_eq!(p.index_calls.len(), 1);
            run(&cloud, &p.index_calls[0]);
        }

        let calls = gw.eq_query("subject", &v).unwrap();
        let resp = run(&cloud, &calls[0]);
        let ids = gw.eq_resolve("subject", &v, &[resp]).unwrap();
        assert_eq!(ids, vec![DocId([1; 16]), DocId([2; 16]), DocId([3; 16])]);

        // Delete one and search again.
        for call in gw.delete("subject", &v, DocId([2; 16])).unwrap() {
            run(&cloud, &call);
        }
        let calls = gw.eq_query("subject", &v).unwrap();
        let resp = run(&cloud, &calls[0]);
        let ids = gw.eq_resolve("subject", &v, &[resp]).unwrap();
        assert_eq!(ids, vec![DocId([1; 16]), DocId([3; 16])]);
    }

    #[test]
    fn scopes_isolate() {
        let (mut gw, cloud) = setup();
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let p = gw.protect(&mut rng, "subject", &Value::from("x"), DocId([1; 16])).unwrap();
        run(&cloud, &p.index_calls[0]);
        // A different scope sees nothing even for crafted routes.
        let token = MitraSearchToken { addrs: vec![[0u8; 32]] };
        let out = cloud.handle("other", "search", &token.encode()).unwrap();
        let mut r = Reader::new(&out);
        let values = r.list().unwrap();
        assert_eq!(values, vec![Vec::<u8>::new()]);
    }

    #[test]
    fn state_roundtrip_through_spi() {
        let (mut gw, _) = setup();
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        gw.protect(&mut rng, "subject", &Value::from("x"), DocId([1; 16])).unwrap();
        let state = gw.export_state().unwrap();
        let (mut gw2, _) = setup();
        gw2.import_state(&state).unwrap();
        assert_eq!(gw2.export_state().unwrap(), state);
    }

    #[test]
    fn unknown_cloud_op_rejected() {
        let (_, cloud) = setup();
        assert!(cloud.handle("s", "nope", &[]).is_err());
    }
}
