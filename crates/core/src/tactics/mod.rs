//! Concrete tactic implementations behind the SPI ("the tactics SPI
//! subsystem", Fig. 4) — one adapter per scheme of Table 2, wiring the
//! `datablinder-sse`/`-ope`/`-ore`/`-paillier` schemes into the gateway
//! and cloud halves of the middleware.

pub mod biex;
pub mod det;
pub mod mitra;
pub mod ope;
pub mod ore;
pub mod paillier;
pub mod rnd;
pub mod sophos;

use datablinder_docstore::Value;
use datablinder_sse::DocId;

use crate::error::CoreError;

/// Context handed to gateway tactic factories: identifies the key scope
/// and the cloud collection the tactic serves.
#[derive(Debug, Clone)]
pub struct TacticContext {
    /// Owning application (KMS tenant).
    pub application: String,
    /// Schema / collection name.
    pub schema: String,
    /// Scope within the schema: a field name, or `__bool__` for the shared
    /// cross-field boolean index.
    pub scope: String,
    /// Key management handle.
    pub kms: datablinder_kms::Kms,
}

impl TacticContext {
    /// The KMS key scope for a tactic name.
    pub fn key_scope(&self, tactic: &str) -> datablinder_kms::KeyScope {
        datablinder_kms::KeyScope::new(
            self.application.clone(),
            format!("{}.{}", self.schema, self.scope),
            tactic.to_string(),
        )
    }

    /// The cloud route for a tactic operation in this scope.
    pub fn route(&self, tactic: &str, op: &str) -> String {
        format!("tactic/{tactic}/{}:{}/{op}", self.schema, self.scope)
    }
}

/// The shadow-field name a tactic stores its ciphertext under.
pub fn shadow_field(field: &str, suffix: &str) -> String {
    format!("{field}__{suffix}")
}

/// Encodes a list of [`DocId`]s.
pub fn encode_ids(ids: &[DocId]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + ids.len() * 16);
    out.extend_from_slice(&(ids.len() as u32).to_be_bytes());
    for id in ids {
        out.extend_from_slice(&id.0);
    }
    out
}

/// Decodes a list of [`DocId`]s.
///
/// # Errors
///
/// [`CoreError::Wire`] on malformed input.
pub fn decode_ids(buf: &[u8]) -> Result<Vec<DocId>, CoreError> {
    if buf.len() < 4 {
        return Err(CoreError::Wire("ids header"));
    }
    let n = u32::from_be_bytes(buf[..4].try_into().unwrap()) as usize;
    if buf.len() != 4 + n * 16 {
        return Err(CoreError::Wire("ids body"));
    }
    Ok(buf[4..]
        .chunks(16)
        .map(|c| {
            let mut id = [0u8; 16];
            id.copy_from_slice(c);
            DocId(id)
        })
        .collect())
}

/// Maps a numeric [`Value`] to an order-preserving `u64` (for OPE/ORE):
/// sign-flipped two's complement for integers, IEEE-754 total-order trick
/// for floats.
///
/// # Errors
///
/// [`CoreError::UnsupportedOperation`] for non-numeric values.
pub fn orderable_u64(v: &Value) -> Result<u64, CoreError> {
    match v {
        Value::I64(i) => Ok((*i as u64) ^ (1 << 63)),
        Value::F64(f) => {
            let bits = f.to_bits();
            // Standard order-preserving transform for IEEE-754 doubles.
            Ok(if bits >> 63 == 0 { bits ^ (1 << 63) } else { !bits })
        }
        other => Err(CoreError::UnsupportedOperation(format!(
            "range/order tactics need numeric values, got {}",
            other.type_name()
        ))),
    }
}

/// Fixed-point scale for homomorphic aggregation of floats.
pub const AGG_SCALE: f64 = 1000.0;

/// Maps a numeric [`Value`] to a scaled signed integer for Paillier.
///
/// # Errors
///
/// [`CoreError::UnsupportedOperation`] for non-numeric values.
pub fn aggregable_i64(v: &Value) -> Result<i64, CoreError> {
    match v {
        Value::I64(i) => Ok(i.saturating_mul(AGG_SCALE as i64)),
        Value::F64(f) => Ok((f * AGG_SCALE).round() as i64),
        other => {
            Err(CoreError::UnsupportedOperation(format!("aggregates need numeric values, got {}", other.type_name())))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_roundtrip() {
        let ids = vec![DocId([1; 16]), DocId([2; 16])];
        assert_eq!(decode_ids(&encode_ids(&ids)).unwrap(), ids);
        assert_eq!(decode_ids(&encode_ids(&[])).unwrap(), vec![]);
        assert!(decode_ids(&[0, 0]).is_err());
        assert!(decode_ids(&[0, 0, 0, 2, 1]).is_err());
    }

    #[test]
    fn orderable_u64_preserves_order() {
        let ints = [-1000i64, -1, 0, 1, 1000, i64::MIN, i64::MAX];
        let mut pairs: Vec<(i64, u64)> = ints.iter().map(|&i| (i, orderable_u64(&Value::I64(i)).unwrap())).collect();
        pairs.sort_by_key(|p| p.0);
        for w in pairs.windows(2) {
            assert!(w[0].1 < w[1].1, "{} vs {}", w[0].0, w[1].0);
        }
        let floats = [-1.5f64, -0.0, 0.0, 0.1, 2.5, 1e10, -1e10];
        let mut fpairs: Vec<(f64, u64)> = floats.iter().map(|&f| (f, orderable_u64(&Value::F64(f)).unwrap())).collect();
        fpairs.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        for w in fpairs.windows(2) {
            assert!(w[0].1 <= w[1].1, "{} vs {}", w[0].0, w[1].0);
        }
    }

    #[test]
    fn orderable_rejects_strings() {
        assert!(orderable_u64(&Value::from("x")).is_err());
    }

    #[test]
    fn aggregable_scaling() {
        assert_eq!(aggregable_i64(&Value::I64(5)).unwrap(), 5000);
        assert_eq!(aggregable_i64(&Value::F64(6.3)).unwrap(), 6300);
        assert_eq!(aggregable_i64(&Value::F64(-2.5)).unwrap(), -2500);
        assert!(aggregable_i64(&Value::from("x")).is_err());
    }

    #[test]
    fn context_routes_and_scopes() {
        let mut rng = rand::rngs::mock::StepRng::new(0, 1);
        let ctx = TacticContext {
            application: "ehealth".into(),
            schema: "observation".into(),
            scope: "status".into(),
            kms: datablinder_kms::Kms::generate(&mut rng),
        };
        assert_eq!(ctx.route("mitra", "search"), "tactic/mitra/observation:status/search");
        let ks = ctx.key_scope("mitra");
        assert_eq!(ks.field, "observation.status");
    }
}
