//! The OPE tactic adapter: order-preserving encryption, class 5.
//!
//! Like DET, legacy-friendly: the stored ciphertext is a big-endian `u128`
//! whose byte order equals plaintext order, so range queries ride the
//! generic `doc/find_ids_range` route against the document store's
//! secondary index — no tactic-specific cloud component.

use datablinder_docstore::{Document, Value};
use datablinder_ope::{Ope, OpeParams};
use datablinder_sse::DocId;
use rand::RngCore;

use super::{decode_ids, orderable_u64, shadow_field, TacticContext};
use crate::cloudproto::FindIdsRange;
use crate::error::CoreError;
use crate::model::*;
use crate::spi::{CloudCall, GatewayTactic, ProtectedField};

/// Descriptor for OPE (Table 2: class 5, leakage *Order*, 3/3 interfaces).
pub fn descriptor() -> TacticDescriptor {
    TacticDescriptor {
        name: "ope".into(),
        family: "order-preserving encryption".into(),
        operations: vec![
            OpProfile { op: TacticOp::Init, leakage: LeakageLevel::Structure, metrics: PerfMetrics::new(1, 0, 1) },
            OpProfile { op: TacticOp::Update, leakage: LeakageLevel::Order, metrics: PerfMetrics::new(2, 1, 1) },
            OpProfile { op: TacticOp::RangeQuery, leakage: LeakageLevel::Order, metrics: PerfMetrics::new(1, 1, 1) },
        ],
        serves: vec![FieldOp::Insert, FieldOp::Range],
        serves_agg: vec![],
        gateway_interfaces: 3,
        cloud_interfaces: 3,
        gateway_state: false,
    }
}

/// Gateway half of OPE.
pub struct OpeTactic {
    ope: Ope,
    collection: String,
}

impl OpeTactic {
    /// Builds from context.
    pub fn build(ctx: &TacticContext) -> Result<Self, CoreError> {
        let key = ctx.kms.key_for(&ctx.key_scope("ope"));
        Ok(OpeTactic { ope: Ope::new(key, OpeParams::default()), collection: ctx.schema.clone() })
    }

    fn ciphertext_bytes(&self, value: &Value) -> Result<Vec<u8>, CoreError> {
        let m = orderable_u64(value)?;
        Ok(self.ope.encrypt(m).to_be_bytes().to_vec())
    }
}

impl GatewayTactic for OpeTactic {
    fn descriptor(&self) -> TacticDescriptor {
        descriptor()
    }

    fn protect(
        &mut self,
        _rng: &mut dyn RngCore,
        field: &str,
        value: &Value,
        _id: DocId,
    ) -> Result<ProtectedField, CoreError> {
        let ct = self.ciphertext_bytes(value)?;
        Ok(ProtectedField { stored: vec![(shadow_field(field, "ope"), Value::Bytes(ct))], index_calls: Vec::new() })
    }

    fn range_query(&mut self, field: &str, lo: &Value, hi: &Value) -> Result<Vec<CloudCall>, CoreError> {
        let req = FindIdsRange {
            collection: self.collection.clone(),
            field: shadow_field(field, "ope"),
            lo: Value::Bytes(self.ciphertext_bytes(lo)?),
            hi: Value::Bytes(self.ciphertext_bytes(hi)?),
        };
        Ok(vec![CloudCall::new("doc/find_ids_range", req.encode())])
    }

    fn range_resolve(&self, responses: &[Vec<u8>]) -> Result<Vec<DocId>, CoreError> {
        let [response] = responses else {
            return Err(CoreError::Wire("ope range response arity"));
        };
        decode_ids(response)
    }

    fn recover(&self, field: &str, stored: &Document) -> Result<Option<Value>, CoreError> {
        // OPE is decryptable but lossy w.r.t. the original Value type
        // (everything is an orderable u64); the payload tactic (RND/DET)
        // owns recovery. Exposed only as a fallback for integer fields.
        let Some(Value::Bytes(ct)) = stored.get(&shadow_field(field, "ope")) else {
            return Ok(None);
        };
        if ct.len() != 16 {
            return Err(CoreError::Wire("ope ciphertext size"));
        }
        let c = u128::from_be_bytes(ct.as_slice().try_into().unwrap());
        match self.ope.decrypt(c) {
            Some(m) => Ok(Some(Value::I64((m ^ (1 << 63)) as i64))),
            None => Err(CoreError::Crypto("invalid OPE ciphertext".into())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn ctx() -> TacticContext {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        TacticContext {
            application: "app".into(),
            schema: "obs".into(),
            scope: "effective".into(),
            kms: datablinder_kms::Kms::generate(&mut rng),
        }
    }

    #[test]
    fn stored_bytes_are_order_preserving() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let mut t = OpeTactic::build(&ctx()).unwrap();
        let values = [-100i64, -1, 0, 1, 1359966610, i64::MAX];
        let mut cts: Vec<Vec<u8>> = Vec::new();
        for v in values {
            let p = t.protect(&mut rng, "effective", &Value::from(v), DocId([0; 16])).unwrap();
            let Value::Bytes(ct) = &p.stored[0].1 else { panic!() };
            cts.push(ct.clone());
        }
        for w in cts.windows(2) {
            assert!(w[0] < w[1], "byte order must follow numeric order");
        }
    }

    #[test]
    fn range_query_bounds_encrypt() {
        let mut t = OpeTactic::build(&ctx()).unwrap();
        let calls = t.range_query("effective", &Value::from(10i64), &Value::from(20i64)).unwrap();
        let req = FindIdsRange::decode(&calls[0].payload).unwrap();
        assert_eq!(req.field, "effective__ope");
        let (Value::Bytes(lo), Value::Bytes(hi)) = (&req.lo, &req.hi) else { panic!() };
        assert!(lo < hi);
    }

    #[test]
    fn recover_integer_roundtrip() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let mut t = OpeTactic::build(&ctx()).unwrap();
        let p = t.protect(&mut rng, "f", &Value::from(424242i64), DocId([0; 16])).unwrap();
        let mut doc = Document::new("x");
        doc.set(p.stored[0].0.clone(), p.stored[0].1.clone());
        assert_eq!(t.recover("f", &doc).unwrap(), Some(Value::from(424242i64)));
    }

    #[test]
    fn non_numeric_rejected() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let mut t = OpeTactic::build(&ctx()).unwrap();
        assert!(t.protect(&mut rng, "f", &Value::from("text"), DocId([0; 16])).is_err());
    }
}
