//! The ORE tactic adapter: order-revealing encryption (Lewi–Wu), class 5.
//!
//! Unlike OPE, ORE ciphertexts are not numerically comparable by the
//! document store — a dedicated cloud component scans the stored *right*
//! ciphertexts and evaluates the order against the query's *left*
//! ciphertexts. Slower per query (linear scan) but leaks order only for
//! compared pairs, not at rest.

use datablinder_docstore::Value;
use datablinder_kvstore::KvStore;
use datablinder_ore::{Comparison, LewiWuLeft, LewiWuOre, LewiWuRight};
use datablinder_sse::encoding::{Reader, Writer};
use datablinder_sse::DocId;
use rand::RngCore;

use super::{decode_ids, encode_ids, orderable_u64, TacticContext};
use crate::error::CoreError;
use crate::model::*;
use crate::spi::{CloudCall, CloudTactic, GatewayTactic, ProtectedField};

/// Descriptor for ORE (Table 2: class 5, leakage *Order*, 3/3 interfaces).
pub fn descriptor() -> TacticDescriptor {
    TacticDescriptor {
        name: "ore".into(),
        family: "order-revealing encryption".into(),
        operations: vec![
            OpProfile { op: TacticOp::Init, leakage: LeakageLevel::Structure, metrics: PerfMetrics::new(1, 0, 2) },
            OpProfile { op: TacticOp::Update, leakage: LeakageLevel::Structure, metrics: PerfMetrics::new(2, 1, 2) },
            // Order revealed only at query time, but worst case matches OPE.
            OpProfile { op: TacticOp::RangeQuery, leakage: LeakageLevel::Order, metrics: PerfMetrics::new(3, 1, 2) },
        ],
        serves: vec![FieldOp::Insert, FieldOp::Range],
        serves_agg: vec![],
        gateway_interfaces: 3,
        cloud_interfaces: 3,
        gateway_state: false,
    }
}

/// Gateway half of ORE.
pub struct OreTactic {
    ore: LewiWuOre,
    route_insert: String,
    route_range: String,
    route_delete: String,
}

impl OreTactic {
    /// Builds from context.
    pub fn build(ctx: &TacticContext) -> Result<Self, CoreError> {
        let key = ctx.kms.key_for(&ctx.key_scope("ore"));
        Ok(OreTactic {
            ore: LewiWuOre::new(key),
            route_insert: ctx.route("ore", "insert"),
            route_range: ctx.route("ore", "range"),
            route_delete: ctx.route("ore", "delete"),
        })
    }
}

impl GatewayTactic for OreTactic {
    fn descriptor(&self) -> TacticDescriptor {
        descriptor()
    }

    fn protect(
        &mut self,
        _rng: &mut dyn RngCore,
        _field: &str,
        value: &Value,
        id: DocId,
    ) -> Result<ProtectedField, CoreError> {
        let m = orderable_u64(value)?;
        let right = self.ore.encrypt_right(m);
        let mut w = Writer::new();
        w.bytes(&id.0).bytes(&right.to_bytes());
        Ok(ProtectedField {
            stored: Vec::new(),
            index_calls: vec![CloudCall::new(self.route_insert.clone(), w.finish())],
        })
    }

    fn delete(&mut self, _field: &str, _value: &Value, id: DocId) -> Result<Vec<CloudCall>, CoreError> {
        let mut w = Writer::new();
        w.bytes(&id.0);
        Ok(vec![CloudCall::new(self.route_delete.clone(), w.finish())])
    }

    fn range_query(&mut self, _field: &str, lo: &Value, hi: &Value) -> Result<Vec<CloudCall>, CoreError> {
        let lo = self.ore.encrypt_left(orderable_u64(lo)?);
        let hi = self.ore.encrypt_left(orderable_u64(hi)?);
        let mut w = Writer::new();
        w.bytes(&lo.to_bytes()).bytes(&hi.to_bytes());
        Ok(vec![CloudCall::new(self.route_range.clone(), w.finish())])
    }

    fn range_resolve(&self, responses: &[Vec<u8>]) -> Result<Vec<DocId>, CoreError> {
        let [response] = responses else {
            return Err(CoreError::Wire("ore range response arity"));
        };
        decode_ids(response)
    }
}

/// Cloud half of ORE: stores right ciphertexts per scope and evaluates
/// range predicates by comparison scans.
pub struct OreCloud {
    kv: KvStore,
}

impl OreCloud {
    /// Creates the handler over the cloud KV store.
    pub fn new(kv: KvStore) -> Self {
        OreCloud { kv }
    }

    fn hash_key(scope: &str) -> Vec<u8> {
        let mut k = b"t/ore/".to_vec();
        k.extend_from_slice(scope.as_bytes());
        k
    }
}

impl CloudTactic for OreCloud {
    fn name(&self) -> &'static str {
        "ore"
    }

    fn handle(&self, scope: &str, op: &str, payload: &[u8]) -> Result<Vec<u8>, CoreError> {
        let key = Self::hash_key(scope);
        match op {
            "insert" => {
                let mut r = Reader::new(payload);
                let id: [u8; 16] = r.array()?;
                let right = r.bytes()?;
                r.finish()?;
                // Validate before storing.
                LewiWuRight::from_bytes(&right).ok_or(CoreError::Wire("ore right ciphertext"))?;
                self.kv.hset(&key, &id, &right)?;
                Ok(Vec::new())
            }
            "delete" => {
                let mut r = Reader::new(payload);
                let id: [u8; 16] = r.array()?;
                r.finish()?;
                self.kv.hdel(&key, &id)?;
                Ok(Vec::new())
            }
            "range" => {
                let mut r = Reader::new(payload);
                let lo = LewiWuLeft::from_bytes(&r.bytes()?).ok_or(CoreError::Wire("ore left ciphertext"))?;
                let hi = LewiWuLeft::from_bytes(&r.bytes()?).ok_or(CoreError::Wire("ore left ciphertext"))?;
                r.finish()?;
                let mut ids = Vec::new();
                for (idb, right_bytes) in self.kv.hgetall(&key) {
                    let Some(right) = LewiWuRight::from_bytes(&right_bytes) else {
                        continue;
                    };
                    let ge_lo = LewiWuOre::compare_left_right(&lo, &right) != Comparison::Greater;
                    let le_hi = LewiWuOre::compare_left_right(&hi, &right) != Comparison::Less;
                    if ge_lo && le_hi {
                        let mut id = [0u8; 16];
                        id.copy_from_slice(&idb);
                        ids.push(DocId(id));
                    }
                }
                ids.sort();
                Ok(encode_ids(&ids))
            }
            other => Err(CoreError::UnsupportedOperation(format!("ore cloud op {other}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn setup() -> (OreTactic, OreCloud) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let ctx = TacticContext {
            application: "app".into(),
            schema: "obs".into(),
            scope: "effective".into(),
            kms: datablinder_kms::Kms::generate(&mut rng),
        };
        (OreTactic::build(&ctx).unwrap(), OreCloud::new(KvStore::new()))
    }

    fn run(cloud: &OreCloud, call: &CloudCall) -> Vec<u8> {
        let parts: Vec<&str> = call.route.split('/').collect();
        cloud.handle(parts[2], parts[3], &call.payload).unwrap()
    }

    #[test]
    fn range_query_end_to_end() {
        let (mut gw, cloud) = setup();
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        for (n, v) in [(1u8, 10i64), (2, 20), (3, 30), (4, 40)] {
            let p = gw.protect(&mut rng, "effective", &Value::from(v), DocId([n; 16])).unwrap();
            run(&cloud, &p.index_calls[0]);
        }
        let calls = gw.range_query("effective", &Value::from(15i64), &Value::from(35i64)).unwrap();
        let resp = run(&cloud, &calls[0]);
        let ids = gw.range_resolve(&[resp]).unwrap();
        assert_eq!(ids, vec![DocId([2; 16]), DocId([3; 16])]);
    }

    #[test]
    fn inclusive_bounds() {
        let (mut gw, cloud) = setup();
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let p = gw.protect(&mut rng, "f", &Value::from(100i64), DocId([9; 16])).unwrap();
        run(&cloud, &p.index_calls[0]);
        let calls = gw.range_query("f", &Value::from(100i64), &Value::from(100i64)).unwrap();
        let ids = gw.range_resolve(&[run(&cloud, &calls[0])]).unwrap();
        assert_eq!(ids, vec![DocId([9; 16])]);
    }

    #[test]
    fn delete_removes_from_scans() {
        let (mut gw, cloud) = setup();
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        let p = gw.protect(&mut rng, "f", &Value::from(5i64), DocId([1; 16])).unwrap();
        run(&cloud, &p.index_calls[0]);
        for call in gw.delete("f", &Value::from(5i64), DocId([1; 16])).unwrap() {
            run(&cloud, &call);
        }
        let calls = gw.range_query("f", &Value::from(0i64), &Value::from(10i64)).unwrap();
        assert_eq!(gw.range_resolve(&[run(&cloud, &calls[0])]).unwrap(), vec![]);
    }

    #[test]
    fn negative_values_ordered() {
        let (mut gw, cloud) = setup();
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        for (n, v) in [(1u8, -50i64), (2, -10), (3, 0), (4, 10)] {
            let p = gw.protect(&mut rng, "f", &Value::from(v), DocId([n; 16])).unwrap();
            run(&cloud, &p.index_calls[0]);
        }
        let calls = gw.range_query("f", &Value::from(-20i64), &Value::from(5i64)).unwrap();
        let ids = gw.range_resolve(&[run(&cloud, &calls[0])]).unwrap();
        assert_eq!(ids, vec![DocId([2; 16]), DocId([3; 16])]);
    }

    #[test]
    fn malformed_payloads_rejected() {
        let (_, cloud) = setup();
        assert!(cloud.handle("s", "insert", b"junk").is_err());
        assert!(cloud.handle("s", "range", b"junk").is_err());
        assert!(cloud.handle("s", "nope", &[]).is_err());
    }
}
