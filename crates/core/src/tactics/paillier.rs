//! The Paillier tactic adapter: cloud-side homomorphic Sum / Average.
//!
//! The gateway encrypts each numeric value (fixed-point scaled, signed
//! values encoded in `Z_n`'s upper half) into a shadow field; the cloud
//! multiplies ciphertexts — adding the plaintexts — without a decryption
//! key. Table 2 lists key management as the integration challenge: the
//! keypair lives in the KMS, only the public modulus goes to the cloud.

use std::collections::HashMap;

use datablinder_bigint::BigUint;
use datablinder_docstore::{DocStore, Value};
use datablinder_kvstore::KvStore;
use datablinder_obs::Recorder;
use datablinder_paillier::{Ciphertext, Keypair, PublicKey, RandomizerPool};
use datablinder_sse::DocId;
use parking_lot::Mutex;
use rand::RngCore;

use super::{aggregable_i64, shadow_field, TacticContext, AGG_SCALE};
use crate::cloudproto::{PaillierSum, PaillierSumResponse};
use crate::error::CoreError;
use crate::model::*;
use crate::spi::{CloudCall, CloudTactic, GatewayTactic, ProtectedField};

/// Default modulus size. 2048 for real deployments; moderate default so
/// benchmarks finish.
pub const DEFAULT_MODULUS_BITS: usize = 512;

/// Obfuscators precomputed per randomizer-pool refill. The total number of
/// `r^n mod n²` exponentiations is unchanged versus computing one per
/// encryption — they are just batched off the per-value path.
const POOL_BATCH: usize = 16;

/// Descriptor for Paillier (Table 2: Sum/Average rows, 3/3 interfaces,
/// challenge "key management"). The scheme itself leaks nothing beyond
/// structure (probabilistic encryption).
pub fn descriptor() -> TacticDescriptor {
    TacticDescriptor {
        name: "paillier".into(),
        family: "partially homomorphic encryption".into(),
        operations: vec![
            OpProfile { op: TacticOp::Init, leakage: LeakageLevel::Structure, metrics: PerfMetrics::new(4, 1, 3) },
            OpProfile { op: TacticOp::Update, leakage: LeakageLevel::Structure, metrics: PerfMetrics::new(5, 1, 3) },
            OpProfile { op: TacticOp::Aggregate, leakage: LeakageLevel::Structure, metrics: PerfMetrics::new(5, 1, 3) },
        ],
        serves: vec![FieldOp::Insert],
        serves_agg: vec![AggFn::Sum, AggFn::Avg, AggFn::Count],
        gateway_interfaces: 3,
        cloud_interfaces: 3,
        gateway_state: false,
    }
}

/// Gateway half of the Paillier aggregate tactic.
///
/// The tactic instance is long-lived (it persists in the gateway's tactic
/// map across channel round trips), so it amortizes the expensive pieces
/// of every encryption: the keypair's cached Montgomery contexts and a
/// [`RandomizerPool`] of precomputed `r^n mod n²` obfuscators.
pub struct PaillierTactic {
    keypair: Keypair,
    pool: RandomizerPool,
    collection: String,
    route_setup: String,
    route_sum: String,
    setup_sent: bool,
}

impl PaillierTactic {
    /// Builds with the default modulus size.
    ///
    /// # Errors
    ///
    /// KMS failures.
    pub fn build<R: RngCore>(ctx: &TacticContext, rng: &mut R) -> Result<Self, CoreError> {
        Self::build_with_bits(ctx, rng, DEFAULT_MODULUS_BITS)
    }

    /// Builds with an explicit modulus size; the keypair is created once
    /// per *application* (Paillier aggregates may span schemas) and cached
    /// in the KMS.
    ///
    /// # Errors
    ///
    /// KMS failures.
    pub fn build_with_bits<R: RngCore>(ctx: &TacticContext, rng: &mut R, bits: usize) -> Result<Self, CoreError> {
        let secret_name = format!("paillier/{}", ctx.application);
        let keypair = if ctx.kms.has_secret(&secret_name) {
            Keypair::from_bytes(&ctx.kms.secret(&secret_name)?)?
        } else {
            let kp = Keypair::generate(rng, bits);
            ctx.kms.put_secret(&secret_name, kp.to_bytes());
            kp
        };
        let pool = RandomizerPool::new(keypair.public().clone(), POOL_BATCH);
        Ok(PaillierTactic {
            keypair,
            pool,
            collection: ctx.schema.clone(),
            route_setup: ctx.route("paillier", "setup"),
            route_sum: ctx.route("paillier", "sum"),
            setup_sent: false,
        })
    }

    /// Encodes a signed scaled value into `Z_n` (upper half = negative).
    fn encode_plain(&self, v: i64) -> BigUint {
        let n = self.keypair.public().modulus();
        if v >= 0 {
            BigUint::from(v as u64)
        } else {
            n - &BigUint::from(v.unsigned_abs())
        }
    }

    /// Decodes a `Z_n` plaintext back to a signed value.
    fn decode_plain(&self, m: &BigUint) -> i64 {
        let n = self.keypair.public().modulus();
        let half = n / &BigUint::from(2u64);
        if m > &half {
            let mag = n - m;
            -(mag.to_u64().unwrap_or(u64::MAX) as i64)
        } else {
            m.to_u64().unwrap_or(u64::MAX) as i64
        }
    }

    fn setup_call(&mut self) -> Option<CloudCall> {
        if self.setup_sent {
            return None;
        }
        self.setup_sent = true;
        Some(CloudCall::new(self.route_setup.clone(), self.keypair.public().to_bytes()))
    }
}

impl GatewayTactic for PaillierTactic {
    fn descriptor(&self) -> TacticDescriptor {
        descriptor()
    }

    fn attach_recorder(&mut self, recorder: &Recorder) {
        self.pool.set_recorder(recorder.clone());
    }

    fn protect(
        &mut self,
        rng: &mut dyn RngCore,
        field: &str,
        value: &Value,
        _id: DocId,
    ) -> Result<ProtectedField, CoreError> {
        let scaled = aggregable_i64(value)?;
        let m = self.encode_plain(scaled);
        if self.pool.is_empty() {
            self.pool.refill(rng);
        }
        let obfuscator = self.pool.take(rng);
        let ct = self.keypair.public().encrypt_with(&m, &obfuscator)?;
        let mut index_calls = Vec::new();
        if let Some(setup) = self.setup_call() {
            index_calls.push(setup);
        }
        Ok(ProtectedField { stored: vec![(shadow_field(field, "phe"), Value::Bytes(ct.to_bytes()))], index_calls })
    }

    fn agg_query(&mut self, field: &str, _agg: AggFn, ids: &[DocId]) -> Result<Vec<CloudCall>, CoreError> {
        // The setup call rides along unconditionally: it is idempotent, and
        // gating it on `setup_sent` races under a shared gateway — another
        // thread's insert may have claimed the flag without its group having
        // reached the cloud yet, letting this `sum` arrive at a cloud that
        // has no public key. In-batch ordering puts setup before sum.
        self.setup_sent = true;
        let mut calls = vec![CloudCall::new(self.route_setup.clone(), self.keypair.public().to_bytes())];
        let req = PaillierSum {
            collection: self.collection.clone(),
            field: shadow_field(field, "phe"),
            ids: ids.iter().map(|id| id.to_hex()).collect(),
        };
        calls.push(CloudCall::new(self.route_sum.clone(), req.encode()));
        Ok(calls)
    }

    fn agg_resolve(&self, agg: AggFn, responses: &[Vec<u8>]) -> Result<f64, CoreError> {
        // The sum response is the last one (a setup call may precede it).
        let response = responses.last().ok_or(CoreError::Wire("paillier response arity"))?;
        let resp = PaillierSumResponse::decode(response)?;
        if resp.count == 0 {
            return Ok(0.0);
        }
        let ct = Ciphertext::from_bytes(&resp.ciphertext);
        let m = self.keypair.decrypt(&ct)?;
        let sum = self.decode_plain(&m) as f64 / AGG_SCALE;
        Ok(match agg {
            AggFn::Sum => sum,
            AggFn::Avg => sum / resp.count as f64,
            AggFn::Count => resp.count as f64,
        })
    }
}

/// Cloud half: multiplies stored ciphertexts under the scope's public key.
///
/// Decoded public keys are cached per scope so the `n²` Montgomery context
/// survives across sum requests instead of being rebuilt from the stored
/// modulus bytes on every call.
pub struct PaillierCloud {
    kv: KvStore,
    docs: DocStore,
    pk_cache: Mutex<HashMap<String, PublicKey>>,
}

impl PaillierCloud {
    /// Creates the handler over the cloud stores.
    pub fn new(kv: KvStore, docs: DocStore) -> Self {
        PaillierCloud { kv, docs, pk_cache: Mutex::new(HashMap::new()) }
    }

    fn pk_key(scope: &str) -> Vec<u8> {
        let mut k = b"t/paillier/".to_vec();
        k.extend_from_slice(scope.as_bytes());
        k.extend_from_slice(b"/__pk__");
        k
    }

    /// The scope's public key, decoded once and cached (kv remains the
    /// durable source of truth; setup refreshes the cache).
    fn scope_pk(&self, scope: &str) -> Result<PublicKey, CoreError> {
        if let Some(pk) = self.pk_cache.lock().get(scope) {
            return Ok(pk.clone());
        }
        let pk_bytes = self
            .kv
            .get(&Self::pk_key(scope))
            .ok_or_else(|| CoreError::Storage(format!("paillier scope {scope} not set up")))?;
        let pk = PublicKey::from_bytes(&pk_bytes)?;
        self.pk_cache.lock().insert(scope.to_string(), pk.clone());
        Ok(pk)
    }
}

impl CloudTactic for PaillierCloud {
    fn name(&self) -> &'static str {
        "paillier"
    }

    fn handle(&self, scope: &str, op: &str, payload: &[u8]) -> Result<Vec<u8>, CoreError> {
        match op {
            "setup" => {
                let pk = PublicKey::from_bytes(payload)?;
                self.kv.set(&Self::pk_key(scope), payload);
                self.pk_cache.lock().insert(scope.to_string(), pk);
                Ok(Vec::new())
            }
            "sum" => {
                let req = PaillierSum::decode(payload)?;
                let pk = self.scope_pk(scope)?;
                let coll = self.docs.collection(&req.collection);
                let docs: Vec<_> = if req.ids.is_empty() {
                    coll.find(&datablinder_docstore::Filter::Exists(req.field.clone()))
                } else {
                    req.ids.iter().filter_map(|id| coll.get(id)).collect()
                };
                let mut acc: Option<Ciphertext> = None;
                let mut count = 0u64;
                for doc in &docs {
                    let Some(Value::Bytes(ct_bytes)) = doc.get(&req.field) else {
                        continue;
                    };
                    let ct = Ciphertext::from_bytes(ct_bytes);
                    acc = Some(match acc {
                        None => ct,
                        Some(prev) => pk.add(&prev, &ct),
                    });
                    count += 1;
                }
                let resp = PaillierSumResponse { ciphertext: acc.map(|c| c.to_bytes()).unwrap_or_default(), count };
                Ok(resp.encode())
            }
            "combine" => {
                // Folds per-replica partial sums into one accumulator: a
                // clustered cloud computes `sum` on each document partition
                // and any node holding the scope key merges the partials —
                // homomorphic addition needs only the public modulus.
                let mut r = datablinder_sse::encoding::Reader::new(payload);
                let partials = r.list().map_err(|_| CoreError::Wire("combine partials"))?;
                r.finish().map_err(|_| CoreError::Wire("combine trailing"))?;
                let pk = self.scope_pk(scope)?;
                let mut acc: Option<Ciphertext> = None;
                let mut count = 0u64;
                for partial in &partials {
                    let part = PaillierSumResponse::decode(partial)?;
                    count += part.count;
                    if part.ciphertext.is_empty() {
                        continue;
                    }
                    let ct = Ciphertext::from_bytes(&part.ciphertext);
                    acc = Some(match acc {
                        None => ct,
                        Some(prev) => pk.add(&prev, &ct),
                    });
                }
                let resp = PaillierSumResponse { ciphertext: acc.map(|c| c.to_bytes()).unwrap_or_default(), count };
                Ok(resp.encode())
            }
            other => Err(CoreError::UnsupportedOperation(format!("paillier cloud op {other}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datablinder_docstore::Document;
    use rand::SeedableRng;

    fn setup() -> (PaillierTactic, PaillierCloud, rand::rngs::StdRng) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let ctx = TacticContext {
            application: "app".into(),
            schema: "obs".into(),
            scope: "value".into(),
            kms: datablinder_kms::Kms::generate(&mut rng),
        };
        let gw = PaillierTactic::build_with_bits(&ctx, &mut rng, 256).unwrap();
        let cloud = PaillierCloud::new(KvStore::new(), DocStore::new());
        (gw, cloud, rng)
    }

    fn run(cloud: &PaillierCloud, call: &CloudCall) -> Vec<u8> {
        let parts: Vec<&str> = call.route.split('/').collect();
        cloud.handle(parts[2], parts[3], &call.payload).unwrap()
    }

    fn store_doc(cloud: &PaillierCloud, gw: &mut PaillierTactic, rng: &mut rand::rngs::StdRng, id: u8, v: f64) {
        let p = gw.protect(rng, "value", &Value::from(v), DocId([id; 16])).unwrap();
        for call in &p.index_calls {
            run(cloud, call);
        }
        let mut doc = Document::new(DocId([id; 16]).to_hex());
        for (f, val) in &p.stored {
            doc.set(f.clone(), val.clone());
        }
        cloud.docs.collection("obs").insert(doc).unwrap();
    }

    #[test]
    fn sum_and_average_whole_collection() {
        let (mut gw, cloud, mut rng) = setup();
        for (i, v) in [6.3f64, 5.1, 7.2].iter().enumerate() {
            store_doc(&cloud, &mut gw, &mut rng, i as u8 + 1, *v);
        }
        let calls = gw.agg_query("value", AggFn::Avg, &[]).unwrap();
        let responses: Vec<Vec<u8>> = calls.iter().map(|c| run(&cloud, c)).collect();
        let avg = gw.agg_resolve(AggFn::Avg, &responses).unwrap();
        assert!((avg - 6.2).abs() < 1e-9, "avg = {avg}");
        let sum = gw.agg_resolve(AggFn::Sum, &responses).unwrap();
        assert!((sum - 18.6).abs() < 1e-9, "sum = {sum}");
        let count = gw.agg_resolve(AggFn::Count, &responses).unwrap();
        assert_eq!(count, 3.0);
    }

    #[test]
    fn sum_restricted_to_ids() {
        let (mut gw, cloud, mut rng) = setup();
        for (i, v) in [10.0f64, 20.0, 30.0].iter().enumerate() {
            store_doc(&cloud, &mut gw, &mut rng, i as u8 + 1, *v);
        }
        let ids = vec![DocId([1; 16]), DocId([3; 16])];
        let calls = gw.agg_query("value", AggFn::Sum, &ids).unwrap();
        let responses: Vec<Vec<u8>> = calls.iter().map(|c| run(&cloud, c)).collect();
        let sum = gw.agg_resolve(AggFn::Sum, &responses).unwrap();
        assert!((sum - 40.0).abs() < 1e-9, "sum = {sum}");
    }

    #[test]
    fn negative_values_sum_correctly() {
        let (mut gw, cloud, mut rng) = setup();
        store_doc(&cloud, &mut gw, &mut rng, 1, -5.5);
        store_doc(&cloud, &mut gw, &mut rng, 2, 2.0);
        let calls = gw.agg_query("value", AggFn::Sum, &[]).unwrap();
        let responses: Vec<Vec<u8>> = calls.iter().map(|c| run(&cloud, c)).collect();
        let sum = gw.agg_resolve(AggFn::Sum, &responses).unwrap();
        assert!((sum + 3.5).abs() < 1e-9, "sum = {sum}");
    }

    #[test]
    fn empty_collection_sums_to_zero() {
        let (mut gw, cloud, _) = setup();
        let calls = gw.agg_query("value", AggFn::Sum, &[]).unwrap();
        let responses: Vec<Vec<u8>> = calls.iter().map(|c| run(&cloud, c)).collect();
        assert_eq!(gw.agg_resolve(AggFn::Sum, &responses).unwrap(), 0.0);
        assert_eq!(gw.agg_resolve(AggFn::Avg, &responses).unwrap(), 0.0);
    }

    #[test]
    fn sum_without_setup_rejected() {
        let (_, cloud, _) = setup();
        let req = PaillierSum { collection: "obs".into(), field: "value__phe".into(), ids: vec![] };
        assert!(cloud.handle("fresh", "sum", &req.encode()).is_err());
    }
}
