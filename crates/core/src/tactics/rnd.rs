//! The RND tactic adapter: probabilistic payload encryption, class 1.

use datablinder_docstore::{Document, Value};
use datablinder_primitives::gcm::NONCE_LEN;
use datablinder_sse::rnd::RndCipher;
use datablinder_sse::DocId;
use rand::RngCore;

use super::{shadow_field, TacticContext};
use crate::error::CoreError;
use crate::model::*;
use crate::spi::{GatewayTactic, ProtectItem, ProtectedField};
use crate::wire::{canonical_bytes, decode_value};

/// Descriptor for RND (Table 2: class 1, leakage *Structure*, 6 gateway /
/// 4 cloud interfaces, challenge "inefficiency" — no search at all).
pub fn descriptor() -> TacticDescriptor {
    TacticDescriptor {
        name: "rnd".into(),
        family: "probabilistic encryption".into(),
        operations: vec![
            OpProfile { op: TacticOp::Init, leakage: LeakageLevel::Structure, metrics: PerfMetrics::new(1, 0, 1) },
            OpProfile { op: TacticOp::Update, leakage: LeakageLevel::Structure, metrics: PerfMetrics::new(1, 1, 1) },
        ],
        serves: vec![FieldOp::Insert],
        serves_agg: vec![],
        gateway_interfaces: 6,
        cloud_interfaces: 4,
        gateway_state: false,
    }
}

/// Gateway half of RND.
pub struct RndTactic {
    cipher: RndCipher,
}

impl RndTactic {
    /// Builds from context (key via KMS).
    ///
    /// # Errors
    ///
    /// Key-schedule failures.
    pub fn build(ctx: &TacticContext) -> Result<Self, CoreError> {
        let key = ctx.kms.key_for(&ctx.key_scope("rnd"));
        Ok(RndTactic { cipher: RndCipher::new(&key)? })
    }
}

impl GatewayTactic for RndTactic {
    fn descriptor(&self) -> TacticDescriptor {
        descriptor()
    }

    fn protect(
        &mut self,
        rng: &mut dyn RngCore,
        field: &str,
        value: &Value,
        _id: DocId,
    ) -> Result<ProtectedField, CoreError> {
        let ct = self.cipher.encrypt(rng, &canonical_bytes(value));
        Ok(ProtectedField { stored: vec![(shadow_field(field, "rnd"), Value::Bytes(ct))], index_calls: Vec::new() })
    }

    fn protect_many(&mut self, items: &mut [ProtectItem<'_>]) -> Vec<Result<ProtectedField, CoreError>> {
        // Draw each item's nonce from its own RNG in item order — exactly
        // the first (and only) bytes `encrypt` would draw — then seal the
        // whole batch with one cipher context. Byte-identical to the
        // sequential path by construction.
        let plains: Vec<Vec<u8>> = items.iter().map(|it| canonical_bytes(it.value)).collect();
        let batch: Vec<([u8; NONCE_LEN], &[u8])> = items
            .iter_mut()
            .zip(&plains)
            .map(|(it, pt)| {
                let mut nonce = [0u8; NONCE_LEN];
                it.rng.fill_bytes(&mut nonce);
                (nonce, pt.as_slice())
            })
            .collect();
        let cts = self.cipher.encrypt_many(&batch);
        items
            .iter()
            .zip(cts)
            .map(|(it, ct)| {
                Ok(ProtectedField {
                    stored: vec![(shadow_field(it.field, "rnd"), Value::Bytes(ct))],
                    index_calls: Vec::new(),
                })
            })
            .collect()
    }

    fn recover(&self, field: &str, stored: &Document) -> Result<Option<Value>, CoreError> {
        let Some(Value::Bytes(ct)) = stored.get(&shadow_field(field, "rnd")) else {
            return Ok(None);
        };
        let plain = self.cipher.decrypt(ct)?;
        let mut slice = plain.as_slice();
        let value = decode_value(&mut slice)?;
        Ok(Some(value))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn ctx() -> TacticContext {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        TacticContext {
            application: "app".into(),
            schema: "obs".into(),
            scope: "performer".into(),
            kms: datablinder_kms::Kms::generate(&mut rng),
        }
    }

    #[test]
    fn protect_and_recover() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let mut t = RndTactic::build(&ctx()).unwrap();
        let p = t.protect(&mut rng, "performer", &Value::from("John Smith"), DocId([1; 16])).unwrap();
        assert_eq!(p.stored.len(), 1);
        assert!(p.index_calls.is_empty());
        let mut doc = Document::new("x");
        doc.set(p.stored[0].0.clone(), p.stored[0].1.clone());
        let recovered = t.recover("performer", &doc).unwrap();
        assert_eq!(recovered, Some(Value::from("John Smith")));
    }

    #[test]
    fn recover_absent_field_is_none() {
        let t = RndTactic::build(&ctx()).unwrap();
        assert_eq!(t.recover("performer", &Document::new("x")).unwrap(), None);
    }

    #[test]
    fn search_unsupported() {
        let mut t = RndTactic::build(&ctx()).unwrap();
        assert!(matches!(t.eq_query("performer", &Value::from("x")), Err(CoreError::UnsupportedOperation(_))));
    }

    #[test]
    fn protect_many_matches_sequential_protect() {
        let mut seq = RndTactic::build(&ctx()).unwrap();
        let mut bat = RndTactic::build(&ctx()).unwrap();
        let values: Vec<Value> = (0..5).map(|i| Value::from(format!("value-{i}"))).collect();
        // Same per-item rng streams on both paths (the gateway pre-forks
        // one rng per item; reseeding per index models that).
        let sequential: Vec<_> = values
            .iter()
            .enumerate()
            .map(|(i, v)| {
                let mut rng = rand::rngs::StdRng::seed_from_u64(100 + i as u64);
                seq.protect(&mut rng, "f", v, DocId([i as u8; 16])).unwrap()
            })
            .collect();
        let mut rngs: Vec<_> = (0..values.len()).map(|i| rand::rngs::StdRng::seed_from_u64(100 + i as u64)).collect();
        let mut items: Vec<ProtectItem<'_>> = rngs
            .iter_mut()
            .zip(&values)
            .enumerate()
            .map(|(i, (rng, value))| ProtectItem { rng, field: "f", value, id: DocId([i as u8; 16]) })
            .collect();
        let batched = bat.protect_many(&mut items);
        for (s, b) in sequential.iter().zip(&batched) {
            let b = b.as_ref().unwrap();
            assert_eq!(s.stored, b.stored);
            assert!(b.index_calls.is_empty());
        }
    }

    #[test]
    fn probabilistic_across_calls() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let mut t = RndTactic::build(&ctx()).unwrap();
        let a = t.protect(&mut rng, "f", &Value::from("v"), DocId([1; 16])).unwrap();
        let b = t.protect(&mut rng, "f", &Value::from("v"), DocId([1; 16])).unwrap();
        assert_ne!(a.stored[0].1, b.stored[0].1);
    }
}
