//! The Sophos tactic adapter: forward-private equality search, class 2.
//!
//! Table 2 lists Sophos' integration challenge as **key management**: the
//! trapdoor keypair is generated once per scope and persisted in the KMS
//! as an opaque secret; the public half is pushed to the cloud via a setup
//! call. Deletions are handled with a gateway-side revocation list (the
//! scheme itself is add-only).

use std::collections::HashSet;

use datablinder_docstore::Value;
use datablinder_kvstore::KvStore;
use datablinder_sse::encoding::{Reader, Writer};
use datablinder_sse::sophos::{
    SophosClient, SophosKeypair, SophosPublicKey, SophosSearchToken, SophosServer, SophosUpdateToken,
};
use datablinder_sse::DocId;
use rand::RngCore;

use super::TacticContext;
use crate::error::CoreError;
use crate::model::*;
use crate::spi::{CloudCall, CloudTactic, GatewayTactic, ProtectedField};

/// Modulus size for the trapdoor permutation. 1024 in the paper's spirit;
/// kept moderate so benchmarks finish — configurable via
/// [`SophosTactic::build_with_bits`].
pub const DEFAULT_MODULUS_BITS: usize = 512;

/// Descriptor for Sophos (Table 2: class 2, leakage *Identifiers*,
/// 6 gateway / 4 cloud interfaces, challenge "key management").
pub fn descriptor() -> TacticDescriptor {
    TacticDescriptor {
        name: "sophos".into(),
        family: "SSE (forward private, TDP-based)".into(),
        operations: vec![
            OpProfile { op: TacticOp::Init, leakage: LeakageLevel::Structure, metrics: PerfMetrics::new(3, 1, 2) },
            OpProfile { op: TacticOp::Update, leakage: LeakageLevel::Structure, metrics: PerfMetrics::new(4, 1, 2) },
            OpProfile { op: TacticOp::EqQuery, leakage: LeakageLevel::Identifiers, metrics: PerfMetrics::new(4, 1, 2) },
        ],
        serves: vec![FieldOp::Insert, FieldOp::Equality],
        serves_agg: vec![],
        gateway_interfaces: 6,
        cloud_interfaces: 4,
        gateway_state: true,
    }
}

/// Gateway half of Sophos.
pub struct SophosTactic {
    client: SophosClient,
    revoked: HashSet<(Vec<u8>, DocId)>,
    route_update: String,
    route_search: String,
    route_setup: String,
    setup_sent: bool,
}

impl SophosTactic {
    /// Builds with the default modulus size.
    ///
    /// # Errors
    ///
    /// KMS and key-generation failures.
    pub fn build<R: RngCore>(ctx: &TacticContext, rng: &mut R) -> Result<Self, CoreError> {
        Self::build_with_bits(ctx, rng, DEFAULT_MODULUS_BITS)
    }

    /// Builds with an explicit trapdoor modulus size, fetching or creating
    /// the keypair in the KMS.
    ///
    /// # Errors
    ///
    /// KMS and key-generation failures.
    pub fn build_with_bits<R: RngCore>(ctx: &TacticContext, rng: &mut R, bits: usize) -> Result<Self, CoreError> {
        let secret_name = format!("sophos/{}/{}", ctx.application, format_args!("{}.{}", ctx.schema, ctx.scope));
        let keypair = if ctx.kms.has_secret(&secret_name) {
            SophosKeypair::decode(&ctx.kms.secret(&secret_name)?)?
        } else {
            let kp = SophosKeypair::generate(rng, bits);
            ctx.kms.put_secret(&secret_name, kp.encode());
            kp
        };
        let key = ctx.kms.key_for(&ctx.key_scope("sophos"));
        Ok(SophosTactic {
            client: SophosClient::new(&key, keypair),
            revoked: HashSet::new(),
            route_update: ctx.route("sophos", "update"),
            route_search: ctx.route("sophos", "search"),
            route_setup: ctx.route("sophos", "setup"),
            setup_sent: false,
        })
    }

    fn keyword(field: &str, value: &Value) -> Vec<u8> {
        crate::wire::field_keyword(field, value)
    }

    /// Lazily emits the cloud setup call (public key delivery) before the
    /// first index operation.
    fn setup_call(&mut self) -> Option<CloudCall> {
        if self.setup_sent {
            return None;
        }
        self.setup_sent = true;
        Some(CloudCall::new(self.route_setup.clone(), self.client.public_key().encode()))
    }
}

impl GatewayTactic for SophosTactic {
    fn descriptor(&self) -> TacticDescriptor {
        descriptor()
    }

    fn protect(
        &mut self,
        rng: &mut dyn RngCore,
        field: &str,
        value: &Value,
        id: DocId,
    ) -> Result<ProtectedField, CoreError> {
        let mut index_calls = Vec::new();
        if let Some(setup) = self.setup_call() {
            index_calls.push(setup);
        }
        let token = self.client.update_token(rng, &Self::keyword(field, value), id);
        index_calls.push(CloudCall::new(self.route_update.clone(), token.encode()));
        Ok(ProtectedField { stored: Vec::new(), index_calls })
    }

    fn delete(&mut self, field: &str, value: &Value, id: DocId) -> Result<Vec<CloudCall>, CoreError> {
        // Sophos is add-only; revocation is local to the gateway.
        self.revoked.insert((Self::keyword(field, value), id));
        Ok(Vec::new())
    }

    fn eq_query(&mut self, field: &str, value: &Value) -> Result<Vec<CloudCall>, CoreError> {
        match self.client.search_token(&Self::keyword(field, value)) {
            // Empty-keyword shortcut: no round trip needed.
            None => Ok(Vec::new()),
            Some(token) => Ok(vec![CloudCall::new(self.route_search.clone(), token.encode())]),
        }
    }

    fn eq_resolve(&self, field: &str, value: &Value, responses: &[Vec<u8>]) -> Result<Vec<DocId>, CoreError> {
        if responses.is_empty() {
            return Ok(Vec::new()); // keyword never indexed
        }
        let [response] = responses else {
            return Err(CoreError::Wire("sophos response arity"));
        };
        let mut r = Reader::new(response);
        let n = r.count()?;
        let mut entries = Vec::with_capacity(n);
        for _ in 0..n {
            let st = r.bytes()?;
            let masked = r.bytes()?;
            entries.push((st, masked));
        }
        r.finish()?;
        let keyword = Self::keyword(field, value);
        let ids = self.client.resolve(&keyword, &entries)?;
        Ok(ids.into_iter().filter(|id| !self.revoked.contains(&(keyword.clone(), *id))).collect())
    }

    fn export_state(&self) -> Option<Vec<u8>> {
        let mut w = Writer::new();
        w.bytes(&self.client.export_state());
        w.u32(self.revoked.len() as u32);
        let mut revoked: Vec<_> = self.revoked.iter().collect();
        revoked.sort();
        for (kw, id) in revoked {
            w.bytes(kw).bytes(&id.0);
        }
        w.u8(self.setup_sent as u8);
        Some(w.finish())
    }

    fn import_state(&mut self, state: &[u8]) -> Result<(), CoreError> {
        let mut r = Reader::new(state);
        let client_state = r.bytes()?;
        self.client.import_state(&client_state)?;
        let n = r.u32()?;
        self.revoked.clear();
        for _ in 0..n {
            let kw = r.bytes()?;
            let idb: [u8; 16] = r.array()?;
            self.revoked.insert((kw, DocId(idb)));
        }
        self.setup_sent = r.u8()? != 0;
        r.finish()?;
        Ok(())
    }
}

/// Cloud half of Sophos: stores the public key per scope and walks the
/// trapdoor chain on searches.
pub struct SophosCloud {
    kv: KvStore,
}

impl SophosCloud {
    /// Creates the handler over the cloud KV store.
    pub fn new(kv: KvStore) -> Self {
        SophosCloud { kv }
    }

    fn prefix(scope: &str) -> Vec<u8> {
        let mut p = b"t/sophos/".to_vec();
        p.extend_from_slice(scope.as_bytes());
        p.push(b'/');
        p
    }

    fn pk_key(scope: &str) -> Vec<u8> {
        let mut k = Self::prefix(scope);
        k.extend_from_slice(b"__pk__");
        k
    }
}

impl CloudTactic for SophosCloud {
    fn name(&self) -> &'static str {
        "sophos"
    }

    fn handle(&self, scope: &str, op: &str, payload: &[u8]) -> Result<Vec<u8>, CoreError> {
        match op {
            "setup" => {
                // Validate before storing.
                SophosPublicKey::decode(payload)?;
                // Compare-and-set on scope creation: the first setup pins
                // the scope's public key; a racing or replayed setup with
                // the *same* key is an idempotent success, but a different
                // key is rejected — silently overwriting the pk would
                // orphan every trapdoor-chain entry built under the old
                // one (first-writer-wins race, ROADMAP item 3).
                let key = Self::pk_key(scope);
                if !self.kv.set_nx(&key, payload) && self.kv.get(&key).as_deref() != Some(payload) {
                    return Err(CoreError::Storage(format!(
                        "sophos scope {scope} already set up with a different key"
                    )));
                }
                Ok(Vec::new())
            }
            "update" => {
                let token = SophosUpdateToken::decode(payload)?;
                let pk_bytes = self
                    .kv
                    .get(&Self::pk_key(scope))
                    .ok_or_else(|| CoreError::Storage(format!("sophos scope {scope} not set up")))?;
                let pk = SophosPublicKey::decode(&pk_bytes)?;
                let server = SophosServer::new(self.kv.clone(), &Self::prefix(scope), pk);
                server.apply_update(&token);
                Ok(Vec::new())
            }
            "search" => {
                let token = SophosSearchToken::decode(payload)?;
                let pk_bytes = self
                    .kv
                    .get(&Self::pk_key(scope))
                    .ok_or_else(|| CoreError::Storage(format!("sophos scope {scope} not set up")))?;
                let pk = SophosPublicKey::decode(&pk_bytes)?;
                let server = SophosServer::new(self.kv.clone(), &Self::prefix(scope), pk);
                let entries = server.search(&token);
                let mut w = Writer::new();
                w.u32(entries.len() as u32);
                for (st, masked) in entries {
                    w.bytes(&st).bytes(&masked);
                }
                Ok(w.finish())
            }
            other => Err(CoreError::UnsupportedOperation(format!("sophos cloud op {other}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn setup() -> (SophosTactic, SophosCloud, rand::rngs::StdRng) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let ctx = TacticContext {
            application: "app".into(),
            schema: "obs".into(),
            scope: "subject".into(),
            kms: datablinder_kms::Kms::generate(&mut rng),
        };
        let gw = SophosTactic::build_with_bits(&ctx, &mut rng, 256).unwrap();
        (gw, SophosCloud::new(KvStore::new()), rng)
    }

    fn run(cloud: &SophosCloud, call: &CloudCall) -> Vec<u8> {
        let parts: Vec<&str> = call.route.split('/').collect();
        cloud.handle(parts[2], parts[3], &call.payload).unwrap()
    }

    #[test]
    fn insert_and_search() {
        let (mut gw, cloud, mut rng) = setup();
        let v = Value::from("Jane");
        for n in 1..=3u8 {
            let p = gw.protect(&mut rng, "subject", &v, DocId([n; 16])).unwrap();
            for call in &p.index_calls {
                run(&cloud, call);
            }
        }
        let calls = gw.eq_query("subject", &v).unwrap();
        let resp = run(&cloud, &calls[0]);
        let ids = gw.eq_resolve("subject", &v, &[resp]).unwrap();
        assert_eq!(ids, vec![DocId([1; 16]), DocId([2; 16]), DocId([3; 16])]);
    }

    #[test]
    fn setup_sent_exactly_once() {
        let (mut gw, _, mut rng) = setup();
        let p1 = gw.protect(&mut rng, "f", &Value::from("a"), DocId([1; 16])).unwrap();
        let p2 = gw.protect(&mut rng, "f", &Value::from("b"), DocId([2; 16])).unwrap();
        assert_eq!(p1.index_calls.len(), 2, "setup + update");
        assert_eq!(p2.index_calls.len(), 1, "update only");
        assert!(p1.index_calls[0].route.ends_with("/setup"));
    }

    #[test]
    fn revocation_filters_results() {
        let (mut gw, cloud, mut rng) = setup();
        let v = Value::from("Jane");
        for n in 1..=2u8 {
            for call in gw.protect(&mut rng, "subject", &v, DocId([n; 16])).unwrap().index_calls {
                run(&cloud, &call);
            }
        }
        assert!(gw.delete("subject", &v, DocId([1; 16])).unwrap().is_empty());
        let calls = gw.eq_query("subject", &v).unwrap();
        let resp = run(&cloud, &calls[0]);
        assert_eq!(gw.eq_resolve("subject", &v, &[resp]).unwrap(), vec![DocId([2; 16])]);
    }

    #[test]
    fn unknown_keyword_short_circuits() {
        let (mut gw, _, _) = setup();
        assert!(gw.eq_query("subject", &Value::from("nobody")).unwrap().is_empty());
        assert_eq!(gw.eq_resolve("subject", &Value::from("nobody"), &[]).unwrap(), vec![]);
    }

    #[test]
    fn racing_setups_cas_exactly_one_key() {
        // Two gateways with *different* keypairs race setup on one scope:
        // compare-and-set lets exactly one pin the key, the loser gets a
        // typed error instead of silently overwriting (which would orphan
        // the winner's trapdoor chain), and replaying the winning setup
        // stays an idempotent success.
        let pk_payload = |seed: u64| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let ctx = TacticContext {
                application: "app".into(),
                schema: "obs".into(),
                scope: "subject".into(),
                kms: datablinder_kms::Kms::generate(&mut rng),
            };
            let mut gw = SophosTactic::build_with_bits(&ctx, &mut rng, 256).unwrap();
            let p = gw.protect(&mut rng, "f", &Value::from("a"), DocId([1; 16])).unwrap();
            assert!(p.index_calls[0].route.ends_with("/setup"));
            p.index_calls[0].payload.clone()
        };
        let (pk_a, pk_b) = (pk_payload(1), pk_payload(2));
        assert_ne!(pk_a, pk_b);

        let cloud = std::sync::Arc::new(SophosCloud::new(KvStore::new()));
        let race = |pk: Vec<u8>| {
            let cloud = cloud.clone();
            std::thread::spawn(move || cloud.handle("obs:f", "setup", &pk).is_ok())
        };
        let (a, b) = (race(pk_a.clone()), race(pk_b.clone()));
        let oks = [a.join().unwrap(), b.join().unwrap()].iter().filter(|&&ok| ok).count();
        assert_eq!(oks, 1, "exactly one racing setup wins the CAS");

        let winner = cloud.kv.get(&SophosCloud::pk_key("obs:f")).unwrap();
        assert!(winner == pk_a || winner == pk_b);
        // Replaying the winning setup (resync, retried broadcast) is fine…
        assert!(cloud.handle("obs:f", "setup", &winner).is_ok());
        // …but the losing key stays rejected.
        let loser = if winner == pk_a { &pk_b } else { &pk_a };
        let err = cloud.handle("obs:f", "setup", loser).unwrap_err();
        assert!(err.to_string().contains("different key"), "{err}");
    }

    #[test]
    fn update_without_setup_rejected() {
        let (_, cloud, _) = setup();
        let token = SophosUpdateToken { ut: [0; 32], masked_id: [0; 16] };
        assert!(cloud.handle("fresh-scope", "update", &token.encode()).is_err());
    }

    #[test]
    fn state_roundtrip_includes_revocations() {
        let (mut gw, cloud, mut rng) = setup();
        let v = Value::from("Jane");
        for call in gw.protect(&mut rng, "subject", &v, DocId([1; 16])).unwrap().index_calls {
            run(&cloud, &call);
        }
        gw.delete("subject", &v, DocId([1; 16])).unwrap();
        let state = gw.export_state().unwrap();

        let (mut gw2, _, _) = setup(); // same seeds -> same kms/keys
        gw2.import_state(&state).unwrap();
        let calls = gw2.eq_query("subject", &v).unwrap();
        let resp = run(&cloud, &calls[0]);
        assert_eq!(gw2.eq_resolve("subject", &v, &[resp]).unwrap(), vec![]);
    }
}
