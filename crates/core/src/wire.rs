//! Byte codecs for values, documents and schemas crossing the
//! gateway↔cloud channel and stored in the metadata subsystem.
//!
//! No JSON serializer is available offline, so the middleware speaks a
//! compact tagged binary format (which is also what a production system
//! would prefer on the wire).

use std::collections::BTreeMap;

use datablinder_docstore::{Document, Value};

use crate::error::CoreError;
use crate::model::{AggFn, FieldAnnotation, FieldOp, FieldSpec, FieldType, ProtectionClass, Schema};

/// Encodes a [`Value`].
pub fn encode_value(v: &Value, out: &mut Vec<u8>) {
    match v {
        Value::Null => out.push(0),
        Value::Bool(b) => {
            out.push(1);
            out.push(*b as u8);
        }
        Value::I64(i) => {
            out.push(2);
            out.extend_from_slice(&i.to_be_bytes());
        }
        Value::F64(f) => {
            out.push(3);
            out.extend_from_slice(&f.to_be_bytes());
        }
        Value::Str(s) => {
            out.push(4);
            put_bytes(out, s.as_bytes());
        }
        Value::Bytes(b) => {
            out.push(5);
            put_bytes(out, b);
        }
        Value::Array(items) => {
            out.push(6);
            out.extend_from_slice(&(items.len() as u32).to_be_bytes());
            for item in items {
                encode_value(item, out);
            }
        }
        Value::Object(map) => {
            out.push(7);
            out.extend_from_slice(&(map.len() as u32).to_be_bytes());
            for (k, val) in map {
                put_bytes(out, k.as_bytes());
                encode_value(val, out);
            }
        }
    }
}

/// Decodes a [`Value`], advancing `buf`.
///
/// # Errors
///
/// [`CoreError::Wire`] on truncation or unknown tags.
pub fn decode_value(buf: &mut &[u8]) -> Result<Value, CoreError> {
    let tag = take_u8(buf)?;
    Ok(match tag {
        0 => Value::Null,
        1 => Value::Bool(take_u8(buf)? != 0),
        2 => Value::I64(i64::from_be_bytes(take_n::<8>(buf)?)),
        3 => Value::F64(f64::from_be_bytes(take_n::<8>(buf)?)),
        4 => Value::Str(String::from_utf8(take_bytes(buf)?).map_err(|_| CoreError::Wire("utf8"))?),
        5 => Value::Bytes(take_bytes(buf)?),
        6 => {
            let n = take_count(buf)?;
            let mut items = Vec::with_capacity(n);
            for _ in 0..n {
                items.push(decode_value(buf)?);
            }
            Value::Array(items)
        }
        7 => {
            let n = take_count(buf)?;
            let mut map = BTreeMap::new();
            for _ in 0..n {
                let k = String::from_utf8(take_bytes(buf)?).map_err(|_| CoreError::Wire("utf8 key"))?;
                map.insert(k, decode_value(buf)?);
            }
            Value::Object(map)
        }
        _ => return Err(CoreError::Wire("unknown value tag")),
    })
}

/// Encodes a [`Document`] (id + fields).
pub fn encode_document(doc: &Document) -> Vec<u8> {
    let mut out = Vec::new();
    put_bytes(&mut out, doc.id().as_bytes());
    out.extend_from_slice(&(doc.len() as u32).to_be_bytes());
    for (name, value) in doc.iter() {
        put_bytes(&mut out, name.as_bytes());
        encode_value(value, &mut out);
    }
    out
}

/// Decodes a [`Document`].
///
/// # Errors
///
/// [`CoreError::Wire`] on malformed input.
pub fn decode_document(mut buf: &[u8]) -> Result<Document, CoreError> {
    let doc = decode_document_from(&mut buf)?;
    if !buf.is_empty() {
        return Err(CoreError::Wire("trailing bytes after document"));
    }
    Ok(doc)
}

/// Decodes a [`Document`], advancing `buf` (for streams of documents).
///
/// # Errors
///
/// [`CoreError::Wire`] on malformed input.
pub fn decode_document_from(buf: &mut &[u8]) -> Result<Document, CoreError> {
    let id = String::from_utf8(take_bytes(buf)?).map_err(|_| CoreError::Wire("utf8 id"))?;
    let n = take_count(buf)?;
    let mut doc = Document::new(id);
    for _ in 0..n {
        let name = String::from_utf8(take_bytes(buf)?).map_err(|_| CoreError::Wire("utf8 field"))?;
        let value = decode_value(buf)?;
        doc.set(name, value);
    }
    Ok(doc)
}

/// Encodes a list of documents.
pub fn encode_documents(docs: &[Document]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&(docs.len() as u32).to_be_bytes());
    for d in docs {
        put_bytes(&mut out, &encode_document(d));
    }
    out
}

/// Decodes a list of documents.
///
/// # Errors
///
/// [`CoreError::Wire`] on malformed input.
pub fn decode_documents(mut buf: &[u8]) -> Result<Vec<Document>, CoreError> {
    let n = take_count(&mut buf)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let blob = take_bytes(&mut buf)?;
        out.push(decode_document(&blob)?);
    }
    Ok(out)
}

/// The canonical index-keyword encoding of a value: the byte string SSE
/// tactics index. Cross-field boolean tactics prepend `field=`.
pub fn canonical_bytes(v: &Value) -> Vec<u8> {
    let mut out = Vec::new();
    encode_value(v, &mut out);
    out
}

/// Canonical keyword for cross-field boolean indexes: `field || 0x1F || value`.
pub fn field_keyword(field: &str, v: &Value) -> Vec<u8> {
    let mut out = Vec::with_capacity(field.len() + 1 + 16);
    out.extend_from_slice(field.as_bytes());
    out.push(0x1F);
    out.extend_from_slice(&canonical_bytes(v));
    out
}

// ------------------------------------------------------------- schema codec

/// Encodes a [`Schema`] for the metadata subsystem.
pub fn encode_schema(s: &Schema) -> Vec<u8> {
    let mut out = Vec::new();
    put_bytes(&mut out, s.name.as_bytes());
    out.extend_from_slice(&(s.fields.len() as u32).to_be_bytes());
    for (name, spec) in &s.fields {
        put_bytes(&mut out, name.as_bytes());
        out.push(match spec.field_type {
            FieldType::Text => 0,
            FieldType::Integer => 1,
            FieldType::Float => 2,
            FieldType::Boolean => 3,
        });
        out.push(spec.required as u8);
        match &spec.annotation {
            None => out.push(0),
            Some(a) => {
                out.push(1);
                out.push(a.class as u8);
                out.push(a.ops.len() as u8);
                for op in &a.ops {
                    out.push(match op {
                        FieldOp::Insert => 0,
                        FieldOp::Equality => 1,
                        FieldOp::Boolean => 2,
                        FieldOp::Range => 3,
                    });
                }
                out.push(a.aggs.len() as u8);
                for agg in &a.aggs {
                    out.push(match agg {
                        AggFn::Sum => 0,
                        AggFn::Avg => 1,
                        AggFn::Count => 2,
                    });
                }
            }
        }
    }
    out
}

/// Decodes a [`Schema`].
///
/// # Errors
///
/// [`CoreError::Wire`] on malformed input.
pub fn decode_schema(mut buf: &[u8]) -> Result<Schema, CoreError> {
    let buf = &mut buf;
    let name = String::from_utf8(take_bytes(buf)?).map_err(|_| CoreError::Wire("utf8 schema name"))?;
    let n = take_count(buf)?;
    let mut schema = Schema::new(name);
    for _ in 0..n {
        let fname = String::from_utf8(take_bytes(buf)?).map_err(|_| CoreError::Wire("utf8 field name"))?;
        let field_type = match take_u8(buf)? {
            0 => FieldType::Text,
            1 => FieldType::Integer,
            2 => FieldType::Float,
            3 => FieldType::Boolean,
            _ => return Err(CoreError::Wire("field type")),
        };
        let required = take_u8(buf)? != 0;
        let annotation = match take_u8(buf)? {
            0 => None,
            1 => {
                let class = match take_u8(buf)? {
                    1 => ProtectionClass::C1,
                    2 => ProtectionClass::C2,
                    3 => ProtectionClass::C3,
                    4 => ProtectionClass::C4,
                    5 => ProtectionClass::C5,
                    _ => return Err(CoreError::Wire("protection class")),
                };
                let nops = take_u8(buf)? as usize;
                let mut ops = Vec::with_capacity(nops);
                for _ in 0..nops {
                    ops.push(match take_u8(buf)? {
                        0 => FieldOp::Insert,
                        1 => FieldOp::Equality,
                        2 => FieldOp::Boolean,
                        3 => FieldOp::Range,
                        _ => return Err(CoreError::Wire("field op")),
                    });
                }
                let naggs = take_u8(buf)? as usize;
                let mut aggs = Vec::with_capacity(naggs);
                for _ in 0..naggs {
                    aggs.push(match take_u8(buf)? {
                        0 => AggFn::Sum,
                        1 => AggFn::Avg,
                        2 => AggFn::Count,
                        _ => return Err(CoreError::Wire("agg fn")),
                    });
                }
                Some(FieldAnnotation { class, ops, aggs })
            }
            _ => return Err(CoreError::Wire("annotation flag")),
        };
        schema.fields.insert(fname, FieldSpec { field_type, annotation, required });
    }
    Ok(schema)
}

// ----------------------------------------------------------------- helpers

fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    out.extend_from_slice(&(b.len() as u32).to_be_bytes());
    out.extend_from_slice(b);
}

fn take_u8(buf: &mut &[u8]) -> Result<u8, CoreError> {
    if buf.is_empty() {
        return Err(CoreError::Wire("truncated"));
    }
    let b = buf[0];
    *buf = &buf[1..];
    Ok(b)
}

fn take_n<const N: usize>(buf: &mut &[u8]) -> Result<[u8; N], CoreError> {
    if buf.len() < N {
        return Err(CoreError::Wire("truncated"));
    }
    let (head, rest) = buf.split_at(N);
    *buf = rest;
    Ok(head.try_into().unwrap())
}

fn take_bytes(buf: &mut &[u8]) -> Result<Vec<u8>, CoreError> {
    let len = u32::from_be_bytes(take_n::<4>(buf)?) as usize;
    if buf.len() < len {
        return Err(CoreError::Wire("truncated bytes"));
    }
    let (head, rest) = buf.split_at(len);
    *buf = rest;
    Ok(head.to_vec())
}

fn take_count(buf: &mut &[u8]) -> Result<usize, CoreError> {
    let n = u32::from_be_bytes(take_n::<4>(buf)?) as usize;
    if n > buf.len() {
        return Err(CoreError::Wire("count exceeds buffer"));
    }
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::FieldAnnotation;

    fn sample_value() -> Value {
        let mut obj = BTreeMap::new();
        obj.insert("k".to_string(), Value::from(1i64));
        Value::Array(vec![
            Value::Null,
            Value::from(true),
            Value::from(-42i64),
            Value::from(2.5f64),
            Value::from("text"),
            Value::Bytes(vec![0, 255, 7]),
            Value::Object(obj),
        ])
    }

    #[test]
    fn value_roundtrip() {
        let v = sample_value();
        let mut buf = Vec::new();
        encode_value(&v, &mut buf);
        let mut slice = buf.as_slice();
        assert_eq!(decode_value(&mut slice).unwrap(), v);
        assert!(slice.is_empty());
    }

    #[test]
    fn document_roundtrip() {
        let doc = Document::new("d1").with("a", Value::from(1i64)).with("b", sample_value());
        let decoded = decode_document(&encode_document(&doc)).unwrap();
        assert_eq!(decoded, doc);
    }

    #[test]
    fn documents_list_roundtrip() {
        let docs = vec![Document::new("a").with("x", Value::from(1i64)), Document::new("b")];
        assert_eq!(decode_documents(&encode_documents(&docs)).unwrap(), docs);
        assert_eq!(decode_documents(&encode_documents(&[])).unwrap(), vec![]);
    }

    #[test]
    fn truncation_rejected() {
        let doc = Document::new("d1").with("a", Value::from(1i64));
        let buf = encode_document(&doc);
        for cut in 0..buf.len() {
            assert!(decode_document(&buf[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let doc = Document::new("d");
        let mut buf = encode_document(&doc);
        buf.push(0);
        assert!(decode_document(&buf).is_err());
    }

    #[test]
    fn canonical_bytes_distinguish_types() {
        // "1" as string vs 1 as int must index differently.
        assert_ne!(canonical_bytes(&Value::from("1")), canonical_bytes(&Value::from(1i64)));
        assert_eq!(canonical_bytes(&Value::from(5i64)), canonical_bytes(&Value::from(5i64)));
    }

    #[test]
    fn field_keyword_separates_fields() {
        assert_ne!(field_keyword("a", &Value::from("x")), field_keyword("b", &Value::from("x")));
    }

    #[test]
    fn schema_roundtrip() {
        let s = Schema::new("obs")
            .plain_field("note", FieldType::Text, false)
            .sensitive_field(
                "status",
                FieldType::Text,
                true,
                FieldAnnotation::new(ProtectionClass::C3, vec![FieldOp::Insert, FieldOp::Equality, FieldOp::Boolean]),
            )
            .sensitive_field(
                "value",
                FieldType::Float,
                true,
                FieldAnnotation::new(ProtectionClass::C3, vec![FieldOp::Insert]).with_aggs(vec![AggFn::Avg]),
            );
        let decoded = decode_schema(&encode_schema(&s)).unwrap();
        assert_eq!(decoded, s);
    }

    #[test]
    fn schema_garbage_rejected() {
        assert!(decode_schema(&[1, 2, 3]).is_err());
    }
}
