//! ClusterCloud integration suite: the PR's acceptance scenario (N=5, R=3,
//! W=2 — killing any single node mid-workload loses no acknowledged write,
//! the rejoined node resyncs from its peers' WALs, fsck stays clean), quorum
//! reads with R−1 nodes down, typed unavailability instead of hangs, the
//! cross-replica retry/idempotency regression and durability under a crash
//! in the middle of rejoin-resync.

use std::sync::Arc;

use datablinder_core::cloud::{with_collection, CloudEngine};
use datablinder_core::cloudproto::{Idempotent, IDEM_ROUTE};
use datablinder_core::cluster::{ClusterCloud, ClusterConfig};
use datablinder_core::durability::wal_path;
use datablinder_core::gateway::GatewayEngine;
use datablinder_core::model::{FieldAnnotation, FieldOp, FieldType, ProtectionClass, Schema};
use datablinder_core::wire::encode_document;
use datablinder_docstore::{Document, Value};
use datablinder_kms::Kms;
use datablinder_kvstore::read_frames;
use datablinder_netsim::{
    Channel, CloudService, CrashInjector, CrashPlan, CrashPoint, LatencyModel, NetError, NodeEvent, NodeFailurePlan,
};
use datablinder_sse::DocId;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn temp_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("datablinder-cluster-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn schema() -> Schema {
    Schema::new("patients").sensitive_field(
        "ward",
        FieldType::Text,
        true,
        FieldAnnotation::new(ProtectionClass::C2, vec![FieldOp::Insert, FieldOp::Equality]),
    )
}

fn gateway_over(cluster: Arc<ClusterCloud>) -> GatewayEngine {
    let channel = Channel::from_arc(cluster, LatencyModel::instant());
    let mut rng = StdRng::seed_from_u64(0xC105);
    let gw = GatewayEngine::new("cluster-suite", Kms::generate(&mut rng), channel, 17);
    gw.register_schema(schema()).unwrap();
    gw
}

/// The PR's acceptance scenario. A deterministic failure plan kills one
/// node mid-workload and rejoins it later; every write acknowledged to the
/// gateway must stay readable, the rejoined node must catch up through WAL
/// replay, and fsck must hold afterwards. Finally every node's disk is
/// reopened standalone and checked to hold each document it replicates.
#[test]
fn acked_writes_survive_single_node_failure() {
    let dir = temp_dir("acceptance");
    let mut cluster = ClusterCloud::new(ClusterConfig::volatile(5, 3, 2, 0xACCE).durable(&dir)).unwrap();
    // Ops are cluster-level operations: schema registration and each
    // sealed insert count one. Kill node 2 early, rejoin it late enough
    // that a batch of inserts happened without it.
    cluster.set_failure_plan(NodeFailurePlan::at(vec![(6, NodeEvent::Kill(2)), (22, NodeEvent::Rejoin(2))]));
    let cluster = Arc::new(cluster);
    let gw = gateway_over(cluster.clone());

    let mut acked = Vec::new();
    for i in 0..30u32 {
        let doc = Document::new(format!("{i:032x}")).with("ward", Value::from(format!("w{}", i % 4)));
        // With W=2 and a single dead node every write must succeed; an
        // Unavailable here is itself a bug for this scenario.
        let id = gw.insert("patients", &doc).unwrap();
        acked.push((id, i % 4));
    }
    assert!(cluster.failure_injector().unwrap().exhausted(), "plan fully exercised");
    assert_eq!(cluster.kills(), 1);
    assert_eq!(cluster.rejoins(), 1);
    assert!(cluster.resync_replayed() > 0, "rejoin caught up via WAL replay");

    // Every acknowledged write is still readable through the gateway.
    for (id, ward) in &acked {
        let doc = gw.get("patients", *id).unwrap();
        assert_eq!(doc.get("ward"), Some(&Value::from(format!("w{ward}"))));
    }
    // Index ↔ store consistency across the whole cluster.
    assert!(gw.fsck("patients").unwrap().is_clean());

    // Reopen every node's disk standalone: each must hold every document
    // whose replica set includes it (durability is per-node, not just
    // cluster-wide).
    let replicas: Vec<(DocId, Vec<usize>)> =
        acked.iter().map(|(id, _)| (*id, cluster.doc_replicas("patients", &id.to_hex()))).collect();
    drop(gw);
    drop(cluster);
    for node in 0..5 {
        let engine = CloudEngine::open_durable(&dir.join(format!("node{node}"))).unwrap();
        let coll = engine.docs().collection("patients");
        for (id, reps) in &replicas {
            if reps.contains(&node) {
                assert!(coll.get(&id.to_hex()).is_some(), "node {node} lost acked doc {}", id.to_hex());
            }
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Quorum reads keep answering with R−1 replicas of the key down, and
/// cluster-wide scatter reads keep answering with R−1 arbitrary nodes down.
#[test]
fn reads_survive_r_minus_one_failures() {
    let cluster = Arc::new(ClusterCloud::new(ClusterConfig::volatile(5, 3, 2, 0x9EAD)).unwrap());
    let gw = gateway_over(cluster.clone());
    let mut ids = Vec::new();
    for i in 0..10u32 {
        let doc = Document::new(format!("{i:032x}")).with("ward", Value::from("icu"));
        ids.push(gw.insert("patients", &doc).unwrap());
    }
    // Down R−1 = 2 replicas of the first document.
    let reps = cluster.doc_replicas("patients", &ids[0].to_hex());
    cluster.kill_node(reps[0]);
    cluster.kill_node(reps[1]);
    let doc = gw.get("patients", ids[0]).unwrap();
    assert_eq!(doc.get("ward"), Some(&Value::from("icu")));
    // Scatter queries still see the full collection (2 < R nodes down).
    assert_eq!(gw.find_equal("patients", "ward", &Value::from("icu")).unwrap().len(), 10);
}

/// An unsatisfiable quorum is a typed `Unavailable` error, never a hang:
/// with only one of five nodes left no W=2 write and no complete scatter
/// read can be served.
#[test]
fn unsatisfiable_quorum_is_unavailable() {
    let cluster = ClusterCloud::new(ClusterConfig::volatile(5, 3, 2, 0x0BAD)).unwrap();
    let doc = Document::new(DocId([9; 16]).to_hex()).with("v", Value::from(1i64));
    cluster.handle("doc/insert", &with_collection("c", &encode_document(&doc))).unwrap();
    for node in 1..5 {
        cluster.kill_node(node);
    }
    let late = Document::new(DocId([10; 16]).to_hex()).with("v", Value::from(2i64));
    let write = cluster.handle("doc/insert", &with_collection("c", &encode_document(&late)));
    assert!(matches!(write, Err(NetError::Unavailable(_))), "got {write:?}");
    let scan = cluster.handle("doc/count", &with_collection("c", b""));
    assert!(matches!(scan, Err(NetError::Unavailable(_))), "got {scan:?}");
}

/// Satellite regression: a write that timed out short of its quorum and is
/// retried after the acking node died must not double-apply. The retry
/// lands on a different replica subset; the replica that already applied
/// it (via resync) absorbs the replay through the idempotency cache, and
/// the one that never saw it applies it fresh. A double-apply would
/// surface as a `DuplicateId` application error.
#[test]
fn quorum_timeout_retry_does_not_double_apply() {
    let dir = temp_dir("retry");
    let cluster = ClusterCloud::new(ClusterConfig::volatile(3, 3, 2, 0x7E57).durable(&dir)).unwrap();
    let doc = Document::new(DocId([5; 16]).to_hex()).with("v", Value::from(5i64));
    let env = Idempotent {
        token: [0xAB; 16],
        route: "doc/insert".into(),
        payload: with_collection("c", &encode_document(&doc)),
    };
    let reps = cluster.doc_replicas("c", &DocId([5; 16]).to_hex());

    // Two replicas down: the write reaches only the first one — durably
    // applied there, but below quorum, so the client sees Unavailable and
    // will retry.
    cluster.kill_node(reps[1]);
    cluster.kill_node(reps[2]);
    let first = cluster.handle(IDEM_ROUTE, &env.encode());
    assert!(matches!(first, Err(NetError::Unavailable(_))), "got {first:?}");

    // The second replica comes back (resync replays the record into it
    // from the acking node's WAL), then the acking node dies and the third
    // replica resyncs off the second's re-journaled copy.
    cluster.rejoin_node(reps[1]).unwrap();
    cluster.kill_node(reps[0]);
    cluster.rejoin_node(reps[2]).unwrap();

    // Retry of the very same envelope against the surviving replicas: both
    // already applied it through resync, so the idempotency cache answers
    // and nothing double-applies (a second application would be a
    // DuplicateId application error, failing this unwrap).
    cluster.handle(IDEM_ROUTE, &env.encode()).unwrap();
    let dedup = cluster.with_node_engine(reps[1], CloudEngine::dedup_hits).unwrap();
    assert!(dedup > 0, "the retry was absorbed by the dedup cache");
    for &r in &reps[1..] {
        let held = cluster.with_node_engine(r, |e| e.docs().collection("c").get(doc.id()).is_some());
        assert_eq!(held, Some(true), "replica {r} holds exactly the retried doc");
    }
    // The first acker's disk still has its copy; after it rejoins all
    // three replicas agree and the count is exactly one.
    cluster.rejoin_node(reps[0]).unwrap();
    let count = cluster.handle("doc/count", &with_collection("c", b"")).unwrap();
    assert_eq!(u64::from_be_bytes(count[..8].try_into().unwrap()), 1);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Satellite durability-under-membership-change: a node that crashes in
/// the middle of its rejoin-resync (tearing its WAL tail mid-append, with
/// a snapshot already on disk) stays down, and a later clean rejoin
/// recovers: the torn tail is truncated, the snapshot restores, resync
/// completes, and the node converges with its peers.
#[test]
fn crash_during_rejoin_resync_recovers_cleanly() {
    let dir = temp_dir("rejoin-crash");
    let cluster = ClusterCloud::new(ClusterConfig::volatile(3, 3, 2, 0x5EED).durable(&dir)).unwrap();
    let insert = |i: u8| {
        let doc = Document::new(DocId([i; 16]).to_hex()).with("v", Value::from(i64::from(i)));
        cluster.handle("doc/insert", &with_collection("c", &encode_document(&doc))).unwrap();
    };
    for i in 1..=4 {
        insert(i);
    }
    // Give the failing node a snapshot so its recovery exercises the
    // snapshot + WAL-tail path, then take it down and let it miss writes.
    cluster.with_node_engine(2, |e| e.snapshot_now()).unwrap().unwrap();
    cluster.kill_node(2);
    for i in 5..=8 {
        insert(i);
    }

    // First rejoin dies mid-resync: the second replayed record's WAL
    // append tears after 7 bytes.
    cluster
        .arm_rejoin_crash(2, Arc::new(CrashInjector::new(CrashPlan::at(CrashPoint::MidAppend { record: 1, byte: 7 }))));
    let failed = cluster.rejoin_node(2);
    assert!(failed.is_err(), "rejoin under a mid-append crash must fail");
    assert!(!cluster.node_alive(2), "the crashed node stays down");
    let scan = read_frames(&wal_path(&dir.join("node2"))).unwrap();
    assert!(scan.torn_tail, "the crash left a torn WAL tail on disk");

    // Second, clean rejoin: recovery truncates the torn tail and resync
    // finishes the catch-up.
    cluster.rejoin_node(2).unwrap();
    assert!(cluster.node_alive(2));
    let report = cluster.with_node_engine(2, |e| e.recovery_report().clone()).unwrap();
    assert!(report.torn_tail, "recovery observed and truncated the torn tail");
    assert!(report.snapshot_restored, "recovery restored the pre-crash snapshot");
    // The rejoined node converged: it holds all eight documents.
    let held = cluster.with_node_engine(2, |e| e.docs().collection("c").ids().len()).unwrap();
    assert_eq!(held, 8, "node 2 converged with its peers after the crashed resync");
    let count = cluster.handle("doc/count", &with_collection("c", b"")).unwrap();
    assert_eq!(u64::from_be_bytes(count[..8].try_into().unwrap()), 8);
    let _ = std::fs::remove_dir_all(&dir);
}

/// The cluster's counters, gauges and quorum-latency histogram all flow
/// through an attached recorder: per-node op counts, membership gauges,
/// kill/rejoin/read-repair/resync counters.
#[test]
fn cluster_metrics_flow_through_recorder() {
    let recorder = datablinder_obs::Recorder::new();
    let mut cluster = ClusterCloud::new(ClusterConfig::volatile(3, 2, 2, 0x0B5)).unwrap();
    cluster.set_recorder(recorder.clone());
    for i in 0..8u8 {
        let doc = Document::new(DocId([i + 1; 16]).to_hex()).with("v", Value::from(i64::from(i)));
        cluster.handle("doc/insert", &with_collection("c", &encode_document(&doc))).unwrap();
    }
    cluster.handle("doc/get", &with_collection("c", DocId([1; 16]).to_hex().as_bytes())).unwrap();
    cluster.kill_node(1);
    cluster.rejoin_node(1).unwrap();

    let snap = recorder.snapshot();
    assert!(snap.counter("cluster.ops") >= 9);
    assert!(snap.counter("cluster.write.quorum_ok") >= 8);
    let node_ops: u64 = (0..3).map(|i| snap.counter(&format!("cluster.node.{i}.ops"))).sum();
    assert!(node_ops >= 16, "every quorum write touched R nodes: {node_ops}");
    assert_eq!(snap.gauge("cluster.nodes"), Some(3));
    assert_eq!(snap.gauge("cluster.node.1.alive"), Some(1), "rejoin restored the liveness gauge");
    assert_eq!(snap.counter("cluster.kill"), 1);
    assert_eq!(snap.counter("cluster.rejoin"), 1);
    let lat = snap.histogram("cluster.write.quorum_latency").expect("latency histogram present");
    assert!(lat.count >= 8);
}

/// A kill/rejoin storm driven by the seeded failure plan: the workload
/// keeps running (writes may be Unavailable while too many nodes are down,
/// but must never hang or double-apply) and at the end, once every node is
/// back, the surviving acknowledged writes are all readable and fsck holds.
#[test]
fn seeded_crash_storm_converges() {
    let dir = temp_dir("storm");
    let mut cluster = ClusterCloud::new(ClusterConfig::volatile(5, 3, 2, 0x5708).durable(&dir)).unwrap();
    cluster.set_failure_plan(NodeFailurePlan::seeded(0x5708, 5, 3, 120));
    let cluster = Arc::new(cluster);
    let mut gw = gateway_over(cluster.clone());
    // Journal write groups so interrupted fan-outs can roll forward once
    // the cluster is reachable again.
    gw.enable_write_journal(datablinder_kvstore::KvStore::new());

    let mut acked = Vec::new();
    for i in 0..60u32 {
        let doc = Document::new(format!("{i:032x}")).with("ward", Value::from(format!("w{}", i % 3)));
        match gw.insert("patients", &doc) {
            Ok(id) => acked.push(id),
            // Below-quorum intervals surface as typed channel errors the
            // gateway classifies as transient — never hangs.
            Err(e) => assert!(e.is_transient(), "{e}"),
        }
    }
    // Bring every node back, let resync settle the stragglers, and roll
    // the gateway's pending write groups forward (their sub-tokens dedup
    // the already-applied prefixes).
    for node in 0..5 {
        if !cluster.node_alive(node) {
            cluster.rejoin_node(node).unwrap();
        }
    }
    gw.recover_pending().unwrap();
    assert!(!acked.is_empty(), "the storm must not starve the workload");
    for id in &acked {
        gw.get("patients", *id).unwrap();
    }
    assert!(gw.fsck("patients").unwrap().is_clean());
    let _ = std::fs::remove_dir_all(&dir);
}

/// Tentpole regression: a rejoin across peers that already compacted their
/// WALs must not leave a resync gap. The snapshot stream covers the
/// compacted history, the WAL tail covers the rest, and the wal-gap metric
/// stays at zero — under the old WAL-only resync this exact scenario
/// counted gaps and leaned on lazy read repair.
#[test]
fn snapshot_resync_closes_wal_gap() {
    let dir = temp_dir("snapshot-resync");
    let mut cfg = ClusterConfig::volatile(3, 3, 2, 0x5AFE).durable(&dir);
    // Aggressive compaction: peers snapshot (and truncate their WALs)
    // every 4 journaled records, so the downed node's missed writes are
    // mostly *not* individually replayable from any WAL.
    cfg.snapshot_every = Some(4);
    let cluster = ClusterCloud::new(cfg).unwrap();
    let insert = |i: u8| {
        let doc = Document::new(DocId([i; 16]).to_hex()).with("v", Value::from(i64::from(i)));
        cluster.handle("doc/insert", &with_collection("c", &encode_document(&doc))).unwrap();
    };
    for i in 1..=4 {
        insert(i);
    }
    cluster.kill_node(2);
    // 12 more writes while node 2 is down: the live peers compact several
    // times over, burying the missed records under their snapshots.
    for i in 5..=16 {
        insert(i);
    }
    let compacted = {
        let scan = read_frames(&wal_path(&dir.join("node0"))).unwrap();
        match scan.frames.first() {
            // Fully truncated WAL: everything lives in the snapshot.
            None => true,
            Some(f) => datablinder_core::durability::WalRecord::decode(f).unwrap().seq > 1,
        }
    };
    assert!(compacted, "the scenario requires peers with compacted WALs");

    cluster.rejoin_node(2).unwrap();
    assert_eq!(cluster.resync_wal_gaps(), 0, "snapshot shipping closed the compaction gap");
    assert!(cluster.resync_filled() > 0, "the snapshot stream installed the compacted history");
    let held = cluster.with_node_engine(2, |e| e.docs().collection("c").ids().len()).unwrap();
    assert_eq!(held, 16, "the rejoined node holds every document, including compacted ones");
    // The gap is closed eagerly: a full read sweep finds nothing left for
    // lazy read repair (the counter the old design leaned on).
    for i in 1..=16u8 {
        cluster.handle("doc/get", &with_collection("c", DocId([i; 16]).to_hex().as_bytes())).unwrap();
    }
    assert_eq!(cluster.read_repairs(), 0, "no lazy repairs outstanding after resync");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Elastic membership on durable nodes: growing the cluster hands the new
/// member exactly its gained ranges before it serves, shrinking hands the
/// leaving member's ranges to the survivors, and every document stays fully
/// replicated under each new ring.
#[test]
fn membership_change_hands_off_durably() {
    let dir = temp_dir("membership");
    let cluster = ClusterCloud::new(ClusterConfig::volatile(3, 2, 2, 0xE1A5).durable(&dir)).unwrap();
    let insert = |i: u8| {
        let doc = Document::new(DocId([i; 16]).to_hex()).with("v", Value::from(i64::from(i)));
        cluster.handle("doc/insert", &with_collection("c", &encode_document(&doc))).unwrap();
    };
    for i in 1..=20 {
        insert(i);
    }
    let slot = cluster.add_node().unwrap();
    assert_eq!(slot, 3);
    assert_eq!(cluster.members(), vec![0, 1, 2, 3]);
    let on_new = cluster.with_node_engine(slot, |e| e.docs().collection("c").ids().len()).unwrap();
    assert!(on_new > 0, "the new member took over part of the keyspace");
    for i in 1..=20u8 {
        let id = DocId([i; 16]).to_hex();
        for r in cluster.doc_replicas("c", &id) {
            let held = cluster.with_node_engine(r, |e| e.docs().collection("c").get(&id).is_some()).unwrap();
            assert!(held, "replica {r} of doc {i} holds it under the grown ring");
        }
    }
    // The handoff was durable: the new node survives a kill/rejoin cycle
    // purely from its own disk + peers.
    cluster.kill_node(slot);
    cluster.rejoin_node(slot).unwrap();
    let after_cycle = cluster.with_node_engine(slot, |e| e.docs().collection("c").ids().len()).unwrap();
    assert_eq!(after_cycle, on_new, "the handed-off ranges were journaled, not just cached");

    // Shrink: the original node 0 leaves; survivors inherit its ranges.
    cluster.remove_node(0).unwrap();
    assert_eq!(cluster.members(), vec![1, 2, 3]);
    for i in 1..=20u8 {
        let id = DocId([i; 16]).to_hex();
        let replicas = cluster.doc_replicas("c", &id);
        assert!(!replicas.contains(&0), "the ring forgot the removed member");
        for r in replicas {
            let held = cluster.with_node_engine(r, |e| e.docs().collection("c").get(&id).is_some()).unwrap();
            assert!(held, "replica {r} of doc {i} holds it under the shrunk ring");
        }
        cluster.handle("doc/get", &with_collection("c", id.as_bytes())).unwrap();
    }
    let count = cluster.handle("doc/count", &with_collection("c", b"")).unwrap();
    assert_eq!(u64::from_be_bytes(count[..8].try_into().unwrap()), 20);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A crash in the middle of an `add_node` handoff (the joining node tears
/// its WAL applying pulled entries) leaves the ring unchanged and the slot
/// uninstalled; a retry recovers the torn disk state and completes the
/// join cleanly.
#[test]
fn crash_during_add_node_handoff_leaves_ring_unchanged() {
    let dir = temp_dir("add-crash");
    let cluster = ClusterCloud::new(ClusterConfig::volatile(3, 2, 2, 0xADD0).durable(&dir)).unwrap();
    for i in 1..=20u8 {
        let doc = Document::new(DocId([i; 16]).to_hex()).with("v", Value::from(i64::from(i)));
        cluster.handle("doc/insert", &with_collection("c", &encode_document(&doc))).unwrap();
    }
    // The joining slot will be 3: its first handoff WAL append tears.
    cluster
        .arm_rejoin_crash(3, Arc::new(CrashInjector::new(CrashPlan::at(CrashPoint::MidAppend { record: 0, byte: 5 }))));
    let failed = cluster.add_node();
    assert!(failed.is_err(), "the torn handoff must fail the join");
    assert_eq!(cluster.members(), vec![0, 1, 2], "the ring is unchanged after the failed join");
    assert_eq!(cluster.nodes_added(), 0);
    let scan = read_frames(&wal_path(&dir.join("node3"))).unwrap();
    assert!(scan.torn_tail, "the crash left a torn WAL tail in the joining node's dir");
    // The cluster still serves during and after the failed join.
    let count = cluster.handle("doc/count", &with_collection("c", b"")).unwrap();
    assert_eq!(u64::from_be_bytes(count[..8].try_into().unwrap()), 20);

    // Retry: recovery truncates the torn tail and the handoff completes.
    let slot = cluster.add_node().unwrap();
    assert_eq!(slot, 3);
    assert_eq!(cluster.members(), vec![0, 1, 2, 3]);
    for i in 1..=20u8 {
        let id = DocId([i; 16]).to_hex();
        for r in cluster.doc_replicas("c", &id) {
            let held = cluster.with_node_engine(r, |e| e.docs().collection("c").get(&id).is_some()).unwrap();
            assert!(held, "replica {r} of doc {i} holds it after the retried join");
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// While a membership change holds the topology for its handoff, cluster
/// operations fail fast with a typed `Unavailable` — they never read a
/// half-moved ring and never hang.
#[test]
fn membership_transfer_window_is_typed_unavailable() {
    let cluster = ClusterCloud::new(ClusterConfig::volatile(3, 2, 2, 0xF02E)).unwrap();
    let doc = Document::new(DocId([1; 16]).to_hex()).with("v", Value::from(1i64));
    cluster.handle("doc/insert", &with_collection("c", &encode_document(&doc))).unwrap();
    let during = cluster.with_membership_frozen(|| {
        cluster.handle("doc/get", &with_collection("c", DocId([1; 16]).to_hex().as_bytes()))
    });
    match during {
        Err(NetError::Unavailable(m)) => assert!(m.contains("membership"), "{m}"),
        other => panic!("expected Unavailable during the transfer window, got {other:?}"),
    }
    // The window closes with the handoff: the same read works again.
    cluster.handle("doc/get", &with_collection("c", DocId([1; 16]).to_hex().as_bytes())).unwrap();
}

/// The PR's acceptance storm: seeded churn mixes kills, rejoins, node
/// additions and removals under a live workload. Afterwards every live
/// replica reports byte-identical per-shard Merkle state, a full read
/// sweep finds zero lazy read repairs outstanding, no acknowledged quorum
/// write is lost, and fsck holds.
#[test]
fn membership_churn_storm_converges() {
    let dir = temp_dir("churn-storm");
    let mut cluster = ClusterCloud::new(ClusterConfig::volatile(5, 3, 2, 0xC806).durable(&dir)).unwrap();
    cluster.set_failure_plan(NodeFailurePlan::seeded_churn(0xC806, 5, 4, 100));
    let cluster = Arc::new(cluster);
    let mut gw = gateway_over(cluster.clone());
    gw.enable_write_journal(datablinder_kvstore::KvStore::new());

    let mut acked = Vec::new();
    for i in 0..60u32 {
        let doc = Document::new(format!("{i:032x}")).with("ward", Value::from(format!("w{}", i % 3)));
        match gw.insert("patients", &doc) {
            Ok(id) => acked.push(id),
            Err(e) => assert!(e.is_transient(), "{e}"),
        }
    }
    assert!(cluster.failure_injector().unwrap().exhausted(), "churn plan fully exercised");
    assert!(!acked.is_empty(), "the storm must not starve the workload");

    // Settle: rejoin every dead *member* (removed slots stay gone), roll
    // pending write groups forward, then run anti-entropy to a fixpoint.
    for m in cluster.members() {
        if !cluster.node_alive(m) {
            cluster.rejoin_node(m).unwrap();
        }
    }
    gw.recover_pending().unwrap();
    let mut rounds = 0;
    while !cluster.run_anti_entropy().converged() {
        rounds += 1;
        assert!(rounds < 32, "anti-entropy must converge on a quiet cluster");
    }
    assert!(cluster.replica_digests_converged(), "live replicas report byte-identical Merkle state");

    // Zero lazy read repairs outstanding: anti-entropy already healed
    // everything a read would have repaired.
    let repairs_before = cluster.read_repairs();
    for id in &acked {
        let doc = gw.get("patients", *id).unwrap();
        assert!(doc.get("ward").is_some(), "acked doc {} lost its field", id.to_hex());
    }
    assert_eq!(cluster.read_repairs(), repairs_before, "no lazy repairs outstanding after anti-entropy");
    assert!(gw.fsck("patients").unwrap().is_clean());
    let _ = std::fs::remove_dir_all(&dir);
}
