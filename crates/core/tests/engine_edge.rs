//! Gateway-engine edge cases not naturally reached by the happy-path
//! integration suites.

use datablinder_core::cloud::CloudEngine;
use datablinder_core::gateway::GatewayEngine;
use datablinder_core::model::*;
use datablinder_core::CoreError;
use datablinder_docstore::{Document, Value};
use datablinder_kms::Kms;
use datablinder_netsim::{Channel, LatencyModel};
use datablinder_sse::DocId;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn gateway() -> GatewayEngine {
    let channel = Channel::connect(CloudEngine::new(), LatencyModel::instant());
    let mut rng = StdRng::seed_from_u64(0xEDE);
    GatewayEngine::new("edge", Kms::generate(&mut rng), channel, 1)
}

#[test]
fn unknown_schema_paths_error() {
    let gw = gateway();
    let doc = Document::new("x").with("f", Value::from("v"));
    assert!(matches!(gw.insert("nope", &doc), Err(CoreError::UnknownSchema(_))));
    assert!(matches!(gw.get("nope", DocId([0; 16])), Err(CoreError::UnknownSchema(_))));
    assert!(matches!(gw.delete("nope", DocId([0; 16])), Err(CoreError::UnknownSchema(_))));
    assert!(matches!(gw.find_equal("nope", "f", &Value::Null), Err(CoreError::UnknownSchema(_))));
}

#[test]
fn get_unknown_id_is_not_found() {
    let gw = gateway();
    let schema = Schema::new("s").sensitive_field(
        "f",
        FieldType::Text,
        true,
        FieldAnnotation::new(ProtectionClass::C1, vec![FieldOp::Insert]),
    );
    gw.register_schema(schema).unwrap();
    let err = gw.get("s", DocId([9; 16])).unwrap_err();
    // Cloud-side NotFound travels back as a channel (remote) error.
    assert!(matches!(err, CoreError::Net(_) | CoreError::NotFound(_)), "{err}");
}

#[test]
fn fields_with_double_underscores_roundtrip() {
    // Shadow-field naming uses `__`; user fields containing `__` must not
    // be confused with shadow fields during recovery.
    let gw = gateway();
    let schema = Schema::new("s").plain_field("a__b", FieldType::Text, false).sensitive_field(
        "x__y",
        FieldType::Text,
        true,
        FieldAnnotation::new(ProtectionClass::C1, vec![FieldOp::Insert]),
    );
    gw.register_schema(schema).unwrap();
    let doc = Document::new("d").with("a__b", Value::from("plain")).with("x__y", Value::from("secret"));
    let id = gw.insert("s", &doc).unwrap();
    let got = gw.get("s", id).unwrap();
    assert_eq!(got.get("a__b"), Some(&Value::from("plain")));
    assert_eq!(got.get("x__y"), Some(&Value::from("secret")));
}

#[test]
fn selection_accessor_reports_only_sensitive_fields() {
    let gw = gateway();
    let schema = Schema::new("s").plain_field("meta", FieldType::Integer, false).sensitive_field(
        "f",
        FieldType::Text,
        true,
        FieldAnnotation::new(ProtectionClass::C1, vec![FieldOp::Insert]),
    );
    gw.register_schema(schema).unwrap();
    assert!(gw.selection("s", "f").is_some());
    assert!(gw.selection("s", "meta").is_none());
    assert!(gw.selection("s", "ghost").is_none());
    assert!(gw.selection("ghost-schema", "f").is_none());
}

#[test]
fn reregistering_a_schema_is_idempotent_for_data() {
    let gw = gateway();
    let schema = || {
        Schema::new("s").sensitive_field(
            "owner",
            FieldType::Text,
            true,
            FieldAnnotation::new(ProtectionClass::C2, vec![FieldOp::Insert, FieldOp::Equality]),
        )
    };
    gw.register_schema(schema()).unwrap();
    gw.insert("s", &Document::new("x").with("owner", Value::from("a"))).unwrap();
    // Re-registration (e.g. redeploy) keeps existing tactic instances and
    // thus the Mitra counters: searches still see old data and inserts
    // continue the chains.
    gw.register_schema(schema()).unwrap();
    gw.insert("s", &Document::new("x").with("owner", Value::from("a"))).unwrap();
    assert_eq!(gw.find_equal("s", "owner", &Value::from("a")).unwrap().len(), 2);
}

#[test]
fn empty_dnf_returns_nothing() {
    let gw = gateway();
    let schema = Schema::new("s").sensitive_field(
        "t",
        FieldType::Text,
        true,
        FieldAnnotation::new(ProtectionClass::C3, vec![FieldOp::Insert, FieldOp::Equality, FieldOp::Boolean]),
    );
    gw.register_schema(schema).unwrap();
    gw.insert("s", &Document::new("x").with("t", Value::from("v"))).unwrap();
    let hits = gw.find_boolean("s", &vec![]).unwrap();
    assert!(hits.is_empty());
}

#[test]
fn range_with_inverted_bounds_is_empty() {
    let gw = gateway();
    let schema = Schema::new("s").sensitive_field(
        "n",
        FieldType::Integer,
        true,
        FieldAnnotation::new(ProtectionClass::C5, vec![FieldOp::Insert, FieldOp::Range]),
    );
    gw.register_schema(schema).unwrap();
    gw.insert("s", &Document::new("x").with("n", Value::from(5i64))).unwrap();
    let hits = gw.find_range("s", "n", &Value::from(10i64), &Value::from(1i64)).unwrap();
    assert!(hits.is_empty());
}

#[test]
fn optional_sensitive_fields_may_be_absent() {
    let gw = gateway();
    let schema = Schema::new("s")
        .sensitive_field("req", FieldType::Text, true, FieldAnnotation::new(ProtectionClass::C1, vec![FieldOp::Insert]))
        .sensitive_field(
            "opt",
            FieldType::Text,
            false,
            FieldAnnotation::new(ProtectionClass::C2, vec![FieldOp::Insert, FieldOp::Equality]),
        );
    gw.register_schema(schema).unwrap();
    let id = gw.insert("s", &Document::new("x").with("req", Value::from("r"))).unwrap();
    let got = gw.get("s", id).unwrap();
    assert_eq!(got.get("req"), Some(&Value::from("r")));
    assert_eq!(got.get("opt"), None);
    // Searching the optional field still works (no hits).
    assert!(gw.find_equal("s", "opt", &Value::from("nope")).unwrap().is_empty());
}
