//! Truncation robustness for the cloud protocol codecs: every strict
//! prefix of a *valid* encoded message must decode to a `Wire` error —
//! never a panic, and (for the self-delimiting, trailing-byte-checked
//! messages) never a bogus success. Complements `wire_fuzz`, which throws
//! fully random bytes at the same decoders.

use datablinder_core::cloudproto::{FindIdsDnf, FindIdsEq, FindIdsRange, Idempotent, PaillierSum, PaillierSumResponse};
use datablinder_docstore::Value;
use proptest::prelude::*;

/// Decodes every strict prefix of `encoded`, asserting each one errors.
/// The loop is exhaustive rather than sampled: a single byte boundary is
/// exactly where an unchecked index would panic.
fn assert_all_truncations_err<T: std::fmt::Debug>(
    encoded: &[u8],
    decode: impl Fn(&[u8]) -> Result<T, datablinder_core::CoreError>,
) {
    for cut in 0..encoded.len() {
        assert!(decode(&encoded[..cut]).is_err(), "prefix of {cut}/{} decoded", encoded.len());
    }
}

fn hexish(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn truncated_find_ids_eq_errors(
        coll in prop::collection::vec(any::<u8>(), 0..12),
        field in prop::collection::vec(any::<u8>(), 0..12),
        value in prop::collection::vec(any::<u8>(), 0..24),
    ) {
        let msg = FindIdsEq { collection: hexish(&coll), field: hexish(&field), value: Value::Bytes(value) };
        let enc = msg.encode();
        prop_assert_eq!(FindIdsEq::decode(&enc).unwrap(), msg);
        assert_all_truncations_err(&enc, FindIdsEq::decode);
    }

    #[test]
    fn truncated_find_ids_range_errors(
        coll in prop::collection::vec(any::<u8>(), 0..12),
        lo in prop::collection::vec(any::<u8>(), 0..16),
        hi in prop::collection::vec(any::<u8>(), 0..16),
    ) {
        let msg = FindIdsRange {
            collection: hexish(&coll),
            field: "f__ope".into(),
            lo: Value::Bytes(lo),
            hi: Value::Bytes(hi),
        };
        let enc = msg.encode();
        prop_assert_eq!(FindIdsRange::decode(&enc).unwrap(), msg);
        assert_all_truncations_err(&enc, FindIdsRange::decode);
    }

    #[test]
    fn truncated_find_ids_dnf_errors(
        literals in prop::collection::vec(
            prop::collection::vec((prop::collection::vec(any::<u8>(), 0..6), any::<i64>()), 0..3),
            0..3,
        ),
    ) {
        let dnf: Vec<Vec<(String, Value)>> = literals
            .iter()
            .map(|conj| conj.iter().map(|(f, v)| (hexish(f), Value::from(*v))).collect())
            .collect();
        let msg = FindIdsDnf { collection: "c".into(), dnf };
        let enc = msg.encode();
        prop_assert_eq!(FindIdsDnf::decode(&enc).unwrap(), msg);
        assert_all_truncations_err(&enc, FindIdsDnf::decode);
    }

    #[test]
    fn truncated_paillier_sum_errors(
        ids in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..16), 0..5),
    ) {
        let msg = PaillierSum {
            collection: "c".into(),
            field: "v__phe".into(),
            ids: ids.iter().map(|i| hexish(i)).collect(),
        };
        let enc = msg.encode();
        prop_assert_eq!(PaillierSum::decode(&enc).unwrap(), msg);
        assert_all_truncations_err(&enc, PaillierSum::decode);
    }

    #[test]
    fn truncated_idempotent_errors(
        token in any::<u128>(),
        route in prop::collection::vec(any::<u8>(), 0..16),
        payload in prop::collection::vec(any::<u8>(), 0..48),
    ) {
        let msg = Idempotent { token: token.to_be_bytes(), route: hexish(&route), payload };
        let enc = msg.encode();
        prop_assert_eq!(Idempotent::decode(&enc).unwrap(), msg);
        assert_all_truncations_err(&enc, Idempotent::decode);
    }

    #[test]
    fn truncated_sum_response_never_panics(
        count in any::<u64>(),
        ciphertext in prop::collection::vec(any::<u8>(), 0..48),
    ) {
        // The ciphertext is the unframed tail, so truncation inside it
        // still parses (with a shorter accumulator); truncation inside
        // the count header must error. Either way: no panic.
        let msg = PaillierSumResponse { ciphertext, count };
        let enc = msg.encode();
        prop_assert_eq!(PaillierSumResponse::decode(&enc).unwrap(), msg);
        for cut in 0..enc.len() {
            match PaillierSumResponse::decode(&enc[..cut]) {
                Ok(partial) => {
                    prop_assert!(cut >= 8);
                    prop_assert_eq!(partial.count, count);
                }
                Err(_) => prop_assert!(cut < 8),
            }
        }
    }
}
