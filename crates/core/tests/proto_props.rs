//! Truncation robustness for the cloud protocol codecs: every strict
//! prefix of a *valid* encoded message must decode to a `Wire` error —
//! never a panic, and (for the self-delimiting, trailing-byte-checked
//! messages) never a bogus success. Complements `wire_fuzz`, which throws
//! fully random bytes at the same decoders.

use datablinder_core::cloudproto::{
    BlobList, ChunkRequest, ChunkResponse, DigestRequest, DigestResponse, FindIdsDnf, FindIdsEq, FindIdsRange,
    Idempotent, PaillierSum, PaillierSumResponse, RangeSelect, SyncEntries, SyncEntry, TransferBegin, TransferInfo,
    WalTailRequest, ENTRY_DOC, ENTRY_INDEX, ENTRY_KV,
};
use datablinder_docstore::Value;
use datablinder_obs::trace::{self, TraceCtx};
use proptest::prelude::*;

/// Decodes every strict prefix of `encoded`, asserting each one errors.
/// The loop is exhaustive rather than sampled: a single byte boundary is
/// exactly where an unchecked index would panic.
fn assert_all_truncations_err<T: std::fmt::Debug>(
    encoded: &[u8],
    decode: impl Fn(&[u8]) -> Result<T, datablinder_core::CoreError>,
) {
    for cut in 0..encoded.len() {
        assert!(decode(&encoded[..cut]).is_err(), "prefix of {cut}/{} decoded", encoded.len());
    }
}

fn hexish(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn truncated_find_ids_eq_errors(
        coll in prop::collection::vec(any::<u8>(), 0..12),
        field in prop::collection::vec(any::<u8>(), 0..12),
        value in prop::collection::vec(any::<u8>(), 0..24),
    ) {
        let msg = FindIdsEq { collection: hexish(&coll), field: hexish(&field), value: Value::Bytes(value) };
        let enc = msg.encode();
        prop_assert_eq!(FindIdsEq::decode(&enc).unwrap(), msg);
        assert_all_truncations_err(&enc, FindIdsEq::decode);
    }

    #[test]
    fn truncated_find_ids_range_errors(
        coll in prop::collection::vec(any::<u8>(), 0..12),
        lo in prop::collection::vec(any::<u8>(), 0..16),
        hi in prop::collection::vec(any::<u8>(), 0..16),
    ) {
        let msg = FindIdsRange {
            collection: hexish(&coll),
            field: "f__ope".into(),
            lo: Value::Bytes(lo),
            hi: Value::Bytes(hi),
        };
        let enc = msg.encode();
        prop_assert_eq!(FindIdsRange::decode(&enc).unwrap(), msg);
        assert_all_truncations_err(&enc, FindIdsRange::decode);
    }

    #[test]
    fn truncated_find_ids_dnf_errors(
        literals in prop::collection::vec(
            prop::collection::vec((prop::collection::vec(any::<u8>(), 0..6), any::<i64>()), 0..3),
            0..3,
        ),
    ) {
        let dnf: Vec<Vec<(String, Value)>> = literals
            .iter()
            .map(|conj| conj.iter().map(|(f, v)| (hexish(f), Value::from(*v))).collect())
            .collect();
        let msg = FindIdsDnf { collection: "c".into(), dnf };
        let enc = msg.encode();
        prop_assert_eq!(FindIdsDnf::decode(&enc).unwrap(), msg);
        assert_all_truncations_err(&enc, FindIdsDnf::decode);
    }

    #[test]
    fn truncated_paillier_sum_errors(
        ids in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..16), 0..5),
    ) {
        let msg = PaillierSum {
            collection: "c".into(),
            field: "v__phe".into(),
            ids: ids.iter().map(|i| hexish(i)).collect(),
        };
        let enc = msg.encode();
        prop_assert_eq!(PaillierSum::decode(&enc).unwrap(), msg);
        assert_all_truncations_err(&enc, PaillierSum::decode);
    }

    #[test]
    fn truncated_idempotent_errors(
        token in any::<u128>(),
        route in prop::collection::vec(any::<u8>(), 0..16),
        payload in prop::collection::vec(any::<u8>(), 0..48),
    ) {
        let msg = Idempotent { token: token.to_be_bytes(), route: hexish(&route), payload };
        let enc = msg.encode();
        prop_assert_eq!(Idempotent::decode(&enc).unwrap(), msg);
        assert_all_truncations_err(&enc, Idempotent::decode);
    }

    #[test]
    fn truncated_sum_response_never_panics(
        count in any::<u64>(),
        ciphertext in prop::collection::vec(any::<u8>(), 0..48),
    ) {
        // The ciphertext is the unframed tail, so truncation inside it
        // still parses (with a shorter accumulator); truncation inside
        // the count header must error. Either way: no panic.
        let msg = PaillierSumResponse { ciphertext, count };
        let enc = msg.encode();
        prop_assert_eq!(PaillierSumResponse::decode(&enc).unwrap(), msg);
        for cut in 0..enc.len() {
            match PaillierSumResponse::decode(&enc[..cut]) {
                Ok(partial) => {
                    prop_assert!(cut >= 8);
                    prop_assert_eq!(partial.count, count);
                }
                Err(_) => prop_assert!(cut < 8),
            }
        }
    }

    // ── Resync / membership / anti-entropy wire messages ────────────────
    // All of these are strict codecs (trailing bytes rejected), so every
    // strict prefix must fail — a half-received sync frame can never be
    // mistaken for a complete one.

    #[test]
    fn truncated_sync_entries_errors(
        raw in prop::collection::vec(
            (prop::sample::select(vec![ENTRY_DOC, ENTRY_KV, ENTRY_INDEX]),
             prop::collection::vec(any::<u8>(), 0..12),
             prop::collection::vec(any::<u8>(), 0..24)),
            0..4,
        ),
    ) {
        let entries = raw.into_iter().map(|(kind, key, value)| SyncEntry { kind, key, value }).collect();
        let msg = SyncEntries { entries };
        let enc = msg.encode();
        prop_assert_eq!(SyncEntries::decode(&enc).unwrap(), msg);
        assert_all_truncations_err(&enc, SyncEntries::decode);
    }

    #[test]
    fn truncated_range_select_errors(
        seed in any::<u64>(),
        ranges in prop::collection::vec((any::<u64>(), any::<u64>()), 0..5),
        include_broadcast in any::<bool>(),
    ) {
        let msg = RangeSelect { seed, ranges, include_broadcast };
        let enc = msg.encode();
        prop_assert_eq!(RangeSelect::decode(&enc).unwrap(), msg);
        assert_all_truncations_err(&enc, RangeSelect::decode);
    }

    #[test]
    fn truncated_transfer_handshake_errors(
        token in any::<u128>(),
        total_len in any::<u64>(),
        snapshot_seq in any::<u64>(),
        crc in any::<u32>(),
    ) {
        let begin = TransferBegin { token: token.to_be_bytes() };
        let enc = begin.encode();
        prop_assert_eq!(TransferBegin::decode(&enc).unwrap(), begin);
        assert_all_truncations_err(&enc, TransferBegin::decode);

        let info = TransferInfo { total_len, snapshot_seq, crc };
        let enc = info.encode();
        prop_assert_eq!(TransferInfo::decode(&enc).unwrap(), info);
        assert_all_truncations_err(&enc, TransferInfo::decode);
    }

    #[test]
    fn truncated_chunk_messages_error(
        token in any::<u128>(),
        offset in any::<u64>(),
        max_len in any::<u32>(),
        crc in any::<u32>(),
        data in prop::collection::vec(any::<u8>(), 0..48),
    ) {
        let req = ChunkRequest { token: token.to_be_bytes(), offset, max_len };
        let enc = req.encode();
        prop_assert_eq!(ChunkRequest::decode(&enc).unwrap(), req);
        assert_all_truncations_err(&enc, ChunkRequest::decode);

        let resp = ChunkResponse { offset, crc, data };
        let enc = resp.encode();
        prop_assert_eq!(ChunkResponse::decode(&enc).unwrap(), resp);
        assert_all_truncations_err(&enc, ChunkResponse::decode);
    }

    #[test]
    fn truncated_wal_tail_messages_error(
        from_seq in any::<u64>(),
        items in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..24), 0..5),
    ) {
        let req = WalTailRequest { from_seq };
        let enc = req.encode();
        prop_assert_eq!(WalTailRequest::decode(&enc).unwrap(), req);
        assert_all_truncations_err(&enc, WalTailRequest::decode);

        let list = BlobList { items };
        let enc = list.encode();
        prop_assert_eq!(BlobList::decode(&enc).unwrap(), list);
        assert_all_truncations_err(&enc, BlobList::decode);
    }

    #[test]
    fn truncated_digest_messages_error(
        seed in any::<u64>(),
        boundaries in prop::collection::vec(any::<u64>(), 0..6),
        leaves in prop::collection::vec((any::<u128>(), any::<u128>()), 0..4),
        broadcast in (any::<u128>(), any::<u128>()),
        root in (any::<u128>(), any::<u128>()),
    ) {
        let req = DigestRequest { seed, boundaries };
        let enc = req.encode();
        prop_assert_eq!(DigestRequest::decode(&enc).unwrap(), req);
        assert_all_truncations_err(&enc, DigestRequest::decode);

        fn digest((hi, lo): (u128, u128)) -> [u8; 32] {
            let mut d = [0u8; 32];
            d[..16].copy_from_slice(&hi.to_be_bytes());
            d[16..].copy_from_slice(&lo.to_be_bytes());
            d
        }
        let resp = DigestResponse {
            leaves: leaves.into_iter().map(digest).collect(),
            broadcast: digest(broadcast),
            root: digest(root),
        };
        let enc = resp.encode();
        prop_assert_eq!(DigestResponse::decode(&enc).unwrap(), resp);
        assert_all_truncations_err(&enc, DigestResponse::decode);
    }
}

// --------------------------------------------------- traced envelopes

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// The trace envelope wrapping every on-the-wire call under an active
    /// trace: round-trips exactly, rejects every strict prefix, and rejects
    /// trailing garbage (it is self-delimiting).
    #[test]
    fn truncated_trace_envelopes_error(
        trace_id in 1..u64::MAX,
        span_id in 1..u64::MAX,
        route in prop::collection::vec(any::<u8>(), 0..24),
        payload in prop::collection::vec(any::<u8>(), 0..64),
    ) {
        let ctx = TraceCtx { trace_id, span_id };
        let route = hexish(&route);
        let enc = trace::encode_traced(ctx, &route, &payload);

        let (got_ctx, got_route, got_payload) = trace::decode_traced(&enc).unwrap();
        prop_assert_eq!(got_ctx, ctx);
        prop_assert_eq!(got_route, route.as_str());
        prop_assert_eq!(got_payload, payload.as_slice());

        for cut in 0..enc.len() {
            prop_assert!(trace::decode_traced(&enc[..cut]).is_err(), "prefix of {}/{} decoded", cut, enc.len());
        }
        let mut trailing = enc.clone();
        trailing.push(0);
        prop_assert!(trace::decode_traced(&trailing).is_err(), "trailing byte accepted");
    }

    /// Back-compat: frames without a trace context keep working. A plain
    /// (pre-trace) route reaches the engine unwrapped and answers exactly
    /// like its enveloped twin, and an envelope carrying the zero (untraced)
    /// context still decodes and serves.
    #[test]
    fn plain_frames_and_untraced_envelopes_still_serve(value in prop::collection::vec(any::<u8>(), 1..32)) {
        use datablinder_core::cloud::CloudEngine;
        use datablinder_netsim::CloudService;

        let engine = CloudEngine::new();
        let key = format!("k{}", hexish(&value));
        let mut w = datablinder_sse::encoding::Writer::new();
        w.list(&[key.clone().into_bytes(), value.clone()]);
        let put = w.finish();

        // Plain frame: served without any envelope.
        engine.handle("kv/bulk_put", &put).unwrap();

        // The same route under an envelope with *no* trace context (both
        // ids zero) decodes and routes identically.
        let zero = TraceCtx { trace_id: 0, span_id: 0 };
        let enveloped = trace::encode_traced(zero, "kv/bulk_put", &put);
        let (ctx, inner_route, inner_payload) = trace::decode_traced(&enveloped).unwrap();
        prop_assert_eq!(ctx, zero);
        prop_assert_eq!(inner_route, "kv/bulk_put");
        prop_assert_eq!(inner_payload, put.as_slice());
        engine.handle(trace::TRACED_ROUTE, &enveloped).unwrap();

        // Both writes landed on the same key.
        prop_assert_eq!(engine.kv().get(key.as_bytes()).as_deref(), Some(value.as_slice()));
    }
}
