//! End-to-end distributed tracing and metrics federation: one gateway
//! write through a replicated cluster must yield a single trace tree —
//! gateway root, channel call/attempt children, per-replica applies and
//! WAL flushes as leaves — reconstructable purely from the exported JSON
//! snapshots, with retries and quorum failures visible in the same tree.

use std::collections::HashMap;
use std::sync::Arc;

use datablinder_core::cluster::{ClusterCloud, ClusterConfig};
use datablinder_core::gateway::GatewayEngine;
use datablinder_core::model::{FieldAnnotation, FieldOp, FieldType, ProtectionClass, Schema};
use datablinder_docstore::{Document, Value};
use datablinder_kms::Kms;
use datablinder_netsim::{Channel, LatencyModel};
use datablinder_obs::{render_trace_timeline, ClusterSnapshot, Recorder, Snapshot, Span, SpanOutcome};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn temp_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("datablinder-trace-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn schema() -> Schema {
    Schema::new("patients").sensitive_field(
        "ward",
        FieldType::Text,
        true,
        FieldAnnotation::new(ProtectionClass::C2, vec![FieldOp::Insert, FieldOp::Equality]),
    )
}

fn gateway_over(cluster: Arc<ClusterCloud>, recorder: Recorder) -> GatewayEngine {
    let channel = Channel::from_arc(cluster, LatencyModel::instant());
    let mut rng = StdRng::seed_from_u64(0x7ACE);
    let mut gw = GatewayEngine::new("trace-suite", Kms::generate(&mut rng), channel, 23);
    gw.set_recorder(recorder);
    gw.register_schema(schema()).unwrap();
    gw
}

/// Every span of `trace_id` across all exported snapshots, reconstructed
/// purely from the JSON (never from in-process state).
fn spans_of_trace(exports: &[&str], trace_id: u64) -> Vec<Span> {
    let mut spans = Vec::new();
    for text in exports {
        let snap = Snapshot::from_json(text).expect("snapshot JSON parses");
        spans.extend(snap.trace_spans.into_iter().filter(|s| s.trace_id == trace_id));
    }
    spans
}

fn routes_of<'a>(spans: &'a [Span], route: &str) -> Vec<&'a Span> {
    spans.iter().filter(|s| s.route == route).collect()
}

/// The acceptance scenario: a W-of-R quorum write through a 5-node durable
/// cluster produces exactly one trace tree, reconstructed from the exported
/// gateway snapshot plus the federated cluster snapshot.
#[test]
fn quorum_write_produces_one_reconstructable_trace_tree() {
    let dir = temp_dir("quorum");
    let mut cluster = ClusterCloud::new(ClusterConfig::volatile(5, 3, 2, 0x7ACE).durable(&dir)).unwrap();
    cluster.set_recorder(Recorder::new());
    let cluster = Arc::new(cluster);
    let gw_obs = Recorder::new();
    let gw = gateway_over(cluster.clone(), gw_obs.clone());

    let doc = Document::new("00aa00aa00aa00aa00aa00aa00aa00aa").with("ward", Value::from("icu"));
    gw.insert("patients", &doc).unwrap();

    // Reconstruct purely from exported JSON: the gateway's own snapshot and
    // the cluster federation (coordinator + every live node's recorder).
    let gateway_json = gw_obs.snapshot().to_json();
    let cluster_json = cluster.snapshot().to_json();
    let federated = ClusterSnapshot::from_json(&cluster_json).expect("federated JSON parses");
    let merged_json = federated.merged.to_json();
    let exports = [gateway_json.as_str(), merged_json.as_str()];

    // Exactly one trace roots at gateway.insert.
    let roots: Vec<Span> = Snapshot::from_json(&gateway_json)
        .unwrap()
        .trace_spans
        .into_iter()
        .filter(|s| s.route == "gateway.insert" && s.parent_id == 0)
        .collect();
    assert_eq!(roots.len(), 1, "one insert, one root span");
    let root = &roots[0];
    assert_eq!(root.trace_id, root.span_id, "roots start their trace");
    assert_eq!(root.outcome, SpanOutcome::Ok);

    let spans = spans_of_trace(&exports, root.trace_id);
    // Every parent link resolves within the tree (single-rooted).
    let ids: HashMap<u64, &Span> = spans.iter().map(|s| (s.span_id, s)).collect();
    assert_eq!(ids.len(), spans.len(), "span ids are process-unique");
    for s in &spans {
        if s.parent_id == 0 {
            assert_eq!(s.span_id, root.span_id, "single root: {}", s.route);
        } else {
            assert!(ids.contains_key(&s.parent_id), "dangling parent for {}", s.route);
        }
    }

    // Gateway side: the channel call and its attempt hang off the root.
    let calls = routes_of(&spans, "channel.call");
    assert!(!calls.is_empty(), "channel.call spans recorded");
    let attempts = routes_of(&spans, "channel.attempt");
    assert!(!attempts.is_empty(), "channel.attempt spans recorded");
    for a in &attempts {
        assert_eq!(ids[&a.parent_id].route, "channel.call", "attempts nest under their call");
    }

    // Cluster side: the quorum fan-out span bridges gateway and replicas.
    assert!(!routes_of(&spans, "cluster.quorum_write").is_empty(), "quorum span recorded");

    // Replica side: at least W=2 applies on distinct nodes, each flushing
    // the WAL inside its apply.
    let applies = routes_of(&spans, "cloud.apply");
    let apply_nodes: std::collections::BTreeSet<&str> = applies.iter().filter_map(|s| s.node.as_deref()).collect();
    assert!(apply_nodes.len() >= 2, "applies on >=W distinct nodes, got {apply_nodes:?}");
    let flushes = routes_of(&spans, "cloud.wal.flush");
    assert!(flushes.len() >= 2, "every durable apply flushed the WAL");
    for f in &flushes {
        assert_eq!(ids[&f.parent_id].route, "cloud.apply", "flush is a leaf of its apply");
        assert_eq!(f.outcome, SpanOutcome::Ok);
    }

    // The timeline renderer accepts the reconstructed tree.
    let rendered = render_trace_timeline(&spans);
    assert!(rendered.contains("gateway.insert"), "timeline shows the root:\n{rendered}");
    assert!(rendered.contains("cloud.wal.flush"), "timeline shows the leaves:\n{rendered}");

    let _ = std::fs::remove_dir_all(&dir);
}

/// Killing a replica under an all-nodes write quorum shows the retry and
/// the typed Unavailable leaves in the same trace tree.
#[test]
fn failed_quorum_shows_retries_and_unavailable_in_one_tree() {
    let mut cluster = ClusterCloud::new(ClusterConfig::volatile(5, 5, 5, 0xDEAD)).unwrap();
    cluster.set_recorder(Recorder::new());
    let cluster = Arc::new(cluster);
    let gw_obs = Recorder::new();
    let gw = gateway_over(cluster.clone(), gw_obs.clone());

    cluster.kill_node(1);
    let doc = Document::new("00bb00bb00bb00bb00bb00bb00bb00bb").with("ward", Value::from("er"));
    let err = gw.insert("patients", &doc).unwrap_err();
    assert!(err.to_string().contains("write quorum not met"), "typed quorum failure: {err}");

    let gateway_json = gw_obs.snapshot().to_json();
    let cluster_json = cluster.snapshot().to_json();
    let federated = ClusterSnapshot::from_json(&cluster_json).unwrap();
    let merged_json = federated.merged.to_json();
    let exports = [gateway_json.as_str(), merged_json.as_str()];

    let roots: Vec<Span> = Snapshot::from_json(&gateway_json)
        .unwrap()
        .trace_spans
        .into_iter()
        .filter(|s| s.route == "gateway.insert" && s.parent_id == 0)
        .collect();
    assert_eq!(roots.len(), 1);
    assert_eq!(roots[0].outcome, SpanOutcome::Err);

    let spans = spans_of_trace(&exports, roots[0].trace_id);
    let attempts = routes_of(&spans, "channel.attempt");
    // The gateway-side attempts (children of the gateway channel.call) show
    // the retry loop; each carries the quorum failure as its detail.
    let failed: Vec<_> = attempts
        .iter()
        .filter(|s| {
            s.outcome == SpanOutcome::Err && s.detail.as_deref().is_some_and(|d| d.contains("write quorum not met"))
        })
        .collect();
    assert!(failed.len() >= 2, "the retry and the original failure share the tree, got {}", failed.len());

    // The per-replica quorum spans failed too, in the same trace.
    let quorum = routes_of(&spans, "cluster.quorum_write");
    assert!(quorum.iter().any(|s| s.outcome == SpanOutcome::Err), "quorum fan-out recorded its failure");
}

/// Federation covers exactly the live members: a dead node drops out of the
/// per-node breakouts and returns (counters intact) after a rejoin.
#[test]
fn snapshot_federates_live_node_recorders() {
    let mut cluster = ClusterCloud::new(ClusterConfig::volatile(3, 3, 2, 0xFEDE)).unwrap();
    cluster.set_recorder(Recorder::new());
    let cluster = Arc::new(cluster);
    let gw = gateway_over(cluster.clone(), Recorder::new());

    let doc = Document::new("00cc00cc00cc00cc00cc00cc00cc00cc").with("ward", Value::from("icu"));
    gw.insert("patients", &doc).unwrap();

    let all = cluster.snapshot();
    assert!(all.node("cluster").is_some(), "coordinator snapshot present");
    for i in 0..3 {
        assert!(all.node(&format!("node{i}")).is_some(), "node{i} federated");
    }
    let spans_before = all.node("node1").unwrap().spans_recorded;
    assert!(spans_before > 0, "replica applies were recorded on node1");

    cluster.kill_node(1);
    let down = cluster.snapshot();
    assert!(down.node("node1").is_none(), "dead node skipped");
    assert!(down.node("node0").is_some() && down.node("node2").is_some());

    cluster.rejoin_node(1).unwrap();
    let back = cluster.snapshot();
    let node1 = back.node("node1").expect("rejoined node federated again");
    // The slot recorder outlived the engine rebuild: pre-kill activity is
    // still visible after the rejoin.
    assert!(node1.spans_recorded >= spans_before, "node1 history survived the restart");

    // The merged view sums the per-node totals; the document round-trips.
    let round = ClusterSnapshot::from_json(&back.to_json()).unwrap();
    assert_eq!(round.nodes.len(), back.nodes.len());
    let summed: u64 = back.nodes.iter().map(|n| n.spans_recorded).sum();
    assert_eq!(round.merged.spans_recorded, summed, "merged totals are the per-node sum");
}

/// The Prometheus exposition of a live federated snapshot round-trips
/// through the metric-name registry: every family's original dot name
/// (carried on its `# HELP` line) is documented in `docs/METRICS.md` —
/// exactly, via a `{}`-wildcard row, or as a `.count`/`.errors`/`.latency`
/// derivative of a registered span route.
#[test]
fn prometheus_exposition_round_trips_through_the_registry() {
    let doc_path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../docs/METRICS.md");
    let doc = std::fs::read_to_string(&doc_path).expect("docs/METRICS.md is checked in");
    let registry: Vec<String> = doc
        .split('`')
        .skip(1)
        .step_by(2)
        .filter(|n| n.contains('.') && n.chars().next().is_some_and(|c| c.is_ascii_lowercase()))
        .map(str::to_string)
        .collect();
    assert!(registry.len() > 50, "registry parsed from the doc");

    let segments_match = |name: &str, pattern: &str| -> bool {
        let (n, p): (Vec<&str>, Vec<&str>) = (name.split('.').collect(), pattern.split('.').collect());
        n.len() == p.len() && n.iter().zip(&p).all(|(a, b)| *b == "{}" || a == b)
    };
    let registered = |name: &str| -> bool {
        if registry.iter().any(|r| segments_match(name, r)) {
            return true;
        }
        name.rsplit_once('.').is_some_and(|(base, suffix)| {
            matches!(suffix, "count" | "errors" | "latency") && registry.iter().any(|r| segments_match(base, r))
        })
    };

    // Populate a real federated snapshot: one success, one quorum failure,
    // shard gauges published on every node.
    let mut cluster = ClusterCloud::new(ClusterConfig::volatile(3, 3, 3, 0x9801)).unwrap();
    cluster.set_recorder(Recorder::new());
    let cluster = Arc::new(cluster);
    let gw_obs = Recorder::new();
    let gw = gateway_over(cluster.clone(), gw_obs.clone());
    let doc_ok = Document::new("00dd00dd00dd00dd00dd00dd00dd00dd").with("ward", Value::from("icu"));
    gw.insert("patients", &doc_ok).unwrap();
    cluster.kill_node(2);
    let doc_fail = Document::new("00ee00ee00ee00ee00ee00ee00ee00ee").with("ward", Value::from("er"));
    let _ = gw.insert("patients", &doc_fail).unwrap_err();
    for i in 0..3 {
        cluster.with_node_engine(i, |e| e.publish_shard_metrics());
    }

    let mut snapshots = vec![gw_obs.snapshot()];
    snapshots.extend(cluster.snapshot().nodes);
    let exposition = datablinder_obs::render_multi_exposition(&snapshots);
    let names = datablinder_obs::prometheus::help_names(&exposition);
    assert!(!names.is_empty(), "exposition produced families");
    assert!(names.iter().any(|n| n == "gateway.insert.count"), "gateway counters exported");
    assert!(names.iter().any(|n| n.starts_with("cloud.")), "replica metrics exported");
    let unregistered: Vec<&String> = names.iter().filter(|n| !registered(n)).collect();
    assert!(unregistered.is_empty(), "exposition names missing from docs/METRICS.md: {unregistered:?}");
}
