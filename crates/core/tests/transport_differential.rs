//! Differential transport suite: the netsim [`Channel`] and the real
//! [`TcpChannel`] must be indistinguishable above the [`Transport`] trait.
//!
//! Three angles:
//!
//! * **Byte-identical wire logs** — the same seeded single-threaded
//!   workload, run once over the in-process channel and once over a real
//!   loopback [`CloudServer`], produces the *exact same* request and
//!   response bytes at the transport boundary (a [`RecordingTransport`]
//!   wrapper captures them). Seeded keys, seeded document ids and the
//!   atomic idempotency sequence make a single-threaded run fully
//!   deterministic; the shared `encode_request`/`encode_response` layer
//!   does the rest.
//! * **Model-based concurrency oracle over TCP** — the suite from
//!   `tests/concurrency.rs`, re-run with the shared engine speaking real
//!   sockets to a loopback daemon, replayed against a netsim-backed
//!   single-threaded oracle and a `HashMap` model.
//! * **Crash semantics** — killing the server *after applying a write but
//!   before acking it* surfaces a typed transient [`NetError::Disconnected`];
//!   with retries off the write journal rolls it forward
//!   ([`GatewayEngine::recover_pending`]), and with retries on the
//!   idempotency envelope deduplicates the retry across the
//!   dropped-then-reestablished connection (the ISSUE 9 regression fix).

use std::collections::HashMap;
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use datablinder_core::cloud::CloudEngine;
use datablinder_core::gateway::GatewayEngine;
use datablinder_core::model::{AggFn, FieldAnnotation, FieldOp, FieldType, ProtectionClass, Schema};
use datablinder_docstore::{Document, Value};
use datablinder_kms::Kms;
use datablinder_kvstore::KvStore;
use datablinder_netsim::{
    Channel, ChannelMetrics, CloudServer, CloudService, LatencyModel, NetError, ResilienceConfig, ResilientChannel,
    RetryPolicy, ServerConfig, TcpChannel, TcpConfig, Transport,
};
use datablinder_sse::DocId;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const SCHEMA: &str = "records";
const OWNERS: [&str; 6] = ["o0", "o1", "o2", "o3", "o4", "o5"];

fn schema() -> Schema {
    use FieldOp::*;
    Schema::new(SCHEMA)
        .sensitive_field(
            "owner",
            FieldType::Text,
            true,
            FieldAnnotation::new(ProtectionClass::C2, vec![Insert, Equality]),
        )
        .sensitive_field(
            "score",
            FieldType::Integer,
            true,
            FieldAnnotation::new(ProtectionClass::C5, vec![Insert, Range]).with_aggs(vec![AggFn::Sum]),
        )
}

fn doc_of(owner: &str, score: i64) -> Document {
    Document::new("x").with("owner", Value::from(owner)).with("score", Value::from(score))
}

/// A loopback daemon serving a fresh [`CloudEngine`] — the in-process
/// stand-in for `datablinder-cloudd`.
fn loopback_server() -> CloudServer {
    let service: Arc<dyn CloudService> = Arc::new(CloudEngine::new());
    CloudServer::bind("127.0.0.1:0", service, ServerConfig::default()).expect("bind loopback")
}

fn tcp_transport(server: &CloudServer) -> Arc<dyn Transport> {
    Arc::new(TcpChannel::connect(server.local_addr(), TcpConfig::default()).expect("loopback resolve"))
}

fn netsim_transport() -> Arc<dyn Transport> {
    Arc::new(Channel::connect(CloudEngine::new(), LatencyModel::instant()))
}

/// A gateway over any transport, deterministically seeded.
fn gateway_over(transport: Arc<dyn Transport>, seed: u64, retry: RetryPolicy) -> GatewayEngine {
    let config = ResilienceConfig { retry, seed, ..ResilienceConfig::default() };
    let mut rng = StdRng::seed_from_u64(seed);
    let gw = GatewayEngine::with_resilience(
        "transport-diff",
        Kms::generate(&mut rng),
        ResilientChannel::over(transport, config),
        seed,
    );
    gw.register_schema(schema()).unwrap();
    gw
}

// ----------------------------------------------- byte-identical wire logs

/// One captured hop: what went down the wire and what came back.
type WireRecord = (String, Vec<u8>, Result<Vec<u8>, NetError>);

/// A [`Transport`] wrapper logging every (route, request, response) triple.
struct RecordingTransport {
    inner: Arc<dyn Transport>,
    log: Mutex<Vec<WireRecord>>,
}

impl RecordingTransport {
    fn over(inner: Arc<dyn Transport>) -> Arc<Self> {
        Arc::new(RecordingTransport { inner, log: Mutex::new(Vec::new()) })
    }

    fn take_log(&self) -> Vec<WireRecord> {
        std::mem::take(&mut self.log.lock())
    }
}

impl Transport for RecordingTransport {
    fn call_with_deadline(&self, route: &str, payload: &[u8], deadline: Option<Duration>) -> Result<Vec<u8>, NetError> {
        let result = self.inner.call_with_deadline(route, payload, deadline);
        self.log.lock().push((route.to_string(), payload.to_vec(), result.clone()));
        result
    }

    fn advance(&self, delta: Duration) {
        self.inner.advance(delta);
    }

    fn metrics(&self) -> &ChannelMetrics {
        self.inner.metrics()
    }
}

/// A fixed seeded single-threaded workload: inserts, updates, deletes and
/// every read shape. Identical gateway seeds must make it byte-identical
/// across transports.
fn drive_scripted(gw: &GatewayEngine, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut mine: Vec<DocId> = Vec::new();
    for op in 0..60usize {
        match op % 6 {
            0 | 1 => {
                let owner = OWNERS[rng.gen_range(0..OWNERS.len())];
                let score: i64 = rng.gen_range(-1_000..1_000);
                mine.push(gw.insert(SCHEMA, &doc_of(owner, score)).unwrap());
            }
            2 => {
                let k = rng.gen_range(0..mine.len());
                let owner = OWNERS[rng.gen_range(0..OWNERS.len())];
                let score: i64 = rng.gen_range(-1_000..1_000);
                gw.update(SCHEMA, mine[k], &doc_of(owner, score)).unwrap();
            }
            3 => {
                let owner = OWNERS[rng.gen_range(0..OWNERS.len())];
                gw.find_equal(SCHEMA, "owner", &Value::from(owner)).unwrap();
            }
            4 => {
                if mine.len() > 3 && rng.gen_bool(0.4) {
                    let k = rng.gen_range(0..mine.len());
                    gw.delete(SCHEMA, mine.swap_remove(k)).unwrap();
                } else {
                    gw.find_range(SCHEMA, "score", &Value::from(-500i64), &Value::from(500i64)).unwrap();
                }
            }
            _ => {
                gw.aggregate(SCHEMA, "score", AggFn::Sum, None).unwrap();
            }
        }
    }
    assert!(gw.fsck(SCHEMA).unwrap().is_clean());
}

#[test]
fn seeded_workload_is_byte_identical_across_transports() {
    const SEED: u64 = 0xD1FF_5EED;

    let sim = RecordingTransport::over(netsim_transport());
    drive_scripted(&gateway_over(sim.clone(), SEED, RetryPolicy::default()), SEED);
    let sim_log = sim.take_log();

    let server = loopback_server();
    let tcp = RecordingTransport::over(tcp_transport(&server));
    drive_scripted(&gateway_over(tcp.clone(), SEED, RetryPolicy::default()), SEED);
    let tcp_log = tcp.take_log();

    assert!(!sim_log.is_empty());
    assert_eq!(sim_log.len(), tcp_log.len(), "same number of wire hops");
    for (i, (sim_rec, tcp_rec)) in sim_log.iter().zip(&tcp_log).enumerate() {
        assert_eq!(sim_rec.0, tcp_rec.0, "hop {i}: route");
        assert_eq!(sim_rec.1, tcp_rec.1, "hop {i} ({}): request bytes", sim_rec.0);
        assert_eq!(sim_rec.2, tcp_rec.2, "hop {i} ({}): response", sim_rec.0);
    }
}

#[test]
fn different_seeds_actually_change_the_bytes() {
    // Sanity check on the oracle itself: if the log were insensitive to
    // the workload, the byte-identical assertion above would be vacuous.
    let a = RecordingTransport::over(netsim_transport());
    drive_scripted(&gateway_over(a.clone(), 0xA, RetryPolicy::default()), 0xA);
    let b = RecordingTransport::over(netsim_transport());
    drive_scripted(&gateway_over(b.clone(), 0xB, RetryPolicy::default()), 0xB);
    assert_ne!(a.take_log(), b.take_log());
}

// ------------------------------------- model-based concurrency, over TCP

/// A committed write, logged by the thread that performed it.
#[derive(Clone)]
enum WriteOp {
    Insert { id: DocId, owner: String, score: i64 },
    Update { id: DocId, owner: String, score: i64 },
    Delete { id: DocId },
}

/// One worker's seeded session against the shared engine (the
/// `tests/concurrency.rs` driver, without the worker-pool batch path).
fn drive(gw: &GatewayEngine, seed: u64, ops: usize) -> Vec<WriteOp> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut log: Vec<WriteOp> = Vec::new();
    let mut mine: Vec<(DocId, String, i64)> = Vec::new();
    {
        let owner = OWNERS[rng.gen_range(0..OWNERS.len())].to_string();
        let score: i64 = rng.gen_range(-1_000..1_000);
        let id = gw.insert(SCHEMA, &doc_of(&owner, score)).unwrap();
        log.push(WriteOp::Insert { id, owner: owner.clone(), score });
        mine.push((id, owner, score));
    }
    for op in 0..ops {
        match rng.gen_range(0..10u32) {
            0..=4 => {
                let owner = OWNERS[rng.gen_range(0..OWNERS.len())].to_string();
                let score: i64 = rng.gen_range(-1_000..1_000);
                let id = gw.insert(SCHEMA, &doc_of(&owner, score)).unwrap();
                log.push(WriteOp::Insert { id, owner: owner.clone(), score });
                mine.push((id, owner, score));
            }
            5 => {
                if mine.is_empty() {
                    continue;
                }
                let k = rng.gen_range(0..mine.len());
                let owner = OWNERS[rng.gen_range(0..OWNERS.len())].to_string();
                let score: i64 = rng.gen_range(-1_000..1_000);
                let id = mine[k].0;
                gw.update(SCHEMA, id, &doc_of(&owner, score)).unwrap();
                log.push(WriteOp::Update { id, owner: owner.clone(), score });
                mine[k] = (id, owner, score);
            }
            6 => {
                if mine.is_empty() {
                    continue;
                }
                let k = rng.gen_range(0..mine.len());
                let (id, _, _) = mine.swap_remove(k);
                gw.delete(SCHEMA, id).unwrap();
                log.push(WriteOp::Delete { id });
            }
            7 => {
                let owner = OWNERS[rng.gen_range(0..OWNERS.len())];
                gw.find_equal(SCHEMA, "owner", &Value::from(owner)).unwrap();
            }
            8 => {
                let lo: i64 = rng.gen_range(-1_000..0);
                let hi: i64 = rng.gen_range(0..1_000);
                gw.find_range(SCHEMA, "score", &Value::from(lo), &Value::from(hi)).unwrap();
            }
            _ => {
                gw.aggregate(SCHEMA, "score", AggFn::Sum, None).unwrap();
            }
        }
        // Read-your-writes on a private id across real sockets.
        if op % 7 == 0 && !mine.is_empty() {
            let (id, owner, score) = &mine[mine.len() - 1];
            let got = gw.get(SCHEMA, *id).unwrap();
            assert_eq!(got.get("owner"), Some(&Value::from(owner.as_str())));
            assert_eq!(got.get("score"), Some(&Value::from(*score)));
        }
    }
    log
}

fn contents(docs: &[Document]) -> Vec<(String, i64)> {
    let mut v: Vec<(String, i64)> = docs
        .iter()
        .map(|d| (d.get("owner").unwrap().as_str().unwrap().to_string(), d.get("score").unwrap().as_i64().unwrap()))
        .collect();
    v.sort();
    v
}

fn sorted_ids(docs: &[Document]) -> Vec<String> {
    let mut v: Vec<String> = docs.iter().map(|d| d.id().to_string()).collect();
    v.sort();
    v
}

/// The concurrency suite's oracle check, with the shared engine speaking
/// TCP to a loopback daemon and the oracle staying on netsim.
fn run_model_over_tcp(threads: usize, seed: u64, ops_per_thread: usize) {
    let server = loopback_server();
    let shared = Arc::new(gateway_over(tcp_transport(&server), seed, RetryPolicy::default()));
    let logs: Vec<Vec<WriteOp>> = thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let gw = Arc::clone(&shared);
                s.spawn(move || drive(&gw, seed ^ (t as u64).wrapping_mul(0x9E37_79B9), ops_per_thread))
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("worker thread must not panic")).collect()
    });

    // Replay the committed logs on a netsim-backed single-threaded oracle
    // and a plain HashMap model.
    let oracle = gateway_over(netsim_transport(), 0x0A_C1E, RetryPolicy::default());
    let mut model: HashMap<String, (String, i64)> = HashMap::new();
    let mut remap: HashMap<String, DocId> = HashMap::new();
    for log in &logs {
        for op in log {
            match op {
                WriteOp::Insert { id, owner, score } => {
                    let oid = oracle.insert(SCHEMA, &doc_of(owner, *score)).unwrap();
                    remap.insert(id.to_hex(), oid);
                    model.insert(id.to_hex(), (owner.clone(), *score));
                }
                WriteOp::Update { id, owner, score } => {
                    oracle.update(SCHEMA, remap[&id.to_hex()], &doc_of(owner, *score)).unwrap();
                    model.insert(id.to_hex(), (owner.clone(), *score));
                }
                WriteOp::Delete { id } => {
                    oracle.delete(SCHEMA, remap[&id.to_hex()]).unwrap();
                    remap.remove(&id.to_hex());
                    model.remove(&id.to_hex());
                }
            }
        }
    }

    assert_eq!(shared.count(SCHEMA).unwrap(), model.len() as u64, "tcp count vs model");
    assert_eq!(oracle.count(SCHEMA).unwrap(), model.len() as u64, "oracle count vs model");

    for owner in OWNERS {
        let hits = shared.find_equal(SCHEMA, "owner", &Value::from(owner)).unwrap();
        let mut expect_ids: Vec<String> =
            model.iter().filter(|(_, (o, _))| o == owner).map(|(id, _)| id.clone()).collect();
        expect_ids.sort();
        assert_eq!(sorted_ids(&hits), expect_ids, "tcp eq({owner}) ids");
        let oracle_hits = oracle.find_equal(SCHEMA, "owner", &Value::from(owner)).unwrap();
        assert_eq!(contents(&oracle_hits), contents(&hits), "oracle eq({owner}) contents");
    }

    for (lo, hi) in [(-1_000i64, 1_000i64), (-500, -1), (0, 250)] {
        let hits = shared.find_range(SCHEMA, "score", &Value::from(lo), &Value::from(hi)).unwrap();
        let mut expect_ids: Vec<String> =
            model.iter().filter(|(_, (_, s))| (lo..=hi).contains(s)).map(|(id, _)| id.clone()).collect();
        expect_ids.sort();
        assert_eq!(sorted_ids(&hits), expect_ids, "tcp range[{lo},{hi}] ids");
        let oracle_hits = oracle.find_range(SCHEMA, "score", &Value::from(lo), &Value::from(hi)).unwrap();
        assert_eq!(contents(&oracle_hits), contents(&hits), "oracle range[{lo},{hi}]");
    }

    let expect_sum: i64 = model.values().map(|(_, s)| *s).sum();
    let tcp_sum = shared.aggregate(SCHEMA, "score", AggFn::Sum, None).unwrap();
    assert!((tcp_sum - expect_sum as f64).abs() < 1e-6, "tcp sum {tcp_sum} vs model {expect_sum}");

    assert!(shared.fsck(SCHEMA).unwrap().is_clean(), "tcp engine fsck");
    assert!(oracle.fsck(SCHEMA).unwrap().is_clean(), "oracle fsck");
}

#[test]
fn two_threads_over_tcp_match_netsim_oracle() {
    run_model_over_tcp(2, 0x7C_901, 25);
}

#[test]
fn four_threads_over_tcp_match_netsim_oracle() {
    run_model_over_tcp(4, 0x7C_902, 15);
}

// ------------------------------------------------------- crash semantics

#[test]
fn server_kill_mid_write_is_transient_and_recover_pending_rolls_forward() {
    let server = loopback_server();
    // Retries OFF: the Disconnected error must reach the caller, leaving
    // the journaled write group pending.
    let mut gw = GatewayEngine::with_resilience(
        "transport-diff",
        Kms::generate(&mut StdRng::seed_from_u64(0xDEAD)),
        ResilientChannel::over(
            tcp_transport(&server),
            ResilienceConfig { retry: RetryPolicy::none(), seed: 0xDEAD, ..ResilienceConfig::default() },
        ),
        0xDEAD,
    );
    gw.register_schema(schema()).unwrap();
    gw.enable_write_journal(KvStore::new());

    // Prime so schema/tactic setup traffic is out of the way.
    gw.insert(SCHEMA, &doc_of("o0", 1)).unwrap();
    assert_eq!(gw.pending_writes(), 0);
    let count_before = gw.count(SCHEMA).unwrap();

    // The next request is applied server-side, then the connection dies
    // before the ack — the classic retry-ambiguity window.
    server.kill_after_applies(0);
    let err = gw.insert(SCHEMA, &doc_of("o1", 2)).unwrap_err();
    assert!(err.is_transient(), "typed transient failure, got {err:?}");
    assert!(
        matches!(&err, datablinder_core::error::CoreError::Net(NetError::Disconnected(_))),
        "Disconnected, got {err:?}"
    );
    assert_eq!(gw.pending_writes(), 1, "the interrupted group stays journaled");

    // Roll forward: the already-applied call dedups through the
    // idempotency envelope, the rest complete.
    let report = gw.recover_pending().unwrap();
    assert_eq!(report.entries, 1);
    assert_eq!(report.rolled_forward, 1, "failures: {:?}", report.failures);
    assert_eq!(gw.pending_writes(), 0);
    assert_eq!(gw.count(SCHEMA).unwrap(), count_before + 1, "exactly one new document");
    assert!(gw.fsck(SCHEMA).unwrap().is_clean());
}

#[test]
fn retry_across_reconnect_deduplicates_via_idempotency_envelope() {
    // The ISSUE 9 regression: retries ON. The write is applied, the ack is
    // lost, the connection drops — the retry reconnects and MUST NOT
    // double-apply.
    let server = loopback_server();
    let gw = gateway_over(tcp_transport(&server), 0x1DEA, RetryPolicy { max_attempts: 5, ..RetryPolicy::default() });

    gw.insert(SCHEMA, &doc_of("o0", 1)).unwrap();
    let count_before = gw.count(SCHEMA).unwrap();
    let attempts_before = gw.channel().metrics().attempts();

    server.kill_after_applies(0);
    let id = gw.insert(SCHEMA, &doc_of("o1", 2)).expect("retry absorbs the dropped connection");

    assert!(gw.channel().metrics().attempts() > attempts_before + 1, "the kill forced at least one retry");
    assert_eq!(gw.count(SCHEMA).unwrap(), count_before + 1, "retried write applied exactly once");
    let hits = gw.find_equal(SCHEMA, "owner", &Value::from("o1")).unwrap();
    assert_eq!(sorted_ids(&hits), vec![id.to_hex()], "no duplicate under a second id");
    assert!(gw.fsck(SCHEMA).unwrap().is_clean());
}
