//! Decode-side robustness: arbitrary bytes must never panic any codec —
//! they either parse or return `CoreError::Wire`/`SseError::Malformed`.

use datablinder_core::cloudproto::{FindIdsDnf, FindIdsEq, FindIdsRange, PaillierSum, PaillierSumResponse};
use datablinder_core::wire::{decode_document, decode_documents, decode_schema, decode_value};
use datablinder_sse::biex::{Biex2LevToken, BiexZmfToken};
use datablinder_sse::mitra::{MitraSearchToken, MitraUpdateToken};
use datablinder_sse::sophos::{SophosSearchToken, SophosUpdateToken};
use datablinder_sse::twolev::TwoLevToken;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 512, ..ProptestConfig::default() })]

    #[test]
    fn decoders_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let mut slice = bytes.as_slice();
        let _ = decode_value(&mut slice);
        let _ = decode_document(&bytes);
        let _ = decode_documents(&bytes);
        let _ = decode_schema(&bytes);
        let _ = FindIdsEq::decode(&bytes);
        let _ = FindIdsRange::decode(&bytes);
        let _ = FindIdsDnf::decode(&bytes);
        let _ = PaillierSum::decode(&bytes);
        let _ = PaillierSumResponse::decode(&bytes);
        let _ = MitraUpdateToken::decode(&bytes);
        let _ = MitraSearchToken::decode(&bytes);
        let _ = SophosUpdateToken::decode(&bytes);
        let _ = SophosSearchToken::decode(&bytes);
        let _ = TwoLevToken::decode(&bytes);
        let _ = Biex2LevToken::decode(&bytes);
        let _ = BiexZmfToken::decode(&bytes);
    }

    #[test]
    fn value_reencode_is_stable(bytes in prop::collection::vec(any::<u8>(), 0..128)) {
        // Whatever parses must re-encode to an equal value (canonical form).
        let mut slice = bytes.as_slice();
        if let Ok(v) = decode_value(&mut slice) {
            let mut buf = Vec::new();
            datablinder_core::wire::encode_value(&v, &mut buf);
            let mut slice2 = buf.as_slice();
            let v2 = decode_value(&mut slice2).expect("reencoded value parses");
            prop_assert_eq!(v, v2);
        }
    }
}
