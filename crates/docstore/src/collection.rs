//! Collections and the store root.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::Arc;

use parking_lot::RwLock;

use crate::filter::Filter;
use crate::value::{Document, Value};
use crate::DocStoreError;

/// Wrapper giving [`Value`] the `Ord` a BTreeMap index key needs, using
/// [`Value::total_cmp`].
#[derive(Debug, Clone, PartialEq)]
struct IndexKey(Value);

impl Eq for IndexKey {}

impl PartialOrd for IndexKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for IndexKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

#[derive(Default)]
struct CollectionInner {
    docs: HashMap<String, Document>,
    /// field -> (value -> ids)
    indexes: HashMap<String, BTreeMap<IndexKey, HashSet<String>>>,
}

/// A named set of documents with optional secondary indexes.
///
/// Cloning shares the underlying collection.
#[derive(Clone, Default)]
pub struct Collection {
    inner: Arc<RwLock<CollectionInner>>,
}

impl Collection {
    /// Creates an empty collection.
    pub fn new() -> Self {
        Collection::default()
    }

    /// Number of documents.
    pub fn len(&self) -> usize {
        self.inner.read().docs.len()
    }

    /// Whether the collection is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.read().docs.is_empty()
    }

    /// Names of the fields with a secondary index, sorted — snapshot and
    /// recovery flows persist these alongside the documents.
    pub fn indexed_fields(&self) -> Vec<String> {
        let mut fields: Vec<String> = self.inner.read().indexes.keys().cloned().collect();
        fields.sort();
        fields
    }

    /// Creates a secondary index on `field` (idempotent; backfills).
    pub fn create_index(&self, field: &str) {
        let mut inner = self.inner.write();
        if inner.indexes.contains_key(field) {
            return;
        }
        let mut index: BTreeMap<IndexKey, HashSet<String>> = BTreeMap::new();
        for (id, doc) in &inner.docs {
            if let Some(v) = doc.get(field) {
                index.entry(IndexKey(v.clone())).or_default().insert(id.clone());
            }
        }
        inner.indexes.insert(field.to_string(), index);
    }

    /// Inserts a new document.
    ///
    /// # Errors
    ///
    /// [`DocStoreError::DuplicateId`] if the id exists.
    pub fn insert(&self, doc: Document) -> Result<(), DocStoreError> {
        let mut inner = self.inner.write();
        if inner.docs.contains_key(doc.id()) {
            return Err(DocStoreError::DuplicateId(doc.id().to_string()));
        }
        index_doc(&mut inner, &doc, true);
        inner.docs.insert(doc.id().to_string(), doc);
        Ok(())
    }

    /// Fetches by id.
    pub fn get(&self, id: &str) -> Option<Document> {
        self.inner.read().docs.get(id).cloned()
    }

    /// Replaces the document with the same id.
    ///
    /// # Errors
    ///
    /// [`DocStoreError::NotFound`] if the id does not exist.
    pub fn update(&self, doc: Document) -> Result<(), DocStoreError> {
        let mut inner = self.inner.write();
        let old = inner.docs.get(doc.id()).cloned().ok_or_else(|| DocStoreError::NotFound(doc.id().to_string()))?;
        index_doc(&mut inner, &old, false);
        index_doc(&mut inner, &doc, true);
        inner.docs.insert(doc.id().to_string(), doc);
        Ok(())
    }

    /// Deletes by id.
    ///
    /// # Errors
    ///
    /// [`DocStoreError::NotFound`] if the id does not exist.
    pub fn delete(&self, id: &str) -> Result<(), DocStoreError> {
        let mut inner = self.inner.write();
        let old = inner.docs.remove(id).ok_or_else(|| DocStoreError::NotFound(id.to_string()))?;
        index_doc(&mut inner, &old, false);
        Ok(())
    }

    /// Finds documents matching `filter`, using a secondary index when an
    /// equality conjunct on an indexed field is present.
    pub fn find(&self, filter: &Filter) -> Vec<Document> {
        let inner = self.inner.read();
        if let Some((field, value)) = filter.index_candidate() {
            if let Some(index) = inner.indexes.get(field) {
                let mut out = Vec::new();
                if let Some(ids) = index.get(&IndexKey(value.clone())) {
                    for id in ids {
                        if let Some(doc) = inner.docs.get(id) {
                            if filter.matches(doc) {
                                out.push(doc.clone());
                            }
                        }
                    }
                }
                out.sort_by(|a, b| a.id().cmp(b.id()));
                return out;
            }
        }
        let mut out: Vec<Document> = inner.docs.values().filter(|d| filter.matches(d)).cloned().collect();
        out.sort_by(|a, b| a.id().cmp(b.id()));
        out
    }

    /// Counts matches without materializing documents.
    pub fn count(&self, filter: &Filter) -> usize {
        self.inner.read().docs.values().filter(|d| filter.matches(d)).count()
    }

    /// All document ids (unordered).
    pub fn ids(&self) -> Vec<String> {
        self.inner.read().docs.keys().cloned().collect()
    }
}

fn index_doc(inner: &mut CollectionInner, doc: &Document, add: bool) {
    // Split borrows: iterate index fields, read doc fields.
    for (field, index) in inner.indexes.iter_mut() {
        if let Some(v) = doc.get(field) {
            let key = IndexKey(v.clone());
            if add {
                index.entry(key).or_default().insert(doc.id().to_string());
            } else if let Some(set) = index.get_mut(&key) {
                set.remove(doc.id());
                if set.is_empty() {
                    index.remove(&key);
                }
            }
        }
    }
}

impl std::fmt::Debug for Collection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Collection").field("len", &self.len()).finish()
    }
}

/// The store root: named collections.
#[derive(Clone, Default)]
pub struct DocStore {
    collections: Arc<RwLock<HashMap<String, Collection>>>,
}

impl DocStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        DocStore::default()
    }

    /// Gets or creates the named collection.
    pub fn collection(&self, name: &str) -> Collection {
        self.collections.write().entry(name.to_string()).or_default().clone()
    }

    /// Names of existing collections.
    pub fn collection_names(&self) -> Vec<String> {
        self.collections.read().keys().cloned().collect()
    }

    /// Drops a collection; `true` if it existed.
    pub fn drop_collection(&self, name: &str) -> bool {
        self.collections.write().remove(name).is_some()
    }
}

impl std::fmt::Debug for DocStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DocStore").field("collections", &self.collection_names()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(id: &str, status: &str, value: i64) -> Document {
        Document::new(id).with("status", Value::from(status)).with("value", Value::from(value))
    }

    #[test]
    fn crud_lifecycle() {
        let c = Collection::new();
        c.insert(sample("1", "final", 10)).unwrap();
        assert_eq!(c.len(), 1);
        assert!(matches!(c.insert(sample("1", "x", 0)), Err(DocStoreError::DuplicateId(_))));
        assert_eq!(c.get("1").unwrap().get("status"), Some(&Value::from("final")));
        assert_eq!(c.get("nope"), None);

        c.update(sample("1", "amended", 11)).unwrap();
        assert_eq!(c.get("1").unwrap().get("status"), Some(&Value::from("amended")));
        assert!(matches!(c.update(sample("2", "x", 0)), Err(DocStoreError::NotFound(_))));

        c.delete("1").unwrap();
        assert!(c.is_empty());
        assert!(matches!(c.delete("1"), Err(DocStoreError::NotFound(_))));
    }

    #[test]
    fn find_with_filters() {
        let c = Collection::new();
        for i in 0..10 {
            c.insert(sample(&format!("d{i}"), if i % 2 == 0 { "final" } else { "draft" }, i)).unwrap();
        }
        assert_eq!(c.find(&Filter::eq("status", Value::from("final"))).len(), 5);
        assert_eq!(c.find(&Filter::between("value", Value::from(3i64), Value::from(6i64))).len(), 4);
        assert_eq!(c.find(&Filter::All).len(), 10);
        assert_eq!(c.count(&Filter::eq("status", Value::from("draft"))), 5);
        // Results are id-sorted for determinism.
        let hits = c.find(&Filter::All);
        let ids: Vec<&str> = hits.iter().map(|d| d.id()).collect();
        let mut sorted = ids.clone();
        sorted.sort();
        assert_eq!(ids, sorted);
    }

    #[test]
    fn index_consistency_through_mutations() {
        let c = Collection::new();
        c.insert(sample("a", "final", 1)).unwrap();
        c.create_index("status");
        c.insert(sample("b", "final", 2)).unwrap();
        c.insert(sample("c", "draft", 3)).unwrap();

        let finals = c.find(&Filter::eq("status", Value::from("final")));
        assert_eq!(finals.len(), 2, "backfilled + incremental");

        c.update(sample("a", "draft", 1)).unwrap();
        assert_eq!(c.find(&Filter::eq("status", Value::from("final"))).len(), 1);
        assert_eq!(c.find(&Filter::eq("status", Value::from("draft"))).len(), 2);

        c.delete("c").unwrap();
        assert_eq!(c.find(&Filter::eq("status", Value::from("draft"))).len(), 1);
    }

    #[test]
    fn indexed_find_respects_residual_filter() {
        let c = Collection::new();
        c.create_index("status");
        for i in 0..10 {
            c.insert(sample(&format!("d{i}"), "final", i)).unwrap();
        }
        let f = Filter::and(vec![Filter::eq("status", Value::from("final")), Filter::gte("value", Value::from(8i64))]);
        assert_eq!(c.find(&f).len(), 2);
    }

    #[test]
    fn store_collections() {
        let s = DocStore::new();
        let c1 = s.collection("a");
        c1.insert(sample("1", "x", 1)).unwrap();
        // Same handle through a second lookup.
        assert_eq!(s.collection("a").len(), 1);
        assert_eq!(s.collection("b").len(), 0);
        let mut names = s.collection_names();
        names.sort();
        assert_eq!(names, vec!["a", "b"]);
        assert!(s.drop_collection("b"));
        assert!(!s.drop_collection("b"));
    }

    #[test]
    fn create_index_idempotent() {
        let c = Collection::new();
        c.insert(sample("1", "x", 1)).unwrap();
        c.create_index("status");
        c.create_index("status");
        assert_eq!(c.find(&Filter::eq("status", Value::from("x"))).len(), 1);
    }
}
