//! Query filters: equality, range and boolean combinations over fields.

use crate::value::{Document, Value};

/// A predicate over documents.
///
/// # Examples
///
/// ```
/// use datablinder_docstore::{Document, Filter, Value};
///
/// let doc = Document::new("d").with("age", Value::from(42i64));
/// let f = Filter::and(vec![
///     Filter::gte("age", Value::from(18i64)),
///     Filter::lt("age", Value::from(65i64)),
/// ]);
/// assert!(f.matches(&doc));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum Filter {
    /// Matches every document.
    All,
    /// Field equals value (missing field never matches).
    Eq(String, Value),
    /// Field is strictly less than value.
    Lt(String, Value),
    /// Field is less than or equal to value.
    Lte(String, Value),
    /// Field is strictly greater than value.
    Gt(String, Value),
    /// Field is greater than or equal to value.
    Gte(String, Value),
    /// Field exists.
    Exists(String),
    /// Conjunction.
    And(Vec<Filter>),
    /// Disjunction.
    Or(Vec<Filter>),
    /// Negation.
    Not(Box<Filter>),
}

impl Filter {
    /// Equality shorthand.
    pub fn eq(field: impl Into<String>, value: Value) -> Filter {
        Filter::Eq(field.into(), value)
    }

    /// `<` shorthand.
    pub fn lt(field: impl Into<String>, value: Value) -> Filter {
        Filter::Lt(field.into(), value)
    }

    /// `<=` shorthand.
    pub fn lte(field: impl Into<String>, value: Value) -> Filter {
        Filter::Lte(field.into(), value)
    }

    /// `>` shorthand.
    pub fn gt(field: impl Into<String>, value: Value) -> Filter {
        Filter::Gt(field.into(), value)
    }

    /// `>=` shorthand.
    pub fn gte(field: impl Into<String>, value: Value) -> Filter {
        Filter::Gte(field.into(), value)
    }

    /// Inclusive range shorthand: `lo <= field <= hi`.
    pub fn between(field: impl Into<String>, lo: Value, hi: Value) -> Filter {
        let field = field.into();
        Filter::And(vec![Filter::Gte(field.clone(), lo), Filter::Lte(field, hi)])
    }

    /// Conjunction shorthand.
    pub fn and(filters: Vec<Filter>) -> Filter {
        Filter::And(filters)
    }

    /// Disjunction shorthand.
    pub fn or(filters: Vec<Filter>) -> Filter {
        Filter::Or(filters)
    }

    /// Negation shorthand.
    #[allow(clippy::should_implement_trait)]
    pub fn not(filter: Filter) -> Filter {
        Filter::Not(Box::new(filter))
    }

    /// Evaluates the filter against a document.
    pub fn matches(&self, doc: &Document) -> bool {
        use std::cmp::Ordering;
        match self {
            Filter::All => true,
            Filter::Eq(f, v) => doc.get(f).is_some_and(|x| x.total_cmp(v) == Ordering::Equal),
            Filter::Lt(f, v) => doc.get(f).is_some_and(|x| x.total_cmp(v) == Ordering::Less),
            Filter::Lte(f, v) => doc.get(f).is_some_and(|x| x.total_cmp(v) != Ordering::Greater),
            Filter::Gt(f, v) => doc.get(f).is_some_and(|x| x.total_cmp(v) == Ordering::Greater),
            Filter::Gte(f, v) => doc.get(f).is_some_and(|x| x.total_cmp(v) != Ordering::Less),
            Filter::Exists(f) => doc.get(f).is_some(),
            Filter::And(fs) => fs.iter().all(|f| f.matches(doc)),
            Filter::Or(fs) => fs.iter().any(|f| f.matches(doc)),
            Filter::Not(f) => !f.matches(doc),
        }
    }

    /// If this filter (or a conjunct of it) is an equality on an indexed
    /// field, returns `(field, value)` so the collection can use the index.
    pub(crate) fn index_candidate(&self) -> Option<(&str, &Value)> {
        match self {
            Filter::Eq(f, v) => Some((f, v)),
            Filter::And(fs) => fs.iter().find_map(|f| f.index_candidate()),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc() -> Document {
        Document::new("d")
            .with("name", Value::from("alice"))
            .with("age", Value::from(30i64))
            .with("score", Value::from(7.5f64))
    }

    #[test]
    fn eq_and_missing_fields() {
        assert!(Filter::eq("name", Value::from("alice")).matches(&doc()));
        assert!(!Filter::eq("name", Value::from("bob")).matches(&doc()));
        assert!(!Filter::eq("missing", Value::Null).matches(&doc()));
        assert!(Filter::Exists("age".into()).matches(&doc()));
        assert!(!Filter::Exists("missing".into()).matches(&doc()));
    }

    #[test]
    fn range_operators() {
        let d = doc();
        assert!(Filter::lt("age", Value::from(31i64)).matches(&d));
        assert!(!Filter::lt("age", Value::from(30i64)).matches(&d));
        assert!(Filter::lte("age", Value::from(30i64)).matches(&d));
        assert!(Filter::gt("age", Value::from(29i64)).matches(&d));
        assert!(Filter::gte("age", Value::from(30i64)).matches(&d));
        assert!(Filter::between("age", Value::from(30i64), Value::from(40i64)).matches(&d));
        assert!(!Filter::between("age", Value::from(31i64), Value::from(40i64)).matches(&d));
    }

    #[test]
    fn boolean_combinations() {
        let d = doc();
        let yes = Filter::eq("name", Value::from("alice"));
        let no = Filter::eq("name", Value::from("bob"));
        assert!(Filter::and(vec![yes.clone(), Filter::All]).matches(&d));
        assert!(!Filter::and(vec![yes.clone(), no.clone()]).matches(&d));
        assert!(Filter::or(vec![no.clone(), yes.clone()]).matches(&d));
        assert!(!Filter::or(vec![no.clone()]).matches(&d));
        assert!(Filter::not(no).matches(&d));
        assert!(!Filter::not(yes).matches(&d));
        // Vacuous cases.
        assert!(Filter::and(vec![]).matches(&d));
        assert!(!Filter::or(vec![]).matches(&d));
    }

    #[test]
    fn range_on_missing_field_never_matches() {
        let d = doc();
        assert!(!Filter::lt("missing", Value::from(1i64)).matches(&d));
        assert!(!Filter::gte("missing", Value::from(1i64)).matches(&d));
    }

    #[test]
    fn index_candidate_extraction() {
        let f = Filter::and(vec![Filter::gt("age", Value::from(10i64)), Filter::eq("name", Value::from("alice"))]);
        assert_eq!(f.index_candidate(), Some(("name", &Value::from("alice"))));
        assert_eq!(Filter::All.index_candidate(), None);
    }
}
