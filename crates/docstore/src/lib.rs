//! A MongoDB-like in-process document store.
//!
//! DataBlinder "employed document-oriented databases, e.g., MongoDB and
//! Elasticsearch, to store documents and indexes" (§4.3). This substrate
//! reproduces the slice of that functionality the middleware needs:
//! collections of schemaless documents, id lookup, field filters
//! (equality / range / boolean combinations) and secondary indexes.
//!
//! The cloud side of DataBlinder stores only *encrypted* field values here;
//! plaintext filters exist so the `S_A` baseline scenario (no protection)
//! can run against the very same store.
//!
//! # Examples
//!
//! ```
//! use datablinder_docstore::{DocStore, Document, Filter, Value};
//!
//! let store = DocStore::new();
//! let coll = store.collection("observations");
//! let mut doc = Document::new("obs-1");
//! doc.set("status", Value::from("final"));
//! coll.insert(doc).unwrap();
//! let hits = coll.find(&Filter::eq("status", Value::from("final")));
//! assert_eq!(hits.len(), 1);
//! ```

#![warn(missing_docs)]
mod collection;
mod filter;
mod value;

pub use collection::{Collection, DocStore};
pub use filter::Filter;
pub use value::{Document, Value};

/// Errors produced by the document store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DocStoreError {
    /// Insert with an id that already exists.
    DuplicateId(String),
    /// Update/delete of an id that does not exist.
    NotFound(String),
}

impl std::fmt::Display for DocStoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DocStoreError::DuplicateId(id) => write!(f, "document id already exists: {id}"),
            DocStoreError::NotFound(id) => write!(f, "document not found: {id}"),
        }
    }
}

impl std::error::Error for DocStoreError {}
