//! Schemaless document values.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

/// A JSON-like value.
///
/// `Bytes` exists because encrypted field values are raw ciphertexts;
/// MongoDB's BSON has the same distinction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Value {
    /// Absent/null.
    Null,
    /// Boolean.
    Bool(bool),
    /// Signed integer.
    I64(i64),
    /// Floating point.
    F64(f64),
    /// UTF-8 text.
    Str(String),
    /// Raw bytes (ciphertexts, tokens).
    Bytes(Vec<u8>),
    /// Ordered list.
    Array(Vec<Value>),
    /// Nested document.
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// Type name, for diagnostics.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::I64(_) => "i64",
            Value::F64(_) => "f64",
            Value::Str(_) => "string",
            Value::Bytes(_) => "bytes",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// Total order across values (cross-type ordered by type rank), so
    /// range filters and index BTreeMaps are well-defined. `F64` NaNs sort
    /// greatest.
    pub fn total_cmp(&self, other: &Value) -> std::cmp::Ordering {
        use std::cmp::Ordering;
        use Value::*;
        fn rank(v: &Value) -> u8 {
            match v {
                Null => 0,
                Bool(_) => 1,
                I64(_) => 2,
                F64(_) => 3,
                Str(_) => 4,
                Bytes(_) => 5,
                Array(_) => 6,
                Object(_) => 7,
            }
        }
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (I64(a), I64(b)) => a.cmp(b),
            (F64(a), F64(b)) => a.total_cmp(b),
            // Mixed numerics compare numerically so range queries over a
            // field holding both behave sensibly.
            (I64(a), F64(b)) => (*a as f64).total_cmp(b),
            (F64(a), I64(b)) => a.total_cmp(&(*b as f64)),
            (Str(a), Str(b)) => a.cmp(b),
            (Bytes(a), Bytes(b)) => a.cmp(b),
            (Array(a), Array(b)) => {
                for (x, y) in a.iter().zip(b.iter()) {
                    match x.total_cmp(y) {
                        Ordering::Equal => continue,
                        ord => return ord,
                    }
                }
                a.len().cmp(&b.len())
            }
            (Object(a), Object(b)) => {
                for ((ka, va), (kb, vb)) in a.iter().zip(b.iter()) {
                    match ka.cmp(kb).then_with(|| va.total_cmp(vb)) {
                        Ordering::Equal => continue,
                        ord => return ord,
                    }
                }
                a.len().cmp(&b.len())
            }
            (a, b) => rank(a).cmp(&rank(b)),
        }
    }

    /// Interprets as `i64` if numeric.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::I64(v) => Some(*v),
            Value::F64(v) if v.fract() == 0.0 => Some(*v as i64),
            _ => None,
        }
    }

    /// Interprets as `f64` if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::I64(v) => Some(*v as f64),
            Value::F64(v) => Some(*v),
            _ => None,
        }
    }

    /// Interprets as `&str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Interprets as bytes.
    pub fn as_bytes(&self) -> Option<&[u8]> {
        match self {
            Value::Bytes(b) => Some(b),
            _ => None,
        }
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<Vec<u8>> for Value {
    fn from(v: Vec<u8>) -> Self {
        Value::Bytes(v)
    }
}

/// A document: a string id plus named fields.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Document {
    id: String,
    fields: BTreeMap<String, Value>,
}

impl Document {
    /// Creates an empty document with the given id.
    pub fn new(id: impl Into<String>) -> Self {
        Document { id: id.into(), fields: BTreeMap::new() }
    }

    /// The document id.
    pub fn id(&self) -> &str {
        &self.id
    }

    /// Sets a field, returning `self` for chaining-free builder use.
    pub fn set(&mut self, field: impl Into<String>, value: Value) -> &mut Self {
        self.fields.insert(field.into(), value);
        self
    }

    /// Builder-style field set.
    #[must_use]
    pub fn with(mut self, field: impl Into<String>, value: Value) -> Self {
        self.fields.insert(field.into(), value);
        self
    }

    /// Reads a field.
    pub fn get(&self, field: &str) -> Option<&Value> {
        self.fields.get(field)
    }

    /// Removes a field.
    pub fn remove(&mut self, field: &str) -> Option<Value> {
        self.fields.remove(field)
    }

    /// Iterates fields in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.fields.iter()
    }

    /// Number of fields.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// Whether the document has no fields.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Field names.
    pub fn field_names(&self) -> impl Iterator<Item = &String> {
        self.fields.keys()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Ordering;

    #[test]
    fn total_cmp_same_types() {
        assert_eq!(Value::from(1i64).total_cmp(&Value::from(2i64)), Ordering::Less);
        assert_eq!(Value::from("a").total_cmp(&Value::from("b")), Ordering::Less);
        assert_eq!(Value::from(true).total_cmp(&Value::from(false)), Ordering::Greater);
        assert_eq!(Value::Null.total_cmp(&Value::Null), Ordering::Equal);
    }

    #[test]
    fn total_cmp_mixed_numeric() {
        assert_eq!(Value::from(1i64).total_cmp(&Value::from(1.5f64)), Ordering::Less);
        assert_eq!(Value::from(2.0f64).total_cmp(&Value::from(2i64)), Ordering::Equal);
    }

    #[test]
    fn total_cmp_cross_type_rank() {
        assert_eq!(Value::Null.total_cmp(&Value::from(false)), Ordering::Less);
        assert_eq!(Value::from("s").total_cmp(&Value::from(1i64)), Ordering::Greater);
    }

    #[test]
    fn arrays_lexicographic() {
        let a = Value::Array(vec![Value::from(1i64), Value::from(2i64)]);
        let b = Value::Array(vec![Value::from(1i64), Value::from(3i64)]);
        let c = Value::Array(vec![Value::from(1i64)]);
        assert_eq!(a.total_cmp(&b), Ordering::Less);
        assert_eq!(c.total_cmp(&a), Ordering::Less);
    }

    #[test]
    fn document_accessors() {
        let mut d = Document::new("d1");
        d.set("a", Value::from(1i64));
        d.set("b", Value::from("x"));
        assert_eq!(d.id(), "d1");
        assert_eq!(d.len(), 2);
        assert_eq!(d.get("a"), Some(&Value::from(1i64)));
        assert_eq!(d.remove("a"), Some(Value::from(1i64)));
        assert_eq!(d.get("a"), None);
        assert!(!d.is_empty());
        let d2 = Document::new("d2").with("f", Value::from(true));
        assert_eq!(d2.get("f"), Some(&Value::from(true)));
    }

    #[test]
    fn casts() {
        assert_eq!(Value::from(3i64).as_f64(), Some(3.0));
        assert_eq!(Value::from(3.0f64).as_i64(), Some(3));
        assert_eq!(Value::from(3.5f64).as_i64(), None);
        assert_eq!(Value::from("s").as_str(), Some("s"));
        assert_eq!(Value::Bytes(vec![1]).as_bytes(), Some(&[1u8][..]));
        assert_eq!(Value::from("s").as_i64(), None);
    }
}
