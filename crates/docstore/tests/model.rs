//! Property tests: indexed `find` must agree with a naive full scan for
//! arbitrary filters and mutation sequences.

use datablinder_docstore::{Collection, Document, Filter, Value};
use proptest::prelude::*;

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        (-50i64..50).prop_map(Value::from),
        prop::sample::select(vec!["a", "b", "c", "d"]).prop_map(Value::from),
        any::<bool>().prop_map(Value::from),
    ]
}

fn arb_doc(id: usize) -> impl Strategy<Value = Document> {
    (arb_value(), arb_value()).prop_map(move |(x, y)| Document::new(format!("d{id}")).with("x", x).with("y", y))
}

fn arb_filter() -> impl Strategy<Value = Filter> {
    let leaf = prop_oneof![
        Just(Filter::All),
        arb_value().prop_map(|v| Filter::eq("x", v)),
        arb_value().prop_map(|v| Filter::lt("x", v)),
        arb_value().prop_map(|v| Filter::gte("y", v)),
        Just(Filter::Exists("x".into())),
    ];
    leaf.prop_recursive(2, 8, 3, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..3).prop_map(Filter::and),
            prop::collection::vec(inner.clone(), 0..3).prop_map(Filter::or),
            inner.prop_map(Filter::not),
        ]
    })
}

proptest! {
    #[test]
    fn indexed_find_equals_full_scan(
        docs in prop::collection::vec(arb_doc(0), 0..30).prop_map(|ds| {
            // Re-key with unique ids.
            ds.into_iter().enumerate().map(|(i, d)| {
                let mut nd = Document::new(format!("d{i}"));
                for (f, v) in d.iter() { nd.set(f.clone(), v.clone()); }
                nd
            }).collect::<Vec<_>>()
        }),
        filter in arb_filter(),
    ) {
        let indexed = Collection::new();
        indexed.create_index("x");
        let plain = Collection::new();
        for d in &docs {
            indexed.insert(d.clone()).unwrap();
            plain.insert(d.clone()).unwrap();
        }
        let a: Vec<String> = indexed.find(&filter).iter().map(|d| d.id().to_string()).collect();
        let b: Vec<String> = plain.find(&filter).iter().map(|d| d.id().to_string()).collect();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn index_survives_updates_and_deletes(
        initial in prop::collection::vec(arb_value(), 1..20),
        updates in prop::collection::vec((0usize..20, arb_value()), 0..20),
        deletes in prop::collection::vec(0usize..20, 0..10),
    ) {
        let coll = Collection::new();
        coll.create_index("x");
        let mut oracle: Vec<Option<Value>> = Vec::new();
        for (i, v) in initial.iter().enumerate() {
            coll.insert(Document::new(format!("d{i}")).with("x", v.clone())).unwrap();
            oracle.push(Some(v.clone()));
        }
        for (i, v) in &updates {
            if *i < oracle.len() && oracle[*i].is_some() {
                coll.update(Document::new(format!("d{i}")).with("x", v.clone())).unwrap();
                oracle[*i] = Some(v.clone());
            }
        }
        for i in &deletes {
            if *i < oracle.len() && oracle[*i].is_some() {
                coll.delete(&format!("d{i}")).unwrap();
                oracle[*i] = None;
            }
        }
        // Every oracle value must be findable through the index, and counts
        // must match exactly.
        for v in [Value::from(-1i64), Value::from("a"), Value::from(true)] {
            let hits = coll.find(&Filter::eq("x", v.clone())).len();
            let expect = oracle
                .iter()
                .filter(|o| matches!(o, Some(x) if x.total_cmp(&v) == std::cmp::Ordering::Equal))
                .count();
            prop_assert_eq!(hits, expect, "value {:?}", v);
        }
        prop_assert_eq!(coll.len(), oracle.iter().flatten().count());
    }
}
