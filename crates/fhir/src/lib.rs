//! FHIR-like medical resources: the paper's healthcare validation case
//! (§5.1).
//!
//! Provides the exact annotated *Observation* schema of the paper's
//! example (glucose blood-test observations), plus a synthetic clinical
//! data generator producing realistic field distributions for the
//! benchmarks (the paper used FHIR-compliant documents from its industry
//! partners; we substitute synthetic data with the same shape —
//! DESIGN.md §5).

#![warn(missing_docs)]
use datablinder_core::model::{AggFn, FieldAnnotation, FieldOp, FieldType, ProtectionClass, Schema};
use datablinder_docstore::{Document, Value};
use rand::seq::SliceRandom;
use rand::Rng;

/// Observation status codes (FHIR `Observation.status` value set).
pub const STATUSES: [&str; 4] = ["registered", "preliminary", "final", "amended"];

/// LOINC-style codes the generator draws from.
pub const CODES: [&str; 8] = [
    "glucose",
    "heart-rate",
    "blood-pressure",
    "body-temperature",
    "bmi",
    "cholesterol",
    "hemoglobin",
    "oxygen-saturation",
];

/// Clinician names for the `performer` field.
pub const PERFORMERS: [&str; 6] =
    ["John Smith", "Maria Garcia", "Wei Chen", "Fatima al-Said", "Anna Kowalska", "James O'Brien"];

/// The §5.1 Observation schema, with the paper's exact annotations:
///
/// | field | class | ops | agg |
/// |-------|-------|-----|-----|
/// | status | C3 | I, EQ, BL | |
/// | code | C3 | I, EQ, BL | |
/// | subject | C2 | I, EQ | |
/// | effective | C5 | I, EQ, BL, RG | |
/// | issued | C5 | I, EQ, BL, RG | |
/// | performer | C1 | I | |
/// | value | C3 | I, EQ, BL | avg |
///
/// (`identifier` and `interpretation` are stored as plaintext metadata in
/// the example document; `interpretation` is also listed sensitive-free.)
pub fn observation_schema() -> Schema {
    use FieldOp::*;
    Schema::new("observation")
        .plain_field("identifier", FieldType::Integer, true)
        .plain_field("interpretation", FieldType::Text, false)
        .sensitive_field(
            "status",
            FieldType::Text,
            true,
            FieldAnnotation::new(ProtectionClass::C3, vec![Insert, Equality, Boolean]),
        )
        .sensitive_field(
            "code",
            FieldType::Text,
            true,
            FieldAnnotation::new(ProtectionClass::C3, vec![Insert, Equality, Boolean]),
        )
        .sensitive_field(
            "subject",
            FieldType::Text,
            true,
            FieldAnnotation::new(ProtectionClass::C2, vec![Insert, Equality]),
        )
        .sensitive_field(
            "effective",
            FieldType::Integer,
            true,
            FieldAnnotation::new(ProtectionClass::C5, vec![Insert, Equality, Boolean, Range]),
        )
        .sensitive_field(
            "issued",
            FieldType::Integer,
            true,
            FieldAnnotation::new(ProtectionClass::C5, vec![Insert, Equality, Boolean, Range]),
        )
        .sensitive_field("performer", FieldType::Text, true, FieldAnnotation::new(ProtectionClass::C1, vec![Insert]))
        .sensitive_field(
            "value",
            FieldType::Float,
            true,
            FieldAnnotation::new(ProtectionClass::C3, vec![Insert, Equality, Boolean]).with_aggs(vec![AggFn::Avg]),
        )
}

/// The paper's example document (`id: f001`, glucose observation).
pub fn example_observation() -> Document {
    Document::new("f001")
        .with("identifier", Value::from(6323i64))
        .with("status", Value::from("final"))
        .with("code", Value::from("glucose"))
        .with("subject", Value::from("John Doe"))
        .with("effective", Value::from(1359966610i64))
        .with("issued", Value::from(1362407410i64))
        .with("performer", Value::from("John Smith"))
        .with("value", Value::from(6.3f64))
        .with("interpretation", Value::from("High"))
}

/// Synthetic clinical observation generator.
///
/// # Examples
///
/// ```
/// use datablinder_fhir::ObservationGenerator;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let mut gen = ObservationGenerator::new(100);
/// let obs = gen.generate(&mut rng);
/// assert!(obs.get("status").is_some());
/// ```
#[derive(Debug, Clone)]
pub struct ObservationGenerator {
    /// Number of distinct patients the generator cycles through.
    pub patient_pool: usize,
    counter: u64,
}

impl ObservationGenerator {
    /// Creates a generator over a pool of `patient_pool` patients.
    pub fn new(patient_pool: usize) -> Self {
        ObservationGenerator { patient_pool: patient_pool.max(1), counter: 0 }
    }

    /// Patient name for index `i` (stable, so equality searches have
    /// predictable result sizes).
    pub fn patient(&self, i: usize) -> String {
        format!("Patient {:05}", i % self.patient_pool)
    }

    /// Generates one observation document (id field unused; the middleware
    /// mints DocIds).
    pub fn generate<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Document {
        self.counter += 1;
        let code = *CODES.choose(rng).expect("non-empty");
        let value = match code {
            "glucose" => rng.gen_range(3.5..12.0),
            "heart-rate" => rng.gen_range(45.0..180.0),
            "blood-pressure" => rng.gen_range(80.0..190.0),
            "body-temperature" => rng.gen_range(35.0..41.5),
            "bmi" => rng.gen_range(15.0..45.0),
            "cholesterol" => rng.gen_range(2.5..8.5),
            "hemoglobin" => rng.gen_range(7.0..19.0),
            _ => rng.gen_range(80.0..100.0),
        };
        // Timestamps in 2012..2019 (the paper's example era).
        let effective: i64 = rng.gen_range(1_325_376_000..1_546_300_800);
        let issued = effective + rng.gen_range(3600..30 * 24 * 3600);
        let interpretation = if value > 10.0 { "High" } else { "Normal" };
        Document::new(format!("obs-{}", self.counter))
            .with("identifier", Value::from(self.counter as i64))
            .with("status", Value::from(*STATUSES.choose(rng).expect("non-empty")))
            .with("code", Value::from(code))
            .with("subject", Value::from(self.patient(rng.gen_range(0..self.patient_pool))))
            .with("effective", Value::from(effective))
            .with("issued", Value::from(issued))
            .with("performer", Value::from(*PERFORMERS.choose(rng).expect("non-empty")))
            .with("value", Value::from((value * 10.0f64).round() / 10.0))
            .with("interpretation", Value::from(interpretation))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datablinder_core::metadata::validate_document;
    use datablinder_core::registry::TacticRegistry;
    use rand::SeedableRng;

    #[test]
    fn example_document_validates() {
        validate_document(&observation_schema(), &example_observation()).unwrap();
    }

    #[test]
    fn generated_documents_validate() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let mut gen = ObservationGenerator::new(50);
        let schema = observation_schema();
        for _ in 0..200 {
            let doc = gen.generate(&mut rng);
            validate_document(&schema, &doc).unwrap();
        }
    }

    /// The §5.1 tactic-selection table holds for the schema as published.
    #[test]
    fn schema_selection_reproduces_paper() {
        let schema = observation_schema();
        let registry = TacticRegistry::with_builtins();
        let expect: &[(&str, &[&str])] = &[
            ("status", &["biex-2lev"]),
            ("code", &["biex-2lev"]),
            ("subject", &["mitra"]),
            ("effective", &["det", "ope"]),
            ("issued", &["det", "ope"]),
            ("performer", &["rnd"]),
            ("value", &["biex-2lev", "paillier"]),
        ];
        for (field, tactics) in expect {
            let annotation = schema.fields[*field].annotation.as_ref().unwrap();
            let selection = registry.select(field, annotation).unwrap();
            let mut listed = selection.listed_tactics();
            listed.sort();
            let mut want: Vec<String> = tactics.iter().map(|s| s.to_string()).collect();
            want.sort();
            assert_eq!(listed, want, "selection for {field}");
        }
    }

    #[test]
    fn generator_value_ranges_plausible() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let mut gen = ObservationGenerator::new(10);
        for _ in 0..100 {
            let doc = gen.generate(&mut rng);
            let v = doc.get("value").unwrap().as_f64().unwrap();
            assert!(v > 0.0 && v < 200.0);
            let eff = doc.get("effective").unwrap().as_i64().unwrap();
            let iss = doc.get("issued").unwrap().as_i64().unwrap();
            assert!(iss > eff, "issued after effective");
        }
    }

    #[test]
    fn patient_pool_cycles() {
        let gen = ObservationGenerator::new(10);
        assert_eq!(gen.patient(0), gen.patient(10));
        assert_ne!(gen.patient(0), gen.patient(1));
    }
}
