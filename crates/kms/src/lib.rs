//! Key management for the gateway's trusted zone.
//!
//! The paper's architecture exposes a *Keys* interface "to allow the system
//! to integrate with on-premise key management systems (e.g., HSM)" (§4).
//! This crate simulates such a system:
//!
//! * a **master key** that never leaves the KMS,
//! * **hierarchical derivation**: per-(application, field, tactic) subkeys
//!   via HKDF, so compromising one tactic key does not expose others,
//! * **key rotation** with versioning — the mechanism behind the paper's
//!   crypto-agility story (Sophos lists "key management" as its integration
//!   challenge in Table 2),
//! * **opaque secret storage** for tactics with non-derivable key material
//!   (Paillier keypairs, RSA trapdoors),
//! * an **audit counter** per scope.
//!
//! # Examples
//!
//! ```
//! use datablinder_kms::{Kms, KeyScope};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(3);
//! let kms = Kms::generate(&mut rng);
//! let scope = KeyScope::new("ehealth", "observation.status", "mitra");
//! let k1 = kms.key_for(&scope);
//! assert_eq!(k1, kms.key_for(&scope), "stable until rotated");
//! kms.rotate(&scope);
//! assert_ne!(k1, kms.key_for(&scope));
//! ```

#![warn(missing_docs)]
use std::collections::HashMap;
use std::sync::Arc;

use datablinder_primitives::keys::SymmetricKey;
use parking_lot::RwLock;
use rand::RngCore;

/// Identifies one derived key: application, field and tactic.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct KeyScope {
    /// Owning application (tenant).
    pub application: String,
    /// Qualified field name, e.g. `observation.status`.
    pub field: String,
    /// Tactic identifier, e.g. `mitra`.
    pub tactic: String,
}

impl KeyScope {
    /// Creates a scope.
    pub fn new(application: impl Into<String>, field: impl Into<String>, tactic: impl Into<String>) -> Self {
        KeyScope { application: application.into(), field: field.into(), tactic: tactic.into() }
    }

    fn label(&self, version: u64) -> Vec<u8> {
        let mut label = Vec::new();
        for part in [self.application.as_bytes(), self.field.as_bytes(), self.tactic.as_bytes()] {
            label.extend_from_slice(&(part.len() as u64).to_be_bytes());
            label.extend_from_slice(part);
        }
        label.extend_from_slice(&version.to_be_bytes());
        label
    }
}

/// Errors from the KMS.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KmsError {
    /// A named secret was not found.
    SecretNotFound(String),
}

impl std::fmt::Display for KmsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KmsError::SecretNotFound(name) => write!(f, "secret not found: {name}"),
        }
    }
}

impl std::error::Error for KmsError {}

#[derive(Default)]
struct KmsInner {
    versions: HashMap<KeyScope, u64>,
    secrets: HashMap<String, Vec<u8>>,
    requests: HashMap<KeyScope, u64>,
}

/// The key management system. Clone handles share state.
#[derive(Clone)]
pub struct Kms {
    master: Arc<SymmetricKey>,
    inner: Arc<RwLock<KmsInner>>,
}

impl Kms {
    /// Creates a KMS around an existing master key.
    pub fn new(master: SymmetricKey) -> Self {
        Kms { master: Arc::new(master), inner: Arc::default() }
    }

    /// Creates a KMS with a freshly generated 256-bit master key.
    pub fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        Kms::new(SymmetricKey::generate(rng, 32))
    }

    /// Derives the current key for `scope` (32 bytes).
    ///
    /// Stable across calls until [`Kms::rotate`] is invoked for the scope.
    pub fn key_for(&self, scope: &KeyScope) -> SymmetricKey {
        let version = {
            let mut inner = self.inner.write();
            *inner.requests.entry(scope.clone()).or_insert(0) += 1;
            *inner.versions.get(scope).unwrap_or(&0)
        };
        self.master.derive(&scope.label(version), 32)
    }

    /// Derives the key for a specific historical version (re-encryption
    /// during rotation needs both old and new).
    pub fn key_for_version(&self, scope: &KeyScope, version: u64) -> SymmetricKey {
        self.master.derive(&scope.label(version), 32)
    }

    /// Current version of a scope (0 if never rotated).
    pub fn current_version(&self, scope: &KeyScope) -> u64 {
        *self.inner.read().versions.get(scope).unwrap_or(&0)
    }

    /// Rotates the scope to a new version; returns the new version number.
    pub fn rotate(&self, scope: &KeyScope) -> u64 {
        let mut inner = self.inner.write();
        let v = inner.versions.entry(scope.clone()).or_insert(0);
        *v += 1;
        *v
    }

    /// Stores an opaque secret (e.g. a serialized Paillier keypair).
    pub fn put_secret(&self, name: &str, secret: Vec<u8>) {
        self.inner.write().secrets.insert(name.to_string(), secret);
    }

    /// Fetches an opaque secret.
    ///
    /// # Errors
    ///
    /// [`KmsError::SecretNotFound`] when absent.
    pub fn secret(&self, name: &str) -> Result<Vec<u8>, KmsError> {
        self.inner.read().secrets.get(name).cloned().ok_or_else(|| KmsError::SecretNotFound(name.to_string()))
    }

    /// Whether a named secret exists.
    pub fn has_secret(&self, name: &str) -> bool {
        self.inner.read().secrets.contains_key(name)
    }

    /// Number of `key_for` requests served for a scope (audit trail).
    pub fn audit_requests(&self, scope: &KeyScope) -> u64 {
        *self.inner.read().requests.get(scope).unwrap_or(&0)
    }
}

impl std::fmt::Debug for Kms {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.read();
        f.debug_struct("Kms").field("scopes", &inner.versions.len()).field("secrets", &inner.secrets.len()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn kms() -> Kms {
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        Kms::generate(&mut rng)
    }

    #[test]
    fn derivation_is_scope_separated() {
        let kms = kms();
        let a = kms.key_for(&KeyScope::new("app", "f1", "det"));
        let b = kms.key_for(&KeyScope::new("app", "f2", "det"));
        let c = kms.key_for(&KeyScope::new("app", "f1", "rnd"));
        let d = kms.key_for(&KeyScope::new("other", "f1", "det"));
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
    }

    #[test]
    fn label_injective_on_boundaries() {
        // ("ab","c") vs ("a","bc") must not collide.
        let kms = kms();
        let a = kms.key_for(&KeyScope::new("ab", "c", "t"));
        let b = kms.key_for(&KeyScope::new("a", "bc", "t"));
        assert_ne!(a, b);
    }

    #[test]
    fn rotation_changes_keys_and_preserves_history() {
        let kms = kms();
        let scope = KeyScope::new("app", "f", "ope");
        let v0_key = kms.key_for(&scope);
        assert_eq!(kms.current_version(&scope), 0);
        assert_eq!(kms.rotate(&scope), 1);
        let v1_key = kms.key_for(&scope);
        assert_ne!(v0_key, v1_key);
        assert_eq!(kms.key_for_version(&scope, 0), v0_key);
        assert_eq!(kms.key_for_version(&scope, 1), v1_key);
        assert_eq!(kms.rotate(&scope), 2);
    }

    #[test]
    fn secrets_roundtrip() {
        let kms = kms();
        assert!(!kms.has_secret("paillier/app"));
        assert!(matches!(kms.secret("paillier/app"), Err(KmsError::SecretNotFound(_))));
        kms.put_secret("paillier/app", vec![1, 2, 3]);
        assert!(kms.has_secret("paillier/app"));
        assert_eq!(kms.secret("paillier/app").unwrap(), vec![1, 2, 3]);
    }

    #[test]
    fn audit_counts_requests() {
        let kms = kms();
        let scope = KeyScope::new("app", "f", "det");
        assert_eq!(kms.audit_requests(&scope), 0);
        kms.key_for(&scope);
        kms.key_for(&scope);
        assert_eq!(kms.audit_requests(&scope), 2);
    }

    #[test]
    fn clone_shares_state() {
        let kms = kms();
        let kms2 = kms.clone();
        kms.put_secret("s", vec![9]);
        assert_eq!(kms2.secret("s").unwrap(), vec![9]);
        let scope = KeyScope::new("a", "f", "t");
        kms.rotate(&scope);
        assert_eq!(kms2.current_version(&scope), 1);
    }
}
