//! A Redis-like in-process key-value store.
//!
//! DataBlinder deploys "an instance of Redis in a semi-persistent
//! durability mode" on both the gateway and the cloud side, using its
//! "persistent sets, maps, and so on, to build custom indexes" (§4.3).
//! This crate reproduces that substrate: string keys with string, hash,
//! set and counter values, thread-safe, with an optional append-only log
//! for the paper's *semi-durable* mode.
//!
//! # Examples
//!
//! ```
//! use datablinder_kvstore::KvStore;
//!
//! let kv = KvStore::new();
//! kv.set(b"greeting", b"hello");
//! assert_eq!(kv.get(b"greeting"), Some(b"hello".to_vec()));
//! kv.hset(b"index", b"word", b"posting");
//! assert_eq!(kv.hlen(b"index"), 1);
//! ```

#![warn(missing_docs)]
mod log;
mod store;

pub use log::{
    crc32, frame_bytes, read_frames, replay_log, replay_log_report, scan_frames, AppendLog, FrameScan, FrameWriter,
    LogRecord, ReplayReport,
};
pub use store::{KvStats, KvStore};

/// Errors produced by the KV store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KvError {
    /// The key exists but holds a different value kind (e.g. `get` on a hash).
    WrongType {
        /// The key holding the conflicting slot.
        key: Vec<u8>,
        /// The value kind the operation expects.
        expected: &'static str,
    },
    /// An I/O failure in the append log.
    Io(String),
    /// The append log contains a corrupt record.
    CorruptLog {
        /// Byte offset of the corrupt record.
        offset: u64,
    },
}

impl std::fmt::Display for KvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KvError::WrongType { key, expected } => {
                write!(f, "wrong value type at key {key:?}: operation expects {expected}")
            }
            KvError::Io(e) => write!(f, "append log i/o error: {e}"),
            KvError::CorruptLog { offset } => write!(f, "corrupt log record at offset {offset}"),
        }
    }
}

impl std::error::Error for KvError {}

impl From<std::io::Error> for KvError {
    fn from(e: std::io::Error) -> Self {
        KvError::Io(e.to_string())
    }
}
