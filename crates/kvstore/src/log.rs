//! Append-only log for the paper's "semi-persistent durability mode".
//!
//! Every record travels in a CRC-checked frame:
//!
//! ```text
//! len:u32 (BE) || body[len] || crc32:u32 (BE, IEEE, over body)
//! ```
//!
//! The body of a KV record is `tag:u8 || nfields:u8 || (len:u32 || bytes)*`.
//! On replay, an *incomplete* trailing frame is a torn tail (the crash
//! window of a buffered append) and is truncated away; a *complete* frame
//! whose CRC does not match is corruption and is reported at its byte
//! offset. The frame layer is generic over opaque bodies, so the cloud
//! WAL (`datablinder-core::durability`) reuses it for its own records and
//! snapshots.

use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Write};
use std::path::Path;

use bytes::{Buf, BufMut, BytesMut};

use crate::KvError;

// ------------------------------------------------------------------ CRC32

/// CRC-32 (IEEE 802.3, reflected, polynomial `0xEDB88320`) lookup table,
/// built at compile time so the hot replay path stays table-driven without
/// pulling in a crc crate.
const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE) of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = CRC32_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

// ------------------------------------------------------------- frame layer

/// Frames an opaque body as `len || body || crc32(body)`.
pub fn frame_bytes(body: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(body.len() + 8);
    out.extend_from_slice(&(body.len() as u32).to_be_bytes());
    out.extend_from_slice(body);
    out.extend_from_slice(&crc32(body).to_be_bytes());
    out
}

/// Outcome of scanning a frame file.
#[derive(Debug)]
pub struct FrameScan {
    /// Bodies of every complete, CRC-valid frame, in file order.
    pub frames: Vec<Vec<u8>>,
    /// Byte length of the valid prefix (end of the last complete frame).
    pub valid_len: u64,
    /// Whether bytes past `valid_len` were dropped as a torn tail.
    pub torn_tail: bool,
}

/// Reads every complete frame from `path`.
///
/// An incomplete trailing frame is reported as a torn tail (callers
/// typically truncate to `valid_len` before appending again). A complete
/// frame with a CRC mismatch is *corruption*, not truncation.
///
/// # Errors
///
/// Propagates I/O errors; [`KvError::CorruptLog`] at the offending
/// frame's offset on CRC mismatch.
pub fn read_frames(path: &Path) -> Result<FrameScan, KvError> {
    let mut file = File::open(path)?;
    let mut raw = Vec::new();
    file.read_to_end(&mut raw)?;
    scan_frames(&raw)
}

/// [`read_frames`] over an in-memory buffer.
///
/// # Errors
///
/// [`KvError::CorruptLog`] at the offending frame's offset on CRC mismatch.
pub fn scan_frames(raw: &[u8]) -> Result<FrameScan, KvError> {
    let mut frames = Vec::new();
    let mut offset = 0usize;
    while raw.len() - offset >= 4 {
        let len = u32::from_be_bytes([raw[offset], raw[offset + 1], raw[offset + 2], raw[offset + 3]]) as usize;
        let total = 4 + len + 4;
        if raw.len() - offset < total {
            break; // torn tail: frame announced but not fully on disk
        }
        let body = &raw[offset + 4..offset + 4 + len];
        let stored = u32::from_be_bytes([
            raw[offset + 4 + len],
            raw[offset + 4 + len + 1],
            raw[offset + 4 + len + 2],
            raw[offset + 4 + len + 3],
        ]);
        if crc32(body) != stored {
            return Err(KvError::CorruptLog { offset: offset as u64 });
        }
        frames.push(body.to_vec());
        offset += total;
    }
    Ok(FrameScan { frames, valid_len: offset as u64, torn_tail: offset < raw.len() })
}

/// A buffered appender of CRC-checked frames.
pub struct FrameWriter {
    writer: BufWriter<File>,
    appended: u64,
    flush_every: u64,
}

impl FrameWriter {
    /// Opens (creating if needed) `path` for appending frames.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn open(path: &Path) -> Result<Self, KvError> {
        Self::with_flush_every(path, 256)
    }

    /// [`FrameWriter::open`] with an explicit buffered-flush interval
    /// (`0` flushes every append).
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn with_flush_every(path: &Path, flush_every: u64) -> Result<Self, KvError> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(FrameWriter { writer: BufWriter::new(file), appended: 0, flush_every })
    }

    /// Appends one framed body; returns the frame's on-disk length.
    ///
    /// # Errors
    ///
    /// Propagates write errors.
    pub fn append(&mut self, body: &[u8]) -> Result<u64, KvError> {
        let frame = frame_bytes(body);
        self.writer.write_all(&frame)?;
        self.appended += 1;
        if self.flush_every == 0 || self.appended.is_multiple_of(self.flush_every.max(1)) {
            self.writer.flush()?;
        }
        Ok(frame.len() as u64)
    }

    /// Writes `raw` bytes verbatim and flushes — the crash injector uses
    /// this to leave a deliberately torn frame prefix on disk.
    ///
    /// # Errors
    ///
    /// Propagates write errors.
    pub fn append_raw(&mut self, raw: &[u8]) -> Result<(), KvError> {
        self.writer.write_all(raw)?;
        self.writer.flush()?;
        Ok(())
    }

    /// Forces buffered frames to the OS.
    ///
    /// # Errors
    ///
    /// Propagates flush errors.
    pub fn flush(&mut self) -> Result<(), KvError> {
        self.writer.flush()?;
        Ok(())
    }

    /// Number of frames appended through this writer.
    pub fn appended(&self) -> u64 {
        self.appended
    }
}

impl Drop for FrameWriter {
    fn drop(&mut self) {
        let _ = self.writer.flush();
    }
}

// ----------------------------------------------------------- KV record log

/// A single logged mutation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LogRecord {
    /// String set.
    Set {
        /// Slot key.
        key: Vec<u8>,
        /// New value.
        value: Vec<u8>,
    },
    /// Slot delete.
    Del {
        /// Slot key.
        key: Vec<u8>,
    },
    /// Hash field set.
    HSet {
        /// Hash key.
        key: Vec<u8>,
        /// Field within the hash.
        field: Vec<u8>,
        /// New value.
        value: Vec<u8>,
    },
    /// Hash field delete.
    HDel {
        /// Hash key.
        key: Vec<u8>,
        /// Field within the hash.
        field: Vec<u8>,
    },
    /// Set member add.
    SAdd {
        /// Set key.
        key: Vec<u8>,
        /// Member added.
        member: Vec<u8>,
    },
    /// Set member remove.
    SRem {
        /// Set key.
        key: Vec<u8>,
        /// Member removed.
        member: Vec<u8>,
    },
    /// Counter increment.
    Incr {
        /// Counter key.
        key: Vec<u8>,
        /// Signed delta.
        by: i64,
    },
}

impl LogRecord {
    fn tag(&self) -> u8 {
        match self {
            LogRecord::Set { .. } => 1,
            LogRecord::Del { .. } => 2,
            LogRecord::HSet { .. } => 3,
            LogRecord::HDel { .. } => 4,
            LogRecord::SAdd { .. } => 5,
            LogRecord::SRem { .. } => 6,
            LogRecord::Incr { .. } => 7,
        }
    }

    fn fields(&self) -> Vec<&[u8]> {
        match self {
            LogRecord::Set { key, value } => vec![key, value],
            LogRecord::Del { key } => vec![key],
            LogRecord::HSet { key, field, value } => vec![key, field, value],
            LogRecord::HDel { key, field } => vec![key, field],
            LogRecord::SAdd { key, member } => vec![key, member],
            LogRecord::SRem { key, member } => vec![key, member],
            LogRecord::Incr { key, .. } => vec![key],
        }
    }

    /// Encodes the record *body* (frame-less) into `buf`.
    pub fn encode(&self, buf: &mut BytesMut) {
        buf.put_u8(self.tag());
        let fields = self.fields();
        buf.put_u8(fields.len() as u8 + matches!(self, LogRecord::Incr { .. }) as u8);
        for f in fields {
            buf.put_u32(f.len() as u32);
            buf.put_slice(f);
        }
        if let LogRecord::Incr { by, .. } = self {
            buf.put_u32(8);
            buf.put_i64(*by);
        }
    }

    /// Encoded body as a standalone buffer.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = BytesMut::with_capacity(64);
        self.encode(&mut buf);
        buf.to_vec()
    }

    /// Decodes one record from the front of `buf`; `None` means the buffer
    /// holds only a partial record (clean truncation handling).
    pub fn decode(buf: &mut BytesMut) -> Result<Option<LogRecord>, KvError> {
        if buf.len() < 2 {
            return Ok(None);
        }
        let tag = buf[0];
        let nfields = buf[1] as usize;
        // Pre-scan field lengths without consuming.
        let mut offset = 2usize;
        let mut field_ranges = Vec::with_capacity(nfields);
        for _ in 0..nfields {
            if buf.len() < offset + 4 {
                return Ok(None);
            }
            let len = u32::from_be_bytes([buf[offset], buf[offset + 1], buf[offset + 2], buf[offset + 3]]) as usize;
            offset += 4;
            if buf.len() < offset + len {
                return Ok(None);
            }
            field_ranges.push((offset, len));
            offset += len;
        }
        let mut fields: Vec<Vec<u8>> = field_ranges.iter().map(|&(o, l)| buf[o..o + l].to_vec()).collect();
        buf.advance(offset);
        let take = |fields: &mut Vec<Vec<u8>>| fields.remove(0);
        let rec = match (tag, fields.len()) {
            (1, 2) => LogRecord::Set { key: take(&mut fields), value: take(&mut fields) },
            (2, 1) => LogRecord::Del { key: take(&mut fields) },
            (3, 3) => LogRecord::HSet { key: take(&mut fields), field: take(&mut fields), value: take(&mut fields) },
            (4, 2) => LogRecord::HDel { key: take(&mut fields), field: take(&mut fields) },
            (5, 2) => LogRecord::SAdd { key: take(&mut fields), member: take(&mut fields) },
            (6, 2) => LogRecord::SRem { key: take(&mut fields), member: take(&mut fields) },
            (7, 2) => {
                let key = take(&mut fields);
                let byb = take(&mut fields);
                if byb.len() != 8 {
                    return Err(KvError::CorruptLog { offset: 0 });
                }
                let mut b = [0u8; 8];
                b.copy_from_slice(&byb);
                LogRecord::Incr { key, by: i64::from_be_bytes(b) }
            }
            _ => return Err(KvError::CorruptLog { offset: 0 }),
        };
        Ok(Some(rec))
    }

    /// Decodes a record from a complete frame body.
    ///
    /// # Errors
    ///
    /// [`KvError::CorruptLog`] if the body is short, malformed, or holds
    /// trailing bytes — inside a CRC-valid frame that is structural
    /// corruption, not truncation.
    pub fn from_body(body: &[u8]) -> Result<LogRecord, KvError> {
        let mut buf = BytesMut::from(body);
        match LogRecord::decode(&mut buf)? {
            Some(rec) if buf.is_empty() => Ok(rec),
            _ => Err(KvError::CorruptLog { offset: 0 }),
        }
    }
}

/// A buffered append-only KV record log over CRC frames.
pub struct AppendLog {
    frames: FrameWriter,
}

impl AppendLog {
    /// Opens (creating if needed) the log at `path` for appending.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn open(path: &Path) -> Result<Self, KvError> {
        Ok(AppendLog { frames: FrameWriter::open(path)? })
    }

    /// Appends one record (buffered; flushed every 256 records —
    /// the "semi" in semi-durable).
    ///
    /// # Errors
    ///
    /// Propagates write errors.
    pub fn append(&mut self, rec: &LogRecord) -> Result<(), KvError> {
        self.frames.append(&rec.to_bytes())?;
        Ok(())
    }

    /// Forces buffered records to the OS.
    ///
    /// # Errors
    ///
    /// Propagates flush errors.
    pub fn flush(&mut self) -> Result<(), KvError> {
        self.frames.flush()
    }
}

/// What [`replay_log_report`] found on disk.
#[derive(Debug)]
pub struct ReplayReport {
    /// Records recovered from the valid prefix.
    pub records: Vec<LogRecord>,
    /// Byte length of the valid prefix.
    pub valid_len: u64,
    /// Whether a torn tail was dropped.
    pub torn_tail: bool,
}

/// Reads every complete record from a log file; a trailing partial frame
/// is ignored (crash-consistent semi-durability).
///
/// # Errors
///
/// Propagates I/O errors and corrupt (CRC-mismatch) records.
pub fn replay_log(path: &Path) -> Result<Vec<LogRecord>, KvError> {
    Ok(replay_log_report(path)?.records)
}

/// [`replay_log`] plus the valid prefix length, so callers can truncate a
/// torn tail before appending again.
///
/// # Errors
///
/// Propagates I/O errors and corrupt (CRC-mismatch) records.
pub fn replay_log_report(path: &Path) -> Result<ReplayReport, KvError> {
    let scan = read_frames(path)?;
    let mut records = Vec::with_capacity(scan.frames.len());
    for body in &scan.frames {
        records.push(LogRecord::from_body(body)?);
    }
    Ok(ReplayReport { records, valid_len: scan.valid_len, torn_tail: scan.torn_tail })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::KvStore;

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("datablinder-kvlog-{name}-{}", std::process::id()));
        p
    }

    #[test]
    fn crc32_known_vectors() {
        // Published IEEE CRC-32 check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let records = vec![
            LogRecord::Set { key: b"k".to_vec(), value: b"v".to_vec() },
            LogRecord::Del { key: b"k".to_vec() },
            LogRecord::HSet { key: b"h".to_vec(), field: b"f".to_vec(), value: b"v".to_vec() },
            LogRecord::HDel { key: b"h".to_vec(), field: b"f".to_vec() },
            LogRecord::SAdd { key: b"s".to_vec(), member: b"m".to_vec() },
            LogRecord::SRem { key: b"s".to_vec(), member: b"m".to_vec() },
            LogRecord::Incr { key: b"c".to_vec(), by: -42 },
        ];
        let mut buf = BytesMut::new();
        for r in &records {
            r.encode(&mut buf);
        }
        let mut decoded = Vec::new();
        while let Some(r) = LogRecord::decode(&mut buf).unwrap() {
            decoded.push(r);
        }
        assert_eq!(decoded, records);
    }

    #[test]
    fn partial_record_returns_none() {
        let mut buf = BytesMut::new();
        LogRecord::Set { key: b"key".to_vec(), value: b"value".to_vec() }.encode(&mut buf);
        let full_len = buf.len();
        for cut in 0..full_len {
            let mut partial = BytesMut::from(&buf[..cut]);
            assert_eq!(LogRecord::decode(&mut partial).unwrap(), None, "cut at {cut}");
        }
    }

    #[test]
    fn unknown_tag_is_corrupt() {
        let mut buf = BytesMut::new();
        buf.put_u8(99);
        buf.put_u8(0);
        assert!(matches!(LogRecord::decode(&mut buf), Err(KvError::CorruptLog { .. })));
    }

    /// Flipping any byte of a mid-file record — its frame length (low
    /// byte), tag, field count, a field length, field bytes, or the CRC
    /// itself — is detected as corruption at that frame's offset, not
    /// silently absorbed or mistaken for a torn tail.
    #[test]
    fn byte_flip_in_each_field_detected() {
        let first = LogRecord::HSet { key: b"hash-key".to_vec(), field: b"field".to_vec(), value: b"value".to_vec() };
        // A long second record so a ±255 perturbation of the first frame's
        // low length byte still lands inside the file.
        let second = LogRecord::Set { key: b"pad".to_vec(), value: vec![0x5A; 400] };
        let mut file = frame_bytes(&first.to_bytes());
        let first_len = file.len();
        file.extend_from_slice(&frame_bytes(&second.to_bytes()));

        // Byte 3 is the low byte of the length header; 4.. is the body
        // (tag, nfields, field lengths, field bytes); the last 4 are the CRC.
        let positions: Vec<usize> = (3..first_len).collect();
        for pos in positions {
            let mut tampered = file.clone();
            tampered[pos] ^= 0xA5;
            let outcome = scan_frames(&tampered);
            match outcome {
                Err(KvError::CorruptLog { offset }) => {
                    assert_eq!(offset, 0, "flip at byte {pos} blamed the wrong frame");
                }
                other => panic!("flip at byte {pos} went undetected: {other:?}"),
            }
        }
        // Untampered file still scans clean.
        let scan = scan_frames(&file).unwrap();
        assert_eq!(scan.frames.len(), 2);
        assert!(!scan.torn_tail);
    }

    #[test]
    fn semi_durable_recovery() {
        let path = temp_path("recovery");
        let _ = std::fs::remove_file(&path);
        {
            let kv = KvStore::open_semi_durable(&path).unwrap();
            kv.set(b"a", b"1");
            kv.hset(b"h", b"f", b"v").unwrap();
            kv.sadd(b"s", b"m").unwrap();
            kv.incr_by(b"c", 5).unwrap();
            kv.set(b"gone", b"x");
            kv.del(b"gone");
            // store drops here, flushing the log
        }
        let kv = KvStore::open_semi_durable(&path).unwrap();
        assert_eq!(kv.get(b"a"), Some(b"1".to_vec()));
        assert_eq!(kv.hget(b"h", b"f"), Some(b"v".to_vec()));
        assert!(kv.sismember(b"s", b"m"));
        assert_eq!(kv.counter(b"c"), 5);
        assert!(!kv.exists(b"gone"));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn truncated_tail_ignored_on_replay() {
        let path = temp_path("truncated");
        let _ = std::fs::remove_file(&path);
        {
            let kv = KvStore::open_semi_durable(&path).unwrap();
            kv.set(b"a", b"1");
            kv.set(b"b", b"2");
        }
        // Simulate a crash mid-append: chop the last 3 bytes.
        let data = std::fs::read(&path).unwrap();
        std::fs::write(&path, &data[..data.len() - 3]).unwrap();
        let kv = KvStore::open_semi_durable(&path).unwrap();
        assert_eq!(kv.get(b"a"), Some(b"1".to_vec()));
        assert_eq!(kv.get(b"b"), None, "torn record must be dropped");
        std::fs::remove_file(&path).unwrap();
    }

    /// Reopening after a torn tail truncates the garbage, so the next
    /// append starts at a frame boundary instead of extending the tear.
    #[test]
    fn torn_tail_truncated_on_reopen() {
        let path = temp_path("torn-reopen");
        let _ = std::fs::remove_file(&path);
        {
            let kv = KvStore::open_semi_durable(&path).unwrap();
            kv.set(b"a", b"1");
            kv.set(b"b", b"2");
        }
        let data = std::fs::read(&path).unwrap();
        std::fs::write(&path, &data[..data.len() - 3]).unwrap();
        {
            let kv = KvStore::open_semi_durable(&path).unwrap();
            kv.set(b"c", b"3");
        }
        // A third generation sees a clean log: a + the new c, no b, no error.
        let kv = KvStore::open_semi_durable(&path).unwrap();
        assert_eq!(kv.get(b"a"), Some(b"1".to_vec()));
        assert_eq!(kv.get(b"b"), None);
        assert_eq!(kv.get(b"c"), Some(b"3".to_vec()));
        std::fs::remove_file(&path).unwrap();
    }
}
