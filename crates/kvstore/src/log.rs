//! Append-only log for the paper's "semi-persistent durability mode".
//!
//! Records are framed as `tag:u8 || nfields:u8 || (len:u32 || bytes)*`
//! with a trailing CRC-less design: a truncated tail record is treated as
//! corruption at its offset.

use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Write};
use std::path::Path;

use bytes::{Buf, BufMut, BytesMut};

use crate::KvError;

/// A single logged mutation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LogRecord {
    /// String set.
    Set {
        /// Slot key.
        key: Vec<u8>,
        /// New value.
        value: Vec<u8>,
    },
    /// Slot delete.
    Del {
        /// Slot key.
        key: Vec<u8>,
    },
    /// Hash field set.
    HSet {
        /// Hash key.
        key: Vec<u8>,
        /// Field within the hash.
        field: Vec<u8>,
        /// New value.
        value: Vec<u8>,
    },
    /// Hash field delete.
    HDel {
        /// Hash key.
        key: Vec<u8>,
        /// Field within the hash.
        field: Vec<u8>,
    },
    /// Set member add.
    SAdd {
        /// Set key.
        key: Vec<u8>,
        /// Member added.
        member: Vec<u8>,
    },
    /// Set member remove.
    SRem {
        /// Set key.
        key: Vec<u8>,
        /// Member removed.
        member: Vec<u8>,
    },
    /// Counter increment.
    Incr {
        /// Counter key.
        key: Vec<u8>,
        /// Signed delta.
        by: i64,
    },
}

impl LogRecord {
    fn tag(&self) -> u8 {
        match self {
            LogRecord::Set { .. } => 1,
            LogRecord::Del { .. } => 2,
            LogRecord::HSet { .. } => 3,
            LogRecord::HDel { .. } => 4,
            LogRecord::SAdd { .. } => 5,
            LogRecord::SRem { .. } => 6,
            LogRecord::Incr { .. } => 7,
        }
    }

    fn fields(&self) -> Vec<&[u8]> {
        match self {
            LogRecord::Set { key, value } => vec![key, value],
            LogRecord::Del { key } => vec![key],
            LogRecord::HSet { key, field, value } => vec![key, field, value],
            LogRecord::HDel { key, field } => vec![key, field],
            LogRecord::SAdd { key, member } => vec![key, member],
            LogRecord::SRem { key, member } => vec![key, member],
            LogRecord::Incr { key, .. } => vec![key],
        }
    }

    /// Encodes into `buf`.
    pub fn encode(&self, buf: &mut BytesMut) {
        buf.put_u8(self.tag());
        let fields = self.fields();
        buf.put_u8(fields.len() as u8 + matches!(self, LogRecord::Incr { .. }) as u8);
        for f in fields {
            buf.put_u32(f.len() as u32);
            buf.put_slice(f);
        }
        if let LogRecord::Incr { by, .. } = self {
            buf.put_u32(8);
            buf.put_i64(*by);
        }
    }

    /// Decodes one record from the front of `buf`; `None` means the buffer
    /// holds only a partial record (clean truncation handling).
    pub fn decode(buf: &mut BytesMut) -> Result<Option<LogRecord>, KvError> {
        if buf.len() < 2 {
            return Ok(None);
        }
        let tag = buf[0];
        let nfields = buf[1] as usize;
        // Pre-scan field lengths without consuming.
        let mut offset = 2usize;
        let mut field_ranges = Vec::with_capacity(nfields);
        for _ in 0..nfields {
            if buf.len() < offset + 4 {
                return Ok(None);
            }
            let len = u32::from_be_bytes([buf[offset], buf[offset + 1], buf[offset + 2], buf[offset + 3]]) as usize;
            offset += 4;
            if buf.len() < offset + len {
                return Ok(None);
            }
            field_ranges.push((offset, len));
            offset += len;
        }
        let mut fields: Vec<Vec<u8>> = field_ranges.iter().map(|&(o, l)| buf[o..o + l].to_vec()).collect();
        buf.advance(offset);
        let take = |fields: &mut Vec<Vec<u8>>| fields.remove(0);
        let rec = match (tag, fields.len()) {
            (1, 2) => LogRecord::Set { key: take(&mut fields), value: take(&mut fields) },
            (2, 1) => LogRecord::Del { key: take(&mut fields) },
            (3, 3) => LogRecord::HSet { key: take(&mut fields), field: take(&mut fields), value: take(&mut fields) },
            (4, 2) => LogRecord::HDel { key: take(&mut fields), field: take(&mut fields) },
            (5, 2) => LogRecord::SAdd { key: take(&mut fields), member: take(&mut fields) },
            (6, 2) => LogRecord::SRem { key: take(&mut fields), member: take(&mut fields) },
            (7, 2) => {
                let key = take(&mut fields);
                let byb = take(&mut fields);
                if byb.len() != 8 {
                    return Err(KvError::CorruptLog { offset: 0 });
                }
                let mut b = [0u8; 8];
                b.copy_from_slice(&byb);
                LogRecord::Incr { key, by: i64::from_be_bytes(b) }
            }
            _ => return Err(KvError::CorruptLog { offset: 0 }),
        };
        Ok(Some(rec))
    }
}

/// A buffered append-only writer.
pub struct AppendLog {
    writer: BufWriter<File>,
    appended: u64,
}

impl AppendLog {
    /// Opens (creating if needed) the log at `path` for appending.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn open(path: &Path) -> Result<Self, KvError> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(AppendLog { writer: BufWriter::new(file), appended: 0 })
    }

    /// Appends one record (buffered; flushed every 256 records —
    /// the "semi" in semi-durable).
    ///
    /// # Errors
    ///
    /// Propagates write errors.
    pub fn append(&mut self, rec: &LogRecord) -> Result<(), KvError> {
        let mut buf = BytesMut::with_capacity(64);
        rec.encode(&mut buf);
        self.writer.write_all(&buf)?;
        self.appended += 1;
        if self.appended.is_multiple_of(256) {
            self.writer.flush()?;
        }
        Ok(())
    }

    /// Forces buffered records to the OS.
    ///
    /// # Errors
    ///
    /// Propagates flush errors.
    pub fn flush(&mut self) -> Result<(), KvError> {
        self.writer.flush()?;
        Ok(())
    }
}

impl Drop for AppendLog {
    fn drop(&mut self) {
        let _ = self.writer.flush();
    }
}

/// Reads every complete record from a log file; a trailing partial record
/// is ignored (crash-consistent semi-durability).
///
/// # Errors
///
/// Propagates I/O errors and corrupt (non-truncation) records.
pub fn replay_log(path: &Path) -> Result<Vec<LogRecord>, KvError> {
    let mut file = File::open(path)?;
    let mut raw = Vec::new();
    file.read_to_end(&mut raw)?;
    let mut buf = BytesMut::from(&raw[..]);
    let mut out = Vec::new();
    while let Some(rec) = LogRecord::decode(&mut buf)? {
        out.push(rec);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::KvStore;

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("datablinder-kvlog-{name}-{}", std::process::id()));
        p
    }

    #[test]
    fn encode_decode_roundtrip() {
        let records = vec![
            LogRecord::Set { key: b"k".to_vec(), value: b"v".to_vec() },
            LogRecord::Del { key: b"k".to_vec() },
            LogRecord::HSet { key: b"h".to_vec(), field: b"f".to_vec(), value: b"v".to_vec() },
            LogRecord::HDel { key: b"h".to_vec(), field: b"f".to_vec() },
            LogRecord::SAdd { key: b"s".to_vec(), member: b"m".to_vec() },
            LogRecord::SRem { key: b"s".to_vec(), member: b"m".to_vec() },
            LogRecord::Incr { key: b"c".to_vec(), by: -42 },
        ];
        let mut buf = BytesMut::new();
        for r in &records {
            r.encode(&mut buf);
        }
        let mut decoded = Vec::new();
        while let Some(r) = LogRecord::decode(&mut buf).unwrap() {
            decoded.push(r);
        }
        assert_eq!(decoded, records);
    }

    #[test]
    fn partial_record_returns_none() {
        let mut buf = BytesMut::new();
        LogRecord::Set { key: b"key".to_vec(), value: b"value".to_vec() }.encode(&mut buf);
        let full_len = buf.len();
        for cut in 0..full_len {
            let mut partial = BytesMut::from(&buf[..cut]);
            assert_eq!(LogRecord::decode(&mut partial).unwrap(), None, "cut at {cut}");
        }
    }

    #[test]
    fn unknown_tag_is_corrupt() {
        let mut buf = BytesMut::new();
        buf.put_u8(99);
        buf.put_u8(0);
        assert!(matches!(LogRecord::decode(&mut buf), Err(KvError::CorruptLog { .. })));
    }

    #[test]
    fn semi_durable_recovery() {
        let path = temp_path("recovery");
        let _ = std::fs::remove_file(&path);
        {
            let kv = KvStore::open_semi_durable(&path).unwrap();
            kv.set(b"a", b"1");
            kv.hset(b"h", b"f", b"v").unwrap();
            kv.sadd(b"s", b"m").unwrap();
            kv.incr_by(b"c", 5).unwrap();
            kv.set(b"gone", b"x");
            kv.del(b"gone");
            // store drops here, flushing the log
        }
        let kv = KvStore::open_semi_durable(&path).unwrap();
        assert_eq!(kv.get(b"a"), Some(b"1".to_vec()));
        assert_eq!(kv.hget(b"h", b"f"), Some(b"v".to_vec()));
        assert!(kv.sismember(b"s", b"m"));
        assert_eq!(kv.counter(b"c"), 5);
        assert!(!kv.exists(b"gone"));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn truncated_tail_ignored_on_replay() {
        let path = temp_path("truncated");
        let _ = std::fs::remove_file(&path);
        {
            let kv = KvStore::open_semi_durable(&path).unwrap();
            kv.set(b"a", b"1");
            kv.set(b"b", b"2");
        }
        // Simulate a crash mid-append: chop the last 3 bytes.
        let data = std::fs::read(&path).unwrap();
        std::fs::write(&path, &data[..data.len() - 3]).unwrap();
        let kv = KvStore::open_semi_durable(&path).unwrap();
        assert_eq!(kv.get(b"a"), Some(b"1".to_vec()));
        assert_eq!(kv.get(b"b"), None, "torn record must be dropped");
        std::fs::remove_file(&path).unwrap();
    }
}
