//! The in-memory store engine.
//!
//! Since the shared-gateway work the keyspace is sharded N ways by key
//! hash: each shard holds its own `RwLock<BTreeMap>` so writes to
//! independent keys (different fields, different collections) proceed in
//! parallel. The append log stays a **single serialized append point** —
//! sharding changes lock granularity, not durability semantics. Prefix
//! scans and exports gather across shards and sort, so observable
//! ordering is identical to the unsharded store.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock, RwLockReadGuard, RwLockWriteGuard};

use crate::log::{AppendLog, LogRecord};
use crate::KvError;

/// Default number of keyspace shards. Power of two so the hash mixes
/// into the index cheaply; 16 comfortably exceeds the worker counts the
/// benchmarks drive (1/2/4/8).
pub const DEFAULT_SHARDS: usize = 16;

/// One value slot: Redis-style polymorphic values.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Slot {
    Str(Vec<u8>),
    Hash(HashMap<Vec<u8>, Vec<u8>>),
    Set(HashSet<Vec<u8>>),
    Counter(i64),
}

/// Operation counters, useful for the paper's "secure index operations"
/// accounting (~350k per benchmark run).
#[derive(Debug, Default)]
pub struct KvStats {
    reads: AtomicU64,
    writes: AtomicU64,
}

impl KvStats {
    /// Number of read operations served.
    pub fn reads(&self) -> u64 {
        self.reads.load(Ordering::Relaxed)
    }

    /// Number of write operations applied.
    pub fn writes(&self) -> u64 {
        self.writes.load(Ordering::Relaxed)
    }

    /// Total operations.
    pub fn total(&self) -> u64 {
        self.reads() + self.writes()
    }
}

/// One keyspace shard: its own lock plus a counter of the times a lock
/// acquisition found the shard already held and had to block.
#[derive(Default)]
struct Shard {
    // BTreeMap so `keys_with_prefix` is efficient and iteration stable.
    map: RwLock<BTreeMap<Vec<u8>, Slot>>,
    contention: AtomicU64,
}

impl Shard {
    fn read(&self) -> RwLockReadGuard<'_, BTreeMap<Vec<u8>, Slot>> {
        match self.map.try_read() {
            Some(g) => g,
            None => {
                self.contention.fetch_add(1, Ordering::Relaxed);
                self.map.read()
            }
        }
    }

    fn write(&self) -> RwLockWriteGuard<'_, BTreeMap<Vec<u8>, Slot>> {
        match self.map.try_write() {
            Some(g) => g,
            None => {
                self.contention.fetch_add(1, Ordering::Relaxed);
                self.map.write()
            }
        }
    }
}

/// A thread-safe Redis-like store.
///
/// Cloning is cheap and shares the underlying data (like handles to one
/// server).
#[derive(Clone)]
pub struct KvStore {
    inner: Arc<Inner>,
}

impl Default for KvStore {
    fn default() -> Self {
        KvStore::with_shards(DEFAULT_SHARDS)
    }
}

struct Inner {
    shards: Vec<Shard>,
    stats: KvStats,
    log: Mutex<Option<AppendLog>>,
}

/// FNV-1a over the key bytes: deterministic across runs and platforms,
/// so the same key always lands on the same shard.
fn key_hash(key: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in key {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl KvStore {
    /// Creates an empty volatile store with the default shard count.
    pub fn new() -> Self {
        KvStore::default()
    }

    /// Creates an empty volatile store with exactly `shards` keyspace
    /// shards (`shards = 1` reproduces the old single-lock store; the
    /// observable behaviour is identical either way).
    pub fn with_shards(shards: usize) -> Self {
        let n = shards.max(1);
        KvStore {
            inner: Arc::new(Inner {
                shards: (0..n).map(|_| Shard::default()).collect(),
                stats: KvStats::default(),
                log: Mutex::new(None),
            }),
        }
    }

    /// Creates a store in the paper's *semi-durable* mode: every write is
    /// appended to `path`, and existing records are replayed first.
    ///
    /// # Errors
    ///
    /// Propagates I/O and corrupt-log errors.
    pub fn open_semi_durable(path: &std::path::Path) -> Result<Self, KvError> {
        let store = KvStore::new();
        if path.exists() {
            let report = crate::log::replay_log_report(path)?;
            for record in &report.records {
                store.apply(record, false);
            }
            if report.torn_tail {
                // Drop the torn tail so the appender resumes at a frame
                // boundary instead of extending garbage.
                let file = std::fs::OpenOptions::new().write(true).open(path)?;
                file.set_len(report.valid_len)?;
            }
        }
        let log = AppendLog::open(path)?;
        *store.inner.log.lock() = Some(log);
        Ok(store)
    }

    /// Operation statistics.
    pub fn stats(&self) -> &KvStats {
        &self.inner.stats
    }

    /// Number of keyspace shards.
    pub fn shard_count(&self) -> usize {
        self.inner.shards.len()
    }

    /// Per-shard contention counters: how many lock acquisitions on each
    /// shard found it held and had to block. Feed these into the
    /// observability recorder as `cloud.kv.shard.<i>.contention`.
    pub fn shard_contention(&self) -> Vec<u64> {
        self.inner.shards.iter().map(|s| s.contention.load(Ordering::Relaxed)).collect()
    }

    fn shard(&self, key: &[u8]) -> &Shard {
        let n = self.inner.shards.len();
        &self.inner.shards[(key_hash(key) % n as u64) as usize]
    }

    fn record(&self, rec: LogRecord) {
        if let Some(log) = self.inner.log.lock().as_mut() {
            // Semi-durable: buffered append through the single serialized
            // append point; production code would expose a flush error API.
            let _ = log.append(&rec);
        }
    }

    /// Applies a log record without journaling it — used by snapshot
    /// restore and WAL replay, where the record is already durable.
    pub fn apply_record(&self, rec: &LogRecord) {
        self.apply(rec, false);
    }

    /// Dumps the live state as a deterministic record sequence: replaying
    /// the sequence into an empty store reproduces this store exactly.
    /// Keys are gathered across shards and sorted; hash fields and set
    /// members are sorted, so two equal stores export byte-identical
    /// snapshots regardless of shard count.
    pub fn export_records(&self) -> Vec<LogRecord> {
        let mut slots: Vec<(Vec<u8>, Slot)> = Vec::new();
        for shard in &self.inner.shards {
            let map = shard.read();
            slots.extend(map.iter().map(|(k, v)| (k.clone(), v.clone())));
        }
        slots.sort_by(|a, b| a.0.cmp(&b.0));
        let mut out = Vec::with_capacity(slots.len());
        for (key, slot) in slots {
            match slot {
                Slot::Str(v) => out.push(LogRecord::Set { key, value: v }),
                Slot::Hash(h) => {
                    let mut fields: Vec<_> = h.into_iter().collect();
                    fields.sort();
                    for (f, v) in fields {
                        out.push(LogRecord::HSet { key: key.clone(), field: f, value: v });
                    }
                }
                Slot::Set(s) => {
                    let mut members: Vec<_> = s.into_iter().collect();
                    members.sort();
                    for m in members {
                        out.push(LogRecord::SAdd { key: key.clone(), member: m });
                    }
                }
                Slot::Counter(c) => out.push(LogRecord::Incr { key, by: c }),
            }
        }
        out
    }

    /// Applies a log record (used by recovery; `log_it` controls re-logging).
    pub(crate) fn apply(&self, rec: &LogRecord, log_it: bool) {
        match rec {
            LogRecord::Set { key, value } => {
                self.set_internal(key.clone(), value.clone(), log_it);
            }
            LogRecord::Del { key } => {
                self.del_internal(key, log_it);
            }
            LogRecord::HSet { key, field, value } => {
                let _ = self.hset_internal(key.clone(), field.clone(), value.clone(), log_it);
            }
            LogRecord::HDel { key, field } => {
                let _ = self.hdel_internal(key, field, log_it);
            }
            LogRecord::SAdd { key, member } => {
                let _ = self.sadd_internal(key.clone(), member.clone(), log_it);
            }
            LogRecord::SRem { key, member } => {
                let _ = self.srem_internal(key, member, log_it);
            }
            LogRecord::Incr { key, by } => {
                let _ = self.incr_by_internal(key.clone(), *by, log_it);
            }
        }
    }

    // -------------------------------------------------------------- strings

    /// Sets a string value, replacing any previous slot.
    pub fn set(&self, key: &[u8], value: &[u8]) {
        self.set_internal(key.to_vec(), value.to_vec(), true);
    }

    fn set_internal(&self, key: Vec<u8>, value: Vec<u8>, log_it: bool) {
        self.inner.stats.writes.fetch_add(1, Ordering::Relaxed);
        if log_it {
            self.record(LogRecord::Set { key: key.clone(), value: value.clone() });
        }
        self.shard(&key).write().insert(key, Slot::Str(value));
    }

    /// Sets a string value only if no slot exists at `key` (compare-and-set
    /// on vacancy). Returns `true` if the value was stored, `false` if the
    /// key was already occupied (by any slot type) — in which case nothing
    /// changes. The check-and-insert happens under one shard lock, so two
    /// racing `set_nx` calls on the same key serialize: exactly one wins.
    pub fn set_nx(&self, key: &[u8], value: &[u8]) -> bool {
        self.inner.stats.writes.fetch_add(1, Ordering::Relaxed);
        let mut map = self.shard(key).write();
        if map.contains_key(key) {
            return false;
        }
        map.insert(key.to_vec(), Slot::Str(value.to_vec()));
        drop(map);
        self.record(LogRecord::Set { key: key.to_vec(), value: value.to_vec() });
        true
    }

    /// Reads a string value.
    pub fn get(&self, key: &[u8]) -> Option<Vec<u8>> {
        self.inner.stats.reads.fetch_add(1, Ordering::Relaxed);
        match self.shard(key).read().get(key) {
            Some(Slot::Str(v)) => Some(v.clone()),
            _ => None,
        }
    }

    /// Deletes any slot at `key`; returns whether something was removed.
    pub fn del(&self, key: &[u8]) -> bool {
        self.del_internal(key, true)
    }

    fn del_internal(&self, key: &[u8], log_it: bool) -> bool {
        self.inner.stats.writes.fetch_add(1, Ordering::Relaxed);
        if log_it {
            self.record(LogRecord::Del { key: key.to_vec() });
        }
        self.shard(key).write().remove(key).is_some()
    }

    /// Deletes every slot whose key starts with `prefix`; returns the
    /// number of slots removed. Used by index-rebuild flows to drop a
    /// tactic scope wholesale.
    pub fn del_prefix(&self, prefix: &[u8]) -> usize {
        let keys = self.keys_with_prefix(prefix);
        for k in &keys {
            self.del_internal(k, true);
        }
        keys.len()
    }

    /// Whether any slot exists at `key`.
    pub fn exists(&self, key: &[u8]) -> bool {
        self.inner.stats.reads.fetch_add(1, Ordering::Relaxed);
        self.shard(key).read().contains_key(key)
    }

    /// All keys with the given prefix (lexicographic order, gathered
    /// across shards and sorted).
    pub fn keys_with_prefix(&self, prefix: &[u8]) -> Vec<Vec<u8>> {
        self.inner.stats.reads.fetch_add(1, Ordering::Relaxed);
        let mut keys: Vec<Vec<u8>> = Vec::new();
        for shard in &self.inner.shards {
            let map = shard.read();
            keys.extend(
                map.range(prefix.to_vec()..).take_while(|(k, _)| k.starts_with(prefix)).map(|(k, _)| k.clone()),
            );
        }
        keys.sort();
        keys
    }

    // --------------------------------------------------------------- hashes

    /// Sets `field` in the hash at `key`; returns `true` if the field is new.
    ///
    /// # Errors
    ///
    /// [`KvError::WrongType`] if `key` holds a non-hash slot.
    pub fn hset(&self, key: &[u8], field: &[u8], value: &[u8]) -> Result<bool, KvError> {
        self.hset_internal(key.to_vec(), field.to_vec(), value.to_vec(), true)
    }

    fn hset_internal(&self, key: Vec<u8>, field: Vec<u8>, value: Vec<u8>, log_it: bool) -> Result<bool, KvError> {
        self.inner.stats.writes.fetch_add(1, Ordering::Relaxed);
        if log_it {
            self.record(LogRecord::HSet { key: key.clone(), field: field.clone(), value: value.clone() });
        }
        let shard = self.shard(&key);
        let mut map = shard.write();
        match map.entry(key.clone()).or_insert_with(|| Slot::Hash(HashMap::new())) {
            Slot::Hash(h) => Ok(h.insert(field, value).is_none()),
            _ => Err(KvError::WrongType { key, expected: "hash" }),
        }
    }

    /// Reads `field` from the hash at `key`.
    pub fn hget(&self, key: &[u8], field: &[u8]) -> Option<Vec<u8>> {
        self.inner.stats.reads.fetch_add(1, Ordering::Relaxed);
        match self.shard(key).read().get(key) {
            Some(Slot::Hash(h)) => h.get(field).cloned(),
            _ => None,
        }
    }

    /// Removes `field` from the hash at `key`; `true` if it existed.
    pub fn hdel(&self, key: &[u8], field: &[u8]) -> Result<bool, KvError> {
        self.hdel_internal(key, field, true)
    }

    fn hdel_internal(&self, key: &[u8], field: &[u8], log_it: bool) -> Result<bool, KvError> {
        self.inner.stats.writes.fetch_add(1, Ordering::Relaxed);
        if log_it {
            self.record(LogRecord::HDel { key: key.to_vec(), field: field.to_vec() });
        }
        let shard = self.shard(key);
        let mut map = shard.write();
        match map.get_mut(key) {
            Some(Slot::Hash(h)) => Ok(h.remove(field).is_some()),
            Some(_) => Err(KvError::WrongType { key: key.to_vec(), expected: "hash" }),
            None => Ok(false),
        }
    }

    /// All `(field, value)` pairs of the hash at `key`.
    pub fn hgetall(&self, key: &[u8]) -> Vec<(Vec<u8>, Vec<u8>)> {
        self.inner.stats.reads.fetch_add(1, Ordering::Relaxed);
        match self.shard(key).read().get(key) {
            Some(Slot::Hash(h)) => h.iter().map(|(k, v)| (k.clone(), v.clone())).collect(),
            _ => Vec::new(),
        }
    }

    /// Number of fields in the hash at `key` (0 if absent).
    pub fn hlen(&self, key: &[u8]) -> usize {
        self.inner.stats.reads.fetch_add(1, Ordering::Relaxed);
        match self.shard(key).read().get(key) {
            Some(Slot::Hash(h)) => h.len(),
            _ => 0,
        }
    }

    // ----------------------------------------------------------------- sets

    /// Adds `member` to the set at `key`; `true` if newly added.
    ///
    /// # Errors
    ///
    /// [`KvError::WrongType`] if `key` holds a non-set slot.
    pub fn sadd(&self, key: &[u8], member: &[u8]) -> Result<bool, KvError> {
        self.sadd_internal(key.to_vec(), member.to_vec(), true)
    }

    fn sadd_internal(&self, key: Vec<u8>, member: Vec<u8>, log_it: bool) -> Result<bool, KvError> {
        self.inner.stats.writes.fetch_add(1, Ordering::Relaxed);
        if log_it {
            self.record(LogRecord::SAdd { key: key.clone(), member: member.clone() });
        }
        let shard = self.shard(&key);
        let mut map = shard.write();
        match map.entry(key.clone()).or_insert_with(|| Slot::Set(HashSet::new())) {
            Slot::Set(s) => Ok(s.insert(member)),
            _ => Err(KvError::WrongType { key, expected: "set" }),
        }
    }

    /// Removes `member` from the set at `key`; `true` if it was present.
    pub fn srem(&self, key: &[u8], member: &[u8]) -> Result<bool, KvError> {
        self.srem_internal(key, member, true)
    }

    fn srem_internal(&self, key: &[u8], member: &[u8], log_it: bool) -> Result<bool, KvError> {
        self.inner.stats.writes.fetch_add(1, Ordering::Relaxed);
        if log_it {
            self.record(LogRecord::SRem { key: key.to_vec(), member: member.to_vec() });
        }
        let shard = self.shard(key);
        let mut map = shard.write();
        match map.get_mut(key) {
            Some(Slot::Set(s)) => Ok(s.remove(member)),
            Some(_) => Err(KvError::WrongType { key: key.to_vec(), expected: "set" }),
            None => Ok(false),
        }
    }

    /// Membership test.
    pub fn sismember(&self, key: &[u8], member: &[u8]) -> bool {
        self.inner.stats.reads.fetch_add(1, Ordering::Relaxed);
        match self.shard(key).read().get(key) {
            Some(Slot::Set(s)) => s.contains(member),
            _ => false,
        }
    }

    /// All members of the set at `key`.
    pub fn smembers(&self, key: &[u8]) -> Vec<Vec<u8>> {
        self.inner.stats.reads.fetch_add(1, Ordering::Relaxed);
        match self.shard(key).read().get(key) {
            Some(Slot::Set(s)) => s.iter().cloned().collect(),
            _ => Vec::new(),
        }
    }

    /// Set cardinality (0 if absent).
    pub fn scard(&self, key: &[u8]) -> usize {
        self.inner.stats.reads.fetch_add(1, Ordering::Relaxed);
        match self.shard(key).read().get(key) {
            Some(Slot::Set(s)) => s.len(),
            _ => 0,
        }
    }

    // ------------------------------------------------------------- counters

    /// Atomically increments the counter at `key` by 1, returning the new value.
    ///
    /// # Errors
    ///
    /// [`KvError::WrongType`] if `key` holds a non-counter slot.
    pub fn incr(&self, key: &[u8]) -> Result<i64, KvError> {
        self.incr_by_internal(key.to_vec(), 1, true)
    }

    /// Atomically adds `by`, returning the new value.
    pub fn incr_by(&self, key: &[u8], by: i64) -> Result<i64, KvError> {
        self.incr_by_internal(key.to_vec(), by, true)
    }

    fn incr_by_internal(&self, key: Vec<u8>, by: i64, log_it: bool) -> Result<i64, KvError> {
        self.inner.stats.writes.fetch_add(1, Ordering::Relaxed);
        if log_it {
            self.record(LogRecord::Incr { key: key.clone(), by });
        }
        let shard = self.shard(&key);
        let mut map = shard.write();
        match map.entry(key.clone()).or_insert(Slot::Counter(0)) {
            Slot::Counter(c) => {
                *c += by;
                Ok(*c)
            }
            _ => Err(KvError::WrongType { key, expected: "counter" }),
        }
    }

    /// Reads the counter at `key` (`0` if absent).
    pub fn counter(&self, key: &[u8]) -> i64 {
        self.inner.stats.reads.fetch_add(1, Ordering::Relaxed);
        match self.shard(key).read().get(key) {
            Some(Slot::Counter(c)) => *c,
            _ => 0,
        }
    }

    /// Total number of slots.
    pub fn len(&self) -> usize {
        self.inner.shards.iter().map(|s| s.read().len()).sum()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.shards.iter().all(|s| s.read().is_empty())
    }

    /// Drops everything (does not truncate the append log).
    pub fn clear(&self) {
        for shard in &self.inner.shards {
            shard.write().clear();
        }
    }
}

impl std::fmt::Debug for KvStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KvStore")
            .field("slots", &self.len())
            .field("shards", &self.shard_count())
            .field("reads", &self.stats().reads())
            .field("writes", &self.stats().writes())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn string_ops() {
        let kv = KvStore::new();
        assert_eq!(kv.get(b"k"), None);
        kv.set(b"k", b"v1");
        assert_eq!(kv.get(b"k"), Some(b"v1".to_vec()));
        kv.set(b"k", b"v2");
        assert_eq!(kv.get(b"k"), Some(b"v2".to_vec()));
        assert!(kv.exists(b"k"));
        assert!(kv.del(b"k"));
        assert!(!kv.del(b"k"));
        assert!(!kv.exists(b"k"));
    }

    #[test]
    fn set_nx_first_writer_wins() {
        let kv = KvStore::new();
        assert!(kv.set_nx(b"k", b"first"));
        assert!(!kv.set_nx(b"k", b"second"), "occupied key rejects the CAS");
        assert_eq!(kv.get(b"k"), Some(b"first".to_vec()));
        // Any slot type occupies the key, not just strings.
        kv.hset(b"h", b"f", b"v").unwrap();
        assert!(!kv.set_nx(b"h", b"x"));
        // Racing setters on a fresh key: exactly one wins.
        let kv2 = kv.clone();
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let kv = kv2.clone();
                std::thread::spawn(move || kv.set_nx(b"race", format!("w{i}").as_bytes()))
            })
            .collect();
        let wins = handles.into_iter().map(|h| h.join().unwrap()).filter(|&w| w).count();
        assert_eq!(wins, 1, "exactly one racing set_nx succeeds");
        let winner = kv.get(b"race").unwrap();
        assert!(winner.starts_with(b"w"));
    }

    #[test]
    fn hash_ops() {
        let kv = KvStore::new();
        assert!(kv.hset(b"h", b"a", b"1").unwrap());
        assert!(!kv.hset(b"h", b"a", b"2").unwrap());
        assert!(kv.hset(b"h", b"b", b"3").unwrap());
        assert_eq!(kv.hget(b"h", b"a"), Some(b"2".to_vec()));
        assert_eq!(kv.hlen(b"h"), 2);
        let mut all = kv.hgetall(b"h");
        all.sort();
        assert_eq!(all, vec![(b"a".to_vec(), b"2".to_vec()), (b"b".to_vec(), b"3".to_vec())]);
        assert!(kv.hdel(b"h", b"a").unwrap());
        assert!(!kv.hdel(b"h", b"a").unwrap());
        assert_eq!(kv.hlen(b"h"), 1);
    }

    #[test]
    fn set_ops() {
        let kv = KvStore::new();
        assert!(kv.sadd(b"s", b"x").unwrap());
        assert!(!kv.sadd(b"s", b"x").unwrap());
        assert!(kv.sismember(b"s", b"x"));
        assert!(!kv.sismember(b"s", b"y"));
        assert_eq!(kv.scard(b"s"), 1);
        assert!(kv.srem(b"s", b"x").unwrap());
        assert_eq!(kv.scard(b"s"), 0);
        assert_eq!(kv.smembers(b"missing"), Vec::<Vec<u8>>::new());
    }

    #[test]
    fn counter_ops() {
        let kv = KvStore::new();
        assert_eq!(kv.counter(b"c"), 0);
        assert_eq!(kv.incr(b"c").unwrap(), 1);
        assert_eq!(kv.incr(b"c").unwrap(), 2);
        assert_eq!(kv.incr_by(b"c", -5).unwrap(), -3);
        assert_eq!(kv.counter(b"c"), -3);
    }

    #[test]
    fn wrong_type_errors() {
        let kv = KvStore::new();
        kv.set(b"k", b"string");
        assert!(matches!(kv.hset(b"k", b"f", b"v"), Err(KvError::WrongType { .. })));
        assert!(matches!(kv.sadd(b"k", b"m"), Err(KvError::WrongType { .. })));
        assert!(matches!(kv.incr(b"k"), Err(KvError::WrongType { .. })));
        // Reads on wrong types degrade to absent, like decoupled clients expect.
        assert_eq!(kv.hget(b"k", b"f"), None);
        assert!(!kv.sismember(b"k", b"m"));
        assert_eq!(kv.counter(b"k"), 0);
    }

    #[test]
    fn prefix_scan() {
        let kv = KvStore::new();
        kv.set(b"idx:1", b"a");
        kv.set(b"idx:2", b"b");
        kv.set(b"other", b"c");
        assert_eq!(kv.keys_with_prefix(b"idx:"), vec![b"idx:1".to_vec(), b"idx:2".to_vec()]);
        assert!(kv.keys_with_prefix(b"zzz").is_empty());
    }

    #[test]
    fn stats_counted() {
        let kv = KvStore::new();
        kv.set(b"a", b"1");
        kv.get(b"a");
        kv.get(b"b");
        assert_eq!(kv.stats().writes(), 1);
        assert_eq!(kv.stats().reads(), 2);
        assert_eq!(kv.stats().total(), 3);
    }

    #[test]
    fn clone_shares_state() {
        let kv = KvStore::new();
        let kv2 = kv.clone();
        kv.set(b"k", b"v");
        assert_eq!(kv2.get(b"k"), Some(b"v".to_vec()));
    }

    #[test]
    fn concurrent_counters() {
        let kv = KvStore::new();
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let kv = kv.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        kv.incr(b"shared").unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(kv.counter(b"shared"), 8000);
    }

    #[test]
    fn sharded_matches_single_shard() {
        // Same op sequence against 1 shard and N shards: every observable
        // (gets, prefix scans, exports, len) must be identical.
        let one = KvStore::with_shards(1);
        let many = KvStore::with_shards(8);
        for kv in [&one, &many] {
            for i in 0..64u32 {
                let key = format!("k/{:02}", i % 16).into_bytes();
                kv.set(&key, &i.to_be_bytes());
                kv.hset(format!("h/{}", i % 8).as_bytes(), &key, b"v").unwrap();
                kv.sadd(b"members", &key).unwrap();
                kv.incr_by(b"count", i as i64).unwrap();
            }
            kv.del(b"k/03");
        }
        assert_eq!(one.len(), many.len());
        assert_eq!(one.keys_with_prefix(b"k/"), many.keys_with_prefix(b"k/"));
        assert_eq!(one.keys_with_prefix(b"h/"), many.keys_with_prefix(b"h/"));
        assert_eq!(one.export_records(), many.export_records());
        assert_eq!(one.counter(b"count"), many.counter(b"count"));
    }

    #[test]
    fn shard_contention_reported() {
        let kv = KvStore::with_shards(4);
        assert_eq!(kv.shard_contention().len(), 4);
        assert!(kv.shard_contention().iter().all(|&c| c == 0));
    }
}
