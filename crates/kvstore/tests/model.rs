//! Model-based property tests: random operation sequences against the
//! store must agree with a naive in-memory oracle, both in volatile mode
//! and across a semi-durable restart.

use std::collections::{HashMap, HashSet};

use datablinder_kvstore::{frame_bytes, scan_frames, KvStore, LogRecord};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Set(u8, u8),
    Del(u8),
    HSet(u8, u8, u8),
    HDel(u8, u8),
    SAdd(u8, u8),
    SRem(u8, u8),
    Incr(u8, i8),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..8, any::<u8>()).prop_map(|(k, v)| Op::Set(k, v)),
        (0u8..8).prop_map(Op::Del),
        (8u8..12, 0u8..6, any::<u8>()).prop_map(|(k, f, v)| Op::HSet(k, f, v)),
        (8u8..12, 0u8..6).prop_map(|(k, f)| Op::HDel(k, f)),
        (12u8..16, 0u8..6).prop_map(|(k, m)| Op::SAdd(k, m)),
        (12u8..16, 0u8..6).prop_map(|(k, m)| Op::SRem(k, m)),
        (16u8..20, any::<i8>()).prop_map(|(k, v)| Op::Incr(k, v)),
    ]
}

/// The oracle: plain std collections. Key ranges are disjoint per kind so
/// type conflicts cannot occur (conflict behavior has dedicated unit tests).
#[derive(Default)]
struct Oracle {
    strings: HashMap<u8, u8>,
    hashes: HashMap<u8, HashMap<u8, u8>>,
    sets: HashMap<u8, HashSet<u8>>,
    counters: HashMap<u8, i64>,
}

fn apply(store: &KvStore, oracle: &mut Oracle, op: &Op) {
    match *op {
        Op::Set(k, v) => {
            store.set(&[k], &[v]);
            oracle.strings.insert(k, v);
        }
        Op::Del(k) => {
            store.del(&[k]);
            oracle.strings.remove(&k);
        }
        Op::HSet(k, f, v) => {
            store.hset(&[k], &[f], &[v]).unwrap();
            oracle.hashes.entry(k).or_default().insert(f, v);
        }
        Op::HDel(k, f) => {
            store.hdel(&[k], &[f]).unwrap();
            oracle.hashes.entry(k).or_default().remove(&f);
        }
        Op::SAdd(k, m) => {
            store.sadd(&[k], &[m]).unwrap();
            oracle.sets.entry(k).or_default().insert(m);
        }
        Op::SRem(k, m) => {
            store.srem(&[k], &[m]).unwrap();
            oracle.sets.entry(k).or_default().remove(&m);
        }
        Op::Incr(k, v) => {
            store.incr_by(&[k], v as i64).unwrap();
            *oracle.counters.entry(k).or_default() += v as i64;
        }
    }
}

fn check(store: &KvStore, oracle: &Oracle) {
    for k in 0u8..8 {
        assert_eq!(store.get(&[k]), oracle.strings.get(&k).map(|v| vec![*v]), "string {k}");
    }
    for k in 8u8..12 {
        for f in 0u8..6 {
            let expect = oracle.hashes.get(&k).and_then(|h| h.get(&f)).map(|v| vec![*v]);
            assert_eq!(store.hget(&[k], &[f]), expect, "hash {k}/{f}");
        }
    }
    for k in 12u8..16 {
        for m in 0u8..6 {
            let expect = oracle.sets.get(&k).is_some_and(|s| s.contains(&m));
            assert_eq!(store.sismember(&[k], &[m]), expect, "set {k}/{m}");
        }
    }
    for k in 16u8..20 {
        assert_eq!(store.counter(&[k]), *oracle.counters.get(&k).unwrap_or(&0), "counter {k}");
    }
}

/// Arbitrary keys/values/members, deliberately including the empty slice:
/// WAL replay must round-trip every encodable record, not just plausible
/// application keys.
fn arb_blob() -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(any::<u8>(), 0..48)
}

fn arb_record() -> impl Strategy<Value = LogRecord> {
    prop_oneof![
        (arb_blob(), arb_blob()).prop_map(|(key, value)| LogRecord::Set { key, value }),
        arb_blob().prop_map(|key| LogRecord::Del { key }),
        (arb_blob(), arb_blob(), arb_blob()).prop_map(|(key, field, value)| LogRecord::HSet { key, field, value }),
        (arb_blob(), arb_blob()).prop_map(|(key, field)| LogRecord::HDel { key, field }),
        (arb_blob(), arb_blob()).prop_map(|(key, member)| LogRecord::SAdd { key, member }),
        (arb_blob(), arb_blob()).prop_map(|(key, member)| LogRecord::SRem { key, member }),
        (arb_blob(), any::<i64>()).prop_map(|(key, by)| LogRecord::Incr { key, by }),
    ]
}

proptest! {
    #[test]
    fn log_record_roundtrips_through_encoding(rec in arb_record()) {
        let body = rec.to_bytes();
        let decoded = LogRecord::from_body(&body).expect("every encoded record decodes");
        prop_assert_eq!(decoded, rec);
    }

    #[test]
    fn framed_record_stream_roundtrips(recs in prop::collection::vec(arb_record(), 0..40)) {
        // The full WAL pipeline in miniature: bodies → CRC frames →
        // concatenated stream → scan → decode, identity end to end.
        let mut stream = Vec::new();
        for rec in &recs {
            stream.extend_from_slice(&frame_bytes(&rec.to_bytes()));
        }
        let scan = scan_frames(&stream).expect("a whole stream has no corrupt frames");
        prop_assert!(!scan.torn_tail);
        prop_assert_eq!(scan.valid_len as usize, stream.len());
        let decoded: Vec<LogRecord> =
            scan.frames.iter().map(|body| LogRecord::from_body(body).expect("frame body decodes")).collect();
        prop_assert_eq!(decoded, recs);
    }

    #[test]
    fn volatile_store_matches_oracle(ops in prop::collection::vec(arb_op(), 0..200)) {
        let store = KvStore::new();
        let mut oracle = Oracle::default();
        for op in &ops {
            apply(&store, &mut oracle, op);
        }
        check(&store, &oracle);
    }

    #[test]
    fn semi_durable_store_recovers_to_oracle(ops in prop::collection::vec(arb_op(), 0..100)) {
        let path = std::env::temp_dir().join(format!(
            "datablinder-kv-prop-{}-{:x}",
            std::process::id(),
            rand::random::<u64>()
        ));
        let _ = std::fs::remove_file(&path);
        let mut oracle = Oracle::default();
        {
            let store = KvStore::open_semi_durable(&path).unwrap();
            for op in &ops {
                apply(&store, &mut oracle, op);
            }
            check(&store, &oracle);
        } // drop flushes the log
        let recovered = KvStore::open_semi_durable(&path).unwrap();
        check(&recovered, &oracle);
        std::fs::remove_file(&path).unwrap();
    }
}
