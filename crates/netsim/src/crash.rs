//! Deterministic crash-point injection for the *cloud process* itself.
//!
//! [`fault`](crate::fault) kills messages; this module kills the machine.
//! A [`CrashPlan`] names one crash point — "die after N applied records",
//! "tear the N-th WAL append at byte M", or "journal the N-th record fully
//! but die before applying it" — and a [`CrashInjector`] hands the cloud's
//! durability layer a verdict at every write. Like [`FaultPlan`]
//! (crate::fault::FaultPlan), a seeded constructor derives the point from
//! one SplitMix64 stream, so a `(seed, workload)` pair replays the exact
//! same crash. After the point fires the injector latches into the
//! *crashed* state: the process is dead until a restart harness rebuilds
//! the engine from disk and the injector is cleared or replaced.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use crate::fault::SplitMix64;

/// Where in the write path the cloud dies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashPoint {
    /// Refuse the `n`-th write (0-based) before anything reaches the WAL:
    /// the first `n` writes journal and apply, then the machine vanishes.
    BeforeAppend(u64),
    /// Tear the `n`-th WAL append: only the first `byte` bytes of the
    /// frame reach disk, then the machine vanishes. Recovery must treat
    /// the partial frame as a torn tail.
    MidAppend {
        /// Index (0-based) of the journaled write to tear.
        record: u64,
        /// How many bytes of the frame survive (clamped to `len - 1`).
        byte: u64,
    },
    /// The `n`-th append reaches disk in full, but the machine dies
    /// before the mutation is applied — recovery must roll it forward.
    AfterAppend(u64),
}

/// A single planned crash.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashPlan {
    point: CrashPoint,
}

impl CrashPlan {
    /// A plan that crashes at exactly `point`.
    pub fn at(point: CrashPoint) -> Self {
        CrashPlan { point }
    }

    /// Derives a crash point from `seed`, landing on one of the first
    /// `horizon` writes (like `FaultPlan`, all randomness comes from one
    /// SplitMix64 stream; equal seeds give equal plans).
    pub fn seeded(seed: u64, horizon: u64) -> Self {
        let mut rng = SplitMix64::new(seed ^ 0xC4A5_11F0_57A7_E5EE);
        let record = rng.next_u64() % horizon.max(1);
        let mode = rng.next_u64() % 3;
        let byte = rng.next_u64() % 64;
        let point = match mode {
            0 => CrashPoint::BeforeAppend(record),
            1 => CrashPoint::MidAppend { record, byte },
            _ => CrashPoint::AfterAppend(record),
        };
        CrashPlan { point }
    }

    /// The planned crash point.
    pub fn point(&self) -> CrashPoint {
        self.point
    }
}

/// What the durability layer must do with the write it is about to journal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashVerdict {
    /// Journal and apply normally.
    Proceed,
    /// The machine is already gone: journal nothing, apply nothing.
    Refuse,
    /// Write only the first `n` bytes of the frame, then die.
    Torn(usize),
    /// Write the whole frame, then die before applying.
    DieAfterAppend,
}

/// Shared, thread-safe crash state consulted by the cloud's write path.
#[derive(Debug)]
pub struct CrashInjector {
    plan: CrashPlan,
    writes: AtomicU64,
    crashed: AtomicBool,
}

impl CrashInjector {
    /// A live injector armed with `plan`.
    pub fn new(plan: CrashPlan) -> Self {
        CrashInjector { plan, writes: AtomicU64::new(0), crashed: AtomicBool::new(false) }
    }

    /// Whether the crash point has fired (the process is "down").
    pub fn crashed(&self) -> bool {
        self.crashed.load(Ordering::SeqCst)
    }

    /// Number of writes that were allowed to journal in full.
    pub fn writes_allowed(&self) -> u64 {
        self.writes.load(Ordering::SeqCst)
    }

    /// Consulted once per journaled write with the frame's on-disk length;
    /// counts the write and decides whether the machine survives it.
    pub fn on_append(&self, frame_len: usize) -> CrashVerdict {
        if self.crashed() {
            return CrashVerdict::Refuse;
        }
        let n = self.writes.load(Ordering::SeqCst);
        let verdict = match self.plan.point {
            CrashPoint::BeforeAppend(r) if n >= r => CrashVerdict::Refuse,
            CrashPoint::MidAppend { record, byte } if n == record => {
                CrashVerdict::Torn((byte as usize).min(frame_len.saturating_sub(1)))
            }
            CrashPoint::AfterAppend(r) if n == r => CrashVerdict::DieAfterAppend,
            _ => CrashVerdict::Proceed,
        };
        match verdict {
            CrashVerdict::Proceed => {
                self.writes.fetch_add(1, Ordering::SeqCst);
            }
            CrashVerdict::DieAfterAppend => {
                self.writes.fetch_add(1, Ordering::SeqCst);
                self.crashed.store(true, Ordering::SeqCst);
            }
            CrashVerdict::Refuse | CrashVerdict::Torn(_) => {
                self.crashed.store(true, Ordering::SeqCst);
            }
        }
        verdict
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn before_append_counts_then_refuses() {
        let inj = CrashInjector::new(CrashPlan::at(CrashPoint::BeforeAppend(2)));
        assert_eq!(inj.on_append(10), CrashVerdict::Proceed);
        assert_eq!(inj.on_append(10), CrashVerdict::Proceed);
        assert_eq!(inj.on_append(10), CrashVerdict::Refuse);
        assert!(inj.crashed());
        assert_eq!(inj.on_append(10), CrashVerdict::Refuse, "stays dead");
        assert_eq!(inj.writes_allowed(), 2);
    }

    #[test]
    fn mid_append_tears_the_frame() {
        let inj = CrashInjector::new(CrashPlan::at(CrashPoint::MidAppend { record: 1, byte: 7 }));
        assert_eq!(inj.on_append(20), CrashVerdict::Proceed);
        assert_eq!(inj.on_append(20), CrashVerdict::Torn(7));
        assert!(inj.crashed());
    }

    #[test]
    fn torn_byte_clamped_below_frame_len() {
        let inj = CrashInjector::new(CrashPlan::at(CrashPoint::MidAppend { record: 0, byte: 999 }));
        assert_eq!(inj.on_append(12), CrashVerdict::Torn(11), "never a full frame");
    }

    #[test]
    fn after_append_dies_post_write() {
        let inj = CrashInjector::new(CrashPlan::at(CrashPoint::AfterAppend(0)));
        assert_eq!(inj.on_append(16), CrashVerdict::DieAfterAppend);
        assert!(inj.crashed());
        assert_eq!(inj.writes_allowed(), 1, "the frame did reach disk");
    }

    #[test]
    fn seeded_plans_are_deterministic_and_varied() {
        let a = CrashPlan::seeded(42, 100);
        let b = CrashPlan::seeded(42, 100);
        assert_eq!(a, b);
        let modes: std::collections::HashSet<u8> = (0..64)
            .map(|s| match CrashPlan::seeded(s, 100).point() {
                CrashPoint::BeforeAppend(_) => 0,
                CrashPoint::MidAppend { .. } => 1,
                CrashPoint::AfterAppend(_) => 2,
            })
            .collect();
        assert_eq!(modes.len(), 3, "seeds cover all crash modes");
    }
}
